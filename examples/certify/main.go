// Certify: the static-timing workflow the paper enables — certify a small
// design (several nets, several outputs each) against a clock budget using
// only the bounds, then resolve the undecided outputs with one exact
// simulation each. No output is ever mis-certified.
package main

import (
	"fmt"
	"log"
	"math"

	rcdelay "repro"
	"repro/internal/core"
	"repro/internal/mos"
	"repro/internal/sta"
)

func main() {
	// A toy design: three nets of increasing interconnect load.
	nets := []sta.Net{
		makeNet("short_net", 1, 500),
		makeNet("medium_net", 3, 500),
		makeNet("long_net", 8, 500),
	}
	report, err := sta.Analyze(nets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Phase 1 — bound-based certification (no simulation):")
	fmt.Print(report.Summary())

	// Phase 2: exact simulation only for the Unknown outputs.
	passes, unknown, fails := report.CountByVerdict()
	fmt.Printf("\nPhase 2 — simulating %d undecided outputs (skipping %d already decided):\n",
		unknown, passes+fails)
	deadlines := map[string]float64{}
	for _, n := range nets {
		deadlines[n.Name] = n.Deadline
	}
	exact := make([]float64, len(report.Outputs))
	for i := range exact {
		exact[i] = math.NaN()
	}
	sims := map[string]*rcdelay.StepSim{}
	for _, n := range nets {
		s, err := rcdelay.SimulateStep(n.Tree, 16)
		if err != nil {
			log.Fatal(err)
		}
		sims[n.Name] = s
	}
	for i, o := range report.Outputs {
		if o.Verdict != core.Unknown {
			continue
		}
		var net sta.Net
		for _, n := range nets {
			if n.Name == o.Net {
				net = n
			}
		}
		id, _ := net.Tree.Lookup(o.Output)
		cross, err := sims[o.Net].CrossingTime(id, net.Threshold)
		if err != nil {
			log.Fatal(err)
		}
		exact[i] = cross
		fmt.Printf("  %s/%s: exact crossing %.1f ps vs deadline %.0f ps\n",
			o.Net, o.Output, cross, net.Deadline)
	}
	if err := report.TightenWith(deadlines, exact); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFinal verdicts:")
	fmt.Print(report.Summary())
	fmt.Printf("design verdict: %s\n", report.WorstVerdict())
}

// makeNet builds a superbuffer-driven fanout net whose branch lengths scale
// with the given factor (ohms / pF, times in ps).
func makeNet(name string, scale float64, deadline float64) sta.Net {
	tree, err := mos.FanoutNet(mos.Superbuffer(),
		[]float64{90 * scale, 180 * scale, 270 * scale},
		[]float64{0.005 * scale, 0.01 * scale, 0.015 * scale},
		[]mos.Load{{Name: "g1", C: 0.013}, {Name: "g2", C: 0.013}, {Name: "g3", C: 0.013}})
	if err != nil {
		log.Fatal(err)
	}
	return sta.Net{Name: name, Tree: tree, Threshold: 0.7, Deadline: deadline}
}
