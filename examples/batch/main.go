// Batch analysis: certify a whole library of fanout nets in one call. The
// engine fans the jobs out across GOMAXPROCS workers, deduplicates
// structurally identical networks through its content-hash cache, and
// returns results in job order — the concurrent path to the paper's
// "certify every net of a chip" ambition.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	rcdelay "repro"
)

func main() {
	// A "cell library": fanout nets with 1..6 loads at two wire lengths.
	// Several entries repeat (same structure, different instance names),
	// as repeated cells do on a real chip floorplan.
	rng := rand.New(rand.NewSource(7))
	var jobs []rcdelay.BatchJob
	for inst := 0; inst < 24; inst++ {
		loads := 1 + rng.Intn(3)
		long := rng.Intn(2) == 1
		b := rcdelay.NewBuilder("in")
		drv := b.Resistor(rcdelay.Root, fmt.Sprintf("i%d_drv", inst), 380)
		b.Capacitor(drv, 0.04)
		for k := 0; k < loads; k++ {
			wireR, wireC := 180.0, 0.01
			if long {
				wireR, wireC = 1440, 0.08
			}
			leaf := b.Line(drv, fmt.Sprintf("i%d_load%d", inst, k), wireR, wireC)
			b.Capacitor(leaf, 0.013)
			b.Output(leaf)
		}
		tree, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, rcdelay.BatchJob{
			Tree: tree,
			Tag:  fmt.Sprintf("inst%02d(loads=%d,long=%t)", inst, loads, long),
			// Certify every output against a 300 ps clock at the 0.7
			// threshold, and report the certified worst-case delay.
			Thresholds: []float64{0.7},
			Checks:     []rcdelay.BatchCheck{{V: 0.7, T: 300}},
		})
	}

	// A long-lived engine would be shared; here one call does the chip.
	engine := rcdelay.NewBatchEngine(rcdelay.BatchOptions{})
	results := engine.Run(context.Background(), jobs)

	fmt.Printf("%-28s %-10s %12s   verdicts\n", "instance", "cache", "TMax(0.7)")
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		worst := 0.0
		for _, out := range res.Outputs {
			if tmax := out.Delay[0].TMax; tmax > worst {
				worst = tmax
			}
		}
		verdicts := ""
		for _, c := range res.Checks {
			verdicts += fmt.Sprintf("%s ", c.Verdict)
		}
		cache := "computed"
		if res.CacheHit {
			cache = "hit"
		}
		fmt.Printf("%-28s %-10s %12.1f   %s\n", res.Tag, cache, worst, verdicts)
	}

	stats := engine.CacheStats()
	fmt.Printf("\n%d instances, %d distinct networks analyzed, %d served from cache\n",
		len(jobs), stats.Misses, stats.Hits)
}
