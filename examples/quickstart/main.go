// Quickstart: build the paper's Figure 7 network three ways (builder,
// netlist, algebra), compute its characteristic times, and answer the
// paper's three headline questions — bound the delay given a threshold,
// bound the voltage given a time, and certify a deadline.
package main

import (
	"fmt"
	"log"

	rcdelay "repro"
)

func main() {
	// Way 1: the programmatic builder.
	b := rcdelay.NewBuilder("in")
	n1 := b.Resistor(rcdelay.Root, "n1", 15)
	b.Capacitor(n1, 2)
	branch := b.Resistor(n1, "branch", 8)
	b.Capacitor(branch, 7)
	n2 := b.Line(n1, "n2", 3, 4) // distributed uniform RC line
	b.Capacitor(n2, 9)
	b.Output(n2)
	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("The network (Figure 7 of the paper):\n\n", tree, "\n")

	// Way 2: the paper's own algebraic notation (eq. 18).
	exprTree, exprOut, err := rcdelay.ParseExpression(
		`(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`)
	if err != nil {
		log.Fatal(err)
	}
	// Way 3: a SPICE-like netlist.
	deckTree, err := rcdelay.ParseNetlist(`
.input in
R1 in n1 15
C1 n1 0 2
R2 n1 b 8
C2 b  0 7
U1 n1 n2 3 4
C3 n2 0 9
.output n2
`)
	if err != nil {
		log.Fatal(err)
	}

	// All three agree on the characteristic times.
	tm1, _ := rcdelay.CharacteristicTimes(tree, n2)
	tm2, _ := rcdelay.CharacteristicTimes(exprTree, exprOut)
	deckOut, _ := deckTree.Lookup("n2")
	tm3, _ := rcdelay.CharacteristicTimes(deckTree, deckOut)
	fmt.Printf("builder: TP=%g TD=%g TR=%.4g\n", tm1.TP, tm1.TD, tm1.TR)
	fmt.Printf("algebra: TP=%g TD=%g TR=%.4g\n", tm2.TP, tm2.TD, tm2.TR)
	fmt.Printf("netlist: TP=%g TD=%g TR=%.4g\n\n", tm3.TP, tm3.TD, tm3.TR)

	bounds, err := rcdelay.NewBounds(tm1)
	if err != nil {
		log.Fatal(err)
	}

	// Question 1: bound the delay, given the signal threshold.
	fmt.Printf("50%% threshold is crossed between t=%.2f and t=%.2f\n",
		bounds.TMin(0.5), bounds.TMax(0.5))

	// Question 2: bound the signal voltage, given a delay time.
	fmt.Printf("at t=200 the output voltage is between %.4f and %.4f\n",
		bounds.VMin(200), bounds.VMax(200))

	// Question 3: certify that the circuit is fast enough.
	for _, deadline := range []float64{100.0, 250, 350} {
		fmt.Printf("reaches 0.5 by t=%-4g? %s\n", deadline, bounds.OK(0.5, deadline))
	}
}
