// Incremental analysis: the interactive-editing workflow. A designer (or an
// optimization loop) holds one EditTree, applies local edits — resize a
// driver, lengthen a wire, hang an extra load, prune a branch — and re-reads
// certified bounds after each one. Every probe costs O(depth) instead of the
// O(n)-per-output full analysis, which is what makes "drag the slider and
// watch the slack" workloads feasible (BenchmarkIncrementalSweep measures
// the gap at ~75x on a 1000-node tree, and cmd/rcserve's /session endpoints
// expose exactly this loop over HTTP).
package main

import (
	"fmt"
	"log"

	rcdelay "repro"
)

// The paper's Figure 7 tree as a netlist deck.
const deck = `.input in
R1 in n1 15
C1 n1 0 2
R2 n1 b 8
C2 b 0 7
U1 n1 n2 3 4
C3 n2 0 9
.output n2
`

func main() {
	tree, err := rcdelay.ParseNetlist(deck)
	if err != nil {
		log.Fatal(err)
	}
	et := rcdelay.NewEditTree(tree)
	out, _ := et.Lookup("n2")

	report := func(label string) rcdelay.Times {
		tm, err := et.Times(out)
		if err != nil {
			log.Fatal(err)
		}
		bounds, err := rcdelay.NewBounds(tm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s TP=%7.2f TD=%7.2f TR=%7.2f   TMax(0.9)=%8.2f\n",
			label, tm.TP, tm.TD, tm.TR, bounds.TMax(0.9))
		return tm
	}

	report("figure 7 as published")

	// Probe 1: the driver is sized up (its effective resistance halves).
	if err := et.ScaleDriver(0.5); err != nil {
		log.Fatal(err)
	}
	report("driver sized up 2x")

	// Probe 2: the branch load at b grows (a bigger gate moved there).
	b, _ := et.Lookup("b")
	if err := et.SetCapacitance(b, 12); err != nil {
		log.Fatal(err)
	}
	report("branch load 7 -> 12 pF")

	// Probe 3: hang a new tap off n1 and watch the output slow down.
	n1, _ := et.Lookup("n1")
	tap, err := et.Grow(n1, "tap", rcdelay.EdgeLine, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := et.AddCapacitance(tap, 2); err != nil {
		log.Fatal(err)
	}
	report("extra tap grown off n1")

	// Probe 4: the tap is abandoned; times return to the previous state.
	if err := et.Prune(tap); err != nil {
		log.Fatal(err)
	}
	report("tap pruned again")

	// Every answer above agrees with a from-scratch analysis of the edited
	// network to floating-point accuracy; materialize and check the last one.
	mt, mapping, err := et.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	full, err := rcdelay.CharacteristicTimes(mt, mapping[out])
	if err != nil {
		log.Fatal(err)
	}
	incr, err := et.Times(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental TD %.12f vs full recompute TD %.12f (Δ=%.2e)\n",
		incr.TD, full.TD, incr.TD-full.TD)
}
