// Fanout: the paper's motivating Figure 1 scenario — an inverter driving
// three gates through polysilicon wires of different lengths — modeled from
// physical geometry (§V process parameters) rather than hand-picked element
// values, then timed with the bounds and cross-checked by exact simulation.
package main

import (
	"fmt"
	"log"

	rcdelay "repro"
	"repro/internal/mos"
	"repro/internal/wire"
)

func main() {
	tech := wire.PaperTech()

	// Three poly branches: 50 µm, 200 µm and 800 µm of 4 µm-wide wire.
	lengths := []float64{50, 200, 800} // microns
	lineR := make([]float64, len(lengths))
	lineC := make([]float64, len(lengths))
	loads := make([]mos.Load, len(lengths))
	const toPF = 1e12
	for i, um := range lengths {
		seg := wire.Segment{Layer: "poly", Length: um * wire.Micron, Width: 4 * wire.Micron}
		r, c, err := tech.LineRC(seg)
		if err != nil {
			log.Fatal(err)
		}
		lineR[i], lineC[i] = r, c*toPF // ohms, pF -> times in ps
		_, gc, err := tech.GateRC(4 * wire.Micron)
		if err != nil {
			log.Fatal(err)
		}
		loads[i] = mos.Load{Name: fmt.Sprintf("gate_%.0fum", um), C: gc * toPF}
	}

	tree, err := mos.FanoutNet(mos.Superbuffer(), lineR, lineC, loads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Fanout net from §V geometry:\n\n", tree, "\n")

	results, err := rcdelay.Analyze(tree)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := rcdelay.SimulateStep(tree, 32)
	if err != nil {
		log.Fatal(err)
	}

	const threshold = 0.7
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "output", "TD (ps)", "Tmin (ps)", "Tmax (ps)", "exact (ps)")
	for _, res := range rcdelay.CriticalOutputs(results, threshold) {
		exact, err := sim.CrossingTime(res.Output, threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %12.1f\n",
			res.Name, res.Times.TD,
			res.Bounds.TMin(threshold), res.Bounds.TMax(threshold), exact)
		if exact < res.Bounds.TMin(threshold) || exact > res.Bounds.TMax(threshold) {
			log.Fatalf("bracket violated for %s", res.Name)
		}
	}
	fmt.Println("\nexact crossings verified inside [Tmin, Tmax] for every output")
}
