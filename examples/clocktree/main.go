// Clock tree: certify the skew of a binary H-tree clock distribution — the
// highest-volume application RC-tree timing bounds ever had. For the
// symmetric tree the certified skew interval is centered on zero; a single
// unbalanced leaf load shows up immediately.
package main

import (
	"fmt"
	"log"

	rcdelay "repro"
	"repro/internal/core"
	"repro/internal/htree"
	"repro/internal/sta"
)

func main() {
	cfg := htree.Config{
		Levels: 4,                  // 16 leaves
		TrunkR: 720, TrunkC: 0.044, // §V poly trunk (ohms, pF -> ps)
		DriverR: 380, DriverC: 0.04, // superbuffer clock buffer
		LeafC: 0.013,
	}
	tree, err := htree.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	results, err := rcdelay.Analyze(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H-tree with %d leaves, %d tree nodes\n",
		htree.Leaves(cfg.Levels), tree.NumNodes())

	first := results[0]
	fmt.Printf("per-leaf: TD=%.1f ps, crossing 0.5 within [%.1f, %.1f] ps\n",
		first.Times.TD, first.Bounds.TMin(0.5), first.Bounds.TMax(0.5))

	worst, err := sta.WorstSkew(results, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified worst skew over all %d leaf pairs: %.1f ps\n",
		len(results)*(len(results)-1)/2, worst)
	fmt.Println("(for a symmetric tree this equals one leaf's uncertainty window:")
	fmt.Printf(" window = %.1f ps)\n", first.Bounds.TMax(0.5)-first.Bounds.TMin(0.5))

	// Verify by exact simulation that the true skew really is zero.
	sim, err := rcdelay.SimulateStep(tree, 8)
	if err != nil {
		log.Fatal(err)
	}
	c0, err := sim.CrossingTime(results[0].Output, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cLast, err := sim.CrossingTime(results[len(results)-1].Output, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact simulated crossings: first leaf %.2f ps, last leaf %.2f ps (skew %.2g)\n",
		c0, cLast, cLast-c0)

	// Now unbalance one leaf by 50% extra load and watch the interval shift.
	slowTimes := first.Times
	slowTimes.TP *= 1.2
	slowTimes.TD *= 1.2
	slowTimes.TR *= 1.2
	slowBounds, err := core.New(slowTimes)
	if err != nil {
		log.Fatal(err)
	}
	slow := core.Result{Output: first.Output, Name: "loaded-leaf", Times: slowTimes, Bounds: slowBounds}
	sb, err := sta.Skew(slow, results[1], 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after +20%% load on one leaf, its skew interval vs a clean leaf: [%.1f, %.1f] ps\n",
		sb.Min, sb.Max)
}
