// Bounds vs simulation: reproduces Figure 11 — the upper and lower voltage
// bounds of the Figure 7 network plotted against the exact response from
// circuit simulation — as an ASCII chart, and verifies the bracket.
package main

import (
	"fmt"
	"log"
	"strings"

	rcdelay "repro"
)

const fig7 = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

func main() {
	tree, out, err := rcdelay.ParseExpression(fig7)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := rcdelay.SimulateStep(tree, 64)
	if err != nil {
		log.Fatal(err)
	}

	const width = 60
	fmt.Println("Figure 11: bounds (-) and exact response (*), t in [0, 600]")
	fmt.Println("v=0" + strings.Repeat(" ", width-7) + "v=1")
	for t := 0.0; t <= 600; t += 25 {
		lo, hi := bounds.VMin(t), bounds.VMax(t)
		exact, err := sim.Voltage(out, t)
		if err != nil {
			log.Fatal(err)
		}
		if exact < lo-1e-9 || exact > hi+1e-9 {
			log.Fatalf("bracket violated at t=%g: %g outside [%g, %g]", t, exact, lo, hi)
		}
		row := make([]byte, width+1)
		for i := range row {
			row[i] = ' '
		}
		row[pos(lo, width)] = '-'
		row[pos(hi, width)] = '-'
		row[pos(exact, width)] = '*'
		fmt.Printf("t=%4.0f |%s|\n", t, string(row))
	}

	for _, v := range []float64{0.3, 0.5, 0.7, 0.9} {
		cross, err := sim.CrossingTime(out, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("v=%.1f: exact crossing %7.2f inside [%7.2f, %7.2f]\n",
			v, cross, bounds.TMin(v), bounds.TMax(v))
	}
}

func pos(v float64, width int) int {
	i := int(v * float64(width))
	if i < 0 {
		i = 0
	}
	if i > width {
		i = width
	}
	return i
}
