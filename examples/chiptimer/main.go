// Chiptimer: chip-level timing from per-net bounds. A design is many RC
// nets glued by gate stages; the paper's per-net [TMin, TMax] bounds become
// interval arrival times that propagate through the stage DAG, answering
// the questions a timing signoff asks — which endpoints meet their required
// times, with how much guaranteed slack, and along which critical paths.
package main

import (
	"context"
	"fmt"
	"log"

	rcdelay "repro"
)

// A three-stage pipeline: a driver net fans out to two buses, and the
// slower bus feeds a sink stage. Gate intrinsic delays ride on the .stage
// cards; .require pins required arrival times on the endpoints.
const chipDeck = `
.design demo
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus_a
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.net bus_b
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus_a 25
.stage drv o bus_b 25
.stage bus_b far sink 40
.require bus_a far 700
.require sink o 180
.end
`

func main() {
	design, err := rcdelay.ParseDesign(chipDeck)
	if err != nil {
		log.Fatal(err)
	}

	// Analyze at the 0.7 threshold, asking for the 2 most critical paths.
	// The per-net bound computations fan across a shared batch engine,
	// level by level; independent nets of a level run concurrently.
	report, err := rcdelay.AnalyzeDesign(context.Background(), design, rcdelay.DesignOptions{
		Threshold: 0.7,
		K:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())

	// The same numbers programmatically: every endpoint carries the arrival
	// interval [earliest possible, latest certifiable] and its slack.
	fmt.Println("\nendpoint intervals:")
	for _, ep := range report.Endpoints {
		fmt.Printf("  %s/%s arrives in [%.1f, %.1f]", ep.Net, ep.Output, ep.Arrival.Min, ep.Arrival.Max)
		if ep.Constrained() {
			fmt.Printf(", slack %.1f (%s)", ep.Slack, ep.Verdict)
		}
		fmt.Println()
	}

	// Tightening a stage (a stronger gate halves its intrinsic delay)
	// shifts every downstream arrival; re-analysis is one call.
	for i := range design.Stages {
		if design.Stages[i].ToNet == "sink" {
			design.Stages[i].Delay /= 2
		}
	}
	after, err := rcdelay.AnalyzeDesign(context.Background(), design, rcdelay.DesignOptions{Threshold: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter halving the sink gate delay: WNS %.1f -> %.1f\n", report.WNS, after.WNS)
}
