// Variation: process-variation analysis of the paper's Figure 7 network.
// Monte Carlo sampling of element spread gives the distribution of the
// certified delay (TMax), and the exact first-order sensitivities identify
// which elements dominate that spread — the information a designer needs to
// decide what to upsize.
package main

import (
	"fmt"
	"log"
	"sort"

	rcdelay "repro"
	"repro/internal/mc"
)

func main() {
	tree, out, err := rcdelay.ParseExpression(
		`(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Monte Carlo spread of the certified 0.7-threshold delay")
	fmt.Println("(Figure 7 network, 2000 samples per sigma):")
	fmt.Printf("%8s %10s %10s %10s %10s %10s\n", "sigma", "nominal", "mean", "std", "p95", "p99")
	for _, sigma := range []float64{0.02, 0.05, 0.10, 0.20} {
		res, err := mc.Run(tree, out, mc.TMaxAt(0.7),
			mc.Variation{RSigma: sigma, CSigma: sigma}, 2000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			sigma, res.Nominal, res.Mean, res.Std, res.P95, res.P99)
	}

	// Which element dominates? Exact gradients of the Elmore delay.
	sens, err := tree.Sensitivities(out)
	if err != nil {
		log.Fatal(err)
	}
	type contrib struct {
		name  string
		value float64
	}
	var ranked []contrib
	tree.Walk(func(id rcdelay.NodeID) {
		if id == rcdelay.Root {
			return
		}
		_, r, c := tree.Edge(id)
		// Relative impact of a 1% change in each element on TD.
		if r > 0 {
			ranked = append(ranked, contrib{"R into " + tree.Name(id), sens.DTDdR[id] * r * 0.01})
		}
		total := c + tree.NodeCap(id)
		if total > 0 {
			ranked = append(ranked, contrib{"C at " + tree.Name(id), sens.DTDdC[id] * total * 0.01})
		}
	})
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].value > ranked[j].value })

	fmt.Println("\nElmore-delay impact of a +1% change per element (exact gradients):")
	for _, rc := range ranked {
		fmt.Printf("  %-16s %+7.3f time units\n", rc.name, rc.value)
	}
	fmt.Println("\nThe driver resistance and the far capacitor dominate — exactly the")
	fmt.Println("elements the paper's §I singles out (pullup resistance, load caps).")
}
