// PLA sweep: the paper's §V application (Figures 12 and 13). Reproduces the
// log-log sweep of delay bounds versus minterm count for a polysilicon PLA
// AND-plane line, and prints the headline guarantee, with an ASCII rendering
// of the Figure 13 curve.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/pla"
)

func main() {
	params := pla.PaperParams()
	minterms := []int{2, 4, 6, 10, 16, 24, 40, 64, 100}
	pts, err := pla.Sweep(params, minterms, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PLA AND-plane line delay bounds at 0.7*VDD (Figure 13):")
	fmt.Printf("%9s %12s %12s %8s\n", "minterms", "tmin (ns)", "tmax (ns)", "")
	for _, p := range pts {
		fmt.Printf("%9d %12.4f %12.4f  %s\n",
			p.Minterms, p.TMin/1000, p.TMax/1000, bar(p.TMax/1000))
	}

	last := pts[len(pts)-1]
	fmt.Printf("\nat %d minterms the delay is guaranteed <= %.2f ns — the paper's\n",
		last.Minterms, last.TMax/1000)
	fmt.Println("conclusion that the dominant PLA delay must come from elsewhere.")

	// The quadratic regime: delay grows ~4x per 2x minterms on long lines.
	p40, p100 := pts[6], pts[8]
	slope := math.Log(p100.TMax/p40.TMax) / math.Log(float64(p100.Minterms)/float64(p40.Minterms))
	fmt.Printf("log-log slope over 40..100 minterms: %.2f (Figure 13 shows ~2, quadratic)\n", slope)
}

// bar renders a crude log-scale bar for the ASCII plot.
func bar(ns float64) string {
	if ns <= 0 {
		return ""
	}
	n := int((math.Log10(ns) + 2) * 12) // 0.01 ns -> 0 chars
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}
