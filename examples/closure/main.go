// Closure: automated design-level timing repair. A chip whose sink endpoint
// misses its required time goes into the closure engine, which mines the
// failing cones for candidate moves (driver sizing, wire rebuffering, load
// trimming, stub pruning), evaluates them concurrently as what-if trials on
// copy-on-write session forks, and accepts the best slack gain per unit
// cost until WNS reaches zero. The result is a replayable ECO edit list,
// the move-by-move trajectory, and the Pareto frontier of (cost, WNS)
// trade-offs the search visited — not just one greedy answer.
package main

import (
	"context"
	"fmt"
	"log"

	rcdelay "repro"
)

// The eco example's pipeline, before its fix: the sink endpoint fails by
// ~8 ps and bus_b carries an unused stub.
const chipDeck = `
.design demo
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus_a
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.net bus_b
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
R3 n1 stub 90
C3 stub 0 0.02
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus_a 25
.stage drv o bus_b 25
.stage bus_b far sink 40
.require bus_a far 700
.require sink o 150
.end
`

func main() {
	design, err := rcdelay.ParseDesign(chipDeck)
	if err != nil {
		log.Fatal(err)
	}

	// Let the engine repair the chip. The zero options give a 32-move
	// budget, no cost ceiling, and concurrent trial evaluation; the
	// accepted move sequence is deterministic either way.
	report, err := rcdelay.CloseTiming(context.Background(), design, rcdelay.ClosureOptions{
		Timing: rcdelay.DesignOptions{Threshold: 0.7, K: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WNS %.4g -> %.4g in %d moves (cost %.4g, %d what-if trials)\n",
		report.InitialWNS, report.FinalWNS, len(report.Moves), report.Cost, report.Trials)
	for i, m := range report.Moves {
		fmt.Printf("  move %d: %-12s on %-6s cost %.4g -> WNS %.4g\n",
			i+1, m.Move.Kind, m.Move.Net, m.Move.Cost, m.WNS)
	}

	// The frontier is the cost/benefit curve behind the greedy path: every
	// point is a state no cheaper state out-performed.
	fmt.Println("\npareto frontier (cost -> WNS):")
	for _, p := range report.Pareto {
		fmt.Printf("  %8.4g -> %.4g\n", p.Cost, p.WNS)
	}

	// The accepted edits are ordinary ECO edits: replay them through a
	// fresh session (statime -eco would do the same) and confirm the
	// repair reproduces from scratch.
	edits, err := rcdelay.ParseEcoEdits(rcdelay.FormatEcoEdits(report.Edits))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := rcdelay.NewDesignSession(context.Background(), design, rcdelay.DesignOptions{Threshold: 0.7, K: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Apply(edits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed %d edits from scratch: WNS %.4g (engine claimed %.4g)\n",
		res.Applied, res.WNS, report.FinalWNS)
}
