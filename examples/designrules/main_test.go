package main

import (
	"os"
	"testing"
)

// TestSmoke runs the example end to end with stdout silenced: examples are
// living documentation, and a test keeps them compiling and executing under
// `go test ./...` (which otherwise reports [no test files]).
func TestSmoke(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	main()
}
