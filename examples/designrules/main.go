// Design rules: derive certified interconnect design rules from the bounds,
// the way the paper's bounds were actually used in the VLSI design flows
// they enabled — without running a single simulation:
//
//  1. the longest §V polysilicon run a superbuffer may drive for a given
//     clock budget (safe because TMax is a guaranteed upper bound);
//  2. the cheapest (highest-resistance) driver that still meets timing on a
//     fixed route;
//  3. certified repeater insertion for a long line (quadratic → linear).
package main

import (
	"fmt"
	"log"

	rcdelay "repro"
	"repro/internal/mos"
	"repro/internal/opt"
	"repro/internal/rctree"
)

func main() {
	// §V polysilicon: 30 Ω/□ at 4 µm width → 7.5 Ω/µm; ~0.46 fF/µm.
	poly := opt.Line{RPerLen: 7.5, CPerLen: 4.6e-4} // ohms, pF per µm; times in ps
	driver := mos.Superbuffer()
	const gateLoad = 0.013 // pF

	fmt.Println("1. Maximum certified poly run (superbuffer driver, one gate load):")
	fmt.Printf("%12s %16s\n", "budget (ns)", "max length (µm)")
	for _, ns := range []float64{0.5, 1, 2, 5, 10} {
		maxLen, err := opt.MaxWireLength(driver, poly, gateLoad,
			opt.Budget{V: 0.7, Deadline: ns * 1000}, 1e6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.1f %16.0f\n", ns, maxLen)
	}

	fmt.Println("\n2. Cheapest driver for a fixed 240 µm route (0.7 VDD by 2 ns):")
	build := func(rEff float64) (*rctree.Tree, rctree.NodeID, error) {
		b := rctree.NewBuilder("in")
		drv, err := mos.AttachDriver(b, mos.Driver{Name: "drv", REff: rEff, COut: 0.04})
		if err != nil {
			return nil, 0, err
		}
		far := b.Line(drv, "far", 7.5*240, 4.6e-4*240)
		b.Capacitor(far, gateLoad)
		b.Output(far)
		t, err := b.Build()
		if err != nil {
			return nil, 0, err
		}
		return t, far, nil
	}
	rMax, err := opt.SizeDriver(build, opt.Budget{V: 0.7, Deadline: 2000}, 10, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   any pullup with REff <= %.0f Ω is certified\n", rMax)

	fmt.Println("\n3. Certified repeater insertion for long lines (threshold 0.5):")
	fmt.Printf("%14s %8s %18s %18s\n", "length (µm)", "stages", "repeatered (ns)", "unbuffered (ns)")
	for _, um := range []float64{1000, 5000, 20000} {
		plan, err := opt.InsertRepeaters(driver, poly, um, 0.05, gateLoad, 0.5, 400)
		if err != nil {
			log.Fatal(err)
		}
		// Unbuffered comparison.
		b := rctree.NewBuilder("in")
		drv, err := mos.AttachDriver(b, driver)
		if err != nil {
			log.Fatal(err)
		}
		far := b.Line(drv, "far", poly.RPerLen*um, poly.CPerLen*um)
		b.Capacitor(far, gateLoad)
		b.Output(far)
		tr, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		tm, err := tr.CharacteristicTimes(far)
		if err != nil {
			log.Fatal(err)
		}
		bounds, err := rcdelay.NewBounds(tm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14.0f %8d %18.3f %18.3f\n",
			um, plan.Stages, plan.TotalTMax/1000, bounds.TMax(0.5)/1000)
	}
}
