// Eco: incremental design re-timing. A chip design is analyzed once, then
// an ECO (engineering change order) is absorbed through a DesignSession:
// each edit updates one net's RC tree in O(depth), re-derives only that
// net's Penfield–Rubinstein bounds, and re-propagates interval arrivals
// only through its downstream fanout cone — the rest of the chip is never
// touched. The slack-delta report shows what moved, by how much, and how
// little of the design had to be re-timed.
package main

import (
	"context"
	"fmt"
	"log"

	rcdelay "repro"
)

// The chiptimer example's pipeline: a driver fans out to two buses and the
// slower bus feeds a sink. The sink endpoint misses its required time —
// the ECO below fixes it.
const chipDeck = `
.design demo
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus_a
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.net bus_b
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
R3 n1 stub 90
C3 stub 0 0.02
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus_a 25
.stage drv o bus_b 25
.stage bus_b far sink 40
.require bus_a far 700
.require sink o 150
.end
`

// The ECO in the statime -eco file grammar: upsize the driver (halve its
// effective resistance) and unload bus_b by pruning its unused stub.
const ecoList = `
scaleDriver drv 0.5
prune bus_b.stub
`

func main() {
	design, err := rcdelay.ParseDesign(chipDeck)
	if err != nil {
		log.Fatal(err)
	}

	// The session pays the full levelized analysis once.
	sess, err := rcdelay.NewDesignSession(context.Background(), design, rcdelay.DesignOptions{
		Threshold: 0.7,
		K:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	before := sess.Report()
	fmt.Printf("before the ECO: WNS %.4g, TNS %.4g\n", before.WNS, before.TNS)

	// Replay the ECO. Each edit costs O(depth) on its net; the re-timing
	// sweep visits only the edited nets' downstream cones.
	edits, err := rcdelay.ParseEcoEdits(ecoList)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Apply(edits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied %d edits: %d/%d nets re-timed, WNS %.4g, TNS %.4g\n",
		res.Applied, res.DirtyNets, sess.Nets(), res.WNS, res.TNS)
	for _, p := range res.InvalidatedPaths {
		fmt.Printf("critical path to %s invalidated by the ECO\n", p)
	}

	// The slack-delta report joins the before/after endpoint tables.
	eco := rcdelay.NewEcoReport(before, sess.Report(), res)
	fmt.Println()
	fmt.Print(eco.Summary())

	// One more probe, the interactive pattern: does a cheaper driver still
	// meet timing? Scale it back up a little and read the updated WNS
	// without re-analyzing the chip.
	probe := []rcdelay.DesignEdit{{Op: "scaleDriver", Net: "drv", Factor: f(1.5)}}
	res, err = sess.Apply(probe)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "still meets timing"
	if res.WNS < 0 {
		verdict = "now fails timing"
	}
	fmt.Printf("\nprobe: driver scaled back 1.5x -> WNS %.4g (%s)\n", res.WNS, verdict)
}

func f(v float64) *float64 { return &v }
