package rcdelay

import (
	"context"
	"math"
	"strings"
	"testing"
)

const fig7Expr = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

const fig7Deck = `
.input in
R1 in  n1 15
C1 n1  0  2
R2 n1  b  8
C2 b   0  7
U1 n1  n2 3 4
C3 n2  0  9
.output n2
`

// TestEndToEndFigure7 walks the full public API on the paper's example
// network, from both entry points, and checks the Figure 10 numbers.
func TestEndToEndFigure7(t *testing.T) {
	// Entry 1: the paper's algebra.
	exprTree, out1, err := ParseExpression(fig7Expr)
	if err != nil {
		t.Fatal(err)
	}
	tm1, err := CharacteristicTimes(exprTree, out1)
	if err != nil {
		t.Fatal(err)
	}
	// Entry 2: the netlist.
	deckTree, err := ParseNetlist(fig7Deck)
	if err != nil {
		t.Fatal(err)
	}
	out2, ok := deckTree.Lookup("n2")
	if !ok {
		t.Fatal("n2 missing")
	}
	tm2, err := CharacteristicTimes(deckTree, out2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name      string
		got, want float64
	}{
		{"TP expr", tm1.TP, 419}, {"TD expr", tm1.TD, 363},
		{"TR expr", tm1.TR, 6033.0 / 18}, {"Ree expr", tm1.Ree, 18},
		{"TP deck", tm2.TP, 419}, {"TD deck", tm2.TD, 363},
	} {
		if math.Abs(pair.got-pair.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", pair.name, pair.got, pair.want)
		}
	}

	b, err := NewBounds(tm1)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10 spot checks through the façade.
	if got := b.TMax(0.5); math.Abs(got-314.15) > 0.05 {
		t.Errorf("TMax(0.5) = %g, paper prints 314.15", got)
	}
	if got := b.VMax(20); math.Abs(got-0.18138) > 6e-5 {
		t.Errorf("VMax(20) = %g, paper prints 0.18138", got)
	}
	if v := b.OK(0.5, 350); v != Passes {
		t.Errorf("OK(0.5, 350) = %v, want Passes", v)
	}
	if v := b.OK(0.5, 100); v != Fails {
		t.Errorf("OK(0.5, 100) = %v, want Fails", v)
	}
	if v := b.OK(0.5, 250); v != Unknown {
		t.Errorf("OK(0.5, 250) = %v, want Unknown", v)
	}
}

// TestSimulateStepBracket: the exact response through the façade stays
// inside the bound envelope (Figure 11).
func TestSimulateStepBracket(t *testing.T) {
	tree, out, err := ParseExpression(fig7Expr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BoundsFor(tree, out)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SimulateStep(tree, 32)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 10.0; tt <= 600; tt += 10 {
		v, err := s.Voltage(out, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v < b.VMin(tt)-1e-9 || v > b.VMax(tt)+1e-9 {
			t.Errorf("t=%g: exact %g outside [%g, %g]", tt, v, b.VMin(tt), b.VMax(tt))
		}
	}
	cross, err := s.CrossingTime(out, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cross < b.TMin(0.5) || cross > b.TMax(0.5) {
		t.Errorf("crossing %g outside [%g, %g]", cross, b.TMin(0.5), b.TMax(0.5))
	}
	if _, err := s.Voltage(Root, 5); err == nil {
		t.Error("Voltage at the input node should error")
	}
	if _, err := s.Index(out); err != nil {
		t.Errorf("Index: %v", err)
	}
	if s.Response() == nil {
		t.Error("Response() nil")
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder("")
	n := b.Resistor(Root, "n", 100)
	b.Capacitor(n, 2)
	b.Output(n)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Times.TD != 200 {
		t.Errorf("results = %+v", results)
	}
	crit := CriticalOutputs(results, 0.5)
	if len(crit) != 1 {
		t.Error("CriticalOutputs lost a result")
	}
}

func TestFormatExpressionRoundTrip(t *testing.T) {
	tree, out, err := ParseExpression(fig7Expr)
	if err != nil {
		t.Fatal(err)
	}
	text, err := FormatExpression(tree, out)
	if err != nil {
		t.Fatal(err)
	}
	back, out2, err := ParseExpression(text)
	if err != nil {
		t.Fatalf("reparse of %q: %v", text, err)
	}
	tm1, _ := CharacteristicTimes(tree, out)
	tm2, err := CharacteristicTimes(back, out2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm1.TP-tm2.TP) > 1e-9 || math.Abs(tm1.TD-tm2.TD) > 1e-9 || math.Abs(tm1.TR-tm2.TR) > 1e-9 {
		t.Errorf("round trip changed times: %+v -> %+v", tm1, tm2)
	}
}

func TestWriteNetlistRoundTrip(t *testing.T) {
	tree, err := ParseNetlist(fig7Deck)
	if err != nil {
		t.Fatal(err)
	}
	deck := WriteNetlist(tree)
	if !strings.Contains(deck, ".input in") {
		t.Errorf("deck missing input:\n%s", deck)
	}
	back, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != tree.NumNodes() {
		t.Errorf("round trip changed node count: %d -> %d", tree.NumNodes(), back.NumNodes())
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, _, err := ParseExpression("URC"); err == nil {
		t.Error("bad expression accepted")
	}
	if _, err := ParseNetlist("garbage"); err == nil {
		t.Error("bad deck accepted")
	}
	if _, err := NewBounds(Times{TP: 1, TD: 2}); err == nil {
		t.Error("invalid times accepted")
	}
	tree, _, err := ParseExpression(fig7Expr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BoundsFor(tree, NodeID(99)); err == nil {
		t.Error("out-of-range output accepted")
	}
	if _, err := SimulateStep(tree, 0); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := FormatExpression(tree, NodeID(99)); err == nil {
		t.Error("FormatExpression accepted bad output")
	}
}

// TestDesignSessionFacade drives the ECO surface end to end through the
// façade: parse a design, open a session, replay a parsed edit list, and
// render the slack-delta report.
func TestDesignSessionFacade(t *testing.T) {
	design, err := ParseDesign(`
.design demo
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.stage drv o bus 25
.require bus far 700
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewDesignSession(context.Background(), design, DesignOptions{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Report()
	edits, err := ParseEcoEdits("scaleDriver drv 0.5\naddC bus.far 0.01\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatEcoEdits(edits); !strings.Contains(got, "scaleDriver drv 0.5") {
		t.Errorf("FormatEcoEdits = %q", got)
	}
	res, err := sess.Apply(edits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Gen != sess.Gen() {
		t.Errorf("res = %+v, gen %d", res, sess.Gen())
	}
	eco := NewEcoReport(before, sess.Report(), res)
	if !strings.Contains(eco.Summary(), "eco demo") {
		t.Errorf("eco summary:\n%s", eco.Summary())
	}
}

func TestCloseTimingFacade(t *testing.T) {
	design, err := ParseDesign(`
.design fixme
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
R3 n1 stub 90
C3 stub 0 0.02
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus 25
.stage bus far sink 40
.require sink o 150
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	report, err := CloseTiming(context.Background(), design, ClosureOptions{
		Timing: DesignOptions{Threshold: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Closed || report.FinalWNS < 0 || len(report.Edits) == 0 {
		t.Fatalf("CloseTiming did not repair the chip: %+v", report)
	}
	if !strings.Contains(report.Summary(), "closure fixme") {
		t.Errorf("summary:\n%s", report.Summary())
	}

	// CloseSession form: fork a fresh session, close the fork, and confirm
	// the original stayed failing — the Fork/what-if contract through the
	// façade.
	sess, err := NewDesignSession(context.Background(), design, DesignOptions{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	fork := ForkDesignSession(sess)
	forkRep, err := CloseSession(context.Background(), fork, ClosureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !forkRep.Closed {
		t.Fatalf("fork close: %+v", forkRep)
	}
	if fork.Report().WNS < 0 {
		t.Error("closed fork still reports negative WNS")
	}
	if sess.Report().WNS >= 0 {
		t.Error("closing the fork repaired the original session too")
	}
}
