// Package rcdelay is a Go implementation of Penfield & Rubinstein's
// "Signal Delay in RC Tree Networks" (1981): computationally simple upper
// and lower bounds on signal delay through MOS interconnect with fanout,
// computed from three characteristic times (TP, TDe, TRe) of the RC tree.
//
// The package is a façade over the internal implementation:
//
//   - build trees with NewBuilder (code), ParseNetlist (SPICE-like decks) or
//     ParseExpression (the paper's URC/WB/WC algebra, eq. 18);
//   - Analyze computes the characteristic times and bound evaluators for
//     every output;
//   - Bounds answers the paper's three headline questions: bound the delay
//     given a threshold (TMin/TMax), bound the voltage given a time
//     (VMin/VMax), or certify a deadline (OK);
//   - SimulateStep provides the exact step response of the same network via
//     eigendecomposition, for validation and for resolving Unknown verdicts;
//   - AnalyzeBatch and NewBatchEngine fan many trees across a worker pool
//     with content-hash memoization of repeated networks (cmd/rcserve is
//     the HTTP form of the same engine);
//   - NewEditTree wraps a tree in an incremental overlay that absorbs local
//     edits and re-certifies outputs in O(depth) instead of O(n) — the
//     engine behind opt's sizing loops and rcserve's editing sessions;
//   - ParseDesign and AnalyzeDesign lift the per-net bounds to chip level: a
//     multi-net Design (nets glued by gate stage edges) levelizes into a DAG,
//     per-net bounds fan across the batch pool, and interval arrival times
//     propagate to report per-endpoint slack, WNS/TNS and critical paths
//     (cmd/rcserve's /design endpoints and statime -design are the HTTP and
//     CLI forms);
//   - NewDesignSession keeps a design hot across ECO edits: every net mounts
//     an EditTree, and Apply re-times only the edited nets' downstream fanout
//     cones, returning updated slack and the invalidated critical paths
//     (POST /design/{id}/edit and statime -eco are the HTTP and CLI forms);
//   - CloseTiming runs the automated timing-closure engine: failing endpoints
//     are mined for candidate repairs (driver sizing, wire rebuffering, load
//     trimming, stub pruning), candidates are evaluated concurrently as
//     what-if trials on session forks, and the best slack-gain-per-cost move
//     is accepted until WNS reaches zero or a budget runs out. The result is
//     a replayable ECO edit list, the closure trajectory, and the Pareto
//     frontier of (cost, WNS) states visited (POST /design/{id}/close and
//     statime -close are the HTTP and CLI forms);
//   - AnalyzeCorners lifts the analysis to process variation: slow/typ/fast
//     corner sweeps with per-net Gaussian derating run as vectorized passes
//     over the flat timing arena, reporting per-endpoint slack distributions,
//     corner-tagged WNS/TNS and criticality probability (POST
//     /design/{id}/corners and statime -corners are the HTTP and CLI forms).
//
// Element units are the caller's choice: ohms with farads give seconds,
// ohms with picofarads give picoseconds (the paper's §V convention).
package rcdelay

import (
	"context"
	"io"

	"repro/internal/algebra"
	"repro/internal/batch"
	"repro/internal/closure"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/mcd"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Core re-exported types. These are aliases, so values flow freely between
// the façade and the internal packages.
type (
	// Tree is an immutable RC tree network.
	Tree = rctree.Tree
	// NodeID identifies a node within a Tree.
	NodeID = rctree.NodeID
	// Builder constructs trees incrementally.
	Builder = rctree.Builder
	// Times holds the characteristic times (TP, TD, TR, Ree) of one output.
	Times = rctree.Times
	// Bounds evaluates the Penfield–Rubinstein bounds for one output.
	Bounds = core.Bounds
	// Result pairs an output with its Times and Bounds.
	Result = core.Result
	// Verdict is the OK certification result (Passes/Unknown/Fails).
	Verdict = core.Verdict
	// DelayRow is one threshold row of a Figure 10-style delay table.
	DelayRow = core.DelayRow
	// VoltageRow is one time row of a Figure 10-style voltage table.
	VoltageRow = core.VoltageRow
	// CurvePoint samples the bound envelope for plotting.
	CurvePoint = core.CurvePoint
)

// Verdict values (Figure 9 of the paper).
const (
	Passes  = core.Passes
	Unknown = core.Unknown
	Fails   = core.Fails
)

// Root is the input node of every tree.
const Root = rctree.Root

// NewBuilder starts a new tree whose input node has the given name
// ("" defaults to "in").
func NewBuilder(inputName string) *Builder { return rctree.NewBuilder(inputName) }

// ParseNetlist reads a SPICE-like deck (R/C/U cards with .input/.output
// directives) and returns the tree it describes.
func ParseNetlist(src string) (*Tree, error) { return netlist.Parse(src) }

// WriteNetlist renders a tree as a deck that round-trips through
// ParseNetlist.
func WriteNetlist(t *Tree) string { return netlist.Write(t) }

// ParseExpression reads the paper's algebraic notation, e.g.
//
//	(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9
//
// and returns the network as a tree plus the output node (the expression's
// port 2).
func ParseExpression(src string) (*Tree, NodeID, error) {
	e, err := algebra.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	return algebra.ToTree(e)
}

// FormatExpression renders the subnetwork driving output e in the paper's
// notation — the inverse of ParseExpression up to value-preserving
// regrouping.
func FormatExpression(t *Tree, e NodeID) (string, error) {
	expr, err := algebra.FromTree(t, e)
	if err != nil {
		return "", err
	}
	return algebra.Format(expr), nil
}

// CharacteristicTimes computes TP, TDe, TRe and Ree for output e in one
// O(n) pass.
func CharacteristicTimes(t *Tree, e NodeID) (Times, error) {
	return t.CharacteristicTimes(e)
}

// NewBounds returns a bound evaluator for precomputed characteristic times.
func NewBounds(tm Times) (*Bounds, error) { return core.New(tm) }

// BoundsFor computes the bounds of output e directly from the tree.
func BoundsFor(t *Tree, e NodeID) (*Bounds, error) {
	tm, err := t.CharacteristicTimes(e)
	if err != nil {
		return nil, err
	}
	return core.New(tm)
}

// Analyze computes Times and Bounds for every designated output.
func Analyze(t *Tree) ([]Result, error) { return core.AnalyzeTree(t) }

// CriticalOutputs sorts analysis results by descending TMax at the given
// threshold — the slowest-certifiable output first.
func CriticalOutputs(results []Result, threshold float64) []Result {
	return core.CriticalOutputs(results, threshold)
}

// EditTree is a mutable overlay over a Tree that absorbs local edits
// (SetResistance, SetCapacitance, SetLine, ScaleDriver, Grow, Graft, Prune)
// in O(depth) and answers characteristic-time queries in O(depth) — the
// incremental engine behind opt's bisections and rcserve's session API.
// An EditTree is not safe for concurrent use; see the incr package docs.
type EditTree = incr.EditTree

// EdgeKind distinguishes lumped resistors from distributed RC lines when
// growing or grafting onto an EditTree.
type EdgeKind = rctree.EdgeKind

// Edge kinds for EditTree.Grow and EditTree.Graft.
const (
	EdgeResistor = rctree.EdgeResistor
	EdgeLine     = rctree.EdgeLine
)

// NewEditTree wraps t in an incremental-analysis overlay. The tree is
// copied; t stays immutable and may keep serving other readers. After local
// edits, re-certifying an output costs O(depth) instead of the O(n) full
// analysis — see BenchmarkIncrementalSweep for the measured gap.
func NewEditTree(t *Tree) *EditTree { return incr.New(t) }

// Batch-analysis types, re-exported from the internal engine.
type (
	// BatchJob is one unit of batch work: a tree plus the thresholds,
	// time points and deadline checks to evaluate on it.
	BatchJob = batch.Job
	// BatchResult answers one BatchJob, outputs in declaration order.
	BatchResult = batch.Result
	// BatchCheck is one deadline certification within a BatchJob.
	BatchCheck = batch.Check
	// BatchOptions configures a BatchEngine (worker count, cache size).
	BatchOptions = batch.Options
	// BatchEngine is a reusable worker pool with a shared memoization
	// cache; share one engine so callers benefit from each other's
	// cache entries.
	BatchEngine = batch.Engine
)

// NewBatchEngine returns a batch-analysis engine. The zero Options give
// GOMAXPROCS workers and the default cache size.
func NewBatchEngine(opt BatchOptions) *BatchEngine { return batch.New(opt) }

// Chip-level timing types, re-exported from the internal engine.
type (
	// Design is the multi-net form of a chip: named RC-tree nets plus stage
	// edges ("output X of net A drives the input of net B through a gate
	// with intrinsic delay d") and endpoint requirements.
	Design = netlist.Design
	// DesignNet is one named net of a Design.
	DesignNet = netlist.DesignNet
	// Stage is one gate edge of a Design.
	Stage = netlist.Stage
	// Require pins a required arrival time on one endpoint.
	Require = netlist.Require
	// DesignOptions configures AnalyzeDesign (threshold, default required
	// time, critical-path count, compute core, parallel scheduler, shared
	// engine, sequential mode).
	DesignOptions = timing.Options
	// DesignCore selects the compute core of a design analysis: the flat
	// SoA/CSR arena (the default) or the original pointer-tree core behind
	// the batch engine.
	DesignCore = timing.CoreKind
	// DesignScheduler selects how a parallel arena propagation distributes
	// nets across workers: level barriers or work-stealing (the default).
	DesignScheduler = timing.Scheduler
	// DesignReport is the chip-level analysis: per-endpoint arrival
	// intervals and slack, WNS/TNS, and the K most critical paths.
	DesignReport = timing.Report
	// EndpointSlack is one endpoint's record within a DesignReport.
	EndpointSlack = timing.EndpointSlack
	// TimingGraph is the levelized DAG form of a Design; build once with
	// NewTimingGraph and analyze repeatedly.
	TimingGraph = timing.Graph
	// ArrivalInterval is a closed [min, max] interval bracketing an arrival
	// time.
	ArrivalInterval = timing.Interval
	// DesignSession is the incremental re-timing engine: one EditTree per
	// net, O(depth) ECO edits, dirty-cone arrival re-propagation. Not safe
	// for concurrent use — wrap it in a mutex to share across goroutines.
	DesignSession = timing.Session
	// DesignEdit is one ECO operation on a design session, addressed by net
	// (and node) name.
	DesignEdit = timing.Edit
	// DesignApplyResult summarizes one DesignSession.Apply: dirty-cone
	// statistics, updated WNS/TNS and invalidated critical paths.
	DesignApplyResult = timing.ApplyResult
	// EcoReport is the before/after slack-delta view of one ECO edit list.
	EcoReport = timing.EcoReport
)

// Compute-core and scheduler selectors for DesignOptions.
const (
	// CoreAuto picks the flat arena core unless DesignOptions.Engine is set
	// (an explicit shared engine selects the pointer core, whose per-net
	// computations hit the engine's memoization cache).
	CoreAuto = timing.CoreAuto
	// CoreArena forces the flat SoA/CSR arena core.
	CoreArena = timing.CoreArena
	// CorePointer forces the original pointer-tree core.
	CorePointer = timing.CorePointer
	// SchedAuto picks the default parallel schedule (work-stealing).
	SchedAuto = timing.SchedAuto
	// SchedLevelBarrier shards each topological level across workers with a
	// barrier between levels.
	SchedLevelBarrier = timing.SchedLevelBarrier
	// SchedWorkSteal drops the barriers: fanin counters gate readiness and
	// idle workers steal pending cones.
	SchedWorkSteal = timing.SchedWorkSteal
)

// ParseDesign reads a multi-net design deck (.net/.endnet sections plus
// .stage and .require cards) and returns the design it describes.
func ParseDesign(src string) (*Design, error) { return netlist.ParseDesign(src) }

// WriteDesign renders a design as a deck that round-trips through
// ParseDesign.
func WriteDesign(d *Design) string { return netlist.WriteDesign(d) }

// NewTimingGraph levelizes a design into its timing DAG, rejecting cyclic
// stage edges.
func NewTimingGraph(d *Design) (*TimingGraph, error) { return timing.NewGraph(d) }

// AnalyzeDesign computes chip-level slack for a multi-net design: every
// net's output bounds are computed in levelized order and interval arrival
// times (min of the paper's lower bounds, max of the upper bounds) propagate
// along the stage edges to every endpoint. The zero DesignOptions use
// threshold 0.5 on the flat arena core with the work-stealing schedule
// across GOMAXPROCS workers; pass a shared BatchEngine to route per-net
// computations through the pointer core instead, so repeated nets hit the
// engine's memoization cache.
func AnalyzeDesign(ctx context.Context, d *Design, opt DesignOptions) (*DesignReport, error) {
	return timing.Analyze(ctx, d, opt)
}

// NewDesignSession runs the initial full analysis of a design and mounts the
// incremental re-timing session on it: every net becomes a mutable EditTree,
// and Apply absorbs ECO edits (setR/setC/addC/setLine/scaleDriver/grow/
// prune/addOutput/removeOutput, addressed net.node) by recomputing only the
// edited nets' bounds and re-propagating arrivals through their downstream
// fanout cones — BenchmarkDesignECO measures the gap to a full re-analysis.
// cmd/rcserve's POST /design/{id}/edit and statime -eco are the HTTP and CLI
// forms.
func NewDesignSession(ctx context.Context, d *Design, opt DesignOptions) (*DesignSession, error) {
	return timing.NewSession(ctx, d, opt)
}

// ParseEcoEdits reads a textual ECO edit list (one edit per line, SPICE
// value suffixes allowed) — the statime -eco file format.
func ParseEcoEdits(src string) ([]DesignEdit, error) { return timing.ParseEdits(src) }

// FormatEcoEdits renders edits back into the ECO line grammar. Edits read by
// ParseEcoEdits round-trip exactly; hand-assembled edits with missing values
// or unknown ops render as lines a reparse rejects, so a malformed list
// fails loudly instead of losing edits silently.
func FormatEcoEdits(edits []DesignEdit) string { return timing.FormatEdits(edits) }

// NewEcoReport joins a before and an after report of the same design into
// the slack-delta view (per-endpoint slack movement, WNS/TNS before vs
// after, dirty-cone statistics from the ApplyResult).
func NewEcoReport(before, after *DesignReport, res DesignApplyResult) *EcoReport {
	return timing.NewEcoReport(before, after, res)
}

// Durability types, re-exported from the internal WAL engine. A WALStore
// persists design sessions as snapshot decks plus per-design logs of
// accepted ECO edits (in the FormatEcoEdits grammar, fsynced per append);
// recovery parses the newest snapshot and replays the log tail through
// NewDesignSession + Apply, reproducing the live session's every bound to
// 1e-9 (the internal property test pins this). cmd/rcserve's -data-dir flag
// is the serving form.
type (
	// WALStore is a directory of per-design durability state.
	WALStore = wal.Store
	// WALLog is one design's open write-ahead log; Append logs accepted
	// edits, Rotate folds them into a fresh snapshot.
	WALLog = wal.Log
	// WALMeta carries the analysis options a recovery remounts with.
	WALMeta = wal.Meta
	// WALRecovered is a recovery's result: snapshot deck, replayable edit
	// tail, and how many torn trailing bytes a crash left behind.
	WALRecovered = wal.Recovered
)

// OpenWAL mounts (creating if needed) a durability directory.
func OpenWAL(dir string) (*WALStore, error) { return wal.Open(dir) }

// Timing-closure types, re-exported from the internal engine.
type (
	// ClosureOptions configures CloseTiming: move budget, cost ceiling,
	// endpoints mined per iteration, trial concurrency, and (via Timing)
	// the analysis options the session mounts with.
	ClosureOptions = closure.Options
	// ClosureReport is the outcome of one closure run: the accepted ECO
	// edit list, the move-by-move trajectory, and the Pareto frontier of
	// (cost, WNS) states visited.
	ClosureReport = closure.Report
	// ClosureMove is one accepted or candidate repair move.
	ClosureMove = closure.Move
	// ClosureTrajectoryPoint is one accepted move plus the design state
	// after it.
	ClosureTrajectoryPoint = closure.TrajectoryPoint
	// ClosureParetoPoint is one non-dominated (cost, WNS) state.
	ClosureParetoPoint = closure.ParetoPoint
	// ClosureProgress is one accepted move as delivered to
	// ClosureOptions.Progress — the event rcserve's SSE stream and statime's
	// -progress flag forward.
	ClosureProgress = closure.ProgressEvent
)

// Telemetry types, re-exported from the internal obs package.
type (
	// MetricsRegistry is the zero-dependency metrics registry (counters,
	// gauges, fixed-bucket histograms) every engine layer can report into;
	// pass one via DesignOptions.Obs, ClosureOptions.Obs or BatchOptions.Obs.
	// A nil registry disables telemetry at the cost of a pointer test.
	MetricsRegistry = obs.Registry
	// MetricsHistogram is one fixed-bucket histogram series with
	// p50/p95/p99 snapshots.
	MetricsHistogram = obs.Histogram
)

// NewMetricsRegistry returns an empty metrics registry. Write it out in
// Prometheus text exposition format with its WritePrometheus method —
// cmd/rcserve's GET /metrics is that call behind HTTP.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Tracing types, re-exported from the internal trace package. A Tracer mints
// hierarchical request traces (every engine layer attaches its phase spans
// through the context) and retains completed ones in a flight recorder;
// cmd/rcserve's middleware and /debug/traces endpoints, and statime's -trace
// flag, are the HTTP and CLI forms.
type (
	// Tracer mints traces and retains completed ones. All methods on a nil
	// *Tracer are no-ops, so tracing is disabled by leaving it nil.
	Tracer = trace.Tracer
	// TracerOptions sizes the tracer's flight recorder (recent/slow ring
	// capacities, slow-pin threshold, per-trace span cap).
	TracerOptions = trace.Options
	// TraceSpan is one live timed operation; children attach via
	// StartTraceSpan. All methods on a nil *TraceSpan are no-ops.
	TraceSpan = trace.Span
	// RecordedTrace is one completed trace as retained by the recorder.
	RecordedTrace = trace.Trace
)

// NewTracer returns a tracer with its flight recorder sized by opt (the zero
// value selects the defaults).
func NewTracer(opt TracerOptions) *Tracer { return trace.New(opt) }

// StartTraceSpan opens a child of ctx's active trace span. When ctx carries
// no span it returns (ctx, nil) after a single context lookup — the same
// pinned-cheap disabled path every engine layer rides.
func StartTraceSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return trace.StartSpan(ctx, name)
}

// WriteChromeTrace renders completed traces as Chrome trace-event JSON, the
// format chrome://tracing and Perfetto load directly (statime -trace writes
// one of these files per run).
func WriteChromeTrace(w io.Writer, traces []*RecordedTrace) error {
	return trace.WriteChrome(w, traces)
}

// CloseTiming runs automated timing closure on a design with negative
// slack: it mounts an incremental re-timing session (opt.Timing), generates
// candidate repair moves on the failing endpoints' critical cones — driver
// upscaling and opt-bisected driver sizing, wire rebuffering via
// setLine+addC, load trimming via setC, parasitic-stub pruning — evaluates
// the candidates concurrently as what-if trials on session forks, and
// accepts the best slack-gain-per-cost move until WNS >= 0, the move budget,
// or the cost ceiling is reached. The accepted edit list replays through
// ParseEcoEdits/NewDesignSession (or statime -eco) to reproduce the reported
// final WNS/TNS; the trajectory and Pareto frontier expose the cost/benefit
// curve behind the greedy path. The input design is never mutated.
//
// The accepted move sequence is deterministic: concurrent and sequential
// trial evaluation produce identical results.
func CloseTiming(ctx context.Context, d *Design, opt ClosureOptions) (*ClosureReport, error) {
	return closure.CloseDesign(ctx, d, opt)
}

// CloseSession runs the same closure loop against an existing design
// session (rcserve's POST /design/{id}/close form). The session is mutated:
// accepted moves stay applied, so on return it sits at the report's final
// state.
func CloseSession(ctx context.Context, sess *DesignSession, opt ClosureOptions) (*ClosureReport, error) {
	return closure.Close(ctx, sess, opt)
}

// ForkDesignSession returns an independent what-if copy of a session in
// O(nets): EditTrees and arrival maps are shared copy-on-write, so trials
// are cheap and forks of the same parent may Apply concurrently with each
// other (each fork on its own goroutine).
func ForkDesignSession(sess *DesignSession) *DesignSession { return sess.Fork() }

// Variation-analysis types, re-exported from the internal mcd engine.
type (
	// Corner is one global process point: every resistance in the design
	// scales by RScale, every capacitance by CScale.
	Corner = mcd.Corner
	// CornerVariation is the per-net Gaussian derating applied on top of
	// each corner (relative 1-sigma spreads; zero disables the draws).
	CornerVariation = mcd.Variation
	// CornerOptions configures AnalyzeCorners (corner list, variation,
	// sample count, seed, threshold, default required time, workers).
	CornerOptions = mcd.Options
	// CornerDist summarizes one sampled scalar: mean/std/min/max plus
	// P50/P95/P99 under the shared internal/stats quantile convention.
	CornerDist = mcd.Dist
	// CornerEndpoint is one endpoint's arrival and slack distributions at
	// one corner, with its criticality probability.
	CornerEndpoint = mcd.EndpointDist
	// CornerResult is the sweep of one corner: nominal and sampled WNS/TNS
	// plus the per-endpoint distributions.
	CornerResult = mcd.CornerResult
	// CornerReport is the full multi-corner variation analysis of a design,
	// with Summary/WriteCSV/WriteJSON render methods.
	CornerReport = mcd.Report
)

// DefaultCorners is the classic three-point sweep: slow (+15% R and C),
// typical, fast (−15%).
func DefaultCorners() []Corner { return mcd.DefaultCorners() }

// AnalyzeCorners runs the multi-corner Monte Carlo variation analysis of a
// design: each corner's global R/C scales, compounded with per-net Gaussian
// factors drawn once per sample and shared across corners, are applied as
// in-place rescales of the flat timing arena's element columns followed by a
// levelized re-propagation — no per-sample tree rebuild. The report carries,
// per corner, nominal and sampled WNS/TNS, per-endpoint arrival and slack
// distributions, and each endpoint's criticality (the fraction of samples in
// which it is the WNS endpoint). Results are bit-identical for a given seed
// regardless of worker count. cmd/rcserve's POST /design/{id}/corners and
// statime -corners are the HTTP and CLI forms.
func AnalyzeCorners(ctx context.Context, d *Design, opt CornerOptions) (*CornerReport, error) {
	return mcd.Analyze(ctx, d, opt)
}

// DesignCorners runs the same variation analysis against a prebuilt
// TimingGraph, so repeated sweeps of one design (different seeds, sample
// counts or corner lists) skip re-levelization. name labels the report.
func DesignCorners(ctx context.Context, g *TimingGraph, name string, opt CornerOptions) (*CornerReport, error) {
	return mcd.AnalyzeGraph(ctx, g, name, opt)
}

// ScaleDesign returns a deep copy of a design with every net's element
// values scaled: net i's resistances by rFactors[i], capacitances by
// cFactors[i] (nil means all ones). Stage delays and required times are
// unscaled — this is the explicit-netlist form of what AnalyzeCorners does
// in place on the arena, and what the corner-aware closure mounts its
// shadow sessions on.
func ScaleDesign(d *Design, rFactors, cFactors []float64) (*Design, error) {
	return mcd.ScaleDesign(d, rFactors, cFactors)
}

// AnalyzeBatch analyzes every job on a one-shot engine with default
// options: the jobs fan out across GOMAXPROCS workers, structurally
// identical trees share one characteristic-time computation, and
// results[i] always answers jobs[i]. Long-lived callers should construct
// a NewBatchEngine once and reuse it so the memoization cache persists
// across calls.
func AnalyzeBatch(ctx context.Context, jobs []BatchJob) []BatchResult {
	return batch.New(BatchOptions{}).Run(ctx, jobs)
}

// StepSim wraps the exact simulator for a tree: distributed lines are
// discretized, the nodal system diagonalized once, and responses queried per
// original output node.
type StepSim struct {
	resp    *sim.Response
	circuit *sim.Circuit
	mapping map[NodeID]NodeID
}

// SimulateStep builds the exact unit-step solver for the tree. segments
// controls the pi-ladder discretization of each distributed line (16 is
// plenty for plotting; error falls as 1/segments²).
func SimulateStep(t *Tree, segments int) (*StepSim, error) {
	lumped, mapping, err := sim.Discretize(t, segments)
	if err != nil {
		return nil, err
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		return nil, err
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		return nil, err
	}
	return &StepSim{resp: resp, circuit: ckt, mapping: mapping}, nil
}

// Voltage returns the exact response of (original) node e at time t.
func (s *StepSim) Voltage(e NodeID, t float64) (float64, error) {
	i, err := s.circuit.Index(s.mapping[e])
	if err != nil {
		return 0, err
	}
	return s.resp.Voltage(i, t), nil
}

// CrossingTime returns the exact time node e reaches threshold v.
func (s *StepSim) CrossingTime(e NodeID, v float64) (float64, error) {
	i, err := s.circuit.Index(s.mapping[e])
	if err != nil {
		return 0, err
	}
	return s.resp.CrossingTime(i, v, 1e-12), nil
}

// Response exposes the underlying modal response for advanced use (e.g. the
// waveform package's superposition).
func (s *StepSim) Response() *sim.Response { return s.resp }

// Index maps an original tree node to the simulator's unknown index.
func (s *StepSim) Index(e NodeID) (int, error) {
	return s.circuit.Index(s.mapping[e])
}
