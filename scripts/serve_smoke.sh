#!/bin/sh
# serve_smoke.sh — end-to-end durability smoke for rcserve + rcload:
#
#   1. start rcserve with a durability dir and drive it with rcload at two
#      concurrency levels (mixed edit/slack/close traffic), recording
#      per-operation p50/p99 latencies and the final WNS/TNS of every design;
#   2. check the flight recorder: /debug/traces must list traces from the
#      load traffic and one must export as Chrome trace events;
#   3. kill -9 the server mid-flight state (no drain, no final snapshot);
#   4. restart it on the same data dir and verify every design recovered —
#      same WNS/TNS to 1e-9, same edit count — timing the recovery lookups.
#
# The combined result lands in BENCH_serve.json at the repo root: one "load"
# suite per concurrency level plus the post-kill "recovery" verification.
# Any lost or drifted design makes the script (and CI) fail.
#
# Usage: scripts/serve_smoke.sh [conc1] [conc2] [ops_per_session]
#        (defaults 4, 16 and 50)
set -eu

cd "$(dirname "$0")/.."
c1="${1:-4}"
c2="${2:-16}"
ops="${3:-50}"

work="$(mktemp -d)"
datadir="$work/data"
port=$((20000 + $$ % 20000))
addr="http://127.0.0.1:$port"
server_pid=""

cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "serve_smoke: building rcserve and rcload"
go build -o "$work/rcserve" ./cmd/rcserve
go build -o "$work/rcload" ./cmd/rcload

start_server() {
    "$work/rcserve" -addr "127.0.0.1:$port" -data-dir "$datadir" \
        -snapshot-every 32 -snapshot-interval 5s >"$work/server.log" 2>&1 &
    server_pid=$!
    "$work/rcload" -mode wait -addr "$addr" -timeout 30s -out "$work/wait.json"
}

echo "serve_smoke: starting rcserve on $addr (data dir $datadir)"
start_server

echo "serve_smoke: load suite at concurrency $c1"
"$work/rcload" -mode load -addr "$addr" -sessions "$c1" -ops "$ops" \
    -seed 1 -out "$work/load_c1.json"
echo "serve_smoke: load suite at concurrency $c2 (state recorded for recovery check)"
"$work/rcload" -mode load -addr "$addr" -sessions "$c2" -ops "$ops" \
    -seed 2 -state "$work/state.json" -out "$work/load_c2.json"

echo "serve_smoke: checking the flight recorder at /debug/traces"
curl -sf "$addr/debug/traces" >"$work/traces.json"
grep -q '"id"' "$work/traces.json" || {
    echo "serve_smoke: /debug/traces recorded no traces after the load suites" >&2
    exit 1
}
tid="$(sed -n 's/.*"id": *"\([0-9a-f]\{32\}\)".*/\1/p' "$work/traces.json" | head -1)"
curl -sf "$addr/debug/traces/$tid?format=chrome" | grep -q '"traceEvents"' || {
    echo "serve_smoke: trace $tid did not export as Chrome trace events" >&2
    exit 1
}

echo "serve_smoke: kill -9 mid-state, restarting on the same data dir"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
start_server

echo "serve_smoke: verifying every design recovered (WNS/TNS to 1e-9)"
"$work/rcload" -mode verify -addr "$addr" -state "$work/state.json" \
    -out "$work/verify.json"

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Compose BENCH_serve.json from the three rcload reports.
{
    printf '{\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | cut -d' ' -f3)"
    printf '  "ops_per_session": %s,\n' "$ops"
    printf '  "load": {\n'
    printf '    "c%s": ' "$c1"; cat "$work/load_c1.json"
    printf ',\n    "c%s": ' "$c2"; cat "$work/load_c2.json"
    printf '  },\n'
    printf '  "recovery": '; cat "$work/verify.json"
    printf '}\n'
} >BENCH_serve.json

echo "serve_smoke: wrote BENCH_serve.json"
cat BENCH_serve.json
