#!/bin/sh
# bench_trajectory.sh — run the full-vs-incremental sweep benchmarks and
# record ns/op (plus the derived speedups) in BENCH_incremental.json at the
# repo root. This file is the performance trajectory: re-run after perf work
# and commit the result so regressions show up in review.
#
# Usage: scripts/bench_trajectory.sh [benchtime]   (default 200x)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-200x}"
out="BENCH_incremental.json"

raw="$(go test -run '^$' -bench 'BenchmarkIncremental' -benchtime "$benchtime" -count 1 ./internal/incr/)"
echo "$raw"

printf '%s\n' "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version | cut -d' ' -f3)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[n++] = name
}
END {
    if (n == 0) { print "bench_trajectory: no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup\": {\n"
    printf "    \"sweep\": %.1f,\n", ns["IncrementalSweep/full"] / ns["IncrementalSweep/incremental"]
    printf "    \"single_output\": %.1f\n", ns["IncrementalSingleOutput/full"] / ns["IncrementalSingleOutput/incremental"]
    printf "  }\n"
    printf "}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
