#!/bin/sh
# bench_trajectory.sh — run the trajectory benchmarks and record ns/op (plus
# the derived speedups) at the repo root:
#
#   BENCH_incremental.json  full-vs-incremental EditTree sweeps
#   BENCH_timing.json       sequential vs levelized-parallel chip slack,
#                           full-reanalyze vs dirty-cone ECO re-timing, and
#                           sequential vs concurrent closure-trial evaluation
#
# These files are the performance trajectory: re-run after perf work and
# commit the result so regressions show up in review.
#
# Usage: scripts/bench_trajectory.sh [benchtime] [timing_benchtime]
#        (defaults 200x and 30x — the chip benchmark analyzes a 240-net
#        design per iteration, so it runs fewer of them)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-200x}"
timing_benchtime="${2:-30x}"

# Shared awk prologue: collect "BenchmarkName iters ns/op" lines into ns[],
# then emit the JSON header and benchmark table. Each caller appends its own
# speedup section (which must open with a comma after the benchmarks block).
collect='
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[n++] = name
}
function header() {
    if (n == 0) { print "bench_trajectory: no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }"
}
'
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
goversion="$(go version | cut -d' ' -f3)"
maxprocs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

raw="$(go test -run '^$' -bench 'BenchmarkIncremental' -benchtime "$benchtime" -count 1 ./internal/incr/)"
echo "$raw"
printf '%s\n' "$raw" | awk -v date="$date" -v goversion="$goversion" -v maxprocs="$maxprocs" "$collect"'
END {
    header()
    printf ",\n  \"speedup\": {\n"
    printf "    \"sweep\": %.1f,\n", ns["IncrementalSweep/full"] / ns["IncrementalSweep/incremental"]
    printf "    \"single_output\": %.1f\n", ns["IncrementalSingleOutput/full"] / ns["IncrementalSingleOutput/incremental"]
    printf "  }\n}\n"
}' > BENCH_incremental.json
echo "wrote BENCH_incremental.json:"
cat BENCH_incremental.json

raw="$(go test -run '^$' -bench 'BenchmarkDesignSlack|BenchmarkDesignECO|BenchmarkClosure' -benchtime "$timing_benchtime" -count 1 ./internal/timing/ ./internal/closure/)"
echo "$raw"
printf '%s\n' "$raw" | awk -v date="$date" -v goversion="$goversion" -v maxprocs="$maxprocs" "$collect"'
END {
    header()
    printf ",\n  \"speedup\": {\n"
    printf "    \"parallel_vs_sequential\": %.2f,\n", ns["DesignSlack/sequential"] / ns["DesignSlack/parallel"]
    printf "    \"parallel_nocache_vs_sequential\": %.2f,\n", ns["DesignSlack/sequential"] / ns["DesignSlack/parallel-nocache"]
    printf "    \"eco_dirty_cone_vs_full\": %.1f,\n", ns["DesignECO/full-reanalyze"] / ns["DesignECO/dirty-cone"]
    printf "    \"closure_concurrent_vs_sequential\": %.2f\n", ns["Closure/sequential"] / ns["Closure/concurrent"]
    printf "  }\n}\n"
}' > BENCH_timing.json
echo "wrote BENCH_timing.json:"
cat BENCH_timing.json
