#!/bin/sh
# bench_trajectory.sh — run the trajectory benchmarks and record ns/op (plus
# the derived speedups) at the repo root:
#
#   BENCH_incremental.json  full-vs-incremental EditTree sweeps
#   BENCH_timing.json       arena vs pointer chip-slack cores, the arena
#                           propagation kernel under its three schedules,
#                           full-reanalyze vs dirty-cone ECO re-timing,
#                           sequential vs concurrent closure-trial evaluation,
#                           and the corner sweep's in-place arena rescale vs
#                           per-sample netlist rebuild
#   BENCH_serve.json        rcserve under rcload: per-operation p50/p99 at
#                           two concurrency levels plus kill -9 recovery
#                           timing (via scripts/serve_smoke.sh)
#
# The timing suite runs twice — once pinned to GOMAXPROCS=1 and once on all
# cores (the second run is skipped on a single-core machine) — and every
# benchmark entry records the gomaxprocs it ran under, so a multicore speedup
# claim can never hide a single-core measurement.
#
# These files are the performance trajectory: re-run after perf work and
# commit the result so regressions show up in review.
#
# Usage: scripts/bench_trajectory.sh [benchtime] [timing_benchtime]
#        (defaults 200x and 30x — the chip benchmark analyzes a 240-net
#        design per iteration, so it runs fewer of them)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-200x}"
timing_benchtime="${2:-30x}"

# Shared awk prologue: collect "BenchmarkName iters ns/op" lines into ns[],
# then emit the JSON header and benchmark table. Each caller appends its own
# speedup section (which must open with a comma after the benchmarks block).
collect='
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[n++] = name
}
function header() {
    if (n == 0) { print "bench_trajectory: no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }"
}
'
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
goversion="$(go version | cut -d' ' -f3)"
maxprocs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

raw="$(go test -run '^$' -bench 'BenchmarkIncremental' -benchtime "$benchtime" -count 1 ./internal/incr/)"
echo "$raw"
printf '%s\n' "$raw" | awk -v date="$date" -v goversion="$goversion" -v maxprocs="$maxprocs" "$collect"'
END {
    header()
    printf ",\n  \"speedup\": {\n"
    printf "    \"sweep\": %.1f,\n", ns["IncrementalSweep/full"] / ns["IncrementalSweep/incremental"]
    printf "    \"single_output\": %.1f\n", ns["IncrementalSingleOutput/full"] / ns["IncrementalSingleOutput/incremental"]
    printf "  }\n}\n"
}' > BENCH_incremental.json
echo "wrote BENCH_incremental.json:"
cat BENCH_incremental.json

# Timing suite: once pinned to one P, once on every core the machine has.
# Each run's output is prefixed with a GOMAXPROCS marker line so the awk
# below can tag every entry with the parallelism it was measured under.
run_timing() {
    echo "GOMAXPROCS $1"
    GOMAXPROCS="$1" go test -run '^$' \
        -bench 'BenchmarkDesignSlack|BenchmarkDesignECO|BenchmarkArenaPropagation|BenchmarkClosure|BenchmarkCornerSweep' \
        -benchtime "$timing_benchtime" -count 1 ./internal/timing/ ./internal/closure/ ./internal/mcd/
}
raw="$(run_timing 1)"
if [ "$maxprocs" -gt 1 ]; then
    raw="$raw
$(run_timing "$maxprocs")"
else
    echo "bench_trajectory: single-core machine, skipping the all-cores run" >&2
fi
echo "$raw"
printf '%s\n' "$raw" | awk -v date="$date" -v goversion="$goversion" -v maxprocs="$maxprocs" '
$1 == "GOMAXPROCS" { mp = $2; if (mp > maxmp) maxmp = mp; next }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    key = name "@" mp
    if (!(key in ns)) { order[n++] = key; bname[key] = name; bmp[key] = mp }
    ns[key] = $3
}
# speedup queues one ratio line if both measurements exist.
function speedup(label, num, den) {
    if ((num in ns) && (den in ns) && ns[den] > 0)
        sl[sn++] = sprintf("    \"%s\": %.2f", label, ns[num] / ns[den])
}
END {
    if (n == 0) { print "bench_trajectory: no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpus\": %s,\n", maxprocs
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        k = order[i]
        printf "    {\"name\": \"%s\", \"gomaxprocs\": %s, \"ns_per_op\": %s}%s\n", \
            bname[k], bmp[k], ns[k], (i < n-1 ? "," : "")
    }
    printf "  ],\n"
    speedup("arena_vs_pointer_sequential", "DesignSlack/pointer-sequential@1", "DesignSlack/arena-sequential@1")
    speedup("worksteal_vs_sequential_singlecore", "DesignSlack/arena-sequential@1", "DesignSlack/arena-worksteal@1")
    if (maxmp > 1) {
        speedup("worksteal_vs_sequential_multicore", \
            "DesignSlack/arena-sequential@" maxmp, "DesignSlack/arena-worksteal@" maxmp)
        speedup("worksteal_vs_levelbarrier_multicore", \
            "DesignSlack/arena-levelbarrier@" maxmp, "DesignSlack/arena-worksteal@" maxmp)
        speedup("propagation_worksteal_vs_sequential_multicore", \
            "ArenaPropagation/sequential@" maxmp, "ArenaPropagation/worksteal@" maxmp)
    }
    speedup("eco_dirty_cone_vs_full", "DesignECO/full-reanalyze@1", "DesignECO/dirty-cone@1")
    speedup("corner_sweep_arena_vs_rebuild", "CornerSweep/rebuild@1", "CornerSweep/arena@1")
    speedup("closure_concurrent_vs_sequential", "Closure/sequential@" maxmp, "Closure/concurrent@" maxmp)
    # Ratio of instrumented to bare propagation: a registry-enabled pass per
    # the observability contract must stay within 2% of the no-op path
    # (metrics_overhead <= 1.02).
    speedup("metrics_overhead", "ArenaPropagationObs/enabled@1", "ArenaPropagationObs/disabled@1")
    # Same contract for the tracer: an analysis wrapped in a live trace (one
    # root span per request plus the engine child spans) must stay within 5%
    # of the untraced path (trace_overhead <= 1.05).
    speedup("trace_overhead", "ArenaPropagationTrace/enabled@1", "ArenaPropagationTrace/disabled@1")
    printf "  \"speedup\": {\n"
    for (i = 0; i < sn; i++) printf "%s%s\n", sl[i], (i < sn-1 ? "," : "")
    printf "  }\n}\n"
}' > BENCH_timing.json
echo "wrote BENCH_timing.json:"
cat BENCH_timing.json

# Serve suite: rcserve driven by rcload at two concurrency levels, then
# killed -9 and restarted to time WAL recovery. Writes BENCH_serve.json.
sh scripts/serve_smoke.sh
