#!/bin/sh
# coverage.sh — run the internal packages under -coverprofile, print the
# per-package coverage summary plus the aggregate, and fail if any internal
# package drops below the floor (default 75%). CI runs this; locally:
#
#   sh scripts/coverage.sh [floor]
set -eu

cd "$(dirname "$0")/.."
floor="${1:-75}"

# The profile is a scratch artifact: never leave it in the working tree,
# whichever way the run ends (make clean is the backstop).
trap 'rm -f cover.out' EXIT

out="$(go test -coverprofile=cover.out ./internal/...)"
printf '%s\n' "$out"
echo "----"
go tool cover -func=cover.out | tail -1

printf '%s\n' "$out" | awk -v floor="$floor" '
/\[no test files\]/ {
    printf "FAIL: %s has no test files (0%% coverage, floor is %s%%)\n", $2, floor
    bad = 1
}
/coverage:/ {
    pct = ""
    for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1)
    if (pct == "[no") next   # "coverage: [no statements]" — nothing to cover
    sub(/%/, "", pct)
    if (pct + 0 < floor + 0) {
        printf "FAIL: %s coverage %s%% is below the %s%% floor\n", $2, pct, floor
        bad = 1
    }
}
END {
    if (bad) exit 1
    printf "coverage floor: every internal package >= %s%%\n", floor
}'
