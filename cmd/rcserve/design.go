package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	rcdelay "repro"
)

// A designStore holds analyzed chip designs for slack queries: POST /design
// runs the full levelized analysis once through the shared batch engine, and
// GET /design/{id}/slack re-reads the stored report without recomputation.
// Lifecycle (ids, TTL expiry, LRU eviction) lives in the shared ttlStore.
type designStore = ttlStore[*rcdelay.DesignReport]

func newDesignStore(ttl time.Duration, max int) *designStore {
	return newTTLStore[*rcdelay.DesignReport](ttl, max)
}

// --- HTTP surface -----------------------------------------------------------

// designRequest is the POST /design body: the design deck plus analysis
// knobs. Threshold 0 means 0.5; required <= 0 leaves endpoints without an
// explicit .require card unconstrained; k 0 means 5 critical paths.
type designRequest struct {
	Design    string  `json:"design"`
	Threshold float64 `json:"threshold,omitempty"`
	Required  float64 `json:"required,omitempty"`
	K         int     `json:"k,omitempty"`
}

// designSummaryJSON is the POST /design answer: the id to query plus the
// headline numbers. The full endpoint table lives at /design/{id}/slack.
type designSummaryJSON struct {
	ID        string   `json:"id"`
	Design    string   `json:"design,omitempty"`
	Nets      int      `json:"nets"`
	Stages    int      `json:"stages"`
	Levels    int      `json:"levels"`
	Endpoints int      `json:"endpoints"`
	Threshold float64  `json:"threshold"`
	WNS       *float64 `json:"wns,omitempty"`
	TNS       float64  `json:"tns"`
	Passes    int      `json:"passes"`
	Unknown   int      `json:"unknown"`
	Fails     int      `json:"fails"`
}

func designSummary(e *entry[*rcdelay.DesignReport]) designSummaryJSON {
	r := e.val
	p, u, f := r.CountByVerdict()
	var wns *float64
	if !math.IsInf(r.WNS, 0) { // +Inf: no constrained endpoint
		wns = &r.WNS
	}
	return designSummaryJSON{
		ID: e.id, Design: r.Design,
		Nets: r.Nets, Stages: r.Stages, Levels: r.Levels,
		Endpoints: len(r.Endpoints), Threshold: r.Threshold,
		WNS: wns, TNS: r.TNS,
		Passes: p, Unknown: u, Fails: f,
	}
}

// handleDesignCreate parses and analyzes a design in one shot. The per-net
// bound computations route through the server's shared batch engine, so
// repeated nets — across designs or across clients — hit the shared
// memoization cache.
func (s *server) handleDesignCreate(w http.ResponseWriter, r *http.Request) {
	s.counters.designReqs.Add(1)
	var req designRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	if req.Design == "" {
		httpError(w, "request names no design: set design to a multi-net deck", http.StatusUnprocessableEntity)
		return
	}
	design, err := rcdelay.ParseDesign(req.Design)
	if err != nil {
		httpError(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	report, err := rcdelay.AnalyzeDesign(r.Context(), design, rcdelay.DesignOptions{
		Threshold: req.Threshold,
		Required:  req.Required,
		K:         req.K,
		Engine:    s.engine,
	})
	if err != nil {
		httpError(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	ent := s.designs.create(report)
	writeJSON(w, http.StatusCreated, designSummary(ent))
}

func (s *server) lookupDesign(w http.ResponseWriter, r *http.Request) (*entry[*rcdelay.DesignReport], bool) {
	e, ok := s.designs.get(r.PathValue("id"))
	if !ok {
		httpError(w, "unknown or expired design", http.StatusNotFound)
		return nil, false
	}
	return e, true
}

func (s *server) handleDesignInfo(w http.ResponseWriter, r *http.Request) {
	s.counters.designReqs.Add(1)
	if e, ok := s.lookupDesign(w, r); ok {
		writeJSON(w, http.StatusOK, designSummary(e))
	}
}

// handleDesignSlack returns the stored chip report: the summary plus the
// full endpoint slack table (worst first) and the critical paths. The
// report type carries its own JSON-safe marshaling.
func (s *server) handleDesignSlack(w http.ResponseWriter, r *http.Request) {
	s.counters.designReqs.Add(1)
	s.counters.slackQueries.Add(1)
	e, ok := s.lookupDesign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     e.id,
		"report": e.val,
	})
}

func (s *server) handleDesignDelete(w http.ResponseWriter, r *http.Request) {
	s.counters.designReqs.Add(1)
	if !s.designs.delete(r.PathValue("id")) {
		httpError(w, "unknown or expired design", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}
