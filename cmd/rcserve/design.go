package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	rcdelay "repro"
	"repro/internal/wal"
)

// A designSession is one live chip design held server-side as an incremental
// re-timing session: POST /design runs the full levelized analysis once
// through the shared batch engine, POST /design/{id}/edit absorbs ECO edits
// by re-timing only the dirty cone, and GET /design/{id}/slack reads the
// current report. The mutex serializes all access to the session (which is
// single-writer); lifecycle (ids, TTL expiry, LRU eviction) lives in the
// shared ttlStore.
type designSession struct {
	mu    sync.Mutex
	sess  *rcdelay.DesignSession
	edits int
	// wlog is the session's durability log (nil when the server runs
	// without -data-dir): accepted edits are appended under mu, so log
	// order is apply order, and snapshots rotate it. opts remembers the
	// analysis knobs so an eviction-recovery rebuilds the same session.
	wlog *wal.Log
	opts designRequest
}

type designStore = ttlStore[*designSession]

func newDesignStore(cfg storeConfig) *designStore {
	return newTTLStore[*designSession](cfg)
}

// --- HTTP surface -----------------------------------------------------------

// designRequest is the POST /design body: the design deck plus analysis
// knobs. Threshold 0 means 0.5; required <= 0 leaves endpoints without an
// explicit .require card unconstrained; k 0 means 5 critical paths.
type designRequest struct {
	Design    string  `json:"design"`
	Threshold float64 `json:"threshold,omitempty"`
	Required  float64 `json:"required,omitempty"`
	K         int     `json:"k,omitempty"`
}

// designSummaryJSON is the POST /design answer: the id to query plus the
// headline numbers. The full endpoint table lives at /design/{id}/slack.
type designSummaryJSON struct {
	ID        string   `json:"id"`
	Design    string   `json:"design,omitempty"`
	Nets      int      `json:"nets"`
	Stages    int      `json:"stages"`
	Levels    int      `json:"levels"`
	Endpoints int      `json:"endpoints"`
	Threshold float64  `json:"threshold"`
	Gen       uint64   `json:"gen"`
	Edits     int      `json:"edits"`
	WNS       *float64 `json:"wns,omitempty"`
	TNS       float64  `json:"tns"`
	Passes    int      `json:"passes"`
	Unknown   int      `json:"unknown"`
	Fails     int      `json:"fails"`
}

// designSummary snapshots one session's headline numbers under its lock.
func designSummary(e *entry[*designSession]) designSummaryJSON {
	ds := e.val
	ds.mu.Lock()
	defer ds.mu.Unlock()
	r := ds.sess.Report()
	p, u, f := r.CountByVerdict()
	var wns *float64
	if !math.IsInf(r.WNS, 0) { // +Inf: no constrained endpoint
		wns = &r.WNS
	}
	return designSummaryJSON{
		ID: e.id, Design: r.Design,
		Nets: r.Nets, Stages: r.Stages, Levels: r.Levels,
		Endpoints: len(r.Endpoints), Threshold: r.Threshold,
		Gen: ds.sess.Gen(), Edits: ds.edits,
		WNS: wns, TNS: r.TNS,
		Passes: p, Unknown: u, Fails: f,
	}
}

// handleDesignCreate parses a design and mounts an incremental re-timing
// session on it. The initial full analysis rides the flat arena core —
// self-contained, allocation-lean and parallel-schedulable — rather than the
// server's shared batch engine; the engine (and its cross-client memoization
// cache) still serves the /analyze tree-batch endpoint.
func (s *server) handleDesignCreate(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	var req designRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	if req.Design == "" {
		httpError(w, r, "request names no design: set design to a multi-net deck", http.StatusUnprocessableEntity)
		return
	}
	design, err := rcdelay.ParseDesign(req.Design)
	if err != nil {
		httpError(w, r, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	sess, err := rcdelay.NewDesignSession(r.Context(), design, rcdelay.DesignOptions{
		Threshold: req.Threshold,
		Required:  req.Required,
		K:         req.K,
		Obs:       s.obs,
	})
	if err != nil {
		httpError(w, r, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	ent := s.designs.create(&designSession{sess: sess, opts: req})
	defer s.designs.release(ent)
	if err := s.walCreate(ent, design); err != nil {
		s.designs.delete(ent.id)
		httpError(w, r, fmt.Sprintf("durability write failed: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusCreated, designSummary(ent))
}

// lookupDesign resolves the path id to a pinned entry — eviction skips
// pinned entries, so the session cannot vanish mid-request; the caller must
// release it. With durability on, a design that was TTL/LRU-evicted from
// memory but still has its WAL on disk is transparently recovered.
func (s *server) lookupDesign(w http.ResponseWriter, r *http.Request) (*entry[*designSession], bool) {
	id := r.PathValue("id")
	e, ok := s.designs.get(id)
	if !ok {
		e, ok = s.recoverDesign(r.Context(), id)
	}
	if !ok {
		httpError(w, r, "unknown or expired design", http.StatusNotFound)
		return nil, false
	}
	return e, true
}

func (s *server) handleDesignInfo(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	if e, ok := s.lookupDesign(w, r); ok {
		defer s.designs.release(e)
		writeJSON(w, http.StatusOK, designSummary(e))
	}
}

// designEditRequest is the POST /design/{id}/edit body: ECO edits applied in
// order, each addressed by net (and node) name.
type designEditRequest struct {
	Edits []rcdelay.DesignEdit `json:"edits"`
}

// designEditResponse reports how much of the design one edit batch dirtied.
// On a failing edit the applied prefix stays in effect (the session keeps a
// consistent propagated state) and error carries the reason.
type designEditResponse struct {
	ID               string   `json:"id"`
	Gen              uint64   `json:"gen"`
	Applied          int      `json:"applied"`
	DirtyNets        int      `json:"dirtyNets"`
	VisitedNets      int      `json:"visitedNets"`
	WNS              *float64 `json:"wns,omitempty"`
	TNS              float64  `json:"tns"`
	InvalidatedPaths []string `json:"invalidatedPaths,omitempty"`
	Error            string   `json:"error,omitempty"`
}

// handleDesignEdit applies ECO edits under the session lock and re-times
// only the dirty cone — the chip-level analogue of the /session edit
// endpoint, with slack instead of characteristic times in the answer.
func (s *server) handleDesignEdit(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	done, ok := admitOr429(w, r, s.designs, r.PathValue("id"))
	if !ok {
		return
	}
	defer done()
	ent, ok := s.lookupDesign(w, r)
	if !ok {
		return
	}
	defer s.designs.release(ent)
	var req designEditRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	if len(req.Edits) == 0 {
		httpError(w, r, "edit request carries no edits", http.StatusUnprocessableEntity)
		return
	}
	if !s.designs.allowEdits(ent, len(req.Edits)) {
		rateLimited(w, r, "design edit rate limit exceeded")
		return
	}
	ds := ent.val
	ds.mu.Lock()
	res, err := ds.sess.ApplyCtx(r.Context(), req.Edits)
	ds.edits += res.Applied
	var wns *float64
	if !math.IsInf(res.WNS, 0) {
		wns = &res.WNS
	}
	walErr := s.walAppend(r.Context(), ds, req.Edits[:res.Applied])
	ds.mu.Unlock()
	if walErr != nil {
		httpError(w, r, fmt.Sprintf("durability write failed: %v", walErr), http.StatusInternalServerError)
		return
	}
	s.count("rcserve_design_edits_total", int64(res.Applied))
	resp := designEditResponse{
		ID: ent.id, Gen: res.Gen, Applied: res.Applied,
		DirtyNets: res.DirtyNets, VisitedNets: res.VisitedNets,
		WNS: wns, TNS: res.TNS, InvalidatedPaths: res.InvalidatedPaths,
	}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// handleDesignSlack returns the session's current chip report: the full
// endpoint slack table (worst first) and the critical paths, re-derived
// incrementally after edits. The report type carries its own JSON-safe
// marshaling.
func (s *server) handleDesignSlack(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	s.count("rcserve_slack_queries_total", 1)
	done, ok := admitOr429(w, r, s.designs, r.PathValue("id"))
	if !ok {
		return
	}
	defer done()
	ent, ok := s.lookupDesign(w, r)
	if !ok {
		return
	}
	defer s.designs.release(ent)
	ds := ent.val
	ds.mu.Lock()
	// Reports are immutable once built (edits build fresh ones), so the
	// snapshot can be marshaled outside the lock.
	gen, report := ds.sess.Gen(), ds.sess.Report()
	ds.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     ent.id,
		"gen":    gen,
		"report": report,
	})
}

// designCloseRequest is the POST /design/{id}/close body: the repair
// budgets. All fields are optional (an empty body closes with the default
// 32-move budget and no cost ceiling); sequential forces one-at-a-time
// trial evaluation, which accepts the same moves, only slower.
type designCloseRequest struct {
	MaxMoves     int     `json:"maxMoves,omitempty"`
	MaxCost      float64 `json:"maxCost,omitempty"`
	TopEndpoints int     `json:"topEndpoints,omitempty"`
	Sequential   bool    `json:"sequential,omitempty"`
}

// designCloseResponse answers with the closure report — accepted edits,
// trajectory, Pareto frontier — plus the session generation afterwards. The
// accepted edits stay applied to the live session, so a following GET
// /design/{id}/slack reads the repaired design. When the run was cut short
// (a cancelled request context), error carries the reason and report the
// partial trajectory — the only record of the moves that did land.
type designCloseResponse struct {
	ID     string                 `json:"id"`
	Gen    uint64                 `json:"gen"`
	Report *rcdelay.ClosureReport `json:"report"`
	Error  string                 `json:"error,omitempty"`
}

// handleDesignClose runs the automated timing-closure engine on the live
// session under its lock: failing endpoints are mined for candidate repairs,
// candidates are evaluated concurrently as what-if trials on session forks,
// and the best slack-gain-per-cost moves are accepted until WNS >= 0 or a
// budget runs out.
func (s *server) handleDesignClose(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	s.count("rcserve_close_requests_total", 1)
	done, ok := admitOr429(w, r, s.designs, r.PathValue("id"))
	if !ok {
		return
	}
	defer done()
	ent, ok := s.lookupDesign(w, r)
	if !ok {
		return
	}
	defer s.designs.release(ent)
	var req designCloseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamDesignClose(w, r, ent, req)
		return
	}
	ds := ent.val
	ds.mu.Lock()
	report, err := rcdelay.CloseSession(r.Context(), ds.sess, rcdelay.ClosureOptions{
		MaxMoves:     req.MaxMoves,
		MaxCost:      req.MaxCost,
		TopEndpoints: req.TopEndpoints,
		Sequential:   req.Sequential,
		Obs:          s.obs,
	})
	var walErr error
	if report != nil {
		// A cancelled run still applied its accepted prefix; account for it
		// in memory and in the WAL (closure moves are ECO edits like any
		// other — a restart replays the repair).
		ds.edits += len(report.Edits)
		walErr = s.walAppend(r.Context(), ds, report.Edits)
	}
	gen := ds.sess.Gen()
	ds.mu.Unlock()
	if err != nil && report == nil {
		httpError(w, r, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if walErr != nil {
		httpError(w, r, fmt.Sprintf("durability write failed: %v", walErr), http.StatusInternalServerError)
		return
	}
	s.count("rcserve_closure_moves_total", int64(len(report.Moves)))
	resp := designCloseResponse{ID: ent.id, Gen: gen, Report: report}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// designCornersRequest is the POST /design/{id}/corners body: the variation
// knobs. All fields are optional — an empty body sweeps the default
// slow/typ/fast corners with no per-net derating (a pure corner sweep) and
// the engine's default sample count; rSigma/cSigma switch on Gaussian
// per-net derating. The analysis threshold and default required time are the
// session's own, so the nominal typ corner agrees with GET /design/{id}/slack.
type designCornersRequest struct {
	Samples    int              `json:"samples,omitempty"`
	Seed       int64            `json:"seed,omitempty"`
	RSigma     float64          `json:"rSigma,omitempty"`
	CSigma     float64          `json:"cSigma,omitempty"`
	Corners    []rcdelay.Corner `json:"corners,omitempty"`
	Sequential bool             `json:"sequential,omitempty"`
}

// designCornersResponse answers with the multi-corner variation report for
// the session's current (post-edit) design state, tagged with the generation
// it was computed at.
type designCornersResponse struct {
	ID     string                `json:"id"`
	Gen    uint64                `json:"gen"`
	Report *rcdelay.CornerReport `json:"report"`
}

// handleDesignCorners runs the multi-corner Monte Carlo sweep on the live
// session's current design. The design is materialized under the session
// lock (a consistent snapshot at one generation), then the sweep — the
// expensive part — runs outside it, so edits are not blocked behind a long
// variation analysis.
func (s *server) handleDesignCorners(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	s.count("rcserve_corner_requests_total", 1)
	done, ok := admitOr429(w, r, s.designs, r.PathValue("id"))
	if !ok {
		return
	}
	defer done()
	ent, ok := s.lookupDesign(w, r)
	if !ok {
		return
	}
	defer s.designs.release(ent)
	var req designCornersRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	ds := ent.val
	ds.mu.Lock()
	design, derr := ds.sess.Design()
	gen := ds.sess.Gen()
	threshold := ds.sess.Threshold()
	required := ds.sess.Required()
	ds.mu.Unlock()
	if derr != nil {
		httpError(w, r, derr.Error(), http.StatusInternalServerError)
		return
	}
	report, err := rcdelay.AnalyzeCorners(r.Context(), design, rcdelay.CornerOptions{
		Corners:    req.Corners,
		Samples:    req.Samples,
		Seed:       req.Seed,
		Variation:  rcdelay.CornerVariation{RSigma: req.RSigma, CSigma: req.CSigma},
		Threshold:  threshold,
		Required:   required,
		Sequential: req.Sequential,
		Obs:        s.obs,
	})
	if err != nil {
		httpError(w, r, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusOK, designCornersResponse{ID: ent.id, Gen: gen, Report: report})
}

func (s *server) handleDesignDelete(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_design_requests_total", 1)
	id := r.PathValue("id")
	deleted := s.designs.delete(id)
	// An explicit close also retires the durable state: without it the WAL
	// would resurrect the design on the next lookup.
	if s.wal != nil && s.wal.Exists(id) {
		if err := s.wal.Remove(id); err != nil {
			httpError(w, r, fmt.Sprintf("durability remove failed: %v", err), http.StatusInternalServerError)
			return
		}
		deleted = true
	}
	if !deleted {
		httpError(w, r, "unknown or expired design", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}
