package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// entry is one stored value with its lifecycle bookkeeping. The payload is
// reachable as val; the id is the client-facing handle.
type entry[T any] struct {
	id       string
	val      T
	created  time.Time
	lastUsed time.Time
}

// ttlStore owns live server-side state handed out by id — editing sessions,
// analyzed designs — with one shared lifecycle discipline: TTL-based expiry
// (entries idle longer than ttl are dropped on access or sweep) plus an LRU
// cap so a flood of clients cannot hold unbounded state in memory.
type ttlStore[T any] struct {
	mu  sync.Mutex
	m   map[string]*entry[T]
	ttl time.Duration
	max int
	now func() time.Time // injected for tests

	created, expired, closed, evicted int64
}

func newTTLStore[T any](ttl time.Duration, max int) *ttlStore[T] {
	if ttl <= 0 {
		ttl = defaultSessionTTL
	}
	if max <= 0 {
		max = defaultMaxSessions
	}
	return &ttlStore[T]{m: make(map[string]*entry[T]), ttl: ttl, max: max, now: time.Now}
}

func newStoreID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("rcserve: store id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// create registers a new entry, evicting the least-recently-used one if the
// store is full.
func (st *ttlStore[T]) create(v T) *entry[T] {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	if len(st.m) >= st.max {
		var lru *entry[T]
		for _, e := range st.m {
			if lru == nil || e.lastUsed.Before(lru.lastUsed) {
				lru = e
			}
		}
		delete(st.m, lru.id)
		st.evicted++
	}
	now := st.now()
	e := &entry[T]{id: newStoreID(), val: v, created: now, lastUsed: now}
	st.m[e.id] = e
	st.created++
	return e
}

// get returns the entry and refreshes its idle clock.
func (st *ttlStore[T]) get(id string) (*entry[T], bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return nil, false
	}
	if st.now().Sub(e.lastUsed) > st.ttl {
		delete(st.m, id)
		st.expired++
		return nil, false
	}
	e.lastUsed = st.now()
	return e, true
}

func (st *ttlStore[T]) delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[id]; !ok {
		return false
	}
	delete(st.m, id)
	st.closed++
	return true
}

// sweep evicts every entry idle past the TTL; the janitor calls it
// periodically, and create calls it opportunistically.
func (st *ttlStore[T]) sweep() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
}

func (st *ttlStore[T]) sweepLocked() {
	cutoff := st.now().Add(-st.ttl)
	for id, e := range st.m {
		if e.lastUsed.Before(cutoff) {
			delete(st.m, id)
			st.expired++
		}
	}
}

// janitor sweeps until stop is closed (main never closes it; tests do).
func (st *ttlStore[T]) janitor(stop <-chan struct{}) {
	interval := st.ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			st.sweep()
		case <-stop:
			return
		}
	}
}

// active reports the live entry count — the sampled store-depth gauge.
func (st *ttlStore[T]) active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// stats snapshots the counters for /healthz and /debug/vars.
func (st *ttlStore[T]) stats() map[string]any {
	st.mu.Lock()
	defer st.mu.Unlock()
	return map[string]any{
		"active":  len(st.m),
		"created": st.created,
		"expired": st.expired,
		"closed":  st.closed,
		"evicted": st.evicted,
	}
}
