package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// entry is one stored value with its lifecycle bookkeeping. The payload is
// reachable as val; the id is the client-facing handle. refs counts in-flight
// handlers holding the entry (pinned entries are never evicted — eviction
// racing a handler that is still mutating val was the old store's data-loss
// bug); the token-bucket fields implement the per-session edit-rate limit.
// All mutable fields are guarded by the owning shard's mutex.
type entry[T any] struct {
	id       string
	val      T
	created  time.Time
	lastUsed time.Time
	refs     int
	tokens   float64
	tokensAt time.Time
}

// storeShard is one lock domain of the store: its own map, its own mutex,
// its own janitor tick, and its own bounded admission queue. Requests for
// different ids proceed without contending on a process-wide lock.
type storeShard[T any] struct {
	mu  sync.Mutex
	m   map[string]*entry[T]
	sem chan struct{} // admission queue: tokens for in-flight heavy requests
}

// storeConfig sizes a ttlStore. Zero values select the defaults.
type storeConfig struct {
	ttl    time.Duration // idle lifetime (>= ttl idle expires)
	max    int           // global entry cap; LRU-evicted beyond
	shards int           // id-hash lock shards
	queue  int           // per-shard admission-queue depth (in-flight heavy ops)
	// editRate/editBurst parameterize the per-session token bucket: a
	// session may apply editBurst edits at once and editRate edits/second
	// sustained. editRate 0 disables the limit.
	editRate  float64
	editBurst float64
}

func (c storeConfig) withDefaults() storeConfig {
	if c.ttl <= 0 {
		c.ttl = defaultSessionTTL
	}
	if c.max <= 0 {
		c.max = defaultMaxSessions
	}
	if c.shards <= 0 {
		c.shards = defaultStoreShards
	}
	if c.queue <= 0 {
		c.queue = defaultShardQueue
	}
	if c.editRate > 0 && c.editBurst <= 0 {
		c.editBurst = defaultEditBurst
	}
	return c
}

// ttlStore owns live server-side state handed out by id — editing sessions,
// analyzed designs — with one shared lifecycle discipline: TTL-based expiry
// (entries idle for the full ttl are dropped on access or sweep) plus a
// global LRU cap so a flood of clients cannot hold unbounded state in
// memory. The map is split across id-hash shards, each with its own lock,
// janitor and bounded admission queue, so concurrent requests for different
// ids do not serialize on one mutex.
//
// Lifecycle safety: get and create return entries pinned (refs > 0); the
// caller must release them when its request is done. Eviction — TTL sweep
// and LRU displacement alike — skips pinned entries, so a handler holding a
// *session can never have the store drop it mid-edit.
type ttlStore[T any] struct {
	cfg    storeConfig
	now    func() time.Time // injected for tests
	shards []*storeShard[T]
	size   atomic.Int64 // live entries across all shards

	created, expired, closed, evicted, rejected, throttled atomic.Int64
}

func newTTLStore[T any](cfg storeConfig) *ttlStore[T] {
	cfg = cfg.withDefaults()
	st := &ttlStore[T]{cfg: cfg, now: time.Now, shards: make([]*storeShard[T], cfg.shards)}
	for i := range st.shards {
		st.shards[i] = &storeShard[T]{
			m:   make(map[string]*entry[T]),
			sem: make(chan struct{}, cfg.queue),
		}
	}
	return st
}

func newStoreID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("rcserve: store id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// shardOf maps an id onto its lock shard (FNV-1a; ids are random hex, so any
// cheap hash spreads them evenly).
func (st *ttlStore[T]) shardOf(id string) *storeShard[T] {
	h := fnv.New32a()
	h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// expiredLocked is the one TTL comparison both the access path and the sweep
// use: an entry idle for the full ttl is expired. (The old store wrote the
// comparison twice — "> ttl" in get, "Before(cutoff)" in sweep — leaving the
// exact-ttl boundary to drift between the paths.)
func (st *ttlStore[T]) expiredLocked(e *entry[T], now time.Time) bool {
	return now.Sub(e.lastUsed) >= st.cfg.ttl
}

// create registers a new entry under a fresh id and returns it pinned; the
// caller must release it. If the store is at capacity the globally
// least-recently-used unpinned entry is evicted first.
func (st *ttlStore[T]) create(v T) *entry[T] {
	now := st.now()
	for st.size.Load() >= int64(st.cfg.max) {
		if !st.evictLRU() {
			break // every entry is pinned: admit over cap rather than drop live work
		}
	}
	e := &entry[T]{
		id: newStoreID(), val: v,
		created: now, lastUsed: now,
		refs:   1,
		tokens: st.cfg.editBurst, tokensAt: now,
	}
	sh := st.shardOf(e.id)
	sh.mu.Lock()
	st.sweepShardLocked(sh, now)
	sh.m[e.id] = e
	sh.mu.Unlock()
	st.size.Add(1)
	st.created.Add(1)
	return e
}

// insert registers a recovered entry under its persisted id, pinned. It
// reports false (and stores nothing) if the id is already live.
func (st *ttlStore[T]) insert(id string, v T) (*entry[T], bool) {
	now := st.now()
	e := &entry[T]{
		id: id, val: v,
		created: now, lastUsed: now,
		refs:   1,
		tokens: st.cfg.editBurst, tokensAt: now,
	}
	sh := st.shardOf(id)
	sh.mu.Lock()
	if _, exists := sh.m[id]; exists {
		sh.mu.Unlock()
		return nil, false
	}
	sh.m[id] = e
	sh.mu.Unlock()
	st.size.Add(1)
	st.created.Add(1)
	return e, true
}

// evictLRU drops the globally least-recently-used unpinned entry. It reports
// false when nothing is evictable (all entries pinned or the store empty).
func (st *ttlStore[T]) evictLRU() bool {
	var (
		victim      string
		victimShard *storeShard[T]
		victimUsed  time.Time
	)
	for _, sh := range st.shards {
		sh.mu.Lock()
		for id, e := range sh.m {
			if e.refs > 0 {
				continue
			}
			if victimShard == nil || e.lastUsed.Before(victimUsed) {
				victim, victimShard, victimUsed = id, sh, e.lastUsed
			}
		}
		sh.mu.Unlock()
	}
	if victimShard == nil {
		return false
	}
	victimShard.mu.Lock()
	defer victimShard.mu.Unlock()
	e, ok := victimShard.m[victim]
	if !ok || e.refs > 0 {
		return false // raced a get; caller retries or gives up
	}
	delete(victimShard.m, victim)
	st.size.Add(-1)
	st.evicted.Add(1)
	return true
}

// get returns the entry pinned and refreshes its idle clock; the caller must
// release it. A pinned entry never TTL-expires out from under its other
// holders: expiry only applies at refs == 0.
func (st *ttlStore[T]) get(id string) (*entry[T], bool) {
	sh := st.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[id]
	if !ok {
		return nil, false
	}
	now := st.now()
	if e.refs == 0 && st.expiredLocked(e, now) {
		delete(sh.m, id)
		st.size.Add(-1)
		st.expired.Add(1)
		return nil, false
	}
	e.lastUsed = now
	e.refs++
	return e, true
}

// release unpins an entry returned by create, insert or get.
func (st *ttlStore[T]) release(e *entry[T]) {
	sh := st.shardOf(e.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.refs <= 0 {
		panic("rcserve: store release without matching get")
	}
	e.refs--
}

// delete removes an entry by id. In-flight holders keep their pinned pointer
// (an explicit close while another request is mid-flight is the client's
// race to lose), but no new get will find it.
func (st *ttlStore[T]) delete(id string) bool {
	sh := st.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; !ok {
		return false
	}
	delete(sh.m, id)
	st.size.Add(-1)
	st.closed.Add(1)
	return true
}

// admit takes an admission token from id's shard queue. It reports false —
// the 429 backpressure signal — when the shard already has queue-depth
// requests in flight; otherwise the returned func releases the token.
func (st *ttlStore[T]) admit(id string) (func(), bool) {
	sh := st.shardOf(id)
	select {
	case sh.sem <- struct{}{}:
		return func() { <-sh.sem }, true
	default:
		st.rejected.Add(1)
		return nil, false
	}
}

// allowEdits charges n edits against the entry's token bucket, reporting
// false — the 429 rate-limit signal — when the session is over its sustained
// edit rate. A zero-configured store never throttles.
func (st *ttlStore[T]) allowEdits(e *entry[T], n int) bool {
	if st.cfg.editRate <= 0 || n <= 0 {
		return true
	}
	sh := st.shardOf(e.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := st.now()
	e.tokens += st.cfg.editRate * now.Sub(e.tokensAt).Seconds()
	if e.tokens > st.cfg.editBurst {
		e.tokens = st.cfg.editBurst
	}
	e.tokensAt = now
	if e.tokens < float64(n) {
		st.throttled.Add(1)
		return false
	}
	e.tokens -= float64(n)
	return true
}

// sweep evicts every unpinned entry idle past the TTL across all shards; the
// janitors call it shard-locally, and create calls it opportunistically on
// the shard it inserts into.
func (st *ttlStore[T]) sweep() {
	now := st.now()
	for _, sh := range st.shards {
		sh.mu.Lock()
		st.sweepShardLocked(sh, now)
		sh.mu.Unlock()
	}
}

func (st *ttlStore[T]) sweepShardLocked(sh *storeShard[T], now time.Time) {
	for id, e := range sh.m {
		if e.refs == 0 && st.expiredLocked(e, now) {
			delete(sh.m, id)
			st.size.Add(-1)
			st.expired.Add(1)
		}
	}
}

// janitor runs one sweeper goroutine per shard until stop is closed, so a
// slow sweep of one shard never delays the others. janitor itself blocks
// until stop (main runs it on its own goroutine; tests close stop).
func (st *ttlStore[T]) janitor(stop <-chan struct{}) {
	interval := st.cfg.ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	var wg sync.WaitGroup
	for _, sh := range st.shards {
		wg.Add(1)
		go func(sh *storeShard[T]) {
			defer wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					now := st.now()
					sh.mu.Lock()
					st.sweepShardLocked(sh, now)
					sh.mu.Unlock()
				case <-stop:
					return
				}
			}
		}(sh)
	}
	wg.Wait()
}

// ids snapshots the live entry ids (the snapshotter's iteration order).
func (st *ttlStore[T]) ids() []string {
	var out []string
	for _, sh := range st.shards {
		sh.mu.Lock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// active reports the live entry count — the sampled store-depth gauge.
func (st *ttlStore[T]) active() int { return int(st.size.Load()) }

// stats snapshots the counters for /healthz and /debug/vars.
func (st *ttlStore[T]) stats() map[string]any {
	return map[string]any{
		"active":    st.active(),
		"shards":    len(st.shards),
		"created":   st.created.Load(),
		"expired":   st.expired.Load(),
		"closed":    st.closed.Load(),
		"evicted":   st.evicted.Load(),
		"rejected":  st.rejected.Load(),
		"throttled": st.throttled.Load(),
	}
}
