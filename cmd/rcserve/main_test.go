package main

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	rcdelay "repro"
)

const fig7Deck = `.input in
R1 in n1 15
C1 n1 0 2
R2 n1 b 8
C2 b 0 7
U1 n1 n2 3 4
C3 n2 0 9
.output n2
`

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: 2}))
	srv.logger = slog.New(slog.DiscardHandler)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, decoded
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("status = %v, want ok", body["status"])
	}
	if _, ok := body["cache"].(map[string]any); !ok {
		t.Errorf("healthz lacks cache stats: %v", body)
	}
	if resp, err := http.Post(ts.URL+"/healthz", "application/json", nil); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /healthz status %d, want 405", resp.StatusCode)
		}
	}
}

// TestAnalyzeSingle posts the paper's Figure 7 deck and checks the times
// and a Figure 10 row against the published values.
func TestAnalyzeSingle(t *testing.T) {
	_, ts := testServer(t)
	status, body := post(t, ts.URL+"/analyze",
		`{"netlist": `+jsonString(fig7Deck)+`, "thresholds": [0.5], "times": [100]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	outputs := body["outputs"].([]any)
	if len(outputs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(outputs))
	}
	out := outputs[0].(map[string]any)
	if out["name"] != "n2" {
		t.Errorf("output name = %v, want n2", out["name"])
	}
	times := out["times"].(map[string]any)
	if tp := times["tp"].(float64); tp != 419 {
		t.Errorf("TP = %v, want 419", tp)
	}
	if td := times["td"].(float64); td != 363 {
		t.Errorf("TD = %v, want 363", td)
	}
	delay := out["delay"].([]any)[0].(map[string]any)
	if tmax := delay["tmax"].(float64); tmax < 314 || tmax > 315 {
		t.Errorf("TMax(0.5) = %v, want ~314.15", tmax)
	}
	voltage := out["voltage"].([]any)[0].(map[string]any)
	if vmin := voltage["vmin"].(float64); vmin < 0.16 || vmin > 0.17 {
		t.Errorf("VMin(100) = %v, want ~0.166", vmin)
	}
}

// TestAnalyzeBatchAndCache posts a two-job batch twice; the second request
// must be answered from cache (same engine behind the handler).
func TestAnalyzeBatchAndCache(t *testing.T) {
	srv, ts := testServer(t)
	body := `{"jobs": [
		{"tag": "deck", "netlist": ` + jsonString(fig7Deck) + `, "thresholds": [0.9]},
		{"tag": "expr", "expression": "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"}
	]}`
	status, first := post(t, ts.URL+"/analyze", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, first)
	}
	results := first["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r0 := results[0].(map[string]any)
	r1 := results[1].(map[string]any)
	if r0["tag"] != "deck" || r1["tag"] != "expr" {
		t.Errorf("job order not preserved: %v, %v", r0["tag"], r1["tag"])
	}
	// The deck and the expression describe the same network, so they share
	// a content-hash key (the expression tree's node names differ; the
	// canonical form erases that).
	if r0["key"] != r1["key"] {
		t.Errorf("equivalent networks got different keys:\n%v\n%v", r0["key"], r1["key"])
	}
	status, _ = post(t, ts.URL+"/analyze", body)
	if status != http.StatusOK {
		t.Fatalf("second request status %d", status)
	}
	stats := srv.engine.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 (all four jobs describe one network)", stats.Misses)
	}
	if stats.Hits != 3 {
		t.Errorf("hits = %d, want 3", stats.Hits)
	}
}

func TestCertify(t *testing.T) {
	_, ts := testServer(t)
	status, body := post(t, ts.URL+"/certify",
		`{"netlist": `+jsonString(fig7Deck)+`, "checks": [
			{"output": "n2", "v": 0.5, "t": 100},
			{"output": "n2", "v": 0.5, "t": 250},
			{"output": "n2", "v": 0.5, "t": 400}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	if _, hasOutputs := body["outputs"]; hasOutputs {
		t.Errorf("certify response leaked analysis outputs: %v", body)
	}
	checks := body["checks"].([]any)
	want := []string{"fails", "unknown", "passes"}
	for i, w := range want {
		c := checks[i].(map[string]any)
		if c["verdict"] != w {
			t.Errorf("check %d verdict = %v, want %s", i, c["verdict"], w)
		}
	}
}

// TestErrorIsolation checks malformed jobs fail alone in a batch, and that
// a malformed single request reports 422.
func TestErrorIsolation(t *testing.T) {
	_, ts := testServer(t)
	status, body := post(t, ts.URL+"/analyze", `{"jobs": [
		{"netlist": "not a deck"},
		{"expression": "URC 15 9"},
		{}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-job errors", status)
	}
	results := body["results"].([]any)
	if e := results[0].(map[string]any)["error"]; e == nil || e == "" {
		t.Error("bad deck did not report a per-job error")
	}
	if e, ok := results[1].(map[string]any)["error"]; ok {
		t.Errorf("valid job caught neighbor's error: %v", e)
	}
	if e := results[2].(map[string]any)["error"]; e == nil || e == "" {
		t.Error("empty job did not report a per-job error")
	}

	status, _ = post(t, ts.URL+"/analyze", `{"netlist": "not a deck"}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("single bad deck status %d, want 422", status)
	}
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(`{"unknown_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", resp.StatusCode)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
