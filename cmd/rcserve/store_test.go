package main

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a store's injected now() deterministically; Advance is
// safe to call concurrently with store operations.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestStorePinnedEntrySurvivesEviction is the regression test for the old
// store's lifecycle race: LRU eviction could drop a session while a handler
// was still mutating it. With pinning, the in-flight (pinned) entry is never
// the eviction victim — the unpinned one is, even when it is more recently
// used on the clock.
func TestStorePinnedEntrySurvivesEviction(t *testing.T) {
	clk := newFakeClock()
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 2})
	st.now = clk.Now

	pinned := st.create(1) // stays pinned: an in-flight handler holds it
	clk.Advance(time.Second)
	idle := st.create(2)
	st.release(idle) // handler done; evictable
	clk.Advance(time.Second)

	// At cap: the next create must evict. The oldest entry is pinned, so the
	// victim has to be the idle one.
	third := st.create(3)
	defer st.release(third)
	if _, ok := st.get(idle.id); ok {
		t.Fatal("unpinned entry survived eviction while an older pinned one existed")
	}
	if e, ok := st.get(pinned.id); !ok {
		t.Fatal("pinned entry was evicted out from under its holder")
	} else {
		st.release(e)
	}
	st.release(pinned)
}

// TestStoreAllPinnedAdmitsOverCap: when every entry is pinned there is no
// safe victim; the store admits over cap rather than dropping live work.
func TestStoreAllPinnedAdmitsOverCap(t *testing.T) {
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 1})
	a := st.create(1)
	b := st.create(2) // over cap: a is pinned, not evictable
	if st.active() != 2 {
		t.Fatalf("active = %d, want 2 (admit over cap)", st.active())
	}
	st.release(a)
	st.release(b)
}

// TestStorePinnedEntrySurvivesSweep: a pinned entry idle past the TTL must
// not expire — neither on sweep nor on a concurrent get — until released.
func TestStorePinnedEntrySurvivesSweep(t *testing.T) {
	clk := newFakeClock()
	st := newTTLStore[int](storeConfig{ttl: time.Minute, max: 8})
	st.now = clk.Now

	e := st.create(7)
	clk.Advance(2 * time.Minute) // far past the TTL, but still pinned
	st.sweep()
	got, ok := st.get(e.id)
	if !ok {
		t.Fatal("pinned entry expired under its holder")
	}
	st.release(got)
	st.release(e)

	// Unpinned now, and get refreshed lastUsed; after another full TTL the
	// sweep takes it.
	clk.Advance(time.Minute)
	st.sweep()
	if _, ok := st.get(e.id); ok {
		t.Fatal("unpinned idle entry survived the sweep")
	}
}

// TestStoreTTLBoundaryAgrees pins the unified expiry comparison: an entry
// idle exactly one TTL is expired on the access path and the sweep path
// alike. (The old store used "> ttl" in get but "Before(cutoff)" in sweep,
// so at exactly ttl the two paths disagreed.)
func TestStoreTTLBoundaryAgrees(t *testing.T) {
	ttl := time.Minute

	// Access path: get at exactly ttl idle misses.
	clk := newFakeClock()
	st := newTTLStore[int](storeConfig{ttl: ttl, max: 8})
	st.now = clk.Now
	e := st.create(1)
	st.release(e)
	clk.Advance(ttl)
	if _, ok := st.get(e.id); ok {
		t.Error("get: entry idle exactly ttl still alive")
	}

	// Sweep path: same idle age, same verdict.
	clk2 := newFakeClock()
	st2 := newTTLStore[int](storeConfig{ttl: ttl, max: 8})
	st2.now = clk2.Now
	e2 := st2.create(1)
	st2.release(e2)
	clk2.Advance(ttl)
	st2.sweep()
	if st2.active() != 0 {
		t.Error("sweep: entry idle exactly ttl still alive")
	}

	// One tick short of the boundary survives both paths.
	clk3 := newFakeClock()
	st3 := newTTLStore[int](storeConfig{ttl: ttl, max: 8})
	st3.now = clk3.Now
	e3 := st3.create(1)
	st3.release(e3)
	clk3.Advance(ttl - time.Nanosecond)
	st3.sweep()
	got, ok := st3.get(e3.id)
	if !ok {
		t.Fatal("entry idle just under ttl expired early")
	}
	st3.release(got)
}

// TestStoreAdmitBackpressure: the per-shard admission queue hands out
// exactly queue-depth tokens; the next request is refused (the handler's 429)
// until one is returned.
func TestStoreAdmitBackpressure(t *testing.T) {
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 8, shards: 1, queue: 2})
	d1, ok1 := st.admit("a")
	d2, ok2 := st.admit("b")
	if !ok1 || !ok2 {
		t.Fatal("admission under the queue depth refused")
	}
	if _, ok := st.admit("c"); ok {
		t.Fatal("admission over the queue depth granted")
	}
	if st.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", st.rejected.Load())
	}
	d1()
	d3, ok := st.admit("c")
	if !ok {
		t.Fatal("freed admission token not reusable")
	}
	d3()
	d2()
}

// TestStoreEditRateLimit: the token bucket grants the burst immediately,
// refuses beyond it, and refills at editRate per (injected-clock) second.
func TestStoreEditRateLimit(t *testing.T) {
	clk := newFakeClock()
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 8, editRate: 10, editBurst: 5})
	st.now = clk.Now
	e := st.create(1)
	defer st.release(e)

	if !st.allowEdits(e, 5) {
		t.Fatal("burst refused")
	}
	if st.allowEdits(e, 1) {
		t.Fatal("edit over the drained bucket allowed")
	}
	if st.throttled.Load() != 1 {
		t.Errorf("throttled = %d, want 1", st.throttled.Load())
	}
	clk.Advance(300 * time.Millisecond) // 3 tokens back at 10/s
	if !st.allowEdits(e, 3) {
		t.Fatal("refilled tokens refused")
	}
	if st.allowEdits(e, 1) {
		t.Fatal("bucket over-refilled")
	}
	clk.Advance(time.Hour)
	if !st.allowEdits(e, 5) {
		t.Fatal("full burst refused after a long idle")
	}
	if st.allowEdits(e, 6) {
		t.Fatal("bucket refilled past the burst cap")
	}
}

// TestStoreLifecycleHammer drives create/get/release/delete/sweep/evict
// concurrently against a tiny cap — under -race this is the regression test
// for the eviction-vs-in-flight-handler races the pinned store closes.
func TestStoreLifecycleHammer(t *testing.T) {
	clk := newFakeClock()
	st := newTTLStore[int](storeConfig{ttl: 10 * time.Millisecond, max: 4, shards: 2})
	st.now = clk.Now

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	ids := make(chan string, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					e := st.create(w)
					ids <- e.id
					st.release(e)
				case 1:
					select {
					case id := <-ids:
						if e, ok := st.get(id); ok {
							if e.val < 0 || e.val >= workers {
								t.Errorf("entry %s: val %d out of range", id, e.val)
							}
							st.release(e)
						}
					default:
					}
				case 2:
					select {
					case id := <-ids:
						st.delete(id)
					default:
					}
				default:
					clk.Advance(time.Millisecond)
					st.sweep()
				}
			}
		}(w)
	}
	wg.Wait()

	// The size counter and the shard maps must agree after the dust settles.
	live := len(st.ids())
	if st.active() != live {
		t.Fatalf("size counter %d, live entries %d", st.active(), live)
	}
}

// TestStoreReleasePanicsOnUnderflow: releasing an entry more times than it
// was pinned is a handler bug the store refuses to absorb silently.
func TestStoreReleasePanicsOnUnderflow(t *testing.T) {
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 8})
	e := st.create(1)
	st.release(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	st.release(e)
}

// TestStoreStatsShape: the stats map feeds /healthz; keep its keys stable.
func TestStoreStatsShape(t *testing.T) {
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 8})
	e := st.create(1)
	st.release(e)
	got := st.stats()
	for _, key := range []string{"active", "shards", "created", "expired", "closed", "evicted", "rejected", "throttled"} {
		if _, ok := got[key]; !ok {
			t.Errorf("stats missing %q: %v", key, got)
		}
	}
	if got["active"].(int) != 1 || got["created"].(int64) != 1 {
		t.Errorf("stats = %v", got)
	}
}

// TestStoreShardSpread sanity-checks the id hash: random ids must not all
// land on one shard.
func TestStoreShardSpread(t *testing.T) {
	st := newTTLStore[int](storeConfig{ttl: time.Hour, max: 1024, shards: 8})
	for i := 0; i < 256; i++ {
		e := st.create(i)
		st.release(e)
	}
	perShard := make(map[int]int)
	for i, sh := range st.shards {
		sh.mu.Lock()
		perShard[i] = len(sh.m)
		sh.mu.Unlock()
	}
	for i, n := range perShard {
		if n == 256 {
			t.Fatalf("all entries hashed to shard %d: %v", i, perShard)
		}
	}
}
