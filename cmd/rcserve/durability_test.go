package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// walServer mounts a design server over dir's durability store and replays
// whatever is already persisted there — one call is "boot the process".
func walServer(t *testing.T, dir string) (*server, int) {
	t.Helper()
	srv := designServer()
	if err := srv.openWAL(dir); err != nil {
		t.Fatal(err)
	}
	n, err := srv.recoverDesigns(context.Background())
	if err != nil {
		t.Fatalf("recover designs: %v", err)
	}
	return srv, n
}

func serveJSON(t *testing.T, srv *server, method, path, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s: bad JSON (%d): %s", method, path, w.Code, w.Body.String())
	}
	return w.Code, decoded
}

// crashEdit returns the i-th edit of the deterministic 200-edit workload the
// crash tests drive against chipDeck — every edit succeeds, so the live
// session and the WAL agree on exactly what was applied.
func crashEdit(i int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf(`{"op": "setR", "net": "drv", "node": "o", "r": %g}`, 300+float64(i%37)*5)
	case 1:
		return `{"op": "addC", "net": "bus", "node": "far", "c": 0.001}`
	case 2:
		return fmt.Sprintf(`{"op": "setLine", "net": "bus", "node": "far", "r": %g, "c": %g}`,
			1700+float64(i%23)*10, 0.1+float64(i%7)*0.01)
	default:
		return fmt.Sprintf(`{"op": "scaleDriver", "net": "drv", "factor": %g}`, 0.9+float64(i%5)*0.05)
	}
}

// slackNumbers pulls WNS/TNS and the per-endpoint slack map out of a
// /design/{id}/slack response.
func slackNumbers(t *testing.T, body map[string]any) (wns, tns float64, slacks map[string]float64) {
	t.Helper()
	report, ok := body["report"].(map[string]any)
	if !ok {
		t.Fatalf("no report in %v", body)
	}
	wns, _ = report["wns"].(float64)
	tns, _ = report["tns"].(float64)
	slacks = map[string]float64{}
	eps, _ := report["endpoints"].([]any)
	for _, raw := range eps {
		ep := raw.(map[string]any)
		key := fmt.Sprintf("%v.%v", ep["net"], ep["output"])
		if s, ok := ep["slack"].(float64); ok {
			slacks[key] = s
		}
	}
	return wns, tns, slacks
}

// TestDesignCrashRecovery is the PR's acceptance test: a 200-edit session,
// the process killed with a torn append in flight, a fresh process booted on
// the same data dir — the recovered design's WNS/TNS and every endpoint
// slack match the never-killed session to 1e-9.
func TestDesignCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, n := walServer(t, dir)
	if n != 0 {
		t.Fatalf("fresh dir recovered %d designs", n)
	}
	srv1.snapEvery = 16 // several rotations inside 200 edits

	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "required": 700})
	code, created := serveJSON(t, srv1, http.MethodPost, "/design", string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	for i := 0; i < 200; i++ {
		code, resp := serveJSON(t, srv1, http.MethodPost, "/design/"+id+"/edit",
			`{"edits": [`+crashEdit(i)+`]}`)
		if code != http.StatusOK || resp["applied"].(float64) != 1 {
			t.Fatalf("edit %d = %d: %v", i, code, resp)
		}
	}
	code, slackBody := serveJSON(t, srv1, http.MethodGet, "/design/"+id+"/slack", "")
	if code != http.StatusOK {
		t.Fatalf("GET slack = %d: %v", code, slackBody)
	}
	wantWNS, wantTNS, wantSlacks := slackNumbers(t, slackBody)

	// Kill the process mid-append: srv1 is abandoned as-is (no drain, no
	// final snapshot) and the live log gains a torn partial record, exactly
	// what a kill -9 during an acknowledged-later edit leaves behind.
	logs, err := filepath.Glob(filepath.Join(dir, id, "wal.*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("want exactly one live log, got %v (%v)", logs, err)
	}
	f, err := os.OpenFile(logs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("setR drv.o 12"); err != nil { // no newline: torn
		t.Fatal(err)
	}
	f.Close()

	srv2, n := walServer(t, dir)
	if n != 1 {
		t.Fatalf("recovered %d designs, want 1", n)
	}
	code, info := serveJSON(t, srv2, http.MethodGet, "/design/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("GET recovered design = %d: %v", code, info)
	}
	if got := info["edits"].(float64); got != 200 {
		t.Errorf("recovered edit count = %v, want 200", got)
	}
	code, slackBody2 := serveJSON(t, srv2, http.MethodGet, "/design/"+id+"/slack", "")
	if code != http.StatusOK {
		t.Fatalf("GET recovered slack = %d", code)
	}
	gotWNS, gotTNS, gotSlacks := slackNumbers(t, slackBody2)

	const tol = 1e-9
	if math.Abs(gotWNS-wantWNS) > tol || math.Abs(gotTNS-wantTNS) > tol {
		t.Errorf("recovered WNS/TNS (%g, %g), want (%g, %g)", gotWNS, gotTNS, wantWNS, wantTNS)
	}
	if len(gotSlacks) != len(wantSlacks) {
		t.Fatalf("recovered %d endpoints, want %d", len(gotSlacks), len(wantSlacks))
	}
	for key, want := range wantSlacks {
		if got, ok := gotSlacks[key]; !ok || math.Abs(got-want) > tol {
			t.Errorf("endpoint %s slack = %g, want %g", key, got, want)
		}
	}

	// The recovered session keeps working — and keeps logging.
	code, resp := serveJSON(t, srv2, http.MethodPost, "/design/"+id+"/edit",
		`{"edits": [`+crashEdit(0)+`]}`)
	if code != http.StatusOK || resp["applied"].(float64) != 1 {
		t.Fatalf("post-recovery edit = %d: %v", code, resp)
	}
}

// TestDesignLazyRecoveryAfterEviction: LRU eviction drops the in-memory
// session but not the WAL; the next lookup transparently rebuilds it instead
// of answering 404.
func TestDesignLazyRecoveryAfterEviction(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir)
	srv.designs = newDesignStore(storeConfig{ttl: time.Hour, max: 1})

	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "required": 700})
	code, a := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	if code != http.StatusCreated {
		t.Fatalf("create A = %d: %v", code, a)
	}
	aID := a["id"].(string)
	if _, resp := serveJSON(t, srv, http.MethodPost, "/design/"+aID+"/edit",
		`{"edits": [{"op": "setR", "net": "drv", "node": "o", "r": 200}]}`); resp["applied"].(float64) != 1 {
		t.Fatalf("edit A: %v", resp)
	}

	code, _ = serveJSON(t, srv, http.MethodPost, "/design", string(body)) // evicts A (max 1)
	if code != http.StatusCreated {
		t.Fatalf("create B = %d", code)
	}
	if srv.designs.evicted.Load() != 1 {
		t.Fatalf("evicted = %d, want 1", srv.designs.evicted.Load())
	}

	code, info := serveJSON(t, srv, http.MethodGet, "/design/"+aID, "")
	if code != http.StatusOK {
		t.Fatalf("GET evicted design = %d: %v (lazy recovery failed)", code, info)
	}
	if got := info["edits"].(float64); got != 1 {
		t.Errorf("recovered edits = %v, want 1", got)
	}
	if got := srv.obs.Counter("rcserve_designs_recovered_total").Value(); got != 1 {
		t.Errorf("recovered counter = %d, want 1", got)
	}
}

// TestDesignDeleteRemovesDurableState: DELETE retires the WAL too —
// otherwise the next lookup (or the next boot) would resurrect the design.
func TestDesignDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir)
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7})
	_, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	id := created["id"].(string)

	if code, resp := serveJSON(t, srv, http.MethodDelete, "/design/"+id, ""); code != http.StatusOK {
		t.Fatalf("DELETE = %d: %v", code, resp)
	}
	if _, err := os.Stat(filepath.Join(dir, id)); !os.IsNotExist(err) {
		t.Error("design dir survived DELETE")
	}
	if code, _ := serveJSON(t, srv, http.MethodGet, "/design/"+id, ""); code != http.StatusNotFound {
		t.Errorf("GET deleted design = %d, want 404 (no resurrection)", code)
	}
	_, n := walServer(t, dir)
	if n != 0 {
		t.Errorf("restart recovered %d designs after DELETE, want 0", n)
	}
}

// TestDesignSnapshotEvery: crossing the -snapshot-every threshold rotates
// the log onto a fresh snapshot, keeping replay bounded; the edit total
// survives the rotations.
func TestDesignSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir)
	srv.snapEvery = 4

	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "required": 700})
	_, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	id := created["id"].(string)
	for i := 0; i < 10; i++ {
		if code, resp := serveJSON(t, srv, http.MethodPost, "/design/"+id+"/edit",
			`{"edits": [`+crashEdit(i)+`]}`); code != http.StatusOK {
			t.Fatalf("edit %d = %d: %v", i, code, resp)
		}
	}
	// 10 edits at snapshot-every 4: rotations at 4 and 8, so the live pair
	// is seq 3 with a 2-edit tail.
	if _, err := os.Stat(filepath.Join(dir, id, "snap.3.ckt")); err != nil {
		t.Errorf("expected snap.3.ckt after two rotations: %v", err)
	}

	srv2, n := walServer(t, dir)
	if n != 1 {
		t.Fatalf("recovered %d designs", n)
	}
	_, info := serveJSON(t, srv2, http.MethodGet, "/design/"+id, "")
	if got := info["edits"].(float64); got != 10 {
		t.Errorf("edit total across rotations = %v, want 10", got)
	}
}

// TestSnapshotAllFoldsTails: the shutdown drain (and the periodic
// snapshotter) folds every pending tail into a snapshot, so a clean restart
// replays zero log lines.
func TestSnapshotAllFoldsTails(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir)
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "required": 700})
	_, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	id := created["id"].(string)
	for i := 0; i < 3; i++ {
		serveJSON(t, srv, http.MethodPost, "/design/"+id+"/edit", `{"edits": [`+crashEdit(i)+`]}`)
	}
	n, err := srv.snapshotAll()
	if err != nil || n != 1 {
		t.Fatalf("snapshotAll = %d, %v; want 1, nil", n, err)
	}
	// The tail was folded: the live log is seq 2 and empty.
	raw, err := os.ReadFile(filepath.Join(dir, id, "wal.2.log"))
	if err != nil || len(raw) != 0 {
		t.Errorf("post-snapshot log: %d bytes, %v; want empty", len(raw), err)
	}
	srv2, _ := walServer(t, dir)
	_, info := serveJSON(t, srv2, http.MethodGet, "/design/"+id, "")
	if got := info["edits"].(float64); got != 3 {
		t.Errorf("edits after snapshot-only recovery = %v, want 3", got)
	}
}

// TestDesignCloseLogsMoves: accepted closure moves are ECO edits like any
// other — a restart replays the repair, so the recovered WNS matches the
// post-closure WNS.
func TestDesignCloseLogsMoves(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir)
	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)
	code, closed := serveJSON(t, srv, http.MethodPost, "/design/"+id+"/close", `{"maxMoves": 16}`)
	if code != http.StatusOK {
		t.Fatalf("close = %d: %v", code, closed)
	}
	_, info := serveJSON(t, srv, http.MethodGet, "/design/"+id, "")
	wantWNS, hadWNS := info["wns"].(float64)

	srv2, n := walServer(t, dir)
	if n != 1 {
		t.Fatalf("recovered %d designs", n)
	}
	_, info2 := serveJSON(t, srv2, http.MethodGet, "/design/"+id, "")
	gotWNS, gotHad := info2["wns"].(float64)
	if hadWNS != gotHad || math.Abs(gotWNS-wantWNS) > 1e-9 {
		t.Errorf("recovered WNS = %v (%v), want %v (%v)", gotWNS, gotHad, wantWNS, hadWNS)
	}
	if info2["edits"] != info["edits"] {
		t.Errorf("recovered edits = %v, want %v", info2["edits"], info["edits"])
	}
}
