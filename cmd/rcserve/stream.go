package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"

	rcdelay "repro"
)

// SSE stream for POST /design/{id}/close?stream=1: the same closure run as
// the buffered handler, but each accepted move is pushed to the client as it
// lands instead of arriving all at once in the final report. The event
// sequence is

//	event: start   — design state before the run (initial WNS/TNS)
//	event: move    — one per accepted move, in acceptance order
//	event: done    — final state: closed, reason, WNS/TNS, cost, error

// with every data line a JSON object. A client that disconnects mid-run
// cancels the engine through the request context; the moves accepted before
// the cancellation stay applied to the session (the done event is then never
// observed by that client, but the session is consistent and a following
// GET /design/{id}/slack reads the partial repair).

// closeStartEvent is the "start" SSE payload.
type closeStartEvent struct {
	ID  string   `json:"id"`
	Gen uint64   `json:"gen"`
	WNS *float64 `json:"wns,omitempty"` // omitted when +Inf (no constrained endpoint)
	TNS float64  `json:"tns"`
}

// closeDoneEvent is the "done" SSE payload.
type closeDoneEvent struct {
	ID     string   `json:"id"`
	Gen    uint64   `json:"gen"`
	Closed bool     `json:"closed"`
	Reason string   `json:"reason"`
	Moves  int      `json:"moves"`
	Cost   float64  `json:"cost"`
	WNS    *float64 `json:"wns,omitempty"`
	TNS    float64  `json:"tns"`
	Error  string   `json:"error,omitempty"`
}

// finitePtr boxes v for omitempty JSON unless it is infinite (an
// unconstrained design's WNS is +Inf, which encoding/json rejects).
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// sseWriter frames Server-Sent Events and flushes each one immediately so
// the client sees moves as they are accepted, not when the run ends. The
// mutex serializes frames: the engine's Progress callback may fire from a
// worker goroutine while the handler goroutine writes its own events, and
// http.ResponseWriter promises nothing about concurrent writers — without
// the lock, frames interleave mid-line.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher
}

// event writes one named SSE frame with a JSON data line. Marshal errors
// are impossible by construction of the payload types; a frame the client
// has stopped reading surfaces as a write error the handler ignores (the
// request context carries the authoritative disconnect signal).
func (s *sseWriter) event(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	s.f.Flush()
}

// streamDesignClose runs the closure engine under the session lock while
// forwarding per-move progress as SSE. The lock is held across the whole
// run, exactly like the buffered handler: the stream observes a consistent
// single-writer session.
func (s *server) streamDesignClose(w http.ResponseWriter, r *http.Request, ent *entry[*designSession], req designCloseRequest) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, "streaming unsupported by this connection", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	sse := &sseWriter{w: w, f: flusher}

	ds := ent.val
	ds.mu.Lock()
	rep := ds.sess.Report()
	sse.event("start", closeStartEvent{
		ID: ent.id, Gen: ds.sess.Gen(), WNS: finitePtr(rep.WNS), TNS: rep.TNS,
	})
	report, err := rcdelay.CloseSession(r.Context(), ds.sess, rcdelay.ClosureOptions{
		MaxMoves:     req.MaxMoves,
		MaxCost:      req.MaxCost,
		TopEndpoints: req.TopEndpoints,
		Sequential:   req.Sequential,
		Obs:          s.obs,
		Progress: func(ev rcdelay.ClosureProgress) {
			sse.event("move", ev)
		},
	})
	var walErr error
	if report != nil {
		ds.edits += len(report.Edits)
		walErr = s.walAppend(r.Context(), ds, report.Edits)
	}
	gen := ds.sess.Gen()
	ds.mu.Unlock()

	done := closeDoneEvent{ID: ent.id, Gen: gen}
	if err != nil {
		done.Error = err.Error()
	}
	if walErr != nil {
		done.Error = fmt.Sprintf("durability write failed: %v", walErr)
	}
	if report != nil {
		s.count("rcserve_closure_moves_total", int64(len(report.Moves)))
		done.Closed = report.Closed
		done.Reason = report.Reason
		done.Moves = len(report.Moves)
		done.Cost = report.Cost
		done.WNS = finitePtr(report.FinalWNS)
		done.TNS = report.FinalTNS
	}
	sse.event("done", done)
}
