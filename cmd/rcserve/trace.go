package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/trace"
)

// Tracing surface: the ServeHTTP middleware opens one root span per request
// (joining the client's W3C traceparent when present), the engine layers
// attach their phase spans through the request context, and the completed
// trees land in the tracer's flight recorder, served read-only here.

// newLogger builds the server logger for -log-format: "text" (the default
// human-readable slog handler) or "json" (one JSON object per line, for log
// shippers). Both write to stderr.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// requestID returns the request's correlation id: the client's X-Request-Id
// when it is well-formed (so retries and proxies can thread one id through),
// a freshly minted one otherwise.
func requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	return newRequestID()
}

// sanitizeRequestID vets an inbound correlation id: non-empty, at most 64
// bytes, and limited to [A-Za-z0-9._-] — anything else (log-injection
// payloads, binary junk) is discarded and replaced by a minted id.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// traceSummaryJSON is one flight-recorder entry in the GET /debug/traces
// list.
type traceSummaryJSON struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Route      string    `json:"route,omitempty"`
	Status     string    `json:"status,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Spans      int       `json:"spans"`
	Dropped    int       `json:"dropped,omitempty"`
	Err        bool      `json:"err,omitempty"`
	Pinned     bool      `json:"pinned,omitempty"`
}

func traceSummary(t *trace.Trace, pinned bool) traceSummaryJSON {
	return traceSummaryJSON{
		ID:         t.ID.String(),
		Name:       t.Name,
		Route:      t.RootAttr("route"),
		Status:     t.RootAttr("status"),
		Start:      t.Start,
		DurationMs: float64(t.Duration) / float64(time.Millisecond),
		Spans:      len(t.Spans),
		Dropped:    t.Dropped,
		Err:        t.Err,
		Pinned:     pinned,
	}
}

// handleTraceList serves GET /debug/traces: the flight recorder's retained
// traces, newest first — the recent ring plus pinned slow/error traces that
// outlived it. ?slow=1 restricts the answer to the pinned ring.
func (s *server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	pinned := make(map[trace.TraceID]bool)
	for _, t := range s.tracer.Slow() {
		pinned[t.ID] = true
	}
	list := s.tracer.Recent()
	if r.URL.Query().Get("slow") != "" {
		list = s.tracer.Slow()
	}
	summaries := make([]traceSummaryJSON, 0, len(list))
	for _, t := range list {
		summaries = append(summaries, traceSummary(t, pinned[t.ID]))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(summaries),
		"traces": summaries,
	})
}

// spanNodeJSON is one span in the GET /debug/traces/{id} tree. Children are
// nested (sorted by start time); a span whose parent was not recorded
// locally — the root, or any span beyond the per-trace cap — surfaces as a
// top-level node.
type spanNodeJSON struct {
	SpanID     string            `json:"spanId"`
	ParentID   string            `json:"parentId,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUs int64             `json:"durationUs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []string          `json:"events,omitempty"`
	Error      string            `json:"error,omitempty"`
	Children   []*spanNodeJSON   `json:"children,omitempty"`
}

// spanTree nests a trace's flat completion-ordered span records into
// parent→children form.
func spanTree(t *trace.Trace) []*spanNodeJSON {
	nodes := make(map[trace.SpanID]*spanNodeJSON, len(t.Spans))
	for i := range t.Spans {
		rec := &t.Spans[i]
		n := &spanNodeJSON{
			SpanID:     rec.SpanID.String(),
			Name:       rec.Name,
			Start:      rec.Start,
			DurationUs: rec.Duration.Microseconds(),
			Error:      rec.Err,
		}
		if !rec.Parent.IsZero() {
			n.ParentID = rec.Parent.String()
		}
		if len(rec.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(rec.Attrs))
			for _, a := range rec.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		for _, ev := range rec.Events {
			n.Events = append(n.Events, fmt.Sprintf("%s @%s", ev.Msg, ev.Time.Sub(rec.Start)))
		}
		nodes[rec.SpanID] = n
	}
	var roots []*spanNodeJSON
	for i := range t.Spans {
		rec := &t.Spans[i]
		if parent, ok := nodes[rec.Parent]; ok && rec.Parent != rec.SpanID {
			parent.Children = append(parent.Children, nodes[rec.SpanID])
		} else {
			roots = append(roots, nodes[rec.SpanID])
		}
	}
	sortSpanNodes(roots)
	for _, n := range nodes {
		sortSpanNodes(n.Children)
	}
	return roots
}

func sortSpanNodes(ns []*spanNodeJSON) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
}

// handleTraceGet serves GET /debug/traces/{id}: the retained trace as a
// nested span tree, or — with ?format=chrome — as Chrome trace-event JSON
// that chrome://tracing and Perfetto load directly.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		httpError(w, r, "unknown trace id (evicted from the flight recorder, or never recorded)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChrome(w, []*trace.Trace{t}); err != nil {
			s.logger.Error("rcserve: write chrome trace", "id", t.ID.String(), "err", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         t.ID.String(),
		"name":       t.Name,
		"start":      t.Start,
		"durationMs": float64(t.Duration) / float64(time.Millisecond),
		"err":        t.Err,
		"dropped":    t.Dropped,
		"spans":      spanTree(t),
	})
}
