package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// traceNode mirrors the GET /debug/traces/{id} span-tree shape.
type traceNode struct {
	SpanID   string            `json:"spanId"`
	ParentID string            `json:"parentId"`
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
	Error    string            `json:"error"`
	Children []*traceNode      `json:"children"`
}

// findSpan walks nodes depth-first for the first span with the given name.
func findSpan(nodes []*traceNode, name string) *traceNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestRequestTracingEndToEnd is the PR's acceptance test: a close request
// carrying an inbound W3C traceparent yields a retrievable span tree at
// /debug/traces/{id} whose middleware, closure, timing and WAL spans hang
// together with intact parent-child links.
func TestRequestTracingEndToEnd(t *testing.T) {
	srv, _ := walServer(t, t.TempDir()) // durability on, so WAL spans exist

	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	const (
		tid = "af7651916cd43dd8448eb211c80319c7"
		sid = "b7ad6b7169203331"
	)
	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/close",
		strings.NewReader(`{"maxMoves": 16}`))
	req.Header.Set("traceparent", "00-"+tid+"-"+sid+"-01")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST close = %d: %s", w.Code, w.Body.String())
	}

	// The response joins the caller's trace: same trace id, the server's own
	// root span id, and a minted request id echoed alongside.
	tp := w.Result().Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+tid+"-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("response traceparent %q does not join trace %s", tp, tid)
	}
	if w.Result().Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}

	code, tree := serveJSON(t, srv, http.MethodGet, "/debug/traces/"+tid, "")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %v", tid, code, tree)
	}
	if tree["id"] != tid {
		t.Fatalf("trace id = %v, want %s", tree["id"], tid)
	}
	raw, _ := json.Marshal(tree["spans"])
	var roots []*traceNode
	if err := json.Unmarshal(raw, &roots); err != nil {
		t.Fatalf("span tree did not decode: %v", err)
	}

	root := findSpan(roots, "rcserve.request")
	if root == nil {
		t.Fatalf("no rcserve.request span in %s", raw)
	}
	if root.ParentID != sid {
		t.Errorf("request span parent = %q, want the inbound span id %s", root.ParentID, sid)
	}
	if root.Attrs["route"] != "POST /design/{id}/close" {
		t.Errorf("request span route attr = %q", root.Attrs["route"])
	}
	run := findSpan(root.Children, "closure_run")
	if run == nil {
		t.Fatalf("no closure_run span under the request in %s", raw)
	}
	if run.ParentID != root.SpanID {
		t.Errorf("closure_run parent = %q, want %q", run.ParentID, root.SpanID)
	}
	trial := findSpan(run.Children, "closure_trial")
	if trial == nil {
		t.Fatalf("no closure_trial span under closure_run")
	}
	if prop := findSpan(run.Children, "timing_propagate"); prop == nil {
		t.Fatalf("no timing_propagate span under closure_run")
	}
	// The accepted edits are logged durably off the request context: the
	// wal_append span parents to the request span and nests its fsync.
	app := findSpan(root.Children, "wal_append")
	if app == nil {
		t.Fatalf("no wal_append span under the request in %s", raw)
	}
	fsync := findSpan(app.Children, "wal_fsync")
	if fsync == nil {
		t.Fatal("no wal_fsync span under wal_append")
	}
	if fsync.ParentID != app.SpanID {
		t.Errorf("wal_fsync parent = %q, want %q", fsync.ParentID, app.SpanID)
	}

	// The flight-recorder list knows the trace, with its route attribute.
	code, list := serveJSON(t, srv, http.MethodGet, "/debug/traces", "")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", code)
	}
	found := false
	for _, raw := range list["traces"].([]any) {
		tr := raw.(map[string]any)
		if tr["id"] == tid {
			found = true
			if tr["route"] != "POST /design/{id}/close" {
				t.Errorf("trace summary route = %v", tr["route"])
			}
			if tr["spans"].(float64) < 4 {
				t.Errorf("trace summary spans = %v, want >= 4", tr["spans"])
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces list", tid)
	}
}

// TestTraceChromeFormat checks ?format=chrome serves trace-event JSON with
// the fields chrome://tracing and Perfetto require.
func TestTraceChromeFormat(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7})
	code, created := serveJSON(t, srv, http.MethodPost, "/design", string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	traces := srv.tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("no recorded trace")
	}
	tid := traces[0].ID.String()

	req := httptest.NewRequest(http.MethodGet, "/debug/traces/"+tid+"?format=chrome", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("chrome export = %d: %s", w.Code, w.Body.String())
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &file); err != nil {
		t.Fatalf("chrome JSON did not decode: %v", err)
	}
	if file.DisplayTimeUnit != "ms" || len(file.TraceEvents) == 0 {
		t.Fatalf("chrome file = %+v", file)
	}
	for i, ev := range file.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		if ev.Args["trace_id"] != tid {
			t.Errorf("event %d trace_id = %q, want %s", i, ev.Args["trace_id"], tid)
		}
	}
}

func TestTraceGetUnknown(t *testing.T) {
	srv := designServer()
	code, body := serveJSON(t, srv, http.MethodGet, "/debug/traces/deadbeef", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d: %v", code, body)
	}
	if body["requestId"] == "" {
		t.Error("error body missing requestId")
	}
}

// TestRequestIDPropagation checks a well-formed inbound X-Request-Id is
// adopted (echoed on the response, quoted in error bodies) while junk is
// replaced with a minted id.
func TestRequestIDPropagation(t *testing.T) {
	srv := designServer()

	req := httptest.NewRequest(http.MethodGet, "/design/nope", nil)
	req.Header.Set("X-Request-Id", "client-abc.123_z")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if got := w.Result().Header.Get("X-Request-Id"); got != "client-abc.123_z" {
		t.Errorf("inbound id not echoed: %q", got)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["requestId"] != "client-abc.123_z" {
		t.Errorf("error body requestId = %v", body["requestId"])
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "evil id\nwith junk")
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	got := w.Result().Header.Get("X-Request-Id")
	if got == "" || strings.ContainsAny(got, " \n") || got == "evil id\nwith junk" {
		t.Errorf("junk id not replaced: %q", got)
	}
}

// TestLogFormats drives one request through text and JSON loggers and checks
// the request line's shape, plus the flag validation newLogger performs.
func TestLogFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		var buf bytes.Buffer
		srv := designServer()
		switch format {
		case "text":
			srv.logger = slog.New(slog.NewTextHandler(&buf, nil))
		case "json":
			srv.logger = slog.New(slog.NewJSONHandler(&buf, nil))
		}
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		line := strings.TrimSpace(buf.String())
		if line == "" {
			t.Fatalf("%s: no request line logged", format)
		}
		switch format {
		case "text":
			for _, want := range []string{"msg=request", "route=\"GET /healthz\"", "status=200", "trace="} {
				if !strings.Contains(line, want) {
					t.Errorf("text line missing %s: %s", want, line)
				}
			}
		case "json":
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("json log line did not decode: %v\n%s", err, line)
			}
			if rec["msg"] != "request" || rec["route"] != "GET /healthz" || rec["status"] != float64(200) {
				t.Errorf("json line = %v", rec)
			}
			if tid, _ := rec["trace"].(string); len(tid) != 32 {
				t.Errorf("json line trace id = %v", rec["trace"])
			}
		}
	}

	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
	for _, ok := range []string{"", "text", "json"} {
		if l, err := newLogger(ok); err != nil || l == nil {
			t.Errorf("newLogger(%q) = %v, %v", ok, l, err)
		}
	}
}

// TestSanitizeRequestID pins the inbound-id vetting rules.
func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"abc123", "abc123"},
		{"A-b_c.9", "A-b_c.9"},
		{"", ""},
		{"has space", ""},
		{"tab\there", ""},
		{"non-ascii-é", ""},
		{strings.Repeat("x", 64), strings.Repeat("x", 64)},
		{strings.Repeat("x", 65), ""},
	}
	for _, c := range cases {
		if got := sanitizeRequestID(c.in); got != c.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestTraceSlowPinning checks an error response pins its trace in the slow
// ring even after the recent ring churns past capacity.
func TestTraceSlowPinning(t *testing.T) {
	srv := designServer()
	// A 422 is a client error, not a server failure: it must NOT pin. A 500
	// must. Drive one of each, then flood the recent ring.
	code, _ := serveJSON(t, srv, http.MethodPost, "/design", `{"design": ""}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("empty design = %d", code)
	}
	if n := len(srv.tracer.Slow()); n != 0 {
		t.Fatalf("client error pinned %d traces", n)
	}
	for i := 0; i < 70; i++ { // churn past the default 64-trace recent ring
		serveJSON(t, srv, http.MethodGet, "/healthz", "")
	}
	if got := len(srv.tracer.Recent()); got != 64 {
		t.Errorf("recent ring = %d traces, want 64", got)
	}
}
