package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsExposition: after a /design + /close round trip, GET /metrics
// carries the per-route HTTP histograms, the engine-phase timing spans, and
// the rcserve request counters — the acceptance checklist for the
// observability surface, driven through the public HTTP interface only.
func TestMetricsExposition(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/close", strings.NewReader("{}"))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /design/{id}/close = %d: %s", w.Code, w.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		// Per-route middleware series.
		`http_requests_total{route="POST /design",code="201"} 1`,
		`http_requests_total{route="POST /design/{id}/close",code="200"} 1`,
		`http_request_seconds_count{route="POST /design"} 1`,
		`http_request_seconds_bucket{route="POST /design/{id}/close",le="+Inf"} 1`,
		// rcserve handler counters.
		`rcserve_design_requests_total 2`,
		`rcserve_close_requests_total 1`,
		// Engine-phase spans threaded through DesignOptions/ClosureOptions.
		"timing_levelize_seconds_count",
		"timing_arena_build_seconds_count",
		"timing_propagate_seconds_count",
		"timing_eco_apply_seconds_count",
		"closure_run_seconds_count 1",
		"closure_moves_accepted_total",
		// Sampled gauges.
		"rcserve_designs_active 1",
		"rcserve_uptime_seconds",
		"# TYPE http_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The closure run repaired the design, so the live WNS gauge is >= 0.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "closure_wns ") {
			wns, err := strconv.ParseFloat(line[len("closure_wns "):], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if wns < 0 {
				t.Errorf("closure_wns = %v after a closing run", wns)
			}
			return
		}
	}
	t.Error("/metrics missing closure_wns gauge")
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data map[string]any
}

// readSSE parses an SSE stream into its events.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = sseEvent{name: line[len("event: "):]}
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			events = append(events, cur)
		}
	}
	return events
}

// TestDesignCloseStream: POST /design/{id}/close?stream=1 emits start, then
// one move event per accepted repair in acceptance order, then done — and
// the done event agrees with the session state a follow-up query reads.
func TestDesignCloseStream(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/close?stream=1", strings.NewReader("{}"))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream close = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	events := readSSE(t, w.Body)
	if len(events) < 3 {
		t.Fatalf("stream carried %d events, want start + moves + done:\n%s", len(events), w.Body.String())
	}
	if events[0].name != "start" {
		t.Errorf("first event = %q, want start", events[0].name)
	}
	if events[0].data["wns"].(float64) >= 0 {
		t.Errorf("start wns = %v, want failing", events[0].data["wns"])
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event = %q, want done", last.name)
	}
	moves := events[1 : len(events)-1]
	for i, ev := range moves {
		if ev.name != "move" {
			t.Fatalf("event %d = %q, want move", i+1, ev.name)
		}
		if int(ev.data["seq"].(float64)) != i+1 {
			t.Errorf("move %d carries seq %v", i+1, ev.data["seq"])
		}
	}
	if !last.data["closed"].(bool) || last.data["reason"] != "met" {
		t.Errorf("done event = %v", last.data)
	}
	if int(last.data["moves"].(float64)) != len(moves) {
		t.Errorf("done moves = %v, stream carried %d", last.data["moves"], len(moves))
	}
	if last.data["wns"].(float64) < 0 {
		t.Errorf("done wns = %v, want >= 0", last.data["wns"])
	}

	// The accepted moves stayed applied: the session reports repaired slack.
	req = httptest.NewRequest(http.MethodGet, "/design/"+id, nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var info map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["wns"].(float64) < 0 || info["edits"].(float64) == 0 {
		t.Errorf("session after streamed close = %v", info)
	}
}

// cancelAfterFirstMove is a ResponseRecorder that cancels the request
// context as soon as the first move event is flushed — a deterministic
// stand-in for a client that disconnects mid-stream.
type cancelAfterFirstMove struct {
	*httptest.ResponseRecorder
	cancel context.CancelFunc
}

func (c *cancelAfterFirstMove) Write(b []byte) (int, error) {
	n, err := c.ResponseRecorder.Write(b)
	if strings.Contains(c.Body.String(), "event: move") {
		c.cancel()
	}
	return n, err
}

// TestDesignCloseStreamDisconnect: a client disconnect mid-stream cancels
// the closure run through the request context. The engine stops with reason
// "cancelled" after the move in flight, and the already-accepted prefix
// stays applied to the session.
func TestDesignCloseStreamDisconnect(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/close?stream=1", strings.NewReader("{}"))
	req = req.WithContext(ctx)
	rec := &cancelAfterFirstMove{ResponseRecorder: httptest.NewRecorder(), cancel: cancel}
	srv.ServeHTTP(rec, req)

	events := readSSE(t, rec.Body)
	if len(events) < 2 {
		t.Fatalf("stream carried %d events:\n%s", len(events), rec.Body.String())
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event = %q, want done", last.name)
	}
	if last.data["reason"] != "cancelled" || last.data["closed"].(bool) {
		t.Errorf("done after disconnect = %v, want reason cancelled", last.data)
	}
	if last.data["error"] == "" {
		t.Errorf("done after disconnect carries no error: %v", last.data)
	}
	moveCount := 0
	for _, ev := range events {
		if ev.name == "move" {
			moveCount++
		}
	}
	if moveCount == 0 {
		t.Fatal("no move observed before the cancellation")
	}
	if int(last.data["moves"].(float64)) != moveCount {
		t.Errorf("done reports %v moves, stream carried %d", last.data["moves"], moveCount)
	}

	// The accepted prefix stayed applied: edits > 0 at a bumped generation.
	req = httptest.NewRequest(http.MethodGet, "/design/"+id, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var info map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["edits"].(float64) != float64(moveCount) {
		t.Errorf("session edits = %v after %d streamed moves", info["edits"], moveCount)
	}
}

// TestReadyzDrain: /readyz answers 200 until the drain flag flips, then 503
// with the draining reason — the signal handler's contract with load
// balancers.
func TestReadyzDrain(t *testing.T) {
	srv := designServer()
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", w.Code)
	}
	srv.draining.Store(true)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d during drain, want 503", w.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["ready"] != false || body["reason"] != "draining" {
		t.Errorf("drain body = %v", body)
	}
}

// TestRequestLogging: the middleware writes one structured line per request
// with the matched route and status.
func TestRequestLogging(t *testing.T) {
	srv := designServer()
	var buf strings.Builder
	srv.logger = slog.New(slog.NewTextHandler(&buf, nil))
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	line := buf.String()
	for _, want := range []string{`route="GET /healthz"`, "status=200", "method=GET", "id="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	// Unmatched paths are labeled so junk URLs cannot mint unbounded series.
	buf.Reset()
	req = httptest.NewRequest(http.MethodGet, "/no/such/route", nil)
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(buf.String(), "route=unmatched") {
		t.Errorf("404 log line missing unmatched route: %s", buf.String())
	}
	if srv.obs.Counter("http_requests_total", "route", "unmatched", "code", "404").Value() != 1 {
		t.Error("unmatched 404 not counted")
	}
}
