package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rcdelay "repro"
)

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode %s %s response: %v", method, url, err)
	}
	return resp.StatusCode, decoded
}

func openSession(t *testing.T, ts *httptest.Server, deck string) string {
	t.Helper()
	status, body := post(t, ts.URL+"/session", `{"netlist": `+jsonString(deck)+`}`)
	if status != http.StatusCreated {
		t.Fatalf("create session: status %d: %v", status, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("create session: no id in %v", body)
	}
	return id
}

// TestSessionEditMatchesReanalysis is the session API's core correctness
// check: edit R1 in place, then compare the session's incremental times with
// a from-scratch /analyze of the equivalently modified deck.
func TestSessionEditMatchesReanalysis(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)

	status, body := post(t, ts.URL+"/session/"+id+"/edit",
		`{"edits": [{"op": "setR", "node": "n1", "r": 20},
		            {"op": "setC", "node": "b", "c": 3.5}]}`)
	if status != http.StatusOK {
		t.Fatalf("edit: status %d: %v", status, body)
	}
	if got := body["applied"].(float64); got != 2 {
		t.Fatalf("applied = %v, want 2", got)
	}
	outs := body["outputs"].([]any)
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	sessTimes := outs[0].(map[string]any)["times"].(map[string]any)

	edited := strings.Replace(fig7Deck, "R1 in n1 15", "R1 in n1 20", 1)
	edited = strings.Replace(edited, "C2 b 0 7", "C2 b 0 3.5", 1)
	status, ref := post(t, ts.URL+"/analyze", `{"netlist": `+jsonString(edited)+`}`)
	if status != http.StatusOK {
		t.Fatalf("reference analyze: status %d: %v", status, ref)
	}
	refTimes := ref["outputs"].([]any)[0].(map[string]any)["times"].(map[string]any)
	for _, k := range []string{"tp", "td", "tr", "ree"} {
		a, b := sessTimes[k].(float64), refTimes[k].(float64)
		if math.Abs(a-b) > 1e-9*math.Max(math.Abs(b), 1) {
			t.Errorf("%s: session %g != reanalysis %g", k, a, b)
		}
	}

	// Bounds tables agree with the batch endpoint's for the same deck.
	status, bounds := doJSON(t, http.MethodGet, ts.URL+"/session/"+id+"/bounds?thresholds=0.5,0.9&times=100", "")
	if status != http.StatusOK {
		t.Fatalf("bounds: status %d: %v", status, bounds)
	}
	bo := bounds["outputs"].([]any)[0].(map[string]any)
	delay := bo["delay"].([]any)
	if len(delay) != 2 {
		t.Fatalf("delay rows = %v", delay)
	}
	status, refB := post(t, ts.URL+"/analyze",
		`{"netlist": `+jsonString(edited)+`, "thresholds": [0.5, 0.9], "times": [100]}`)
	if status != http.StatusOK {
		t.Fatalf("reference bounds: %d", status)
	}
	refDelay := refB["outputs"].([]any)[0].(map[string]any)["delay"].([]any)
	for i := range delay {
		a := delay[i].(map[string]any)
		b := refDelay[i].(map[string]any)
		for _, k := range []string{"v", "tmin", "tmax"} {
			if math.Abs(a[k].(float64)-b[k].(float64)) > 1e-9*math.Max(math.Abs(b[k].(float64)), 1) {
				t.Errorf("delay row %d %s: session %v != reanalysis %v", i, k, a[k], b[k])
			}
		}
	}
}

// TestSessionStructuralEdits drives grow, addOutput, prune and graft through
// the HTTP surface.
func TestSessionStructuralEdits(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)

	status, body := post(t, ts.URL+"/session/"+id+"/edit",
		`{"edits": [
			{"op": "grow", "parent": "b", "name": "tap", "kind": "line", "r": 4, "c": 2},
			{"op": "addC", "node": "tap", "c": 1.5},
			{"op": "addOutput", "node": "tap"},
			{"op": "scaleDriver", "factor": 1.25}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("structural edit: status %d: %v", status, body)
	}
	if got := body["applied"].(float64); got != 4 {
		t.Fatalf("applied = %v, want 4", got)
	}
	if outs := body["outputs"].([]any); len(outs) != 2 {
		t.Fatalf("want 2 outputs after addOutput, got %v", outs)
	}

	// Graft a small deck under n1, tap its far end, then prune the original
	// tap branch.
	graft := ".input gin\nR9 gin gfar 5\nC9 gfar 0 1\n.output gfar\n"
	status, body = post(t, ts.URL+"/session/"+id+"/edit",
		`{"edits": [
			{"op": "graft", "parent": "n1", "netlist": `+jsonString(graft)+`, "kind": "resistor", "r": 2},
			{"op": "addOutput", "node": "gfar"},
			{"op": "prune", "node": "tap"}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("graft edit: status %d: %v", status, body)
	}
	if got := body["applied"].(float64); got != 3 {
		t.Fatalf("applied = %v, want 3", got)
	}

	// Session info reflects the new shape.
	status, info := doJSON(t, http.MethodGet, ts.URL+"/session/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("info: %d: %v", status, info)
	}
	names := fmt.Sprint(info["outputs"])
	if !strings.Contains(names, "gfar") || strings.Contains(names, "tap") {
		t.Fatalf("outputs after graft+prune = %v", info["outputs"])
	}
	if info["edits"].(float64) != 7 {
		t.Errorf("edits counter = %v, want 7", info["edits"])
	}

	// The session's answer equals a full reanalysis of the materialized deck.
	status, bounds := doJSON(t, http.MethodGet, ts.URL+"/session/"+id+"/bounds?output=gfar", "")
	if status != http.StatusOK {
		t.Fatalf("bounds: %d: %v", status, bounds)
	}
	sessTD := bounds["outputs"].([]any)[0].(map[string]any)["times"].(map[string]any)["td"].(float64)
	want := buildStructuralReference(t)
	if math.Abs(sessTD-want) > 1e-9*want {
		t.Errorf("grafted TD = %g, want %g", sessTD, want)
	}
}

// buildStructuralReference reproduces TestSessionStructuralEdits' final
// network with the library directly and returns TD at gfar.
func buildStructuralReference(t *testing.T) float64 {
	t.Helper()
	tree, err := rcdelay.ParseNetlist(fig7Deck)
	if err != nil {
		t.Fatal(err)
	}
	et := rcdelay.NewEditTree(tree)
	n1, _ := et.Lookup("n1")
	b, _ := et.Lookup("b")
	tap, err := et.Grow(b, "tap", rcdelay.EdgeLine, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.AddCapacitance(tap, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := et.AddOutput(tap); err != nil {
		t.Fatal(err)
	}
	if err := et.ScaleDriver(1.25); err != nil {
		t.Fatal(err)
	}
	sub, err := rcdelay.ParseNetlist(".input gin\nR9 gin gfar 5\nC9 gfar 0 1\n.output gfar\n")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := et.Graft(n1, "", rcdelay.EdgeResistor, 2, 0, sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.AddOutput(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	if err := et.Prune(tap); err != nil {
		t.Fatal(err)
	}
	gfar, _ := et.Lookup("gfar")
	tm, err := et.Times(gfar)
	if err != nil {
		t.Fatal(err)
	}
	return tm.TD
}

// TestSessionEditErrors: bad edits stop the batch, report position, and
// leave the session usable; malformed requests are rejected.
func TestSessionEditErrors(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)

	status, body := post(t, ts.URL+"/session/"+id+"/edit",
		`{"edits": [{"op": "setR", "node": "n1", "r": 30},
		            {"op": "setR", "node": "ghost", "r": 1},
		            {"op": "setR", "node": "n1", "r": 40}]}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %v", status, body)
	}
	if got := body["applied"].(float64); got != 1 {
		t.Errorf("applied = %v, want 1 (stop at first failure)", got)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "ghost") {
		t.Errorf("error %q does not name the bad node", msg)
	}

	for _, bad := range []string{
		`{"edits": []}`,
		`{"edits": [{"op": "warp", "node": "n1"}]}`,
		`{"edits": [{"op": "setR", "node": "n1"}]}`, // missing r
		`not json`,
	} {
		status, _ := post(t, ts.URL+"/session/"+id+"/edit", bad)
		if status < 400 {
			t.Errorf("edit %q: status %d, want an error", bad, status)
		}
	}

	// The session survived all of that.
	status, _ = doJSON(t, http.MethodGet, ts.URL+"/session/"+id+"/bounds", "")
	if status != http.StatusOK {
		t.Errorf("session unusable after bad edits: %d", status)
	}

	// Unknown sessions 404 everywhere.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/session/nope"},
		{http.MethodGet, "/session/nope/bounds"},
		{http.MethodPost, "/session/nope/edit"},
		{http.MethodDelete, "/session/nope"},
	} {
		body := ""
		if probe.method == http.MethodPost {
			body = `{"edits": [{"op": "scaleDriver", "factor": 2}]}`
		}
		if status, _ := doJSON(t, probe.method, ts.URL+probe.path, body); status != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, status)
		}
	}
}

// TestSessionDelete closes a session explicitly.
func TestSessionDelete(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/session/"+id, ""); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/session/"+id, ""); status != http.StatusNotFound {
		t.Errorf("deleted session still answers: %d", status)
	}
}

// TestSessionTTLAndEviction exercises the store directly with a fake clock.
func TestSessionTTLAndEviction(t *testing.T) {
	tree, err := rcdelay.ParseNetlist(fig7Deck)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	st := newSessionStore(storeConfig{ttl: time.Minute, max: 2})
	st.now = func() time.Time { return now }

	a := st.create(&session{et: rcdelay.NewEditTree(tree)})
	st.release(a)
	now = now.Add(30 * time.Second)
	b := st.create(&session{et: rcdelay.NewEditTree(tree)})
	st.release(b)
	now = now.Add(time.Second)
	if ent, ok := st.get(a.id); !ok { // touches a: b is now the LRU entry
		t.Fatal("session a should be alive")
	} else {
		st.release(ent)
	}
	// a was just touched; c's creation must evict the LRU entry, b.
	c := st.create(&session{et: rcdelay.NewEditTree(tree)})
	st.release(c)
	if _, ok := st.get(b.id); ok {
		t.Error("LRU session b should have been evicted at capacity")
	}
	if ent, ok := st.get(c.id); !ok {
		t.Error("session c should be alive")
	} else {
		st.release(ent)
	}
	// Idle past the TTL expires on access...
	now = now.Add(2 * time.Minute)
	if _, ok := st.get(a.id); ok {
		t.Error("session a should have expired")
	}
	// ...and on sweep.
	st.sweep()
	stats := st.stats()
	if stats["active"].(int) != 0 {
		t.Errorf("active = %v after sweep, want 0", stats["active"])
	}
	if stats["evicted"].(int64) != 1 || stats["expired"].(int64) != 2 {
		t.Errorf("counters = %v", stats)
	}
}

// TestBodyCap: requests beyond -max-body are rejected with 413 on both the
// batch and session surfaces.
func TestBodyCap(t *testing.T) {
	srv := newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: 1}))
	srv.logger = slog.New(slog.DiscardHandler)
	srv.maxBody = 256
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	big := `{"netlist": "` + strings.Repeat("* pad\\n", 200) + `"}`
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/analyze big body: status %d, want 413", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/session", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("/session big body: status %d, want 413", resp.StatusCode)
	}
}

// TestDebugVars: the expvar endpoint is mounted and carries the rcserve
// counter tree.
func TestDebugVars(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/session/"+id+"/bounds", ""); status != http.StatusOK {
		t.Fatal("bounds probe failed")
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	rc, ok := vars["rcserve"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars lacks rcserve tree: %v", vars["rcserve"])
	}
	sessions, ok := rc["sessions"].(map[string]any)
	if !ok || sessions["active"].(float64) < 1 {
		t.Errorf("rcserve.sessions = %v, want at least one active", rc["sessions"])
	}
	if rc["boundsQueries"].(float64) < 1 {
		t.Errorf("boundsQueries = %v, want >= 1", rc["boundsQueries"])
	}
}
