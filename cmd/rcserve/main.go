// Command rcserve exposes the Penfield–Rubinstein bound analysis as an HTTP
// service backed by the concurrent batch engine: every request is routed
// through a shared worker pool, and repeated networks hit the shared
// memoization cache instead of being reanalyzed.
//
// Usage:
//
//	rcserve -addr :8080 -workers 8 -cache 4096
//
// Endpoints:
//
//	GET    /healthz             liveness plus engine/cache/session statistics
//	POST   /analyze             characteristic times and bound tables
//	POST   /certify             deadline certification verdicts
//	POST   /session             open an incremental editing session
//	GET    /session/{id}        session info
//	POST   /session/{id}/edit   apply local edits (O(depth) each, not O(n))
//	GET    /session/{id}/bounds current bound tables of every output
//	DELETE /session/{id}        close a session
//	POST   /design              analyze a multi-net chip design (levelized
//	                            interval-arrival timing over the worker pool)
//	                            and open an incremental re-timing session
//	GET    /design/{id}         design summary (WNS/TNS, verdict counts)
//	POST   /design/{id}/edit    apply ECO edits; only the edited nets and
//	                            their downstream fanout cones are re-timed
//	POST   /design/{id}/close   automated timing closure: repair the design
//	                            until WNS >= 0 or a budget runs out, and
//	                            return the accepted edits + trajectory
//	GET    /design/{id}/slack   full endpoint slack table + critical paths
//	DELETE /design/{id}         drop an analyzed design
//	GET    /debug/vars          expvar counters (engine, cache, sessions)
//
// /analyze and /certify accept a single request object or a batch:
//
//	{"netlist": ".input in\nR1 in o 10\nC1 o 0 5\n.output o\n",
//	 "thresholds": [0.5, 0.9], "times": [100]}
//	{"jobs": [{"expression": "URC 15 9", "thresholds": [0.5]}, ...]}
//
// Each job names its network either as a SPICE-like deck ("netlist") or in
// the paper's algebraic notation ("expression"); /certify additionally takes
// "checks": [{"output": "o", "v": 0.5, "t": 100}] (omit "output" to check
// every output). Responses are JSON bound tables in job order; a batch is
// answered as {"results": [...]} with per-job "error" fields, so one bad
// deck does not fail its neighbors.
//
// The session endpoints serve interactive clients: open a session once with
// the full deck, then stream local edits ({"edits": [{"op": "setR", "node":
// "n3", "r": 5}, ...]}) and re-read bounds — each probe costs O(depth) on
// the server instead of a full reparse and O(n) reanalysis. Idle sessions
// expire after -session-ttl.
//
// The design endpoints scale the same idea to chip level: POST /design pays
// the full levelized analysis once, and POST /design/{id}/edit absorbs ECO
// edits ({"edits": [{"op": "setR", "net": "drv", "node": "o", "r": 5}]}) by
// re-timing only the edited nets' downstream cones, answering with the
// updated WNS/TNS, the dirty-cone statistics, and which previously reported
// critical paths the edit invalidated.
//
// POST /design/{id}/close turns the session over to the automated
// timing-closure engine: candidate repairs (driver sizing, wire
// rebuffering, load trimming, stub pruning) are evaluated concurrently as
// what-if trials against session forks and accepted by slack gain per unit
// cost until WNS >= 0 or the requested budgets ({"maxMoves": 16,
// "maxCost": 50}) run out. The answer carries the accepted ECO edit list
// (which stays applied to the session), the move-by-move trajectory, and
// the Pareto frontier of (cost, WNS) states the search visited.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	rcdelay "repro"
)

// Server defaults, shared by the flag declarations and the zero-config
// construction paths (newServer, newSessionStore) so they cannot drift.
const (
	defaultSessionTTL  = 15 * time.Minute
	defaultMaxSessions = 1024
	defaultMaxBody     = 8 << 20 // bytes
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache       = flag.Int("cache", 0, "memoization cache entries (0 = default, negative = disabled)")
		sessionTTL  = flag.Duration("session-ttl", defaultSessionTTL, "idle lifetime of editing sessions")
		maxSessions = flag.Int("max-sessions", defaultMaxSessions, "maximum live editing sessions (LRU-evicted beyond)")
		maxBody     = flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
	)
	flag.Parse()
	srv := newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: *workers, CacheSize: *cache}))
	srv.sessions = newSessionStore(*sessionTTL, *maxSessions)
	srv.designs = newDesignStore(*sessionTTL, *maxSessions)
	srv.maxBody = *maxBody
	go srv.sessions.janitor(make(chan struct{}))
	go srv.designs.janitor(make(chan struct{}))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	log.Printf("rcserve: listening on %s (%d workers, session ttl %s)",
		*addr, srv.engine.Workers(), *sessionTTL)
	log.Fatal(httpSrv.ListenAndServe())
}

// server routes HTTP requests into a shared batch engine and a session
// store. It implements http.Handler so tests can drive it through httptest
// without a socket.
type server struct {
	engine   *rcdelay.BatchEngine
	sessions *sessionStore
	designs  *designStore
	maxBody  int64
	mux      *http.ServeMux
	start    time.Time
	counters struct {
		analyzeReqs   atomic.Int64
		certifyReqs   atomic.Int64
		sessionReqs   atomic.Int64
		editsApplied  atomic.Int64
		boundsQueries atomic.Int64
		designReqs    atomic.Int64
		designEdits   atomic.Int64
		slackQueries  atomic.Int64
		closeReqs     atomic.Int64
		closureMoves  atomic.Int64
	}
}

// expvarServer is the server /debug/vars reports on (the last one built —
// in production there is exactly one). expvar registration is global and
// panics on duplicates, so it happens once even though tests build many
// servers.
var (
	expvarServer atomic.Pointer[server]
	expvarOnce   sync.Once
)

func newServer(engine *rcdelay.BatchEngine) *server {
	s := &server{
		engine:   engine,
		sessions: newSessionStore(0, 0), // zero values select the defaults
		designs:  newDesignStore(0, 0),
		maxBody:  defaultMaxBody,
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/certify", s.handleCertify)
	s.mux.HandleFunc("POST /session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /session/{id}/edit", s.handleSessionEdit)
	s.mux.HandleFunc("GET /session/{id}/bounds", s.handleSessionBounds)
	s.mux.HandleFunc("GET /session/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /design", s.handleDesignCreate)
	s.mux.HandleFunc("POST /design/{id}/edit", s.handleDesignEdit)
	s.mux.HandleFunc("POST /design/{id}/close", s.handleDesignClose)
	s.mux.HandleFunc("GET /design/{id}/slack", s.handleDesignSlack)
	s.mux.HandleFunc("GET /design/{id}", s.handleDesignInfo)
	s.mux.HandleFunc("DELETE /design/{id}", s.handleDesignDelete)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	expvarServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("rcserve", expvar.Func(func() any {
			srv := expvarServer.Load()
			if srv == nil {
				return nil
			}
			return srv.statsSnapshot()
		}))
	})
	return s
}

// statsSnapshot aggregates the engine, cache and session counters for
// /healthz and the expvar endpoint.
func (s *server) statsSnapshot() map[string]any {
	stats := s.engine.CacheStats()
	return map[string]any{
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"workers":       s.engine.Workers(),
		"cache": map[string]any{
			"hits":      stats.Hits,
			"misses":    stats.Misses,
			"evictions": stats.Evictions,
			"entries":   stats.Entries,
		},
		"sessions": s.sessions.stats(),
		"designs":  s.designs.stats(),
		"requests": map[string]any{
			"analyze": s.counters.analyzeReqs.Load(),
			"certify": s.counters.certifyReqs.Load(),
			"session": s.counters.sessionReqs.Load(),
			"design":  s.counters.designReqs.Load(),
		},
		"editsApplied":  s.counters.editsApplied.Load(),
		"boundsQueries": s.counters.boundsQueries.Load(),
		"designEdits":   s.counters.designEdits.Load(),
		"slackQueries":  s.counters.slackQueries.Load(),
		"closeRequests": s.counters.closeReqs.Load(),
		"closureMoves":  s.counters.closureMoves.Load(),
	}
}

// httpError writes a JSON error envelope (the session endpoints speak JSON
// end to end; plain-text errors are awkward for interactive clients).
func httpError(w http.ResponseWriter, msg string, status int) {
	writeJSON(w, status, map[string]any{"error": msg})
}

// badRequestStatus maps oversized bodies to 413 and everything else a JSON
// decoder can complain about to 400.
func badRequestStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// jobRequest is one network plus its evaluation requests, as posted by the
// client. Exactly one of Netlist and Expression must be set.
type jobRequest struct {
	Tag        string      `json:"tag,omitempty"`
	Netlist    string      `json:"netlist,omitempty"`
	Expression string      `json:"expression,omitempty"`
	Thresholds []float64   `json:"thresholds,omitempty"`
	Times      []float64   `json:"times,omitempty"`
	Checks     []checkSpec `json:"checks,omitempty"`
}

type checkSpec struct {
	Output string  `json:"output,omitempty"`
	V      float64 `json:"v"`
	T      float64 `json:"t"`
}

// request is the envelope both POST endpoints accept: either a single job
// inline, or a list under "jobs".
type request struct {
	jobRequest
	Jobs []jobRequest `json:"jobs,omitempty"`
}

type timesJSON struct {
	TP  float64 `json:"tp"`
	TD  float64 `json:"td"`
	TR  float64 `json:"tr"`
	Ree float64 `json:"ree"`
}

type delayRowJSON struct {
	V    float64 `json:"v"`
	TMin float64 `json:"tmin"`
	TMax float64 `json:"tmax"`
}

type voltageRowJSON struct {
	T    float64 `json:"t"`
	VMin float64 `json:"vmin"`
	VMax float64 `json:"vmax"`
}

type outputJSON struct {
	Name    string           `json:"name"`
	Times   timesJSON        `json:"times"`
	Delay   []delayRowJSON   `json:"delay,omitempty"`
	Voltage []voltageRowJSON `json:"voltage,omitempty"`
}

type checkJSON struct {
	Output  string  `json:"output"`
	V       float64 `json:"v"`
	T       float64 `json:"t"`
	Verdict string  `json:"verdict"`
}

type jobJSON struct {
	Tag      string       `json:"tag,omitempty"`
	Key      string       `json:"key,omitempty"`
	CacheHit bool         `json:"cacheHit"`
	Outputs  []outputJSON `json:"outputs,omitempty"`
	Checks   []checkJSON  `json:"checks,omitempty"`
	Error    string       `json:"error,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "healthz is GET-only", http.StatusMethodNotAllowed)
		return
	}
	body := s.statsSnapshot()
	body["status"] = "ok"
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.counters.analyzeReqs.Add(1)
	s.handleBatch(w, r, false)
}

func (s *server) handleCertify(w http.ResponseWriter, r *http.Request) {
	s.counters.certifyReqs.Add(1)
	s.handleBatch(w, r, true)
}

// handleBatch decodes the request envelope, runs the jobs through the
// engine, and writes the results in job order. certify restricts the
// response to verdicts and requires at least one check per job.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request, certify bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "expected POST with a JSON body", http.StatusMethodNotAllowed)
		return
	}
	var req request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	single := len(req.Jobs) == 0
	specs := req.Jobs
	if single {
		specs = []jobRequest{req.jobRequest}
	}

	jobs := make([]rcdelay.BatchJob, len(specs))
	buildErrs := make([]error, len(specs))
	for i, spec := range specs {
		jobs[i], buildErrs[i] = buildJob(spec, certify)
	}
	results := s.engine.Run(r.Context(), jobs)

	answers := make([]jobJSON, len(specs))
	for i, res := range results {
		if buildErrs[i] != nil {
			answers[i] = jobJSON{Tag: specs[i].Tag, Error: buildErrs[i].Error()}
			continue
		}
		answers[i] = renderJob(res, certify)
	}
	if single {
		if answers[0].Error != "" {
			writeJSON(w, http.StatusUnprocessableEntity, answers[0])
			return
		}
		writeJSON(w, http.StatusOK, answers[0])
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": answers})
}

// buildJob parses one job spec into an engine job. Parse failures are
// reported per job, not per request; the placeholder job carries a nil tree
// the engine answers with an error that renderJob never sees.
func buildJob(spec jobRequest, certify bool) (rcdelay.BatchJob, error) {
	job := rcdelay.BatchJob{
		Tag:        spec.Tag,
		Thresholds: spec.Thresholds,
		Times:      spec.Times,
	}
	for _, c := range spec.Checks {
		job.Checks = append(job.Checks, rcdelay.BatchCheck{Output: c.Output, V: c.V, T: c.T})
	}
	switch {
	case spec.Netlist != "" && spec.Expression != "":
		return job, fmt.Errorf("give either netlist or expression, not both")
	case spec.Netlist != "":
		tree, err := rcdelay.ParseNetlist(spec.Netlist)
		if err != nil {
			return job, err
		}
		job.Tree = tree
	case spec.Expression != "":
		tree, _, err := rcdelay.ParseExpression(spec.Expression)
		if err != nil {
			return job, err
		}
		job.Tree = tree
	default:
		return job, fmt.Errorf("job names no network: set netlist or expression")
	}
	if certify && len(job.Checks) == 0 {
		return job, fmt.Errorf("certify needs at least one check ({output, v, t})")
	}
	return job, nil
}

func renderJob(res rcdelay.BatchResult, certify bool) jobJSON {
	out := jobJSON{Tag: res.Tag, Key: res.Key, CacheHit: res.CacheHit}
	if res.Err != nil {
		return jobJSON{Tag: res.Tag, Error: res.Err.Error()}
	}
	if !certify {
		for _, rep := range res.Outputs {
			oj := outputJSON{
				Name:  rep.Name,
				Times: timesJSON{TP: rep.Times.TP, TD: rep.Times.TD, TR: rep.Times.TR, Ree: rep.Times.Ree},
			}
			for _, row := range rep.Delay {
				oj.Delay = append(oj.Delay, delayRowJSON{V: row.V, TMin: row.TMin, TMax: row.TMax})
			}
			for _, row := range rep.Voltage {
				oj.Voltage = append(oj.Voltage, voltageRowJSON{T: row.T, VMin: row.VMin, VMax: row.VMax})
			}
			out.Outputs = append(out.Outputs, oj)
		}
	}
	for _, c := range res.Checks {
		out.Checks = append(out.Checks, checkJSON{Output: c.Output, V: c.V, T: c.T, Verdict: c.Verdict.String()})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("rcserve: encode response: %v", err)
	}
}
