// Command rcserve exposes the Penfield–Rubinstein bound analysis as an HTTP
// service backed by the concurrent batch engine: every request is routed
// through a shared worker pool, and repeated networks hit the shared
// memoization cache instead of being reanalyzed.
//
// Usage:
//
//	rcserve -addr :8080 -workers 8 -cache 4096
//
// Endpoints:
//
//	GET    /healthz             liveness plus engine/cache/session statistics
//	POST   /analyze             characteristic times and bound tables
//	POST   /certify             deadline certification verdicts
//	POST   /session             open an incremental editing session
//	GET    /session/{id}        session info
//	POST   /session/{id}/edit   apply local edits (O(depth) each, not O(n))
//	GET    /session/{id}/bounds current bound tables of every output
//	DELETE /session/{id}        close a session
//	POST   /design              analyze a multi-net chip design (levelized
//	                            interval-arrival timing over the worker pool)
//	                            and open an incremental re-timing session
//	GET    /design/{id}         design summary (WNS/TNS, verdict counts)
//	POST   /design/{id}/edit    apply ECO edits; only the edited nets and
//	                            their downstream fanout cones are re-timed
//	POST   /design/{id}/close   automated timing closure: repair the design
//	                            until WNS >= 0 or a budget runs out, and
//	                            return the accepted edits + trajectory
//	GET    /design/{id}/slack   full endpoint slack table + critical paths
//	DELETE /design/{id}         drop an analyzed design
//	GET    /metrics             Prometheus text exposition: per-route request
//	                            counters and latency histograms, engine-phase
//	                            timings, closure counters, cache gauges
//	GET    /readyz              readiness; 503 once a shutdown drain starts
//	GET    /debug/vars          legacy JSON counter blob (per-server, no
//	                            global expvar registration)
//	GET    /debug/traces        flight recorder: recent + pinned slow/error
//	                            traces, newest first (?slow=1 pinned only)
//	GET    /debug/traces/{id}   one trace as a span tree; ?format=chrome
//	                            emits Chrome trace-event JSON (Perfetto)
//	GET    /debug/pprof/        runtime profiling (net/http/pprof)
//
// POST /design/{id}/close?stream=1 switches the closure response to
// Server-Sent Events: a "start" event with the initial WNS/TNS, one "move"
// event per accepted repair (move, WNS, TNS, cumulative cost, gain — the
// live trajectory), and a final "done" event with the closure summary.
// Disconnecting the client cancels the run through the request context; the
// moves accepted before the cancellation stay applied to the session.
//
// /analyze and /certify accept a single request object or a batch:
//
//	{"netlist": ".input in\nR1 in o 10\nC1 o 0 5\n.output o\n",
//	 "thresholds": [0.5, 0.9], "times": [100]}
//	{"jobs": [{"expression": "URC 15 9", "thresholds": [0.5]}, ...]}
//
// Each job names its network either as a SPICE-like deck ("netlist") or in
// the paper's algebraic notation ("expression"); /certify additionally takes
// "checks": [{"output": "o", "v": 0.5, "t": 100}] (omit "output" to check
// every output). Responses are JSON bound tables in job order; a batch is
// answered as {"results": [...]} with per-job "error" fields, so one bad
// deck does not fail its neighbors.
//
// The session endpoints serve interactive clients: open a session once with
// the full deck, then stream local edits ({"edits": [{"op": "setR", "node":
// "n3", "r": 5}, ...]}) and re-read bounds — each probe costs O(depth) on
// the server instead of a full reparse and O(n) reanalysis. Idle sessions
// expire after -session-ttl.
//
// The design endpoints scale the same idea to chip level: POST /design pays
// the full levelized analysis once, and POST /design/{id}/edit absorbs ECO
// edits ({"edits": [{"op": "setR", "net": "drv", "node": "o", "r": 5}]}) by
// re-timing only the edited nets' downstream cones, answering with the
// updated WNS/TNS, the dirty-cone statistics, and which previously reported
// critical paths the edit invalidated.
//
// POST /design/{id}/close turns the session over to the automated
// timing-closure engine: candidate repairs (driver sizing, wire
// rebuffering, load trimming, stub pruning) are evaluated concurrently as
// what-if trials against session forks and accepted by slack gain per unit
// cost until WNS >= 0 or the requested budgets ({"maxMoves": 16,
// "maxCost": 50}) run out. The answer carries the accepted ECO edit list
// (which stays applied to the session), the move-by-move trajectory, and
// the Pareto frontier of (cost, WNS) states the search visited.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	rcdelay "repro"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Server defaults, shared by the flag declarations and the zero-config
// construction paths (newServer, newSessionStore) so they cannot drift.
const (
	defaultSessionTTL  = 15 * time.Minute
	defaultMaxSessions = 1024
	defaultMaxBody     = 8 << 20 // bytes
	defaultStoreShards = 8
	defaultShardQueue  = 64
	defaultEditBurst   = 256
	defaultSnapEvery   = 64 // WAL edits between automatic snapshots
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache       = flag.Int("cache", 0, "memoization cache entries (0 = default, negative = disabled)")
		sessionTTL  = flag.Duration("session-ttl", defaultSessionTTL, "idle lifetime of editing sessions")
		maxSessions = flag.Int("max-sessions", defaultMaxSessions, "maximum live editing sessions (LRU-evicted beyond)")
		maxBody     = flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown drain waits for in-flight requests")
		shards      = flag.Int("shards", defaultStoreShards, "id-hash lock shards per store")
		shardQueue  = flag.Int("shard-queue", defaultShardQueue, "per-shard admission-queue depth (beyond it heavy requests get 429)")
		editRate    = flag.Float64("edit-rate", 0, "per-session sustained edits/second (0 = unlimited; beyond it edits get 429)")
		editBurst   = flag.Float64("edit-burst", defaultEditBurst, "per-session edit token-bucket burst")
		dataDir     = flag.String("data-dir", "", "durability directory: per-design WAL + snapshots (empty = in-memory only)")
		snapEvery   = flag.Int("snapshot-every", defaultSnapEvery, "WAL edits that trigger an automatic design snapshot")
		snapEach    = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshotter cadence (0 disables the timer)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		traceBuf    = flag.Int("trace-buffer", 64, "completed traces the flight recorder retains")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "request latency at or above which a trace is pinned in the slow ring")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		log.Fatalf("rcserve: %v", err)
	}
	srv := newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: *workers, CacheSize: *cache}))
	srv.tracer = trace.New(trace.Options{Capacity: *traceBuf, SlowThreshold: *traceSlow})
	srv.logger = logger
	cfg := storeConfig{
		ttl: *sessionTTL, max: *maxSessions,
		shards: *shards, queue: *shardQueue,
		editRate: *editRate, editBurst: *editBurst,
	}
	srv.sessions = newSessionStore(cfg)
	srv.designs = newDesignStore(cfg)
	srv.registerStoreGauges()
	srv.maxBody = *maxBody
	srv.snapEvery = *snapEvery
	if *dataDir != "" {
		if err := srv.openWAL(*dataDir); err != nil {
			log.Fatalf("rcserve: open data dir: %v", err)
		}
		n, err := srv.recoverDesigns(context.Background())
		if err != nil {
			log.Fatalf("rcserve: recover designs: %v", err)
		}
		logger.Info("rcserve: recovered designs", "dataDir", *dataDir, "designs", n)
	}
	janitorStop := make(chan struct{})
	go srv.sessions.janitor(janitorStop)
	go srv.designs.janitor(janitorStop)
	if srv.wal != nil && *snapEach > 0 {
		go srv.snapshotter(*snapEach, janitorStop)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	logger.Info("rcserve: listening",
		"addr", *addr, "workers", srv.engine.Workers(), "sessionTTL", *sessionTTL)

	// Signal-driven drain: on SIGINT/SIGTERM flip /readyz to 503 (load
	// balancers stop sending), let in-flight requests finish under
	// http.Server.Shutdown, then stop the janitors and sweep the stores.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		srv.draining.Store(true)
		logger.Info("rcserve: drain started", "timeout", *drainWait)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			logger.Error("rcserve: drain incomplete", "err", err)
			os.Exit(1)
		}
		close(janitorStop)
		srv.sessions.sweep()
		srv.designs.sweep()
		if n, err := srv.snapshotAll(); err != nil {
			logger.Error("rcserve: final snapshot incomplete", "err", err)
		} else if n > 0 {
			logger.Info("rcserve: final snapshots written", "designs", n)
		}
		logger.Info("rcserve: drained")
	}
}

// server routes HTTP requests into a shared batch engine and a session
// store. It implements http.Handler so tests can drive it through httptest
// without a socket. Every server owns its own metrics registry — two
// servers in one process (as in tests) never alias each other's counters,
// which the old process-global expvar registration could not guarantee.
type server struct {
	engine   *rcdelay.BatchEngine
	sessions *sessionStore
	designs  *designStore
	maxBody  int64
	mux      *http.ServeMux
	start    time.Time
	obs      *obs.Registry
	logger   *slog.Logger
	tracer   *trace.Tracer
	draining atomic.Bool

	// Durability (nil wal = in-memory only, the default): per-design WAL +
	// snapshots under -data-dir, replayed at boot and lazily on store miss.
	wal       *wal.Store
	snapEvery int
	// recovering serializes lazy per-id recovery so two concurrent misses
	// for the same evicted design rebuild it once.
	recovering sync.Mutex
}

// requestMeta is mutated by the per-route registration wrapper and read by
// the ServeHTTP middleware: the mux only stamps Pattern on its internal
// request copy, so the matched route has to be smuggled out through a
// context pointer for the middleware's metric labels. The middleware also
// stamps the request's correlation id here so deep error paths (httpError)
// can echo it into response bodies.
type requestMeta struct {
	route string
	id    string
}

type metaKey struct{}

// handle registers pattern on the mux, recording the matched pattern into
// the request's meta for the middleware.
func (s *server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if m, ok := r.Context().Value(metaKey{}).(*requestMeta); ok {
			m.route = pattern
		}
		h(w, r)
	})
}

func newServer(engine *rcdelay.BatchEngine) *server {
	s := &server{
		engine:    engine,
		sessions:  newSessionStore(storeConfig{}), // zero config selects the defaults
		designs:   newDesignStore(storeConfig{}),
		maxBody:   defaultMaxBody,
		snapEvery: defaultSnapEvery,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		obs:       obs.NewRegistry(),
		logger:    slog.Default(),
		tracer:    trace.New(trace.Options{}),
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /analyze", s.handleAnalyze)
	s.handle("POST /certify", s.handleCertify)
	s.handle("POST /session", s.handleSessionCreate)
	s.handle("POST /session/{id}/edit", s.handleSessionEdit)
	s.handle("GET /session/{id}/bounds", s.handleSessionBounds)
	s.handle("GET /session/{id}", s.handleSessionInfo)
	s.handle("DELETE /session/{id}", s.handleSessionDelete)
	s.handle("POST /design", s.handleDesignCreate)
	s.handle("POST /design/{id}/edit", s.handleDesignEdit)
	s.handle("POST /design/{id}/close", s.handleDesignClose)
	s.handle("POST /design/{id}/corners", s.handleDesignCorners)
	s.handle("GET /design/{id}/slack", s.handleDesignSlack)
	s.handle("GET /design/{id}", s.handleDesignInfo)
	s.handle("DELETE /design/{id}", s.handleDesignDelete)
	s.handle("GET /debug/vars", s.handleVars)
	s.handle("GET /debug/traces", s.handleTraceList)
	s.handle("GET /debug/traces/{id}", s.handleTraceGet)
	s.handle("GET /debug/pprof/", pprof.Index)
	s.handle("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.handle("GET /debug/pprof/profile", pprof.Profile)
	s.handle("GET /debug/pprof/symbol", pprof.Symbol)
	s.handle("GET /debug/pprof/trace", pprof.Trace)
	s.registerStoreGauges()
	return s
}

// registerStoreGauges (re)binds the sampled gauges to the server's current
// stores and engine; main calls it again after swapping the default stores
// for flag-configured ones.
func (s *server) registerStoreGauges() {
	s.obs.GaugeFunc("rcserve_uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
	s.obs.GaugeFunc("rcserve_sessions_active", func() float64 { return float64(s.sessions.active()) })
	s.obs.GaugeFunc("rcserve_designs_active", func() float64 { return float64(s.designs.active()) })
	s.obs.GaugeFunc("rcserve_cache_entries", func() float64 { return float64(s.engine.CacheStats().Entries) })
	s.obs.GaugeFunc("rcserve_cache_hits", func() float64 { return float64(s.engine.CacheStats().Hits) })
	s.obs.GaugeFunc("rcserve_cache_misses", func() float64 { return float64(s.engine.CacheStats().Misses) })
}

// count bumps one named registry counter by n.
func (s *server) count(name string, n int64) { s.obs.Counter(name).Add(n) }

// statsSnapshot aggregates the engine, cache and session counters for
// /healthz and /debug/vars — the legacy JSON view of the same numbers
// /metrics exposes.
func (s *server) statsSnapshot() map[string]any {
	stats := s.engine.CacheStats()
	val := func(name string) int64 { return s.obs.Counter(name).Value() }
	return map[string]any{
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"workers":       s.engine.Workers(),
		"cache": map[string]any{
			"hits":      stats.Hits,
			"misses":    stats.Misses,
			"evictions": stats.Evictions,
			"entries":   stats.Entries,
		},
		"sessions": s.sessions.stats(),
		"designs":  s.designs.stats(),
		"requests": map[string]any{
			"analyze": val("rcserve_analyze_requests_total"),
			"certify": val("rcserve_certify_requests_total"),
			"session": val("rcserve_session_requests_total"),
			"design":  val("rcserve_design_requests_total"),
		},
		"editsApplied":  val("rcserve_edits_applied_total"),
		"boundsQueries": val("rcserve_bounds_queries_total"),
		"designEdits":   val("rcserve_design_edits_total"),
		"slackQueries":  val("rcserve_slack_queries_total"),
		"closeRequests": val("rcserve_close_requests_total"),
		"closureMoves":  val("rcserve_closure_moves_total"),
	}
}

// handleMetrics serves the whole registry in Prometheus text exposition
// format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w)
}

// handleVars is the legacy /debug/vars shape, served per-server off the
// registry instead of the old process-global expvar publication.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"rcserve": s.statsSnapshot()})
}

// handleReadyz answers 200 until a shutdown drain starts, then 503 so load
// balancers stop routing here while in-flight work finishes.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// errorBody builds the JSON error envelope, echoing the request's
// correlation id so a client can quote it when reporting a failure.
func errorBody(r *http.Request, msg string) map[string]any {
	body := map[string]any{"error": msg}
	if m, ok := r.Context().Value(metaKey{}).(*requestMeta); ok && m.id != "" {
		body["requestId"] = m.id
	}
	return body
}

// httpError writes a JSON error envelope (the session endpoints speak JSON
// end to end; plain-text errors are awkward for interactive clients).
func httpError(w http.ResponseWriter, r *http.Request, msg string, status int) {
	writeJSON(w, status, errorBody(r, msg))
}

// rateLimited answers 429 with a Retry-After hint — the backpressure signal
// for both the per-session edit-rate limit and a full shard queue.
func rateLimited(w http.ResponseWriter, r *http.Request, msg string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, errorBody(r, msg))
}

// admitOr429 takes an admission token from id's shard queue, answering 429
// when the shard is already at its in-flight depth. The returned func gives
// the token back; call it when the request is done.
func admitOr429[T any](w http.ResponseWriter, r *http.Request, st *ttlStore[T], id string) (func(), bool) {
	done, ok := st.admit(id)
	if !ok {
		rateLimited(w, r, "shard admission queue full")
		return nil, false
	}
	return done, true
}

// badRequestStatus maps oversized bodies to 413 and everything else a JSON
// decoder can complain about to 400.
func badRequestStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusWriter records the status code and byte count a handler produced,
// passing Flush through so SSE streaming keeps working behind the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// newRequestID returns a short random correlation id for one request's log
// lines.
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "????????????"
	}
	return hex.EncodeToString(b[:])
}

// ServeHTTP is the telemetry middleware around the mux: every request gets
// a correlation id (the inbound X-Request-Id when well-formed, minted
// otherwise, echoed back either way), a trace root span (joining the
// inbound W3C traceparent when one is sent), a per-route latency
// observation, a per-route/status counter, and one structured log line
// carrying both ids.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	meta := &requestMeta{id: requestID(r)}
	ctx := context.WithValue(r.Context(), metaKey{}, meta)
	var tid trace.TraceID
	var parent trace.SpanID
	if tp := r.Header.Get("traceparent"); tp != "" {
		tid, parent, _ = trace.ParseTraceparent(tp)
	}
	ctx, span := s.tracer.StartRemote(ctx, "rcserve.request", tid, parent)
	span.SetAttr("method", r.Method)
	span.SetAttr("path", r.URL.Path)
	span.SetAttr("request_id", meta.id)
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}
	w.Header().Set("X-Request-Id", meta.id)
	traceID := span.TraceID()
	if !traceID.IsZero() {
		w.Header().Set("traceparent", trace.FormatTraceparent(traceID, span.SpanID()))
	}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)
	route := meta.route
	if route == "" {
		route = "unmatched" // 404/405 straight from the mux
	}
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	span.SetAttr("route", route)
	span.SetAttr("status", strconv.Itoa(sw.status))
	if sw.status >= http.StatusInternalServerError {
		span.SetError(fmt.Errorf("status %d", sw.status))
	}
	span.End()
	s.obs.Counter("http_requests_total",
		"route", route, "code", fmt.Sprintf("%d", sw.status)).Add(1)
	s.obs.Histogram("http_request_seconds", obs.LatencyBuckets, "route", route).
		Observe(dur.Seconds())
	logAttrs := []any{
		"id", meta.id, "method", r.Method, "path", r.URL.Path, "route", route,
		"status", sw.status, "bytes", sw.bytes, "dur", dur,
	}
	if !traceID.IsZero() {
		logAttrs = append(logAttrs, "trace", traceID.String())
	}
	s.logger.Info("request", logAttrs...)
}

// jobRequest is one network plus its evaluation requests, as posted by the
// client. Exactly one of Netlist and Expression must be set.
type jobRequest struct {
	Tag        string      `json:"tag,omitempty"`
	Netlist    string      `json:"netlist,omitempty"`
	Expression string      `json:"expression,omitempty"`
	Thresholds []float64   `json:"thresholds,omitempty"`
	Times      []float64   `json:"times,omitempty"`
	Checks     []checkSpec `json:"checks,omitempty"`
}

type checkSpec struct {
	Output string  `json:"output,omitempty"`
	V      float64 `json:"v"`
	T      float64 `json:"t"`
}

// request is the envelope both POST endpoints accept: either a single job
// inline, or a list under "jobs".
type request struct {
	jobRequest
	Jobs []jobRequest `json:"jobs,omitempty"`
}

type timesJSON struct {
	TP  float64 `json:"tp"`
	TD  float64 `json:"td"`
	TR  float64 `json:"tr"`
	Ree float64 `json:"ree"`
}

type delayRowJSON struct {
	V    float64 `json:"v"`
	TMin float64 `json:"tmin"`
	TMax float64 `json:"tmax"`
}

type voltageRowJSON struct {
	T    float64 `json:"t"`
	VMin float64 `json:"vmin"`
	VMax float64 `json:"vmax"`
}

type outputJSON struct {
	Name    string           `json:"name"`
	Times   timesJSON        `json:"times"`
	Delay   []delayRowJSON   `json:"delay,omitempty"`
	Voltage []voltageRowJSON `json:"voltage,omitempty"`
}

type checkJSON struct {
	Output  string  `json:"output"`
	V       float64 `json:"v"`
	T       float64 `json:"t"`
	Verdict string  `json:"verdict"`
}

type jobJSON struct {
	Tag      string       `json:"tag,omitempty"`
	Key      string       `json:"key,omitempty"`
	CacheHit bool         `json:"cacheHit"`
	Outputs  []outputJSON `json:"outputs,omitempty"`
	Checks   []checkJSON  `json:"checks,omitempty"`
	Error    string       `json:"error,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "healthz is GET-only", http.StatusMethodNotAllowed)
		return
	}
	body := s.statsSnapshot()
	body["status"] = "ok"
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_analyze_requests_total", 1)
	s.handleBatch(w, r, false)
}

func (s *server) handleCertify(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_certify_requests_total", 1)
	s.handleBatch(w, r, true)
}

// handleBatch decodes the request envelope, runs the jobs through the
// engine, and writes the results in job order. certify restricts the
// response to verdicts and requires at least one check per job.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request, certify bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "expected POST with a JSON body", http.StatusMethodNotAllowed)
		return
	}
	var req request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	single := len(req.Jobs) == 0
	specs := req.Jobs
	if single {
		specs = []jobRequest{req.jobRequest}
	}

	jobs := make([]rcdelay.BatchJob, len(specs))
	buildErrs := make([]error, len(specs))
	for i, spec := range specs {
		jobs[i], buildErrs[i] = buildJob(spec, certify)
	}
	results := s.engine.Run(r.Context(), jobs)

	answers := make([]jobJSON, len(specs))
	for i, res := range results {
		if buildErrs[i] != nil {
			answers[i] = jobJSON{Tag: specs[i].Tag, Error: buildErrs[i].Error()}
			continue
		}
		answers[i] = renderJob(res, certify)
	}
	if single {
		if answers[0].Error != "" {
			writeJSON(w, http.StatusUnprocessableEntity, answers[0])
			return
		}
		writeJSON(w, http.StatusOK, answers[0])
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": answers})
}

// buildJob parses one job spec into an engine job. Parse failures are
// reported per job, not per request; the placeholder job carries a nil tree
// the engine answers with an error that renderJob never sees.
func buildJob(spec jobRequest, certify bool) (rcdelay.BatchJob, error) {
	job := rcdelay.BatchJob{
		Tag:        spec.Tag,
		Thresholds: spec.Thresholds,
		Times:      spec.Times,
	}
	for _, c := range spec.Checks {
		job.Checks = append(job.Checks, rcdelay.BatchCheck{Output: c.Output, V: c.V, T: c.T})
	}
	switch {
	case spec.Netlist != "" && spec.Expression != "":
		return job, fmt.Errorf("give either netlist or expression, not both")
	case spec.Netlist != "":
		tree, err := rcdelay.ParseNetlist(spec.Netlist)
		if err != nil {
			return job, err
		}
		job.Tree = tree
	case spec.Expression != "":
		tree, _, err := rcdelay.ParseExpression(spec.Expression)
		if err != nil {
			return job, err
		}
		job.Tree = tree
	default:
		return job, fmt.Errorf("job names no network: set netlist or expression")
	}
	if certify && len(job.Checks) == 0 {
		return job, fmt.Errorf("certify needs at least one check ({output, v, t})")
	}
	return job, nil
}

func renderJob(res rcdelay.BatchResult, certify bool) jobJSON {
	out := jobJSON{Tag: res.Tag, Key: res.Key, CacheHit: res.CacheHit}
	if res.Err != nil {
		return jobJSON{Tag: res.Tag, Error: res.Err.Error()}
	}
	if !certify {
		for _, rep := range res.Outputs {
			oj := outputJSON{
				Name:  rep.Name,
				Times: timesJSON{TP: rep.Times.TP, TD: rep.Times.TD, TR: rep.Times.TR, Ree: rep.Times.Ree},
			}
			for _, row := range rep.Delay {
				oj.Delay = append(oj.Delay, delayRowJSON{V: row.V, TMin: row.TMin, TMax: row.TMax})
			}
			for _, row := range rep.Voltage {
				oj.Voltage = append(oj.Voltage, voltageRowJSON{T: row.T, VMin: row.VMin, VMax: row.VMax})
			}
			out.Outputs = append(out.Outputs, oj)
		}
	}
	for _, c := range res.Checks {
		out.Checks = append(out.Checks, checkJSON{Output: c.Output, V: c.V, T: c.T, Verdict: c.Verdict.String()})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("rcserve: encode response: %v", err)
	}
}
