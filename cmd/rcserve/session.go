package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	rcdelay "repro"
)

// A session is one interactive editing context: an incremental EditTree a
// client mutates with POST /session/{id}/edit and queries with GET
// /session/{id}/bounds, instead of resending the whole deck per probe.
// The mutex serializes all access to the EditTree (which is single-writer).
// Lifecycle (ids, TTL expiry, LRU eviction) lives in the shared ttlStore.
type session struct {
	mu    sync.Mutex
	et    *rcdelay.EditTree
	edits int
}

// sessionStore owns the live sessions.
type sessionStore = ttlStore[*session]

func newSessionStore(cfg storeConfig) *sessionStore {
	return newTTLStore[*session](cfg)
}

// --- HTTP surface -----------------------------------------------------------

// createSessionRequest names the initial network like a batch job does.
type createSessionRequest struct {
	Netlist    string `json:"netlist,omitempty"`
	Expression string `json:"expression,omitempty"`
}

type sessionInfoJSON struct {
	ID      string   `json:"id"`
	Nodes   int      `json:"nodes"`
	Outputs []string `json:"outputs"`
	Gen     uint64   `json:"gen"`
	Edits   int      `json:"edits"`
}

// editSpec is one edit operation, applied in order. Nodes are named (the
// stable handle across grows and prunes); numeric values ride in r/c/factor.
type editSpec struct {
	Op         string   `json:"op"`
	Node       string   `json:"node,omitempty"`
	Parent     string   `json:"parent,omitempty"`
	Name       string   `json:"name,omitempty"`
	Kind       string   `json:"kind,omitempty"` // "resistor" (default) or "line"
	R          *float64 `json:"r,omitempty"`
	C          *float64 `json:"c,omitempty"`
	Factor     *float64 `json:"factor,omitempty"`
	Netlist    string   `json:"netlist,omitempty"`    // graft source
	Expression string   `json:"expression,omitempty"` // graft source
}

type editRequest struct {
	Edits []editSpec `json:"edits"`
}

type editResponse struct {
	ID      string       `json:"id"`
	Gen     uint64       `json:"gen"`
	Applied int          `json:"applied"`
	Outputs []outputJSON `json:"outputs,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_session_requests_total", 1)
	var req createSessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	var tree *rcdelay.Tree
	var err error
	switch {
	case req.Netlist != "" && req.Expression != "":
		httpError(w, r, "give either netlist or expression, not both", http.StatusUnprocessableEntity)
		return
	case req.Netlist != "":
		tree, err = rcdelay.ParseNetlist(req.Netlist)
	case req.Expression != "":
		tree, _, err = rcdelay.ParseExpression(req.Expression)
	default:
		httpError(w, r, "session names no network: set netlist or expression", http.StatusUnprocessableEntity)
		return
	}
	if err != nil {
		httpError(w, r, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	ent := s.sessions.create(&session{et: rcdelay.NewEditTree(tree)})
	defer s.sessions.release(ent)
	writeJSON(w, http.StatusCreated, s.sessionInfo(ent))
}

func (s *server) sessionInfo(ent *entry[*session]) sessionInfoJSON {
	sess := ent.val
	sess.mu.Lock()
	defer sess.mu.Unlock()
	info := sessionInfoJSON{
		ID:    ent.id,
		Nodes: sess.et.NumNodes(),
		Gen:   sess.et.Gen(),
		Edits: sess.edits,
	}
	for _, o := range sess.et.Outputs() {
		info.Outputs = append(info.Outputs, sess.et.Name(o))
	}
	return info
}

// lookupSession resolves the path id to a pinned entry — the pin keeps TTL
// and LRU eviction away from the session while the handler works on it; the
// caller must release it.
func (s *server) lookupSession(w http.ResponseWriter, r *http.Request) (*entry[*session], bool) {
	ent, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		httpError(w, r, "unknown or expired session", http.StatusNotFound)
		return nil, false
	}
	return ent, true
}

func (s *server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_session_requests_total", 1)
	if ent, ok := s.lookupSession(w, r); ok {
		defer s.sessions.release(ent)
		writeJSON(w, http.StatusOK, s.sessionInfo(ent))
	}
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_session_requests_total", 1)
	if !s.sessions.delete(r.PathValue("id")) {
		httpError(w, r, "unknown or expired session", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}

// handleSessionEdit applies the posted edits in order under the session
// lock. On the first failing edit it stops and reports the error together
// with how many edits were applied (those stay applied — the EditTree
// rejects invalid edits atomically, so state remains consistent). The
// response carries the fresh characteristic times of every output so
// interactive clients get edit→times in one round trip.
func (s *server) handleSessionEdit(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_session_requests_total", 1)
	done, ok := admitOr429(w, r, s.sessions, r.PathValue("id"))
	if !ok {
		return
	}
	defer done()
	ent, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	defer s.sessions.release(ent)
	sess := ent.val
	var req editRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, fmt.Sprintf("bad request: %v", err), badRequestStatus(err))
		return
	}
	if len(req.Edits) == 0 {
		httpError(w, r, "edit request carries no edits", http.StatusUnprocessableEntity)
		return
	}
	if !s.sessions.allowEdits(ent, len(req.Edits)) {
		rateLimited(w, r, "session edit rate limit exceeded")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := editResponse{ID: ent.id}
	for i, spec := range req.Edits {
		if err := applyEdit(sess.et, spec); err != nil {
			resp.Error = fmt.Sprintf("edit %d (%s): %v", i, spec.Op, err)
			break
		}
		resp.Applied++
	}
	sess.edits += resp.Applied
	s.count("rcserve_edits_applied_total", int64(resp.Applied))
	resp.Gen = sess.et.Gen()
	for _, o := range sess.et.Outputs() {
		tm, err := sess.et.Times(o)
		if err != nil {
			if resp.Error == "" {
				resp.Error = fmt.Sprintf("output %q: %v", sess.et.Name(o), err)
			}
			continue
		}
		resp.Outputs = append(resp.Outputs, outputJSON{
			Name:  sess.et.Name(o),
			Times: timesJSON{TP: tm.TP, TD: tm.TD, TR: tm.TR, Ree: tm.Ree},
		})
	}
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// applyEdit dispatches one editSpec onto the EditTree.
func applyEdit(et *rcdelay.EditTree, spec editSpec) error {
	resolve := func(name string) (rcdelay.NodeID, error) {
		if name == "" {
			return 0, fmt.Errorf("missing node name")
		}
		id, ok := et.Lookup(name)
		if !ok {
			return 0, fmt.Errorf("unknown node %q", name)
		}
		return id, nil
	}
	num := func(what string, p *float64) (float64, error) {
		if p == nil {
			return 0, fmt.Errorf("missing %q", what)
		}
		return *p, nil
	}
	edgeKind := func(c float64) (rcdelay.EdgeKind, error) {
		switch spec.Kind {
		case "", "resistor":
			if spec.Kind == "" && c > 0 {
				return rcdelay.EdgeLine, nil
			}
			return rcdelay.EdgeResistor, nil
		case "line":
			return rcdelay.EdgeLine, nil
		}
		return 0, fmt.Errorf("unknown edge kind %q (want resistor or line)", spec.Kind)
	}

	switch spec.Op {
	case "setR":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		r, err := num("r", spec.R)
		if err != nil {
			return err
		}
		return et.SetResistance(id, r)
	case "setC":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		c, err := num("c", spec.C)
		if err != nil {
			return err
		}
		return et.SetCapacitance(id, c)
	case "addC":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		c, err := num("c", spec.C)
		if err != nil {
			return err
		}
		return et.AddCapacitance(id, c)
	case "setLine":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		r, err := num("r", spec.R)
		if err != nil {
			return err
		}
		c, err := num("c", spec.C)
		if err != nil {
			return err
		}
		return et.SetLine(id, r, c)
	case "scaleDriver":
		f, err := num("factor", spec.Factor)
		if err != nil {
			return err
		}
		return et.ScaleDriver(f)
	case "grow":
		parent, err := resolve(spec.Parent)
		if err != nil {
			return fmt.Errorf("parent: %w", err)
		}
		r, err := num("r", spec.R)
		if err != nil {
			return err
		}
		var c float64
		if spec.C != nil {
			c = *spec.C
		}
		kind, err := edgeKind(c)
		if err != nil {
			return err
		}
		_, err = et.Grow(parent, spec.Name, kind, r, c)
		return err
	case "graft":
		parent, err := resolve(spec.Parent)
		if err != nil {
			return fmt.Errorf("parent: %w", err)
		}
		var sub *rcdelay.Tree
		switch {
		case spec.Netlist != "" && spec.Expression != "":
			return fmt.Errorf("give either netlist or expression, not both")
		case spec.Netlist != "":
			sub, err = rcdelay.ParseNetlist(spec.Netlist)
		case spec.Expression != "":
			sub, _, err = rcdelay.ParseExpression(spec.Expression)
		default:
			return fmt.Errorf("graft names no network: set netlist or expression")
		}
		if err != nil {
			return err
		}
		r, err := num("r", spec.R)
		if err != nil {
			return err
		}
		var c float64
		if spec.C != nil {
			c = *spec.C
		}
		kind, err := edgeKind(c)
		if err != nil {
			return err
		}
		_, err = et.Graft(parent, spec.Name, kind, r, c, sub)
		return err
	case "prune":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		return et.Prune(id)
	case "addOutput":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		return et.AddOutput(id)
	case "removeOutput":
		id, err := resolve(spec.Node)
		if err != nil {
			return err
		}
		if !et.RemoveOutput(id) {
			return fmt.Errorf("node %q is not an output", spec.Node)
		}
		return nil
	}
	return fmt.Errorf("unknown op %q", spec.Op)
}

type boundsResponse struct {
	ID      string       `json:"id"`
	Gen     uint64       `json:"gen"`
	Outputs []outputJSON `json:"outputs"`
}

// handleSessionBounds answers the current bound tables of every designated
// output: GET /session/{id}/bounds?thresholds=0.5,0.9&times=100,200.
// Thresholds and times are optional comma-separated lists; without them the
// response carries the characteristic times only.
func (s *server) handleSessionBounds(w http.ResponseWriter, r *http.Request) {
	s.count("rcserve_session_requests_total", 1)
	s.count("rcserve_bounds_queries_total", 1)
	ent, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	defer s.sessions.release(ent)
	sess := ent.val
	q := r.URL.Query()
	thresholds, err := parseFloats(q.Get("thresholds"))
	if err != nil {
		httpError(w, r, fmt.Sprintf("thresholds: %v", err), floatsStatus(err))
		return
	}
	times, err := parseFloats(q.Get("times"))
	if err != nil {
		httpError(w, r, fmt.Sprintf("times: %v", err), floatsStatus(err))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := boundsResponse{ID: ent.id, Gen: sess.et.Gen()}
	outs := sess.et.Outputs()
	if name := q.Get("output"); name != "" {
		id, ok := sess.et.Lookup(name)
		if !ok {
			httpError(w, r, fmt.Sprintf("unknown node %q", name), http.StatusUnprocessableEntity)
			return
		}
		outs = []rcdelay.NodeID{id}
	}
	for _, o := range outs {
		tm, err := sess.et.Times(o)
		if err != nil {
			httpError(w, r, fmt.Sprintf("output %q: %v", sess.et.Name(o), err), http.StatusUnprocessableEntity)
			return
		}
		oj := outputJSON{
			Name:  sess.et.Name(o),
			Times: timesJSON{TP: tm.TP, TD: tm.TD, TR: tm.TR, Ree: tm.Ree},
		}
		if len(thresholds) > 0 || len(times) > 0 {
			bounds, err := rcdelay.NewBounds(tm)
			if err != nil {
				httpError(w, r, fmt.Sprintf("output %q: %v", sess.et.Name(o), err), http.StatusUnprocessableEntity)
				return
			}
			for _, row := range bounds.DelayTable(thresholds) {
				oj.Delay = append(oj.Delay, delayRowJSON{V: row.V, TMin: row.TMin, TMax: row.TMax})
			}
			for _, row := range bounds.VoltageTable(times) {
				oj.Voltage = append(oj.Voltage, voltageRowJSON{T: row.T, VMin: row.VMin, VMax: row.VMax})
			}
		}
		resp.Outputs = append(resp.Outputs, oj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// errNonFinite marks query numbers that parse but are NaN/Inf — legal
// float64 syntax, meaningless as thresholds or times, and rejected
// everywhere else (netlist.ParseValue) — so the handler can answer 422
// (understood but unprocessable) instead of 400.
var errNonFinite = errors.New("non-finite value")

// floatsStatus maps a parseFloats error to its HTTP status: 422 for
// non-finite values, 400 for syntax the parser could not read at all.
func floatsStatus(err error) int {
	if errors.Is(err, errNonFinite) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

func parseFloats(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			// Overflow is valid syntax whose value is ±Inf — the same
			// non-finite rejection as a literal Inf, not a 400.
			if errors.Is(err, strconv.ErrRange) {
				return nil, fmt.Errorf("%w %q", errNonFinite, strings.TrimSpace(p))
			}
			return nil, fmt.Errorf("bad number %q", p)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w %q", errNonFinite, strings.TrimSpace(p))
		}
		out = append(out, v)
	}
	return out, nil
}
