package main

import (
	"context"
	"fmt"
	"time"

	rcdelay "repro"
	"repro/internal/wal"
)

// Durability glue: every accepted design edit (POST /design/{id}/edit and
// accepted closure moves alike) is appended to a per-design write-ahead log
// under -data-dir via the ECO edit-list grammar, a snapshotter periodically
// folds the log into a materialized design deck, and recovery — at boot or
// lazily when a lookup misses an evicted-but-persisted id — replays
// snapshot + log tail through ParseDesign/NewDesignSession/Apply.

// openWAL mounts the durability store; main calls it when -data-dir is set.
// The store reports into the server's registry, so /metrics carries the
// wal_append/wal_fsync/wal_snapshot/wal_recovery histograms and the
// rotation/torn-tail/stale-file counters.
func (s *server) openWAL(dir string) error {
	st, err := wal.Open(dir)
	if err != nil {
		return err
	}
	st.Instrument(s.obs)
	s.wal = st
	return nil
}

// walCreate persists a brand-new design session. Called with the entry
// pinned; the session is young enough that no lock is needed for opts.
func (s *server) walCreate(ent *entry[*designSession], design *rcdelay.Design) error {
	if s.wal == nil {
		return nil
	}
	ds := ent.val
	l, err := s.wal.Create(ent.id, rcdelay.WriteDesign(design), wal.Meta{
		Threshold: ds.opts.Threshold,
		Required:  ds.opts.Required,
		K:         ds.opts.K,
	})
	if err != nil {
		return err
	}
	ds.mu.Lock()
	ds.wlog = l
	ds.mu.Unlock()
	return nil
}

// walAppend logs an accepted edit batch. Callers hold ds.mu, so append
// order is apply order; the append fsyncs before the client sees its
// response. When the log grows past -snapshot-every edits the session is
// snapshotted inline (one materialize + atomic rename) so replay length
// stays bounded.
func (s *server) walAppend(ctx context.Context, ds *designSession, edits []rcdelay.DesignEdit) error {
	if ds.wlog == nil || len(edits) == 0 {
		return nil
	}
	if err := ds.wlog.AppendCtx(ctx, edits); err != nil {
		return err
	}
	if s.snapEvery > 0 && ds.wlog.Pending() >= s.snapEvery {
		return s.walSnapshotLocked(ctx, ds)
	}
	return nil
}

// walSnapshotLocked rotates ds's log onto a fresh snapshot of the
// materialized design. Callers hold ds.mu.
func (s *server) walSnapshotLocked(ctx context.Context, ds *designSession) error {
	d, err := ds.sess.Design()
	if err != nil {
		return fmt.Errorf("materialize: %w", err)
	}
	return ds.wlog.RotateCtx(ctx, rcdelay.WriteDesign(d), ds.edits)
}

// snapshotAll snapshots every live design with pending WAL edits; the
// shutdown drain calls it so a clean restart recovers from snapshots alone.
func (s *server) snapshotAll() (int, error) {
	if s.wal == nil {
		return 0, nil
	}
	var n int
	var firstErr error
	for _, id := range s.designs.ids() {
		ent, ok := s.designs.get(id)
		if !ok {
			continue
		}
		ds := ent.val
		ds.mu.Lock()
		if ds.wlog != nil && ds.wlog.Pending() > 0 {
			if err := s.walSnapshotLocked(context.Background(), ds); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("design %s: %w", id, err)
				}
			} else {
				n++
			}
		}
		ds.mu.Unlock()
		s.designs.release(ent)
	}
	return n, firstErr
}

// snapshotter periodically folds grown logs into fresh snapshots so the
// replay a crash would pay stays short even for designs edited below the
// -snapshot-every inline threshold.
func (s *server) snapshotter(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n, err := s.snapshotAll(); err != nil {
				s.logger.Error("rcserve: periodic snapshot", "err", err)
			} else if n > 0 {
				s.logger.Info("rcserve: periodic snapshots written", "designs", n)
			}
		case <-stop:
			return
		}
	}
}

// recoverDesigns replays every persisted design at boot, inserting each
// under its original id. It returns how many sessions were rebuilt.
func (s *server) recoverDesigns(ctx context.Context) (int, error) {
	if s.wal == nil {
		return 0, nil
	}
	ids, err := s.wal.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		ent, ok := s.rebuildDesign(ctx, id)
		if !ok {
			return n, fmt.Errorf("design %s: replay failed", id)
		}
		s.designs.release(ent)
		n++
	}
	return n, nil
}

// recoverDesign is the lazy path: a lookup missed the in-memory store, but
// the id may still be durable (TTL/LRU eviction dropped the session, not
// the WAL). Rebuilds and re-inserts it pinned.
func (s *server) recoverDesign(ctx context.Context, id string) (*entry[*designSession], bool) {
	if s.wal == nil || !s.wal.Exists(id) {
		return nil, false
	}
	// One rebuild at a time: concurrent misses for the same id would race
	// to replay the same log and double-insert.
	s.recovering.Lock()
	defer s.recovering.Unlock()
	if ent, ok := s.designs.get(id); ok {
		return ent, true // another request already rebuilt it
	}
	return s.rebuildDesign(ctx, id)
}

// rebuildDesign replays one persisted design — newest snapshot through
// ParseDesign/NewDesignSession, then the log tail through Apply — and
// inserts the session under its original id, pinned.
func (s *server) rebuildDesign(ctx context.Context, id string) (*entry[*designSession], bool) {
	rec, l, err := s.wal.RecoverCtx(ctx, id)
	if err != nil {
		s.logger.Error("rcserve: design recovery", "id", id, "err", err)
		return nil, false
	}
	design, err := rcdelay.ParseDesign(rec.Deck)
	if err != nil {
		l.Close()
		s.logger.Error("rcserve: design recovery: snapshot parse", "id", id, "err", err)
		return nil, false
	}
	opts := designRequest{Threshold: rec.Meta.Threshold, Required: rec.Meta.Required, K: rec.Meta.K}
	sess, err := rcdelay.NewDesignSession(ctx, design, rcdelay.DesignOptions{
		Threshold: opts.Threshold,
		Required:  opts.Required,
		K:         opts.K,
		Obs:       s.obs,
	})
	if err != nil {
		l.Close()
		s.logger.Error("rcserve: design recovery: session mount", "id", id, "err", err)
		return nil, false
	}
	if len(rec.Edits) > 0 {
		if _, err := sess.ApplyCtx(ctx, rec.Edits); err != nil {
			l.Close()
			s.logger.Error("rcserve: design recovery: log replay", "id", id, "err", err)
			return nil, false
		}
	}
	ds := &designSession{sess: sess, edits: rec.Meta.Edits + len(rec.Edits), wlog: l, opts: opts}
	ent, ok := s.designs.insert(id, ds)
	if !ok {
		l.Close()
		return s.designs.get(id) // raced another recovery; use the winner
	}
	if rec.TornBytes > 0 {
		s.logger.Warn("rcserve: design recovery dropped torn log tail",
			"id", id, "bytes", rec.TornBytes)
	}
	s.count("rcserve_designs_recovered_total", 1)
	return ent, true
}
