package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestSSEWriterConcurrentEvents is the regression test for the unsynchronized
// sseWriter: the closure engine's Progress callback fires from worker
// goroutines while the handler goroutine writes its own frames, and the old
// writer let them interleave mid-line (and race on the ResponseWriter). Under
// -race the unguarded version fails here; the frame check below catches the
// interleaving even without the detector.
func TestSSEWriterConcurrentEvents(t *testing.T) {
	rec := httptest.NewRecorder()
	sse := &sseWriter{w: rec, f: rec}

	const writers, events = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				sse.event("move", map[string]int{"writer": w, "seq": i})
			}
		}(w)
	}
	wg.Wait()

	frames := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n\n"), "\n\n")
	if len(frames) != writers*events {
		t.Fatalf("got %d frames, want %d", len(frames), writers*events)
	}
	for i, frame := range frames {
		lines := strings.Split(frame, "\n")
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: move") ||
			!strings.HasPrefix(lines[1], `data: {"seq":`) {
			t.Fatalf("frame %d interleaved or malformed:\n%s", i, frame)
		}
	}
}

// TestBoundsRejectsNonFinite: NaN/Inf parse as float64 but are meaningless
// as thresholds or times; the handler must answer 422, not accept them (the
// old parseFloats let NaN through into the bound tables) and not 400 (the
// number was syntactically fine).
func TestBoundsRejectsNonFinite(t *testing.T) {
	_, ts := testServer(t)
	id := openSession(t, ts, fig7Deck)

	for _, tc := range []struct {
		query string
		want  int
	}{
		{"thresholds=NaN", http.StatusUnprocessableEntity},
		{"thresholds=0.5,Inf", http.StatusUnprocessableEntity},
		{"times=-Inf", http.StatusUnprocessableEntity},
		{"times=1e309", http.StatusUnprocessableEntity}, // overflows to +Inf
		{"thresholds=0.5&times=100", http.StatusOK},
		{"thresholds=zorch", http.StatusBadRequest}, // not a number at all
	} {
		status, body := doJSON(t, http.MethodGet, ts.URL+"/session/"+id+"/bounds?"+tc.query, "")
		if status != tc.want {
			t.Errorf("bounds?%s = %d, want %d: %v", tc.query, status, tc.want, body)
		}
	}
}
