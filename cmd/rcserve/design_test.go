package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rcdelay "repro"
)

const chipDeck = `
.design chip
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.stage drv o bus 25
.require bus far 700
.end
`

func designServer() *server {
	return newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: 2}))
}

func postDesign(t *testing.T, srv *server, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/design", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON (%d): %v\n%s", w.Code, err, w.Body.String())
	}
	return w.Code, decoded
}

func TestDesignCreateAndSlack(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "k": 2})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	if created["nets"].(float64) != 2 || created["levels"].(float64) != 2 {
		t.Errorf("summary = %v", created)
	}
	if created["design"] != "chip" || created["endpoints"].(float64) != 1 {
		t.Errorf("summary = %v", created)
	}
	if _, ok := created["wns"]; !ok {
		t.Errorf("constrained design missing wns: %v", created)
	}
	id := created["id"].(string)

	get := func(path string) (int, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		var decoded map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("bad JSON (%d): %v\n%s", w.Code, err, w.Body.String())
		}
		return w.Code, decoded
	}
	code, info := get("/design/" + id)
	if code != http.StatusOK || info["id"] != id {
		t.Fatalf("GET /design/{id} = %d: %v", code, info)
	}
	code, slack := get("/design/" + id + "/slack")
	if code != http.StatusOK {
		t.Fatalf("GET slack = %d: %v", code, slack)
	}
	report := slack["report"].(map[string]any)
	endpoints := report["endpoints"].([]any)
	if len(endpoints) != 1 {
		t.Fatalf("endpoints = %v", endpoints)
	}
	ep := endpoints[0].(map[string]any)
	if ep["net"] != "bus" || ep["output"] != "far" {
		t.Errorf("endpoint = %v", ep)
	}
	if _, ok := ep["arrival"].(map[string]any)["max"]; !ok {
		t.Errorf("endpoint missing arrival interval: %v", ep)
	}
	if paths := report["paths"].([]any); len(paths) != 1 {
		t.Errorf("paths = %v", paths)
	} else if hops := paths[0].(map[string]any)["hops"].([]any); len(hops) != 2 {
		t.Errorf("hops = %v", hops)
	}

	// Repeated POST of the same design hits the shared engine cache.
	before := srv.engine.CacheStats().Hits
	if code, _ := postDesign(t, srv, string(body)); code != http.StatusCreated {
		t.Fatalf("second POST = %d", code)
	}
	if srv.engine.CacheStats().Hits <= before {
		t.Error("second analysis missed the shared cache")
	}

	// DELETE then 404.
	req := httptest.NewRequest(http.MethodDelete, "/design/"+id, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE = %d", w.Code)
	}
	if code, _ := get("/design/" + id + "/slack"); code != http.StatusNotFound {
		t.Errorf("slack after delete = %d", code)
	}
}

func TestDesignCreateErrors(t *testing.T) {
	srv := designServer()
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", "{}", http.StatusUnprocessableEntity},
		{"bad json", "{", http.StatusBadRequest},
		{"unknown field", `{"designs": "x"}`, http.StatusBadRequest},
		{"bad deck", `{"design": "garbage"}`, http.StatusUnprocessableEntity},
		{"cycle", `{"design": ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o a 1\n"}`, http.StatusUnprocessableEntity},
		{"bad threshold", fmt.Sprintf(`{"design": %q, "threshold": 2}`, ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postDesign(t, srv, tc.body)
			if code != tc.want {
				t.Errorf("code = %d, want %d (%v)", code, tc.want, body)
			}
			if _, ok := body["error"]; !ok {
				t.Errorf("no error field: %v", body)
			}
		})
	}
	if code, _ := postDesign(t, srv, `{"design": ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n"}`); code != http.StatusCreated {
		t.Errorf("unconstrained design rejected: %d", code)
	}
}

func TestDesignStoreTTLAndEviction(t *testing.T) {
	st := newDesignStore(time.Minute, 2)
	clock := time.Unix(0, 0)
	st.now = func() time.Time { return clock }
	a := st.create(&rcdelay.DesignReport{})
	clock = clock.Add(time.Second)
	b := st.create(&rcdelay.DesignReport{})
	clock = clock.Add(time.Second)
	// Third create evicts the LRU entry (a).
	c := st.create(&rcdelay.DesignReport{})
	if _, ok := st.get(a.id); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := st.get(b.id); !ok {
		t.Error("fresh entry evicted")
	}
	// Expiry via TTL.
	clock = clock.Add(2 * time.Minute)
	if _, ok := st.get(c.id); ok {
		t.Error("expired entry served")
	}
	st.sweep()
	stats := st.stats()
	if stats["active"].(int) != 0 {
		t.Errorf("stats = %v", stats)
	}
	if !st.delete(st.create(&rcdelay.DesignReport{}).id) {
		t.Error("delete failed")
	}
	if st.delete("ghost") {
		t.Error("deleted ghost")
	}
}

func TestHealthzIncludesDesigns(t *testing.T) {
	srv := designServer()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["designs"]; !ok {
		t.Errorf("healthz missing designs: %v", decoded)
	}
	if reqs := decoded["requests"].(map[string]any); reqs["design"] == nil {
		t.Errorf("healthz missing design counter: %v", reqs)
	}
}
