package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rcdelay "repro"
)

const chipDeck = `
.design chip
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.stage drv o bus 25
.require bus far 700
.end
`

func designServer() *server {
	srv := newServer(rcdelay.NewBatchEngine(rcdelay.BatchOptions{Workers: 2}))
	srv.logger = slog.New(slog.DiscardHandler) // keep request lines out of test output
	return srv
}

func postDesign(t *testing.T, srv *server, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/design", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON (%d): %v\n%s", w.Code, err, w.Body.String())
	}
	return w.Code, decoded
}

func TestDesignCreateAndSlack(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "k": 2})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	if created["nets"].(float64) != 2 || created["levels"].(float64) != 2 {
		t.Errorf("summary = %v", created)
	}
	if created["design"] != "chip" || created["endpoints"].(float64) != 1 {
		t.Errorf("summary = %v", created)
	}
	if _, ok := created["wns"]; !ok {
		t.Errorf("constrained design missing wns: %v", created)
	}
	id := created["id"].(string)

	get := func(path string) (int, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		var decoded map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("bad JSON (%d): %v\n%s", w.Code, err, w.Body.String())
		}
		return w.Code, decoded
	}
	code, info := get("/design/" + id)
	if code != http.StatusOK || info["id"] != id {
		t.Fatalf("GET /design/{id} = %d: %v", code, info)
	}
	code, slack := get("/design/" + id + "/slack")
	if code != http.StatusOK {
		t.Fatalf("GET slack = %d: %v", code, slack)
	}
	report := slack["report"].(map[string]any)
	endpoints := report["endpoints"].([]any)
	if len(endpoints) != 1 {
		t.Fatalf("endpoints = %v", endpoints)
	}
	ep := endpoints[0].(map[string]any)
	if ep["net"] != "bus" || ep["output"] != "far" {
		t.Errorf("endpoint = %v", ep)
	}
	if _, ok := ep["arrival"].(map[string]any)["max"]; !ok {
		t.Errorf("endpoint missing arrival interval: %v", ep)
	}
	if paths := report["paths"].([]any); len(paths) != 1 {
		t.Errorf("paths = %v", paths)
	} else if hops := paths[0].(map[string]any)["hops"].([]any); len(hops) != 2 {
		t.Errorf("hops = %v", hops)
	}

	// Repeated POST of the same design re-analyzes on the arena core:
	// identical numbers, and the shared tree-batch engine is never consulted.
	before := srv.engine.CacheStats()
	code, second := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("second POST = %d", code)
	}
	if second["wns"] != created["wns"] {
		t.Errorf("second analysis wns %v != first %v", second["wns"], created["wns"])
	}
	if srv.engine.CacheStats() != before {
		t.Error("design analysis touched the tree-batch engine")
	}

	// DELETE then 404.
	req := httptest.NewRequest(http.MethodDelete, "/design/"+id, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE = %d", w.Code)
	}
	if code, _ := get("/design/" + id + "/slack"); code != http.StatusNotFound {
		t.Errorf("slack after delete = %d", code)
	}
}

func TestDesignCreateErrors(t *testing.T) {
	srv := designServer()
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", "{}", http.StatusUnprocessableEntity},
		{"bad json", "{", http.StatusBadRequest},
		{"unknown field", `{"designs": "x"}`, http.StatusBadRequest},
		{"bad deck", `{"design": "garbage"}`, http.StatusUnprocessableEntity},
		{"cycle", `{"design": ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o a 1\n"}`, http.StatusUnprocessableEntity},
		{"bad threshold", fmt.Sprintf(`{"design": %q, "threshold": 2}`, ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postDesign(t, srv, tc.body)
			if code != tc.want {
				t.Errorf("code = %d, want %d (%v)", code, tc.want, body)
			}
			if _, ok := body["error"]; !ok {
				t.Errorf("no error field: %v", body)
			}
		})
	}
	if code, _ := postDesign(t, srv, `{"design": ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n"}`); code != http.StatusCreated {
		t.Errorf("unconstrained design rejected: %d", code)
	}
}

func TestDesignStoreTTLAndEviction(t *testing.T) {
	st := newDesignStore(storeConfig{ttl: time.Minute, max: 2})
	clock := time.Unix(0, 0)
	st.now = func() time.Time { return clock }
	a := st.create(&designSession{})
	st.release(a)
	clock = clock.Add(time.Second)
	b := st.create(&designSession{})
	st.release(b)
	clock = clock.Add(time.Second)
	// Third create evicts the LRU entry (a).
	c := st.create(&designSession{})
	st.release(c)
	if _, ok := st.get(a.id); ok {
		t.Error("LRU entry survived eviction")
	}
	if ent, ok := st.get(b.id); !ok {
		t.Error("fresh entry evicted")
	} else {
		st.release(ent)
	}
	// Expiry via TTL.
	clock = clock.Add(2 * time.Minute)
	if _, ok := st.get(c.id); ok {
		t.Error("expired entry served")
	}
	st.sweep()
	stats := st.stats()
	if stats["active"].(int) != 0 {
		t.Errorf("stats = %v", stats)
	}
	d := st.create(&designSession{})
	st.release(d)
	if !st.delete(d.id) {
		t.Error("delete failed")
	}
	if st.delete("ghost") {
		t.Error("deleted ghost")
	}
}

func TestHealthzIncludesDesigns(t *testing.T) {
	srv := designServer()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["designs"]; !ok {
		t.Errorf("healthz missing designs: %v", decoded)
	}
	if reqs := decoded["requests"].(map[string]any); reqs["design"] == nil {
		t.Errorf("healthz missing design counter: %v", reqs)
	}
}

func postEdits(t *testing.T, srv *server, id, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/edit", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON (%d): %v\n%s", w.Code, err, w.Body.String())
	}
	return w.Code, decoded
}

func TestDesignEdit(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7, "k": 2})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)
	wnsBefore := created["wns"].(float64)

	// Slowing the driver must reach the downstream endpoint through the
	// dirty cone and shrink the reported WNS.
	code, resp := postEdits(t, srv, id, `{"edits": [{"op": "setR", "net": "drv", "node": "o", "r": 800}]}`)
	if code != http.StatusOK {
		t.Fatalf("edit = %d: %v", code, resp)
	}
	if resp["applied"].(float64) != 1 || resp["gen"].(float64) != 1 {
		t.Errorf("edit response = %v", resp)
	}
	if resp["dirtyNets"].(float64) != 2 {
		t.Errorf("dirtyNets = %v, want 2 (drv + bus)", resp["dirtyNets"])
	}
	if wnsAfter := resp["wns"].(float64); wnsAfter >= wnsBefore {
		t.Errorf("wns %g not reduced from %g after slowdown", wnsAfter, wnsBefore)
	}

	// The slack view reflects the edit and carries the new generation.
	req := httptest.NewRequest(http.MethodGet, "/design/"+id+"/slack", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var slack map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &slack); err != nil {
		t.Fatal(err)
	}
	if slack["gen"].(float64) != 1 {
		t.Errorf("slack gen = %v", slack["gen"])
	}
	report := slack["report"].(map[string]any)
	if report["wns"].(float64) != resp["wns"].(float64) {
		t.Errorf("slack wns %v vs edit wns %v", report["wns"], resp["wns"])
	}

	// A failing edit reports the applied prefix and a 422.
	code, resp = postEdits(t, srv, id,
		`{"edits": [{"op": "setC", "net": "bus", "node": "far", "c": 0.02}, {"op": "setR", "net": "ghost", "node": "o", "r": 1}]}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("partial edit = %d: %v", code, resp)
	}
	if resp["applied"].(float64) != 1 || resp["error"] == nil {
		t.Errorf("partial edit response = %v", resp)
	}

	// Error shapes: no edits, malformed JSON, unknown design.
	if code, _ := postEdits(t, srv, id, `{"edits": []}`); code != http.StatusUnprocessableEntity {
		t.Errorf("empty edits = %d", code)
	}
	if code, _ := postEdits(t, srv, id, `{`); code != http.StatusBadRequest {
		t.Errorf("bad json = %d", code)
	}
	if code, _ := postEdits(t, srv, "nope", `{"edits": [{"op": "setR", "net": "drv", "node": "o", "r": 1}]}`); code != http.StatusNotFound {
		t.Errorf("unknown design = %d", code)
	}

	// The summary view tallies the applied edits.
	req = httptest.NewRequest(http.MethodGet, "/design/"+id, nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var info map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["edits"].(float64) != 2 || info["gen"].(float64) != 2 {
		t.Errorf("summary after edits = %v", info)
	}
}

// TestDesignEditConcurrent hammers one design session with parallel edit and
// slack requests. Every slack response must be an internally consistent
// snapshot: its WNS/TNS must re-derive exactly from its own endpoint table,
// whatever interleaving produced it. Run under -race this also proves the
// per-session locking (a dedicated CI step does exactly that).
func TestDesignEditConcurrent(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)

	const editors, readers, iters = 4, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, editors+readers)
	for e := 0; e < editors; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := 300 + float64((e*iters+i)%17)*25
				body := fmt.Sprintf(`{"edits": [{"op": "setR", "net": "drv", "node": "o", "r": %g}]}`, r)
				req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/edit", strings.NewReader(body))
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("edit = %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}(e)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodGet, "/design/"+id+"/slack", nil)
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("slack = %d: %s", w.Code, w.Body.String())
					return
				}
				var resp struct {
					Gen    uint64 `json:"gen"`
					Report struct {
						WNS       *float64 `json:"wns"`
						TNS       float64  `json:"tns"`
						Endpoints []struct {
							Slack *float64 `json:"slack"`
						} `json:"endpoints"`
					} `json:"report"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("slack json: %v", err)
					return
				}
				wns, tns := 0.0, 0.0
				first := true
				for _, ep := range resp.Report.Endpoints {
					if ep.Slack == nil {
						continue
					}
					if first || *ep.Slack < wns {
						wns, first = *ep.Slack, false
					}
					if *ep.Slack < 0 {
						tns += *ep.Slack
					}
				}
				if !first {
					if resp.Report.WNS == nil || *resp.Report.WNS != wns {
						errs <- fmt.Errorf("gen %d: wns %v inconsistent with endpoint table min %g", resp.Gen, resp.Report.WNS, wns)
						return
					}
					if resp.Report.TNS != tns {
						errs <- fmt.Errorf("gen %d: tns %g inconsistent with endpoint table sum %g", resp.Gen, resp.Report.TNS, tns)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the session must still agree with itself.
	req := httptest.NewRequest(http.MethodGet, "/design/"+id, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var info map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["edits"].(float64) != editors*iters {
		t.Errorf("edits applied = %v, want %d", info["edits"], editors*iters)
	}
}

// failingDeck is a chip whose sink endpoint misses its required time — the
// closure endpoint's natural fixture.
const failingDeck = `
.design fail
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
R3 n1 stub 90
C3 stub 0 0.02
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus 25
.stage bus far sink 40
.require sink o 150
.end
`

func TestDesignClose(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": failingDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	if created["wns"].(float64) >= 0 {
		t.Fatalf("fixture passes timing: %v", created)
	}
	id := created["id"].(string)

	req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/close",
		strings.NewReader(`{"maxMoves": 16}`))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST close = %d: %s", w.Code, w.Body.String())
	}
	var closed struct {
		ID     string `json:"id"`
		Gen    uint64 `json:"gen"`
		Report struct {
			Closed     bool    `json:"closed"`
			Reason     string  `json:"reason"`
			FinalWNS   float64 `json:"finalWns"`
			Cost       float64 `json:"cost"`
			EditScript string  `json:"editScript"`
			Trajectory []struct {
				Kind string `json:"kind"`
			} `json:"trajectory"`
			Pareto []struct {
				Cost float64 `json:"cost"`
				WNS  float64 `json:"wns"`
			} `json:"pareto"`
		} `json:"report"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &closed); err != nil {
		t.Fatalf("bad close JSON: %v\n%s", err, w.Body.String())
	}
	if closed.ID != id || closed.Gen == 0 {
		t.Errorf("close envelope = %+v", closed)
	}
	if !closed.Report.Closed || closed.Report.FinalWNS < 0 {
		t.Fatalf("engine did not close: %s", w.Body.String())
	}
	if len(closed.Report.Trajectory) == 0 || len(closed.Report.Pareto) < 2 || closed.Report.EditScript == "" {
		t.Errorf("report missing pieces: %s", w.Body.String())
	}

	// The accepted edits stayed applied: the session now reports WNS >= 0
	// at a bumped generation, and the edit counter absorbed them.
	req = httptest.NewRequest(http.MethodGet, "/design/"+id, nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var info map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["wns"].(float64) < 0 {
		t.Errorf("session still failing after close: %v", info)
	}
	if info["gen"].(float64) != float64(closed.Gen) || info["edits"].(float64) == 0 {
		t.Errorf("session info = %v", info)
	}
	if got := srv.obs.Counter("rcserve_close_requests_total").Value(); got != 1 {
		t.Errorf("closeReqs = %d", got)
	}
	if got := srv.obs.Counter("rcserve_closure_moves_total").Value(); got != int64(len(closed.Report.Trajectory)) {
		t.Errorf("closureMoves = %d, want %d", got, len(closed.Report.Trajectory))
	}

	// An empty body is fine (defaults); an already-closed design answers
	// with zero moves.
	req = httptest.NewRequest(http.MethodPost, "/design/"+id+"/close", strings.NewReader(""))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("re-close = %d: %s", w.Code, w.Body.String())
	}
	closed.Report.Trajectory = nil // the decoder leaves absent fields alone
	if err := json.Unmarshal(w.Body.Bytes(), &closed); err != nil {
		t.Fatal(err)
	}
	if !closed.Report.Closed || closed.Report.Reason != "no failing endpoints" || len(closed.Report.Trajectory) != 0 {
		t.Errorf("re-close report = %s", w.Body.String())
	}

	// Unknown design 404s; malformed body 400s.
	req = httptest.NewRequest(http.MethodPost, "/design/nope/close", strings.NewReader("{}"))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("close unknown = %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/design/"+id+"/close", strings.NewReader("{bad"))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("close malformed = %d", w.Code)
	}
}

func TestDesignCorners(t *testing.T) {
	srv := designServer()
	body, _ := json.Marshal(map[string]any{"design": chipDeck, "threshold": 0.7})
	code, created := postDesign(t, srv, string(body))
	if code != http.StatusCreated {
		t.Fatalf("POST /design = %d: %v", code, created)
	}
	id := created["id"].(string)
	typWNS := created["wns"].(float64)

	post := func(body string) (int, string) {
		req := httptest.NewRequest(http.MethodPost, "/design/"+id+"/corners", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}
	code, raw := post(`{"samples": 16, "seed": 3, "rSigma": 0.05, "cSigma": 0.05}`)
	if code != http.StatusOK {
		t.Fatalf("POST corners = %d: %s", code, raw)
	}
	var resp struct {
		ID     string `json:"id"`
		Gen    uint64 `json:"gen"`
		Report struct {
			Samples     int    `json:"samples"`
			WorstCorner string `json:"worstCorner"`
			Corners     []struct {
				Corner struct {
					Name string `json:"name"`
				} `json:"corner"`
				NominalWNS float64 `json:"nominalWns"`
				Endpoints  []struct {
					Net         string  `json:"net"`
					Criticality float64 `json:"criticality"`
					Slack       *struct {
						Mean float64 `json:"mean"`
						Std  float64 `json:"std"`
					} `json:"slack"`
				} `json:"endpoints"`
			} `json:"corners"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(raw), &resp); err != nil {
		t.Fatalf("bad corners JSON: %v\n%s", err, raw)
	}
	if resp.ID != id || resp.Report.Samples != 16 || len(resp.Report.Corners) != 3 {
		t.Fatalf("corners envelope = %s", raw)
	}
	if resp.Report.WorstCorner != "slow" {
		t.Errorf("worst corner = %q, want slow", resp.Report.WorstCorner)
	}
	// The typ corner's nominal WNS is the session's own analysis: same
	// threshold, same required times, no derating.
	var typ *float64
	for i := range resp.Report.Corners {
		if resp.Report.Corners[i].Corner.Name == "typ" {
			typ = &resp.Report.Corners[i].NominalWNS
		}
	}
	if typ == nil || *typ != typWNS {
		t.Errorf("typ nominal WNS = %v, session reports %g", typ, typWNS)
	}

	// Same request, same answer: the sweep is deterministic in the seed.
	if _, again := post(`{"samples": 16, "seed": 3, "rSigma": 0.05, "cSigma": 0.05}`); again != raw {
		t.Error("identical corners requests disagreed")
	}

	// An empty body is a pure corner sweep: zero spread in every endpoint.
	code, raw = post("")
	if code != http.StatusOK {
		t.Fatalf("POST corners (empty) = %d: %s", code, raw)
	}
	var pure map[string]any
	if err := json.Unmarshal([]byte(raw), &pure); err != nil {
		t.Fatal(err)
	}
	for _, c := range pure["report"].(map[string]any)["corners"].([]any) {
		for _, e := range c.(map[string]any)["endpoints"].([]any) {
			ep := e.(map[string]any)
			if s, ok := ep["slack"].(map[string]any); ok && s["std"].(float64) != 0 {
				t.Errorf("pure corner sweep has nonzero slack spread: %v", ep)
			}
		}
	}

	if got := srv.obs.Counter("rcserve_corner_requests_total").Value(); got != 3 {
		t.Errorf("cornerReqs = %d, want 3", got)
	}

	// Bad requests: invalid knobs are 422, malformed bodies 400, unknown ids 404.
	if code, msg := post(`{"samples": -4}`); code != http.StatusUnprocessableEntity {
		t.Errorf("negative samples = %d: %s", code, msg)
	}
	if code, msg := post(`{"corners": [{"name": "zero", "rScale": 0, "cScale": 1}]}`); code != http.StatusUnprocessableEntity {
		t.Errorf("zero corner scale = %d: %s", code, msg)
	}
	if code, msg := post(`{"bogus": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d: %s", code, msg)
	}
	req := httptest.NewRequest(http.MethodPost, "/design/nope/corners", strings.NewReader(""))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown id = %d", w.Code)
	}
}
