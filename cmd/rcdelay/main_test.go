package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.5 ,0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 0.9 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats("1,zap"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseFloats(" , "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestParseCertify(t *testing.T) {
	v, d, err := parseCertify("0.7:500")
	if err != nil || math.Abs(v-0.7) > 1e-12 || d != 500 {
		t.Errorf("parseCertify = %g, %g, %v", v, d, err)
	}
	for _, bad := range []string{"", "0.7", "x:500", "0.7:y"} {
		if _, _, err := parseCertify(bad); err == nil {
			t.Errorf("parseCertify(%q) accepted", bad)
		}
	}
}

func TestLoadTree(t *testing.T) {
	if _, err := loadTree("", "", false); err == nil {
		t.Error("no source accepted")
	}
	tree, err := loadTree("", "", true)
	if err != nil || tree == nil {
		t.Fatalf("demo: %v", err)
	}
	tree, err = loadTree("", "URC 10 2", false)
	if err != nil || tree == nil {
		t.Fatalf("expr: %v", err)
	}
	if _, err := loadTree("", "URC", false); err == nil {
		t.Error("bad expr accepted")
	}
	if _, err := loadTree("/nonexistent/path.ckt", "", false); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ckt")
	if err := os.WriteFile(path, []byte(".input in\nR1 in a 5\nC1 a 0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tree, err = loadTree(path, "", false)
	if err != nil || tree.NumNodes() != 2 {
		t.Fatalf("netlist: %v (%v)", err, tree)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", false, "0.5", "10", ""); err == nil {
		t.Error("run without source succeeded")
	}
	if err := run("", "URC 10 2", false, "bogus", "10", ""); err == nil {
		t.Error("bad thresholds accepted")
	}
	if err := run("", "URC 10 2", false, "0.5", "bogus", ""); err == nil {
		t.Error("bad times accepted")
	}
	if err := run("", "URC 10 2", false, "0.5", "10", "broken"); err == nil {
		t.Error("bad certify accepted")
	}
}
