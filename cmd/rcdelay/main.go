// Command rcdelay computes Penfield–Rubinstein delay and voltage bounds for
// an RC tree given as a netlist file or as the paper's algebraic notation,
// printing Figure 10-style tables for every output.
//
// Usage:
//
//	rcdelay -demo
//	rcdelay -expr '(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9'
//	rcdelay -netlist net.ckt -thresholds 0.1,0.5,0.9 -times 20,100,500
//	rcdelay -netlist net.ckt -certify 0.7:500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	rcdelay "repro"
)

const demoExpr = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

func main() {
	var (
		netlistPath = flag.String("netlist", "", "path to a SPICE-like RC tree deck")
		expr        = flag.String("expr", "", "network in the paper's URC/WB/WC notation")
		demo        = flag.Bool("demo", false, "run the paper's Figure 7/10 example network")
		thresholds  = flag.String("thresholds", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9", "comma-separated voltage thresholds for the delay table")
		times       = flag.String("times", "20,40,60,80,100,200,300,400,500,1000,2000", "comma-separated times for the voltage table")
		certify     = flag.String("certify", "", "certify 'threshold:deadline', e.g. 0.7:500")
	)
	flag.Parse()
	if err := run(*netlistPath, *expr, *demo, *thresholds, *times, *certify); err != nil {
		fmt.Fprintln(os.Stderr, "rcdelay:", err)
		os.Exit(1)
	}
}

func run(netlistPath, expr string, demo bool, thresholds, times, certify string) error {
	tree, err := loadTree(netlistPath, expr, demo)
	if err != nil {
		return err
	}
	vs, err := parseFloats(thresholds)
	if err != nil {
		return fmt.Errorf("bad -thresholds: %w", err)
	}
	ts, err := parseFloats(times)
	if err != nil {
		return fmt.Errorf("bad -times: %w", err)
	}

	results, err := rcdelay.Analyze(tree)
	if err != nil {
		return err
	}
	for _, res := range results {
		tm := res.Times
		fmt.Printf("output %s: TP=%.6g TD=%.6g TR=%.6g Ree=%.6g\n",
			res.Name, tm.TP, tm.TD, tm.TR, tm.Ree)
		fmt.Printf("%10s %12s %12s\n", "V", "TMIN", "TMAX")
		for _, row := range res.Bounds.DelayTable(vs) {
			fmt.Printf("%10.3g %12.5g %12.5g\n", row.V, row.TMin, row.TMax)
		}
		fmt.Printf("%10s %12s %12s\n", "T", "VMIN", "VMAX")
		for _, row := range res.Bounds.VoltageTable(ts) {
			fmt.Printf("%10.4g %12.5f %12.5f\n", row.T, row.VMin, row.VMax)
		}
		if certify != "" {
			v, deadline, err := parseCertify(certify)
			if err != nil {
				return err
			}
			fmt.Printf("certify v=%g by t=%g: %s\n", v, deadline, res.Bounds.OK(v, deadline))
		}
		fmt.Println()
	}
	return nil
}

func loadTree(netlistPath, expr string, demo bool) (*rcdelay.Tree, error) {
	switch {
	case demo:
		tree, _, err := rcdelay.ParseExpression(demoExpr)
		return tree, err
	case expr != "":
		tree, _, err := rcdelay.ParseExpression(expr)
		return tree, err
	case netlistPath != "":
		data, err := os.ReadFile(netlistPath)
		if err != nil {
			return nil, err
		}
		return rcdelay.ParseNetlist(string(data))
	}
	return nil, fmt.Errorf("one of -demo, -expr or -netlist is required")
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return out, nil
}

func parseCertify(s string) (v, deadline float64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-certify wants 'threshold:deadline', got %q", s)
	}
	if v, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, fmt.Errorf("bad threshold in -certify: %w", err)
	}
	if deadline, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, fmt.Errorf("bad deadline in -certify: %w", err)
	}
	return v, deadline, nil
}
