// Command statime runs bound-based static timing analysis over netlist
// files and emits the report as text, CSV or JSON — the downstream tool a
// design flow would actually call.
//
// Usage:
//
//	statime -threshold 0.7 -deadline 500 net1.ckt net2.ckt
//	statime -threshold 0.5 -deadline 2n -format json bus.ckt
//	statime -design -threshold 0.7 -deadline 700 -k 3 chip.ckt
//	statime -eco fix.eco -threshold 0.7 chip.ckt
//	statime -close -budget 16 -threshold 0.7 chip.ckt
//	statime -close -progress -threshold 0.7 chip.ckt
//	statime -corners -samples 128 -rsigma 0.05 -csigma 0.05 -threshold 0.7 chip.ckt
//
// The default mode times each file as an independent net against the
// deadline. With -design, the single input file is a multi-net design deck
// (.net/.endnet sections glued by .stage cards): the chip-level engine
// levelizes the stage DAG, propagates interval arrival times, and reports
// per-endpoint slack plus the -k most critical paths; -deadline then serves
// as the default required time for endpoints without a .require card (and
// may be omitted).
//
// With -eco FILE (which implies -design), the design is analyzed once, the
// ECO edit list in FILE is replayed through an incremental re-timing
// session — only the edited nets and their downstream fanout cones are
// re-timed — and the report becomes a slack-delta table: every endpoint
// before vs after the edits, plus the dirty-cone statistics. Edit lines look
// like "setR drv.o 800", "addC bus.far 2p", "scaleDriver drv 0.5"; see the
// timing package documentation for the full grammar.
//
// With -close (which also implies -design), the automated timing-closure
// engine repairs the design instead of just reporting on it: failing
// endpoints are mined for candidate moves (driver sizing, wire rebuffering,
// load trimming, stub pruning), candidates are evaluated concurrently as
// what-if trials, and the best slack-gain-per-cost move is accepted until
// WNS >= 0, the -budget move count, or the -maxcost ceiling is hit. The
// report carries the accepted ECO edit list (replayable via -eco), the
// closure trajectory, and the Pareto frontier of (cost, WNS) states
// visited. Adding -progress prints one line per accepted move to stderr as
// the engine lands it, so a long repair is watchable while stdout stays a
// clean report.
//
// With -corners (which also implies -design), the multi-corner variation
// engine sweeps the design across the slow/typ/fast process corners with
// per-net Gaussian derating (-rsigma/-csigma relative spreads, -samples Monte
// Carlo draws per corner, -seed for reproducibility). Each sample is an
// in-place rescale of the flat timing arena — no per-sample netlist rebuild —
// and the report carries, per corner, nominal and sampled WNS/TNS,
// per-endpoint slack distributions, and criticality probability.
//
// The deadline accepts SPICE suffixes (2n = 2e-9) and is interpreted in the
// same units as the netlists' element products.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	rcdelay "repro"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.7, "switching threshold as a fraction of the step")
		deadline  = flag.String("deadline", "", "required arrival time (SPICE suffixes allowed)")
		format    = flag.String("format", "text", "output format: text, csv or json")
		design    = flag.Bool("design", false, "treat the input as one multi-net design deck")
		eco       = flag.String("eco", "", "replay this ECO edit list against the design and report slack deltas (implies -design)")
		doClose   = flag.Bool("close", false, "run automated timing closure on the design and report the repair (implies -design)")
		budget    = flag.Int("budget", 0, "closure move budget with -close (0 = the engine default)")
		maxCost   = flag.Float64("maxcost", 0, "closure cost ceiling with -close (0 = unlimited)")
		k         = flag.Int("k", 3, "critical paths to report in -design mode")
		progress  = flag.Bool("progress", false, "with -close, print each accepted move to stderr as it lands")
		corners   = flag.Bool("corners", false, "run the multi-corner variation sweep on the design (implies -design)")
		samples   = flag.Int("samples", 0, "Monte Carlo samples per corner with -corners (0 = the engine default)")
		seed      = flag.Int64("seed", 1, "random seed for the -corners factor draws")
		rsigma    = flag.Float64("rsigma", 0.05, "per-net relative 1-sigma resistance spread with -corners")
		csigma    = flag.Float64("csigma", 0.05, "per-net relative 1-sigma capacitance spread with -corners")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of this run to FILE (chrome://tracing / Perfetto)")
	)
	flag.Parse()

	// With -trace, the whole run becomes one recorded trace: a root span over
	// the selected mode, with the engine layers' phase spans (levelize,
	// propagate, eco apply, closure trials, corner sweeps) attached through
	// the context. Without it ctx carries no span and tracing costs nothing.
	ctx := context.Background()
	var tracer *rcdelay.Tracer
	var root *rcdelay.TraceSpan
	if *traceOut != "" {
		tracer = rcdelay.NewTracer(rcdelay.TracerOptions{SlowThreshold: -1})
		ctx, root = tracer.Start(ctx, "statime")
	}

	var err error
	switch {
	case *eco != "" && *doClose:
		err = fmt.Errorf("-eco and -close are mutually exclusive: replay an existing edit list or synthesize a new one, not both")
	case *corners && (*eco != "" || *doClose):
		err = fmt.Errorf("-corners is a reporting mode and cannot be combined with -eco or -close")
	case *corners:
		root.SetAttr("mode", "corners")
		err = runCorners(ctx, os.Stdout, flag.Args(), *threshold, *deadline, *format, *samples, *seed, *rsigma, *csigma)
	case *eco != "":
		root.SetAttr("mode", "eco")
		err = runEco(ctx, os.Stdout, flag.Args(), *threshold, *deadline, *format, *k, *eco)
	case *doClose:
		root.SetAttr("mode", "close")
		var progressW io.Writer
		if *progress {
			progressW = os.Stderr
		}
		err = runClose(ctx, os.Stdout, progressW, flag.Args(), *threshold, *deadline, *format, *k, *budget, *maxCost)
	case *design:
		root.SetAttr("mode", "design")
		err = runDesign(ctx, os.Stdout, flag.Args(), *threshold, *deadline, *format, *k)
	default:
		root.SetAttr("mode", "nets")
		err = run(os.Stdout, flag.Args(), *threshold, *deadline, *format)
	}
	if tracer != nil {
		root.SetError(err)
		root.End()
		if werr := writeTraceFile(*traceOut, tracer); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "statime:", err)
		os.Exit(1)
	}
}

// writeTraceFile dumps the tracer's recorded traces (one: this run) as
// Chrome trace-event JSON.
func writeTraceFile(path string, tracer *rcdelay.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	if err := rcdelay.WriteChromeTrace(f, tracer.Recent()); err != nil {
		f.Close()
		return fmt.Errorf("-trace: %w", err)
	}
	return f.Close()
}

func run(w io.Writer, paths []string, threshold float64, deadlineStr, format string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no netlist files given")
	}
	if deadlineStr == "" {
		return fmt.Errorf("-deadline is required")
	}
	deadline, err := netlist.ParseValue(deadlineStr)
	if err != nil {
		return fmt.Errorf("bad -deadline: %w", err)
	}
	nets, err := loadNets(paths, threshold, deadline)
	if err != nil {
		return err
	}
	report, err := sta.Analyze(nets)
	if err != nil {
		return err
	}
	switch strings.ToLower(format) {
	case "text":
		_, err = fmt.Fprint(w, report.Summary())
		return err
	case "csv":
		return report.WriteCSV(w)
	case "json":
		return report.WriteJSON(w)
	}
	return fmt.Errorf("unknown -format %q (want text, csv or json)", format)
}

// loadDesign is the shared prologue of the -design and -eco modes: exactly
// one deck file, the optional -deadline as the default required time, and a
// filename-derived design name when the deck names none.
func loadDesign(mode string, paths []string, deadlineStr string) (*rcdelay.Design, float64, error) {
	if len(paths) != 1 {
		return nil, 0, fmt.Errorf("%s mode takes exactly one design deck, got %d files", mode, len(paths))
	}
	var required float64
	if deadlineStr != "" {
		var err error
		required, err = netlist.ParseValue(deadlineStr)
		if err != nil {
			return nil, 0, fmt.Errorf("bad -deadline: %w", err)
		}
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		return nil, 0, err
	}
	design, err := rcdelay.ParseDesign(string(data))
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", paths[0], err)
	}
	if design.Name == "" {
		design.Name = strings.TrimSuffix(filepath.Base(paths[0]), filepath.Ext(paths[0]))
	}
	return design, required, nil
}

// reporter is the text/csv/json surface the chip and ECO reports share.
type reporter interface {
	Summary() string
	WriteCSV(io.Writer) error
	WriteJSON(io.Writer) error
}

func writeReport(w io.Writer, format string, r reporter) error {
	switch strings.ToLower(format) {
	case "text":
		_, err := fmt.Fprint(w, r.Summary())
		return err
	case "csv":
		return r.WriteCSV(w)
	case "json":
		return r.WriteJSON(w)
	}
	return fmt.Errorf("unknown -format %q (want text, csv or json)", format)
}

// runDesign is the -design mode: one multi-net deck through the chip-level
// timing engine.
func runDesign(ctx context.Context, w io.Writer, paths []string, threshold float64, deadlineStr, format string, k int) error {
	design, required, err := loadDesign("-design", paths, deadlineStr)
	if err != nil {
		return err
	}
	report, err := rcdelay.AnalyzeDesign(ctx, design, rcdelay.DesignOptions{
		Threshold: threshold,
		Required:  required,
		K:         k,
	})
	if err != nil {
		return err
	}
	return writeReport(w, format, report)
}

// runCorners is the -corners mode: sweep the design across the default
// slow/typ/fast process corners with per-net Gaussian derating and report
// the per-endpoint slack distributions and criticality.
func runCorners(ctx context.Context, w io.Writer, paths []string, threshold float64, deadlineStr, format string, samples int, seed int64, rsigma, csigma float64) error {
	design, required, err := loadDesign("-corners", paths, deadlineStr)
	if err != nil {
		return err
	}
	report, err := rcdelay.AnalyzeCorners(ctx, design, rcdelay.CornerOptions{
		Samples:   samples,
		Seed:      seed,
		Variation: rcdelay.CornerVariation{RSigma: rsigma, CSigma: csigma},
		Threshold: threshold,
		Required:  required,
	})
	if err != nil {
		return err
	}
	return writeReport(w, format, report)
}

// runEco is the -eco mode: analyze the design once, replay the edit list
// through an incremental re-timing session, and report the slack deltas.
func runEco(ctx context.Context, w io.Writer, paths []string, threshold float64, deadlineStr, format string, k int, ecoPath string) error {
	editData, err := os.ReadFile(ecoPath)
	if err != nil {
		return err
	}
	edits, err := rcdelay.ParseEcoEdits(string(editData))
	if err != nil {
		return fmt.Errorf("%s: %w", ecoPath, err)
	}
	if len(edits) == 0 {
		return fmt.Errorf("%s: edit list is empty", ecoPath)
	}
	design, required, err := loadDesign("-eco", paths, deadlineStr)
	if err != nil {
		return err
	}
	sess, err := rcdelay.NewDesignSession(ctx, design, rcdelay.DesignOptions{
		Threshold: threshold,
		Required:  required,
		K:         k,
	})
	if err != nil {
		return err
	}
	before := sess.Report()
	res, err := sess.ApplyCtx(ctx, edits)
	if err != nil {
		return fmt.Errorf("%s: %w", ecoPath, err)
	}
	return writeReport(w, format, rcdelay.NewEcoReport(before, sess.Report(), res))
}

// runClose is the -close mode: repair the design's negative slack with the
// automated closure engine and report the accepted edits plus the
// trajectory. A non-nil progressW (stderr under -progress) receives one
// line per accepted move as it lands — the CLI twin of rcserve's SSE
// stream, sharing the same ProgressEvent hook.
func runClose(ctx context.Context, w, progressW io.Writer, paths []string, threshold float64, deadlineStr, format string, k, budget int, maxCost float64) error {
	design, required, err := loadDesign("-close", paths, deadlineStr)
	if err != nil {
		return err
	}
	opt := rcdelay.ClosureOptions{
		Timing: rcdelay.DesignOptions{
			Threshold: threshold,
			Required:  required,
			K:         k,
		},
		MaxMoves: budget,
		MaxCost:  maxCost,
	}
	if progressW != nil {
		opt.Progress = func(ev rcdelay.ClosureProgress) {
			fmt.Fprintf(progressW, "move %d: %s %s (%s) cost %.4g wns %.4g tns %.4g cum %.4g\n",
				ev.Seq, ev.Move.Kind, ev.Move.Net, ev.Move.Desc,
				ev.Move.Cost, ev.WNS, ev.TNS, ev.CumCost)
		}
	}
	report, err := rcdelay.CloseTiming(ctx, design, opt)
	if err != nil {
		return err
	}
	return writeReport(w, format, report)
}

func loadNets(paths []string, threshold, deadline float64) ([]sta.Net, error) {
	nets := make([]sta.Net, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		tree, err := rcdelay.ParseNetlist(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		nets = append(nets, sta.Net{Name: name, Tree: tree, Threshold: threshold, Deadline: deadline})
	}
	return nets, nil
}
