// Command statime runs bound-based static timing analysis over netlist
// files and emits the report as text, CSV or JSON — the downstream tool a
// design flow would actually call.
//
// Usage:
//
//	statime -threshold 0.7 -deadline 500 net1.ckt net2.ckt
//	statime -threshold 0.5 -deadline 2n -format json bus.ckt
//	statime -design -threshold 0.7 -deadline 700 -k 3 chip.ckt
//
// The default mode times each file as an independent net against the
// deadline. With -design, the single input file is a multi-net design deck
// (.net/.endnet sections glued by .stage cards): the chip-level engine
// levelizes the stage DAG, propagates interval arrival times, and reports
// per-endpoint slack plus the -k most critical paths; -deadline then serves
// as the default required time for endpoints without a .require card (and
// may be omitted).
//
// The deadline accepts SPICE suffixes (2n = 2e-9) and is interpreted in the
// same units as the netlists' element products.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	rcdelay "repro"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.7, "switching threshold as a fraction of the step")
		deadline  = flag.String("deadline", "", "required arrival time (SPICE suffixes allowed)")
		format    = flag.String("format", "text", "output format: text, csv or json")
		design    = flag.Bool("design", false, "treat the input as one multi-net design deck")
		k         = flag.Int("k", 3, "critical paths to report in -design mode")
	)
	flag.Parse()
	var err error
	if *design {
		err = runDesign(os.Stdout, flag.Args(), *threshold, *deadline, *format, *k)
	} else {
		err = run(os.Stdout, flag.Args(), *threshold, *deadline, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "statime:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, paths []string, threshold float64, deadlineStr, format string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no netlist files given")
	}
	if deadlineStr == "" {
		return fmt.Errorf("-deadline is required")
	}
	deadline, err := netlist.ParseValue(deadlineStr)
	if err != nil {
		return fmt.Errorf("bad -deadline: %w", err)
	}
	nets, err := loadNets(paths, threshold, deadline)
	if err != nil {
		return err
	}
	report, err := sta.Analyze(nets)
	if err != nil {
		return err
	}
	switch strings.ToLower(format) {
	case "text":
		_, err = fmt.Fprint(w, report.Summary())
		return err
	case "csv":
		return report.WriteCSV(w)
	case "json":
		return report.WriteJSON(w)
	}
	return fmt.Errorf("unknown -format %q (want text, csv or json)", format)
}

// runDesign is the -design mode: one multi-net deck through the chip-level
// timing engine.
func runDesign(w io.Writer, paths []string, threshold float64, deadlineStr, format string, k int) error {
	if len(paths) != 1 {
		return fmt.Errorf("-design mode takes exactly one design deck, got %d files", len(paths))
	}
	var required float64
	if deadlineStr != "" {
		var err error
		required, err = netlist.ParseValue(deadlineStr)
		if err != nil {
			return fmt.Errorf("bad -deadline: %w", err)
		}
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		return err
	}
	design, err := rcdelay.ParseDesign(string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", paths[0], err)
	}
	if design.Name == "" {
		design.Name = strings.TrimSuffix(filepath.Base(paths[0]), filepath.Ext(paths[0]))
	}
	report, err := rcdelay.AnalyzeDesign(context.Background(), design, rcdelay.DesignOptions{
		Threshold: threshold,
		Required:  required,
		K:         k,
	})
	if err != nil {
		return err
	}
	switch strings.ToLower(format) {
	case "text":
		_, err = fmt.Fprint(w, report.Summary())
		return err
	case "csv":
		return report.WriteCSV(w)
	case "json":
		return report.WriteJSON(w)
	}
	return fmt.Errorf("unknown -format %q (want text, csv or json)", format)
}

func loadNets(paths []string, threshold, deadline float64) ([]sta.Net, error) {
	nets := make([]sta.Net, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		tree, err := rcdelay.ParseNetlist(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		nets = append(nets, sta.Net{Name: name, Tree: tree, Threshold: threshold, Deadline: deadline})
	}
	return nets, nil
}
