package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rcdelay "repro"
)

func writeNet(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	deck := `
.input in
R1 in n1 380
C1 n1 0 0.04
U1 n1 far 1800 0.11
C2 far 0 0.013
.output far
`
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNets(t *testing.T) {
	dir := t.TempDir()
	p1 := writeNet(t, dir, "bus_a.ckt")
	p2 := writeNet(t, dir, "bus_b.ckt")
	nets, err := loadNets([]string{p1, p2}, 0.7, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 2 {
		t.Fatalf("nets = %d", len(nets))
	}
	if nets[0].Name != "bus_a" || nets[1].Name != "bus_b" {
		t.Errorf("names = %q, %q", nets[0].Name, nets[1].Name)
	}
	if _, err := loadNets([]string{filepath.Join(dir, "missing.ckt")}, 0.7, 500); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.ckt")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	if _, err := loadNets([]string{bad}, 0.7, 500); err == nil {
		t.Error("bad deck accepted")
	}
}

func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	p := writeNet(t, dir, "net.ckt")
	for _, format := range []string{"text", "csv", "json"} {
		out := filepath.Join(dir, "out."+format)
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(f, []string{p}, 0.7, "5000", format); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		f.Close()
		data, _ := os.ReadFile(out)
		if !strings.Contains(string(data), "net") {
			t.Errorf("format %s output missing net name:\n%s", format, data)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	p := writeNet(t, dir, "net.ckt")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(devnull, nil, 0.7, "500", "text"); err == nil {
		t.Error("no files accepted")
	}
	if err := run(devnull, []string{p}, 0.7, "", "text"); err == nil {
		t.Error("missing deadline accepted")
	}
	if err := run(devnull, []string{p}, 0.7, "zzz", "text"); err == nil {
		t.Error("bad deadline accepted")
	}
	if err := run(devnull, []string{p}, 0.7, "500", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	if err := run(devnull, []string{p}, 0, "500", "text"); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestDeadlineSuffix(t *testing.T) {
	dir := t.TempDir()
	p := writeNet(t, dir, "net.ckt")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// 5k ps deadline via suffix.
	if err := run(devnull, []string{p}, 0.7, "5k", "csv"); err != nil {
		t.Errorf("suffix deadline rejected: %v", err)
	}
}

func TestRunEcoErrors(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	chip := filepath.Join("testdata", "chip.ckt")
	eco := filepath.Join("testdata", "chip.eco")
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := runEco(context.Background(), devnull, nil, 0.7, "", "text", 2, eco); err == nil {
		t.Error("no design accepted")
	}
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "", "text", 2, filepath.Join(dir, "missing.eco")); err == nil {
		t.Error("missing eco file accepted")
	}
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "", "text", 2, write("bad.eco", "warp a.b 1\n")); err == nil {
		t.Error("bad eco op accepted")
	}
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "", "text", 2, write("empty.eco", "* nothing\n")); err == nil {
		t.Error("empty eco list accepted")
	}
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "zzz", "text", 2, eco); err == nil {
		t.Error("bad deadline accepted")
	}
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "", "xml", 2, eco); err == nil {
		t.Error("bad format accepted")
	}
	if err := runEco(context.Background(), devnull, []string{write("bad.ckt", "garbage")}, 0.7, "", "text", 2, eco); err == nil {
		t.Error("bad design accepted")
	}
	// An edit list that fails mid-replay surfaces the edit error.
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "", "text", 2, write("fail.eco", "setR ghost.o 5\n")); err == nil {
		t.Error("failing edit accepted")
	}
	// A deadline applies as the default requirement in eco mode too.
	if err := runEco(context.Background(), devnull, []string{chip}, 0.7, "5k", "csv", 2, eco); err != nil {
		t.Errorf("eco with deadline: %v", err)
	}
}

// TestRunCloseProgress: -progress writes one line per accepted move to the
// progress sink while stdout still carries the full report, and the line
// count agrees with the report's trajectory.
func TestRunCloseProgress(t *testing.T) {
	var out, progress bytes.Buffer
	fail := filepath.Join("testdata", "fail.ckt")
	if err := runClose(context.Background(), &out, &progress, []string{fail}, 0.7, "", "json", 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Closed     bool `json:"closed"`
		Trajectory []struct {
			Kind string `json:"kind"`
		} `json:"trajectory"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, out.String())
	}
	if !report.Closed || len(report.Trajectory) == 0 {
		t.Fatalf("closure did not repair the fixture: %s", out.String())
	}
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	if len(lines) != len(report.Trajectory) {
		t.Fatalf("progress carried %d lines for %d moves:\n%s",
			len(lines), len(report.Trajectory), progress.String())
	}
	for i, line := range lines {
		prefix := fmt.Sprintf("move %d: %s", i+1, report.Trajectory[i].Kind)
		if !strings.HasPrefix(line, prefix) {
			t.Errorf("progress line %d = %q, want prefix %q", i, line, prefix)
		}
		if !strings.Contains(line, "wns") || !strings.Contains(line, "cum") {
			t.Errorf("progress line %d missing state fields: %q", i, line)
		}
	}
	// Without a sink the same run stays silent on the progress side.
	out.Reset()
	if err := runClose(context.Background(), &out, nil, []string{fail}, 0.7, "", "text", 2, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOutput drives -trace's plumbing: a traced -close run writes a
// Chrome trace-event file whose events include the engine phase spans.
func TestTraceOutput(t *testing.T) {
	tracer := rcdelay.NewTracer(rcdelay.TracerOptions{SlowThreshold: -1})
	ctx, root := tracer.Start(context.Background(), "statime")
	root.SetAttr("mode", "close")
	var out bytes.Buffer
	if err := runClose(ctx, &out, nil, []string{filepath.Join("testdata", "fail.ckt")}, 0.7, "", "json", 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	root.End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTraceFile(path, tracer); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace file did not decode: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"statime", "closure_run", "closure_trial", "timing_propagate"} {
		if !names[want] {
			t.Errorf("trace missing %s span (got %v)", want, names)
		}
	}
}
