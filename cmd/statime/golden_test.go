package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests: the report formats are part of statime's contract
// (scripts parse them), so their exact bytes are pinned under testdata/.
// After an intentional format change, refresh with:
//
//	go test ./cmd/statime -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden file (rerun with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenNetReports(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, []string{filepath.Join("testdata", "fig7.ckt")}, 0.7, "500", format); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "fig7_"+format+".golden", buf.Bytes())
		})
	}
}

func TestGoldenDesignReports(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runDesign(context.Background(), &buf, []string{filepath.Join("testdata", "chip.ckt")}, 0.7, "", format, 2); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "chip_"+format+".golden", buf.Bytes())
		})
	}
}

func TestGoldenCloseReports(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runClose(context.Background(), &buf, nil, []string{filepath.Join("testdata", "fail.ckt")}, 0.7, "", format, 2, 0, 0); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "close_"+format+".golden", buf.Bytes())
		})
	}
}

func TestGoldenCornerReports(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runCorners(context.Background(), &buf, []string{filepath.Join("testdata", "fail.ckt")}, 0.7, "", format,
				32, 1, 0.05, 0.05); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "corners_"+format+".golden", buf.Bytes())
		})
	}
}

func TestGoldenEcoReports(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runEco(context.Background(), &buf, []string{filepath.Join("testdata", "chip.ckt")}, 0.7, "", format, 2,
				filepath.Join("testdata", "chip.eco")); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "eco_"+format+".golden", buf.Bytes())
		})
	}
}
