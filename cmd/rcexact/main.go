// Command rcexact regenerates Figure 11 of the paper: the bound envelope
// together with the exact simulated step response of an RC tree. Output is
// CSV (t, vmin, vmax, vexact) for the chosen output node.
//
// Usage:
//
//	rcexact                          # the paper's Figure 7 network, t in [0,600]
//	rcexact -netlist net.ckt -output n2 -tend 1000 -points 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	rcdelay "repro"
)

const demoExpr = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

func main() {
	var (
		netlistPath = flag.String("netlist", "", "path to a SPICE-like RC tree deck (default: the paper's Figure 7 network)")
		outputName  = flag.String("output", "", "output node name (default: the tree's first output)")
		tend        = flag.Float64("tend", 600, "end of the time axis")
		points      = flag.Int("points", 120, "number of samples")
		segments    = flag.Int("segments", 32, "pi sections per distributed line for the exact solve")
	)
	flag.Parse()
	if err := run(os.Stdout, *netlistPath, *outputName, *tend, *points, *segments); err != nil {
		fmt.Fprintln(os.Stderr, "rcexact:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, netlistPath, outputName string, tend float64, points, segments int) error {
	var tree *rcdelay.Tree
	var out rcdelay.NodeID
	var err error
	if netlistPath == "" {
		tree, out, err = rcdelay.ParseExpression(demoExpr)
		if err != nil {
			return err
		}
	} else {
		data, err := os.ReadFile(netlistPath)
		if err != nil {
			return err
		}
		tree, err = rcdelay.ParseNetlist(string(data))
		if err != nil {
			return err
		}
		if len(tree.Outputs()) == 0 {
			return fmt.Errorf("tree has no outputs")
		}
		out = tree.Outputs()[0]
	}
	if outputName != "" {
		id, ok := tree.Lookup(outputName)
		if !ok {
			return fmt.Errorf("no node named %q", outputName)
		}
		out = id
	}
	if points < 2 {
		return fmt.Errorf("-points must be at least 2")
	}
	if tend <= 0 {
		return fmt.Errorf("-tend must be positive")
	}

	bounds, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		return err
	}
	sim, err := rcdelay.SimulateStep(tree, segments)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "t,vmin,vmax,vexact")
	var worstLow, worstHigh float64
	for k := 0; k <= points; k++ {
		t := tend * float64(k) / float64(points)
		exact, err := sim.Voltage(out, t)
		if err != nil {
			return err
		}
		lo, hi := bounds.VMin(t), bounds.VMax(t)
		fmt.Fprintf(w, "%.6g,%.6f,%.6f,%.6f\n", t, lo, hi, exact)
		if d := lo - exact; d > worstLow {
			worstLow = d
		}
		if d := exact - hi; d > worstHigh {
			worstHigh = d
		}
	}
	fmt.Fprintf(os.Stderr, "rcexact: worst bracket violation: lower %.2e, upper %.2e (should be ~0)\n",
		worstLow, worstHigh)
	return nil
}
