package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if lines[0] != "t,vmin,vmax,vexact" {
		t.Fatalf("header = %q", lines[0])
	}
	var rows [][]float64
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("bad row %q", line)
		}
		row := make([]float64, 4)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("non-numeric %q", line)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows
}

func TestRunDemoBracketsExact(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", 600, 60, 16); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 61 {
		t.Fatalf("rows = %d, want 61", len(rows))
	}
	for _, r := range rows {
		tt, lo, hi, exact := r[0], r[1], r[2], r[3]
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Errorf("t=%g: exact %g outside [%g, %g]", tt, exact, lo, hi)
		}
	}
}

func TestRunNetlistAndOutputSelection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ckt")
	deck := ".input in\nR1 in a 100\nC1 a 0 0.5\nR2 a b 50\nC2 b 0 0.2\n.output a b\n"
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, path, "b", 500, 10, 4); err != nil {
		t.Fatal(err)
	}
	if len(parseCSV(t, buf.String())) != 11 {
		t.Error("wrong row count")
	}
	if err := run(&buf, path, "ghost", 500, 10, 4); err == nil {
		t.Error("unknown output accepted")
	}
	if err := run(&buf, filepath.Join(dir, "missing.ckt"), "", 500, 10, 4); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", 600, 1, 16); err == nil {
		t.Error("points < 2 accepted")
	}
	if err := run(&buf, "", "", -1, 10, 16); err == nil {
		t.Error("negative tend accepted")
	}
	if err := run(&buf, "", "", 600, 10, 0); err == nil {
		t.Error("zero segments accepted")
	}
}
