// Command experiments regenerates every table and figure of the paper's
// evaluation in one run, printing a report with paper-vs-measured values.
// EXPERIMENTS.md is this program's output plus commentary.
//
// Usage: experiments [-only e4] [-quick]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	rcdelay "repro"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/elmore"
	"repro/internal/pla"
	"repro/internal/randnet"
	"repro/internal/rctree"
	"repro/internal/sim"
	"repro/internal/waveform"
	"repro/internal/wire"
)

const fig7Expr = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

func main() {
	only := flag.String("only", "", "run a single experiment (e1..e10)")
	quick := flag.Bool("quick", false, "smaller sizes for E8 timing")
	flag.Parse()
	exps := []struct {
		id  string
		fn  func(quick bool) error
		des string
	}{
		{"e1", e1, "closed forms and eq. 7 ordering"},
		{"e2", e2, "Figure 3 resistance terms"},
		{"e3", e3, "Figure 7 / eq. 18 quantity vector"},
		{"e4", e4, "Figure 10 delay and voltage tables"},
		{"e5", e5, "Figure 11 bounds vs exact simulation"},
		{"e6", e6, "Figure 13 PLA sweep"},
		{"e7", e7, "Figure 5 bound shapes and Elmore comparison"},
		{"e8", e8, "§IV complexity: direct vs algebra"},
		{"e9", e9, "§V technology numbers"},
		{"e10", e10, "§VI ramp-input extension"},
	}
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("== %s: %s ==\n", strings.ToUpper(e.id), e.des)
		if err := e.fn(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func e1(bool) error {
	const R, C = 120.0, 7.0
	q := algebra.URC(R, C)
	tm, err := q.Times()
	if err != nil {
		return err
	}
	fmt.Printf("uniform line R=%g C=%g: TP=%g (paper RC/2=%g)  TD=%g (RC/2)  TR=%g (paper RC/3=%g)\n",
		R, C, tm.TP, R*C/2, tm.TD, tm.TR, R*C/3)
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for i := 0; i < 2000; i++ {
		tr := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(40)))
		for _, e := range tr.Outputs() {
			t, err := tr.CharacteristicTimes(e)
			if err != nil {
				return err
			}
			if err := t.Validate(); err != nil {
				return fmt.Errorf("ordering violated: %w", err)
			}
			if t.TP > 0 {
				if r := t.TD / t.TP; r > worst {
					worst = r
				}
			}
		}
	}
	fmt.Printf("eq. 7 ordering TR<=TD<=TP held on 2000 random trees (max TD/TP=%.3f)\n", worst)
	return nil
}

func e2(bool) error {
	b := rctree.NewBuilder("in")
	a := b.Resistor(rctree.Root, "a", 1)
	bb := b.Resistor(a, "b", 2)
	k := b.Resistor(bb, "k", 4)
	leaf := b.Resistor(k, "leaf", 8)
	e := b.Resistor(bb, "e", 16)
	b.Capacitor(leaf, 1)
	b.Capacitor(e, 1)
	b.Output(e)
	tr, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("Rkk=%g (want R1+R2+R3=7)  Ree=%g (want R1+R2+R5=19)  Rke=%g (want R1+R2=3)\n",
		tr.PathResistance(k), tr.PathResistance(e),
		tr.PathResistance(tr.CommonAncestor(k, e)))
	return nil
}

func e3(bool) error {
	e, err := algebra.Parse(fig7Expr)
	if err != nil {
		return err
	}
	v := e.Eval().Vector()
	fmt.Printf("eq. 18 quantity vector (CT TP R22 TD2 TR2R22) = %g %g %g %g %g\n",
		v[0], v[1], v[2], v[3], v[4])
	fmt.Println("hand-derived reference:                        22 419 18 363 6033")
	return nil
}

func e4(bool) error {
	tree, out, err := rcdelay.ParseExpression(fig7Expr)
	if err != nil {
		return err
	}
	b, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		return err
	}
	paperDelay := [][3]float64{
		{0.1, 0, 68.167}, {0.2, 27.8, 117.22}, {0.3, 71.46, 173.17},
		{0.4, 123.13, 237.76}, {0.5, 184.23, 314.15}, {0.6, 259.02, 407.65},
		{0.7, 355.45, 528.18}, {0.8, 491.34, 698.07}, {0.9, 723.66, 988.5},
	}
	fmt.Printf("%6s %22s %22s\n", "V", "TMIN (ours / paper)", "TMAX (ours / paper)")
	for _, row := range paperDelay {
		fmt.Printf("%6.1f %10.3f / %-9.3f %10.3f / %-9.3f\n",
			row[0], b.TMin(row[0]), row[1], b.TMax(row[0]), row[2])
	}
	paperVolt := [][3]float64{
		{20, 0, 0.18138}, {40, 0.03243, 0.22912}, {60, 0.0814, 0.27565},
		{80, 0.12565, 0.31761}, {100, 0.16644, 0.35714}, {200, 0.34342, 0.52297},
		{300, 0.48283, 0.64603}, {400, 0.59263, 0.73734}, {500, 0.67913, 0.8051},
		{1000, 0.90271, 0.95615}, {2000, 0.99105, 0.99778},
	}
	fmt.Printf("%6s %22s %22s\n", "T", "VMIN (ours / paper)", "VMAX (ours / paper)")
	for _, row := range paperVolt {
		fmt.Printf("%6.0f %10.5f / %-9.5f %10.5f / %-9.5f\n",
			row[0], b.VMin(row[0]), row[1], b.VMax(row[0]), row[2])
	}
	return nil
}

func e5(bool) error {
	tree, out, err := rcdelay.ParseExpression(fig7Expr)
	if err != nil {
		return err
	}
	b, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		return err
	}
	s, err := rcdelay.SimulateStep(tree, 64)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %8s %8s %8s\n", "t", "vmin", "vexact", "vmax")
	var worst float64
	for _, t := range []float64{50, 100, 150, 200, 300, 400, 500, 600} {
		v, err := s.Voltage(out, t)
		if err != nil {
			return err
		}
		lo, hi := b.VMin(t), b.VMax(t)
		if v < lo || v > hi {
			return fmt.Errorf("bracket violated at t=%g", t)
		}
		if gap := hi - lo; gap > worst {
			worst = gap
		}
		fmt.Printf("%6.0f %8.4f %8.4f %8.4f\n", t, lo, v, hi)
	}
	cross, err := s.CrossingTime(out, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("50%% crossing: exact %.2f in [TMIN, TMAX] = [%.2f, %.2f]; widest envelope gap %.3f\n",
		cross, b.TMin(0.5), b.TMax(0.5), worst)
	return nil
}

func e6(bool) error {
	pts, err := pla.Sweep(pla.PaperParams(), []int{2, 4, 10, 20, 40, 100}, 0.7)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s %12s\n", "minterms", "tmin (ns)", "tmax (ns)")
	for _, p := range pts {
		fmt.Printf("%8d %12.4f %12.4f\n", p.Minterms, p.TMin/1000, p.TMax/1000)
	}
	last := pts[len(pts)-1]
	fmt.Printf("paper: \"delay is guaranteed to be no worse than 10 nsec\" at 100 minterms; ours: %.2f ns\n",
		last.TMax/1000)
	return nil
}

func e7(bool) error {
	tree, out, err := rcdelay.ParseExpression(fig7Expr)
	if err != nil {
		return err
	}
	b, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		return err
	}
	pts := b.SampleCurves(1200, 12)
	fmt.Printf("%6s %8s %8s %10s\n", "t", "vmin", "vmax", "vmin(eq.4)")
	for _, p := range pts {
		fmt.Printf("%6.0f %8.4f %8.4f %10.4f\n", p.T, p.VMin, p.VMax, p.VMinElmore)
	}
	el := elmore.Delays(tree)[out]
	fmt.Printf("Elmore baseline TD=%.4g lies in [TMIN(0.63), TMAX(0.63)] = [%.4g, %.4g]\n",
		el, b.TMin(0.632), b.TMax(0.632))
	return nil
}

func e8(quick bool) error {
	sizes := []int{10, 100, 1000}
	if quick {
		sizes = []int{10, 100}
	}
	rng := rand.New(rand.NewSource(8))
	fmt.Printf("%8s %16s %16s %16s\n", "n", "direct O(n)", "algebra O(n)", "reference O(nd)")
	for _, n := range sizes {
		tr := randnet.Tree(rng, randnet.DefaultConfig(n))
		e := tr.Outputs()[len(tr.Outputs())-1]
		direct := timeIt(func() {
			if _, err := tr.CharacteristicTimes(e); err != nil {
				panic(err)
			}
		})
		alg := timeIt(func() {
			expr, err := algebra.FromTree(tr, e)
			if err != nil {
				panic(err)
			}
			expr.Eval()
		})
		ref := timeIt(func() {
			if _, err := tr.CharacteristicTimesRef(e); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%8d %16s %16s %16s\n", n, direct, alg, ref)
	}
	return nil
}

func timeIt(fn func()) time.Duration {
	const reps = 50
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / reps
}

func e9(bool) error {
	tech := wire.PaperTech()
	segR, segC, err := tech.LineRC(wire.Segment{Layer: "poly", Length: 24 * wire.Micron, Width: 4 * wire.Micron})
	if err != nil {
		return err
	}
	gR, gC, err := tech.GateRC(4 * wire.Micron)
	if err != nil {
		return err
	}
	fmt.Printf("inter-gate 24µm poly: R=%.0f Ω (paper 180), C=%.4f pF (paper ~0.01)\n", segR, segC*1e12)
	fmt.Printf("4µm gate:             R=%.0f Ω (paper 30),  C=%.4f pF (paper ~0.013)\n", gR, gC*1e12)
	return nil
}

func e10(bool) error {
	tree, out, err := rcdelay.ParseExpression(fig7Expr)
	if err != nil {
		return err
	}
	tm, err := rcdelay.CharacteristicTimes(tree, out)
	if err != nil {
		return err
	}
	b, err := core.New(tm)
	if err != nil {
		return err
	}
	lumped, mapping, err := sim.Discretize(tree, 32)
	if err != nil {
		return err
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		return err
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		return err
	}
	i, err := ckt.Index(mapping[out])
	if err != nil {
		return err
	}
	ramp := waveform.Ramp(200)
	fmt.Printf("%6s %8s %8s %8s   (input: 200-unit ramp)\n", "t", "vmin", "vexact", "vmax")
	for _, t := range []float64{100, 200, 400, 800} {
		lo, hi, err := waveform.ResponseBounds(b, ramp, t, 256)
		if err != nil {
			return err
		}
		exact, err := waveform.ExactResponse(resp, i, ramp, t)
		if err != nil {
			return err
		}
		if exact < lo-1e-6 || exact > hi+1e-6 {
			return fmt.Errorf("ramp bracket violated at t=%g", t)
		}
		fmt.Printf("%6.0f %8.4f %8.4f %8.4f\n", t, lo, exact, hi)
	}
	tLo, tHi, err := waveform.CrossingBounds(b, ramp, 0.5, 5000, 128)
	if err != nil {
		return err
	}
	if math.IsInf(tHi, 1) {
		return fmt.Errorf("ramp crossing upper bound diverged")
	}
	fmt.Printf("ramp 50%% crossing bounded by [%.2f, %.2f]\n", tLo, tHi)
	return nil
}
