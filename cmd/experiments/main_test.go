package main

import "testing"

// TestAllExperiments runs every reproduction experiment end to end (quick
// sizes for the timing sweep). Each eN function returns an error whenever a
// paper claim fails to reproduce, so this single test re-validates the whole
// of EXPERIMENTS.md on every test run.
func TestAllExperiments(t *testing.T) {
	cases := []struct {
		name string
		fn   func(quick bool) error
	}{
		{"e1", e1}, {"e2", e2}, {"e3", e3}, {"e4", e4}, {"e5", e5},
		{"e6", e6}, {"e7", e7}, {"e8", e8}, {"e9", e9}, {"e10", e10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fn(true); err != nil {
				t.Fatalf("experiment %s failed: %v", tc.name, err)
			}
		})
	}
}
