// Command rcload load-tests and crash-verifies a running rcserve instance.
//
// Three modes:
//
//	rcload -mode wait   -addr :8080                poll /readyz until ready
//	rcload -mode load   -addr :8080 -sessions 16   drive concurrent sessions
//	rcload -mode verify -addr :8080 -state f.json  re-check designs after a restart
//
// Load mode opens -sessions concurrent design sessions and drives each with
// -ops operations of mixed traffic — ECO edit batches, slack reads, and
// close/reopen cycles in -edit-frac/-slack-frac proportions — recording
// per-operation latency percentiles (p50/p99) and 429 backpressure retries.
// Every request carries a W3C traceparent header, and the report's per-op
// "slowest" section names the server-side trace ids of the slowest calls —
// paste one into rcserve's GET /debug/traces/{id} to see its span tree.
// The final state of every surviving design (id, WNS, TNS, edit count) is
// written to -state, and the latency report as JSON to -out (default
// stdout).
//
// Verify mode is the crash-recovery check: after the server was killed and
// restarted on the same -data-dir, it re-reads every design in -state,
// timing the first lookup (which pays the WAL replay) and comparing WNS/TNS
// to the recorded values within 1e-9. Any mismatch or missing design makes
// the exit status non-zero — scripts/serve_smoke.sh builds the kill -9
// end-to-end test out of exactly this.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

type config struct {
	addr      string
	mode      string
	sessions  int
	ops       int
	editFrac  float64
	slackFrac float64
	seed      int64
	state     string
	out       string
	timeout   time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "rcserve base URL (host:port or full URL)")
	flag.StringVar(&cfg.mode, "mode", "load", "load | verify | wait")
	flag.IntVar(&cfg.sessions, "sessions", 8, "concurrent design sessions (load mode)")
	flag.IntVar(&cfg.ops, "ops", 100, "operations per session (load mode)")
	flag.Float64Var(&cfg.editFrac, "edit-frac", 0.6, "fraction of ops that are edit batches")
	flag.Float64Var(&cfg.slackFrac, "slack-frac", 0.3, "fraction of ops that are slack reads (the rest close+reopen)")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed (deterministic traffic)")
	flag.StringVar(&cfg.state, "state", "", "state file: written by load, read by verify")
	flag.StringVar(&cfg.out, "out", "", "JSON report path (empty = stdout)")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "overall wait timeout / per-request timeout")
	flag.Parse()
	if !strings.Contains(cfg.addr, "://") {
		cfg.addr = "http://" + strings.TrimPrefix(cfg.addr, ":")
		if strings.HasSuffix(cfg.addr, "http://") { // bare ":8080" became "http://"
			fmt.Fprintln(os.Stderr, "rcload: bad -addr")
			os.Exit(2)
		}
	}
	cfg.addr = strings.TrimSuffix(cfg.addr, "/")

	var (
		report any
		err    error
	)
	switch cfg.mode {
	case "load":
		report, err = runLoad(cfg)
	case "verify":
		report, err = runVerify(cfg)
	case "wait":
		report, err = runWait(cfg)
	default:
		err = fmt.Errorf("unknown mode %q (want load, verify or wait)", cfg.mode)
	}
	if report != nil {
		data, mErr := json.MarshalIndent(report, "", "  ")
		if mErr == nil {
			data = append(data, '\n')
			if cfg.out == "" {
				os.Stdout.Write(data)
			} else if wErr := os.WriteFile(cfg.out, data, 0o644); wErr != nil && err == nil {
				err = wErr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcload: %v\n", err)
		os.Exit(1)
	}
}

// --- HTTP plumbing ----------------------------------------------------------

func client(cfg config) *http.Client {
	return &http.Client{Timeout: cfg.timeout}
}

// doJSON performs one request and decodes the JSON answer. 429 answers are
// retried with a short backoff (counting each retry); any other non-2xx is
// an error carrying the server's message. Every attempt carries a fresh W3C
// traceparent, so the server records the operation under a trace id rcload
// knows; the returned id (confirmed from the response's traceparent echo,
// falling back to the one sent) lets the latency report name the server-side
// trace of its slowest operations.
func doJSON(c *http.Client, method, url string, body []byte, retries429 *counter) (map[string]any, string, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, "", err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		tid := trace.NewTraceID()
		req.Header.Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
		traceID := tid.String()
		resp, err := c.Do(req)
		if err != nil {
			return nil, traceID, err
		}
		if echoed, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent")); ok {
			traceID = echoed.String()
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			return nil, traceID, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			if retries429 != nil {
				retries429.add(1)
			}
			time.Sleep(time.Duration(10+attempt*10) * time.Millisecond)
			continue
		}
		var decoded map[string]any
		if len(data) > 0 {
			if err := json.Unmarshal(data, &decoded); err != nil {
				return nil, traceID, fmt.Errorf("%s %s: bad JSON (%d): %.200s", method, url, resp.StatusCode, data)
			}
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decoded, traceID, fmt.Errorf("%s %s: %d: %v", method, url, resp.StatusCode, decoded["error"])
		}
		return decoded, traceID, nil
	}
}

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) add(n int64) { c.mu.Lock(); c.n += n; c.mu.Unlock() }
func (c *counter) value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// slowOp names one slow operation's latency and its server-side trace id —
// the handle to paste into GET /debug/traces/{id} for the span tree.
type slowOp struct {
	Ms    float64 `json:"ms"`
	Trace string  `json:"trace,omitempty"`
}

// maxSlowOps bounds the slowest-op list kept per op kind.
const maxSlowOps = 3

// latencies collects per-operation durations for one op kind, retaining the
// trace ids of the slowest few.
type latencies struct {
	mu     sync.Mutex
	ms     []float64
	slow   []slowOp // descending by Ms, at most maxSlowOps entries
	errors int
}

func (l *latencies) observe(d time.Duration, traceID string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.errors++
		return
	}
	ms := float64(d.Nanoseconds()) / 1e6
	l.ms = append(l.ms, ms)
	i := sort.Search(len(l.slow), func(i int) bool { return l.slow[i].Ms < ms })
	if i < maxSlowOps {
		l.slow = append(l.slow, slowOp{})
		copy(l.slow[i+1:], l.slow[i:])
		l.slow[i] = slowOp{Ms: ms, Trace: traceID}
		if len(l.slow) > maxSlowOps {
			l.slow = l.slow[:maxSlowOps]
		}
	}
}

// opStats is the JSON latency summary of one op kind.
type opStats struct {
	Count   int      `json:"count"`
	Errors  int      `json:"errors"`
	P50ms   float64  `json:"p50_ms"`
	P99ms   float64  `json:"p99_ms"`
	MaxMs   float64  `json:"max_ms"`
	Slowest []slowOp `json:"slowest,omitempty"`
}

func (l *latencies) stats() opStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := opStats{Count: len(l.ms), Errors: l.errors, Slowest: append([]slowOp(nil), l.slow...)}
	if len(l.ms) == 0 {
		return s
	}
	sorted := append([]float64(nil), l.ms...)
	sort.Float64s(sorted)
	s.P50ms = percentile(sorted, 50)
	s.P99ms = percentile(sorted, 99)
	s.MaxMs = sorted[len(sorted)-1]
	return s
}

// percentile reads the p-th percentile from an ascending-sorted slice under
// the repo-wide convention (internal/stats: R-7 linear interpolation), so
// rcload's latency quantiles compare directly with the server's histogram
// snapshots and mc/mcd's distribution reports.
func percentile(sorted []float64, p float64) float64 {
	return stats.Percentile(sorted, p)
}

// --- load mode --------------------------------------------------------------

// designState is one surviving design's identity and timing numbers,
// recorded for the post-restart verify.
type designState struct {
	ID    string  `json:"id"`
	WNS   float64 `json:"wns"`
	TNS   float64 `json:"tns"`
	Edits int     `json:"edits"`
}

type stateFile struct {
	Designs []designState `json:"designs"`
}

type loadReport struct {
	Mode          string             `json:"mode"`
	Addr          string             `json:"addr"`
	Sessions      int                `json:"sessions"`
	OpsPerSession int                `json:"ops_per_session"`
	WallMs        float64            `json:"wall_ms"`
	Throughput    float64            `json:"throughput_rps"`
	Retries429    int64              `json:"retries_429"`
	Ops           map[string]opStats `json:"ops"`
}

// loadDeck is worker w's design: the two-net stage fixture with a jittered
// driver resistance so sessions do not alias one another.
func loadDeck(w int) string {
	return fmt.Sprintf(`.design load%d
.net drv
.input in
R1 in o %d
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.stage drv o bus 25
.require bus far 700
.end
`, w, 300+10*(w%8))
}

// loadEdit is the i-th edit of the deterministic edit cycle; every edit
// succeeds against loadDeck, so applied counts are predictable.
func loadEdit(i int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf(`{"op": "setR", "net": "drv", "node": "o", "r": %g}`, 300+float64(i%37)*5)
	case 1:
		return `{"op": "addC", "net": "bus", "node": "far", "c": 0.0005}`
	case 2:
		return fmt.Sprintf(`{"op": "setLine", "net": "bus", "node": "far", "r": %g, "c": %g}`,
			1700+float64(i%23)*10, 0.1+float64(i%7)*0.01)
	default:
		return fmt.Sprintf(`{"op": "scaleDriver", "net": "drv", "factor": %g}`, 0.9+float64(i%5)*0.05)
	}
}

func createDesign(c *http.Client, cfg config, w int, retries *counter) (string, string, error) {
	body, _ := json.Marshal(map[string]any{"design": loadDeck(w), "threshold": 0.7, "required": 700})
	resp, traceID, err := doJSON(c, http.MethodPost, cfg.addr+"/design", body, retries)
	if err != nil {
		return "", traceID, err
	}
	id, _ := resp["id"].(string)
	if id == "" {
		return "", traceID, fmt.Errorf("create: no id in %v", resp)
	}
	return id, traceID, nil
}

func runLoad(cfg config) (*loadReport, error) {
	c := client(cfg)
	lats := map[string]*latencies{
		"create": {}, "edit": {}, "slack": {}, "close": {},
	}
	var retries counter
	final := make([]designState, cfg.sessions)
	errCh := make(chan error, cfg.sessions)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			t0 := time.Now()
			id, tr, err := createDesign(c, cfg, w, &retries)
			lats["create"].observe(time.Since(t0), tr, err)
			if err != nil {
				errCh <- fmt.Errorf("session %d: %w", w, err)
				return
			}
			edits := 0
			for i := 0; i < cfg.ops; i++ {
				switch r := rng.Float64(); {
				case r < cfg.editFrac:
					n := 1 + rng.Intn(4)
					specs := make([]string, n)
					for j := range specs {
						specs[j] = loadEdit(w*cfg.ops + i + j)
					}
					body := []byte(`{"edits": [` + strings.Join(specs, ",") + `]}`)
					t0 := time.Now()
					resp, tr, err := doJSON(c, http.MethodPost, cfg.addr+"/design/"+id+"/edit", body, &retries)
					lats["edit"].observe(time.Since(t0), tr, err)
					if err == nil {
						if applied, ok := resp["applied"].(float64); ok {
							edits += int(applied)
						}
					}
				case r < cfg.editFrac+cfg.slackFrac:
					t0 := time.Now()
					_, tr, err := doJSON(c, http.MethodGet, cfg.addr+"/design/"+id+"/slack", nil, &retries)
					lats["slack"].observe(time.Since(t0), tr, err)
				default:
					t0 := time.Now()
					_, tr, err := doJSON(c, http.MethodDelete, cfg.addr+"/design/"+id, nil, &retries)
					if err == nil {
						id, _, err = createDesign(c, cfg, w, &retries)
						edits = 0
					}
					lats["close"].observe(time.Since(t0), tr, err)
					if err != nil {
						errCh <- fmt.Errorf("session %d: close/reopen: %w", w, err)
						return
					}
				}
			}
			info, _, err := doJSON(c, http.MethodGet, cfg.addr+"/design/"+id, nil, &retries)
			if err != nil {
				errCh <- fmt.Errorf("session %d: final info: %w", w, err)
				return
			}
			wns, _ := info["wns"].(float64)
			tns, _ := info["tns"].(float64)
			final[w] = designState{ID: id, WNS: wns, TNS: tns, Edits: edits}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	if cfg.state != "" {
		sf := stateFile{}
		for _, d := range final {
			if d.ID != "" {
				sf.Designs = append(sf.Designs, d)
			}
		}
		data, _ := json.MarshalIndent(sf, "", "  ")
		if err := os.WriteFile(cfg.state, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	rep := &loadReport{
		Mode: "load", Addr: cfg.addr,
		Sessions: cfg.sessions, OpsPerSession: cfg.ops,
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
		Retries429: retries.value(),
		Ops:        map[string]opStats{},
	}
	totalOps := 0
	for kind, l := range lats {
		s := l.stats()
		rep.Ops[kind] = s
		totalOps += s.Count
	}
	if wall > 0 {
		rep.Throughput = float64(totalOps) / wall.Seconds()
	}
	return rep, nil
}

// --- verify mode ------------------------------------------------------------

type verifyReport struct {
	Mode           string   `json:"mode"`
	Addr           string   `json:"addr"`
	Designs        int      `json:"designs"`
	Verified       int      `json:"verified"`
	Failures       []string `json:"failures,omitempty"`
	RecoveryMsTot  float64  `json:"recovery_ms_total"`
	RecoveryMsMax  float64  `json:"recovery_ms_max"`
	RecoveryMsMean float64  `json:"recovery_ms_mean"`
}

func runVerify(cfg config) (*verifyReport, error) {
	if cfg.state == "" {
		return nil, fmt.Errorf("verify needs -state")
	}
	raw, err := os.ReadFile(cfg.state)
	if err != nil {
		return nil, err
	}
	var sf stateFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return nil, fmt.Errorf("state file: %w", err)
	}
	c := client(cfg)
	rep := &verifyReport{Mode: "verify", Addr: cfg.addr, Designs: len(sf.Designs)}
	const tol = 1e-9
	for _, want := range sf.Designs {
		t0 := time.Now()
		info, _, err := doJSON(c, http.MethodGet, cfg.addr+"/design/"+want.ID, nil, nil)
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		rep.RecoveryMsTot += ms
		if ms > rep.RecoveryMsMax {
			rep.RecoveryMsMax = ms
		}
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", want.ID, err))
			continue
		}
		wns, _ := info["wns"].(float64)
		tns, _ := info["tns"].(float64)
		edits, _ := info["edits"].(float64)
		switch {
		case math.Abs(wns-want.WNS) > tol:
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: wns %g, want %g", want.ID, wns, want.WNS))
		case math.Abs(tns-want.TNS) > tol:
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: tns %g, want %g", want.ID, tns, want.TNS))
		case int(edits) != want.Edits:
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: edits %d, want %d", want.ID, int(edits), want.Edits))
		default:
			rep.Verified++
		}
	}
	if rep.Designs > 0 {
		rep.RecoveryMsMean = rep.RecoveryMsTot / float64(rep.Designs)
	}
	if len(rep.Failures) > 0 {
		return rep, fmt.Errorf("%d of %d designs failed verification", len(rep.Failures), rep.Designs)
	}
	return rep, nil
}

// --- wait mode --------------------------------------------------------------

type waitReport struct {
	Mode     string  `json:"mode"`
	Addr     string  `json:"addr"`
	Ready    bool    `json:"ready"`
	WaitedMs float64 `json:"waited_ms"`
}

func runWait(cfg config) (*waitReport, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	start := time.Now()
	for {
		resp, err := c.Get(cfg.addr + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return &waitReport{
					Mode: "wait", Addr: cfg.addr, Ready: true,
					WaitedMs: float64(time.Since(start).Nanoseconds()) / 1e6,
				}, nil
			}
		}
		if time.Since(start) > cfg.timeout {
			return &waitReport{Mode: "wait", Addr: cfg.addr, Ready: false,
					WaitedMs: float64(time.Since(start).Nanoseconds()) / 1e6},
				fmt.Errorf("server not ready after %s", cfg.timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
