package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// mockServe mimics the rcserve design surface closely enough to exercise the
// harness: ids, per-design edit counts, stable WNS/TNS, and an optional 429
// budget to test the backpressure retry path.
type mockServe struct {
	mu      sync.Mutex
	nextID  int
	edits   map[string]int
	deny429 int // next N edit requests answer 429
}

func (m *mockServe) handler() http.Handler {
	mux := http.NewServeMux()
	write := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusOK, map[string]any{"ready": true})
	})
	mux.HandleFunc("POST /design", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		m.nextID++
		id := fmt.Sprintf("d%d", m.nextID)
		m.edits[id] = 0
		m.mu.Unlock()
		write(w, http.StatusCreated, map[string]any{"id": id, "wns": -1.5, "tns": -2.25})
	})
	mux.HandleFunc("POST /design/{id}/edit", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		if m.deny429 > 0 {
			m.deny429--
			m.mu.Unlock()
			write(w, http.StatusTooManyRequests, map[string]any{"error": "throttled"})
			return
		}
		id := r.PathValue("id")
		if _, ok := m.edits[id]; !ok {
			m.mu.Unlock()
			write(w, http.StatusNotFound, map[string]any{"error": "unknown"})
			return
		}
		var req struct {
			Edits []map[string]any `json:"edits"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		m.edits[id] += len(req.Edits)
		m.mu.Unlock()
		write(w, http.StatusOK, map[string]any{"applied": len(req.Edits)})
	})
	mux.HandleFunc("GET /design/{id}/slack", func(w http.ResponseWriter, r *http.Request) {
		write(w, http.StatusOK, map[string]any{"report": map[string]any{"wns": -1.5, "tns": -2.25}})
	})
	mux.HandleFunc("GET /design/{id}", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		n, ok := m.edits[r.PathValue("id")]
		m.mu.Unlock()
		if !ok {
			write(w, http.StatusNotFound, map[string]any{"error": "unknown"})
			return
		}
		write(w, http.StatusOK, map[string]any{
			"id": r.PathValue("id"), "wns": -1.5, "tns": -2.25, "edits": n,
		})
	})
	mux.HandleFunc("DELETE /design/{id}", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		delete(m.edits, r.PathValue("id"))
		m.mu.Unlock()
		write(w, http.StatusOK, map[string]any{"closed": true})
	})
	return mux
}

func mockConfig(t *testing.T) (config, *mockServe) {
	t.Helper()
	m := &mockServe{edits: map[string]int{}}
	ts := httptest.NewServer(m.handler())
	t.Cleanup(ts.Close)
	return config{
		addr: ts.URL, sessions: 3, ops: 20,
		editFrac: 0.6, slackFrac: 0.3,
		seed: 42, timeout: 10 * time.Second,
	}, m
}

func TestRunLoad(t *testing.T) {
	cfg, _ := mockConfig(t)
	cfg.state = filepath.Join(t.TempDir(), "state.json")
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops["create"].Count < cfg.sessions {
		t.Errorf("creates = %d, want >= %d", rep.Ops["create"].Count, cfg.sessions)
	}
	totalErrs := 0
	for kind, s := range rep.Ops {
		totalErrs += s.Errors
		if s.Count > 0 && (s.P50ms <= 0 || s.P99ms < s.P50ms || s.MaxMs < s.P99ms) {
			t.Errorf("%s stats inconsistent: %+v", kind, s)
		}
	}
	if totalErrs != 0 {
		t.Errorf("load against healthy server produced %d errors", totalErrs)
	}
	if rep.Ops["edit"].Count == 0 || rep.Ops["slack"].Count == 0 {
		t.Errorf("mixed traffic missing an op kind: %+v", rep.Ops)
	}

	raw, err := os.ReadFile(cfg.state)
	if err != nil {
		t.Fatal(err)
	}
	var sf stateFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		t.Fatal(err)
	}
	if len(sf.Designs) != cfg.sessions {
		t.Fatalf("state records %d designs, want %d", len(sf.Designs), cfg.sessions)
	}
	for _, d := range sf.Designs {
		if d.ID == "" || d.WNS != -1.5 {
			t.Errorf("state entry %+v", d)
		}
	}
}

func TestRunVerify(t *testing.T) {
	cfg, _ := mockConfig(t)
	cfg.state = filepath.Join(t.TempDir(), "state.json")
	if _, err := runLoad(cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := runVerify(cfg)
	if err != nil {
		t.Fatalf("verify against unchanged server: %v (%+v)", err, rep)
	}
	if rep.Verified != rep.Designs || rep.Designs != cfg.sessions {
		t.Errorf("verified %d of %d, want all %d", rep.Verified, rep.Designs, cfg.sessions)
	}
	if rep.RecoveryMsTot <= 0 || rep.RecoveryMsMax <= 0 {
		t.Errorf("recovery timings not recorded: %+v", rep)
	}
}

func TestRunVerifyCatchesDrift(t *testing.T) {
	cfg, _ := mockConfig(t)
	dir := t.TempDir()
	cfg.state = filepath.Join(dir, "state.json")
	if _, err := runLoad(cfg); err != nil {
		t.Fatal(err)
	}
	// Corrupt one recorded WNS: the restarted server "lost" an edit.
	raw, _ := os.ReadFile(cfg.state)
	var sf stateFile
	json.Unmarshal(raw, &sf)
	sf.Designs[0].WNS = -1.6
	out, _ := json.Marshal(sf)
	os.WriteFile(cfg.state, out, 0o644)

	rep, err := runVerify(cfg)
	if err == nil {
		t.Fatal("verify missed a WNS mismatch")
	}
	if len(rep.Failures) != 1 || rep.Verified != cfg.sessions-1 {
		t.Errorf("failures %v, verified %d", rep.Failures, rep.Verified)
	}
}

func TestLoadRetries429(t *testing.T) {
	cfg, m := mockConfig(t)
	cfg.sessions, cfg.ops = 1, 10
	cfg.editFrac, cfg.slackFrac = 1.0, 0.0 // all edits
	m.deny429 = 3
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries429 != 3 {
		t.Errorf("retries_429 = %d, want 3", rep.Retries429)
	}
	if rep.Ops["edit"].Errors != 0 {
		t.Errorf("backpressure surfaced as errors: %+v", rep.Ops["edit"])
	}
}

func TestRunWait(t *testing.T) {
	cfg, _ := mockConfig(t)
	cfg.timeout = 2 * time.Second
	rep, err := runWait(cfg)
	if err != nil || !rep.Ready {
		t.Fatalf("wait against ready server: %v, %+v", err, rep)
	}

	cfg.addr = "http://127.0.0.1:1" // nothing listens here
	cfg.timeout = 300 * time.Millisecond
	if _, err := runWait(cfg); err == nil {
		t.Fatal("wait against dead address succeeded")
	}
}

func TestPercentile(t *testing.T) {
	// The shared internal/stats convention (R-7 linear interpolation), not
	// the old nearest-rank: p50 of 1..10 interpolates to 5.5, p99 to 9.91.
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 50); got != 5.5 {
		t.Errorf("p50 = %g, want 5.5", got)
	}
	if got := percentile(sorted, 99); math.Abs(got-9.91) > 1e-12 {
		t.Errorf("p99 = %g, want 9.91", got)
	}
	if got := percentile([]float64{7}, 99); got != 7 {
		t.Errorf("p99 of singleton = %g, want 7", got)
	}
}
