package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRunCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.7, 20, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "minterms,tmin_ns,tmax_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 11 { // header + 10 rows (2..20 step 2)
		t.Fatalf("lines = %d, want 11", len(lines))
	}
	var prevMax float64
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			t.Fatalf("bad row %q", line)
		}
		tmin, err1 := strconv.ParseFloat(fields[1], 64)
		tmax, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric row %q", line)
		}
		if tmin > tmax {
			t.Errorf("row %q has tmin > tmax", line)
		}
		if tmax <= prevMax {
			t.Errorf("tmax not increasing at %q", line)
		}
		prevMax = tmax
	}
}

func TestRunFromTech(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.7, 10, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minterms") {
		t.Error("missing header")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.7, 1, false); err == nil {
		t.Error("max < 2 accepted")
	}
	if err := run(&buf, 0, 10, false); err == nil {
		t.Error("threshold 0 accepted")
	}
}
