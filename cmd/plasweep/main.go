// Command plasweep regenerates Figure 13 of the paper: upper and lower
// bounds on the response time of a PLA AND-plane polysilicon line as a
// function of the number of minterms, at a chosen threshold. Output is CSV
// (minterms, tmin_ns, tmax_ns), suitable for a log-log plot.
//
// Usage:
//
//	plasweep                       # 2..100 minterms at V=0.7, paper values
//	plasweep -threshold 0.5 -max 400
//	plasweep -from-tech            # derive element values from §V physics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/pla"
	"repro/internal/wire"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.7, "voltage threshold as a fraction of VDD")
		max       = flag.Int("max", 100, "largest minterm count (swept in steps of 2)")
		fromTech  = flag.Bool("from-tech", false, "derive element values from §V process physics instead of the paper's rounded numbers")
	)
	flag.Parse()
	if err := run(os.Stdout, *threshold, *max, *fromTech); err != nil {
		fmt.Fprintln(os.Stderr, "plasweep:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, threshold float64, max int, fromTech bool) error {
	params := pla.PaperParams()
	if fromTech {
		var err error
		params, err = pla.ParamsFromTech(wire.PaperTech())
		if err != nil {
			return err
		}
	}
	if max < 2 {
		return fmt.Errorf("-max must be at least 2")
	}
	var minterms []int
	for n := 2; n <= max; n += 2 {
		minterms = append(minterms, n)
	}
	pts, err := pla.Sweep(params, minterms, threshold)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "minterms,tmin_ns,tmax_ns")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%.6g,%.6g\n", p.Minterms, p.TMin/1000, p.TMax/1000)
	}
	last := pts[len(pts)-1]
	fmt.Fprintf(os.Stderr, "plasweep: at %d minterms the delay is guaranteed <= %.2f ns (threshold %.2g)\n",
		last.Minterms, last.TMax/1000, threshold)
	return nil
}
