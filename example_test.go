package rcdelay_test

import (
	"context"
	"fmt"

	rcdelay "repro"
)

// The paper's Figure 7 network in its own algebraic notation (eq. 18),
// reproducing the Figure 10 session.
func Example_paperFigure10() {
	tree, out, err := rcdelay.ParseExpression(
		`(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`)
	if err != nil {
		panic(err)
	}
	tm, err := rcdelay.CharacteristicTimes(tree, out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TP=%.0f TD=%.0f TR=%.2f\n", tm.TP, tm.TD, tm.TR)

	b, err := rcdelay.NewBounds(tm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TMIN(0.5)=%.2f TMAX(0.5)=%.2f\n", b.TMin(0.5), b.TMax(0.5))
	fmt.Printf("VMIN(100)=%.5f VMAX(100)=%.5f\n", b.VMin(100), b.VMax(100))
	// Output:
	// TP=419 TD=363 TR=335.17
	// TMIN(0.5)=184.23 TMAX(0.5)=314.15
	// VMIN(100)=0.16644 VMAX(100)=0.35714
}

// Parsing the paper's algebraic notation: URC R C is a uniform distributed
// line, WC chains port 2 to port 1, WB attaches a dangling branch.
func ExampleParseExpression() {
	tree, out, err := rcdelay.ParseExpression(`(URC 15 0) WC (WB (URC 8 7)) WC URC 3 9`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d nodes, output %q\n", tree.NumNodes(), tree.Name(out))
	tm, err := rcdelay.CharacteristicTimes(tree, out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TP=%.1f TD=%.1f\n", tm.TP, tm.TD)
	// Output:
	// 4 nodes, output "n3"
	// TP=281.5 TD=253.5
}

// Certifying a deadline with the OK predicate (Figure 9).
func ExampleBounds_OK() {
	tree, out, _ := rcdelay.ParseExpression(`(URC 380 0) WC (URC 0 0.04) WC URC 180 0.01`)
	b, err := rcdelay.BoundsFor(tree, out)
	if err != nil {
		panic(err)
	}
	for _, deadline := range []float64{10, 20, 60} {
		fmt.Printf("reach 0.7 by %g ps: %s\n", deadline, b.OK(0.7, deadline))
	}
	// Output:
	// reach 0.7 by 10 ps: fails
	// reach 0.7 by 20 ps: unknown
	// reach 0.7 by 60 ps: passes
}

// Building a fanout net programmatically and ranking its outputs.
func ExampleAnalyze() {
	b := rcdelay.NewBuilder("in")
	drv := b.Resistor(rcdelay.Root, "drv", 380)
	b.Capacitor(drv, 0.04)
	near := b.Line(drv, "near", 180, 0.01)
	b.Capacitor(near, 0.013)
	far := b.Line(drv, "far", 1440, 0.08)
	b.Capacitor(far, 0.013)
	b.Output(near)
	b.Output(far)
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	results, err := rcdelay.Analyze(tree)
	if err != nil {
		panic(err)
	}
	for _, r := range rcdelay.CriticalOutputs(results, 0.7) {
		fmt.Printf("%s: TD=%.1f ps, certified by %.1f ps\n",
			r.Name, r.Times.TD, r.Bounds.TMax(0.7))
	}
	// Output:
	// far: TD=135.6 ps, certified by 213.3 ps
	// near: TD=62.5 ps, certified by 149.7 ps
}

// Analyzing many networks at once: jobs fan out across GOMAXPROCS workers
// and structurally identical networks (here jobs 0 and 2, despite different
// node names) share one characteristic-time computation via the
// content-hash cache. Results always come back in job order.
func ExampleAnalyzeBatch() {
	deck := func(name string) string {
		return ".input in\nR1 in " + name + " 15\nC1 " + name + " 0 2\n.output " + name + "\n"
	}
	var jobs []rcdelay.BatchJob
	for i, src := range []string{deck("a"), deck("b") + "C2 b 0 5\n", deck("z")} {
		tree, err := rcdelay.ParseNetlist(src)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, rcdelay.BatchJob{
			Tree:       tree,
			Tag:        fmt.Sprintf("job%d", i),
			Thresholds: []float64{0.9},
		})
	}
	for _, res := range rcdelay.AnalyzeBatch(context.Background(), jobs) {
		if res.Err != nil {
			panic(res.Err)
		}
		out := res.Outputs[0]
		fmt.Printf("%s: %s TD=%g TMax(0.9)=%.1f\n",
			res.Tag, out.Name, out.Times.TD, out.Delay[0].TMax)
	}
	// Output:
	// job0: a TD=30 TMax(0.9)=69.1
	// job1: b TD=105 TMax(0.9)=241.8
	// job2: z TD=30 TMax(0.9)=69.1
}

// Interactive probing: wrap a tree in an EditTree and every local edit plus
// re-query costs O(depth) instead of a full O(n) reanalysis — the engine
// behind opt's bisection loops and rcserve's /session endpoints.
func ExampleNewEditTree() {
	tree, err := rcdelay.ParseNetlist(
		".input in\nR1 in mid 15\nC1 mid 0 2\nR2 mid far 8\nC2 far 0 7\n.output far\n")
	if err != nil {
		panic(err)
	}
	et := rcdelay.NewEditTree(tree)
	far, _ := et.Lookup("far")
	mid, _ := et.Lookup("mid")

	tm, _ := et.Times(far)
	fmt.Printf("as parsed:      TD=%g\n", tm.TD)

	et.SetResistance(mid, 30) // probe: driver twice as weak
	tm, _ = et.Times(far)
	fmt.Printf("R1 15 -> 30:    TD=%g\n", tm.TD)

	et.SetCapacitance(far, 3) // probe: lighter far load
	tm, _ = et.Times(far)
	fmt.Printf("C2 7 -> 3:      TD=%g\n", tm.TD)
	// Output:
	// as parsed:      TD=191
	// R1 15 -> 30:    TD=326
	// C2 7 -> 3:      TD=174
}
