package rctree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// scaleTree rebuilds a tree with every resistance multiplied by ra and
// every capacitance by ca.
func scaleTree(t *Tree, ra, ca float64) *Tree {
	b := NewBuilder(t.Name(Root))
	ids := map[NodeID]NodeID{Root: Root}
	t.Walk(func(id NodeID) {
		if id == Root {
			if c := t.NodeCap(id); c > 0 {
				b.Capacitor(Root, c*ca)
			}
			return
		}
		kind, r, c := t.Edge(id)
		var nid NodeID
		switch kind {
		case EdgeResistor:
			nid = b.Resistor(ids[t.Parent(id)], t.Name(id), r*ra)
		case EdgeLine:
			nid = b.Line(ids[t.Parent(id)], t.Name(id), r*ra, c*ca)
		}
		ids[id] = nid
		if c := t.NodeCap(id); c > 0 {
			b.Capacitor(nid, c*ca)
		}
	})
	for _, o := range t.Outputs() {
		b.Output(ids[o])
	}
	scaled, err := b.Build()
	if err != nil {
		panic(err)
	}
	return scaled
}

// TestQuickScalingLaw: scaling R by a and C by b scales every
// characteristic time by a·b and Ree by a — dimensional analysis as a
// property test.
func TestQuickScalingLaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 1+rng.Intn(20))
		ra := 0.1 + 10*rng.Float64()
		ca := 0.1 + 10*rng.Float64()
		scaled := scaleTree(tr, ra, ca)
		for _, e := range tr.Outputs() {
			orig, err := tr.CharacteristicTimes(e)
			if err != nil {
				return false
			}
			got, err := scaled.CharacteristicTimes(e)
			if err != nil {
				return false
			}
			k := ra * ca
			if !almostEq(got.TP, orig.TP*k, 1e-9) ||
				!almostEq(got.TD, orig.TD*k, 1e-9) ||
				!almostEq(got.TR, orig.TR*k, 1e-9) ||
				!almostEq(got.Ree, orig.Ree*ra, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddedCapacitanceMonotone: attaching extra capacitance anywhere
// can only increase TP and TD (weakly), never decrease them.
func TestQuickAddedCapacitanceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(20))
		e := tr.Outputs()[rng.Intn(len(tr.Outputs()))]
		before, err := tr.CharacteristicTimes(e)
		if err != nil {
			return false
		}
		// Rebuild with extra capacitance at a random non-root node.
		extraAt := NodeID(1 + rng.Intn(tr.NumNodes()-1))
		extra := rng.Float64() * 10
		b := NewBuilder(tr.Name(Root))
		ids := map[NodeID]NodeID{Root: Root}
		tr.Walk(func(id NodeID) {
			if id == Root {
				return
			}
			kind, r, c := tr.Edge(id)
			var nid NodeID
			if kind == EdgeLine {
				nid = b.Line(ids[tr.Parent(id)], tr.Name(id), r, c)
			} else {
				nid = b.Resistor(ids[tr.Parent(id)], tr.Name(id), r)
			}
			ids[id] = nid
			if c := tr.NodeCap(id); c > 0 {
				b.Capacitor(nid, c)
			}
			if id == extraAt {
				b.Capacitor(nid, extra)
			}
		})
		b.Output(ids[e])
		bigger, err := b.Build()
		if err != nil {
			return false
		}
		after, err := bigger.CharacteristicTimes(ids[e])
		if err != nil {
			return false
		}
		return after.TP >= before.TP-1e-12 && after.TD >= before.TD-1e-12 &&
			almostEq(after.Ree, before.Ree, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickCommonResistanceBound: Rke <= min(Rkk, Ree) for every node pair,
// the §III inequality the bounds rest on.
func TestQuickCommonResistanceBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(25))
		n := tr.NumNodes()
		for trial := 0; trial < 20; trial++ {
			k := NodeID(rng.Intn(n))
			e := NodeID(rng.Intn(n))
			rke := tr.commonResistance(k, e)
			if rke > tr.PathResistance(k)+1e-12 || rke > tr.PathResistance(e)+1e-12 {
				return false
			}
			// Symmetry.
			if !almostEq(rke, tr.commonResistance(e, k), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickSideBranchInvariance: grafting a new side branch off the
// input→e path never changes Ree and never decreases TDe or TP.
func TestQuickSideBranchInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(15))
		e := tr.Outputs()[0]
		before, err := tr.CharacteristicTimes(e)
		if err != nil {
			return false
		}
		// Rebuild and graft a branch at a random path node.
		path := tr.PathTo(e)
		graftAt := path[rng.Intn(len(path))]
		b := NewBuilder(tr.Name(Root))
		ids := map[NodeID]NodeID{Root: Root}
		tr.Walk(func(id NodeID) {
			if id == Root {
				return
			}
			kind, r, c := tr.Edge(id)
			if kind == EdgeLine {
				ids[id] = b.Line(ids[tr.Parent(id)], tr.Name(id), r, c)
			} else {
				ids[id] = b.Resistor(ids[tr.Parent(id)], tr.Name(id), r)
			}
			if nc := tr.NodeCap(id); nc > 0 {
				b.Capacitor(ids[id], nc)
			}
		})
		graft := b.Resistor(ids[graftAt], "graft", 1+rng.Float64()*50)
		b.Capacitor(graft, rng.Float64()*5)
		b.Output(ids[e])
		grafted, err := b.Build()
		if err != nil {
			return false
		}
		after, err := grafted.CharacteristicTimes(ids[e])
		if err != nil {
			return false
		}
		return almostEq(after.Ree, before.Ree, 1e-12) &&
			after.TD >= before.TD-1e-12 && after.TP >= before.TP-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickDepthAndSize sanity-checks structural accessors against a naive
// recount on random trees.
func TestQuickDepthAndSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 1+rng.Intn(30))
		count := 0
		maxDepth := 0
		var rec func(id NodeID, d int)
		rec = func(id NodeID, d int) {
			count++
			if d > maxDepth {
				maxDepth = d
			}
			for _, c := range tr.Children(id) {
				rec(c, d+1)
			}
		}
		rec(Root, 0)
		return count == tr.NumNodes() && maxDepth == tr.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickPathResistanceAdditive: Rkk equals the sum of edge resistances
// along PathTo, for every node.
func TestQuickPathResistanceAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 1+rng.Intn(30))
		for id := 0; id < tr.NumNodes(); id++ {
			var sum float64
			for _, p := range tr.PathTo(NodeID(id)) {
				_, r, _ := tr.Edge(p)
				if p != Root {
					sum += r
				}
			}
			if math.Abs(sum-tr.PathResistance(NodeID(id))) > 1e-9*(1+sum) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
