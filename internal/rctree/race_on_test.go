//go:build race

package rctree

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation-count assertions are skipped under it.
const raceEnabled = true
