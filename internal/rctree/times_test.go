package rctree

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-30 {
		return true
	}
	return math.Abs(a-b) <= relTol*scale
}

// TestSingleRC checks the most basic network: one resistor, one capacitor.
// All three characteristic times equal RC.
func TestSingleRC(t *testing.T) {
	b := NewBuilder("in")
	n := b.Resistor(Root, "n", 100)
	b.Capacitor(n, 0.5)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tr.CharacteristicTimes(n)
	if err != nil {
		t.Fatal(err)
	}
	const rc = 50.0
	if tm.TP != rc || tm.TD != rc || tm.TR != rc {
		t.Errorf("Times = %+v, want all %g", tm, rc)
	}
	if tm.Ree != 100 {
		t.Errorf("Ree = %g, want 100", tm.Ree)
	}
}

// TestUniformLineClosedForm verifies the paper's §III closed forms for a
// single uniform RC line: TP = TD = RC/2 and TR = RC/3.
func TestUniformLineClosedForm(t *testing.T) {
	const R, C = 120.0, 7.0
	b := NewBuilder("in")
	n := b.Line(Root, "n", R, C)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tr.CharacteristicTimes(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.TP, R*C/2, 1e-12) {
		t.Errorf("TP = %g, want RC/2 = %g", tm.TP, R*C/2)
	}
	if !almostEq(tm.TD, R*C/2, 1e-12) {
		t.Errorf("TD = %g, want RC/2 = %g", tm.TD, R*C/2)
	}
	if !almostEq(tm.TR, R*C/3, 1e-12) {
		t.Errorf("TR = %g, want RC/3 = %g", tm.TR, R*C/3)
	}
}

// TestLineWithoutSideBranchesTPEqualsTD: for RC trees without side branches
// (nonuniform RC "lines"), TDe at the far output equals TP (§III).
func TestLineWithoutSideBranchesTPEqualsTD(t *testing.T) {
	b := NewBuilder("in")
	n1 := b.Line(Root, "n1", 10, 2)
	n2 := b.Resistor(n1, "n2", 5)
	b.Capacitor(n2, 3)
	n3 := b.Line(n2, "n3", 20, 1)
	b.Output(n3)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tr.CharacteristicTimes(n3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.TP, tm.TD, 1e-12) {
		t.Errorf("chain network: TD=%g != TP=%g", tm.TD, tm.TP)
	}
}

// TestFig3Times computes the characteristic times of the Figure 3 network by
// hand and compares.
func TestFig3Times(t *testing.T) {
	tr, _, e := fig3Tree(t)
	tm, err := tr.CharacteristicTimes(e)
	if err != nil {
		t.Fatal(err)
	}
	// Caps: at k (Rkk=7, Rke=3), at leaf (Rkk=15, Rke=3), at e (Rkk=19, Rke=19).
	wantTP := 7.0 + 15 + 19
	wantTD := 3.0 + 3 + 19
	wantTR := (9.0 + 9 + 361) / 19
	if !almostEq(tm.TP, wantTP, 1e-12) {
		t.Errorf("TP = %g, want %g", tm.TP, wantTP)
	}
	if !almostEq(tm.TD, wantTD, 1e-12) {
		t.Errorf("TD = %g, want %g", tm.TD, wantTD)
	}
	if !almostEq(tm.TR, wantTR, 1e-12) {
		t.Errorf("TR = %g, want %g", tm.TR, wantTR)
	}
}

// TestSideBranchLineByHand exercises the off-path line integrals: a line in a
// side branch contributes its whole capacitance at the branch resistance.
func TestSideBranchLineByHand(t *testing.T) {
	b := NewBuilder("in")
	a := b.Resistor(Root, "a", 10)
	e := b.Resistor(a, "e", 5)
	b.Capacitor(e, 2)
	br := b.Line(a, "br", 8, 3) // side branch off node a
	_ = br
	b.Output(e)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tr.CharacteristicTimes(e)
	if err != nil {
		t.Fatal(err)
	}
	// Line: Rkk varies 10..18 -> TP term 3*(10+8/2)=42. Cap at e: 15*2=30.
	if want := 42.0 + 30; !almostEq(tm.TP, want, 1e-12) {
		t.Errorf("TP = %g, want %g", tm.TP, want)
	}
	// Off-path line common resistance = 10: TD term 30; cap at e: 30.
	if want := 30.0 + 30; !almostEq(tm.TD, want, 1e-12) {
		t.Errorf("TD = %g, want %g", tm.TD, want)
	}
	// TR numerator: 3*100 + 2*225 = 750; Ree = 15.
	if want := 750.0 / 15; !almostEq(tm.TR, want, 1e-12) {
		t.Errorf("TR = %g, want %g", tm.TR, want)
	}
}

// TestFastMatchesReference cross-checks the O(n) DFS implementation against
// the explicit per-capacitor reference on randomized trees, at every output.
func TestFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 1+rng.Intn(40))
		for _, e := range tr.Outputs() {
			fast, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatalf("trial %d: fast: %v", trial, err)
			}
			ref, err := tr.CharacteristicTimesRef(e)
			if err != nil {
				t.Fatalf("trial %d: ref: %v", trial, err)
			}
			for _, f := range []struct {
				name string
				a, b float64
			}{
				{"TP", fast.TP, ref.TP},
				{"TD", fast.TD, ref.TD},
				{"TR", fast.TR, ref.TR},
				{"Ree", fast.Ree, ref.Ree},
			} {
				if !almostEq(f.a, f.b, 1e-9) {
					t.Fatalf("trial %d output %d: %s fast=%g ref=%g\n%s",
						trial, e, f.name, f.a, f.b, tr)
				}
			}
		}
	}
}

// TestOrderingInvariant property-tests eq. 7 (TR <= TD <= TP) plus
// positivity on random trees.
func TestOrderingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		tr := randomTree(rng, 1+rng.Intn(60))
		for _, e := range tr.Outputs() {
			tm, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if tm.TR < 0 || tm.TR > tm.TD*(1+1e-12) || tm.TD > tm.TP*(1+1e-12) {
				t.Fatalf("trial %d: ordering violated: %+v", trial, tm)
			}
		}
	}
}

// TestTPTotalMatchesCharacteristic verifies the standalone TP pass agrees
// with the per-output computation (TP is output independent).
func TestTPTotalMatchesCharacteristic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 1+rng.Intn(30))
		tp := tr.TPTotal()
		for _, e := range tr.Outputs() {
			tm, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(tp, tm.TP, 1e-9) {
				t.Fatalf("trial %d: TPTotal=%g, per-output TP=%g", trial, tp, tm.TP)
			}
		}
	}
}

// TestAggregateArrays checks the exported per-node aggregates against their
// definitional loops: PathResistances against PathResistance, and
// SubtreeCaps against an explicit descendant sum.
func TestAggregateArrays(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 1+rng.Intn(40))
		rkk := tr.PathResistances()
		sub := tr.SubtreeCaps()
		var total float64
		for id := 0; id < tr.NumNodes(); id++ {
			if want := tr.PathResistance(NodeID(id)); !almostEq(rkk[id], want, 1e-12) {
				t.Fatalf("trial %d node %d: PathResistances=%g, want %g", trial, id, rkk[id], want)
			}
			var want float64
			for k := 0; k < tr.NumNodes(); k++ {
				if tr.IsAncestor(NodeID(id), NodeID(k)) {
					_, _, c := tr.Edge(NodeID(k))
					want += tr.NodeCap(NodeID(k))
					if k != 0 {
						want += c
					}
				}
			}
			if id == 0 {
				total = want
			}
			if !almostEq(sub[id], want, 1e-12) {
				t.Fatalf("trial %d node %d: SubtreeCaps=%g, want %g", trial, id, sub[id], want)
			}
		}
		if !almostEq(total, tr.TotalCap(), 1e-12) {
			t.Fatalf("trial %d: SubtreeCaps[0]=%g, TotalCap=%g", trial, total, tr.TotalCap())
		}
	}
}

// TestElmoreAllMatchesPerOutput checks the two-pass all-outputs Elmore
// algorithm against the per-output DFS.
func TestElmoreAllMatchesPerOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 150; trial++ {
		tr := randomTree(rng, 1+rng.Intn(40))
		td := tr.ElmoreAll()
		for id := 1; id < tr.NumNodes(); id++ {
			tm, err := tr.CharacteristicTimes(NodeID(id))
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(td[id], tm.TD, 1e-9) {
				t.Fatalf("trial %d node %d: ElmoreAll=%g, TD=%g\n%s",
					trial, id, td[id], tm.TD, tr)
			}
		}
	}
}

// TestAllCharacteristicTimes covers the multi-output convenience wrapper.
func TestAllCharacteristicTimes(t *testing.T) {
	tr, _, e := fig3Tree(t)
	all, err := tr.AllCharacteristicTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("got %d outputs, want 1", len(all))
	}
	tm, ok := all[e]
	if !ok {
		t.Fatal("output e missing from result")
	}
	want, _ := tr.CharacteristicTimes(e)
	if tm != want {
		t.Errorf("AllCharacteristicTimes = %+v, want %+v", tm, want)
	}
}

func TestCharacteristicTimesOutOfRange(t *testing.T) {
	tr, _, _ := fig3Tree(t)
	if _, err := tr.CharacteristicTimes(NodeID(999)); err == nil {
		t.Error("expected error for out-of-range output")
	}
	if _, err := tr.CharacteristicTimesRef(NodeID(-1)); err == nil {
		t.Error("expected error for negative output")
	}
}

func TestTimesValidate(t *testing.T) {
	good := Times{TP: 3, TD: 2, TR: 1, Ree: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid Times rejected: %v", err)
	}
	for _, bad := range []Times{
		{TP: 1, TD: 2, TR: 0.5, Ree: 1},  // TD > TP
		{TP: 3, TD: 1, TR: 2, Ree: 1},    // TR > TD
		{TP: -1, TD: -2, TR: -3, Ree: 1}, // negative
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid Times %+v accepted", bad)
		}
	}
}

// randomTree builds a deterministic random tree directly (kept local to avoid
// an import cycle with the randnet package, which itself imports rctree).
func randomTree(rng *rand.Rand, n int) *Tree {
	b := NewBuilder("in")
	ids := []NodeID{Root}
	placed := false
	for i := 0; i < n; i++ {
		parent := ids[rng.Intn(len(ids))]
		r := rng.Float64()*100 + 0.001
		var id NodeID
		if rng.Float64() < 0.4 {
			id = b.Line(parent, "", r, rng.Float64()*10+1e-6)
			placed = true
		} else {
			id = b.Resistor(parent, "", r)
		}
		if rng.Float64() < 0.7 {
			b.Capacitor(id, rng.Float64()*10+1e-6)
			placed = true
		}
		ids = append(ids, id)
	}
	if !placed {
		b.Capacitor(ids[len(ids)-1], 1)
	}
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tr
}
