//go:build !race

package rctree

const raceEnabled = false
