package rctree

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomArenaTree builds a random valid tree: random topology with a bias
// toward chains (deep) or stars (wide), mixed resistor/line edges, scattered
// lumped caps and outputs.
func randomArenaTree(t *testing.T, rng *rand.Rand, nodes int) *Tree {
	t.Helper()
	b := NewBuilder("in")
	ids := []NodeID{Root}
	shape := rng.Intn(3) // 0: random, 1: chain-biased, 2: star-biased
	for len(ids) < nodes {
		var parent NodeID
		switch shape {
		case 1:
			parent = ids[len(ids)-1]
		case 2:
			parent = Root
		default:
			parent = ids[rng.Intn(len(ids))]
		}
		var id NodeID
		if rng.Intn(3) == 0 {
			id = b.Line(parent, "", 0.5+rng.Float64()*10, 0.1+rng.Float64()*5)
		} else {
			id = b.Resistor(parent, "", 0.5+rng.Float64()*10)
		}
		if rng.Intn(2) == 0 {
			b.Capacitor(id, rng.Float64()*3)
		}
		ids = append(ids, id)
	}
	b.Capacitor(Root, 0.1) // guarantee some capacitance
	for _, id := range ids[1:] {
		if rng.Intn(4) == 0 {
			b.Output(id)
		}
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("random tree invalid: %v", err)
	}
	return tree
}

// TestArenaTimesMatchTree pins the arena pass to the pointer-tree pass: the
// two implementations walk nodes in the same order, so the sums must agree
// exactly, for every output of many random trees.
func TestArenaTimesMatchTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Scratch
	for trial := 0; trial < 200; trial++ {
		tree := randomArenaTree(t, rng, 2+rng.Intn(40))
		a := NewArena(tree)
		if a.Len() != tree.NumNodes() {
			t.Fatalf("arena len %d != tree %d", a.Len(), tree.NumNodes())
		}
		for _, e := range tree.Outputs() {
			want, err := tree.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.TimesInto(int32(e), &s)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d output %d: arena %+v != tree %+v", trial, e, got, want)
			}
		}
	}
}

// TestArenaRoundTrip checks build → materialize → rebuild is idempotent and
// lossless: the materialized tree reproduces names, structure, outputs and
// characteristic times, and its arena deep-equals the original.
func TestArenaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tree := randomArenaTree(t, rng, 2+rng.Intn(30))
		a := NewArena(tree)
		back, err := a.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize: %v", trial, err)
		}
		if back.String() != tree.String() {
			t.Fatalf("trial %d: materialized tree differs:\n%s\nvs\n%s", trial, back.String(), tree.String())
		}
		if !reflect.DeepEqual(back.Outputs(), tree.Outputs()) {
			t.Fatalf("trial %d: outputs %v -> %v", trial, tree.Outputs(), back.Outputs())
		}
		a2 := NewArena(back)
		if !reflect.DeepEqual(a, a2) {
			t.Fatalf("trial %d: arena round trip not idempotent", trial)
		}
	}
}

func TestArenaLookup(t *testing.T) {
	b := NewBuilder("in")
	n1 := b.Resistor(Root, "mid", 2)
	b.Line(n1, "far", 3, 1)
	b.Capacitor(n1, 1)
	b.Output(n1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(tree)
	id, ok := a.Lookup("far")
	if !ok || a.Names[id] != "far" {
		t.Fatalf("Lookup(far) = %d, %v", id, ok)
	}
	if _, ok := a.Lookup("ghost"); ok {
		t.Error("Lookup(ghost) succeeded")
	}
}

func TestArenaErrors(t *testing.T) {
	if _, err := (&Arena{}).Materialize(); err == nil {
		t.Error("empty arena materialized")
	}
	b := NewBuilder("in")
	b.Capacitor(b.Resistor(Root, "o", 1), 1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(tree)
	var s Scratch
	if _, err := a.TimesInto(-1, &s); err == nil {
		t.Error("negative output accepted")
	}
	if _, err := a.TimesInto(int32(a.Len()), &s); err == nil {
		t.Error("out-of-range output accepted")
	}
	dup := NewArena(tree)
	dup.Names[1] = dup.Names[0]
	if _, err := dup.Materialize(); err == nil {
		t.Error("duplicate names materialized")
	}
}

// TestTimesFlatZeroAlloc asserts the flat pass allocates nothing once the
// scratch has grown — the property the design-level hot path depends on.
func TestTimesFlatZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	tree := randomArenaTree(t, rand.New(rand.NewSource(3)), 64)
	a := NewArena(tree)
	var s Scratch
	e := a.Outputs[0]
	if _, err := a.TimesInto(e, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := a.TimesInto(e, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TimesInto allocates %v times per run on the steady state", allocs)
	}
}
