package rctree

import (
	"math"
	"strings"
	"testing"
)

// fig3Tree builds the network of Figure 3:
//
//	in -R1- a -R2- b ; b -R3- k -R4- leaf ; b -R5- e
func fig3Tree(t *testing.T) (*Tree, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder("in")
	a := b.Resistor(Root, "a", 1)
	bb := b.Resistor(a, "b", 2)
	k := b.Resistor(bb, "k", 4)
	leaf := b.Resistor(k, "leaf", 8)
	e := b.Resistor(bb, "e", 16)
	b.Capacitor(k, 1)
	b.Capacitor(leaf, 1)
	b.Capacitor(e, 1)
	b.Output(e)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr, k, e
}

func TestFig3ResistanceTerms(t *testing.T) {
	tr, k, e := fig3Tree(t)
	if got := tr.PathResistance(k); got != 1+2+4 {
		t.Errorf("Rkk = %g, want 7", got)
	}
	if got := tr.PathResistance(e); got != 1+2+16 {
		t.Errorf("Ree = %g, want 19", got)
	}
	if got := tr.commonResistance(k, e); got != 1+2 {
		t.Errorf("Rke = %g, want 3", got)
	}
	// Rke <= Rkk and Rke <= Ree (paper, §III).
	if tr.commonResistance(k, e) > tr.PathResistance(k) {
		t.Error("Rke > Rkk")
	}
	if tr.commonResistance(k, e) > tr.PathResistance(e) {
		t.Error("Rke > Ree")
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("")
	n1 := b.Resistor(Root, "n1", 10)
	b.Capacitor(n1, 2)
	b.Capacitor(n1, 3) // accumulates
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tr.Name(Root) != "in" {
		t.Errorf("default input name = %q, want in", tr.Name(Root))
	}
	if got := tr.NodeCap(n1); got != 5 {
		t.Errorf("NodeCap = %g, want 5", got)
	}
	if got := tr.TotalCap(); got != 5 {
		t.Errorf("TotalCap = %g, want 5", got)
	}
	if got := tr.TotalRes(); got != 10 {
		t.Errorf("TotalRes = %g, want 10", got)
	}
	// No explicit output: the single leaf becomes one.
	if len(tr.Outputs()) != 1 || tr.Outputs()[0] != n1 {
		t.Errorf("Outputs = %v, want [%d]", tr.Outputs(), n1)
	}
}

func TestBuilderDegenerateLines(t *testing.T) {
	b := NewBuilder("in")
	// C=0 line becomes a resistor edge.
	n1 := b.Line(Root, "n1", 10, 0)
	// R=0 line becomes a lumped capacitor at the parent.
	ret := b.Line(n1, "ignored", 0, 4)
	if ret != n1 {
		t.Errorf("zero-R line should return parent %d, got %d", n1, ret)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	kind, r, c := tr.Edge(n1)
	if kind != EdgeResistor || r != 10 || c != 0 {
		t.Errorf("edge = %v R=%g C=%g, want resistor 10 0", kind, r, c)
	}
	if got := tr.NodeCap(n1); got != 4 {
		t.Errorf("NodeCap = %g, want 4", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"negative resistor", func(b *Builder) {
			n := b.Resistor(Root, "x", -1)
			b.Capacitor(n, 1)
		}, "R > 0"},
		{"duplicate name", func(b *Builder) {
			b.Resistor(Root, "x", 1)
			n := b.Resistor(Root, "x", 2)
			b.Capacitor(n, 1)
		}, "duplicate"},
		{"negative capacitor", func(b *Builder) {
			n := b.Resistor(Root, "x", 1)
			b.Capacitor(n, -2)
		}, "C >= 0"},
		{"zero-zero line", func(b *Builder) {
			n := b.Line(Root, "x", 0, 0)
			b.Capacitor(n, 1)
		}, "R=0 and C=0"},
		{"double output", func(b *Builder) {
			n := b.Resistor(Root, "x", 1)
			b.Capacitor(n, 1)
			b.Output(n)
			b.Output(n)
		}, "twice"},
		{"no capacitance", func(b *Builder) {
			b.Resistor(Root, "x", 1)
		}, "no capacitance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("in")
			tc.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLookupAndNames(t *testing.T) {
	tr, k, e := fig3Tree(t)
	if id, ok := tr.Lookup("k"); !ok || id != k {
		t.Errorf("Lookup(k) = %d,%v", id, ok)
	}
	if id, ok := tr.Lookup("e"); !ok || id != e {
		t.Errorf("Lookup(e) = %d,%v", id, ok)
	}
	if _, ok := tr.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
}

func TestPathTo(t *testing.T) {
	tr, k, _ := fig3Tree(t)
	path := tr.PathTo(k)
	want := []string{"in", "a", "b", "k"}
	if len(path) != len(want) {
		t.Fatalf("path length %d, want %d", len(path), len(want))
	}
	for i, id := range path {
		if tr.Name(id) != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, tr.Name(id), want[i])
		}
	}
}

func TestIsAncestorAndCommonAncestor(t *testing.T) {
	tr, k, e := fig3Tree(t)
	bID, _ := tr.Lookup("b")
	if !tr.IsAncestor(Root, k) {
		t.Error("root should be ancestor of k")
	}
	if !tr.IsAncestor(k, k) {
		t.Error("IsAncestor should be reflexive")
	}
	if tr.IsAncestor(k, e) {
		t.Error("k is not an ancestor of e")
	}
	if got := tr.CommonAncestor(k, e); got != bID {
		t.Errorf("CommonAncestor(k,e) = %q, want b", tr.Name(got))
	}
	if got := tr.CommonAncestor(k, k); got != k {
		t.Errorf("CommonAncestor(k,k) = %q, want k", tr.Name(got))
	}
}

func TestDepthAndWalkOrder(t *testing.T) {
	tr, _, _ := fig3Tree(t)
	if got := tr.Depth(); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	seen := make(map[NodeID]bool)
	tr.Walk(func(id NodeID) {
		if id != Root && !seen[tr.Parent(id)] {
			t.Errorf("node %q visited before its parent", tr.Name(id))
		}
		seen[id] = true
	})
	if len(seen) != tr.NumNodes() {
		t.Errorf("Walk visited %d nodes, want %d", len(seen), tr.NumNodes())
	}
}

func TestStringRendering(t *testing.T) {
	tr, _, _ := fig3Tree(t)
	s := tr.String()
	for _, want := range []string{"in (input)", "R=16", "*output*", "[C=1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestValidateRejectsCorruptTree(t *testing.T) {
	tr, _, _ := fig3Tree(t)
	// Corrupt a copy's parent pointer to form a forward reference.
	bad := *tr
	bad.nodes = append([]node(nil), tr.nodes...)
	bad.nodes[1].parent = 3
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted corrupt parent ordering")
	}
}

func TestTotalCapIncludesLines(t *testing.T) {
	b := NewBuilder("in")
	n1 := b.Line(Root, "n1", 10, 3)
	b.Capacitor(n1, 2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalCap(); math.Abs(got-5) > 1e-12 {
		t.Errorf("TotalCap = %g, want 5", got)
	}
}
