package rctree

import (
	"math/rand"
	"testing"
)

// rebuildPerturbed copies the tree with the element at node `at` perturbed:
// dC added to its lumped (or line) capacitance, dR to its edge resistance.
func rebuildPerturbed(t *Tree, at NodeID, dR, dC float64, lineC bool) *Tree {
	b := NewBuilder(t.Name(Root))
	ids := map[NodeID]NodeID{Root: Root}
	t.Walk(func(id NodeID) {
		if id == Root {
			if c := t.NodeCap(id); c > 0 {
				b.Capacitor(Root, c)
			}
			return
		}
		kind, r, c := t.Edge(id)
		if id == at {
			r += dR
			if lineC {
				c += dC
			}
		}
		var nid NodeID
		if kind == EdgeLine {
			nid = b.Line(ids[t.Parent(id)], t.Name(id), r, c)
		} else {
			nid = b.Resistor(ids[t.Parent(id)], t.Name(id), r)
		}
		ids[id] = nid
		nc := t.NodeCap(id)
		if id == at && !lineC {
			nc += dC
		}
		if nc > 0 {
			b.Capacitor(nid, nc)
		}
	})
	for _, o := range t.Outputs() {
		b.Output(ids[o])
	}
	out, err := b.Build()
	if err != nil {
		panic(err)
	}
	return out
}

// TestSensitivitiesFiniteDifference validates every gradient against exact
// finite differences (the times are linear in each element, so differences
// are exact, not approximate) on random trees.
func TestSensitivitiesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		tr := randomTree(rng, 2+rng.Intn(20))
		e := tr.Outputs()[rng.Intn(len(tr.Outputs()))]
		sens, err := tr.Sensitivities(e)
		if err != nil {
			t.Fatal(err)
		}
		base, err := tr.CharacteristicTimes(e)
		if err != nil {
			t.Fatal(err)
		}
		const h = 0.37 // linearity makes any step exact
		for id := 1; id < tr.NumNodes(); id++ {
			node := NodeID(id)
			kind, _, _ := tr.Edge(node)
			isLine := kind == EdgeLine

			// Capacitance derivative (lumped node cap, or line total cap).
			pert := rebuildPerturbed(tr, node, 0, h, isLine)
			after, err := pert.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			gotTD := (after.TD - base.TD) / h
			gotTP := (after.TP - base.TP) / h
			if !almostEq(gotTD, sens.DTDdC[id], 1e-7) {
				t.Fatalf("trial %d node %d (line=%v): dTD/dC fd=%g analytic=%g\n%s",
					trial, id, isLine, gotTD, sens.DTDdC[id], tr)
			}
			if !almostEq(gotTP, sens.DTPdC[id], 1e-7) {
				t.Fatalf("trial %d node %d: dTP/dC fd=%g analytic=%g", trial, id, gotTP, sens.DTPdC[id])
			}

			// Resistance derivative.
			pert = rebuildPerturbed(tr, node, h, 0, isLine)
			after, err = pert.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			gotTD = (after.TD - base.TD) / h
			gotTP = (after.TP - base.TP) / h
			if !almostEq(gotTD, sens.DTDdR[id], 1e-7) {
				t.Fatalf("trial %d node %d (line=%v): dTD/dR fd=%g analytic=%g\n%s",
					trial, id, isLine, gotTD, sens.DTDdR[id], tr)
			}
			if !almostEq(gotTP, sens.DTPdR[id], 1e-7) {
				t.Fatalf("trial %d node %d: dTP/dR fd=%g analytic=%g", trial, id, gotTP, sens.DTPdR[id])
			}
		}
	}
}

// TestSensitivityStructure: qualitative facts — off-path resistors have zero
// TD sensitivity; capacitance sensitivity equals common-path resistance;
// everything is nonnegative.
func TestSensitivityStructure(t *testing.T) {
	tr, k, e := fig3Tree(t)
	sens, err := tr.Sensitivities(e)
	if err != nil {
		t.Fatal(err)
	}
	// k and leaf are off the input->e path.
	leaf, _ := tr.Lookup("leaf")
	for _, off := range []NodeID{k, leaf} {
		if sens.DTDdR[off] != 0 {
			t.Errorf("off-path node %q has dTD/dR = %g, want 0", tr.Name(off), sens.DTDdR[off])
		}
	}
	// Capacitance sensitivity at k is Rke = 3.
	if sens.DTDdC[k] != 3 {
		t.Errorf("dTD/dC at k = %g, want 3", sens.DTDdC[k])
	}
	// At the output it is Ree = 19.
	if sens.DTDdC[e] != 19 {
		t.Errorf("dTD/dC at e = %g, want 19", sens.DTDdC[e])
	}
	for id := 1; id < tr.NumNodes(); id++ {
		if sens.DTDdC[id] < 0 || sens.DTPdC[id] < 0 || sens.DTDdR[id] < 0 || sens.DTPdR[id] < 0 {
			t.Errorf("negative sensitivity at node %d", id)
		}
		if sens.DTDdC[id] > sens.DTPdC[id] {
			t.Errorf("node %d: dTD/dC %g exceeds dTP/dC %g (Rke > Rkk impossible)",
				id, sens.DTDdC[id], sens.DTPdC[id])
		}
	}
}

func TestSensitivitiesOutOfRange(t *testing.T) {
	tr, _, _ := fig3Tree(t)
	if _, err := tr.Sensitivities(NodeID(99)); err == nil {
		t.Error("out-of-range output accepted")
	}
}
