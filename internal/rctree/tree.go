// Package rctree models RC tree networks as defined by Penfield and
// Rubinstein: a resistor tree with no resistor to ground, driven at a single
// input node, where every node may carry a lumped capacitor to ground and any
// resistor may be replaced by a distributed uniform RC line.
//
// The package provides a builder for constructing trees, structural
// validation, traversal helpers, and the computation of the three
// characteristic times (TP, TDe, TRe) for any output, including the
// closed-form contributions of distributed lines.
package rctree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Tree. The input (root) node of a valid
// tree is always NodeID 0.
type NodeID int

// Root is the NodeID of the input node of every tree built by Builder.
const Root NodeID = 0

// EdgeKind distinguishes the element connecting a node to its parent.
type EdgeKind int

const (
	// EdgeNone marks the root, which has no parent element.
	EdgeNone EdgeKind = iota
	// EdgeResistor is a lumped resistor (R > 0, C == 0).
	EdgeResistor
	// EdgeLine is a distributed uniform RC line (R >= 0, C >= 0).
	EdgeLine
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeNone:
		return "none"
	case EdgeResistor:
		return "resistor"
	case EdgeLine:
		return "line"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// node is the internal per-node record.
type node struct {
	name     string
	parent   NodeID // -1 for root
	kind     EdgeKind
	edgeR    float64 // resistance of element to parent
	edgeC    float64 // distributed capacitance of element to parent (lines only)
	nodeC    float64 // total lumped capacitance at this node
	children []NodeID
}

// Tree is an immutable RC tree produced by a Builder. The zero value is not
// usable; obtain trees from Builder.Build, netlist parsing, or the algebra
// package.
type Tree struct {
	nodes   []node
	outputs []NodeID
	byName  map[string]NodeID
}

// NumNodes reports the number of nodes, including the input.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Outputs returns the designated output nodes in the order they were added.
// The returned slice must not be modified.
func (t *Tree) Outputs() []NodeID { return t.outputs }

// Name returns the name of node id.
func (t *Tree) Name(id NodeID) string { return t.nodes[id].name }

// Lookup finds a node by name.
func (t *Tree) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// Parent returns the parent of id, or -1 for the root.
func (t *Tree) Parent(id NodeID) NodeID { return t.nodes[id].parent }

// Children returns the children of id. The returned slice must not be
// modified.
func (t *Tree) Children(id NodeID) []NodeID { return t.nodes[id].children }

// Edge describes the element connecting id to its parent.
func (t *Tree) Edge(id NodeID) (kind EdgeKind, r, c float64) {
	n := &t.nodes[id]
	return n.kind, n.edgeR, n.edgeC
}

// NodeCap returns the lumped capacitance attached at node id.
func (t *Tree) NodeCap(id NodeID) float64 { return t.nodes[id].nodeC }

// TotalCap returns the sum of all capacitance in the tree, lumped and
// distributed.
func (t *Tree) TotalCap() float64 {
	var sum float64
	for i := range t.nodes {
		sum += t.nodes[i].nodeC + t.nodes[i].edgeC
	}
	return sum
}

// TotalRes returns the sum of all resistance in the tree.
func (t *Tree) TotalRes() float64 {
	var sum float64
	for i := range t.nodes {
		sum += t.nodes[i].edgeR
	}
	return sum
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Depth() int {
	depth := make([]int, len(t.nodes))
	max := 0
	for i := 1; i < len(t.nodes); i++ { // nodes are stored in topological order
		depth[i] = depth[t.nodes[i].parent] + 1
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}

// PathResistance returns the total resistance of the unique path from the
// input to node id (the quantity the paper writes as Rkk).
func (t *Tree) PathResistance(id NodeID) float64 {
	var r float64
	for id != Root {
		r += t.nodes[id].edgeR
		id = t.nodes[id].parent
	}
	return r
}

// PathTo returns the node sequence from the input to id, inclusive.
func (t *Tree) PathTo(id NodeID) []NodeID {
	var rev []NodeID
	for {
		rev = append(rev, id)
		if id == Root {
			break
		}
		id = t.nodes[id].parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (t *Tree) IsAncestor(a, b NodeID) bool {
	for {
		if a == b {
			return true
		}
		if b == Root {
			return false
		}
		b = t.nodes[b].parent
	}
}

// CommonAncestor returns the deepest node that lies on both root paths.
func (t *Tree) CommonAncestor(a, b NodeID) NodeID {
	seen := make(map[NodeID]bool)
	for x := a; ; x = t.nodes[x].parent {
		seen[x] = true
		if x == Root {
			break
		}
	}
	for x := b; ; x = t.nodes[x].parent {
		if seen[x] {
			return x
		}
		if x == Root {
			return Root
		}
	}
}

// Walk visits every node in topological (parent-before-child) order.
func (t *Tree) Walk(fn func(id NodeID)) {
	for i := range t.nodes {
		fn(NodeID(i))
	}
}

// String renders an indented ASCII view of the tree, useful in error
// messages and examples.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(id NodeID, depth int)
	rec = func(id NodeID, depth int) {
		n := &t.nodes[id]
		b.WriteString(strings.Repeat("  ", depth))
		switch n.kind {
		case EdgeNone:
			fmt.Fprintf(&b, "%s (input)", n.name)
		case EdgeResistor:
			fmt.Fprintf(&b, "%s --R=%g--", n.name, n.edgeR)
		case EdgeLine:
			fmt.Fprintf(&b, "%s --URC R=%g C=%g--", n.name, n.edgeR, n.edgeC)
		}
		if n.nodeC != 0 {
			fmt.Fprintf(&b, " [C=%g]", n.nodeC)
		}
		if t.isOutput(id) {
			b.WriteString(" *output*")
		}
		b.WriteByte('\n')
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(Root, 0)
	return b.String()
}

func (t *Tree) isOutput(id NodeID) bool {
	for _, o := range t.outputs {
		if o == id {
			return true
		}
	}
	return false
}

// Builder constructs a Tree incrementally. Methods that add elements return
// the new node's ID; errors are deferred and reported by Build so call sites
// stay linear.
type Builder struct {
	nodes   []node
	outputs []NodeID
	byName  map[string]NodeID
	errs    []error
}

// NewBuilder returns a Builder whose input node has the given name (the empty
// string defaults to "in").
func NewBuilder(inputName string) *Builder {
	if inputName == "" {
		inputName = "in"
	}
	b := &Builder{byName: map[string]NodeID{}}
	b.nodes = append(b.nodes, node{name: inputName, parent: -1, kind: EdgeNone})
	b.byName[inputName] = Root
	return b
}

func (b *Builder) errf(format string, args ...any) NodeID {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return Root
}

func (b *Builder) addNode(parent NodeID, name string, kind EdgeKind, r, c float64) NodeID {
	if int(parent) < 0 || int(parent) >= len(b.nodes) {
		return b.errf("rctree: parent %d out of range", parent)
	}
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.nodes))
	}
	if _, dup := b.byName[name]; dup {
		return b.errf("rctree: duplicate node name %q", name)
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, node{name: name, parent: parent, kind: kind, edgeR: r, edgeC: c})
	b.nodes[parent].children = append(b.nodes[parent].children, id)
	b.byName[name] = id
	return id
}

// Resistor adds a lumped resistor of value r ohms from parent to a new node.
func (b *Builder) Resistor(parent NodeID, name string, r float64) NodeID {
	if r <= 0 {
		return b.errf("rctree: resistor %q must have R > 0, got %g", name, r)
	}
	return b.addNode(parent, name, EdgeResistor, r, 0)
}

// Line adds a distributed uniform RC line with total resistance r and total
// capacitance c from parent to a new node. Either value may be zero (the
// paper's URC primitive degenerates to a lumped capacitor or resistor), but
// not both.
func (b *Builder) Line(parent NodeID, name string, r, c float64) NodeID {
	switch {
	case r < 0 || c < 0:
		return b.errf("rctree: line %q must have R, C >= 0, got R=%g C=%g", name, r, c)
	case r == 0 && c == 0:
		return b.errf("rctree: line %q has R=0 and C=0", name)
	case c == 0:
		return b.addNode(parent, name, EdgeResistor, r, 0)
	case r == 0:
		// A zero-resistance line is a lumped capacitor at the parent node.
		b.Capacitor(parent, c)
		return parent
	}
	return b.addNode(parent, name, EdgeLine, r, c)
}

// Capacitor attaches a lumped capacitor of value c farads from node to
// ground. Multiple capacitors at a node accumulate.
func (b *Builder) Capacitor(node NodeID, c float64) {
	if c < 0 {
		b.errf("rctree: capacitor at node %d must have C >= 0, got %g", node, c)
		return
	}
	if int(node) < 0 || int(node) >= len(b.nodes) {
		b.errf("rctree: capacitor parent %d out of range", node)
		return
	}
	b.nodes[node].nodeC += c
}

// Output marks node as an output of the tree. Outputs may be taken anywhere,
// per the paper; marking the same node twice is an error.
func (b *Builder) Output(node NodeID) {
	if int(node) < 0 || int(node) >= len(b.nodes) {
		b.errf("rctree: output %d out of range", node)
		return
	}
	for _, o := range b.outputs {
		if o == node {
			b.errf("rctree: node %q marked as output twice", b.nodes[node].name)
			return
		}
	}
	b.outputs = append(b.outputs, node)
}

// Build validates and returns the tree. If no output was designated, every
// leaf is promoted to an output (a convenient default for exploratory use).
func (b *Builder) Build() (*Tree, error) {
	if len(b.errs) > 0 {
		msgs := make([]string, len(b.errs))
		for i, e := range b.errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("rctree: invalid tree: %s", strings.Join(msgs, "; "))
	}
	t := &Tree{nodes: b.nodes, outputs: b.outputs, byName: b.byName}
	if len(t.outputs) == 0 {
		for i := range t.nodes {
			if len(t.nodes[i].children) == 0 && NodeID(i) != Root {
				t.outputs = append(t.outputs, NodeID(i))
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks the structural invariants of the tree: a single root at
// index 0, parent indices preceding children (acyclicity), nonnegative
// element values, and at least some capacitance and resistance so the
// characteristic times are well defined.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("rctree: empty tree")
	}
	if t.nodes[0].parent != -1 || t.nodes[0].kind != EdgeNone {
		return fmt.Errorf("rctree: node 0 must be the input")
	}
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		if n.parent < 0 || int(n.parent) >= i {
			return fmt.Errorf("rctree: node %q has invalid parent %d", n.name, n.parent)
		}
		if n.kind == EdgeNone {
			return fmt.Errorf("rctree: non-root node %q lacks a parent element", n.name)
		}
		if n.edgeR < 0 || n.edgeC < 0 || n.nodeC < 0 {
			return fmt.Errorf("rctree: node %q has a negative element value", n.name)
		}
		if n.kind == EdgeResistor && n.edgeR <= 0 {
			return fmt.Errorf("rctree: resistor to node %q must be positive", n.name)
		}
	}
	if t.TotalCap() <= 0 {
		return fmt.Errorf("rctree: tree has no capacitance; characteristic times undefined")
	}
	for _, o := range t.outputs {
		if int(o) < 0 || int(o) >= len(t.nodes) {
			return fmt.Errorf("rctree: output id %d out of range", o)
		}
	}
	return nil
}
