package rctree

import (
	"math"
	"testing"
)

// taperTimes builds a single tapered line and returns the far-end times.
func taperTimes(t *testing.T, length float64, segments int, profile LineProfile) Times {
	t.Helper()
	b := NewBuilder("in")
	far := b.TaperedLine(Root, "line", length, segments, profile)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := tr.CharacteristicTimes(far)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// TestTaperedUniformMatchesURC: a constant profile must reproduce the
// uniform line closed forms RC/2 and RC/3 regardless of segmentation.
func TestTaperedUniformMatchesURC(t *testing.T) {
	const R, C = 120.0, 7.0
	uniform := func(float64) (float64, float64) { return R, C } // length 1
	for _, segs := range []int{1, 3, 16} {
		tm := taperTimes(t, 1, segs, uniform)
		if !almostEq(tm.TP, R*C/2, 1e-12) || !almostEq(tm.TD, R*C/2, 1e-12) {
			t.Errorf("segs=%d: TP=%g TD=%g, want %g", segs, tm.TP, tm.TD, R*C/2)
		}
		if !almostEq(tm.TR, R*C/3, 1e-12) {
			t.Errorf("segs=%d: TR=%g, want %g", segs, tm.TR, R*C/3)
		}
		if !almostEq(tm.Ree, R, 1e-12) {
			t.Errorf("segs=%d: Ree=%g, want %g", segs, tm.Ree, R)
		}
	}
}

// TestTaperedWedgeClosedForm: for r(x) = 2·Rtot·x (so total resistance is
// Rtot) and constant c(x) = Ctot over unit length, the far-end Elmore delay
// is ∫ c·R(x) dx with R(x) = Rtot·x², i.e. TD = Rtot·Ctot/3.
func TestTaperedWedgeClosedForm(t *testing.T) {
	const Rtot, Ctot = 90.0, 4.0
	wedge := func(x float64) (float64, float64) { return 2 * Rtot * x, Ctot }
	want := Rtot * Ctot / 3
	var prevErr float64
	for i, segs := range []int{8, 16, 32} {
		tm := taperTimes(t, 1, segs, wedge)
		errNow := math.Abs(tm.TD - want)
		if i > 0 && errNow > prevErr/3 {
			t.Errorf("segs=%d: error %g did not shrink ~4x from %g", segs, errNow, prevErr)
		}
		prevErr = errNow
		// Chain network: TD = TP exactly at the far end.
		if !almostEq(tm.TD, tm.TP, 1e-12) {
			t.Errorf("segs=%d: TD=%g != TP=%g on a chain", segs, tm.TD, tm.TP)
		}
		// Total resistance integrates to Rtot (midpoint rule is exact for
		// linear integrands).
		if !almostEq(tm.Ree, Rtot, 1e-9) {
			t.Errorf("segs=%d: Ree=%g, want %g", segs, tm.Ree, Rtot)
		}
	}
	if prevErr > want*2e-3 {
		t.Errorf("32-segment wedge TD error %g too large (want %g)", prevErr, want)
	}
}

// TestTaperedOrderingAndValidation: eq. 7 holds for arbitrary smooth tapers,
// and invalid arguments are rejected at Build.
func TestTaperedOrderingAndValidation(t *testing.T) {
	bump := func(x float64) (float64, float64) {
		return 10 + 50*math.Sin(math.Pi*x), 1 + 3*x*x
	}
	tm := taperTimes(t, 2, 24, bump)
	if err := tm.Validate(); err != nil {
		t.Errorf("tapered line violates eq. 7: %v", err)
	}

	cases := []func(b *Builder){
		func(b *Builder) { b.TaperedLine(Root, "x", 0, 4, bump) },
		func(b *Builder) { b.TaperedLine(Root, "x", 1, 0, bump) },
		func(b *Builder) { b.TaperedLine(Root, "x", 1, 4, nil) },
		func(b *Builder) {
			b.TaperedLine(Root, "x", 1, 4, func(float64) (float64, float64) { return -1, 1 })
		},
	}
	for i, build := range cases {
		b := NewBuilder("in")
		build(b)
		n := b.Resistor(Root, "ok", 1)
		b.Capacitor(n, 1)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: invalid tapered line accepted", i)
		}
	}
}

// TestTaperedEmptyStretchSkipped: zero-profile spans are skipped rather than
// erroring out.
func TestTaperedEmptyStretchSkipped(t *testing.T) {
	profile := func(x float64) (float64, float64) {
		if x < 0.5 {
			return 0, 0 // dead stretch
		}
		return 10, 2
	}
	b := NewBuilder("in")
	far := b.TaperedLine(Root, "line", 1, 8, profile)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Only the live half contributes: Ree = 10 * 0.5.
	tm, err := tr.CharacteristicTimes(far)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Ree, 5, 1e-12) {
		t.Errorf("Ree = %g, want 5", tm.Ree)
	}
}

// TestTaperedVsUniformAsymmetry: a line tapering from wide (low r, high c)
// to narrow drives its far end slower than the reversed taper with the same
// totals — the directionality effect designers exploit.
func TestTaperedVsUniformAsymmetry(t *testing.T) {
	wideToNarrow := func(x float64) (float64, float64) { return 5 + 10*x, 3 - 2*x }
	narrowToWide := func(x float64) (float64, float64) { return 15 - 10*x, 1 + 2*x }
	a := taperTimes(t, 1, 64, wideToNarrow)
	bb := taperTimes(t, 1, 64, narrowToWide)
	// Same totals.
	if !almostEq(a.Ree, bb.Ree, 1e-9) {
		t.Fatalf("total resistance differs: %g vs %g", a.Ree, bb.Ree)
	}
	// Narrow-to-wide places its capacitance downstream of more resistance:
	// strictly larger Elmore delay.
	if !(bb.TD > a.TD) {
		t.Errorf("expected narrow->wide TD %g > wide->narrow TD %g", bb.TD, a.TD)
	}
}
