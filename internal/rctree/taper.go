package rctree

import "fmt"

// LineProfile describes a nonuniform RC line by its per-unit-length
// resistance and capacitance at normalized position x in [0, 1] (0 at the
// end nearer the input).
type LineProfile func(x float64) (rPerLen, cPerLen float64)

// TaperedLine appends a nonuniform RC line of the given length, approximated
// by `segments` uniform URC sections whose values integrate the profile by
// the midpoint rule. The paper allows nonuniform lines in RC trees ("any
// resistor may be replaced by a distributed RC line... nonuniform RC lines
// may appear") but computes examples with uniform ones; this helper reduces
// the nonuniform case to the uniform primitive with O(1/segments²) accuracy
// in the characteristic times.
//
// It returns the far-end node. Intermediate nodes are named
// name.t1 … name.t(segments-1).
func (b *Builder) TaperedLine(parent NodeID, name string, length float64, segments int, profile LineProfile) NodeID {
	if length <= 0 || segments < 1 || profile == nil {
		return b.errf("rctree: tapered line %q needs positive length, segments >= 1 and a profile", name)
	}
	if name == "" {
		name = fmt.Sprintf("taper%d", len(b.nodes))
	}
	cur := parent
	h := length / float64(segments)
	for s := 0; s < segments; s++ {
		xMid := (float64(s) + 0.5) / float64(segments)
		rPer, cPer := profile(xMid)
		if rPer < 0 || cPer < 0 {
			return b.errf("rctree: tapered line %q has negative profile at x=%g", name, xMid)
		}
		if rPer == 0 && cPer == 0 {
			continue // electrically empty stretch
		}
		segName := fmt.Sprintf("%s.t%d", name, s+1)
		if s == segments-1 {
			segName = name
		}
		cur = b.Line(cur, segName, rPer*h, cPer*h)
	}
	return cur
}
