package rctree

import "fmt"

// Arena is a flat, index-based structure-of-arrays (SoA) view of a Tree:
// one slice per field, children encoded as a contiguous CSR index range, and
// nodes stored in the same topological (parent-before-child) order the Tree
// guarantees. The layout is cache-friendly for the linear accumulation passes
// the characteristic-times computation performs, trivially serializable, and
// free of per-node pointer chasing:
//
//	index:     0      1      2      ...   n-1
//	Parent:   [-1  ,  p1  ,  p2  ,  ...       ]   parent index (-1 at root)
//	Kind:     [none,  k1  ,  k2  ,  ...       ]   edge element kind
//	EdgeR:    [ 0  ,  r1  ,  r2  ,  ...       ]   element resistance
//	EdgeC:    [ 0  ,  c1  ,  c2  ,  ...       ]   distributed line capacitance
//	NodeC:    [ c0 ,  c1  ,  c2  ,  ...       ]   lumped capacitance at node
//	ChildOff: [ o0 ,  o1  ,  ...  ,  on ]         CSR offsets (len n+1)
//	Children: [ .. node indices grouped by parent .. ]
//
// An Arena is immutable after NewArena; it is safe for concurrent readers,
// provided each goroutine uses its own Scratch.
type Arena struct {
	Parent   []int32
	Kind     []uint8 // EdgeKind
	EdgeR    []float64
	EdgeC    []float64
	NodeC    []float64
	ChildOff []int32 // len n+1; children of i are Children[ChildOff[i]:ChildOff[i+1]]
	Children []int32
	Names    []string
	Outputs  []int32
	byName   map[string]int32
}

// NewArena flattens a tree into its arena form in O(n).
func NewArena(t *Tree) *Arena {
	n := len(t.nodes)
	a := &Arena{
		Parent:   make([]int32, n),
		Kind:     make([]uint8, n),
		EdgeR:    make([]float64, n),
		EdgeC:    make([]float64, n),
		NodeC:    make([]float64, n),
		ChildOff: make([]int32, n+1),
		Children: make([]int32, 0, n-1),
		Names:    make([]string, n),
		Outputs:  make([]int32, len(t.outputs)),
		byName:   make(map[string]int32, n),
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		a.Parent[i] = int32(nd.parent)
		a.Kind[i] = uint8(nd.kind)
		a.EdgeR[i] = nd.edgeR
		a.EdgeC[i] = nd.edgeC
		a.NodeC[i] = nd.nodeC
		a.Names[i] = nd.name
		a.byName[nd.name] = int32(i)
	}
	for i := range t.nodes {
		a.ChildOff[i] = int32(len(a.Children))
		for _, c := range t.nodes[i].children {
			a.Children = append(a.Children, int32(c))
		}
	}
	a.ChildOff[n] = int32(len(a.Children))
	for i, o := range t.outputs {
		a.Outputs[i] = int32(o)
	}
	return a
}

// Len reports the number of nodes, including the input at index 0.
func (a *Arena) Len() int { return len(a.Parent) }

// Lookup finds a node index by name.
func (a *Arena) Lookup(name string) (int32, bool) {
	id, ok := a.byName[name]
	return id, ok
}

// TimesInto computes the characteristic times for output e using caller-owned
// scratch; it allocates nothing once the scratch has grown to the arena size.
func (a *Arena) TimesInto(e int32, s *Scratch) (Times, error) {
	return TimesFlat(a.Parent, a.Kind, a.EdgeR, a.EdgeC, a.NodeC, int(e), s)
}

// Materialize reconstructs the immutable Tree the arena was built from (or an
// equivalent one for a hand-assembled arena), validating the structural
// invariants. NewArena(a.Materialize()) reproduces a exactly — the round trip
// is idempotent, which the fuzz harness pins down.
func (a *Arena) Materialize() (*Tree, error) {
	n := len(a.Parent)
	if n == 0 {
		return nil, fmt.Errorf("rctree: empty arena")
	}
	nodes := make([]node, n)
	kids := make([]NodeID, len(a.Children))
	for i, c := range a.Children {
		kids[i] = NodeID(c)
	}
	byName := make(map[string]NodeID, n)
	for i := 0; i < n; i++ {
		nodes[i] = node{
			name:     a.Names[i],
			parent:   NodeID(a.Parent[i]),
			kind:     EdgeKind(a.Kind[i]),
			edgeR:    a.EdgeR[i],
			edgeC:    a.EdgeC[i],
			nodeC:    a.NodeC[i],
			children: kids[a.ChildOff[i]:a.ChildOff[i+1]:a.ChildOff[i+1]],
		}
		if _, dup := byName[a.Names[i]]; dup {
			return nil, fmt.Errorf("rctree: arena has duplicate node name %q", a.Names[i])
		}
		byName[a.Names[i]] = NodeID(i)
	}
	outs := make([]NodeID, len(a.Outputs))
	for i, o := range a.Outputs {
		outs[i] = NodeID(o)
	}
	t := &Tree{nodes: nodes, outputs: outs, byName: byName}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// TimesFlat is the arena-form characteristic-times pass: the same single
// linear sweep as Tree.CharacteristicTimesInto, but over flat parallel arrays
// describing one tree in topological order (parent[0] == -1 at the root).
// It performs no allocation once s has grown to len(parent) elements, which
// is what makes the design-level propagation hot path allocation-free.
func TimesFlat(parent []int32, kind []uint8, edgeR, edgeC, nodeC []float64, e int, s *Scratch) (Times, error) {
	n := len(parent)
	if e < 0 || e >= n {
		return Times{}, fmt.Errorf("rctree: output id %d out of range", e)
	}
	s.grow(n)
	onPath := s.onPath
	for x := e; ; x = int(parent[x]) {
		onPath[x] = true
		if x == 0 {
			break
		}
	}
	var tp, td, trNum float64 // trNum = Σ Rke²·Ck
	rkk := s.rkk
	rke := s.rke
	for i := 1; i < n; i++ {
		r0 := rkk[parent[i]]
		rkk[i] = r0 + edgeR[i]
		common0 := rke[parent[i]]
		if onPath[i] {
			rke[i] = rkk[i] // still on the input→e path: common path grows
		} else {
			rke[i] = common0 // frozen at the branch point
		}
		// Lumped capacitance at node i.
		tp += nodeC[i] * rkk[i]
		td += nodeC[i] * rke[i]
		trNum += nodeC[i] * rke[i] * rke[i]
		// Distributed line along the edge into node i.
		if EdgeKind(kind[i]) == EdgeLine {
			r, c := edgeR[i], edgeC[i]
			tp += c * (r0 + r/2)
			if onPath[i] {
				td += c * (common0 + r/2)
				trNum += c * (common0*common0 + common0*r + r*r/3)
			} else {
				td += c * common0
				trNum += c * common0 * common0
			}
		}
	}
	ree := rkk[e]
	tm := Times{TP: tp, TD: td, Ree: ree}
	if ree > 0 {
		tm.TR = trNum / ree
	} else if trNum != 0 {
		return Times{}, fmt.Errorf("rctree: output %d has Ree=0 but nonzero TR numerator", e)
	}
	if err := tm.Validate(); err != nil {
		return Times{}, err
	}
	return tm, nil
}
