package rctree

import "fmt"

// Times holds the three characteristic times of an RC tree at one output,
// plus the input-to-output resistance Ree. Units follow the element units:
// with ohms and farads the times are seconds; with ohms and picofarads,
// picoseconds.
//
//	TP  = Σk Rkk·Ck          (eq. 5; output independent)
//	TD  = Σk Rke·Ck          (eq. 1; Elmore's first moment)
//	TR  = Σk Rke²·Ck / Ree   (eq. 6)
//
// Sums over lumped capacitors become integrals over distributed lines; this
// package evaluates those integrals in closed form.
type Times struct {
	TP  float64
	TD  float64
	TR  float64
	Ree float64
}

// Validate checks the paper's eq. 7 ordering TR <= TD <= TP within a small
// relative tolerance, plus positivity. A violation indicates a malformed
// network or a bug upstream.
func (tm Times) Validate() error {
	const tol = 1e-9
	scale := tm.TP
	if scale < 1 {
		scale = 1
	}
	switch {
	case tm.TP < 0 || tm.TD < 0 || tm.TR < 0 || tm.Ree < 0:
		return fmt.Errorf("rctree: negative characteristic time: %+v", tm)
	case tm.TR > tm.TD+tol*scale:
		return fmt.Errorf("rctree: TR=%g > TD=%g violates eq. 7", tm.TR, tm.TD)
	case tm.TD > tm.TP+tol*scale:
		return fmt.Errorf("rctree: TD=%g > TP=%g violates eq. 7", tm.TD, tm.TP)
	}
	return nil
}

// TPTotal computes TP = Σ Rkk·Ck for the whole tree in a single pass,
// including the closed-form contribution of distributed lines: a line with
// resistance R and capacitance C entered at upstream path resistance r0
// contributes C·(r0 + R/2).
func (t *Tree) TPTotal() float64 {
	rkk := make([]float64, len(t.nodes))
	var tp float64
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		r0 := rkk[n.parent]
		rkk[i] = r0 + n.edgeR
		tp += n.nodeC * rkk[i]
		if n.kind == EdgeLine {
			tp += n.edgeC * (r0 + n.edgeR/2)
		}
	}
	return tp
}

// Scratch holds the per-pass working arrays of CharacteristicTimesInto so a
// caller analyzing many trees (or many outputs) can reuse the allocations.
// A Scratch must not be shared between goroutines; give each worker its own.
// The zero value is ready to use.
type Scratch struct {
	onPath []bool
	rkk    []float64
	rke    []float64
}

// grow resizes the scratch arrays to n elements and zeroes onPath (the only
// array whose stale contents would leak between passes; rkk and rke are
// written before they are read).
func (s *Scratch) grow(n int) {
	if cap(s.onPath) < n {
		s.onPath = make([]bool, n)
		s.rkk = make([]float64, n)
		s.rke = make([]float64, n)
	} else {
		s.onPath = s.onPath[:n]
		s.rkk = s.rkk[:n]
		s.rke = s.rke[:n]
		for i := range s.onPath {
			s.onPath[i] = false
		}
	}
	// Index 0 (the root) is read but never written by the pass.
	s.rkk[0] = 0
	s.rke[0] = 0
}

// CharacteristicTimes computes TP, TDe, TRe and Ree for output e in a single
// depth-first pass over the tree (O(n) per output, the complexity the paper's
// §IV constructive algorithm achieves). It allocates fresh scratch on every
// call; hot loops should hold a Scratch and call CharacteristicTimesInto.
func (t *Tree) CharacteristicTimes(e NodeID) (Times, error) {
	return t.CharacteristicTimesInto(e, &Scratch{})
}

// CharacteristicTimesInto is CharacteristicTimes with caller-owned scratch.
//
// The pass maintains, for each node k, the common path resistance Rke: while
// descending along the input→e path it grows with each element; the moment
// the walk leaves that path it freezes at the branch point's value.
func (t *Tree) CharacteristicTimesInto(e NodeID, s *Scratch) (Times, error) {
	if int(e) < 0 || int(e) >= len(t.nodes) {
		return Times{}, fmt.Errorf("rctree: output id %d out of range", e)
	}
	s.grow(len(t.nodes))
	onPath := s.onPath
	for x := e; ; x = t.nodes[x].parent {
		onPath[x] = true
		if x == Root {
			break
		}
	}
	var tp, td, trNum float64 // trNum = Σ Rke²·Ck
	rkk := s.rkk
	rke := s.rke
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		r0 := rkk[n.parent]
		rkk[i] = r0 + n.edgeR
		common0 := rke[n.parent]
		if onPath[i] {
			rke[i] = rkk[i] // still on the input→e path: common path grows
		} else {
			rke[i] = common0 // frozen at the branch point
		}
		// Lumped capacitance at node i.
		tp += n.nodeC * rkk[i]
		td += n.nodeC * rke[i]
		trNum += n.nodeC * rke[i] * rke[i]
		// Distributed line along the edge into node i.
		if n.kind == EdgeLine {
			r, c := n.edgeR, n.edgeC
			tp += c * (r0 + r/2)
			if onPath[i] {
				// Points x∈[0,1] have Rke = common0 + r·x (and here
				// common0 == r0 because the whole prefix is on the path).
				td += c * (common0 + r/2)
				trNum += c * (common0*common0 + common0*r + r*r/3)
			} else {
				// The entire line shares the frozen common resistance.
				td += c * common0
				trNum += c * common0 * common0
			}
		}
	}
	ree := rkk[e]
	tm := Times{TP: tp, TD: td, Ree: ree}
	if ree > 0 {
		tm.TR = trNum / ree
	} else if trNum != 0 {
		return Times{}, fmt.Errorf("rctree: output %q has Ree=0 but nonzero TR numerator", t.nodes[e].name)
	}
	if err := tm.Validate(); err != nil {
		return Times{}, err
	}
	return tm, nil
}

// CharacteristicTimesRef is a deliberately simple O(n·depth) reference
// implementation used to cross-check CharacteristicTimes in tests: for every
// capacitor it finds the common ancestor with the output explicitly and sums
// the definitions term by term.
func (t *Tree) CharacteristicTimesRef(e NodeID) (Times, error) {
	if int(e) < 0 || int(e) >= len(t.nodes) {
		return Times{}, fmt.Errorf("rctree: output id %d out of range", e)
	}
	var tp, td, trNum float64
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		rkk := t.PathResistance(NodeID(i))
		if n.nodeC > 0 {
			rke := t.commonResistance(NodeID(i), e)
			tp += n.nodeC * rkk
			td += n.nodeC * rke
			trNum += n.nodeC * rke * rke
		}
		if n.kind == EdgeLine && n.edgeC > 0 {
			r0 := rkk - n.edgeR
			r, c := n.edgeR, n.edgeC
			tp += c * (r0 + r/2)
			if t.IsAncestor(NodeID(i), e) {
				td += c * (r0 + r/2)
				trNum += c * (r0*r0 + r0*r + r*r/3)
			} else {
				// Common resistance with e is that of the deepest common
				// ancestor of the line's downstream node and e; since the
				// line is off the path, that ancestor is at or above the
				// line's upstream node.
				rke := t.commonResistance(NodeID(i), e)
				td += c * rke
				trNum += c * rke * rke
			}
		}
	}
	ree := t.PathResistance(e)
	tm := Times{TP: tp, TD: td, Ree: ree}
	if ree > 0 {
		tm.TR = trNum / ree
	}
	if err := tm.Validate(); err != nil {
		return Times{}, err
	}
	return tm, nil
}

// commonResistance returns Rke: the resistance of the common portion of the
// root paths of k and e.
func (t *Tree) commonResistance(k, e NodeID) float64 {
	a := t.CommonAncestor(k, e)
	return t.PathResistance(a)
}

// AllCharacteristicTimes computes Times for every designated output, keyed by
// output node ID, in O(n · outputs).
func (t *Tree) AllCharacteristicTimes() (map[NodeID]Times, error) {
	out := make(map[NodeID]Times, len(t.outputs))
	var scratch Scratch
	for _, e := range t.outputs {
		tm, err := t.CharacteristicTimesInto(e, &scratch)
		if err != nil {
			return nil, fmt.Errorf("rctree: output %q: %w", t.nodes[e].name, err)
		}
		out[e] = tm
	}
	return out, nil
}

// PathResistances returns the prefix resistance Rkk (input-to-node path
// resistance) for every node in one O(n) pass. Index 0 (the input) is 0.
// This is the per-node prefix array the incremental engine (internal/incr)
// seeds its overlay from.
func (t *Tree) PathResistances() []float64 {
	rkk := make([]float64, len(t.nodes))
	for i := 1; i < len(t.nodes); i++ {
		rkk[i] = rkk[t.nodes[i].parent] + t.nodes[i].edgeR
	}
	return rkk
}

// SubtreeCaps returns, for every node, the total capacitance at or below it:
// the node's lumped capacitor, the distributed capacitance of its own parent
// element, and everything in its descendants — the ΣC subtree aggregate of
// the incremental engine. Index 0 holds the tree's total capacitance.
func (t *Tree) SubtreeCaps() []float64 {
	n := len(t.nodes)
	sub := make([]float64, n)
	for i := n - 1; i >= 1; i-- {
		sub[i] += t.nodes[i].nodeC + t.nodes[i].edgeC
		sub[t.nodes[i].parent] += sub[i]
	}
	sub[0] += t.nodes[0].nodeC
	return sub
}

// ElmoreAll computes the Elmore delay TDe for every node simultaneously in
// two passes (O(n) total): a bottom-up accumulation of downstream
// capacitance, then a top-down prefix walk adding R_edge · C_downstream along
// every root path. It is the classical linear-time all-outputs algorithm and
// serves as the baseline the paper references (Elmore, 1948).
//
// For a line edge the downstream capacitance seen by the edge's own
// resistance is C_sub + C_line/2 (its distributed capacitance charges through
// half its resistance on average), which matches the closed-form integrals in
// CharacteristicTimes for on-path lines.
func (t *Tree) ElmoreAll() []float64 {
	n := len(t.nodes)
	sub := t.SubtreeCaps()
	td := make([]float64, n)
	for i := 1; i < n; i++ {
		nd := &t.nodes[i]
		// Resistance nd.edgeR charges everything at or below node i, except
		// that the line's own capacitance charges through half of it.
		td[i] = td[nd.parent] + nd.edgeR*(sub[i]-nd.edgeC/2)
	}
	return td
}
