package rctree

import "fmt"

// Sensitivity holds the first-order derivatives of the characteristic times
// at one output with respect to every element value — the gradients a wire
// or driver sizer needs. All slices are indexed by NodeID.
//
// Because TP and TDe are linear in the capacitances and (per-path) linear in
// the resistances, these derivatives are exact, not linearizations:
//
//	∂TD/∂Ck  = Rke          ∂TP/∂Ck  = Rkk
//	∂TD/∂Rj  = Cdown(j,e)   ∂TP/∂Rj  = Cbelow(j)
//
// where Rj is the resistor into node j, Cbelow(j) is all capacitance at or
// below j, and Cdown(j,e) is that same capacitance when j lies on the
// input→e path, else 0 (moving an off-path resistor does not change any
// common-path resistance).
//
// Line edges expose the same derivatives with respect to their total R and
// total C, derived from the closed-form integrals.
type Sensitivity struct {
	Output NodeID
	// DTDdC[k] and DTPdC[k] are derivatives w.r.t. the lumped capacitance
	// at node k (for line edges, w.r.t. the line's total capacitance, see
	// DTDdLineC).
	DTDdC, DTPdC []float64
	// DTDdR[j] and DTPdR[j] are derivatives w.r.t. the resistance of the
	// element into node j (total resistance for lines).
	DTDdR, DTPdR []float64
}

// Sensitivities computes the exact gradients of TP and TDe at output e in
// O(n).
func (t *Tree) Sensitivities(e NodeID) (*Sensitivity, error) {
	if int(e) < 0 || int(e) >= len(t.nodes) {
		return nil, fmt.Errorf("rctree: output id %d out of range", e)
	}
	n := len(t.nodes)
	onPath := make([]bool, n)
	for x := e; ; x = t.nodes[x].parent {
		onPath[x] = true
		if x == Root {
			break
		}
	}
	rkk := make([]float64, n)
	rke := make([]float64, n)
	for i := 1; i < n; i++ {
		nd := &t.nodes[i]
		rkk[i] = rkk[nd.parent] + nd.edgeR
		if onPath[i] {
			rke[i] = rkk[i]
		} else {
			rke[i] = rke[nd.parent]
		}
	}
	// Capacitance at or below each node, including line capacitance (which
	// belongs to the edge above the node; its sensitivity handling below
	// accounts for the half-R offset).
	below := make([]float64, n)
	for i := n - 1; i >= 1; i-- {
		below[i] += t.nodes[i].nodeC + t.nodes[i].edgeC
		below[t.nodes[i].parent] += below[i]
	}

	s := &Sensitivity{
		Output: e,
		DTDdC:  make([]float64, n),
		DTPdC:  make([]float64, n),
		DTDdR:  make([]float64, n),
		DTPdR:  make([]float64, n),
	}
	for i := 1; i < n; i++ {
		nd := &t.nodes[i]
		// Capacitance derivatives are the resistances themselves.
		s.DTPdC[i] = rkk[i]
		s.DTDdC[i] = rke[i]
		if nd.kind == EdgeLine {
			// A line's capacitance is spread along the edge: the derivative
			// w.r.t. its total C is the average of its per-point values.
			r0 := rkk[nd.parent]
			s.DTPdC[i] = r0 + nd.edgeR/2
			if onPath[i] {
				s.DTDdC[i] = r0 + nd.edgeR/2
			} else {
				s.DTDdC[i] = rke[nd.parent]
			}
		}
		// Resistance derivatives: growing R into node i raises Rkk of all
		// capacitance at or below i.
		s.DTPdR[i] = below[i]
		if nd.kind == EdgeLine {
			// The line's own capacitance sees on average half the growth.
			s.DTPdR[i] = below[i] - nd.edgeC/2
		}
		if onPath[i] {
			s.DTDdR[i] = s.DTPdR[i] // the common path grows identically
		}
	}
	return s, nil
}
