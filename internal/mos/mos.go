// Package mos supplies the driver-side models of the paper's Figure 2
// linearization: the nonlinear pullup of the driving inverter is replaced by
// an effective linear resistance, the transition by a step source, and the
// driver's own parasitics by a lumped output capacitance.
//
// The package includes the §V superbuffer driver (380 Ω source resistance,
// 0.04 pF effective output capacitance) and a simple first-order model that
// derives an effective pullup resistance from device geometry, calibrated so
// the paper's numbers come out of plausible 4 µm-era parameters.
package mos

import (
	"fmt"

	"repro/internal/rctree"
)

// Driver is the linearized model of a driving stage: a step source behind
// REff ohms, with COut farads of source-diffusion/contact parasitics at the
// driver output.
type Driver struct {
	Name string
	REff float64 // effective pullup resistance, ohms
	COut float64 // effective output capacitance, farads (or pF — caller's units)
}

// Superbuffer returns the §V PLA driver: "a source resistance of 380 ohms
// and the effective capacitance of the output of the driver is estimated as
// 0.04 pF". Units here are ohms and picofarads so delays come out in
// picoseconds, matching the Figure 13 axis (ns after /1000).
func Superbuffer() Driver {
	return Driver{Name: "superbuffer", REff: 380, COut: 0.04}
}

// Validate rejects non-physical drivers.
func (d Driver) Validate() error {
	if d.REff <= 0 {
		return fmt.Errorf("mos: driver %q needs positive effective resistance, got %g", d.Name, d.REff)
	}
	if d.COut < 0 {
		return fmt.Errorf("mos: driver %q has negative output capacitance", d.Name)
	}
	return nil
}

// Device is a first-order square-law MOS transistor description, enough to
// estimate an effective linear pullup resistance the way designers of the
// paper's era did: REff ≈ 1 / (k'·(W/L)·(VDD − VT)), times an empirical
// slope factor accounting for the transition average.
type Device struct {
	// KPrime is the process transconductance k' in A/V².
	KPrime float64
	// W and L are the drawn channel dimensions in meters.
	W, L float64
	// VDD and VT are supply and threshold in volts.
	VDD, VT float64
	// SlopeFactor is the empirical multiplier (≈1–2) mapping the
	// large-signal average to an equivalent linear resistor; 1.5 is a
	// reasonable middle for a depletion pullup.
	SlopeFactor float64
}

// EffectiveResistance returns the linearized pullup resistance in ohms.
func (d Device) EffectiveResistance() (float64, error) {
	if d.KPrime <= 0 || d.W <= 0 || d.L <= 0 {
		return 0, fmt.Errorf("mos: device needs positive k', W, L")
	}
	if d.VDD <= d.VT {
		return 0, fmt.Errorf("mos: VDD=%g must exceed VT=%g", d.VDD, d.VT)
	}
	slope := d.SlopeFactor
	if slope == 0 {
		slope = 1.5
	}
	return slope / (d.KPrime * (d.W / d.L) * (d.VDD - d.VT)), nil
}

// Load is a driven gate: a lumped capacitance hanging at some node of the
// interconnect tree.
type Load struct {
	Name string
	C    float64
}

// AttachDriver prepends the driver model to a tree under construction:
// a resistor REff from the input, with COut at the driver output node.
// It returns the node downstream of the driver, where interconnect attaches.
func AttachDriver(b *rctree.Builder, d Driver) (rctree.NodeID, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	name := d.Name
	if name == "" {
		name = "drv"
	}
	out := b.Resistor(rctree.Root, name, d.REff)
	if d.COut > 0 {
		b.Capacitor(out, d.COut)
	}
	return out, nil
}

// FanoutNet assembles the canonical Figure 1/Figure 2 situation: one driver
// feeding several gate loads through individual interconnect lines. Each
// branch i runs a uniform RC line (lineR[i], lineC[i]) from the driver
// output to load i. Every load node becomes an output.
func FanoutNet(d Driver, lineR, lineC []float64, loads []Load) (*rctree.Tree, error) {
	if len(lineR) != len(lineC) || len(lineR) != len(loads) {
		return nil, fmt.Errorf("mos: FanoutNet needs equal-length lineR, lineC, loads (got %d, %d, %d)",
			len(lineR), len(lineC), len(loads))
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("mos: FanoutNet needs at least one load")
	}
	b := rctree.NewBuilder("in")
	drvOut, err := AttachDriver(b, d)
	if err != nil {
		return nil, err
	}
	for i, load := range loads {
		name := load.Name
		if name == "" {
			name = fmt.Sprintf("load%d", i+1)
		}
		var node rctree.NodeID
		switch {
		case lineR[i] < 0 || lineC[i] < 0:
			return nil, fmt.Errorf("mos: branch %d has negative line values", i)
		case lineR[i] == 0 && lineC[i] == 0:
			// Load sits directly at the driver; model it as capacitance
			// there but keep a distinct output identity via a tiny check.
			return nil, fmt.Errorf("mos: branch %d needs nonzero interconnect; attach the load capacitance to the driver instead", i)
		default:
			node = b.Line(drvOut, name, lineR[i], lineC[i])
		}
		if load.C > 0 {
			b.Capacitor(node, load.C)
		}
		b.Output(node)
	}
	return b.Build()
}
