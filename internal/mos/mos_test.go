package mos

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rctree"
)

func TestSuperbuffer(t *testing.T) {
	d := Superbuffer()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.REff != 380 || d.COut != 0.04 {
		t.Errorf("Superbuffer = %+v, want 380 ohm / 0.04 pF per §V", d)
	}
}

func TestDriverValidate(t *testing.T) {
	if err := (Driver{REff: 0}).Validate(); err == nil {
		t.Error("zero REff validated")
	}
	if err := (Driver{REff: 100, COut: -1}).Validate(); err == nil {
		t.Error("negative COut validated")
	}
}

// TestEffectiveResistancePlausible: 4 µm-era depletion pullup parameters
// land within a factor of ~2 of the §V superbuffer's 380 Ω.
func TestEffectiveResistancePlausible(t *testing.T) {
	dev := Device{
		KPrime: 20e-6,  // 20 µA/V², NMOS circa 1980
		W:      200e-6, // superbuffers are wide: W/L = 50
		L:      4e-6,
		VDD:    5,
		VT:     1,
	}
	r, err := dev.EffectiveResistance()
	if err != nil {
		t.Fatal(err)
	}
	if r < 380/2.0 || r > 380*2.0 {
		t.Errorf("EffectiveResistance = %g, want within 2x of 380", r)
	}
}

func TestEffectiveResistanceErrors(t *testing.T) {
	if _, err := (Device{}).EffectiveResistance(); err == nil {
		t.Error("zero device accepted")
	}
	if _, err := (Device{KPrime: 1, W: 1, L: 1, VDD: 1, VT: 2}).EffectiveResistance(); err == nil {
		t.Error("VDD <= VT accepted")
	}
}

func TestAttachDriver(t *testing.T) {
	b := rctree.NewBuilder("in")
	out, err := AttachDriver(b, Superbuffer())
	if err != nil {
		t.Fatal(err)
	}
	far := b.Resistor(out, "far", 100)
	b.Capacitor(far, 1)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	kind, r, _ := tr.Edge(out)
	if kind != rctree.EdgeResistor || r != 380 {
		t.Errorf("driver edge = %v %g", kind, r)
	}
	if got := tr.NodeCap(out); got != 0.04 {
		t.Errorf("driver output cap = %g, want 0.04", got)
	}
	if _, err := AttachDriver(rctree.NewBuilder("x"), Driver{}); err == nil {
		t.Error("AttachDriver accepted invalid driver")
	}
}

// TestFanoutNet builds the Figure 1 scenario — one inverter driving three
// gates through poly lines — and checks the timing structure end to end.
func TestFanoutNet(t *testing.T) {
	d := Superbuffer()
	// Three branches: short, medium, long poly runs (ohms / pF).
	lineR := []float64{90, 180, 540}
	lineC := []float64{0.005, 0.01, 0.03}
	loads := []Load{{Name: "g1", C: 0.013}, {Name: "g2", C: 0.013}, {Name: "g3", C: 0.013}}
	tr, err := FanoutNet(d, lineR, lineC, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Outputs()) != 3 {
		t.Fatalf("outputs = %d, want 3", len(tr.Outputs()))
	}
	results, err := core.AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Longest branch must be the critical one at any threshold.
	crit := core.CriticalOutputs(results, 0.7)
	if crit[0].Name != "g3" {
		t.Errorf("critical output = %q, want g3", crit[0].Name)
	}
	// All outputs share TP.
	for _, r := range results[1:] {
		if math.Abs(r.Times.TP-results[0].Times.TP) > 1e-12 {
			t.Error("TP differs between outputs")
		}
	}
	// Monotone: more interconnect means more TD.
	if !(results[0].Times.TD < results[1].Times.TD && results[1].Times.TD < results[2].Times.TD) {
		t.Errorf("TD not ordered by branch length: %g, %g, %g",
			results[0].Times.TD, results[1].Times.TD, results[2].Times.TD)
	}
}

func TestFanoutNetErrors(t *testing.T) {
	d := Superbuffer()
	cases := []struct {
		name       string
		r, c       []float64
		loads      []Load
		wantSubstr string
	}{
		{"length mismatch", []float64{1}, []float64{1, 2}, []Load{{}}, "equal-length"},
		{"no loads", nil, nil, nil, "at least one"},
		{"negative line", []float64{-1}, []float64{1}, []Load{{}}, "negative"},
		{"zero branch", []float64{0}, []float64{0}, []Load{{}}, "nonzero interconnect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FanoutNet(d, tc.r, tc.c, tc.loads)
			if err == nil {
				t.Fatal("FanoutNet succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Errorf("error %q missing %q", err, tc.wantSubstr)
			}
		})
	}
}
