package batch

import (
	"sync"

	"repro/internal/rctree"
)

// CacheStats reports cache effectiveness. Hits counts jobs answered from a
// completed or in-flight entry; Misses counts jobs that computed a fresh
// entry; Evictions counts entries dropped to respect the size bound.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// cacheEntry is one memoized analysis. The creator computes times and err,
// then closes ready; every later reader waits on ready and shares the
// outcome.
type cacheEntry struct {
	ready chan struct{}
	times map[int]rctree.Times // canonical node position -> times
	err   error
}

// timesCache memoizes characteristic-time computations by content hash,
// with single-flight semantics: the first goroutine to ask for a key
// computes it, concurrent askers block until it is done. Entries are
// evicted FIFO beyond max, skipping entries still in flight (evicting one
// would let a duplicate job recompute concurrently, voiding the
// single-flight guarantee); the cache may therefore briefly exceed max
// while that many computations are outstanding.
type timesCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	order   []string // insertion order, for FIFO eviction
	max     int
	stats   CacheStats
}

func newTimesCache(max int) *timesCache {
	return &timesCache{entries: map[string]*cacheEntry{}, max: max}
}

// acquire returns the entry for key and whether the caller must compute it.
// When compute is true the caller owns the entry: it must fill times/err and
// call release. When compute is false the entry may still be in flight; wait
// on entry.ready before reading.
func (c *timesCache) acquire(key string) (entry *cacheEntry, compute bool) {
	if c == nil {
		return &cacheEntry{ready: make(chan struct{})}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		return e, false
	}
	c.stats.Misses++
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	for c.max > 0 && len(c.entries) > c.max {
		victim := -1
		for i, k := range c.order {
			ve := c.entries[k]
			select {
			case <-ve.ready: // completed: safe to evict
				victim = i
			default: // in flight (includes the entry just inserted)
			}
			if victim >= 0 {
				break
			}
		}
		if victim < 0 {
			break // everything is in flight; exceed max until one lands
		}
		delete(c.entries, c.order[victim])
		c.order = append(c.order[:victim], c.order[victim+1:]...)
		c.stats.Evictions++
	}
	return e, true
}

// release publishes a computed entry. Failed computations are removed so a
// later identical job retries instead of replaying the error forever.
func (c *timesCache) release(key string, e *cacheEntry) {
	close(e.ready)
	if c == nil || e.err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] == e {
		delete(c.entries, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

func (c *timesCache) statsSnapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
