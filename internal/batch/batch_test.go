package batch

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// sequentialResults is the single-goroutine reference the engine must
// reproduce exactly, in order, regardless of worker count.
func sequentialResults(t *testing.T, jobs []Job) []Result {
	t.Helper()
	eng := New(Options{Workers: 1, CacheSize: -1})
	return eng.Run(context.Background(), jobs)
}

func randomJobs(n int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Tree:       randnet.Tree(rng, randnet.DefaultConfig(20+rng.Intn(30))),
			Tag:        string(rune('a' + i%26)),
			Thresholds: []float64{0.1, 0.5, 0.9},
			Times:      []float64{10, 100},
			Checks:     []Check{{V: 0.5, T: 100}},
		}
	}
	return jobs
}

// TestRunDeterministic runs the same workload across several worker counts
// (under -race in CI) and demands bit-identical results in job order.
func TestRunDeterministic(t *testing.T) {
	jobs := randomJobs(200, 1)
	want := sequentialResults(t, jobs)
	for _, workers := range []int{2, 4, 8} {
		eng := New(Options{Workers: workers})
		got := eng.Run(context.Background(), jobs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != i {
				t.Errorf("workers=%d: result %d has Index %d", workers, i, got[i].Index)
			}
			// CacheHit depends on scheduling and the reference engine
			// runs cache-free (so it has no Key); everything else must
			// match.
			g := got[i]
			g.CacheHit = want[i].CacheHit
			g.Key = want[i].Key
			if !reflect.DeepEqual(g, want[i]) {
				t.Errorf("workers=%d: result %d differs:\n got %+v\nwant %+v", workers, i, g, want[i])
			}
		}
	}
}

// TestStreamOrdering feeds jobs through the streaming API and checks that
// results come back in submission order even with a racing worker pool.
func TestStreamOrdering(t *testing.T) {
	jobs := randomJobs(150, 2)
	want := sequentialResults(t, jobs)
	eng := New(Options{Workers: 4})
	in := make(chan Job)
	go func() {
		defer close(in)
		for _, j := range jobs {
			in <- j
		}
	}()
	i := 0
	for got := range eng.Stream(context.Background(), in) {
		if got.Index != i {
			t.Fatalf("stream emitted index %d at position %d", got.Index, i)
		}
		got.CacheHit = want[i].CacheHit
		got.Key = want[i].Key
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("stream result %d differs:\n got %+v\nwant %+v", i, got, want[i])
		}
		i++
	}
	if i != len(jobs) {
		t.Fatalf("stream emitted %d results, want %d", i, len(jobs))
	}
}

// TestCacheHits submits the same network many times — built with different
// node names and sibling orders — and checks that only one computation is
// paid for.
func TestCacheHits(t *testing.T) {
	mkTree := func(names [2]string, swap bool) *rctree.Tree {
		b := rctree.NewBuilder("in")
		add := func(k int) rctree.NodeID {
			r := []float64{15, 8}[k]
			id := b.Resistor(rctree.Root, names[k], r)
			b.Capacitor(id, []float64{2, 7}[k])
			b.Output(id)
			return id
		}
		if swap {
			add(1)
			add(0)
		} else {
			add(0)
			add(1)
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	jobs := []Job{
		{Tree: mkTree([2]string{"x", "y"}, false), Thresholds: []float64{0.5}},
		{Tree: mkTree([2]string{"p", "q"}, false), Thresholds: []float64{0.5}},
		{Tree: mkTree([2]string{"u", "v"}, true), Thresholds: []float64{0.5}},
	}
	eng := New(Options{Workers: 1}) // serial so hit accounting is exact
	results := eng.Run(context.Background(), jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.Key != results[0].Key {
			t.Fatalf("job %d has key %s, want shared key %s", i, res.Key, results[0].Key)
		}
	}
	if results[0].CacheHit || !results[1].CacheHit || !results[2].CacheHit {
		t.Errorf("cache hits = %v %v %v, want false true true",
			results[0].CacheHit, results[1].CacheHit, results[2].CacheHit)
	}
	stats := eng.CacheStats()
	if stats.Misses != 1 || stats.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss, 2 hits", stats)
	}

	// The memoized times must still be reported under each job's own node
	// names, with the declaration order preserved per job.
	if got := results[1].Outputs[0].Name; got != "p" {
		t.Errorf("job 1 first output = %q, want %q", got, "p")
	}
	if got := results[2].Outputs[0].Name; got != "v" {
		t.Errorf("job 2 first output = %q, want %q (swapped declaration order)", got, "v")
	}
	// Swapped construction attaches y-then-x, so v (the 8Ω/7 arm) comes
	// first; its times must equal job 0's matching arm y.
	if results[2].Outputs[0].Times != results[0].Outputs[1].Times {
		t.Errorf("structurally identical outputs disagree: %+v vs %+v",
			results[2].Outputs[0].Times, results[0].Outputs[1].Times)
	}
}

// TestCacheHitsConcurrent hammers one network from many workers; duplicate
// in-flight jobs must collapse onto a single computation and every result
// must agree (run with -race).
func TestCacheHitsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := randnet.Tree(rng, randnet.DefaultConfig(40))
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{Tree: tree, Thresholds: []float64{0.5}}
	}
	eng := New(Options{Workers: 8})
	results := eng.Run(context.Background(), jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if !reflect.DeepEqual(res.Outputs, results[0].Outputs) {
			t.Fatalf("job %d outputs differ from job 0", i)
		}
	}
	stats := eng.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 computation for 64 identical jobs", stats.Misses)
	}
	if stats.Hits != int64(len(jobs))-1 {
		t.Errorf("hits = %d, want %d", stats.Hits, len(jobs)-1)
	}
}

// TestCacheDisabled checks that a negative cache size really disables
// memoization.
func TestCacheDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := randnet.Tree(rng, randnet.DefaultConfig(10))
	eng := New(Options{Workers: 2, CacheSize: -1})
	results := eng.Run(context.Background(), []Job{{Tree: tree}, {Tree: tree}})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.CacheHit {
			t.Errorf("job %d hit a disabled cache", i)
		}
	}
	if stats := eng.CacheStats(); stats.Hits != 0 || stats.Misses != 0 {
		t.Errorf("disabled cache counted %+v", stats)
	}
}

// TestSharedEngineConcurrentRuns issues two Run calls on one engine at
// once (run with -race): both must complete with correct, ordered results,
// and the engine-wide slots must bound processing without deadlocking.
func TestSharedEngineConcurrentRuns(t *testing.T) {
	jobsA := randomJobs(40, 20)
	jobsB := randomJobs(40, 21)
	wantA := sequentialResults(t, jobsA)
	wantB := sequentialResults(t, jobsB)
	eng := New(Options{Workers: 2})
	var wg sync.WaitGroup
	check := func(jobs []Job, want []Result) {
		defer wg.Done()
		got := eng.Run(context.Background(), jobs)
		for i := range got {
			got[i].CacheHit = want[i].CacheHit
			got[i].Key = want[i].Key
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("concurrent run: result %d differs", i)
			}
		}
	}
	wg.Add(2)
	go check(jobsA, wantA)
	go check(jobsB, wantB)
	wg.Wait()
}

// TestEvictionSkipsInFlight drives the cache directly: entries whose
// computation has not finished must never be evicted, or single-flight
// dedup would silently break.
func TestEvictionSkipsInFlight(t *testing.T) {
	c := newTimesCache(1)
	ea, _ := c.acquire("a") // in flight
	eb, _ := c.acquire("b") // in flight; nothing evictable yet
	if got := c.statsSnapshot().Entries; got != 2 {
		t.Fatalf("in-flight entries evicted: %d entries, want 2", got)
	}
	if e, compute := c.acquire("a"); compute || e != ea {
		t.Fatal("in-flight entry 'a' lost its single-flight identity")
	}
	c.release("a", ea) // completed: now evictable
	c.acquire("c")     // must evict "a", not the in-flight "b"
	if _, ok := c.entries["b"]; !ok {
		t.Fatal("in-flight entry 'b' was evicted")
	}
	if _, ok := c.entries["a"]; ok {
		t.Fatal("completed entry 'a' survived eviction")
	}
	c.release("b", eb)
	if s := c.statsSnapshot(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestEviction bounds the cache and checks old entries fall out FIFO.
func TestEviction(t *testing.T) {
	jobs := randomJobs(10, 5)
	eng := New(Options{Workers: 1, CacheSize: 3})
	eng.Run(context.Background(), jobs)
	stats := eng.CacheStats()
	if stats.Entries > 3 {
		t.Errorf("cache holds %d entries, bound is 3", stats.Entries)
	}
	if stats.Evictions == 0 {
		t.Errorf("expected evictions on a 10-job workload with a 3-entry cache")
	}
}

// TestChecksAndErrors covers per-job error isolation: a nil tree and an
// unknown check output fail their own jobs without disturbing neighbors.
func TestChecksAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree := randnet.Tree(rng, randnet.DefaultConfig(15))
	out := tree.Name(tree.Outputs()[0])
	jobs := []Job{
		{Tree: tree, Checks: []Check{{Output: out, V: 0.5, T: 1e9}}},
		{Tree: nil},
		{Tree: tree, Checks: []Check{{Output: "no-such-node", V: 0.5, T: 1}}},
		{Tree: tree, Checks: []Check{{V: 0.5, T: -1}}}, // expands to all outputs
	}
	results := New(Options{Workers: 2}).Run(context.Background(), jobs)
	if results[0].Err != nil {
		t.Fatalf("job 0: %v", results[0].Err)
	}
	if v := results[0].Checks[0].Verdict; v != core.Passes {
		t.Errorf("deadline 1e9 verdict = %v, want passes", v)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Errorf("jobs 1 and 2 should fail, got %v and %v", results[1].Err, results[2].Err)
	}
	if results[3].Err != nil {
		t.Fatalf("job 3: %v", results[3].Err)
	}
	if len(results[3].Checks) != len(tree.Outputs()) {
		t.Errorf("wildcard check expanded to %d results, want %d", len(results[3].Checks), len(tree.Outputs()))
	}
	for _, c := range results[3].Checks {
		if c.Verdict != core.Fails {
			t.Errorf("deadline -1 at output %s = %v, want fails", c.Output, c.Verdict)
		}
	}
}

// TestRunCancellation cancels mid-batch and checks unstarted jobs are
// answered with the context error while the slice stays fully populated.
func TestRunCancellation(t *testing.T) {
	jobs := randomJobs(50, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := New(Options{Workers: 2}).Run(ctx, jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	canceled := 0
	for _, res := range results {
		if res.Err == context.Canceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("expected at least one job to be answered with context.Canceled")
	}
}

// TestAgainstDirectAnalysis cross-checks the engine against core.AnalyzeTree
// on every job of a random workload.
func TestAgainstDirectAnalysis(t *testing.T) {
	jobs := randomJobs(60, 8)
	results := New(Options{Workers: 4}).Run(context.Background(), jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		direct, err := core.AnalyzeTree(jobs[i].Tree)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(res.Outputs) {
			t.Fatalf("job %d: %d outputs, want %d", i, len(res.Outputs), len(direct))
		}
		for k, d := range direct {
			if res.Outputs[k].Name != d.Name || res.Outputs[k].Times != d.Times {
				t.Errorf("job %d output %d: %+v, want %s %+v",
					i, k, res.Outputs[k], d.Name, d.Times)
			}
		}
	}
}
