// Package batch is the concurrent batch-analysis engine: it fans a stream
// of independent analysis jobs (an RC tree plus the thresholds, time points
// and deadline checks to evaluate) out across a pool of workers, memoizes
// repeated characteristic-time computations behind a content-hash cache,
// and collects the results in deterministic submission order.
//
// The unit of work is a Job; the per-job answer is a Result holding one
// OutputReport per designated output (characteristic times, delay-bound
// rows, voltage-bound rows) and one CheckResult per deadline certification.
// An Engine owns the worker pool and the cache:
//
//	eng := batch.New(batch.Options{})        // GOMAXPROCS workers
//	results := eng.Run(ctx, jobs)            // results[i] answers jobs[i]
//
// Concurrency model. Each worker owns a private core.Analyzer, so the
// characteristic-time scratch arrays are reused across jobs without being
// shared between goroutines. Trees are immutable and may appear in any
// number of jobs. Run fills a slice indexed by job position; Stream passes
// results through a reordering collector — either way the output order is
// the input order, regardless of which worker finished first.
//
// Memoization. Two jobs whose trees describe the same network — same
// topology, element values and output placement, regardless of node names
// or construction order — share one characteristic-time computation. The
// cache key comes from netlist.CanonicalHash, a Merkle-style content hash
// with the same equivalence classes as the canonical deck of
// netlist.Canonical, and the cached value stores times by canonical node
// position, so a hit is translated back through each job's own node names.
// Concurrent jobs with the same key collapse into a single computation
// (duplicates wait rather than recompute).
package batch
