package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
)

// Check is one deadline certification: does the named output reach voltage
// V by time T? An empty Output applies the check to every designated output
// of the job's tree.
type Check struct {
	Output string
	V, T   float64
}

// CheckResult is the verdict of one expanded Check.
type CheckResult struct {
	Output  string
	V, T    float64
	Verdict core.Verdict
}

// Job is one unit of batch work: a tree plus the evaluations to run on it.
// Thresholds and Times may be empty (the report then carries characteristic
// times only). The tree is read, never written; the same *rctree.Tree may
// back any number of jobs.
type Job struct {
	Tree       *rctree.Tree
	Tag        string    // caller correlation label, echoed in the Result
	Thresholds []float64 // delay-table rows (TMin/TMax per threshold)
	Times      []float64 // voltage-table rows (VMin/VMax per time)
	Checks     []Check   // deadline certifications
}

// OutputReport is the analysis of one designated output.
type OutputReport struct {
	Name    string
	Times   rctree.Times
	Delay   []core.DelayRow
	Voltage []core.VoltageRow
}

// Result answers one Job. Outputs follow the tree's output-declaration
// order; Checks follow the job's check order (a check with empty Output
// expands to one CheckResult per output). Key is the content hash under
// which the analysis was memoized (empty when the engine's cache is
// disabled), and CacheHit reports whether another job had already paid
// for it.
type Result struct {
	Index    int
	Tag      string
	Key      string
	CacheHit bool
	Outputs  []OutputReport
	Checks   []CheckResult
	Err      error
}

// Options configures an Engine. The zero value is ready for production use.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the memoization cache (entries). 0 means the
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
	// Obs receives pool telemetry: jobs processed, cache hit/miss counters,
	// and sampled queue-depth/cache-size gauges. Nil disables it.
	Obs *obs.Registry
}

// DefaultCacheSize bounds the memoization cache when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// Engine is a reusable batch-analysis engine: a worker pool plus a shared
// memoization cache. Engines are safe for concurrent use; a single Engine
// should be shared so independent callers benefit from each other's cache
// entries. The worker bound is engine-wide: concurrent Run and Stream
// calls share the same slots, so total CPU-bound concurrency never
// exceeds Workers no matter how many callers are active (excess jobs
// queue).
type Engine struct {
	workers int
	slots   chan struct{} // engine-wide concurrency permits, cap == workers
	cache   *timesCache
	obs     *obs.Registry
}

// New returns an Engine with the given options.
func New(opt Options) *Engine {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var c *timesCache
	switch {
	case opt.CacheSize == 0:
		c = newTimesCache(DefaultCacheSize)
	case opt.CacheSize > 0:
		c = newTimesCache(opt.CacheSize)
	}
	e := &Engine{workers: w, slots: make(chan struct{}, w), cache: c, obs: opt.Obs}
	if e.obs != nil {
		// Sampled at exposition time: how many of the engine-wide permits are
		// claimed right now, and the cache occupancy.
		e.obs.GaugeFunc("batch_inflight", func() float64 { return float64(len(e.slots)) })
		e.obs.GaugeFunc("batch_cache_entries", func() float64 {
			return float64(e.cache.statsSnapshot().Entries)
		})
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// CacheStats snapshots the cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.statsSnapshot() }

// Run analyzes every job and returns results[i] answering jobs[i]. Workers
// claim jobs from a shared feed, so completion order is nondeterministic,
// but the returned slice is not: position i always holds job i's answer.
// If ctx is canceled, jobs not yet started complete with Err = ctx.Err().
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	feed := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			analyzer := core.NewAnalyzer()
			for i := range feed {
				e.slots <- struct{}{}
				results[i] = e.process(analyzer, i, jobs[i])
				<-e.slots
			}
		}()
	}
	ctxErr := error(nil)
feedLoop:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			for j := i; j < len(jobs); j++ {
				results[j] = Result{Index: j, Tag: jobs[j].Tag, Err: ctxErr}
			}
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	return results
}

// Stream analyzes jobs as they arrive on in and emits results on the
// returned channel in submission order: the n'th result answers the n'th
// job received, no matter which worker finished first. The result channel
// closes once in is closed and drained (or ctx is canceled; remaining jobs
// are then drained and answered with Err = ctx.Err()).
func (e *Engine) Stream(ctx context.Context, in <-chan Job) <-chan Result {
	type seqJob struct {
		seq int
		job Job
	}
	feed := make(chan seqJob)
	done := make(chan Result)
	out := make(chan Result)

	// Dispatcher: stamp arrival order onto each job.
	go func() {
		defer close(feed)
		seq := 0
		for job := range in {
			select {
			case feed <- seqJob{seq, job}:
			case <-ctx.Done():
				done <- Result{Index: seq, Tag: job.Tag, Err: ctx.Err()}
			}
			seq++
		}
	}()

	// Workers.
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			analyzer := core.NewAnalyzer()
			for sj := range feed {
				e.slots <- struct{}{}
				r := e.process(analyzer, sj.seq, sj.job)
				<-e.slots
				done <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collector: reorder completions back into submission order. Every
	// stamped sequence number produces exactly one result on done (via a
	// worker, or via the dispatcher's cancellation branch) before done
	// closes, so pending always drains to empty here.
	go func() {
		defer close(out)
		pending := map[int]Result{}
		next := 0
		for r := range done {
			pending[r.Index] = r
			for {
				head, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- head
				next++
			}
		}
	}()
	return out
}

// process runs one job on one worker. The analyzer is worker-private; the
// cache is the only shared state and is internally synchronized.
func (e *Engine) process(analyzer *core.Analyzer, index int, job Job) Result {
	res := e.processInner(analyzer, index, job)
	if e.obs != nil {
		e.obs.Counter("batch_jobs_total").Add(1)
		if res.Key != "" { // memoization ran: classify the outcome
			if res.CacheHit {
				e.obs.Counter("batch_cache_hits_total").Add(1)
			} else {
				e.obs.Counter("batch_cache_misses_total").Add(1)
			}
		}
	}
	return res
}

func (e *Engine) processInner(analyzer *core.Analyzer, index int, job Job) Result {
	res := Result{Index: index, Tag: job.Tag}
	if job.Tree == nil {
		res.Err = fmt.Errorf("batch: job %d has no tree", index)
		return res
	}
	var results []core.Result
	if e.cache == nil {
		// Caching disabled: analyze directly, no hashing, no Key.
		var err error
		results, err = analyzer.Analyze(job.Tree)
		if err != nil {
			res.Err = err
			return res
		}
	} else {
		var err error
		results, err = e.memoized(analyzer, &res, job.Tree)
		if err != nil {
			res.Err = err
			return res
		}
	}

	var bounds map[string]*core.Bounds // only checks need by-name lookup
	if len(job.Checks) > 0 {
		bounds = make(map[string]*core.Bounds, len(results))
	}
	res.Outputs = make([]OutputReport, 0, len(results))
	for _, r := range results {
		if bounds != nil {
			bounds[r.Name] = r.Bounds
		}
		rep := OutputReport{Name: r.Name, Times: r.Times}
		if len(job.Thresholds) > 0 {
			rep.Delay = r.Bounds.DelayTable(job.Thresholds)
		}
		if len(job.Times) > 0 {
			rep.Voltage = r.Bounds.VoltageTable(job.Times)
		}
		res.Outputs = append(res.Outputs, rep)
	}
	for _, chk := range job.Checks {
		if chk.Output == "" {
			for _, r := range results {
				res.Checks = append(res.Checks, CheckResult{
					Output: r.Name, V: chk.V, T: chk.T, Verdict: r.Bounds.OK(chk.V, chk.T),
				})
			}
			continue
		}
		b, ok := bounds[chk.Output]
		if !ok {
			res.Err = fmt.Errorf("batch: job %d: check references unknown output %q", index, chk.Output)
			return res
		}
		res.Checks = append(res.Checks, CheckResult{
			Output: chk.Output, V: chk.V, T: chk.T, Verdict: b.OK(chk.V, chk.T),
		})
	}
	return res
}

// memoized returns the per-output analysis of the tree through the cache:
// a miss computes and publishes the characteristic times by canonical node
// position, a hit translates the memoized times back through this tree's
// own node names and declaration order. Bound evaluators are cheap to
// rebuild; only the O(n)-per-output time passes are worth memoizing.
func (e *Engine) memoized(analyzer *core.Analyzer, res *Result, t *rctree.Tree) ([]core.Result, error) {
	key, canon := netlist.CanonicalHash(t)
	res.Key = key
	entry, compute := e.cache.acquire(key)
	if compute {
		results, err := analyzer.Analyze(t)
		if err != nil {
			entry.err = err
		} else {
			entry.times = make(map[int]rctree.Times, len(results))
			for _, r := range results {
				entry.times[canon[r.Output]] = r.Times
			}
		}
		e.cache.release(key, entry)
		return results, entry.err
	}
	res.CacheHit = true
	<-entry.ready
	if entry.err != nil {
		return nil, entry.err
	}
	results := make([]core.Result, 0, len(t.Outputs()))
	for _, o := range t.Outputs() {
		tm, ok := entry.times[canon[o]]
		if !ok {
			return nil, fmt.Errorf("batch: no cached times for output %q", t.Name(o))
		}
		b, err := core.New(tm)
		if err != nil {
			return nil, fmt.Errorf("batch: output %q: %w", t.Name(o), err)
		}
		results = append(results, core.Result{Output: o, Name: t.Name(o), Times: tm, Bounds: b})
	}
	return results, nil
}
