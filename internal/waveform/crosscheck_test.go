package waveform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randnet"
	"repro/internal/sim"
)

// TestExactResponseMatchesTransientInput cross-validates the closed-form
// modal superposition against the time-stepping integrator fed the same PWL
// input, on random lumped trees — two fully independent evaluation paths.
func TestExactResponseMatchesTransientInput(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(10))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		ckt, err := sim.NewCircuit(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatal(err)
		}
		tp := tr.TPTotal()
		in := PWL{
			T: []float64{0, tp * 0.3, tp * 0.5, tp * 1.2},
			V: []float64{0, 0.4, 0.6, 1},
		}
		h := tp / 4000
		steps := 8000 // out to 2·TP
		wave, err := ckt.TransientInput(sim.Trapezoidal, h, steps, in.At)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Outputs() {
			i, _ := ckt.Index(e)
			for k := 1000; k <= steps; k += 1750 {
				tt := wave.Times[k]
				closed, err := ExactResponse(resp, i, in, tt)
				if err != nil {
					t.Fatal(err)
				}
				stepped := wave.At(k, i)
				if math.Abs(closed-stepped) > 2e-4 {
					t.Fatalf("trial %d output %q t=%g: closed-form %.8f vs stepped %.8f",
						trial, tr.Name(e), tt, closed, stepped)
				}
			}
		}
	}
}
