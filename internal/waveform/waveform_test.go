package waveform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/randnet"
	"repro/internal/rctree"
	"repro/internal/sim"
)

func TestPWLBasics(t *testing.T) {
	r := Ramp(10)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{-1: 0, 0: 0, 5: 0.5, 10: 1, 99: 1}
	for tt, want := range cases {
		if got := r.At(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("Ramp(10).At(%g) = %g, want %g", tt, got, want)
		}
	}
	s := Step()
	if s.At(0) != 1 || s.At(5) != 1 || s.At(-1) != 0 {
		t.Error("Step values wrong")
	}
	if Ramp(0).At(0) != 1 {
		t.Error("zero-rise ramp should be a step")
	}
}

func TestPWLValidate(t *testing.T) {
	bad := []PWL{
		{},
		{T: []float64{0, 1}, V: []float64{0}},
		{T: []float64{0, 0}, V: []float64{0, 1}},
		{T: []float64{0, 1}, V: []float64{1, 0}}, // decreasing
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func singleRC(t *testing.T) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n := b.Resistor(rctree.Root, "out", 1000)
	b.Capacitor(n, 1e-3) // tau = 1
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n
}

// TestExactRampSinglePole: the closed-form PWL response of a one-pole
// circuit to a ramp matches the textbook answer
//
//	v(t) = (t − tau(1 − e^(−t/tau)))/T            for t <= T
//	v(t) = 1 − (tau/T)(e^(−(t−T)/tau) − e^(−t/tau))  for t > T
func TestExactRampSinglePole(t *testing.T) {
	tr, out := singleRC(t)
	ckt, err := sim.NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	const T = 2.0 // rise time, tau = 1
	ramp := Ramp(T)
	for _, tt := range []float64{0.2, 1, 2, 3, 5} {
		got, err := ExactResponse(resp, i, ramp, tt)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		if tt <= T {
			want = (tt - (1 - math.Exp(-tt))) / T
		} else {
			want = 1 - (math.Exp(-(tt-T))-math.Exp(-tt))/T
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("v(%g) = %.12f, want %.12f", tt, got, want)
		}
	}
}

// TestStepPWLEqualsStepResponse: feeding the degenerate step PWL through the
// superposition machinery reproduces the plain step response and bounds.
func TestStepPWLEqualsStepResponse(t *testing.T) {
	tr, out := singleRC(t)
	ckt, _ := sim.NewCircuit(tr)
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	tm, _ := tr.CharacteristicTimes(out)
	b := core.MustNew(tm)
	for _, tt := range []float64{0.1, 0.7, 2} {
		got, err := ExactResponse(resp, i, Step(), tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := resp.Voltage(i, tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("step PWL v(%g) = %g, want %g", tt, got, want)
		}
		lo, hi, err := ResponseBounds(b, Step(), tt, 16)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lo-b.VMin(tt)) > 1e-12 || math.Abs(hi-b.VMax(tt)) > 1e-12 {
			t.Errorf("step PWL bounds (%g,%g) != (%g,%g)", lo, hi, b.VMin(tt), b.VMax(tt))
		}
	}
}

// TestRampBoundsBracketExact: DESIGN E10 — on random lumped trees, the
// superposed bound envelope brackets the exact ramp response.
func TestRampBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(12))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		ckt, err := sim.NewCircuit(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatal(err)
		}
		tp := tr.TPTotal()
		ramp := Ramp(tp / 2)
		for _, e := range tr.Outputs() {
			tm, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			b := core.MustNew(tm)
			i, _ := ckt.Index(e)
			for s := 1; s <= 12; s++ {
				tt := tp * 3 * float64(s) / 12
				exact, err := ExactResponse(resp, i, ramp, tt)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi, err := ResponseBounds(b, ramp, tt, 128)
				if err != nil {
					t.Fatal(err)
				}
				// Simpson quadrature error allowance.
				if exact < lo-1e-5 || exact > hi+1e-5 {
					t.Fatalf("trial %d output %q t=%g: exact %.8f outside [%.8f, %.8f]",
						trial, tr.Name(e), tt, exact, lo, hi)
				}
			}
		}
	}
}

// TestMultiSegmentPWL exercises a three-piece input (slow start, fast
// middle, plateau) against quadrature of the exact response.
func TestMultiSegmentPWL(t *testing.T) {
	tr, out := singleRC(t)
	ckt, _ := sim.NewCircuit(tr)
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	in := PWL{T: []float64{0, 1, 1.5, 4}, V: []float64{0, 0.2, 0.9, 1}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reference by dense numeric superposition of the exact step response.
	ref := func(tt float64) float64 {
		const n = 20000
		var sum float64
		for k := 0; k < n; k++ {
			tau0 := tt * float64(k) / n
			tau1 := tt * float64(k+1) / n
			du := in.At(tau1) - in.At(tau0)
			sum += du * resp.Voltage(i, tt-(tau0+tau1)/2)
		}
		return sum
	}
	for _, tt := range []float64{0.5, 1.2, 2, 5} {
		got, err := ExactResponse(resp, i, in, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref(tt); math.Abs(got-want) > 2e-4 {
			t.Errorf("v(%g) = %g, numeric reference %g", tt, got, want)
		}
	}
}

// TestCrossingBounds: ramp-input crossing bounds bracket the exact ramp
// crossing and collapse toward the step bounds as rise time shrinks.
func TestCrossingBounds(t *testing.T) {
	tr, out := singleRC(t)
	ckt, _ := sim.NewCircuit(tr)
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	tm, _ := tr.CharacteristicTimes(out)
	b := core.MustNew(tm)

	ramp := Ramp(2.0)
	tLo, tHi, err := CrossingBounds(b, ramp, 0.5, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Exact crossing by bisection on the closed-form ramp response.
	exact := bisectRising(func(tt float64) float64 {
		v, _ := ExactResponse(resp, i, ramp, tt)
		return v
	}, 0.5, 50)
	if exact < tLo-1e-6 || exact > tHi+1e-6 {
		t.Errorf("exact ramp crossing %g outside [%g, %g]", exact, tLo, tHi)
	}
	// For a single pole the bounds are exact: the bracket is tight.
	if tHi-tLo > 1e-3*(1+exact) {
		t.Errorf("single-pole ramp bracket should be tight: [%g, %g]", tLo, tHi)
	}

	if _, _, err := CrossingBounds(b, ramp, 0, 50, 8); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := CrossingBounds(b, ramp, 0.5, 0, 8); err == nil {
		t.Error("zero horizon accepted")
	}
	// Unreachable threshold within the horizon returns +Inf upper bound.
	_, tHiInf, err := CrossingBounds(b, ramp, 0.999, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tHiInf, 1) {
		t.Errorf("tHi = %g, want +Inf for unreachable threshold", tHiInf)
	}
}

func TestResponseBoundsValidation(t *testing.T) {
	tm := rctree.Times{TP: 3, TD: 2, TR: 1, Ree: 1}
	b := core.MustNew(tm)
	if _, _, err := ResponseBounds(b, PWL{}, 1, 8); err == nil {
		t.Error("empty PWL accepted")
	}
	if _, err := ExactResponse(&sim.Response{}, 0, PWL{}, 1); err == nil {
		t.Error("ExactResponse accepted empty PWL")
	}
}
