// Package waveform extends the step-response bounds to arbitrary monotone
// excitations, the generalization the paper's §VI sketches: "the results can
// be extended to upper and lower bounds for arbitrary excitation by use of
// the superposition integral."
//
// For an input u(t) that rises from 0 to 1 with nondecreasing slope pattern
// (any piecewise-linear nondecreasing u), the output is the superposition
//
//	v(t) = ∫₀ᵗ u'(τ)·s(t−τ) dτ
//
// where s is the unit-step response. Because u' ≥ 0, replacing s by its
// lower/upper bound produces valid lower/upper bounds on v. The integral is
// evaluated in closed form per linear segment for exact modal responses, and
// by fine fixed-step Simpson quadrature for the bound envelope.
package waveform

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// PWL is a piecewise-linear waveform through the breakpoints (T[i], V[i]).
// T must be strictly increasing; before T[0] the value is V[0], after the
// last breakpoint it stays at the final value.
type PWL struct {
	T, V []float64
}

// Step returns the unit step (as a degenerate PWL with an immediate rise).
func Step() PWL { return PWL{T: []float64{0}, V: []float64{1}} }

// Ramp returns a 0→1 ramp of the given rise time.
func Ramp(rise float64) PWL {
	if rise <= 0 {
		return Step()
	}
	return PWL{T: []float64{0, rise}, V: []float64{0, 1}}
}

// Validate checks breakpoint ordering and monotonicity (required for the
// bound superposition to be valid).
func (p PWL) Validate() error {
	if len(p.T) == 0 || len(p.T) != len(p.V) {
		return fmt.Errorf("waveform: PWL needs equal, nonzero T and V lengths")
	}
	for i := 1; i < len(p.T); i++ {
		if p.T[i] <= p.T[i-1] {
			return fmt.Errorf("waveform: breakpoints not strictly increasing at %d", i)
		}
		if p.V[i] < p.V[i-1] {
			return fmt.Errorf("waveform: PWL not nondecreasing at %d; bound superposition requires u' >= 0", i)
		}
	}
	return nil
}

// At evaluates the waveform.
func (p PWL) At(t float64) float64 {
	if len(p.T) == 0 {
		return 0
	}
	if t <= p.T[0] {
		if t == p.T[0] {
			return p.V[0]
		}
		return p.V[0] * 0 // before the first breakpoint the input is still 0
	}
	for i := 1; i < len(p.T); i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[len(p.V)-1]
}

// segments yields the linear pieces as (t0, t1, slope) triples, including
// an initial jump at T[0] if V[0] > 0 (treated as an ideal step of height
// V[0] at T[0]).
type segment struct {
	t0, t1, slope float64
}

func (p PWL) jumps() (stepAt, stepHeight float64, segs []segment) {
	stepAt, stepHeight = p.T[0], p.V[0]
	for i := 1; i < len(p.T); i++ {
		slope := (p.V[i] - p.V[i-1]) / (p.T[i] - p.T[i-1])
		if slope != 0 {
			segs = append(segs, segment{p.T[i-1], p.T[i], slope})
		}
	}
	return stepAt, stepHeight, segs
}

// ResponseBounds evaluates lower and upper bounds on the response to input
// p at time t by superposition over the Penfield–Rubinstein step envelope.
// quad controls the Simpson subdivisions per linear segment (>= 2;
// defaulted to 64 when smaller).
func ResponseBounds(b *core.Bounds, p PWL, t float64, quad int) (lo, hi float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if quad < 2 {
		quad = 64
	}
	stepAt, stepHeight, segs := p.jumps()
	// Ideal-step component.
	lo = stepHeight * b.VMin(t-stepAt)
	hi = stepHeight * b.VMax(t-stepAt)
	// Ramp components: ∫ slope · s(t−τ) dτ over [t0, min(t1, t)].
	for _, s := range segs {
		upper := math.Min(s.t1, t)
		if upper <= s.t0 {
			continue
		}
		lo += s.slope * simpson(func(tau float64) float64 { return b.VMin(t - tau) }, s.t0, upper, quad)
		hi += s.slope * simpson(func(tau float64) float64 { return b.VMax(t - tau) }, s.t0, upper, quad)
	}
	return clamp01(lo), clamp01(hi), nil
}

// ExactResponse evaluates the exact response of circuit unknown i to input
// p at time t, in closed form, from the modal step response
// s(t) = 1 + Σ A·e^(−λt):
//
//	∫ₐᵇ m·s(t−τ) dτ = m·[ (b−a) + Σ (A/λ)(e^(−λ(t−b)) − e^(−λ(t−a))) ]
func ExactResponse(r *sim.Response, i int, p PWL, t float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	stepAt, stepHeight, segs := p.jumps()
	v := stepHeight * stepResponse(r, i, t-stepAt)
	for _, s := range segs {
		bEnd := math.Min(s.t1, t)
		if bEnd <= s.t0 {
			continue
		}
		contrib := bEnd - s.t0
		for m, lam := range r.Lambda {
			contrib += r.A[i][m] / lam * (math.Exp(-lam*(t-bEnd)) - math.Exp(-lam*(t-s.t0)))
		}
		v += s.slope * contrib
	}
	return v, nil
}

func stepResponse(r *sim.Response, i int, t float64) float64 {
	if t < 0 {
		return 0
	}
	return r.Voltage(i, t)
}

// CrossingBounds brackets the time at which the response to input p crosses
// threshold vth: the lower bound comes from the upper response bound, the
// upper from the lower response bound, each located by bisection over
// [0, horizon]. A returned upper bound of +Inf means the lower envelope
// never reaches the threshold within the horizon.
func CrossingBounds(b *core.Bounds, p PWL, vth, horizon float64, quad int) (tLo, tHi float64, err error) {
	if vth <= 0 || vth >= 1 {
		return 0, 0, fmt.Errorf("waveform: threshold %g outside (0,1)", vth)
	}
	if horizon <= 0 {
		return 0, 0, fmt.Errorf("waveform: horizon must be positive")
	}
	hiAt := func(t float64) float64 { _, hi, _ := ResponseBounds(b, p, t, quad); return hi }
	loAt := func(t float64) float64 { lo, _, _ := ResponseBounds(b, p, t, quad); return lo }
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	tLo = bisectRising(hiAt, vth, horizon)
	tHi = bisectRising(loAt, vth, horizon)
	return tLo, tHi, nil
}

// bisectRising finds the first crossing of a nondecreasing function, or +Inf
// if f(horizon) < target.
func bisectRising(f func(float64) float64, target, horizon float64) float64 {
	if f(0) >= target {
		return 0
	}
	if f(horizon) < target {
		return math.Inf(1)
	}
	lo, hi := 0.0, horizon
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for k := 1; k < n; k++ {
		x := a + float64(k)*h
		if k%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
