package pla

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/mos"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestFigure13HeadlineClaim verifies the paper's stated conclusion: "even
// with as many as a hundred minterms, the delay is guaranteed to be no worse
// than 10 nsec" at threshold 0.7·VDD.
func TestFigure13HeadlineClaim(t *testing.T) {
	pts, err := Sweep(PaperParams(), []int{100}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	tmaxNs := pts[0].TMax / 1000 // ps -> ns
	// We compute 10.04 ns; the paper reads "no worse than 10 nsec" off its
	// log-log plot, so we accept up to 1% over the round number
	// (EXPERIMENTS.md E6 records the exact figure).
	if tmaxNs > 10.1 {
		t.Errorf("TMax(100 minterms, 0.7) = %.2f ns, paper guarantees ~10 ns", tmaxNs)
	}
	// And it is not absurdly below: the log-log plot shows the upper bound
	// in the same decade.
	if tmaxNs < 1 {
		t.Errorf("TMax(100 minterms) = %.2f ns seems too small against Figure 13", tmaxNs)
	}
}

// TestOCRVariantAgrees: with the scanned APL's 0.0107/0.0134 pF readings
// instead of the prose's 0.01/0.013, the headline claim still holds —
// justifying the substitution note in DESIGN.md.
func TestOCRVariantAgrees(t *testing.T) {
	p := PaperParams()
	p.InterGateC, p.GateC = 0.0107, 0.0134
	pts, err := Sweep(p, []int{100}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// The OCR digits add ~7% capacitance, landing at 10.5 ns — the same
	// decade and conclusion as the prose values.
	if ns := pts[0].TMax / 1000; ns > 11 {
		t.Errorf("OCR-variant TMax(100) = %.2f ns, expected ~10 ns", ns)
	}
}

// TestQuadraticGrowth: Figure 13's log-log plot shows quadratic dependence
// of delay on minterm count for long lines. The ratio TMax(4n)/TMax(n) must
// approach 16 at the long-line end.
func TestQuadraticGrowth(t *testing.T) {
	pts, err := Sweep(PaperParams(), []int{25, 100, 200, 800}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	shortRatio := pts[1].TMax / pts[0].TMax // 100 vs 25
	longRatio := pts[3].TMax / pts[2].TMax  // 800 vs 200
	if longRatio < 12 || longRatio > 17 {
		t.Errorf("long-line TMax ratio for 4x minterms = %g, want ~16 (quadratic)", longRatio)
	}
	// At small n the driver dominates, so growth is milder.
	if shortRatio >= longRatio {
		t.Errorf("growth should steepen with line length: short %g, long %g", shortRatio, longRatio)
	}
}

// TestSweepMonotone: more minterms can only slow the line down.
func TestSweepMonotone(t *testing.T) {
	pts, err := Sweep(PaperParams(), DefaultMinterms(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("got %d points, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TMax <= pts[i-1].TMax || pts[i].TMin < pts[i-1].TMin {
			t.Fatalf("sweep not monotone at n=%d", pts[i].Minterms)
		}
	}
	for _, p := range pts {
		if p.TMin > p.TMax {
			t.Fatalf("n=%d: TMin %g > TMax %g", p.Minterms, p.TMin, p.TMax)
		}
		if err := p.Times.Validate(); err != nil {
			t.Fatalf("n=%d: %v", p.Minterms, err)
		}
	}
}

// TestExprMatchesAPLStructure: the PLALINE loop runs ceil(n/2) times, so the
// expression holds 2 driver URCs plus 2 per section.
func TestExprMatchesAPLStructure(t *testing.T) {
	for _, tc := range []struct{ n, urcs int }{
		{1, 2 + 2},
		{2, 2 + 2},
		{3, 2 + 4},
		{100, 2 + 100},
	} {
		e, err := Expr(PaperParams(), tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := algebra.Size(e); got != tc.urcs {
			t.Errorf("n=%d: %d URC primitives, want %d", tc.n, got, tc.urcs)
		}
	}
}

// TestTreeMatchesExpr: the rctree rendering of the PLA line gives the same
// characteristic times as the algebraic evaluation.
func TestTreeMatchesExpr(t *testing.T) {
	p := PaperParams()
	for _, n := range []int{2, 10, 100} {
		e, err := Expr(p, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Eval().Times()
		if err != nil {
			t.Fatal(err)
		}
		tr, out, err := Tree(p, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.CharacteristicTimes(out)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.TP-want.TP) > 1e-9*want.TP || math.Abs(got.TD-want.TD) > 1e-9*want.TD ||
			math.Abs(got.TR-want.TR) > 1e-9*want.TR {
			t.Errorf("n=%d: tree %+v != expr %+v", n, got, want)
		}
	}
}

// TestBoundsBracketSimulatedPLA: the exact simulated 0.7 crossing of a
// 40-minterm line falls inside [TMin, TMax]. (40 minterms at 4 segments per
// line keeps the eigenproblem small enough for the test suite; the bracket
// property is size independent.)
func TestBoundsBracketSimulatedPLA(t *testing.T) {
	p := PaperParams()
	tr, out, err := Tree(p, 40)
	if err != nil {
		t.Fatal(err)
	}
	lumped, mapping, err := sim.Discretize(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, err := ckt.Index(mapping[out])
	if err != nil {
		t.Fatal(err)
	}
	cross := resp.CrossingTime(i, 0.7, 1e-10)

	tm, err := tr.CharacteristicTimes(out)
	if err != nil {
		t.Fatal(err)
	}
	b := core.MustNew(tm)
	if cross < b.TMin(0.7) || cross > b.TMax(0.7) {
		t.Errorf("simulated crossing %g ps outside bounds [%g, %g]",
			cross, b.TMin(0.7), b.TMax(0.7))
	}
	// Figure 11-style sanity: the bound gap at 0.7 stays within a factor ~3.
	if b.TMax(0.7)/b.TMin(0.7) > 3 {
		t.Errorf("bounds unusually loose: [%g, %g]", b.TMin(0.7), b.TMax(0.7))
	}
}

// TestParamsFromTech: physics-derived element values stay near the paper's
// rounded ones and produce the same Figure 13 conclusion.
func TestParamsFromTech(t *testing.T) {
	p, err := ParamsFromTech(wire.PaperTech())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.InterGateR-180) > 1e-9 || math.Abs(p.GateR-30) > 1e-9 {
		t.Errorf("tech resistances = %g, %g; want 180, 30", p.InterGateR, p.GateR)
	}
	if math.Abs(p.InterGateC-0.01) > 0.15*0.01 || math.Abs(p.GateC-0.013) > 0.1*0.013 {
		t.Errorf("tech capacitances = %g, %g pF; want ~0.01, ~0.013", p.InterGateC, p.GateC)
	}
	pts, err := Sweep(p, []int{100}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Physics-derived capacitances run ~10% above the paper's rounded pF
	// values, so the guarantee lands just over the round 10.
	if ns := pts[0].TMax / 1000; ns > 11 {
		t.Errorf("tech-derived TMax(100) = %.2f ns, want ~10 ns", ns)
	}
	if _, err := ParamsFromTech(wire.Tech{}); err == nil {
		t.Error("ParamsFromTech accepted invalid tech")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Expr(Params{}, 10); err == nil {
		t.Error("Expr accepted zero params")
	}
	if _, err := Expr(PaperParams(), 0); err == nil {
		t.Error("Expr accepted zero minterms")
	}
	if _, err := Sweep(PaperParams(), []int{10}, 0); err == nil {
		t.Error("Sweep accepted threshold 0")
	}
	if _, err := Sweep(PaperParams(), []int{10}, 1); err == nil {
		t.Error("Sweep accepted threshold 1")
	}
	if _, err := Sweep(PaperParams(), []int{0}, 0.5); err == nil {
		t.Error("Sweep accepted bad minterm count")
	}
	bad := PaperParams()
	bad.GateC = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative GateC validated")
	}
	zero := Params{Driver: mos.Driver{}}
	_ = zero
}
