// Package pla reproduces the paper's §V application: bounding the delay of
// a polysilicon line driving the AND plane of a PLA, as a function of the
// number of minterms (Figures 12 and 13).
//
// The model follows the paper's APL PLALINE function: a superbuffer driver
// (380 Ω source resistance, 0.04 pF output capacitance) feeding a chain of
// sections, each section accounting for two minterms: a 24 µm inter-gate
// poly run (180 Ω, ~0.01 pF uniform line) in series with one 4 µm gate
// (30 Ω, ~0.013 pF uniform line) — "every second minterm has a transistor
// present".
//
// Units are ohms and picofarads throughout, so all times are picoseconds.
//
// OCR note (recorded in DESIGN.md §2): the scanned APL shows `URC 180
// 0.0107` and `URC 30 0.0134` where §V's prose gives 0.01 pF and 0.013 pF;
// this package uses the prose values by default and lets callers override
// them, and the Figure 13 claims hold either way.
package pla

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/mos"
	"repro/internal/rctree"
	"repro/internal/wire"
)

// Params collects the element values of one PLA line model.
type Params struct {
	Driver mos.Driver
	// InterGateR/C model the 24 µm poly run between adjacent gates.
	InterGateR, InterGateC float64
	// GateR/C model one transistor gate crossed by the poly line.
	GateR, GateC float64
}

// PaperParams returns the §V values: 380 Ω / 0.04 pF driver, 180 Ω /
// 0.01 pF inter-gate line, 30 Ω / 0.013 pF gate.
func PaperParams() Params {
	return Params{
		Driver:     mos.Superbuffer(),
		InterGateR: 180, InterGateC: 0.01,
		GateR: 30, GateC: 0.013,
	}
}

// ParamsFromTech derives the element values from process parameters and the
// §V geometry (24 µm × 4 µm inter-gate segments, 4 µm gates), instead of
// using the paper's rounded numbers. The driver stays the superbuffer.
func ParamsFromTech(tech wire.Tech) (Params, error) {
	if err := tech.Validate(); err != nil {
		return Params{}, err
	}
	segR, segC, err := tech.LineRC(wire.Segment{Layer: "poly", Length: 24 * wire.Micron, Width: 4 * wire.Micron})
	if err != nil {
		return Params{}, err
	}
	gateR, gateC, err := tech.GateRC(4 * wire.Micron)
	if err != nil {
		return Params{}, err
	}
	const toPF = 1e12
	return Params{
		Driver:     mos.Superbuffer(),
		InterGateR: segR, InterGateC: segC * toPF,
		GateR: gateR, GateC: gateC * toPF,
	}, nil
}

// Validate rejects non-physical parameter sets.
func (p Params) Validate() error {
	if err := p.Driver.Validate(); err != nil {
		return err
	}
	if p.InterGateR < 0 || p.InterGateC < 0 || p.GateR < 0 || p.GateC < 0 {
		return fmt.Errorf("pla: negative element value in %+v", p)
	}
	if p.InterGateR+p.GateR == 0 || p.InterGateC+p.GateC == 0 {
		return fmt.Errorf("pla: section has no resistance or no capacitance")
	}
	return nil
}

// Expr returns the paper's algebraic description of a PLA line with n
// minterms, mirroring the APL PLALINE loop exactly: the driver cascade
// followed by ceil(n/2) sections of (inter-gate line WC gate).
func Expr(p Params, minterms int) (algebra.Expr, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if minterms < 1 {
		return nil, fmt.Errorf("pla: minterms must be >= 1, got %d", minterms)
	}
	// Z <- (URC 380 0) WC URC 0 0.04
	e := algebra.Cascade(
		algebra.URCExpr{R: p.Driver.REff},
		algebra.URCExpr{C: p.Driver.COut},
	)
	// A <- (URC 180 0.01) WC URC 30 0.013 ; one section per two minterms.
	section := algebra.Cascade(
		algebra.URCExpr{R: p.InterGateR, C: p.InterGateC},
		algebra.URCExpr{R: p.GateR, C: p.GateC},
	)
	for n := minterms; n > 0; n -= 2 {
		e = algebra.WCExpr{A: e, B: section}
	}
	return e, nil
}

// Tree builds the same network as an rctree, with the far end of the line as
// the single output.
func Tree(p Params, minterms int) (*rctree.Tree, rctree.NodeID, error) {
	e, err := Expr(p, minterms)
	if err != nil {
		return nil, 0, err
	}
	return algebra.ToTree(e)
}

// Point is one sample of the Figure 13 sweep.
type Point struct {
	Minterms   int
	Times      rctree.Times
	TMin, TMax float64 // picoseconds, at the sweep threshold
}

// Sweep evaluates the delay bounds at the given threshold for each minterm
// count, reproducing Figure 13 (the paper uses threshold 0.7·VDD and
// minterm counts up to 100).
func Sweep(p Params, minterms []int, threshold float64) ([]Point, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("pla: threshold must be in (0,1), got %g", threshold)
	}
	pts := make([]Point, 0, len(minterms))
	for _, n := range minterms {
		e, err := Expr(p, n)
		if err != nil {
			return nil, err
		}
		tm, err := e.Eval().Times()
		if err != nil {
			return nil, fmt.Errorf("pla: n=%d: %w", n, err)
		}
		b, err := core.New(tm)
		if err != nil {
			return nil, fmt.Errorf("pla: n=%d: %w", n, err)
		}
		pts = append(pts, Point{
			Minterms: n,
			Times:    tm,
			TMin:     b.TMin(threshold),
			TMax:     b.TMax(threshold),
		})
	}
	return pts, nil
}

// DefaultMinterms is the Figure 13 x-axis: even counts from 2 to 100 (the
// log-log plot runs 2..100; sections cover two minterms each).
func DefaultMinterms() []int {
	var ns []int
	for n := 2; n <= 100; n += 2 {
		ns = append(ns, n)
	}
	return ns
}
