package wal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Meta is the durable per-design header: everything a recovery needs to
// rebuild the session the way it was first mounted, beyond the design deck
// itself. It is written once at create and refreshed at snapshot time.
type Meta struct {
	ID string `json:"id"`
	// Threshold/Required/K are the analysis options the session was opened
	// with (raw request values; defaults resolve downstream exactly as they
	// did on first create).
	Threshold float64 `json:"threshold,omitempty"`
	Required  float64 `json:"required,omitempty"`
	K         int     `json:"k,omitempty"`
	// Edits is the cumulative applied-edit count folded into the newest
	// snapshot; the live total is Edits plus the replayed log tail.
	Edits int `json:"edits"`
	// Seq is the live snapshot/log generation (snap.<Seq>.ckt + wal.<Seq>.log).
	Seq uint64 `json:"seq"`
}

// Store manages per-design durability state under one data directory:
//
//	<dir>/<id>/meta.json      analysis options + snapshot bookkeeping
//	<dir>/<id>/snap.<N>.ckt   materialized design deck (netlist.WriteDesign)
//	<dir>/<id>/wal.<N>.log    ECO edits accepted since snapshot N
//	                          (timing.FormatEdits lines, fsynced per append)
//
// The pair with the highest N whose snapshot is complete is the recovery
// point: replaying snap.<N> + wal.<N> rebuilds the session. Snapshots rotate
// by sequence number rather than truncating in place, so a crash at any
// point leaves either the old pair or the new pair intact — never a log
// whose edits are half-folded into a snapshot.
type Store struct {
	dir string
	mu  sync.Mutex // serializes directory-level create/remove/list
	// obs receives durability telemetry (append/fsync/snapshot/recovery
	// histograms and rotation/torn-tail/stale-file counters); nil — the
	// default — disables it. See Instrument.
	obs *obs.Registry
}

// Open ensures dir exists and returns the store rooted there.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) designDir(id string) string { return filepath.Join(s.dir, id) }

func snapName(seq uint64) string { return fmt.Sprintf("snap.%d.ckt", seq) }
func logName(seq uint64) string  { return fmt.Sprintf("wal.%d.log", seq) }

// List returns the ids of every persisted design, sorted for determinism.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), "meta.json")); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Exists reports whether id has persisted state.
func (s *Store) Exists(id string) bool {
	if !validID(id) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.designDir(id), "meta.json"))
	return err == nil
}

// validID rejects ids that could escape the data directory. Server-minted
// ids are hex, but recovery paths also see client-supplied ids.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Remove deletes id's durable state.
func (s *Store) Remove(id string) error {
	if !validID(id) {
		return fmt.Errorf("wal: bad id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.RemoveAll(s.designDir(id)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Create persists a brand-new design: meta.json, the initial snapshot
// (sequence 1) and an empty live log, all fsynced before it returns. The
// returned Log accepts the design's appended edits.
func (s *Store) Create(id, deck string, meta Meta) (*Log, error) {
	if !validID(id) {
		return nil, fmt.Errorf("wal: bad id %q", id)
	}
	meta.ID = id
	meta.Seq = 1
	dir := s.designDir(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, snapName(1)), []byte(deck)); err != nil {
		return nil, err
	}
	if err := writeMeta(dir, meta); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, meta: meta, obs: s.obs}
	if err := l.openLog(); err != nil {
		return nil, err
	}
	return l, nil
}

// Recovered is the replayable state of one design: the newest complete
// snapshot plus the edits its live log held. TornBytes reports a trailing
// partial record the recovery dropped (a crash mid-append); zero means the
// log ended cleanly.
type Recovered struct {
	Meta      Meta
	Deck      string
	Edits     []timing.Edit
	TornBytes int
}

// Recover loads id's durable state and returns it together with a live Log
// positioned to accept new appends. The log's torn tail, if any, is
// truncated away so subsequent appends start at a record boundary; stray
// files from older sequences (an interrupted rotation) are retired.
func (s *Store) Recover(id string) (*Recovered, *Log, error) {
	return s.RecoverCtx(context.Background(), id)
}

// recover is the Recover body, shared with the span-attaching RecoverCtx
// (which owns the wal_recovery histogram/span around this call).
func (s *Store) recover(id string) (*Recovered, *Log, error) {
	if !validID(id) {
		return nil, nil, fmt.Errorf("wal: bad id %q", id)
	}
	dir := s.designDir(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := readMeta(dir)
	if err != nil {
		return nil, nil, err
	}

	// The recovery point is the highest-sequence complete snapshot — the
	// meta's Seq unless a crash interrupted a rotation after the snapshot
	// rename but before the meta rewrite, in which case the newer snapshot
	// on disk wins (its edits are a superset of the old pair's).
	seq, err := newestSnapshot(dir, meta.Seq)
	if err != nil {
		return nil, nil, err
	}
	meta.Seq = seq
	deckBytes, err := os.ReadFile(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	rec := &Recovered{Meta: meta, Deck: string(deckBytes)}
	logPath := filepath.Join(dir, logName(seq))
	raw, err := os.ReadFile(logPath)
	switch {
	case os.IsNotExist(err):
		// Crash between snapshot rename and log creation: nothing to replay.
	case err != nil:
		return nil, nil, fmt.Errorf("wal: %w", err)
	default:
		edits, clean, perr := replayLog(raw)
		if perr != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", logPath, perr)
		}
		rec.Edits = edits
		rec.TornBytes = len(raw) - clean
		if rec.TornBytes > 0 {
			if err := os.Truncate(logPath, int64(clean)); err != nil {
				return nil, nil, fmt.Errorf("wal: %w", err)
			}
			s.obs.Counter("wal_torn_tails_dropped_total").Add(1)
		}
	}

	if retired := retireStale(dir, seq); retired > 0 {
		s.obs.Counter("wal_stale_files_retired_total").Add(int64(retired))
	}
	l := &Log{dir: dir, meta: meta, pending: len(rec.Edits), obs: s.obs}
	if err := l.openLog(); err != nil {
		return nil, nil, err
	}
	return rec, l, nil
}

// newestSnapshot scans for the highest complete snap.<N>.ckt, at least
// metaSeq (which names a snapshot Create/rotate fully committed).
func newestSnapshot(dir string, metaSeq uint64) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	best := uint64(0)
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap.") || !strings.HasSuffix(name, ".ckt") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap."), ".ckt"), 10, 64)
		if err != nil {
			continue
		}
		if n > best {
			best = n
		}
	}
	if best < metaSeq {
		return 0, fmt.Errorf("wal: %s: snapshot %d named by meta.json is missing", dir, metaSeq)
	}
	return best, nil
}

// retireStale deletes snapshots and logs from sequences older than live —
// leftovers of a rotation interrupted before its cleanup step — and returns
// how many files it removed. Failures are ignored: stale files are garbage,
// not state.
func retireStale(dir string, live uint64) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	retired := 0
	for _, e := range ents {
		name := e.Name()
		var n uint64
		switch {
		case strings.HasPrefix(name, "snap.") && strings.HasSuffix(name, ".ckt"):
			n, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap."), ".ckt"), 10, 64)
		case strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log"):
			n, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal."), ".log"), 10, 64)
		case strings.HasSuffix(name, ".tmp"):
			if os.Remove(filepath.Join(dir, name)) == nil {
				retired++
			}
			continue
		default:
			continue
		}
		if err == nil && n < live {
			if os.Remove(filepath.Join(dir, name)) == nil {
				retired++
			}
		}
	}
	return retired
}

// replayLog parses the log line by line. A torn final line — no trailing
// newline, unparseable — is tolerated as a crash mid-append and reported via
// the clean-byte offset; anything else malformed is corruption and errors.
func replayLog(raw []byte) (edits []timing.Edit, clean int, err error) {
	off := 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			// Unterminated tail: a torn append. Drop it.
			return edits, off, nil
		}
		line := string(raw[off : off+nl])
		parsed, perr := timing.ParseEdits(line)
		if perr != nil {
			// A complete line that does not parse is corruption, not a torn
			// write — fail loudly rather than silently losing edits.
			return nil, 0, fmt.Errorf("offset %d: %w", off, perr)
		}
		edits = append(edits, parsed...)
		off += nl + 1
		clean = off
	}
	return edits, clean, nil
}

// Log is one design's live durability handle. Callers must serialize all
// calls (rcserve holds the design-session mutex across Append/Rotate, so
// log order is apply order).
type Log struct {
	dir     string
	meta    Meta
	f       *os.File
	pending int           // edits appended since the live snapshot
	obs     *obs.Registry // inherited from the store; nil disables telemetry
}

func (l *Log) openLog() error {
	f, err := os.OpenFile(filepath.Join(l.dir, logName(l.meta.Seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	return nil
}

// Append renders the edits through the ECO grammar, appends them to the live
// log and fsyncs before returning: an acknowledged edit survives a crash.
func (l *Log) Append(edits []timing.Edit) error {
	return l.AppendCtx(context.Background(), edits)
}

// append is the Append body, shared with the span-attaching AppendCtx (which
// owns the wal_append histogram/span around this call). The fsync — usually
// the dominant cost — gets its own nested wal_fsync span and histogram.
func (l *Log) append(ctx context.Context, edits []timing.Edit) error {
	text := timing.FormatEdits(edits)
	// Guard against unreplayable lines reaching disk: FormatEdits renders
	// malformed hand-assembled edits as lines a reparse rejects.
	if _, err := timing.ParseEdits(text); err != nil {
		return fmt.Errorf("wal: refusing unreplayable edits: %w", err)
	}
	if _, err := l.f.WriteString(text); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, op := trace.StartOp(ctx, l.obs, "wal_fsync")
	err := l.f.Sync()
	op.SetError(err)
	op.End()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.pending += len(edits)
	return nil
}

// Pending reports the edits appended since the live snapshot — the
// replay-length a crash right now would pay, and the rotation trigger.
func (l *Log) Pending() int { return l.pending }

// Seq returns the live snapshot/log sequence number.
func (l *Log) Seq() uint64 { return l.meta.Seq }

// Rotate makes deck the new recovery point: it writes snapshot N+1
// atomically, switches appends to the (empty) log N+1, rewrites meta, and
// retires the old pair. A crash anywhere in between leaves a complete pair
// on disk — old before the snapshot rename commits, new after.
func (l *Log) Rotate(deck string, totalEdits int) error {
	return l.rotate(context.Background(), deck, totalEdits)
}

// rotate is the Rotate body; the snapshot write + rename (the bulk of a
// rotation's IO) records wal_snapshot_seconds and a wal_snapshot trace span,
// and a completed rotation bumps wal_rotations_total.
func (l *Log) rotate(ctx context.Context, deck string, totalEdits int) error {
	next := l.meta.Seq + 1
	tmp := filepath.Join(l.dir, snapName(next)+".tmp")
	_, op := trace.StartOp(ctx, l.obs, "wal_snapshot")
	op.Span().SetAttr("seq", strconv.FormatUint(next, 10))
	if err := writeFileSync(tmp, []byte(deck)); err != nil {
		op.SetError(err)
		op.End()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(next))); err != nil {
		err = fmt.Errorf("wal: %w", err)
		op.SetError(err)
		op.End()
		return err
	}
	syncDir(l.dir)
	op.End()

	old, oldSeq := l.f, l.meta.Seq
	l.meta.Seq = next
	l.meta.Edits = totalEdits
	if err := l.openLog(); err != nil {
		l.f, l.meta.Seq = old, oldSeq // stay on the old pair; it is still complete
		return err
	}
	old.Close()
	if err := writeMeta(l.dir, l.meta); err != nil {
		return err
	}
	l.pending = 0
	os.Remove(filepath.Join(l.dir, snapName(oldSeq)))
	os.Remove(filepath.Join(l.dir, logName(oldSeq)))
	l.obs.Counter("wal_rotations_total").Add(1)
	return nil
}

// Close releases the log's file handle.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// writeMeta atomically replaces meta.json.
func writeMeta(dir string, m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := filepath.Join(dir, "meta.json.tmp")
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "meta.json")); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(dir)
	return nil
}

func readMeta(dir string) (Meta, error) {
	var m Meta
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return m, fmt.Errorf("wal: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("wal: %s/meta.json: %w", dir, err)
	}
	return m, nil
}

// writeFileSync writes data and fsyncs the file before closing it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable. Best-effort:
// some filesystems reject directory fsync; the rename itself is still
// atomic there.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
