package wal

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestInstrumentedLifecycle drives create → append → rotate → torn-tail
// recover on an instrumented store and checks every satellite metric lands:
// append/fsync/snapshot/recovery histograms plus the rotation, torn-tail and
// stale-file counters.
func TestInstrumentedLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(reg)
	l, err := st.Create("d1", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdits()); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(testDeck, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdits()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the live log's tail and plant a stale old-sequence file so the
	// recovery exercises both counters.
	dir := filepath.Join(st.Dir(), "d1")
	logPath := filepath.Join(dir, logName(2))
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, logName(1)), []byte("stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, l2, err := st.Recover("d1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.TornBytes == 0 {
		t.Fatal("expected a torn tail")
	}

	hist := func(name string) uint64 {
		return reg.Histogram(name, obs.LatencyBuckets).Snapshot().Count
	}
	if got := hist("wal_append_seconds"); got != 2 {
		t.Errorf("wal_append_seconds count = %d, want 2", got)
	}
	if got := hist("wal_fsync_seconds"); got != 2 {
		t.Errorf("wal_fsync_seconds count = %d, want 2", got)
	}
	if got := hist("wal_snapshot_seconds"); got != 1 {
		t.Errorf("wal_snapshot_seconds count = %d, want 1", got)
	}
	if got := hist("wal_recovery_seconds"); got != 1 {
		t.Errorf("wal_recovery_seconds count = %d, want 1", got)
	}
	if got := reg.Counter("wal_rotations_total").Value(); got != 1 {
		t.Errorf("wal_rotations_total = %d, want 1", got)
	}
	if got := reg.Counter("wal_torn_tails_dropped_total").Value(); got != 1 {
		t.Errorf("wal_torn_tails_dropped_total = %d, want 1", got)
	}
	if got := reg.Counter("wal_stale_files_retired_total").Value(); got < 1 {
		t.Errorf("wal_stale_files_retired_total = %d, want >= 1", got)
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, want := range []string{"wal_append_seconds_bucket", "wal_fsync_seconds_sum", "wal_rotations_total 1"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestAppendTraceSpans checks AppendCtx nests wal_append → wal_fsync under
// the caller's trace span.
func TestAppendTraceSpans(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Create("d2", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tracer := trace.New(trace.Options{})
	ctx, root := tracer.Start(context.Background(), "edit")
	if err := l.AppendCtx(ctx, testEdits()); err != nil {
		t.Fatal(err)
	}
	root.End()

	got := tracer.Recent()[0]
	byName := map[string]trace.SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	app, ok := byName["wal_append"]
	if !ok {
		t.Fatal("wal_append span missing")
	}
	if app.Parent != byName["edit"].SpanID {
		t.Error("wal_append not parented under the request span")
	}
	fsync, ok := byName["wal_fsync"]
	if !ok {
		t.Fatal("wal_fsync span missing")
	}
	if fsync.Parent != app.SpanID {
		t.Error("wal_fsync not nested under wal_append")
	}
}
