package wal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/incr"
	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/timing"
)

// TestRecoveryProperty pins the package invariant: for any edit sequence
// and any snapshot schedule, recovering from disk (newest snapshot parsed
// into a fresh session, log tail replayed) reproduces the live session's
// every net bound, arrival and slack to 1e-9. Each accepted edit is
// appended exactly as rcserve does — under the same lock as Apply, log
// order equal to apply order — and snapshots rotate at random points.
func TestRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runRecoveryTrial(t, seed)
		})
	}
}

func runRecoveryTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := randnet.DesignConfig{
		Levels:   3,
		Width:    3,
		Net:      randnet.DefaultConfig(8 + rng.Intn(8)),
		FaninMax: 3,
		DelayMax: 10,
	}
	design := randnet.Design(rng, cfg)
	opt := timing.Options{Threshold: 0.7, Required: 1e4, Sequential: true}

	live, err := timing.NewSession(context.Background(), design, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := fmt.Sprintf("prop-%d", seed)
	l, err := st.Create(id, netlist.WriteDesign(design), Meta{
		Threshold: opt.Threshold, Required: opt.Required, K: opt.K,
	})
	if err != nil {
		t.Fatal(err)
	}

	total, accepted := 40+rng.Intn(60), 0
	for i := 0; i < total; i++ {
		e := randomSessionEdit(rng, live, design, i)
		if _, err := live.Apply([]timing.Edit{e}); err != nil {
			continue // rejected edits never reach the log
		}
		accepted++
		if err := l.Append([]timing.Edit{e}); err != nil {
			t.Fatalf("append edit %d: %v", i, err)
		}
		if rng.Float64() < 0.15 {
			d, err := live.Design()
			if err != nil {
				t.Fatalf("materialize at edit %d: %v", i, err)
			}
			if err := l.Rotate(netlist.WriteDesign(d), accepted); err != nil {
				t.Fatalf("rotate at edit %d: %v", i, err)
			}
		}
	}
	l.Close() // crash point: the process is gone, only the files remain

	rec, l2, err := st.Recover(id)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.TornBytes != 0 {
		t.Fatalf("clean shutdown recovered torn bytes: %d", rec.TornBytes)
	}
	recDesign, err := netlist.ParseDesign(rec.Deck)
	if err != nil {
		t.Fatalf("parse recovered snapshot: %v", err)
	}
	replayed, err := timing.NewSession(context.Background(), recDesign, timing.Options{
		Threshold: rec.Meta.Threshold, Required: rec.Meta.Required,
		K: rec.Meta.K, Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edits) > 0 {
		if _, err := replayed.Apply(rec.Edits); err != nil {
			t.Fatalf("replay log tail: %v", err)
		}
	}
	compareSessions(t, live, replayed, design)
}

// compareSessions asserts the replayed session matches the live one on
// WNS/TNS, every endpoint arrival and slack, and every net's input arrival
// and per-output delay bounds, to 1e-9.
func compareSessions(t *testing.T, live, replayed *timing.Session, design *netlist.Design) {
	t.Helper()
	const tol = 1e-9
	lr, rr := live.Report(), replayed.Report()
	if !close2(lr.WNS, rr.WNS, tol) || !close2(lr.TNS, rr.TNS, tol) {
		t.Errorf("WNS/TNS: live (%g, %g), replayed (%g, %g)", lr.WNS, lr.TNS, rr.WNS, rr.TNS)
	}
	if len(lr.Endpoints) != len(rr.Endpoints) {
		t.Fatalf("endpoint count: live %d, replayed %d", len(lr.Endpoints), len(rr.Endpoints))
	}
	for i, le := range lr.Endpoints {
		re := rr.Endpoints[i]
		if le.Net != re.Net || le.Output != re.Output {
			t.Fatalf("endpoint %d: live %s.%s, replayed %s.%s", i, le.Net, le.Output, re.Net, re.Output)
		}
		if !close2(le.Arrival.Min, re.Arrival.Min, tol) || !close2(le.Arrival.Max, re.Arrival.Max, tol) ||
			!close2(le.Slack, re.Slack, tol) {
			t.Errorf("endpoint %s.%s: live arr [%g, %g] slack %g, replayed arr [%g, %g] slack %g",
				le.Net, le.Output, le.Arrival.Min, le.Arrival.Max, le.Slack,
				re.Arrival.Min, re.Arrival.Max, re.Slack)
		}
	}
	for _, dn := range design.Nets {
		la, lok := live.InputArrival(dn.Name)
		ra, rok := replayed.InputArrival(dn.Name)
		if lok != rok || (lok && (!close2(la.Min, ra.Min, tol) || !close2(la.Max, ra.Max, tol))) {
			t.Errorf("net %s input arrival: live [%g, %g] %v, replayed [%g, %g] %v",
				dn.Name, la.Min, la.Max, lok, ra.Min, ra.Max, rok)
		}
		et, ok := live.ViewNetTree(dn.Name)
		if !ok {
			continue
		}
		for _, o := range et.Outputs() {
			name := et.Name(o)
			ld, lok := live.NetDelay(dn.Name, name)
			rd, rok := replayed.NetDelay(dn.Name, name)
			if lok != rok || (lok && (!close2(ld.Min, rd.Min, tol) || !close2(ld.Max, rd.Max, tol))) {
				t.Errorf("net %s output %s delay: live [%g, %g] %v, replayed [%g, %g] %v",
					dn.Name, name, ld.Min, ld.Max, lok, rd.Min, rd.Max, rok)
			}
		}
	}
}

func close2(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// randomSessionEdit draws one ECO edit addressed through the session's
// exported surfaces alone: net names from the design, node names by walking
// the net's EditTree view from the root.
func randomSessionEdit(rng *rand.Rand, s *timing.Session, design *netlist.Design, seq int) timing.Edit {
	net := design.Nets[rng.Intn(len(design.Nets))].Name
	et, ok := s.ViewNetTree(net)
	if !ok {
		return timing.Edit{Op: "scaleDriver", Net: net, Factor: f64(1.1)}
	}
	nodes := treeNodes(et)
	pick := func() string { return et.Name(nodes[rng.Intn(len(nodes))]) }
	switch rng.Intn(7) {
	case 0:
		return timing.Edit{Op: "setR", Net: net, Node: pick(), R: f64(0.1 + 10*rng.Float64())}
	case 1:
		return timing.Edit{Op: "setC", Net: net, Node: pick(), C: f64(0.1 + 5*rng.Float64())}
	case 2:
		return timing.Edit{Op: "addC", Net: net, Node: pick(), C: f64(0.5 * rng.Float64())}
	case 3:
		return timing.Edit{Op: "setLine", Net: net, Node: pick(),
			R: f64(0.1 + 10*rng.Float64()), C: f64(0.1 + 5*rng.Float64())}
	case 4:
		return timing.Edit{Op: "scaleDriver", Net: net, Factor: f64(0.5 + rng.Float64())}
	case 5:
		return timing.Edit{Op: "grow", Net: net, Parent: pick(),
			Name: fmt.Sprintf("w%d", seq), Kind: "resistor",
			R: f64(0.1 + 10*rng.Float64())}
	default:
		return timing.Edit{Op: "prune", Net: net, Node: pick()}
	}
}

// treeNodes collects every live node id reachable from the root.
func treeNodes(et *incr.EditTree) []incr.NodeID {
	ids := []incr.NodeID{incr.Root}
	for i := 0; i < len(ids); i++ {
		ids = append(ids, et.Children(ids[i])...)
	}
	return ids
}
