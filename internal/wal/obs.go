package wal

import (
	"context"
	"strconv"

	"repro/internal/obs"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Instrument attaches a metrics registry to the store. Logs handed out by
// subsequent Create/Recover calls record durability telemetry on it:
//
//	wal_append_seconds    one observation per Append (render + write + fsync)
//	wal_fsync_seconds     the fsync alone, nested under the append
//	wal_snapshot_seconds  snapshot write + rename during a rotation
//	wal_recovery_seconds  one observation per Recover
//	wal_rotations_total           completed rotations
//	wal_torn_tails_dropped_total  recoveries that truncated a torn tail
//	wal_stale_files_retired_total files deleted as stale sequence leftovers
//
// A nil registry (the default) disables all of it. Instrument is not
// synchronized with in-flight operations; call it right after Open.
func (s *Store) Instrument(reg *obs.Registry) { s.obs = reg }

// AppendCtx is Append with trace propagation: a wal_append span (with a
// nested wal_fsync span) attaches under ctx's active trace span, alongside
// the duration histograms recorded on the store's registry.
func (l *Log) AppendCtx(ctx context.Context, edits []timing.Edit) error {
	if len(edits) == 0 {
		return nil
	}
	ctx, op := trace.StartOp(ctx, l.obs, "wal_append")
	op.Span().SetAttr("edits", strconv.Itoa(len(edits)))
	err := l.append(ctx, edits)
	op.SetError(err)
	op.End()
	return err
}

// RotateCtx is Rotate with trace propagation: the snapshot write gets a
// wal_snapshot span under ctx in addition to its histogram.
func (l *Log) RotateCtx(ctx context.Context, deck string, totalEdits int) error {
	return l.rotate(ctx, deck, totalEdits)
}

// RecoverCtx is Recover with trace propagation: the replay gets a
// wal_recovery span under ctx in addition to the wal_recovery_seconds
// histogram both forms record.
func (s *Store) RecoverCtx(ctx context.Context, id string) (*Recovered, *Log, error) {
	ctx, op := trace.StartOp(ctx, s.obs, "wal_recovery")
	op.Span().SetAttr("id", id)
	rec, l, err := s.recover(id)
	if rec != nil {
		op.Span().SetAttr("replayed_edits", strconv.Itoa(len(rec.Edits)))
	}
	op.SetError(err)
	op.End()
	return rec, l, err
}
