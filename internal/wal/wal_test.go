package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/timing"
)

func f64(v float64) *float64 { return &v }

func testEdits() []timing.Edit {
	return []timing.Edit{
		{Op: "setR", Net: "drv", Node: "o", R: f64(5)},
		{Op: "addC", Net: "bus", Node: "far", C: f64(0.25)},
	}
}

const testDeck = ".design d\n.net drv\n.input in\nR1 in o 10\nC1 o 0 2\n.output o\n.endnet\n.end\n"

func TestCreateAppendRecover(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Create("abc123", testDeck, Meta{Threshold: 0.7, Required: 100, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdits()); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", l.Pending())
	}
	l.Close()

	if !st.Exists("abc123") {
		t.Fatal("Exists = false after Create")
	}
	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != "abc123" {
		t.Fatalf("List = %v, %v", ids, err)
	}

	rec, l2, err := st.Recover("abc123")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Deck != testDeck {
		t.Errorf("recovered deck mismatch:\n%s", rec.Deck)
	}
	if rec.Meta.Threshold != 0.7 || rec.Meta.Required != 100 || rec.Meta.K != 3 {
		t.Errorf("recovered meta = %+v", rec.Meta)
	}
	if len(rec.Edits) != 2 || rec.TornBytes != 0 {
		t.Fatalf("recovered %d edits, torn %d", len(rec.Edits), rec.TornBytes)
	}
	if rec.Edits[0].Op != "setR" || rec.Edits[0].Net != "drv" || *rec.Edits[0].R != 5 {
		t.Errorf("edit 0 = %+v", rec.Edits[0])
	}
}

func TestRotateRetiresOldPair(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x1", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdits()); err != nil {
		t.Fatal(err)
	}
	const newDeck = testDeck + "* rotated\n"
	if err := l.Rotate(newDeck, 2); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 0 || l.Seq() != 2 {
		t.Fatalf("after rotate: pending %d seq %d", l.Pending(), l.Seq())
	}
	// New appends land in the new log; old pair is gone.
	if err := l.Append(testEdits()[:1]); err != nil {
		t.Fatal(err)
	}
	l.Close()
	dir := filepath.Join(st.Dir(), "x1")
	if _, err := os.Stat(filepath.Join(dir, "snap.1.ckt")); !os.IsNotExist(err) {
		t.Error("old snapshot survived rotation")
	}
	rec, l2, err := st.Recover("x1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Deck != newDeck || len(rec.Edits) != 1 || rec.Meta.Edits != 2 {
		t.Errorf("post-rotate recovery: deck %q, %d edits, meta %+v", rec.Deck, len(rec.Edits), rec.Meta)
	}
}

// TestTornTailDropped simulates a crash mid-append: the log ends with a
// partial record, which recovery must drop (and truncate away) while keeping
// every complete record.
func TestTornTailDropped(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x2", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdits()); err != nil {
		t.Fatal(err)
	}
	l.Close()
	logPath := filepath.Join(st.Dir(), "x2", "wal.1.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("setR drv.o 9") // no newline: torn
	f.Close()

	rec, l2, err := st.Recover("x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edits) != 2 || rec.TornBytes == 0 {
		t.Fatalf("recovered %d edits, torn %d", len(rec.Edits), rec.TornBytes)
	}
	// The torn bytes are gone from disk; appends resume at a record boundary.
	if err := l2.Append(testEdits()[:1]); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	rec2, l3, err := st.Recover("x2")
	if err != nil {
		t.Fatal(err)
	}
	l3.Close()
	if len(rec2.Edits) != 3 || rec2.TornBytes != 0 {
		t.Fatalf("second recovery: %d edits, torn %d", len(rec2.Edits), rec2.TornBytes)
	}
}

// TestCorruptLineFailsLoudly: a complete-but-unparseable line is corruption,
// not a torn write; recovery must refuse rather than silently skip edits.
func TestCorruptLineFailsLoudly(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x3", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(testEdits())
	l.Close()
	logPath := filepath.Join(st.Dir(), "x3", "wal.1.log")
	f, _ := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("zorch drv.o 9\n")
	f.Close()
	if _, _, err := st.Recover("x3"); err == nil {
		t.Fatal("corrupt log recovered silently")
	}
}

// TestInterruptedRotation: a crash after the new snapshot's rename but
// before the meta rewrite leaves both pairs on disk with meta naming the old
// one. Recovery must pick the newer snapshot (a superset of the old pair)
// and retire the stale files.
func TestInterruptedRotation(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x4", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(testEdits())
	l.Close()
	dir := filepath.Join(st.Dir(), "x4")
	const newDeck = testDeck + "* newer\n"
	// Hand-craft the crash window: snap.2 committed, meta still at seq 1.
	if err := os.WriteFile(filepath.Join(dir, "snap.2.ckt"), []byte(newDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "snap.3.ckt.tmp"), []byte("garbage"), 0o644)

	rec, l2, err := st.Recover("x4")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Deck != newDeck || len(rec.Edits) != 0 {
		t.Fatalf("recovery picked deck %q with %d edits, want newer snapshot with none", rec.Deck, len(rec.Edits))
	}
	if l2.Seq() != 2 {
		t.Errorf("live seq = %d, want 2", l2.Seq())
	}
	for _, stale := range []string{"snap.1.ckt", "wal.1.log", "snap.3.ckt.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Errorf("stale file %s survived recovery", stale)
		}
	}
}

func TestMissingNamedSnapshotErrors(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x5", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Remove(filepath.Join(st.Dir(), "x5", "snap.1.ckt")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Recover("x5"); err == nil {
		t.Fatal("recovery invented a snapshot")
	}
}

func TestRemove(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x6", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := st.Remove("x6"); err != nil {
		t.Fatal(err)
	}
	if st.Exists("x6") {
		t.Error("Exists after Remove")
	}
	if ids, _ := st.List(); len(ids) != 0 {
		t.Errorf("List after Remove = %v", ids)
	}
}

func TestBadIDsRejected(t *testing.T) {
	st, _ := Open(t.TempDir())
	for _, id := range []string{"", "../evil", "a/b", "a b", strings.Repeat("x", 200)} {
		if _, err := st.Create(id, testDeck, Meta{}); err == nil {
			t.Errorf("Create(%q) accepted", id)
		}
		if st.Exists(id) {
			t.Errorf("Exists(%q) = true", id)
		}
	}
}

// TestAppendRefusesUnreplayable: a hand-assembled edit with a missing value
// renders as a line a reparse rejects; the log must refuse it up front
// rather than poison recovery.
func TestAppendRefusesUnreplayable(t *testing.T) {
	st, _ := Open(t.TempDir())
	l, err := st.Create("x7", testDeck, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]timing.Edit{{Op: "setR", Net: "drv", Node: "o"}}); err == nil {
		t.Fatal("unreplayable edit appended")
	}
	if l.Pending() != 0 {
		t.Errorf("pending = %d after refused append", l.Pending())
	}
	// The refused append must not have written anything: recovery is clean.
	rec, l2, err := st.Recover("x7")
	if err != nil || len(rec.Edits) != 0 {
		t.Fatalf("recovery after refused append: %v, %d edits", err, len(rec.Edits))
	}
	l2.Close()
}
