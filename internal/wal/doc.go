// Package wal makes design-editing sessions durable: a per-design
// write-ahead log of accepted ECO edits plus periodic snapshots of the
// materialized design, so a process restart (or an eviction) replays
// snapshot + log tail and recovers the session bit-for-bit.
//
// The ECO edit-list grammar (timing.ParseEdits/FormatEdits) is already a
// replayable, human-auditable log format — every accepted edit appends as
// one text line, fsynced before the client sees its response. Snapshots
// rotate by sequence number (snap.<N>.ckt + wal.<N>.log) instead of
// truncating in place: a crash at any instant leaves at least one complete
// snapshot/log pair, and recovery picks the newest. A torn final log line —
// the signature of a crash mid-append — is detected and dropped; any other
// malformed line is corruption and fails recovery loudly.
//
// The recovery invariant, pinned by the package's property test: for any
// edit sequence and any snapshot schedule, parsing the snapshot, mounting a
// fresh session and replaying the log tail reproduces the live session's
// every net bound, arrival and slack to 1e-9.
package wal
