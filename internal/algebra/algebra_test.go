package algebra

import (
	"math"
	"testing"
)

func almostEq(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-30 {
		return true
	}
	return math.Abs(a-b) <= relTol*scale
}

func quantEq(t *testing.T, got, want Quantity, relTol float64) {
	t.Helper()
	g, w := got.Vector(), want.Vector()
	names := [5]string{"CT", "TP", "R22", "TD2", "TR2R22"}
	for i := range g {
		if !almostEq(g[i], w[i], relTol) {
			t.Errorf("%s = %g, want %g", names[i], g[i], w[i])
		}
	}
}

// TestURCVector checks the Figure 8 primitive: URC R C -> (C, RC/2, R, RC/2, R²C/3).
func TestURCVector(t *testing.T) {
	quantEq(t, URC(6, 4), Quantity{CT: 4, TP: 12, R22: 6, TD2: 12, TR2R22: 48}, 0)
	quantEq(t, Capacitor(5), Quantity{CT: 5}, 0)
	quantEq(t, Resistor(9), Quantity{R22: 9}, 0)
}

// TestWBZeroesPortQuantities checks eqs. 24-28.
func TestWBZeroesPortQuantities(t *testing.T) {
	a := WC(URC(8, 0), URC(0, 7))
	got := WB(a)
	quantEq(t, got, Quantity{CT: 7, TP: 56}, 0)
}

// TestWCFormulas checks eqs. 19-23 against a hand computation.
func TestWCFormulas(t *testing.T) {
	a := Quantity{CT: 2, TP: 30, R22: 15, TD2: 30, TR2R22: 450}
	b := Quantity{CT: 4, TP: 6, R22: 3, TD2: 6, TR2R22: 12}
	got := WC(a, b)
	want := Quantity{
		CT:     6,
		TP:     30 + 6 + 15*4,
		R22:    18,
		TD2:    30 + 6 + 15*4,
		TR2R22: 450 + 12 + 2*15*6 + 15*15*4,
	}
	quantEq(t, got, want, 0)
}

// TestWCAssociative: cascade composition is associative, so either grouping
// of a three-stage cascade agrees.
func TestWCAssociative(t *testing.T) {
	a, b, c := URC(15, 2), URC(3, 4), URC(7, 9)
	left := WC(WC(a, b), c)
	right := WC(a, WC(b, c))
	quantEq(t, left, right, 1e-14)
}

// fig7Src is the paper's eq. 18 network (Figure 7).
const fig7Src = `(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9`

// fig7Want is the quantity vector of the Figure 7 network, computed by hand
// from eqs. 19-28 and confirmed by every legible Figure 10 table entry.
var fig7Want = Quantity{CT: 22, TP: 419, R22: 18, TD2: 363, TR2R22: 6033}

func TestFig7Quantity(t *testing.T) {
	e, err := Parse(fig7Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	quantEq(t, e.Eval(), fig7Want, 1e-12)
	if got := Size(e); got != 6 {
		t.Errorf("Size = %d, want 6 URC primitives", got)
	}
	tr2, err := e.Eval().TR2()
	if err != nil {
		t.Fatal(err)
	}
	if want := 6033.0 / 18; !almostEq(tr2, want, 1e-12) {
		t.Errorf("TR2 = %g, want %g", tr2, want)
	}
}

// TestFig7BuiltProgrammatically mirrors the paper's Figure 10 session:
// BRANCH <- WB (URC 8 0) WC URC 0 7; NET <- cascade(...).
func TestFig7BuiltProgrammatically(t *testing.T) {
	branch := WBExpr{X: WCExpr{A: URCExpr{R: 8}, B: URCExpr{C: 7}}}
	net := Cascade(
		URCExpr{R: 15},
		URCExpr{C: 2},
		branch,
		URCExpr{R: 3, C: 4},
		URCExpr{C: 9},
	)
	quantEq(t, net.Eval(), fig7Want, 1e-12)
}

func TestTimesConversion(t *testing.T) {
	e := MustParse(fig7Src)
	tm, err := e.Eval().Times()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.TP, 419, 0) || !almostEq(tm.TD, 363, 0) ||
		!almostEq(tm.TR, 6033.0/18, 1e-12) || !almostEq(tm.Ree, 18, 0) {
		t.Errorf("Times = %+v", tm)
	}
	// Eq. 7 ordering must hold for the example network.
	if !(tm.TR <= tm.TD && tm.TD <= tm.TP) {
		t.Errorf("ordering violated: %+v", tm)
	}
}

func TestTR2Undefined(t *testing.T) {
	// A bare capacitor has R22 = 0 and zero numerator: TR2 = 0, no error.
	if tr2, err := Capacitor(3).TR2(); err != nil || tr2 != 0 {
		t.Errorf("capacitor TR2 = %g, %v", tr2, err)
	}
	// Forged quantity with impossible combination must error.
	q := Quantity{TR2R22: 5}
	if _, err := q.TR2(); err == nil {
		t.Error("expected error for R22=0 with nonzero TR2R22")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"URC",
		"URC 1",
		"URC 1 2 WC",
		"(URC 1 2",
		"URC 1 2) ",
		"URC -1 2",
		"FOO 1 2",
		"URC 1 2 XYZ 3",
		"WC URC 1 2",
		"URC 1 two",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseWhitespaceAndCase(t *testing.T) {
	e, err := Parse("  ( urc 15 0 )\n wc\t urc 0 2 ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	quantEq(t, e.Eval(), WC(URC(15, 0), URC(0, 2)), 0)
}

func TestParseScientificNotation(t *testing.T) {
	e, err := Parse("URC 1.5e2 2.5e-1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	quantEq(t, e.Eval(), URC(150, 0.25), 0)
}

// TestFormatRoundTrip: Format then Parse must preserve the value.
func TestFormatRoundTrip(t *testing.T) {
	exprs := []Expr{
		URCExpr{R: 15},
		WBExpr{X: URCExpr{R: 8, C: 2}},
		MustParse(fig7Src),
		Cascade(URCExpr{R: 1, C: 2}, WBExpr{X: URCExpr{C: 3}}, URCExpr{R: 4}),
	}
	for _, e := range exprs {
		text := Format(e)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(Format) of %q: %v", text, err)
		}
		quantEq(t, back.Eval(), e.Eval(), 1e-14)
	}
}

// TestWBPrecedence: in the paper's notation WB extends to the end of the
// enclosing group, so `WB A WC B` is WB(A WC B), not WB(A) WC B.
func TestWBPrecedence(t *testing.T) {
	e := MustParse("WB URC 8 0 WC URC 0 7")
	want := WB(WC(URC(8, 0), URC(0, 7)))
	quantEq(t, e.Eval(), want, 0)
	// Inside parentheses the scope is limited to the group.
	e2 := MustParse("(WB URC 8 0) WC URC 0 7")
	want2 := WC(WB(URC(8, 0)), URC(0, 7))
	quantEq(t, e2.Eval(), want2, 0)
}

// TestWCRightAssociativeParse: the parser may group rightward; since WC is
// associative the value equals the left fold.
func TestWCRightAssociativeParse(t *testing.T) {
	e := MustParse("URC 1 2 WC URC 3 4 WC URC 5 6")
	want := WC(WC(URC(1, 2), URC(3, 4)), URC(5, 6))
	quantEq(t, e.Eval(), want, 1e-14)
}

func TestCascadePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cascade() did not panic")
		}
	}()
	Cascade()
}
