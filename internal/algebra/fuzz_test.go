package algebra

import (
	"math"
	"testing"
)

// FuzzParse asserts the expression parser never panics, and that anything it
// accepts evaluates to a finite quantity vector that survives Format→Parse
// and ToTree round trips.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig7Src,
		"URC 1 2",
		"(URC 1 2) WC URC 3 4",
		"WB URC 8 0 WC URC 0 7",
		"((((URC 1 1))))",
		"URC",
		"WC",
		")(",
		"URC 1e308 1e308",
		"urc 0 0",
		"URC 1 2 WC WB URC 3 4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		q := e.Eval()
		for _, x := range q.Vector() {
			if math.IsNaN(x) {
				t.Fatalf("NaN in quantity for %q: %v", src, q)
			}
		}
		// Format must reparse to the same value (infinities excepted —
		// overflow on absurd inputs is not a round-trip bug).
		for _, x := range q.Vector() {
			if math.IsInf(x, 0) {
				return
			}
		}
		back, err := Parse(Format(e))
		if err != nil {
			t.Fatalf("Format of accepted input failed to reparse: %v (%q)", err, Format(e))
		}
		bq := back.Eval()
		for i, x := range q.Vector() {
			y := bq.Vector()[i]
			if x != y && math.Abs(x-y) > 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
				t.Fatalf("round trip changed vector: %v -> %v", q, bq)
			}
		}
		// Tree materialization must also succeed and stay consistent.
		tr, out, err := ToTree(e)
		if err != nil {
			// Trees need some capacitance; pure-resistor expressions are
			// legitimately rejected here.
			return
		}
		tm, err := tr.CharacteristicTimes(out)
		if err != nil {
			t.Fatalf("ToTree produced uncomputable tree for %q: %v", src, err)
		}
		want, err := q.Times()
		if err != nil {
			return
		}
		if math.Abs(tm.TD-want.TD) > 1e-9*(1+math.Abs(want.TD)) {
			t.Fatalf("tree TD %g != algebra TD %g for %q", tm.TD, want.TD, src)
		}
	})
}
