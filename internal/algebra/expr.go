package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a node in an RC-tree expression, the algebraic description of §IV.
// Eval reduces the expression to its quantity vector in linear time.
type Expr interface {
	// Eval computes the quantity vector of the subnetwork.
	Eval() Quantity
	// appendText renders the expression in the paper's notation.
	appendText(b *strings.Builder, parenthesize bool)
}

// URCExpr is the primitive: a uniform RC line `URC R C`.
type URCExpr struct {
	R, C float64
}

// WBExpr folds its operand into a side branch: `WB expr`.
type WBExpr struct {
	X Expr
}

// WCExpr cascades A's port 2 into B's port 1: `A WC B`.
type WCExpr struct {
	A, B Expr
}

// Eval implements Expr.
func (e URCExpr) Eval() Quantity { return URC(e.R, e.C) }

// Eval implements Expr.
func (e WBExpr) Eval() Quantity { return WB(e.X.Eval()) }

// Eval implements Expr.
func (e WCExpr) Eval() Quantity { return WC(e.A.Eval(), e.B.Eval()) }

func (e URCExpr) appendText(b *strings.Builder, paren bool) {
	if paren {
		b.WriteByte('(')
	}
	fmt.Fprintf(b, "URC %s %s", formatNum(e.R), formatNum(e.C))
	if paren {
		b.WriteByte(')')
	}
}

func (e WBExpr) appendText(b *strings.Builder, paren bool) {
	// WB extends to the end of the enclosing group in the paper's
	// right-to-left notation, so parenthesizing keeps printing unambiguous.
	b.WriteString("(WB ")
	e.X.appendText(b, false)
	b.WriteByte(')')
}

func (e WCExpr) appendText(b *strings.Builder, paren bool) {
	if paren {
		b.WriteByte('(')
	}
	e.A.appendText(b, true)
	b.WriteString(" WC ")
	e.B.appendText(b, false)
	if paren {
		b.WriteByte(')')
	}
}

func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Format renders an expression in the paper's notation, e.g. the eq. 18
// network prints as
//
//	(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9
func Format(e Expr) string {
	var b strings.Builder
	e.appendText(&b, false)
	return b.String()
}

// Cascade folds a sequence of expressions left to right with WC. It panics
// on an empty argument list, which is a programming error at the call site.
func Cascade(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		panic("algebra: Cascade of zero expressions")
	}
	e := exprs[0]
	for _, x := range exprs[1:] {
		e = WCExpr{A: e, B: x}
	}
	return e
}

// Size returns the number of URC primitives in the expression, the n of the
// paper's linear-time claim.
func Size(e Expr) int {
	switch v := e.(type) {
	case URCExpr:
		return 1
	case WBExpr:
		return Size(v.X)
	case WCExpr:
		return Size(v.A) + Size(v.B)
	}
	return 0
}
