// Package algebra implements the constructive RC-tree algebra of Penfield
// and Rubinstein's §IV: every RC tree is an expression over one primitive,
// the uniform RC line URC R C (R=0 degenerates to a lumped capacitor, C=0 to
// a lumped resistor), combined by two wiring functions, WB (fold a subtree
// into a side branch) and WC (cascade).
//
// Each subnetwork is summarized by the five-element quantity vector
// (CT, TP, R22, TD2, TR2·R22); the wiring functions propagate it by eqs.
// 19–28, so the characteristic times at the final port-2 output are obtained
// in time linear in the number of elements.
package algebra

import (
	"fmt"

	"repro/internal/rctree"
)

// Quantity is the paper's five-element summary of a partially constructed
// two-port RC tree (input at port 1, working output at port 2):
//
//	CT      total capacitance                         (eq. 19 / 24)
//	TP      Σ Rkk·Ck over the subnetwork              (eq. 20 / 25)
//	R22     port-1 to port-2 resistance               (eq. 21 / 26)
//	TD2     Σ Rk2·Ck — Elmore delay at port 2         (eq. 22 / 27)
//	TR2R22  Σ Rk2²·Ck — TR2 times R22                 (eq. 23 / 28)
//
// The paper's APL code passes exactly this vector around.
type Quantity struct {
	CT     float64
	TP     float64
	R22    float64
	TD2    float64
	TR2R22 float64
}

// URC returns the quantity of a uniform RC line with total resistance r and
// total capacitance c (the paper's Figure 8 URC function):
//
//	(C, RC/2, R, RC/2, R²C/3)
func URC(r, c float64) Quantity {
	return Quantity{
		CT:     c,
		TP:     r * c / 2,
		R22:    r,
		TD2:    r * c / 2,
		TR2R22: r * r * c / 3,
	}
}

// Capacitor returns the quantity of a lumped capacitor, URC 0 C.
func Capacitor(c float64) Quantity { return URC(0, c) }

// Resistor returns the quantity of a lumped resistor, URC R 0.
func Resistor(r float64) Quantity { return URC(r, 0) }

// WB converts a subtree into a side branch (eqs. 24–28): total capacitance
// and TP survive; the port-2 quantities are zeroed because the branch no
// longer carries the output.
func WB(a Quantity) Quantity {
	return Quantity{CT: a.CT, TP: a.TP}
}

// WC cascades two subnetworks, connecting A's port 2 to B's port 1
// (eqs. 19–23).
func WC(a, b Quantity) Quantity {
	return Quantity{
		CT:     a.CT + b.CT,
		TP:     a.TP + b.TP + a.R22*b.CT,
		R22:    a.R22 + b.R22,
		TD2:    a.TD2 + b.TD2 + a.R22*b.CT,
		TR2R22: a.TR2R22 + b.TR2R22 + 2*a.R22*b.TD2 + a.R22*a.R22*b.CT,
	}
}

// TR2 returns the third characteristic time TR at port 2, dividing out R22.
// It reports an error when R22 is zero with a nonzero numerator, which
// happens only for malformed networks (an output separated from the input by
// no resistance cannot have a defined TR bound).
func (q Quantity) TR2() (float64, error) {
	if q.R22 == 0 {
		if q.TR2R22 == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("algebra: TR2 undefined: R22=0 with TR2·R22=%g", q.TR2R22)
	}
	return q.TR2R22 / q.R22, nil
}

// Times converts the quantity at port 2 into the characteristic-times record
// used by the bounds engine.
func (q Quantity) Times() (rctree.Times, error) {
	tr, err := q.TR2()
	if err != nil {
		return rctree.Times{}, err
	}
	tm := rctree.Times{TP: q.TP, TD: q.TD2, TR: tr, Ree: q.R22}
	if err := tm.Validate(); err != nil {
		return rctree.Times{}, err
	}
	return tm, nil
}

// Vector returns the quantity as the 5-element slice in the paper's APL
// ordering, convenient for table printing and comparisons.
func (q Quantity) Vector() [5]float64 {
	return [5]float64{q.CT, q.TP, q.R22, q.TD2, q.TR2R22}
}

func (q Quantity) String() string {
	return fmt.Sprintf("(CT=%g TP=%g R22=%g TD2=%g TR2R22=%g)",
		q.CT, q.TP, q.R22, q.TD2, q.TR2R22)
}
