package algebra

import (
	"fmt"

	"repro/internal/rctree"
)

// FromTree expresses an rctree as the paper's algebra, with port 2 at the
// designated output e. Side branches (including everything downstream of the
// output) are folded in with WB; the input→output path is cascaded with WC.
// Evaluating the result therefore yields exactly the quantity vector whose
// Times match Tree.CharacteristicTimes(e).
func FromTree(t *rctree.Tree, e rctree.NodeID) (Expr, error) {
	if int(e) < 0 || int(e) >= t.NumNodes() {
		return nil, fmt.Errorf("algebra: output id %d out of range", e)
	}
	onPath := make(map[rctree.NodeID]bool)
	for x := e; ; x = t.Parent(x) {
		onPath[x] = true
		if x == rctree.Root {
			break
		}
	}

	// branchExpr renders the whole subtree rooted at v (including v's lumped
	// capacitor but excluding v's parent edge) as a pure side network.
	var branchExpr func(v rctree.NodeID) Expr
	branchExpr = func(v rctree.NodeID) Expr {
		parts := []Expr{}
		if c := t.NodeCap(v); c > 0 {
			parts = append(parts, URCExpr{R: 0, C: c})
		}
		for _, ch := range t.Children(v) {
			kind, r, c := t.Edge(ch)
			edge := edgeExpr(kind, r, c)
			sub := branchExpr(ch)
			if sub == nil {
				parts = append(parts, WBExpr{X: edge})
			} else {
				parts = append(parts, WBExpr{X: WCExpr{A: edge, B: sub}})
			}
		}
		if len(parts) == 0 {
			return nil
		}
		return Cascade(parts...)
	}

	// pathExpr walks from v toward the output, cascading the node capacitor,
	// WB side branches, and then the next path edge.
	var pathExpr func(v rctree.NodeID) Expr
	pathExpr = func(v rctree.NodeID) Expr {
		parts := []Expr{}
		if c := t.NodeCap(v); c > 0 {
			parts = append(parts, URCExpr{R: 0, C: c})
		}
		var next rctree.NodeID = -1
		for _, ch := range t.Children(v) {
			if onPath[ch] {
				next = ch
				continue
			}
			kind, r, c := t.Edge(ch)
			edge := edgeExpr(kind, r, c)
			if sub := branchExpr(ch); sub != nil {
				parts = append(parts, WBExpr{X: WCExpr{A: edge, B: sub}})
			} else {
				parts = append(parts, WBExpr{X: edge})
			}
		}
		if next >= 0 {
			kind, r, c := t.Edge(next)
			parts = append(parts, edgeExpr(kind, r, c))
			if rest := pathExpr(next); rest != nil {
				parts = append(parts, rest)
			}
		}
		// When v == e there is no on-path child: everything strictly below
		// the output was already folded in as a WB side branch above, which
		// is exactly eqs. 19–28's treatment of capacitance beyond the output.
		if len(parts) == 0 {
			return nil
		}
		return Cascade(parts...)
	}

	expr := pathExpr(rctree.Root)
	if expr == nil {
		return nil, fmt.Errorf("algebra: tree has no elements")
	}
	return expr, nil
}

func edgeExpr(kind rctree.EdgeKind, r, c float64) Expr {
	switch kind {
	case rctree.EdgeResistor:
		return URCExpr{R: r, C: 0}
	case rctree.EdgeLine:
		return URCExpr{R: r, C: c}
	}
	// Root edges never reach here; a zero URC keeps the expression total.
	return URCExpr{}
}

// ToTree materializes an expression as an rctree, preserving the network
// topology: URC R C with both values positive becomes a distributed line,
// R-only a resistor, C-only a lumped capacitor; WB descends and returns;
// WC advances the working node. The final working node is the output.
//
// Distributed lines survive the round trip, so ToTree∘FromTree preserves the
// quantity vector exactly (up to floating-point association order).
func ToTree(e Expr) (*rctree.Tree, rctree.NodeID, error) {
	b := rctree.NewBuilder("in")
	cur := build(b, e, rctree.Root)
	b.Output(cur)
	t, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return t, cur, nil
}

// build adds the network of e starting at node at, returning the node where
// port 2 lands.
func build(b *rctree.Builder, e Expr, at rctree.NodeID) rctree.NodeID {
	switch v := e.(type) {
	case URCExpr:
		switch {
		case v.R == 0 && v.C == 0:
			return at
		case v.R == 0:
			b.Capacitor(at, v.C)
			return at
		case v.C == 0:
			return b.Resistor(at, "", v.R)
		default:
			return b.Line(at, "", v.R, v.C)
		}
	case WBExpr:
		build(b, v.X, at) // descend, then the working node snaps back
		return at
	case WCExpr:
		mid := build(b, v.A, at)
		return build(b, v.B, mid)
	}
	return at
}
