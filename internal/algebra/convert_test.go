package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/randnet"
	"repro/internal/rctree"
)

// fig7Tree builds the Figure 7 network directly with the tree builder:
// in -R15- n1 [C2] ; n1 -R8- b [C7] ; n1 -URC(3,4)- n2 [C9] ; output n2.
func fig7Tree(t *testing.T) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 15)
	b.Capacitor(n1, 2)
	br := b.Resistor(n1, "b", 8)
	b.Capacitor(br, 7)
	n2 := b.Line(n1, "n2", 3, 4)
	b.Capacitor(n2, 9)
	b.Output(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n2
}

// TestFig7TreeMatchesExpression: the tree built structurally and the paper's
// eq. 18 expression yield the same quantity vector and characteristic times.
func TestFig7TreeMatchesExpression(t *testing.T) {
	tr, out := fig7Tree(t)
	expr, err := FromTree(tr, out)
	if err != nil {
		t.Fatal(err)
	}
	quantEq(t, expr.Eval(), fig7Want, 1e-12)

	tm, err := tr.CharacteristicTimes(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := expr.Eval().Times()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.TP, want.TP, 1e-12) || !almostEq(tm.TD, want.TD, 1e-12) ||
		!almostEq(tm.TR, want.TR, 1e-12) || !almostEq(tm.Ree, want.Ree, 1e-12) {
		t.Errorf("tree times %+v != algebra times %+v", tm, want)
	}
}

// TestToTreeRoundTrip: expression -> tree -> characteristic times agrees
// with direct evaluation, including distributed lines.
func TestToTreeRoundTrip(t *testing.T) {
	for _, src := range []string{
		fig7Src,
		"URC 100 3",
		"URC 10 0 WC URC 0 5",
		"(URC 5 1) WC (WB (URC 7 2) WC URC 0 3) WC URC 9 4",
		"(WB URC 1 1) WC URC 2 2",
	} {
		expr := MustParse(src)
		tr, out, err := ToTree(expr)
		if err != nil {
			t.Fatalf("ToTree(%q): %v", src, err)
		}
		tm, err := tr.CharacteristicTimes(out)
		if err != nil {
			t.Fatalf("CharacteristicTimes(%q): %v", src, err)
		}
		want, err := expr.Eval().Times()
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(tm.TP, want.TP, 1e-12) || !almostEq(tm.TD, want.TD, 1e-12) ||
			!almostEq(tm.TR, want.TR, 1e-12) || !almostEq(tm.Ree, want.Ree, 1e-12) {
			t.Errorf("%q: tree times %+v != algebra %+v", src, tm, want)
		}
	}
}

// TestFromTreeMatchesDirectOnRandomTrees is the central cross-validation of
// the paper's two algorithms: the O(n) constructive algebra (§IV) and the
// direct summation of the definitions (§III) agree on arbitrary trees, at
// every output.
func TestFromTreeMatchesDirectOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 250; trial++ {
		tr := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(35)))
		for _, e := range tr.Outputs() {
			expr, err := FromTree(tr, e)
			if err != nil {
				t.Fatalf("trial %d: FromTree: %v", trial, err)
			}
			alg, err := expr.Eval().Times()
			if err != nil {
				t.Fatalf("trial %d: Times: %v\n%s", trial, err, tr)
			}
			direct, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatalf("trial %d: direct: %v", trial, err)
			}
			if !almostEq(alg.TP, direct.TP, 1e-9) || !almostEq(alg.TD, direct.TD, 1e-9) ||
				!almostEq(alg.TR, direct.TR, 1e-9) || !almostEq(alg.Ree, direct.Ree, 1e-9) {
				t.Fatalf("trial %d output %d: algebra %+v != direct %+v\n%s",
					trial, e, alg, direct, tr)
			}
		}
	}
}

// TestFromTreeOutputMidTree: outputs may be taken anywhere in the tree, not
// only at leaves; capacitance downstream of the output must still count.
func TestFromTreeOutputMidTree(t *testing.T) {
	b := rctree.NewBuilder("in")
	mid := b.Resistor(rctree.Root, "mid", 10)
	b.Capacitor(mid, 1)
	deep := b.Resistor(mid, "deep", 20)
	b.Capacitor(deep, 5)
	b.Output(mid)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	expr, err := FromTree(tr, mid)
	if err != nil {
		t.Fatal(err)
	}
	q := expr.Eval()
	// TD2 = 10*1 (cap at mid) + 10*5 (downstream cap at common resistance 10).
	if !almostEq(q.TD2, 60, 1e-12) {
		t.Errorf("TD2 = %g, want 60", q.TD2)
	}
	// TP = 10*1 + 30*5 = 160.
	if !almostEq(q.TP, 160, 1e-12) {
		t.Errorf("TP = %g, want 160", q.TP)
	}
	if !almostEq(q.R22, 10, 0) {
		t.Errorf("R22 = %g, want 10", q.R22)
	}
}

func TestFromTreeErrors(t *testing.T) {
	tr, _ := fig7Tree(t)
	if _, err := FromTree(tr, rctree.NodeID(99)); err == nil {
		t.Error("expected error for out-of-range output")
	}
}

// TestFromTreeSize: the expression has one URC per element (edges plus
// capacitor nodes), so the linear-time claim is about the same n.
func TestFromTreeSize(t *testing.T) {
	tr, out := fig7Tree(t)
	expr, err := FromTree(tr, out)
	if err != nil {
		t.Fatal(err)
	}
	// 3 edges + 3 capacitors = 6 primitives, as in eq. 18.
	if got := Size(expr); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}
