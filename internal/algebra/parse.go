package algebra

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an RC-tree expression in the paper's notation, e.g.
//
//	(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9
//
// Following the paper's APL right-to-left convention, WB is a prefix
// operator that extends to the end of the enclosing parenthesized group, and
// WC associates to the right (cascade is associative, so grouping does not
// affect the value).
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse for statically known inputs; it panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokLParen tokKind = iota
	tokRParen
	tokURC
	tokWB
	tokWC
	tokNumber
)

type token struct {
	kind tokKind
	text string
	val  float64
	pos  int // byte offset in the source, for error messages
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case isWordByte(c):
			j := i
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			word := src[i:j]
			tk := token{text: word, pos: i}
			switch strings.ToUpper(word) {
			case "URC":
				tk.kind = tokURC
			case "WB":
				tk.kind = tokWB
			case "WC":
				tk.kind = tokWC
			default:
				v, err := strconv.ParseFloat(word, 64)
				if err != nil {
					return nil, fmt.Errorf("algebra: offset %d: unknown token %q", i, word)
				}
				tk.kind = tokNumber
				tk.val = v
			}
			toks = append(toks, tk)
			i = j
		default:
			return nil, fmt.Errorf("algebra: offset %d: unexpected character %q", i, rune(c))
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	r := rune(c)
	return unicode.IsLetter(r) || unicode.IsDigit(r) || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) eof() bool      { return p.pos >= len(p.toks) }
func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	where := len(p.src)
	if !p.eof() {
		where = p.peek().pos
	}
	return fmt.Errorf("algebra: offset %d: %s", where, fmt.Sprintf(format, args...))
}

// parseExpr handles:  expr := WB expr | term [WC expr]
func (p *parser) parseExpr() (Expr, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of expression")
	}
	if p.peek().kind == tokWB {
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return WBExpr{X: inner}, nil
	}
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if !p.eof() && p.peek().kind == tokWC {
		p.advance()
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return WCExpr{A: left, B: right}, nil
	}
	return left, nil
}

// parseTerm handles:  term := '(' expr ')' | URC number number
func (p *parser) parseTerm() (Expr, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of expression")
	}
	switch t := p.advance(); t.kind {
	case tokLParen:
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek().kind != tokRParen {
			return nil, p.errf("missing closing parenthesis for group at offset %d", t.pos)
		}
		p.advance()
		return inner, nil
	case tokURC:
		r, err := p.parseNumber("URC resistance")
		if err != nil {
			return nil, err
		}
		c, err := p.parseNumber("URC capacitance")
		if err != nil {
			return nil, err
		}
		if r < 0 || c < 0 {
			return nil, fmt.Errorf("algebra: offset %d: URC values must be nonnegative, got %g %g", t.pos, r, c)
		}
		return URCExpr{R: r, C: c}, nil
	default:
		return nil, fmt.Errorf("algebra: offset %d: expected '(' or URC, got %q", t.pos, t.text)
	}
}

func (p *parser) parseNumber(what string) (float64, error) {
	if p.eof() {
		return 0, p.errf("expected %s, got end of expression", what)
	}
	t := p.advance()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("algebra: offset %d: expected %s, got %q", t.pos, what, t.text)
	}
	return t.val, nil
}
