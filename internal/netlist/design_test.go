package netlist

import (
	"strings"
	"testing"
)

const demoDesign = `
* two inverter stages driving a fanout net
.design demo
.net drv
.input in
R1 in o 10
C1 o 0 5
.output o
.endnet
.net load
.input in
R1 in a 20
C1 a 0 3
R2 a b 5
C2 b 0 2
.output a b
.endnet
.stage drv o load 3.5
.require load a 400
.require load b 500
.end
`

func TestParseDesign(t *testing.T) {
	d, err := ParseDesign(demoDesign)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" {
		t.Errorf("Name = %q", d.Name)
	}
	if len(d.Nets) != 2 || d.Nets[0].Name != "drv" || d.Nets[1].Name != "load" {
		t.Fatalf("nets = %+v", d.Nets)
	}
	if d.Net("drv") == nil || d.Net("load") == nil || d.Net("ghost") != nil {
		t.Error("Net lookup wrong")
	}
	if d.Nets[1].Tree.NumNodes() != 3 {
		t.Errorf("load nodes = %d", d.Nets[1].Tree.NumNodes())
	}
	if len(d.Stages) != 1 {
		t.Fatalf("stages = %+v", d.Stages)
	}
	s := d.Stages[0]
	if s.FromNet != "drv" || s.FromOutput != "o" || s.ToNet != "load" || s.Delay != 3.5 {
		t.Errorf("stage = %+v", s)
	}
	if len(d.Requires) != 2 || d.Requires[0].Time != 400 || d.Requires[1].Time != 500 {
		t.Errorf("requires = %+v", d.Requires)
	}
}

func TestParseDesignValueSuffixes(t *testing.T) {
	d, err := ParseDesign(`
.net a
R1 in o 1k
C1 o 0 2p
.output o
.endnet
.net b
R1 in o 1
C1 o 0 1
.output o
.endnet
.stage a o b 2n
.require b o 1u
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stages[0].Delay != 2e-9 {
		t.Errorf("delay = %g", d.Stages[0].Delay)
	}
	if d.Requires[0].Time != 1e-6 {
		t.Errorf("require = %g", d.Requires[0].Time)
	}
}

func TestParseDesignErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no nets", ".end\n", "no nets"},
		{"unterminated net", ".net a\nR1 in o 1\n", "missing its .endnet"},
		{"nested net", ".net a\n.net b\n", ".net inside net"},
		{"stray endnet", ".endnet\n", ".endnet without .net"},
		{"dup net", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n", "already defined"},
		{"bad inner deck", ".net a\ngarbage\n.endnet\n", "unrecognized card"},
		{"bad stage arity", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o\n", "stage card needs"},
		{"negative delay", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o a -1\n", "negative stage delay"},
		{"unknown from net", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage x o a 1\n", "unknown net"},
		{"unknown to net", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o x 1\n", "unknown net"},
		{"stage non-output", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a in a 1\n", "not a designated output"},
		{"require unknown net", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.require x o 1\n", "unknown net"},
		{"require non-output", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.require a in 1\n", "not a designated output"},
		{"bad require arity", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.require a o\n", "require card needs"},
		{"dup design name", ".design x\n.design y\n", "duplicate .design"},
		{"element at top level", "R1 in o 1\n", "unrecognized design card"},
		{"infinite require", ".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.require a o infinity\n", "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDesign(tc.src)
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWriteDesignRoundTrip(t *testing.T) {
	d, err := ParseDesign(demoDesign)
	if err != nil {
		t.Fatal(err)
	}
	deck := WriteDesign(d)
	back, err := ParseDesign(deck)
	if err != nil {
		t.Fatalf("written deck rejected: %v\n%s", err, deck)
	}
	if back.Name != d.Name || len(back.Nets) != len(d.Nets) ||
		len(back.Stages) != len(d.Stages) || len(back.Requires) != len(d.Requires) {
		t.Fatalf("round trip changed shape: %+v vs %+v", back, d)
	}
	for i := range d.Nets {
		if back.Nets[i].Name != d.Nets[i].Name {
			t.Errorf("net %d name %q -> %q", i, d.Nets[i].Name, back.Nets[i].Name)
		}
		if back.Nets[i].Tree.NumNodes() != d.Nets[i].Tree.NumNodes() {
			t.Errorf("net %q node count changed", d.Nets[i].Name)
		}
	}
	if back.Stages[0] != d.Stages[0] {
		t.Errorf("stage changed: %+v -> %+v", d.Stages[0], back.Stages[0])
	}
	// Writing the reparse must be byte-identical: the writer is canonical.
	if again := WriteDesign(back); again != deck {
		t.Errorf("writer not canonical:\n%s\nvs\n%s", deck, again)
	}
}
