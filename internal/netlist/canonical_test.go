package netlist_test

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// fanout builds a two-arm tree with configurable names and sibling order,
// for invariance checks.
func fanout(t *testing.T, names [2]string, swap bool) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder("in")
	add := func(k int) {
		r := []float64{15, 8}[k]
		c := []float64{2, 7}[k]
		id := b.Line(rctree.Root, names[k], r, c)
		b.Output(id)
	}
	if swap {
		add(1)
		add(0)
	} else {
		add(0)
		add(1)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestCanonicalInvariance: node names, sibling order and output declaration
// order must not change the canonical deck.
func TestCanonicalInvariance(t *testing.T) {
	base, _ := netlist.Canonical(fanout(t, [2]string{"a", "b"}, false))
	renamed, _ := netlist.Canonical(fanout(t, [2]string{"left", "right"}, false))
	swapped, _ := netlist.Canonical(fanout(t, [2]string{"a", "b"}, true))
	if base != renamed {
		t.Errorf("renaming changed the canonical deck:\n%s\nvs\n%s", base, renamed)
	}
	if base != swapped {
		t.Errorf("sibling order changed the canonical deck:\n%s\nvs\n%s", base, swapped)
	}
}

// TestCanonicalDistinguishes: changing a value or moving an output must
// change the canonical deck.
func TestCanonicalDistinguishes(t *testing.T) {
	mk := func(r2 float64, outBoth bool) string {
		b := rctree.NewBuilder("in")
		x := b.Line(rctree.Root, "x", 15, 2)
		y := b.Line(rctree.Root, "y", r2, 7)
		b.Output(x)
		if outBoth {
			b.Output(y)
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		deck, _ := netlist.Canonical(tree)
		return deck
	}
	if mk(8, true) == mk(9, true) {
		t.Error("value change not reflected in canonical deck")
	}
	if mk(8, true) == mk(8, false) {
		t.Error("output placement not reflected in canonical deck")
	}
}

// TestCanonicalHashMatchesCanonical checks the fast hash induces the same
// equivalence classes as the rendered canonical deck: invariance under
// renaming and sibling reordering, sensitivity to value and output changes,
// and deck-equality ⇔ key-equality over random tree pairs.
func TestCanonicalHashMatchesCanonical(t *testing.T) {
	base, _ := netlist.CanonicalHash(fanout(t, [2]string{"a", "b"}, false))
	renamed, _ := netlist.CanonicalHash(fanout(t, [2]string{"left", "right"}, false))
	swapped, _ := netlist.CanonicalHash(fanout(t, [2]string{"a", "b"}, true))
	if base != renamed || base != swapped {
		t.Errorf("hash not invariant under renaming/reordering: %s %s %s", base, renamed, swapped)
	}

	rng := rand.New(rand.NewSource(11))
	type entry struct {
		deck string
		key  string
	}
	var entries []entry
	for trial := 0; trial < 40; trial++ {
		tree := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(25)))
		deck, _ := netlist.Canonical(tree)
		key, canon := netlist.CanonicalHash(tree)
		entries = append(entries, entry{deck, key})
		// Reparsing the canonical deck renames every node; the key must
		// survive, and the canon mapping must cover all nodes uniquely.
		parsed, err := netlist.Parse(deck)
		if err != nil {
			t.Fatal(err)
		}
		if key2, _ := netlist.CanonicalHash(parsed); key2 != key {
			t.Errorf("trial %d: key changed across canonical round-trip", trial)
		}
		seen := map[int]bool{}
		for _, p := range canon {
			if p < 0 || p >= tree.NumNodes() || seen[p] {
				t.Fatalf("trial %d: canon mapping not a permutation: %v", trial, canon)
			}
			seen[p] = true
		}
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			sameDeck := entries[i].deck == entries[j].deck
			sameKey := entries[i].key == entries[j].key
			if sameDeck != sameKey {
				t.Errorf("deck equality (%t) and key equality (%t) disagree for trees %d, %d",
					sameDeck, sameKey, i, j)
			}
		}
	}
}

// TestCanonicalRoundTrip parses canonical decks of random trees back and
// checks the result re-canonicalizes to the same deck with matching
// characteristic times at every canonical position.
func TestCanonicalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		tree := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(40)))
		deck, canon := netlist.Canonical(tree)
		parsed, err := netlist.Parse(deck)
		if err != nil {
			t.Fatalf("trial %d: canonical deck does not parse: %v\n%s", trial, err, deck)
		}
		deck2, canon2 := netlist.Canonical(parsed)
		if deck != deck2 {
			t.Fatalf("trial %d: canonical deck not a fixed point:\n%s\nvs\n%s", trial, deck, deck2)
		}
		// Characteristic times must agree per canonical position.
		times := map[int]rctree.Times{}
		for _, e := range tree.Outputs() {
			tm, err := tree.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			times[canon[e]] = tm
		}
		for _, e := range parsed.Outputs() {
			tm, err := parsed.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := times[canon2[e]]
			if !ok {
				t.Fatalf("trial %d: output at canonical position %d missing from original", trial, canon2[e])
			}
			if diff := tm.TP - want.TP + tm.TD - want.TD + tm.TR - want.TR; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("trial %d: times differ at canonical position %d: %+v vs %+v",
					trial, canon2[e], tm, want)
			}
		}
	}
}
