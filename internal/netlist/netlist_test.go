package netlist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rctree"
)

// randTree builds a random mixed resistor/line tree with lumped caps and all
// leaves as outputs (a local stand-in for randnet, which now depends on this
// package and cannot be imported from its in-package tests).
func randTree(rng *rand.Rand, nodes int) *rctree.Tree {
	b := rctree.NewBuilder("in")
	ids := []rctree.NodeID{rctree.Root}
	for i := 0; i < nodes; i++ {
		parent := ids[rng.Intn(len(ids))]
		name := fmt.Sprintf("n%d", i+1)
		r := rng.Float64()*100 + 1e-3
		var id rctree.NodeID
		if rng.Float64() < 0.4 {
			id = b.Line(parent, name, r, rng.Float64()*10+1e-6)
		} else {
			id = b.Resistor(parent, name, r)
		}
		if rng.Float64() < 0.7 {
			b.Capacitor(id, rng.Float64()*10+1e-6)
		}
		ids = append(ids, id)
	}
	b.Capacitor(ids[len(ids)-1], 1)
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tr
}

const fig7Deck = `
* Figure 7 of the paper
.input in
R1 in  n1 15
C1 n1  0  2
R2 n1  b  8
C2 b   0  7
U1 n1  n2 3 4    ; uniform RC line R=3 C=4
C3 n2  0  9
.output n2
.end
`

func TestParseFig7(t *testing.T) {
	tr, err := Parse(fig7Deck)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, ok := tr.Lookup("n2")
	if !ok {
		t.Fatal("node n2 missing")
	}
	tm, err := tr.CharacteristicTimes(out)
	if err != nil {
		t.Fatal(err)
	}
	// Known Figure 7 values: TP=419, TD=363, TR=6033/18, Ree=18.
	if math.Abs(tm.TP-419) > 1e-9 || math.Abs(tm.TD-363) > 1e-9 ||
		math.Abs(tm.TR-6033.0/18) > 1e-9 || math.Abs(tm.Ree-18) > 1e-9 {
		t.Errorf("Times = %+v", tm)
	}
	if len(tr.Outputs()) != 1 || tr.Outputs()[0] != out {
		t.Errorf("Outputs = %v", tr.Outputs())
	}
}

// TestParseOutOfOrder: cards may appear in any order; the parser orients
// the tree from the input.
func TestParseOutOfOrder(t *testing.T) {
	deck := `
C3 n2 0 9
U1 n2 n1 3 4      ; note: reversed terminal order
R2 b n1 8
C1 n1 0 2
R1 n1 in 15
C2 0 b 7          ; ground first
.input in
.output n2 b
`
	tr, err := Parse(deck)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, _ := tr.Lookup("n2")
	tm, err := tr.CharacteristicTimes(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.TP-419) > 1e-9 || math.Abs(tm.TD-363) > 1e-9 {
		t.Errorf("Times = %+v, want Figure 7 values", tm)
	}
	if len(tr.Outputs()) != 2 {
		t.Errorf("Outputs = %d, want 2", len(tr.Outputs()))
	}
}

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"15":     15,
		"1.5k":   1500,
		"2meg":   2e6,
		"3m":     3e-3,
		"4u":     4e-6,
		"5n":     5e-9,
		"6p":     6e-12,
		"7f":     7e-15,
		"1g":     1e9,
		"2.5e-3": 2.5e-3,
		"-4":     -4,
	}
	for s, want := range cases {
		got, err := ParseValue(s)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", s, err)
			continue
		}
		if math.Abs(got-want) > 1e-15*math.Abs(want) {
			t.Errorf("ParseValue(%q) = %g, want %g", s, got, want)
		}
	}
	if _, err := ParseValue("abc"); err == nil {
		t.Error("ParseValue accepted garbage")
	}
	if _, err := ParseValue("1x"); err == nil {
		t.Error("ParseValue accepted unknown suffix")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, deck, want string
	}{
		{"empty", "", "no elements"},
		{"loop", ".input a\nR1 a b 1\nR2 b c 1\nR3 c a 1\nC1 b 0 1", "loop"},
		{"disconnected", ".input a\nR1 a b 1\nC1 b 0 1\nR2 x y 1", "disconnected"},
		{"r to ground", ".input a\nR1 a 0 5", "ground"},
		{"self loop", ".input a\nR1 a a 5", "self-loop"},
		{"dup element", ".input a\nR1 a b 1\nR1 b c 2\nC1 b 0 1", "already defined"},
		{"bad cap", ".input a\nR1 a b 1\nC1 a b 5", "ground"},
		{"negative cap", ".input a\nR1 a b 1\nC1 b 0 -5", "negative"},
		{"unknown card", ".input a\nX1 a b 1", "unrecognized"},
		{"bad resistor arity", ".input a\nR1 a b", "resistor card"},
		{"bad line arity", ".input a\nU1 a b 1", "line card"},
		{"bad cap arity", ".input a\nC1 a 0", "capacitor card"},
		{"two inputs", ".input a\n.input b\nR1 a b 1\nC1 b 0 1", "duplicate .input"},
		{"empty output", ".input a\n.output\nR1 a b 1\nC1 b 0 1", ".output needs"},
		{"missing output node", ".input a\nR1 a b 1\nC1 b 0 1\n.output zz", "does not exist"},
		{"input isolated", ".input z\nR1 a b 1\nC1 b 0 1", "touches no element"},
		{"floating cap", ".input a\nR1 a b 1\nC1 b 0 1\nC2 qq 0 3", "not connected"},
		{"bad value", ".input a\nR1 a b 1zz", "bad value"},
		{"negative resistor", ".input a\nR1 a b -5\nC1 b 0 1", "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.deck)
			if err == nil {
				t.Fatalf("Parse succeeded, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDefaultInputName(t *testing.T) {
	tr, err := Parse("R1 in b 5\nC1 b 0 2\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Name(rctree.Root) != "in" {
		t.Errorf("default input = %q", tr.Name(rctree.Root))
	}
}

// TestWriteParseRoundTrip: Write(Parse(deck)) preserves the characteristic
// times of every output, on the Figure 7 deck and on random trees.
func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trees := []*rctree.Tree{}
	if tr, err := Parse(fig7Deck); err == nil {
		trees = append(trees, tr)
	} else {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		trees = append(trees, randTree(rng, 1+rng.Intn(25)))
	}
	for ti, tr := range trees {
		deck := Write(tr)
		back, err := Parse(deck)
		if err != nil {
			t.Fatalf("tree %d: reparse failed: %v\n%s", ti, err, deck)
		}
		if back.NumNodes() != tr.NumNodes() {
			t.Fatalf("tree %d: node count %d -> %d", ti, tr.NumNodes(), back.NumNodes())
		}
		for _, e := range tr.Outputs() {
			want, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			id, ok := back.Lookup(tr.Name(e))
			if !ok {
				t.Fatalf("tree %d: output %q lost in round trip", ti, tr.Name(e))
			}
			got, err := back.CharacteristicTimes(id)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.TP-want.TP) > 1e-9*(1+want.TP) ||
				math.Abs(got.TD-want.TD) > 1e-9*(1+want.TD) ||
				math.Abs(got.TR-want.TR) > 1e-9*(1+want.TR) {
				t.Fatalf("tree %d output %q: times %+v -> %+v", ti, tr.Name(e), want, got)
			}
		}
	}
}

func TestWriteIncludesRootCap(t *testing.T) {
	b := rctree.NewBuilder("in")
	b.Capacitor(rctree.Root, 0.04)
	n := b.Resistor(rctree.Root, "n", 380)
	b.Capacitor(n, 1)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	deck := Write(tr)
	if !strings.Contains(deck, "C1 in 0 0.04") {
		t.Errorf("deck missing input capacitor:\n%s", deck)
	}
	if _, err := Parse(deck); err != nil {
		t.Errorf("reparse: %v", err)
	}
}

// TestCapacitorOnlyDeck is the regression for a fuzzer finding: a
// zero-resistance U card folds into capacitance at the input, and the
// resulting single-node deck must round-trip.
func TestCapacitorOnlyDeck(t *testing.T) {
	tr, err := Parse("U in 1 0 10")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.NumNodes() != 1 || tr.TotalCap() != 10 {
		t.Errorf("tree = %d nodes, C=%g; want 1 node, C=10", tr.NumNodes(), tr.TotalCap())
	}
	back, err := Parse(Write(tr))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.TotalCap() != 10 {
		t.Errorf("round trip capacitance = %g", back.TotalCap())
	}
	// Pure capacitor deck, output at the input node.
	tr2, err := Parse(".input a\nC1 a 0 5\n.output a")
	if err != nil {
		t.Fatalf("capacitor-only with output: %v", err)
	}
	if len(tr2.Outputs()) != 1 {
		t.Error("output lost")
	}
	// Floating capacitor in a capacitor-only deck still rejected.
	if _, err := Parse("C1 zz 0 5"); err == nil {
		t.Error("floating capacitor-only deck accepted")
	}
	if _, err := Parse(".input a\nC1 a 0 5\n.output ghost"); err == nil {
		t.Error("ghost output accepted")
	}
}
