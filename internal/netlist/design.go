package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rctree"
)

// Design is the multi-deck form of a chip: named nets (each an RC tree in
// the usual deck format) plus stage edges gluing them into a timing graph.
// A stage "output X of net A drives the input of net B through a gate with
// intrinsic delay d" is the abstraction of a logic stage: the gate's input
// threshold crossing at A/X launches a fresh step into B's driver d time
// units later. Requires pin down required arrival times at endpoints.
//
// The deck grammar wraps each net in .net/.endnet and lists stages and
// requirements at top level:
//
//	.design demo
//	.net stage1
//	.input in
//	R1 in o 10
//	C1 o 0 5
//	.output o
//	.endnet
//	.net stage2
//	...
//	.endnet
//	.stage stage1 o stage2 3.5    ; A/X -> B, gate intrinsic delay 3.5
//	.require stage2 o 100         ; required arrival at endpoint stage2/o
//	.end
//
// Everything between .net and .endnet is an ordinary single-net deck and is
// parsed by Parse; stage delays and require times accept SPICE suffixes.
type Design struct {
	// Name is the .design label, "" if absent.
	Name string
	// Nets holds the nets in declaration order.
	Nets []DesignNet
	// Stages holds the gate edges in declaration order.
	Stages []Stage
	// Requires holds the endpoint timing requirements in declaration order.
	Requires []Require
}

// DesignNet is one named RC tree of a Design.
type DesignNet struct {
	Name string
	Tree *rctree.Tree
}

// Stage is one gate edge: the named output of FromNet drives the input of
// ToNet through a gate with intrinsic delay Delay (same time units as the
// nets' RC products).
type Stage struct {
	FromNet    string
	FromOutput string
	ToNet      string
	Delay      float64
}

// Require is a required arrival time at one endpoint (net/output pair).
type Require struct {
	Net    string
	Output string
	Time   float64
}

// Net returns the named net, or nil.
func (d *Design) Net(name string) *DesignNet {
	for i := range d.Nets {
		if d.Nets[i].Name == name {
			return &d.Nets[i]
		}
	}
	return nil
}

// ParseDesign reads a multi-net design deck. Every stage and require is
// validated against the declared nets and their designated outputs, so a
// returned Design is structurally sound (cycles are only diagnosed when a
// timing graph is built from it).
func ParseDesign(src string) (*Design, error) {
	d := &Design{}
	var (
		curName string // net being collected, "" at top level
		curDeck strings.Builder
		netLine int
	)
	seenNets := map[string]int{}
	finishNet := func() error {
		tree, err := Parse(curDeck.String())
		if err != nil {
			return fmt.Errorf("netlist: design net %q (line %d): %w", curName, netLine, err)
		}
		d.Nets = append(d.Nets, DesignNet{Name: curName, Tree: tree})
		curName = ""
		curDeck.Reset()
		return nil
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		no := lineNo + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		fields := strings.Fields(line)
		head := strings.ToUpper(fields[0])
		if curName != "" {
			// Inside a net section: .endnet closes it, everything else is
			// deck content for the inner parser.
			if head == ".ENDNET" {
				if err := finishNet(); err != nil {
					return nil, err
				}
				continue
			}
			if head == ".NET" {
				return nil, fmt.Errorf("netlist: line %d: .net inside net %q (missing .endnet)", no, curName)
			}
			curDeck.WriteString(raw)
			curDeck.WriteByte('\n')
			continue
		}
		switch head {
		case ".DESIGN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: .design takes exactly one name", no)
			}
			if d.Name != "" {
				return nil, fmt.Errorf("netlist: line %d: duplicate .design (already %q)", no, d.Name)
			}
			d.Name = fields[1]
		case ".NET":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: .net takes exactly one name", no)
			}
			if prev, dup := seenNets[fields[1]]; dup {
				return nil, fmt.Errorf("netlist: line %d: net %q already defined at line %d", no, fields[1], prev)
			}
			seenNets[fields[1]] = no
			curName, netLine = fields[1], no
		case ".ENDNET":
			return nil, fmt.Errorf("netlist: line %d: .endnet without .net", no)
		case ".STAGE":
			if len(fields) != 5 {
				return nil, fmt.Errorf("netlist: line %d: stage card needs '.stage fromNet output toNet delay'", no)
			}
			delay, err := ParseValue(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", no, err)
			}
			if delay < 0 {
				return nil, fmt.Errorf("netlist: line %d: negative stage delay %g", no, delay)
			}
			d.Stages = append(d.Stages, Stage{
				FromNet: fields[1], FromOutput: fields[2], ToNet: fields[3], Delay: delay,
			})
		case ".REQUIRE":
			if len(fields) != 4 {
				return nil, fmt.Errorf("netlist: line %d: require card needs '.require net output time'", no)
			}
			t, err := ParseValue(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", no, err)
			}
			d.Requires = append(d.Requires, Require{Net: fields[1], Output: fields[2], Time: t})
		case ".END":
			// terminator, accepted anywhere at top level
		default:
			return nil, fmt.Errorf("netlist: line %d: unrecognized design card %q (element cards belong inside .net/.endnet)", no, fields[0])
		}
	}
	if curName != "" {
		return nil, fmt.Errorf("netlist: net %q (line %d) is missing its .endnet", curName, netLine)
	}
	if len(d.Nets) == 0 {
		return nil, fmt.Errorf("netlist: design has no nets")
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// validate resolves every stage and require against the declared nets.
func (d *Design) validate() error {
	for i, s := range d.Stages {
		from := d.Net(s.FromNet)
		if from == nil {
			return fmt.Errorf("netlist: stage %d references unknown net %q", i+1, s.FromNet)
		}
		if d.Net(s.ToNet) == nil {
			return fmt.Errorf("netlist: stage %d references unknown net %q", i+1, s.ToNet)
		}
		if !hasOutput(from.Tree, s.FromOutput) {
			return fmt.Errorf("netlist: stage %d: %q is not a designated output of net %q", i+1, s.FromOutput, s.FromNet)
		}
	}
	for i, r := range d.Requires {
		net := d.Net(r.Net)
		if net == nil {
			return fmt.Errorf("netlist: require %d references unknown net %q", i+1, r.Net)
		}
		if !hasOutput(net.Tree, r.Output) {
			return fmt.Errorf("netlist: require %d: %q is not a designated output of net %q", i+1, r.Output, r.Net)
		}
	}
	return nil
}

func hasOutput(t *rctree.Tree, name string) bool {
	id, ok := t.Lookup(name)
	if !ok {
		return false
	}
	for _, o := range t.Outputs() {
		if o == id {
			return true
		}
	}
	return false
}

// WriteDesign renders a design back into deck form; the result round-trips
// through ParseDesign. Nets keep declaration order; stages and requires are
// emitted sorted for a canonical form.
func WriteDesign(d *Design) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "* design: %d nets, %d stages\n", len(d.Nets), len(d.Stages))
	if d.Name != "" {
		fmt.Fprintf(&sb, ".design %s\n", d.Name)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(&sb, ".net %s\n", n.Name)
		sb.WriteString(Write(n.Tree))
		sb.WriteString(".endnet\n")
	}
	for _, s := range canonicalStages(d.Stages) {
		fmt.Fprintf(&sb, ".stage %s %s %s %s\n", s.FromNet, s.FromOutput, s.ToNet, fmtVal(s.Delay))
	}
	requires := append([]Require(nil), d.Requires...)
	sort.SliceStable(requires, func(i, j int) bool {
		if requires[i].Net != requires[j].Net {
			return requires[i].Net < requires[j].Net
		}
		return requires[i].Output < requires[j].Output
	})
	for _, r := range requires {
		fmt.Fprintf(&sb, ".require %s %s %s\n", r.Net, r.Output, fmtVal(r.Time))
	}
	sb.WriteString(".end\n")
	return sb.String()
}

// canonicalStages returns the stages in the deterministic order WriteDesign
// emits them.
func canonicalStages(stages []Stage) []Stage {
	out := append([]Stage(nil), stages...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FromNet != out[j].FromNet {
			return out[i].FromNet < out[j].FromNet
		}
		if out[i].FromOutput != out[j].FromOutput {
			return out[i].FromOutput < out[j].FromOutput
		}
		return out[i].ToNet < out[j].ToNet
	})
	return out
}
