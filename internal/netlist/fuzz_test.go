package netlist

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rctree"
)

// deepChainDeck builds a single-net deck whose tree is one long RC ladder —
// the degenerate topology that maximizes path length (and once overflowed
// recursive walkers).
func deepChainDeck(n int) string {
	var b strings.Builder
	prev := "in"
	for i := 1; i <= n; i++ {
		cur := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "R%d %s %s 1\nC%d %s 0 0.5\n", i, prev, cur, i, cur)
		prev = cur
	}
	fmt.Fprintf(&b, ".output %s\n", prev)
	return b.String()
}

// wideFanoutDeck builds a single-net deck whose tree is one star — the
// degenerate topology that maximizes a node's child count.
func wideFanoutDeck(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "R%d in n%d 2\nC%d n%d 0 1\n", i, i, i, i)
		if i%7 == 0 {
			fmt.Fprintf(&b, ".output n%d\n", i)
		}
	}
	return b.String()
}

// deepStageChainDesign builds a design-level chain: n nets staged head to
// tail, so the timing graph has n levels of one net each.
func deepStageChainDesign(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ".net s%d\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n", i)
	}
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, ".stage s%d o s%d 1.5\n", i-1, i)
	}
	return b.String()
}

// wideStageFanoutDesign builds a design-level star: one driver net staging
// into n sinks, so one net's fanout cone covers the whole graph.
func wideStageFanoutDesign(n int) string {
	var b strings.Builder
	b.WriteString(".net drv\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ".net k%d\nR1 in o 2\nC1 o 0 2\n.output o\n.endnet\n.stage drv o k%d 1\n", i, i)
	}
	return b.String()
}

// FuzzParse asserts the parser never panics and that any deck it accepts
// survives a Write→Parse round trip with characteristic times intact.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig7Deck,
		"",
		"* comment only\n",
		".input a\nR1 a b 1\nC1 b 0 2p\n.output b\n",
		"U1 in far 3k 4u\nC9 far 0 1n\n",
		"R1 in x 1\nR2 x y 2\nR3 y in 3", // loop
		".input\n",
		"C1 0 0 5",
		"R1 in in 5",
		"X? ???",
		".output ghost\nR1 in a 1\nC1 a 0 1",
		deepChainDeck(80),
		wideFanoutDeck(60),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		deck := Write(tree)
		back, err := Parse(deck)
		if err != nil {
			t.Fatalf("accepted deck failed round trip: %v\noriginal:\n%s\nwritten:\n%s", err, src, deck)
		}
		if back.NumNodes() != tree.NumNodes() {
			t.Fatalf("round trip changed node count %d -> %d", tree.NumNodes(), back.NumNodes())
		}
		for _, e := range tree.Outputs() {
			want, err := tree.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			id, ok := back.Lookup(tree.Name(e))
			if !ok {
				t.Fatalf("output %q lost", tree.Name(e))
			}
			got, err := back.CharacteristicTimes(id)
			if err != nil {
				t.Fatal(err)
			}
			if !floatsClose(got.TD, want.TD) || !floatsClose(got.TP, want.TP) {
				t.Fatalf("times changed: %+v -> %+v", want, got)
			}
		}
	})
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// FuzzParseDesign asserts the multi-net parser never panics and that any
// design it accepts survives a WriteDesign→ParseDesign round trip: same
// shape, same stages and requires, and per-net characteristic times intact.
func FuzzParseDesign(f *testing.F) {
	seeds := []string{
		"",
		".net a\nR1 in o 1\nC1 o 0 2\n.output o\n.endnet\n",
		".design d\n.net a\n" + fig7Deck + "\n.endnet\n.net b\nU1 in far 3 4\nC1 far 0 1\n.output far\n.endnet\n.stage a n2 b 2.5\n.require b far 100\n.end\n",
		".net a\n.endnet\n",
		".net a\nR1 in o 1\nC1 o 0 1\n.output o\n.endnet\n.stage a o a 0\n", // self-loop stage: parses, cycles are the graph's problem
		".stage x y z 1\n",
		".require x y 1\n",
		".net loop\nR1 in x 1\nR2 x in 3\n.endnet\n",
		".design\n",
		// Degenerate topologies: deep chains and wide fanout, at both the
		// tree level (inside one net) and the stage-graph level.
		".net deep\n" + deepChainDeck(80) + ".endnet\n",
		".net wide\n" + wideFanoutDeck(60) + ".endnet\n",
		deepStageChainDesign(24),
		wideStageFanoutDesign(24),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseDesign(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		deck := WriteDesign(d)
		back, err := ParseDesign(deck)
		if err != nil {
			t.Fatalf("accepted design failed round trip: %v\noriginal:\n%s\nwritten:\n%s", err, src, deck)
		}
		if back.Name != d.Name {
			t.Fatalf("round trip changed name %q -> %q", d.Name, back.Name)
		}
		if len(back.Nets) != len(d.Nets) || len(back.Stages) != len(d.Stages) || len(back.Requires) != len(d.Requires) {
			t.Fatalf("round trip changed shape:\n%s\nvs\n%s", deck, WriteDesign(back))
		}
		// WriteDesign emits stages in canonical order, so the reparse must
		// reproduce that ordering exactly.
		want := canonicalStages(d.Stages)
		for i := range back.Stages {
			if back.Stages[i] != want[i] {
				t.Fatalf("stage %d changed: %+v -> %+v", i, want[i], back.Stages[i])
			}
		}
		for i := range d.Nets {
			if back.Nets[i].Name != d.Nets[i].Name {
				t.Fatalf("net %d renamed %q -> %q", i, d.Nets[i].Name, back.Nets[i].Name)
			}
			tree, bt := d.Nets[i].Tree, back.Nets[i].Tree
			if bt.NumNodes() != tree.NumNodes() {
				t.Fatalf("net %q node count %d -> %d", d.Nets[i].Name, tree.NumNodes(), bt.NumNodes())
			}
			for _, e := range tree.Outputs() {
				want, err := tree.CharacteristicTimes(e)
				if err != nil {
					t.Fatal(err)
				}
				id, ok := bt.Lookup(tree.Name(e))
				if !ok {
					t.Fatalf("net %q output %q lost", d.Nets[i].Name, tree.Name(e))
				}
				got, err := bt.CharacteristicTimes(id)
				if err != nil {
					t.Fatal(err)
				}
				if !floatsClose(got.TD, want.TD) || !floatsClose(got.TP, want.TP) {
					t.Fatalf("net %q times changed: %+v -> %+v", d.Nets[i].Name, want, got)
				}
			}
		}
	})
}

// FuzzArenaRoundTrip pins the flat-arena encoding against the parser's full
// input space: for every tree the parser accepts, arena build →
// materialize → rebuild must be lossless and idempotent, with characteristic
// times preserved exactly (the arena pass and the tree pass share iteration
// order, so the sums match bit for bit).
func FuzzArenaRoundTrip(f *testing.F) {
	seeds := []string{
		fig7Deck,
		".input a\nR1 a b 1\nC1 b 0 2p\n.output b\n",
		"U1 in far 3k 4u\nC9 far 0 1n\n",
		deepChainDeck(80),
		wideFanoutDeck(60),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := Parse(src)
		if err != nil {
			return
		}
		a := rctree.NewArena(tree)
		back, err := a.Materialize()
		if err != nil {
			t.Fatalf("materialize failed for accepted tree: %v\ndeck:\n%s", err, src)
		}
		a2 := rctree.NewArena(back)
		if !reflect.DeepEqual(a, a2) {
			t.Fatalf("arena round trip not idempotent:\n%s", src)
		}
		var s rctree.Scratch
		for _, e := range tree.Outputs() {
			want, err := tree.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.TimesInto(int32(e), &s)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("arena times diverged at output %d: %+v vs %+v\ndeck:\n%s", e, got, want, src)
			}
		}
	})
}

// FuzzParseValue: no panics, and suffix math stays finite for finite input.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1", "1.5k", "2meg", "-3u", "4n", "x", "1e309", "0.1f", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			t.Fatalf("ParseValue(%q) = NaN without error", s)
		}
	})
}
