package netlist

import (
	"math"
	"testing"
)

// FuzzParse asserts the parser never panics and that any deck it accepts
// survives a Write→Parse round trip with characteristic times intact.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig7Deck,
		"",
		"* comment only\n",
		".input a\nR1 a b 1\nC1 b 0 2p\n.output b\n",
		"U1 in far 3k 4u\nC9 far 0 1n\n",
		"R1 in x 1\nR2 x y 2\nR3 y in 3", // loop
		".input\n",
		"C1 0 0 5",
		"R1 in in 5",
		"X? ???",
		".output ghost\nR1 in a 1\nC1 a 0 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		deck := Write(tree)
		back, err := Parse(deck)
		if err != nil {
			t.Fatalf("accepted deck failed round trip: %v\noriginal:\n%s\nwritten:\n%s", err, src, deck)
		}
		if back.NumNodes() != tree.NumNodes() {
			t.Fatalf("round trip changed node count %d -> %d", tree.NumNodes(), back.NumNodes())
		}
		for _, e := range tree.Outputs() {
			want, err := tree.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			id, ok := back.Lookup(tree.Name(e))
			if !ok {
				t.Fatalf("output %q lost", tree.Name(e))
			}
			got, err := back.CharacteristicTimes(id)
			if err != nil {
				t.Fatal(err)
			}
			if !floatsClose(got.TD, want.TD) || !floatsClose(got.TP, want.TP) {
				t.Fatalf("times changed: %+v -> %+v", want, got)
			}
		}
	})
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// FuzzParseValue: no panics, and suffix math stays finite for finite input.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1", "1.5k", "2meg", "-3u", "4n", "x", "1e309", "0.1f", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			t.Fatalf("ParseValue(%q) = NaN without error", s)
		}
	})
}
