package netlist

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/rctree"
)

// Canonical renders a tree as a deck that depends only on the network the
// tree represents — element values, topology and output positions — not on
// node names, sibling order or construction history. Two trees produce the
// same canonical deck exactly when they describe the same analysis problem,
// which makes the string (or a hash of it) a sound memoization key.
//
// Nodes are renamed n1, n2, ... in a depth-first order in which siblings are
// visited by ascending canonical encoding of their subtrees (ties broken
// arbitrarily — identical subtrees are interchangeable, outputs included,
// because the encoding covers element values and output markers). The input
// is always named "in". The result parses back through Parse into an
// equivalent tree.
//
// The second return value maps each NodeID of t to its position in the
// canonical visit order (root is 0). Because equal canonical decks describe
// equal networks, a node's canonical position determines its characteristic
// times: results cached under the deck's hash can be read back for any tree
// with the same deck via this mapping.
func Canonical(t *rctree.Tree) (string, []int) {
	enc := make([]string, t.NumNodes())
	// Nodes are stored parent-before-child, so a reverse walk sees every
	// child's encoding before its parent needs it.
	for i := t.NumNodes() - 1; i >= 0; i-- {
		id := rctree.NodeID(i)
		children := t.Children(id)
		sub := make([]string, 0, len(children))
		for _, c := range children {
			sub = append(sub, enc[c])
		}
		sort.Strings(sub)
		kind, r, c := t.Edge(id)
		var sb strings.Builder
		fmt.Fprintf(&sb, "(%d;%s;%s;%s;%t", int(kind), fmtVal(r), fmtVal(c),
			fmtVal(t.NodeCap(id)), isCanonOutput(t, id))
		for _, s := range sub {
			sb.WriteByte('|')
			sb.WriteString(s)
		}
		sb.WriteByte(')')
		enc[i] = sb.String()
	}

	// Render the deck in the canonical traversal order.
	var sb strings.Builder
	sb.WriteString(".input in\n")
	names := make([]string, t.NumNodes())
	names[rctree.Root] = "in"
	canon := make([]int, t.NumNodes())
	rCount, uCount, cCount := 0, 0, 0
	next := 0
	var outputs []string
	var visit func(id rctree.NodeID)
	visit = func(id rctree.NodeID) {
		if id != rctree.Root {
			next++
			names[id] = fmt.Sprintf("n%d", next)
			canon[id] = next
			kind, r, c := t.Edge(id)
			switch kind {
			case rctree.EdgeResistor:
				rCount++
				fmt.Fprintf(&sb, "R%d %s %s %s\n", rCount, names[t.Parent(id)], names[id], fmtVal(r))
			case rctree.EdgeLine:
				uCount++
				fmt.Fprintf(&sb, "U%d %s %s %s %s\n", uCount, names[t.Parent(id)], names[id], fmtVal(r), fmtVal(c))
			}
		}
		if nc := t.NodeCap(id); nc > 0 {
			cCount++
			fmt.Fprintf(&sb, "C%d %s 0 %s\n", cCount, names[id], fmtVal(nc))
		}
		if isCanonOutput(t, id) {
			outputs = append(outputs, names[id])
		}
		children := append([]rctree.NodeID(nil), t.Children(id)...)
		sort.Slice(children, func(a, b int) bool { return enc[children[a]] < enc[children[b]] })
		for _, c := range children {
			visit(c)
		}
	}
	visit(rctree.Root)
	for _, o := range outputs {
		fmt.Fprintf(&sb, ".output %s\n", o)
	}
	sb.WriteString(".end\n")
	return sb.String(), canon
}

func isCanonOutput(t *rctree.Tree, id rctree.NodeID) bool {
	for _, o := range t.Outputs() {
		if o == id {
			return true
		}
	}
	return false
}

// digest128 accumulates a 128-bit content digest using the FNV-128a
// offset/prime recurrence applied to 64-bit words instead of bytes (8x
// fewer 128-bit multiplies than hash/fnv's byte loop). It is not the FNV
// standard, just FNV-shaped; collisions are negligible for the
// non-adversarial inputs of a memoization cache.
type digest128 struct{ hi, lo uint64 }

const (
	fnvOffset128Lo = 0x62b821756295c58d
	fnvOffset128Hi = 0x6c62272e07bb0142
	// The FNV-128 prime 2^88 + 2^8 + 0x3b, split as hi·2^64 + lo with
	// hi = 1<<24 (so multiplying by hi is a 24-bit shift).
	fnvPrime128Lo    = 0x13b
	fnvPrime128Shift = 24
)

func newDigest128() digest128 {
	return digest128{hi: fnvOffset128Hi, lo: fnvOffset128Lo}
}

// word folds one 64-bit word into the digest: XOR into the low half, then
// multiply the 128-bit state by the FNV prime modulo 2^128.
func (d *digest128) word(w uint64) {
	d.lo ^= w
	hi, lo := bits.Mul64(d.lo, fnvPrime128Lo)
	hi += d.hi*fnvPrime128Lo + d.lo<<fnvPrime128Shift
	d.hi, d.lo = hi, lo
}

func (d digest128) less(o digest128) bool {
	if d.hi != o.hi {
		return d.hi < o.hi
	}
	return d.lo < o.lo
}

// CanonicalHash is the hot-path form of Canonical: the same equivalence
// classes (two trees share a key exactly when they share a canonical deck)
// without materializing the deck. Each node gets a Merkle-style 128-bit
// digest of its element values, output marker and sorted child digests, so
// the whole computation is O(n log n) with a handful of fixed-size
// allocations — cheap enough to run per job in front of a memoization
// cache.
//
// The returned mapping assigns each NodeID its position in the depth-first
// order that visits siblings by ascending digest. Sibling ties carry equal
// digests only for interchangeable subtrees (or a hash collision), so any
// tie order yields the same characteristic times per canonical position.
func CanonicalHash(t *rctree.Tree) (key string, canon []int) {
	n := t.NumNodes()
	digests := make([]digest128, n)
	outputs := make([]bool, n)
	for _, o := range t.Outputs() {
		outputs[o] = true
	}

	// Flatten the adjacency into one backing array of per-parent segments,
	// so the per-node digest sorts work in place without allocating.
	start := make([]int32, n+1)
	for i := 1; i < n; i++ {
		start[int(t.Parent(rctree.NodeID(i)))+1]++
	}
	for p := 0; p < n; p++ {
		start[p+1] += start[p]
	}
	kids := make([]rctree.NodeID, n-1)
	fill := make([]int32, n)
	copy(fill, start[:n])
	for i := 1; i < n; i++ {
		p := t.Parent(rctree.NodeID(i))
		kids[fill[p]] = rctree.NodeID(i)
		fill[p]++
	}

	// Nodes are stored parent-before-child; walk in reverse so child
	// digests exist before their parent hashes them.
	for i := n - 1; i >= 0; i-- {
		id := rctree.NodeID(i)
		kind, r, c := t.Edge(id)
		// Insertion sort: fanout is small in practice, and the sorted
		// segment is reused by the canonical DFS below.
		seg := kids[start[i]:start[i+1]]
		for a := 1; a < len(seg); a++ {
			for b := a; b > 0 && digests[seg[b]].less(digests[seg[b-1]]); b-- {
				seg[b], seg[b-1] = seg[b-1], seg[b]
			}
		}
		h := newDigest128()
		flags := uint64(kind)
		if outputs[i] {
			flags |= 1 << 8
		}
		h.word(flags)
		h.word(math.Float64bits(r))
		h.word(math.Float64bits(c))
		h.word(math.Float64bits(t.NodeCap(id)))
		for _, k := range seg {
			h.word(digests[k].hi)
			h.word(digests[k].lo)
		}
		digests[i] = h
	}

	// Depth-first assignment over the digest-sorted segments.
	canon = make([]int, n)
	stack := make([]rctree.NodeID, 1, n)
	stack[0] = rctree.Root
	next := 0
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		canon[id] = next
		next++
		seg := kids[start[id]:start[id+1]]
		for k := len(seg) - 1; k >= 0; k-- { // reversed: leftmost pops first
			stack = append(stack, seg[k])
		}
	}
	root := digests[rctree.Root]
	return fmt.Sprintf("%016x%016x", root.hi, root.lo), canon
}
