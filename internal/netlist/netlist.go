// Package netlist reads and writes RC trees in a small SPICE-like deck
// format, so networks can live in files rather than code:
//
//   - Figure 7 of the paper
//     .input in
//     R1 in  n1 15
//     C1 n1  0  2
//     R2 n1  b  8
//     C2 b   0  7
//     U1 n1  n2 3 4    ; uniform RC line: R=3, C=4
//     C3 n2  0  9
//     .output n2
//
// Cards: Rxxx a b value — lumped resistor; Cxxx a 0 value — capacitor to
// ground; Uxxx a b Rvalue Cvalue — distributed uniform RC line. Values
// accept SPICE engineering suffixes (k, meg, m, u, n, p, f). Comments start
// with '*' (whole line) or ';' (trailing). Elements may appear in any order;
// the parser orients the tree from the input node.
package netlist

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rctree"
)

// edge is a two-terminal element between tree nodes, pre-orientation.
type edge struct {
	name   string
	a, b   string
	r, c   float64
	isLine bool
	line   int
}

type deck struct {
	edges   []edge
	caps    map[string]float64 // node -> summed capacitance to ground
	capLine map[string]int
	input   string
	outputs []string
	seen    map[string]int // element name -> source line
}

// Parse reads a deck and returns the RC tree it describes.
func Parse(src string) (*rctree.Tree, error) {
	d := &deck{caps: map[string]float64{}, capLine: map[string]int{}, seen: map[string]int{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if err := d.card(line, lineNo+1); err != nil {
			return nil, err
		}
	}
	return d.build()
}

func (d *deck) card(line string, no int) error {
	fields := strings.Fields(line)
	head := strings.ToUpper(fields[0])
	switch {
	case head == ".INPUT":
		if len(fields) != 2 {
			return fmt.Errorf("netlist: line %d: .input takes exactly one node", no)
		}
		if d.input != "" {
			return fmt.Errorf("netlist: line %d: duplicate .input (already %q)", no, d.input)
		}
		d.input = fields[1]
		return nil
	case head == ".OUTPUT":
		if len(fields) < 2 {
			return fmt.Errorf("netlist: line %d: .output needs at least one node", no)
		}
		d.outputs = append(d.outputs, fields[1:]...)
		return nil
	case head == ".END":
		return nil
	case strings.HasPrefix(head, "R"):
		if len(fields) != 4 {
			return fmt.Errorf("netlist: line %d: resistor card needs 'Rname a b value'", no)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("netlist: line %d: %w", no, err)
		}
		return d.addEdge(edge{name: fields[0], a: fields[1], b: fields[2], r: v, line: no})
	case strings.HasPrefix(head, "C"):
		if len(fields) != 4 {
			return fmt.Errorf("netlist: line %d: capacitor card needs 'Cname node 0 value'", no)
		}
		node, gnd := fields[1], fields[2]
		if isGround(node) {
			node, gnd = gnd, node
		}
		if !isGround(gnd) {
			return fmt.Errorf("netlist: line %d: capacitor %s must connect to ground (node 0)", no, fields[0])
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("netlist: line %d: %w", no, err)
		}
		if v < 0 {
			return fmt.Errorf("netlist: line %d: negative capacitance %g", no, v)
		}
		if prev, dup := d.seen[strings.ToUpper(fields[0])]; dup {
			return fmt.Errorf("netlist: line %d: element %s already defined at line %d", no, fields[0], prev)
		}
		d.seen[strings.ToUpper(fields[0])] = no
		d.caps[node] += v
		if _, ok := d.capLine[node]; !ok {
			d.capLine[node] = no
		}
		return nil
	case strings.HasPrefix(head, "U"):
		if len(fields) != 5 {
			return fmt.Errorf("netlist: line %d: line card needs 'Uname a b Rvalue Cvalue'", no)
		}
		r, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("netlist: line %d: %w", no, err)
		}
		c, err := ParseValue(fields[4])
		if err != nil {
			return fmt.Errorf("netlist: line %d: %w", no, err)
		}
		return d.addEdge(edge{name: fields[0], a: fields[1], b: fields[2], r: r, c: c, isLine: true, line: no})
	}
	return fmt.Errorf("netlist: line %d: unrecognized card %q", no, fields[0])
}

func (d *deck) addEdge(e edge) error {
	key := strings.ToUpper(e.name)
	if prev, dup := d.seen[key]; dup {
		return fmt.Errorf("netlist: line %d: element %s already defined at line %d", e.line, e.name, prev)
	}
	d.seen[key] = e.line
	if isGround(e.a) || isGround(e.b) {
		return fmt.Errorf("netlist: line %d: element %s connects to ground; RC trees have no resistor to ground", e.line, e.name)
	}
	if e.a == e.b {
		return fmt.Errorf("netlist: line %d: element %s is a self-loop on %q", e.line, e.name, e.a)
	}
	if e.r < 0 || e.c < 0 {
		return fmt.Errorf("netlist: line %d: element %s has a negative value", e.line, e.name)
	}
	d.edges = append(d.edges, e)
	return nil
}

func isGround(node string) bool {
	return node == "0" || strings.EqualFold(node, "gnd")
}

// build orients the element graph from the input node and assembles the
// tree in breadth-first order (the builder requires parent-before-child).
func (d *deck) build() (*rctree.Tree, error) {
	input := d.input
	if input == "" {
		input = "in"
	}
	if len(d.edges) == 0 {
		// A deck can legitimately degenerate to capacitance at the driven
		// input alone (e.g. a zero-resistance U card folded into its
		// parent); the response is then an immediate step.
		return d.buildCapacitorOnly(input)
	}
	adj := map[string][]int{}
	nodes := map[string]bool{input: true}
	for i, e := range d.edges {
		adj[e.a] = append(adj[e.a], i)
		adj[e.b] = append(adj[e.b], i)
		nodes[e.a] = true
		nodes[e.b] = true
	}
	if len(adj[input]) == 0 {
		return nil, fmt.Errorf("netlist: input node %q touches no element", input)
	}

	b := rctree.NewBuilder(input)
	ids := map[string]rctree.NodeID{input: rctree.Root}
	usedEdge := make([]bool, len(d.edges))
	queue := []string{input}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ei := range adj[cur] {
			if usedEdge[ei] {
				continue
			}
			e := d.edges[ei]
			usedEdge[ei] = true
			far := e.b
			if far == cur {
				far = e.a
			}
			if _, visited := ids[far]; visited {
				return nil, fmt.Errorf("netlist: line %d: element %s closes a resistive loop at node %q; the network is not a tree", e.line, e.name, far)
			}
			var id rctree.NodeID
			if e.isLine {
				id = b.Line(ids[cur], far, e.r, e.c)
			} else {
				id = b.Resistor(ids[cur], far, e.r)
			}
			ids[far] = id
			queue = append(queue, far)
		}
	}
	for i, used := range usedEdge {
		if !used {
			e := d.edges[i]
			return nil, fmt.Errorf("netlist: line %d: element %s (%s-%s) is disconnected from the input", e.line, e.name, e.a, e.b)
		}
	}
	for node, c := range d.caps {
		id, ok := ids[node]
		if !ok {
			return nil, fmt.Errorf("netlist: line %d: capacitor node %q is not connected to the tree", d.capLine[node], node)
		}
		b.Capacitor(id, c)
	}
	for _, out := range d.outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("netlist: .output node %q does not exist", out)
		}
		b.Output(id)
	}
	return b.Build()
}

// buildCapacitorOnly handles decks whose only elements are capacitors: they
// must all sit at the input node (anything else is floating), and the
// result is the single-node tree.
func (d *deck) buildCapacitorOnly(input string) (*rctree.Tree, error) {
	if len(d.caps) == 0 {
		return nil, fmt.Errorf("netlist: deck has no elements")
	}
	b := rctree.NewBuilder(input)
	for node, c := range d.caps {
		if node != input {
			return nil, fmt.Errorf("netlist: line %d: capacitor node %q is not connected to the tree", d.capLine[node], node)
		}
		b.Capacitor(rctree.Root, c)
	}
	for _, out := range d.outputs {
		if out != input {
			return nil, fmt.Errorf("netlist: .output node %q does not exist", out)
		}
		b.Output(rctree.Root)
	}
	return b.Build()
}

// ParseValue parses a SPICE-style number with optional engineering suffix:
// f=1e-15, p=1e-12, n=1e-9, u=1e-6, m=1e-3, k=1e3, meg=1e6, g=1e9.
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(low, "meg"):
		mult, low = 1e6, strings.TrimSuffix(low, "meg")
	case strings.HasSuffix(low, "f"):
		mult, low = 1e-15, strings.TrimSuffix(low, "f")
	case strings.HasSuffix(low, "p"):
		mult, low = 1e-12, strings.TrimSuffix(low, "p")
	case strings.HasSuffix(low, "n"):
		mult, low = 1e-9, strings.TrimSuffix(low, "n")
	case strings.HasSuffix(low, "u"):
		mult, low = 1e-6, strings.TrimSuffix(low, "u")
	case strings.HasSuffix(low, "m"):
		mult, low = 1e-3, strings.TrimSuffix(low, "m")
	case strings.HasSuffix(low, "k"):
		mult, low = 1e3, strings.TrimSuffix(low, "k")
	case strings.HasSuffix(low, "g"):
		mult, low = 1e9, strings.TrimSuffix(low, "g")
	}
	v, err := strconv.ParseFloat(low, 64)
	if err != nil {
		return 0, fmt.Errorf("netlist: bad value %q", s)
	}
	v *= mult
	// ParseFloat accepts "infinity" and huge exponents; a non-finite element
	// value can never round-trip through Write, so reject it here.
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("netlist: non-finite value %q", s)
	}
	return v, nil
}

// Write renders a tree back into deck form. Values print in plain notation;
// the result round-trips through Parse.
func Write(t *rctree.Tree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "* RC tree: %d nodes\n", t.NumNodes())
	fmt.Fprintf(&sb, ".input %s\n", t.Name(rctree.Root))
	rCount, uCount, cCount := 0, 0, 0
	t.Walk(func(id rctree.NodeID) {
		if id == rctree.Root {
			if c := t.NodeCap(id); c > 0 {
				cCount++
				fmt.Fprintf(&sb, "C%d %s 0 %s\n", cCount, t.Name(id), fmtVal(c))
			}
			return
		}
		kind, r, c := t.Edge(id)
		parent := t.Name(t.Parent(id))
		switch kind {
		case rctree.EdgeResistor:
			rCount++
			fmt.Fprintf(&sb, "R%d %s %s %s\n", rCount, parent, t.Name(id), fmtVal(r))
		case rctree.EdgeLine:
			uCount++
			fmt.Fprintf(&sb, "U%d %s %s %s %s\n", uCount, parent, t.Name(id), fmtVal(r), fmtVal(c))
		}
		if nc := t.NodeCap(id); nc > 0 {
			cCount++
			fmt.Fprintf(&sb, "C%d %s 0 %s\n", cCount, t.Name(id), fmtVal(nc))
		}
	})
	outs := make([]string, 0, len(t.Outputs()))
	for _, o := range t.Outputs() {
		outs = append(outs, t.Name(o))
	}
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Fprintf(&sb, ".output %s\n", o)
	}
	sb.WriteString(".end\n")
	return sb.String()
}

func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
