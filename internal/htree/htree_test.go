package htree

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sta"
)

func paperishConfig(levels int) Config {
	// §V-flavored numbers: superbuffer driver, poly trunk (ohms / pF).
	return Config{
		Levels: levels,
		TrunkR: 720, TrunkC: 0.044,
		DriverR: 380, DriverC: 0.04,
		LeafC: 0.013,
	}
}

func TestBuildShape(t *testing.T) {
	for _, levels := range []int{0, 1, 3} {
		tr, err := Build(paperishConfig(levels))
		if err != nil {
			t.Fatalf("levels %d: %v", levels, err)
		}
		if got, want := len(tr.Outputs()), Leaves(levels); got != want {
			t.Errorf("levels %d: %d outputs, want %d", levels, got, want)
		}
	}
	if Leaves(4) != 16 {
		t.Errorf("Leaves(4) = %d", Leaves(4))
	}
}

// TestSymmetry: every leaf of a symmetric clock tree sees identical
// characteristic times — a strong differential test of the timing engine
// across 2^k structurally distinct paths.
func TestSymmetry(t *testing.T) {
	tr, err := Build(paperishConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	first := results[0].Times
	for _, r := range results[1:] {
		if math.Abs(r.Times.TD-first.TD) > 1e-9*first.TD ||
			math.Abs(r.Times.TR-first.TR) > 1e-9*first.TR ||
			math.Abs(r.Times.Ree-first.Ree) > 1e-9*first.Ree {
			t.Fatalf("asymmetric leaf %q: %+v vs %+v", r.Name, r.Times, first)
		}
	}
}

// TestSkewBounds: symmetric leaves have a zero-centered skew interval, and
// the certified worst skew equals the single-leaf uncertainty window.
func TestSkewBounds(t *testing.T) {
	tr, err := Build(paperishConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sta.Skew(results[0], results[1], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.Min+sb.Max) > 1e-9*(1+math.Abs(sb.Max)) {
		t.Errorf("symmetric skew interval not centered: [%g, %g]", sb.Min, sb.Max)
	}
	window := results[0].Bounds.TMax(0.5) - results[0].Bounds.TMin(0.5)
	if math.Abs(sb.Max-window) > 1e-9*(1+window) {
		t.Errorf("skew max %g != uncertainty window %g", sb.Max, window)
	}
	worst, err := sta.WorstSkew(results, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-window) > 1e-9*(1+window) {
		t.Errorf("WorstSkew %g != window %g", worst, window)
	}
	// True skew of the symmetric tree is exactly zero: verify by exact
	// simulation that both leaves cross together.
	lumped, mapping, err := sim.Discretize(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := ckt.Index(mapping[results[0].Output])
	i1, _ := ckt.Index(mapping[results[1].Output])
	c0 := resp.CrossingTime(i0, 0.5, 1e-12)
	c1 := resp.CrossingTime(i1, 0.5, 1e-12)
	if math.Abs(c0-c1) > 1e-6*(1+c0) {
		t.Errorf("exact crossings differ on symmetric tree: %g vs %g", c0, c1)
	}
	// And the exact skew (0) sits inside the certified interval.
	if 0 < sb.Min || 0 > sb.Max {
		t.Error("true skew outside certified interval")
	}
}

// TestAsymmetricSkewDetected: unbalancing one leaf load shifts the skew
// interval off center.
func TestAsymmetricSkewDetected(t *testing.T) {
	cfg := paperishConfig(2)
	tr, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with an extra load on the first leaf via the sta-level trick:
	// analyze, then compare against a tree with doubled leaf load elsewhere.
	// Simpler: construct a second tree with different trunk halves is not
	// expressible via Config, so perturb through core directly.
	results, err := core.AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate asymmetry by comparing a leaf against itself with a slower
	// bound evaluator (scaled times — what an added load would do).
	slowTimes := results[0].Times
	slowTimes.TP *= 1.3
	slowTimes.TD *= 1.3
	slowTimes.TR *= 1.3
	slow, err := core.New(slowTimes)
	if err != nil {
		t.Fatal(err)
	}
	slowRes := core.Result{Output: results[0].Output, Name: "slow", Times: slowTimes, Bounds: slow}
	sb, err := sta.Skew(slowRes, results[1], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Min+sb.Max <= 0 {
		t.Errorf("slowed leaf should shift skew interval positive: [%g, %g]", sb.Min, sb.Max)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Levels: -1, TrunkR: 1, DriverR: 1},
		{Levels: 9, TrunkR: 1, DriverR: 1},
		{Levels: 1, TrunkR: 0, DriverR: 1},
		{Levels: 1, TrunkR: 1, DriverR: 0},
		{Levels: 1, TrunkR: 1, DriverR: 1, LeafC: -1},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := sta.Skew(core.Result{}, core.Result{}, 0); err == nil {
		t.Error("skew threshold 0 accepted")
	}
	if _, err := sta.WorstSkew(nil, 0.5); err == nil {
		t.Error("WorstSkew on empty accepted")
	}
}

// TestDeeperTreesAreSlower: adding levels adds wire and load, so the leaf
// delay bound grows monotonically with depth.
func TestDeeperTreesAreSlower(t *testing.T) {
	var prev float64
	for levels := 0; levels <= 5; levels++ {
		tr, err := Build(paperishConfig(levels))
		if err != nil {
			t.Fatal(err)
		}
		results, err := core.AnalyzeTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		tmax := results[0].Bounds.TMax(0.5)
		if tmax <= prev {
			t.Errorf("levels %d: TMax %g not greater than previous %g", levels, tmax, prev)
		}
		prev = tmax
	}
}
