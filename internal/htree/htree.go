// Package htree generates H-tree clock-distribution networks — the canonical
// symmetric RC-tree workload. A level-k H-tree fans one driver out to 4^k
// leaf loads through a binary hierarchy of wire segments whose length halves
// every two levels, exactly the structure used to distribute clocks on the
// VLSI chips the paper targets.
//
// Because the topology is perfectly symmetric, every leaf must see identical
// characteristic times; the test suite uses that as a differential check on
// the timing engine, and the sta.SkewBound of any leaf pair must collapse
// to the envelope width.
package htree

import (
	"fmt"

	"repro/internal/rctree"
)

// Config describes an H-tree.
type Config struct {
	// Levels is the number of binary splits; the tree drives 2^Levels leaves.
	Levels int
	// TrunkR and TrunkC are the electrical totals of the top-level trunk
	// segment; each deeper segment halves in length (half R, half C).
	TrunkR, TrunkC float64
	// DriverR and DriverC model the clock buffer (series R, output C).
	DriverR, DriverC float64
	// LeafC is the load at each leaf (latch/buffer input).
	LeafC float64
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	if c.Levels < 0 || c.Levels > 8 {
		return fmt.Errorf("htree: levels must be in [0,8], got %d (2^%d leaves)", c.Levels, c.Levels)
	}
	if c.TrunkR <= 0 || c.TrunkC < 0 {
		return fmt.Errorf("htree: trunk needs R > 0, C >= 0")
	}
	if c.DriverR <= 0 || c.DriverC < 0 || c.LeafC < 0 {
		return fmt.Errorf("htree: driver needs R > 0; capacitances must be nonnegative")
	}
	return nil
}

// Build constructs the H-tree; every leaf is a designated output.
func Build(cfg Config) (*rctree.Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := rctree.NewBuilder("clk")
	drv := b.Resistor(rctree.Root, "buf", cfg.DriverR)
	if cfg.DriverC > 0 {
		b.Capacitor(drv, cfg.DriverC)
	}
	var grow func(at rctree.NodeID, level int, r, c float64, name string)
	grow = func(at rctree.NodeID, level int, r, c float64, name string) {
		far := b.Line(at, name, r, c)
		if level == cfg.Levels {
			if cfg.LeafC > 0 {
				b.Capacitor(far, cfg.LeafC)
			}
			b.Output(far)
			return
		}
		// Two child branches per segment (the H splits in two at each end),
		// each half the electrical length.
		grow(far, level+1, r/2, c/2, name+"a")
		grow(far, level+1, r/2, c/2, name+"b")
	}
	grow(drv, 0, cfg.TrunkR, cfg.TrunkC, "h")
	return b.Build()
}

// Leaves returns the number of leaf loads of a level-k H-tree: 2^k branches
// after k splits of the binary recursion.
func Leaves(levels int) int {
	return 1 << levels
}
