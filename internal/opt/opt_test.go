package opt

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mos"
	"repro/internal/rctree"
	"repro/internal/sim"
)

// polyLine is the §V interconnect: 7.5 Ω and ~4.6e-4 pF per micron
// (180 Ω / 0.011 pF per 24 µm). Units: ohms, pF, µm; times in ps.
var polyLine = Line{RPerLen: 7.5, CPerLen: 4.6e-4}

func TestMaxParamBisection(t *testing.T) {
	// Largest p with p^2 <= 10.
	got, err := MaxParam(0, 100, 1e-9, func(p float64) (bool, error) {
		return p*p <= 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(10)) > 1e-6 {
		t.Errorf("MaxParam = %g, want sqrt(10)", got)
	}
	// Constraint true everywhere returns hi.
	got, err = MaxParam(0, 5, 1e-9, func(float64) (bool, error) { return true, nil })
	if err != nil || got != 5 {
		t.Errorf("all-true MaxParam = %g, %v; want 5", got, err)
	}
	// Constraint false at lo errors.
	if _, err := MaxParam(1, 5, 1e-9, func(float64) (bool, error) { return false, nil }); err == nil {
		t.Error("unsatisfiable constraint accepted")
	}
	// lo >= hi errors.
	if _, err := MaxParam(5, 5, 1e-9, func(float64) (bool, error) { return true, nil }); err == nil {
		t.Error("empty interval accepted")
	}
	// Callback errors propagate.
	boom := fmt.Errorf("boom")
	if _, err := MaxParam(0, 1, 1e-9, func(float64) (bool, error) { return false, boom }); err == nil {
		t.Error("callback error swallowed")
	}
}

func buildNet(rEff float64) (*rctree.Tree, rctree.NodeID, error) {
	b := rctree.NewBuilder("in")
	drv, err := mos.AttachDriver(b, mos.Driver{Name: "drv", REff: rEff, COut: 0.04})
	if err != nil {
		return nil, 0, err
	}
	far := b.Line(drv, "far", 1800, 0.11) // 240 µm of §V poly
	b.Capacitor(far, 0.013)
	b.Output(far)
	t, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return t, far, nil
}

// TestSizeDriverTreeMatchesSizeDriver: the incremental sizer must land on
// the same resistance as the rebuild-per-probe sizer, and its answer must
// certify on a freshly built network.
func TestSizeDriverTreeMatchesSizeDriver(t *testing.T) {
	budget := Budget{V: 0.7, Deadline: 2000}
	want, err := SizeDriver(buildNet, budget, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	tree, out, err := buildNet(500) // the starting R is irrelevant; probes overwrite it
	if err != nil {
		t.Fatal(err)
	}
	drv, ok := tree.Lookup("drv")
	if !ok {
		t.Fatal("driver node missing")
	}
	got, err := SizeDriverTree(tree, drv, out, budget, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-3*want {
		t.Errorf("SizeDriverTree = %g, SizeDriver = %g", got, want)
	}
	ct, cout, err := buildNet(got)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := certified(ct, cout, budget); err != nil || !ok {
		t.Errorf("SizeDriverTree result %g does not certify (err=%v)", got, err)
	}
	if _, err := SizeDriverTree(tree, rctree.Root, out, budget, 1, 10); err == nil {
		t.Error("driverEdge = Root accepted")
	}
	if _, err := SizeDriverTree(tree, out, out, budget, 1, 10); err == nil {
		t.Error("non-driver interior node accepted as driverEdge")
	}
	if _, err := SizeDriverTree(tree, drv, out, Budget{V: 2, Deadline: 1}, 1, 10); err == nil {
		t.Error("invalid budget accepted")
	}
}

// TestSizeDriver: the returned resistance certifies the budget, and a
// slightly larger driver resistance does not — i.e. the answer is maximal.
func TestSizeDriver(t *testing.T) {
	budget := Budget{V: 0.7, Deadline: 2000} // 2 ns
	r, err := SizeDriver(buildNet, budget, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	check := func(rr float64) bool {
		tree, out, err := buildNet(rr)
		if err != nil {
			t.Fatal(err)
		}
		tm, _ := tree.CharacteristicTimes(out)
		b := core.MustNew(tm)
		return b.TMax(budget.V) <= budget.Deadline
	}
	if !check(r) {
		t.Errorf("SizeDriver result %g does not certify", r)
	}
	if check(r * 1.01) {
		t.Errorf("SizeDriver result %g is not maximal", r)
	}
	// The certified design also passes in exact simulation, with margin.
	tree, out, _ := buildNet(r)
	lumped, mapping, err := sim.Discretize(tree, 16)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(mapping[out])
	if cross := resp.CrossingTime(i, budget.V, 1e-10); cross > budget.Deadline {
		t.Errorf("certified design missed deadline in simulation: %g > %g", cross, budget.Deadline)
	}
}

func TestSizeDriverValidation(t *testing.T) {
	if _, err := SizeDriver(buildNet, Budget{V: 0, Deadline: 1}, 1, 10); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := SizeDriver(buildNet, Budget{V: 0.5, Deadline: 0}, 1, 10); err == nil {
		t.Error("zero deadline accepted")
	}
}

// TestMaxWireLength: monotone in the budget, and the returned length is
// tight (1% longer fails certification).
func TestMaxWireLength(t *testing.T) {
	d := mos.Superbuffer()
	budgetShort := Budget{V: 0.7, Deadline: 500}
	budgetLong := Budget{V: 0.7, Deadline: 5000}
	lShort, err := MaxWireLength(d, polyLine, 0.013, budgetShort, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	lLong, err := MaxWireLength(d, polyLine, 0.013, budgetLong, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if lShort >= lLong {
		t.Errorf("more budget should allow more wire: %g vs %g", lShort, lLong)
	}
	// Tightness.
	tree, out, err := buildPointToPoint(d, polyLine, lLong*1.01, 0.013)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := tree.CharacteristicTimes(out)
	if core.MustNew(tm).TMax(0.7) <= budgetLong.Deadline {
		t.Error("MaxWireLength not maximal")
	}
	// Cap respected.
	capped, err := MaxWireLength(d, polyLine, 0.013, Budget{V: 0.7, Deadline: 1e12}, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if capped != 1234 {
		t.Errorf("cap not honored: %g", capped)
	}
}

func TestMaxWireLengthValidation(t *testing.T) {
	d := mos.Superbuffer()
	if _, err := MaxWireLength(d, Line{}, 0, Budget{V: 0.5, Deadline: 1}, 10); err == nil {
		t.Error("zero line accepted")
	}
	if _, err := MaxWireLength(d, polyLine, 0, Budget{V: 0.5, Deadline: 1}, 0); err == nil {
		t.Error("zero maxLen accepted")
	}
}

// TestInsertRepeaters: on a long line, repeaters beat the unbuffered wire
// (quadratic -> linear), and the chosen stage count scales roughly linearly
// with length, the classical result.
func TestInsertRepeaters(t *testing.T) {
	d := mos.Superbuffer()
	const repeaterIn, loadC = 0.05, 0.013
	long, err := InsertRepeaters(d, polyLine, 20000, repeaterIn, loadC, 0.5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if long.Stages < 2 {
		t.Fatalf("a 20 mm line should want repeaters, got %d stages", long.Stages)
	}
	// Compare with the unbuffered certified delay.
	tree, out, err := buildPointToPoint(d, polyLine, 20000, loadC)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := tree.CharacteristicTimes(out)
	unbuffered := core.MustNew(tm).TMax(0.5)
	if long.TotalTMax >= unbuffered {
		t.Errorf("repeatered %g not faster than unbuffered %g", long.TotalTMax, unbuffered)
	}
	// Stage count grows with length (~linearly in the long-line limit).
	short, err := InsertRepeaters(d, polyLine, 5000, repeaterIn, loadC, 0.5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if short.Stages >= long.Stages {
		t.Errorf("stage count should grow with length: %d vs %d", short.Stages, long.Stages)
	}
	ratio := float64(long.Stages) / float64(short.Stages)
	if ratio < 2 || ratio > 8 {
		t.Errorf("stages ratio for 4x length = %g, want roughly 4", ratio)
	}
	// Consistency of the plan arithmetic.
	if math.Abs(long.TotalTMax-float64(long.Stages)*long.PerStageTMax) > 1e-9 {
		t.Error("TotalTMax != Stages * PerStageTMax")
	}
}

func TestInsertRepeatersValidation(t *testing.T) {
	d := mos.Superbuffer()
	if _, err := InsertRepeaters(d, polyLine, 1000, 0.05, 0.013, 0, 8); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := InsertRepeaters(d, polyLine, 0, 0.05, 0.013, 0.5, 8); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := InsertRepeaters(d, polyLine, 1000, 0.05, 0.013, 0.5, 0); err == nil {
		t.Error("zero maxStages accepted")
	}
	if _, err := InsertRepeaters(d, Line{}, 1000, 0.05, 0.013, 0.5, 8); err == nil {
		t.Error("zero line accepted")
	}
}

// TestShortLineNoRepeaters: when the wire is short, one stage is optimal.
func TestShortLineNoRepeaters(t *testing.T) {
	plan, err := InsertRepeaters(mos.Superbuffer(), polyLine, 100, 0.05, 0.013, 0.5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages != 1 {
		t.Errorf("100 µm line chose %d stages, want 1", plan.Stages)
	}
}

// TestMaxParamStatsProbeCount: the exported probe count matches what the
// callback observed, and the endpoint-only answers cost exactly two probes.
func TestMaxParamStatsProbeCount(t *testing.T) {
	calls := 0
	got, stats, err := MaxParamStats(0, 100, 1e-9, func(p float64) (bool, error) {
		calls++
		return p*p <= 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(10)) > 1e-6 {
		t.Errorf("MaxParamStats = %g, want sqrt(10)", got)
	}
	if stats.Probes != calls || stats.Probes < 10 {
		t.Errorf("Probes = %d (callback saw %d); a 1e-9 bisection needs dozens", stats.Probes, calls)
	}
	if stats.Edits != 0 {
		t.Errorf("generic MaxParamStats reported %d edits; the callback is opaque", stats.Edits)
	}
	// All-true answers at the hi endpoint after exactly two probes.
	_, stats, err = MaxParamStats(0, 5, 1e-9, func(float64) (bool, error) { return true, nil })
	if err != nil || stats.Probes != 2 {
		t.Errorf("all-true probes = %d, %v; want 2", stats.Probes, err)
	}
	// Unsatisfiable-at-lo answers after exactly one.
	_, stats, _ = MaxParamStats(1, 5, 1e-9, func(float64) (bool, error) { return false, nil })
	if stats.Probes != 1 {
		t.Errorf("unsatisfiable probes = %d, want 1", stats.Probes)
	}
}

// TestProbeCostExports: the in-place searches report their EditTree edit
// spend as Probes · EditsPerProbe, and InsertRepeaters reports one probe per
// candidate stage count.
func TestProbeCostExports(t *testing.T) {
	budget := Budget{V: 0.7, Deadline: 2000}
	length, stats, err := MaxWireLengthStats(mos.Superbuffer(), polyLine, 0.013, budget, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if length <= 0 || length >= 1e6 {
		t.Fatalf("length = %g", length)
	}
	if stats.Probes < 10 || stats.Edits != stats.Probes*EditsPerProbe {
		t.Errorf("wire stats = %+v, want Edits = Probes*%d", stats, EditsPerProbe)
	}
	tr, out, err := buildNet(500)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = SizeDriverTreeStats(tr, rctree.NodeID(1), out, Budget{V: 0.7, Deadline: 2000}, 10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probes < 3 || stats.Edits != stats.Probes*EditsPerProbe {
		t.Errorf("driver stats = %+v, want Edits = Probes*%d", stats, EditsPerProbe)
	}
	plan, err := InsertRepeaters(mos.Superbuffer(), polyLine, 2000, 0.013, 0.013, 0.7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Probes != 8 {
		t.Errorf("repeater Probes = %d, want maxStages 8", plan.Probes)
	}
}

// TestMaxWireLengthZeroLengthEdge: a budget no wire can meet — not even a
// near-zero-length one — falls through to the generic unsatisfiable-at-lo
// bisection error rather than returning a zero or negative length; a budget
// generous enough for the full span returns maxLen after the two endpoint
// probes alone.
func TestMaxWireLengthZeroLengthEdge(t *testing.T) {
	// The driver alone (against its own output cap plus the load) already
	// blows a 1e-6 ps deadline, so the zero-length limit fails too.
	_, stats, err := MaxWireLengthStats(mos.Superbuffer(), polyLine, 0.013,
		Budget{V: 0.7, Deadline: 1e-6}, 1e4)
	if err == nil {
		t.Fatal("impossible budget certified a wire length")
	}
	if stats.Probes != 1 {
		t.Errorf("impossible budget probes = %d, want 1 (lo endpoint only)", stats.Probes)
	}
	// A kilometer of slack: the hi endpoint certifies and the search stops.
	length, stats, err := MaxWireLengthStats(mos.Superbuffer(), polyLine, 0.013,
		Budget{V: 0.7, Deadline: 1e12}, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if length != 1e4 {
		t.Errorf("generous budget length = %g, want maxLen", length)
	}
	if stats.Probes != 2 {
		t.Errorf("generous budget probes = %d, want 2 (both endpoints)", stats.Probes)
	}
}

// TestSizeDriverTreeSingleNodeEdges: degenerate trees around the driver
// edge. A single-node tree (just the input) has no driver edge at all; a
// two-node tree whose only element IS the driver edge is the smallest legal
// search and still answers through the generic bisection bounds.
func TestSizeDriverTreeSingleNodeEdges(t *testing.T) {
	// Single-node tree: only the input, nothing to size.
	lone, err := rctree.NewBuilder("in").Build()
	if err == nil {
		if _, _, err := SizeDriverTreeStats(lone, rctree.NodeID(1), rctree.Root,
			Budget{V: 0.5, Deadline: 100}, 1, 10); err == nil {
			t.Error("single-node tree accepted a driver edge")
		}
	}
	// Two-node tree: driver edge straight into the (only) loaded output.
	b := rctree.NewBuilder("in")
	o := b.Resistor(rctree.Root, "o", 100)
	b.Capacitor(o, 1)
	b.Output(o)
	tiny, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// RC = r·1; deadline 50 at v=0.5 certifies r up to ~50/ln2 ≈ 72.1.
	r, stats, err := SizeDriverTreeStats(tiny, o, o, Budget{V: 0.5, Deadline: 50}, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 / math.Ln2
	if math.Abs(r-want) > 1e-3*want {
		t.Errorf("two-node sizing = %g, want %g", r, want)
	}
	if stats.Probes < 10 {
		t.Errorf("two-node sizing probes = %d; expected a real bisection", stats.Probes)
	}
	// A node deeper than the input is rejected as the driver edge.
	b2 := rctree.NewBuilder("in")
	n1 := b2.Resistor(rctree.Root, "n1", 10)
	n2 := b2.Resistor(n1, "n2", 10)
	b2.Capacitor(n2, 1)
	b2.Output(n2)
	deep, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SizeDriverTreeStats(deep, n2, n2, Budget{V: 0.5, Deadline: 50}, 1, 10); err == nil {
		t.Error("deep edge accepted as the driver")
	}
}
