// Package opt applies the Penfield–Rubinstein bounds to the design questions
// the paper's introduction motivates: because TMax is a *guaranteed* upper
// bound on delay, any design choice certified with TMax is safe regardless
// of where in the envelope the true response falls. The package provides
// certified driver sizing, maximum-wire-length rules, and repeater insertion
// for long lines — the classic interconnect-era design loop, driven entirely
// by the paper's closed-form bounds (no simulation).
package opt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/mos"
	"repro/internal/rctree"
)

// Budget is a timing contract: the output must pass threshold V no later
// than Deadline (certified via TMax).
type Budget struct {
	V        float64
	Deadline float64
}

func (b Budget) validate() error {
	if b.V <= 0 || b.V >= 1 {
		return fmt.Errorf("opt: threshold %g outside (0,1)", b.V)
	}
	if b.Deadline <= 0 {
		return fmt.Errorf("opt: deadline must be positive, got %g", b.Deadline)
	}
	return nil
}

// certified reports whether the tree's output meets the budget with
// certainty (TMax <= deadline).
func certified(t *rctree.Tree, out rctree.NodeID, b Budget) (bool, error) {
	tm, err := t.CharacteristicTimes(out)
	if err != nil {
		return false, err
	}
	return certifiedTimes(tm, b)
}

// certifiedTimes is the Times half of certified, shared with the
// incremental probes.
func certifiedTimes(tm rctree.Times, b Budget) (bool, error) {
	bounds, err := core.New(tm)
	if err != nil {
		return false, err
	}
	return bounds.TMax(b.V) <= b.Deadline, nil
}

// EditsPerProbe is the incremental price of one bisection probe in this
// package's in-place searches: each probe performs exactly one EditTree edit
// (a SetResistance or SetLine) plus one O(depth) requery. Consumers that
// budget repair work — the closure engine accounts its bisection guidance
// this way — multiply a search's Probes by this constant.
const EditsPerProbe = 1

// ProbeStats reports how much incremental work a bisection search performed.
type ProbeStats struct {
	// Probes counts constraint evaluations, including the lo/hi endpoint
	// checks that may answer the search outright.
	Probes int
	// Edits is the EditTree edit count those probes cost in an in-place
	// search (Probes · EditsPerProbe); searches that rebuild the network per
	// probe (SizeDriver's build callback) spend no EditTree edits and report 0.
	Edits int
}

// MaxParam finds, by bisection to relative tolerance tol, the largest p in
// [lo, hi] for which ok(p) holds, assuming ok is monotone (true for small p,
// false for large). It returns an error if ok(lo) is already false, and
// returns hi if ok(hi) still holds.
func MaxParam(lo, hi, tol float64, ok func(p float64) (bool, error)) (float64, error) {
	p, _, err := MaxParamStats(lo, hi, tol, ok)
	return p, err
}

// MaxParamStats is MaxParam with the probe count exposed: Stats.Probes is
// how many times ok ran. The caller knows what one probe cost (EditsPerProbe
// for the in-place searches here) and fills Edits accordingly; MaxParamStats
// itself leaves it 0 because ok is opaque.
func MaxParamStats(lo, hi, tol float64, ok func(p float64) (bool, error)) (float64, ProbeStats, error) {
	var stats ProbeStats
	if !(lo < hi) {
		return 0, stats, fmt.Errorf("opt: need lo < hi, got [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	probe := func(p float64) (bool, error) {
		stats.Probes++
		return ok(p)
	}
	okLo, err := probe(lo)
	if err != nil {
		return 0, stats, err
	}
	if !okLo {
		return 0, stats, fmt.Errorf("opt: constraint unsatisfiable even at p=%g", lo)
	}
	okHi, err := probe(hi)
	if err != nil {
		return 0, stats, err
	}
	if okHi {
		return hi, stats, nil
	}
	for hi-lo > tol*(1+math.Abs(hi)) {
		mid := (lo + hi) / 2
		good, err := probe(mid)
		if err != nil {
			return 0, stats, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, stats, nil
}

// SizeDriver returns the largest driver effective resistance (i.e. the
// smallest, cheapest driver) that still certifies the budget for the network
// produced by build. build must return the tree and the timed output for a
// given driver resistance; delay must be nondecreasing in the resistance
// (true for every RC tree, since the driver resistance is common to all
// paths).
//
// Each probe rebuilds the network from scratch; when the topology is fixed
// and only the driver edge varies, SizeDriverTree answers the same question
// with one O(depth) incremental edit per probe.
func SizeDriver(build func(rEff float64) (*rctree.Tree, rctree.NodeID, error),
	budget Budget, rLo, rHi float64) (float64, error) {
	if err := budget.validate(); err != nil {
		return 0, err
	}
	return MaxParam(rLo, rHi, 1e-6, func(r float64) (bool, error) {
		t, out, err := build(r)
		if err != nil {
			return false, err
		}
		return certified(t, out, budget)
	})
}

// SizeDriverTree sizes the driver of a fixed network incrementally: the tree
// is wrapped in an incr.EditTree once, and every bisection probe becomes a
// single SetResistance on driverEdge (the node whose parent element is the
// driver's effective resistance) plus one O(depth) requery of out — no
// rebuilding, no O(n) reanalysis. It returns the largest certified driver
// resistance in [rLo, rHi], like SizeDriver.
func SizeDriverTree(t *rctree.Tree, driverEdge, out rctree.NodeID, budget Budget, rLo, rHi float64) (float64, error) {
	r, _, err := SizeDriverTreeStats(t, driverEdge, out, budget, rLo, rHi)
	return r, err
}

// SizeDriverTreeStats is SizeDriverTree with the probe cost exposed: every
// bisection probe costs exactly EditsPerProbe EditTree edits, and Stats
// reports the totals.
func SizeDriverTreeStats(t *rctree.Tree, driverEdge, out rctree.NodeID, budget Budget, rLo, rHi float64) (float64, ProbeStats, error) {
	if err := budget.validate(); err != nil {
		return 0, ProbeStats{}, err
	}
	// The driver element is by definition the one common to every root path,
	// i.e. an edge leaving the input (mos.AttachDriver always builds it
	// there). Anything deeper would silently bisect a wire segment instead.
	if int(driverEdge) <= 0 || int(driverEdge) >= t.NumNodes() || t.Parent(driverEdge) != rctree.Root {
		return 0, ProbeStats{}, fmt.Errorf("opt: driverEdge %d must be a child of the input (its parent element is the driver resistance)", driverEdge)
	}
	et := incr.New(t)
	r, stats, err := MaxParamStats(rLo, rHi, 1e-6, func(r float64) (bool, error) {
		if err := et.SetResistance(driverEdge, r); err != nil {
			return false, err
		}
		tm, err := et.Times(out)
		if err != nil {
			return false, err
		}
		return certifiedTimes(tm, budget)
	})
	stats.Edits = stats.Probes * EditsPerProbe
	return r, stats, err
}

// Line describes a uniform wire by per-unit-length resistance and
// capacitance (ohms and farads per meter, or any consistent units).
type Line struct {
	RPerLen, CPerLen float64
}

func (l Line) validate() error {
	if l.RPerLen <= 0 || l.CPerLen <= 0 {
		return fmt.Errorf("opt: line needs positive per-unit R and C, got %+v", l)
	}
	return nil
}

// buildPointToPoint assembles driver -> line(length) -> load and returns the
// load node as output.
func buildPointToPoint(d mos.Driver, l Line, length, loadC float64) (*rctree.Tree, rctree.NodeID, error) {
	b := rctree.NewBuilder("in")
	drv, err := mos.AttachDriver(b, d)
	if err != nil {
		return nil, 0, err
	}
	far := b.Line(drv, "far", l.RPerLen*length, l.CPerLen*length)
	if loadC > 0 {
		b.Capacitor(far, loadC)
	}
	b.Output(far)
	t, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return t, far, nil
}

// MaxWireLength returns the longest run of the given line, between the
// driver and a lumped load, that is certified to meet the budget. maxLen
// caps the search; if even maxLen passes, maxLen is returned.
//
// The driver→line→load tree is built once; each bisection probe rescales the
// line element in place (one incr.EditTree edit + one O(depth) requery)
// instead of reassembling and reanalyzing the network.
func MaxWireLength(d mos.Driver, l Line, loadC float64, budget Budget, maxLen float64) (float64, error) {
	length, _, err := MaxWireLengthStats(d, l, loadC, budget, maxLen)
	return length, err
}

// MaxWireLengthStats is MaxWireLength with the probe cost exposed: every
// bisection probe costs exactly EditsPerProbe EditTree edits (one in-place
// SetLine rescale), and Stats reports the totals. Note the lower bisection
// bound is a near-zero-length wire, not zero: a zero-length line would be a
// degenerate element the tree model rejects, so "even the shortest wire
// fails" surfaces as the generic unsatisfiable-at-lo bisection error.
func MaxWireLengthStats(d mos.Driver, l Line, loadC float64, budget Budget, maxLen float64) (float64, ProbeStats, error) {
	if err := budget.validate(); err != nil {
		return 0, ProbeStats{}, err
	}
	if err := l.validate(); err != nil {
		return 0, ProbeStats{}, err
	}
	if maxLen <= 0 {
		return 0, ProbeStats{}, fmt.Errorf("opt: maxLen must be positive")
	}
	t, out, err := buildPointToPoint(d, l, maxLen, loadC)
	if err != nil {
		return 0, ProbeStats{}, err
	}
	et := incr.New(t)
	const tiny = 1e-9
	length, stats, err := MaxParamStats(tiny*maxLen, maxLen, 1e-9, func(length float64) (bool, error) {
		if err := et.SetLine(out, l.RPerLen*length, l.CPerLen*length); err != nil {
			return false, err
		}
		tm, err := et.Times(out)
		if err != nil {
			return false, err
		}
		return certifiedTimes(tm, budget)
	})
	stats.Edits = stats.Probes * EditsPerProbe
	return length, stats, err
}

// RepeaterPlan is the result of certified repeater insertion.
type RepeaterPlan struct {
	// Stages is the number of driver+segment stages (1 = no repeaters).
	Stages int
	// PerStageTMax is the certified worst-case delay of one stage at the
	// budget threshold; TotalTMax = Stages · PerStageTMax.
	PerStageTMax float64
	TotalTMax    float64
	// Probes counts the candidate stage counts evaluated (== maxStages);
	// each cost EditsPerProbe in-place EditTree edits.
	Probes int
}

// InsertRepeaters chooses the number of identical repeater stages that
// minimizes the certified end-to-end delay of a long line: each stage is a
// driver (the repeater) plus a line segment of length/stages plus the next
// repeater's input capacitance. The total worst-case delay is the sum of the
// per-stage TMax values — valid because each repeater restores the signal,
// so stages time independently (the classical Bakoglu decomposition, here
// with certified per-stage delays).
//
// repeaterIn is the input capacitance a stage presents as load; the final
// stage drives loadC instead. maxStages caps the search.
func InsertRepeaters(d mos.Driver, l Line, length, repeaterIn, loadC, v float64, maxStages int) (RepeaterPlan, error) {
	if v <= 0 || v >= 1 {
		return RepeaterPlan{}, fmt.Errorf("opt: threshold %g outside (0,1)", v)
	}
	if err := l.validate(); err != nil {
		return RepeaterPlan{}, err
	}
	if length <= 0 || maxStages < 1 {
		return RepeaterPlan{}, fmt.Errorf("opt: need positive length and maxStages >= 1")
	}
	// A middle stage drives the next repeater; the last drives loadC. For
	// identical stages, size with the heavier of the two loads so the
	// certificate covers both. The stage tree is built once; each candidate
	// stage count k just rescales the line element in place.
	load := math.Max(repeaterIn, loadC)
	t, out, err := buildPointToPoint(d, l, length, load)
	if err != nil {
		return RepeaterPlan{}, err
	}
	et := incr.New(t)
	best := RepeaterPlan{TotalTMax: math.Inf(1)}
	for k := 1; k <= maxStages; k++ {
		segLen := length / float64(k)
		if err := et.SetLine(out, l.RPerLen*segLen, l.CPerLen*segLen); err != nil {
			return RepeaterPlan{}, err
		}
		tm, err := et.Times(out)
		if err != nil {
			return RepeaterPlan{}, err
		}
		bounds, err := core.New(tm)
		if err != nil {
			return RepeaterPlan{}, err
		}
		per := bounds.TMax(v)
		total := float64(k) * per
		if total < best.TotalTMax {
			best = RepeaterPlan{Stages: k, PerStageTMax: per, TotalTMax: total}
		}
	}
	best.Probes = maxStages
	return best, nil
}
