package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets is the default upper-bound ladder for request and
// engine-phase durations in seconds: 100µs to 10s, roughly ×3 per step.
var LatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// SizeBuckets is the default ladder for count-shaped observations (dirty
// nets, candidate moves, queue depths): powers of 4 from 1 to 65536.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// A Histogram accumulates observations into fixed upper-bound buckets (plus
// an implicit +Inf overflow bucket) with lock-free atomic counters. Bucket
// bounds are fixed at creation and must be sorted ascending.
type Histogram struct {
	buckets []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // len(buckets)+1, atomically updated
	sumBits uint64    // float64 bits of the running sum, CAS-updated
	total   uint64    // atomic observation count
}

// Histogram returns the histogram named name with the given bucket bounds,
// creating it on first use. The bounds of an existing series win; callers
// observing into the same name must agree on them.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func() any {
		b := make([]float64, len(buckets))
		copy(b, buckets)
		sort.Float64s(b)
		return &Histogram{buckets: b, counts: make([]uint64, len(b)+1)}
	}).(*Histogram)
}

// Observe records one value (no-op on nil; NaN dropped).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	atomic.AddUint64(&h.counts[i], 1)
	atomic.AddUint64(&h.total, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// A HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts has one more entry than Buckets: the +Inf overflow bucket.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

// Snapshot copies the current counts. The copy is not atomic across buckets
// (concurrent observers may land mid-copy) but each counter read is, which
// is the usual scrape-time contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  make([]uint64, len(h.counts)),
		Sum:     math.Float64frombits(atomic.LoadUint64(&h.sumBits)),
		Count:   atomic.LoadUint64(&h.total),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadUint64(&h.counts[i])
	}
	return s
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation inside
// the containing bucket, the standard Prometheus histogram_quantile
// estimate. It is the bucketed counterpart of the repo-wide exact-sample
// convention in internal/stats (R-7 linear interpolation, used by mc, mcd
// and rcload): both interpolate linearly, but this one only sees bucket
// boundaries, so it converges to stats.Quantile as buckets narrow. Empty
// histograms return NaN; observations in the +Inf overflow bucket clamp to
// the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Buckets) { // +Inf bucket: clamp
			if len(s.Buckets) == 0 {
				return math.NaN()
			}
			return s.Buckets[len(s.Buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Buckets[i-1]
		}
		return lo + (s.Buckets[i]-lo)*(rank-prev)/float64(c)
	}
	if len(s.Buckets) == 0 {
		return math.NaN()
	}
	return s.Buckets[len(s.Buckets)-1]
}

// P50, P95, P99 are the snapshot's headline latency quantiles.
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 estimates the 95th percentile.
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 estimates the 99th percentile.
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }
