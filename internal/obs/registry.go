package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry is a process-local metrics namespace: counters, gauges, and
// histograms keyed by name plus ordered label pairs. All methods are
// goroutine-safe, and all methods on a nil *Registry are no-ops returning
// nil instruments (whose methods are in turn no-ops), so instrumented code
// never guards call sites.
type Registry struct {
	mu      sync.RWMutex
	series  map[seriesKey]any // *Counter | *Gauge | *Histogram | gaugeFunc
	ordered []seriesKey       // insertion order; sorted at exposition time
}

type seriesKey struct {
	name   string
	labels string // encoded k=v pairs, in caller order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[seriesKey]any)}
}

// encodeLabels flattens ordered k,v pairs into a cache key. An odd trailing
// key is dropped rather than panicking — telemetry must never take the
// process down.
func encodeLabels(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	return b.String()
}

// lookup returns the existing instrument for (name, labels) or creates one
// via mk under the write lock.
func (r *Registry) lookup(name string, labels []string, mk func() any) any {
	key := seriesKey{name: name, labels: encodeLabels(labels)}
	r.mu.RLock()
	got, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		return got
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok = r.series[key]; ok {
		return got
	}
	got = mk()
	r.series[key] = got
	r.ordered = append(r.ordered, key)
	return got
}

// --- Counter ----------------------------------------------------------------

// A Counter is a monotonically increasing integer series.
type Counter struct {
	v int64
}

// Counter returns the counter named name with the given ordered label k,v
// pairs, creating it on first use. Nil registries return nil (a no-op
// counter).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func() any { return new(Counter) }).(*Counter)
}

// Add increments the counter by n (no-op on nil, negative n ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// --- Gauge ------------------------------------------------------------------

// A Gauge is a float series that can go up and down.
type Gauge struct {
	bits uint64 // float64 bits
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add offsets the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// gaugeFunc is a lazily sampled gauge: the callback runs at exposition time.
type gaugeFunc struct {
	fn func() float64
}

// GaugeFunc registers a callback-backed gauge sampled when the registry is
// rendered — the natural shape for "current queue depth" style readings
// owned by another subsystem. Re-registering the same series replaces the
// callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	g := r.lookup(name, labels, func() any { return &gaugeFunc{} }).(*gaugeFunc)
	r.mu.Lock()
	g.fn = fn
	r.mu.Unlock()
}

// --- Exposition -------------------------------------------------------------

// promLabels renders the encoded label string as {k="v",...} or "".
func promLabels(enc string) string {
	if enc == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, pair := range strings.Split(enc, ",") {
		k, v, _ := strings.Cut(pair, "=")
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsExtra is promLabels with one extra pair appended (the histogram
// le bucket bound).
func promLabelsExtra(enc, k, v string) string {
	pair := k + "=" + v
	if enc == "" {
		return promLabels(pair)
	}
	return promLabels(enc + "," + pair)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every series in Prometheus text exposition format
// (v0.0.4). Output is deterministic: series sort by name then encoded
// labels, histograms emit cumulative le buckets plus _sum and _count. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	keys := make([]seriesKey, len(r.ordered))
	copy(keys, r.ordered)
	snap := make(map[seriesKey]any, len(r.series))
	for k, v := range r.series {
		snap[k] = v
	}
	r.mu.RUnlock()

	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	lastType := ""
	for _, k := range keys {
		var typ string
		switch snap[k].(type) {
		case *Counter:
			typ = "counter"
		case *Gauge, *gaugeFunc:
			typ = "gauge"
		case *Histogram:
			typ = "histogram"
		default:
			continue
		}
		if head := "# TYPE " + k.name + " " + typ; head != lastType {
			fmt.Fprintln(w, head)
			lastType = head
		}
		switch inst := snap[k].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", k.name, promLabels(k.labels), inst.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", k.name, promLabels(k.labels), promFloat(inst.Value()))
		case *gaugeFunc:
			r.mu.RLock()
			fn := inst.fn
			r.mu.RUnlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			fmt.Fprintf(w, "%s%s %s\n", k.name, promLabels(k.labels), promFloat(v))
		case *Histogram:
			s := inst.Snapshot()
			cum := uint64(0)
			for i, ub := range s.Buckets {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", k.name, promLabelsExtra(k.labels, "le", promFloat(ub)), cum)
			}
			cum += s.Counts[len(s.Buckets)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", k.name, promLabelsExtra(k.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", k.name, promLabels(k.labels), promFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", k.name, promLabels(k.labels), cum)
		}
	}
}
