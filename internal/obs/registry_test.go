package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "route", "GET /metrics")
	c.Add(3)
	c.Add(-5) // negative adds are dropped: counters are monotonic
	c.Add(2)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("requests_total", "route", "GET /metrics"); again != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if other := reg.Counter("requests_total", "route", "POST /design"); other == c {
		t.Fatal("different labels must return a distinct counter")
	}

	g := reg.Gauge("inflight")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	sampled := 7.25
	reg.GaugeFunc("queue_depth", func() float64 { return sampled })
	var out strings.Builder
	reg.WritePrometheus(&out)
	if !strings.Contains(out.String(), "queue_depth 7.25") {
		t.Fatalf("gauge func not sampled at exposition:\n%s", out.String())
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	// Every instrument from a nil registry is nil and every method no-ops.
	reg.Counter("x").Add(1)
	reg.Gauge("y").Set(2)
	reg.Gauge("y").Add(1)
	reg.GaugeFunc("z", func() float64 { return 1 })
	reg.Histogram("h", LatencyBuckets).Observe(0.5)
	reg.WritePrometheus(&strings.Builder{})
	if v := reg.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if v := reg.Gauge("y").Value(); v != 0 {
		t.Fatalf("nil gauge value = %v", v)
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
	sp := StartSpan(nil, "phase")
	sp.End()
	if sp != nil {
		t.Fatal("span on nil registry must be nil")
	}
	if sp.Elapsed() != 0 {
		t.Fatal("nil span elapsed must be 0")
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// deterministic ordering (name, then labels), TYPE headers once per metric,
// cumulative le buckets with _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Register out of order to prove sorting.
	reg.Counter("zeta_total").Add(9)
	reg.Counter("alpha_total", "route", "b").Add(2)
	reg.Counter("alpha_total", "route", "a").Add(1)
	reg.Gauge("mid_gauge").Set(1.5)
	h := reg.Histogram("dur_seconds", []float64{0.1, 1}, "phase", "build")
	// Values chosen to sum exactly in binary so the golden _sum line is stable.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5) // overflow bucket

	var out strings.Builder
	reg.WritePrometheus(&out)
	const want = `# TYPE alpha_total counter
alpha_total{route="a"} 1
alpha_total{route="b"} 2
# TYPE dur_seconds histogram
dur_seconds_bucket{phase="build",le="0.1"} 1
dur_seconds_bucket{phase="build",le="1"} 3
dur_seconds_bucket{phase="build",le="+Inf"} 4
dur_seconds_sum{phase="build"} 6.0625
dur_seconds_count{phase="build"} 4
# TYPE mid_gauge gauge
mid_gauge 1.5
# TYPE zeta_total counter
zeta_total 9
`
	if out.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// All mass in bucket (0,1]: p50 interpolates to 0.5 within [0,1].
	if got := s.P50(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}

	h2 := reg.Histogram("lat2", []float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5) // bucket <=1
	}
	for i := 0; i < 50; i++ {
		h2.Observe(3) // bucket <=4
	}
	s2 := h2.Snapshot()
	// p95: rank 95 of 100, 50 below 1, 50 in (2,4] => 2 + 2*(95-50)/50 = 3.8
	if got := s2.P95(); math.Abs(got-3.8) > 1e-9 {
		t.Fatalf("p95 = %v, want 3.8", got)
	}
	if got := s2.P99(); math.Abs(got-3.96) > 1e-9 {
		t.Fatalf("p99 = %v, want 3.96", got)
	}

	// Overflow clamps to the top finite bound.
	h3 := reg.Histogram("lat3", []float64{1, 2})
	h3.Observe(100)
	if got := h3.Snapshot().P99(); got != 2 {
		t.Fatalf("overflow p99 = %v, want clamp to 2", got)
	}

	// Empty histogram: NaN.
	h4 := reg.Histogram("lat4", []float64{1})
	if got := h4.Snapshot().P50(); !math.IsNaN(got) {
		t.Fatalf("empty p50 = %v, want NaN", got)
	}
	if got := h4.Snapshot().Quantile(-0.1); !math.IsNaN(got) {
		t.Fatalf("q<0 = %v, want NaN", got)
	}
	// NaN observations are dropped.
	h4.Observe(math.NaN())
	if got := h4.Snapshot().Count; got != 0 {
		t.Fatalf("NaN observation recorded: count = %d", got)
	}
}

func TestSpanRecords(t *testing.T) {
	reg := NewRegistry()
	sp := StartSpan(reg, "phase", "kind", "test")
	if sp.Elapsed() < 0 {
		t.Fatal("elapsed went backwards")
	}
	sp.End()
	s := reg.Histogram("phase_seconds", LatencyBuckets, "kind", "test").Snapshot()
	if s.Count != 1 {
		t.Fatalf("span recorded %d observations, want 1", s.Count)
	}
	if s.Sum < 0 {
		t.Fatalf("span sum negative: %v", s.Sum)
	}
}

// TestRegistryRaceHammer drives concurrent get-or-create, updates, and
// expositions through one registry; run with -race it proves the locking.
func TestRegistryRaceHammer(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"hammer_a_total", "hammer_b_total", "hammer_c_total"}
			for i := 0; i < 500; i++ {
				n := names[i%len(names)]
				reg.Counter(n, "worker", string(rune('a'+w%4))).Add(1)
				reg.Gauge("hammer_gauge").Add(1)
				reg.Histogram("hammer_lat", LatencyBuckets).Observe(float64(i) / 1000)
				if i%100 == 0 {
					reg.GaugeFunc("hammer_fn", func() float64 { return float64(i) })
					reg.WritePrometheus(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		for _, n := range []string{"hammer_a_total", "hammer_b_total", "hammer_c_total"} {
			total += reg.Counter(n, "worker", lbl).Value()
		}
	}
	if total != workers*500 {
		t.Fatalf("lost updates: total = %d, want %d", total, workers*500)
	}
	if got := reg.Histogram("hammer_lat", LatencyBuckets).Snapshot().Count; got != workers*500 {
		t.Fatalf("histogram count = %d, want %d", got, workers*500)
	}
}
