package obs

import "time"

// A Span measures one phase of work: StartSpan stamps a monotonic start
// time, End records the elapsed seconds into the histogram
// "<name>_seconds" with the span's labels. Spans are values handed across
// one goroutine's phase; a nil span (from a nil registry) is a no-op.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span named name on reg. The duration lands in the
// histogram "<name>_seconds{labels...}" using LatencyBuckets. On a nil
// registry it returns nil, and every method on a nil *Span is a no-op — the
// disabled path costs one pointer test.
func StartSpan(reg *Registry, name string, labels ...string) *Span {
	if reg == nil {
		return nil
	}
	return &Span{
		h:     reg.Histogram(name+"_seconds", LatencyBuckets, labels...),
		start: time.Now(),
	}
}

// End closes the span, recording its duration. Safe to call on nil and more
// than once (each call records another observation; call once).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// Elapsed reports the time since the span started (0 on nil), for callers
// that also want the raw duration.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
