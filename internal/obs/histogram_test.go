package obs

import (
	"math"
	"sync"
	"testing"
)

// TestQuantileEdgeCases pins the corners of the bucketed estimator that the
// happy-path tests in registry_test.go don't reach: out-of-range q on both
// sides, the q=0 and q=1 boundaries, a single-bucket ladder, and a snapshot
// whose only mass sits in the implicit +Inf bucket of a bucket-less series.
func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()

	h := reg.Histogram("edge", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	if got := s.Quantile(1.1); !math.IsNaN(got) {
		t.Errorf("q>1 = %v, want NaN", got)
	}
	if got := s.Quantile(math.Inf(1)); !math.IsNaN(got) {
		t.Errorf("q=+Inf = %v, want NaN", got)
	}
	// q=0 lands at the lower edge of the first occupied bucket.
	if got := s.Quantile(0); got != 0 {
		t.Errorf("q=0 = %v, want 0", got)
	}
	// q=1 lands at the upper bound of the last occupied bucket.
	if got := s.Quantile(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("q=1 = %v, want 4", got)
	}

	// Single-bucket ladder: everything interpolates inside [0, bound].
	h1 := reg.Histogram("edge_one", []float64{10})
	for i := 0; i < 4; i++ {
		h1.Observe(5)
	}
	if got := h1.Snapshot().Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("single-bucket p50 = %v, want 5", got)
	}
	// Overflow in a single-bucket ladder clamps to that one bound.
	h1.Observe(1e6)
	if got := h1.Snapshot().Quantile(0.99); got != 10 {
		t.Errorf("single-bucket overflow p99 = %v, want 10", got)
	}

	// A snapshot with mass but no finite buckets has nothing to clamp to.
	noBuckets := HistogramSnapshot{Counts: []uint64{7}, Count: 7}
	if got := noBuckets.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("bucket-less p50 = %v, want NaN", got)
	}
}

// TestHistogramObserveSnapshotRace hammers one histogram with concurrent
// observers — all adding the same value, to maximize contention on the
// CAS-updated sum — while other goroutines snapshot it continuously. Run
// under -race this proves Observe/Snapshot need no external locking; the
// final count and sum prove no CAS update was lost.
func TestHistogramObserveSnapshotRace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("race_lat", LatencyBuckets)
	const (
		writers = 8
		readers = 4
		perW    = 2000
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := h.Snapshot()
				// Mid-flight snapshots may tear across counters, but each
				// field must stay internally sane.
				if s.Sum < 0 || math.IsNaN(s.Sum) {
					t.Errorf("torn sum: %v", s.Sum)
					return
				}
				if len(s.Counts) != len(s.Buckets)+1 {
					t.Errorf("counts/buckets mismatch: %d vs %d", len(s.Counts), len(s.Buckets))
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(0.25)
			}
		}()
	}
	// Wait for writers only, then release the readers.
	waitWriters := make(chan struct{})
	go func() { wg.Wait(); close(waitWriters) }()
	for {
		s := h.Snapshot()
		if s.Count == writers*perW {
			break
		}
		select {
		case <-waitWriters:
		default:
			continue
		}
		break
	}
	close(done)
	<-waitWriters

	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("count = %d, want %d", s.Count, writers*perW)
	}
	if want := 0.25 * float64(writers*perW); math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v (lost CAS update)", s.Sum, want)
	}
}
