// Package obs is the repository's zero-dependency telemetry layer: a
// metrics registry (counters, gauges, fixed-bucket histograms with
// p50/p95/p99 snapshots) and lightweight span tracing, threaded through the
// timing core, the closure engine, the batch pool, and the rcserve HTTP
// surface.
//
// # Registry
//
// A Registry hands out named instruments, get-or-create style:
//
//	reg := obs.NewRegistry()
//	reg.Counter("closure_moves_accepted_total").Add(1)
//	reg.Gauge("rcserve_sessions_active").Set(float64(n))
//	reg.Histogram("http_request_seconds", obs.LatencyBuckets,
//	    "route", "POST /design").Observe(dt.Seconds())
//
// Instruments are keyed by name plus ordered label key/value pairs, so the
// same name with different labels yields distinct series — the Prometheus
// model, without the dependency. WritePrometheus renders the whole registry
// in text exposition format with deterministic (sorted) ordering, which is
// what rcserve's GET /metrics serves and what the golden test pins.
//
// # Nil safety
//
// Every method on a nil *Registry, *Counter, *Gauge, *Histogram, or *Span is
// a cheap no-op. Engine code therefore threads an optional registry without
// guarding call sites:
//
//	var reg *obs.Registry // nil: telemetry disabled
//	sp := obs.StartSpan(reg, "timing_propagate", "sched", "worksteal")
//	... hot work ...
//	sp.End() // records into timing_propagate_seconds only when enabled
//
// BenchmarkArenaPropagationObs in internal/timing pins the disabled path to
// <2% overhead over the bare kernel; scripts/bench_trajectory.sh records the
// ratio as metrics_overhead in BENCH_timing.json.
//
// # Spans
//
// StartSpan/End is deliberately minimal tracing: one monotonic timestamp at
// start, one histogram observation at end, labels carried through. Phases of
// the engine (arena build, levelize, propagation per scheduler, dirty-cone
// re-propagation, closure rounds) each wrap themselves in a span, so
// GET /metrics exposes per-phase duration distributions without any
// collector infrastructure.
package obs
