package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSpanTreeConstruction(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "request")
	if root == nil {
		t.Fatal("Start returned nil span on live tracer")
	}
	root.SetAttr("route", "/design/{id}/close")

	ctx1, child := StartSpan(ctx, "closure_run")
	child.Event("move accepted")
	_, grand := StartSpan(ctx1, "timing_propagate")
	grand.End()
	child.End()
	root.End()

	traces := tr.Recent()
	if len(traces) != 1 {
		t.Fatalf("Recent() = %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.ID != root.TraceID() {
		t.Errorf("trace id = %s, want %s", got.ID, root.TraceID())
	}
	if got.Name != "request" {
		t.Errorf("trace name = %q, want request", got.Name)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["timing_propagate"].Parent != byName["closure_run"].SpanID {
		t.Error("timing_propagate not parented under closure_run")
	}
	if byName["closure_run"].Parent != byName["request"].SpanID {
		t.Error("closure_run not parented under request root")
	}
	if !byName["request"].Parent.IsZero() {
		t.Error("root span should have zero parent")
	}
	if got.RootAttr("route") != "/design/{id}/close" {
		t.Errorf("RootAttr(route) = %q", got.RootAttr("route"))
	}
	if len(byName["closure_run"].Events) != 1 || byName["closure_run"].Events[0].Msg != "move accepted" {
		t.Errorf("closure_run events = %+v", byName["closure_run"].Events)
	}
	// Span ids must be unique and non-zero.
	seen := map[SpanID]bool{}
	for _, s := range got.Spans {
		if s.SpanID.IsZero() || seen[s.SpanID] {
			t.Errorf("bad span id %s", s.SpanID)
		}
		seen[s.SpanID] = true
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.SetError(errors.New("boom"))
	sp.End()
	if got := sp.TraceID(); !got.IsZero() {
		t.Errorf("nil span TraceID = %s", got)
	}
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Error("nil tracer lists traces")
	}
	if _, ok := tr.Get("0123456789abcdef0123456789abcdef"); ok {
		t.Error("nil tracer Get ok")
	}
	// Untraced context: StartSpan and StartOp degrade to no-ops.
	ctx2, child := StartSpan(ctx, "child")
	if child != nil {
		t.Fatal("StartSpan on untraced ctx returned a span")
	}
	if ctx2 != ctx {
		t.Error("StartSpan on untraced ctx should return ctx unchanged")
	}
	_, op := StartOp(ctx, nil, "phase")
	if op != nil {
		t.Fatal("StartOp with nil registry and untraced ctx returned an op")
	}
	op.SetError(errors.New("x"))
	op.Span().Event("y")
	op.End()
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{})
	_, root := tr.Start(context.Background(), "r")
	root.End()
	root.End() // second End must not double-record or double-finish
	if n := len(tr.Recent()); n != 1 {
		t.Fatalf("Recent() = %d traces after double End, want 1", n)
	}
	if n := len(tr.Recent()[0].Spans); n != 1 {
		t.Fatalf("%d spans after double End, want 1", n)
	}
}

func TestRecorderRingAndPinning(t *testing.T) {
	tr := New(Options{Capacity: 4, SlowCapacity: 2, SlowThreshold: time.Hour})
	// One error trace: pinned despite being fast.
	_, errRoot := tr.Start(context.Background(), "errreq")
	errRoot.SetError(errors.New("exploded"))
	errRoot.End()
	errID := errRoot.TraceID()

	// Flood the recent ring with fast healthy traces.
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("ok%d", i))
		sp.End()
	}

	recent := tr.Recent()
	if len(recent) != 5 { // 4 recent + 1 pinned error rotated out
		t.Fatalf("Recent() = %d, want 5", len(recent))
	}
	if recent[0].Name != "ok9" {
		t.Errorf("newest = %q, want ok9", recent[0].Name)
	}
	got, ok := tr.Get(errID.String())
	if !ok || !got.Err {
		t.Fatalf("pinned error trace not retrievable: ok=%v", ok)
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].ID != errID {
		t.Fatalf("Slow() = %d entries", len(slow))
	}
	if _, ok := tr.Get("not-a-trace-id"); ok {
		t.Error("Get accepted malformed id")
	}
}

// TestGetNewestWins: a client that reuses one trace id across requests
// (wrong, but common) gets its NEWEST trace from Get, agreeing with the
// newest-first list order.
func TestGetNewestWins(t *testing.T) {
	tr := New(Options{Capacity: 4, SlowThreshold: time.Hour})
	tid, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	sid, _ := ParseSpanID("00f067aa0ba902b7")
	for _, name := range []string{"first", "second"} {
		_, sp := tr.StartRemote(context.Background(), name, tid, sid)
		sp.End()
	}
	got, ok := tr.Get(tid.String())
	if !ok || got.Name != "second" {
		t.Fatalf("Get = %v (ok=%v), want the newest trace \"second\"", got, ok)
	}
}

func TestSlowThresholdPinning(t *testing.T) {
	tr := New(Options{Capacity: 1, SlowCapacity: 4, SlowThreshold: time.Nanosecond})
	_, sp := tr.Start(context.Background(), "slowreq")
	time.Sleep(time.Millisecond)
	sp.End()
	id := sp.TraceID()
	// Evict from the recent ring.
	_, sp2 := tr.Start(context.Background(), "other")
	time.Sleep(time.Millisecond)
	sp2.End()
	if got, ok := tr.Get(id.String()); !ok || got.Name != "slowreq" {
		t.Fatal("slow trace was evicted despite pinning")
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Options{MaxSpans: 8})
	ctx, root := tr.Start(context.Background(), "r")
	for i := 0; i < 20; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	got := tr.Recent()[0]
	if len(got.Spans) != 8 {
		t.Errorf("spans = %d, want 8 (capped)", len(got.Spans))
	}
	// 20 children + 1 root attempted, 8 kept.
	if got.Dropped != 13 {
		t.Errorf("Dropped = %d, want 13", got.Dropped)
	}
}

func TestRemoteJoin(t *testing.T) {
	inboundTID, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	inboundSID, _ := ParseSpanID("00f067aa0ba902b7")
	tr := New(Options{})
	_, root := tr.StartRemote(context.Background(), "request", inboundTID, inboundSID)
	root.End()
	got, ok := tr.Get("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("joined trace not retrievable by inbound id")
	}
	if got.Spans[0].Parent != inboundSID {
		t.Errorf("root parent = %s, want inbound %s", got.Spans[0].Parent, inboundSID)
	}
	// The remote parent is not a local span, so the root is still the tree root.
	if got.rootSpanID() != root.SpanID() {
		t.Error("remote-joined root not detected as tree root")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), SpanID{0, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := FormatTraceparent(tid, sid)
	gt, gs, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("round trip failed: %q -> %s %s %v", h, gt, gs, ok)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Errorf("rejected valid header %q", valid)
	}
	// Future version with extra fields is accepted per spec.
	if _, _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("rejected future-version header with trailing field")
	}
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",    // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0z",  // bad flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 extra field
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed header %q", h)
		}
	}
}

func TestParseIDs(t *testing.T) {
	if _, ok := ParseTraceID("00000000000000000000000000000000"); ok {
		t.Error("accepted zero trace id")
	}
	if _, ok := ParseSpanID("xyz"); ok {
		t.Error("accepted short span id")
	}
	tid := NewTraceID()
	if got, ok := ParseTraceID(tid.String()); !ok || got != tid {
		t.Error("trace id string round trip failed")
	}
}

func TestStartOpBothHalves(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "r")
	opCtx, op := StartOp(ctx, reg, "timing_propagate", "core", "arena")
	if op == nil || op.Span() == nil {
		t.Fatal("StartOp with live registry+trace returned nil halves")
	}
	if FromContext(opCtx) != op.Span() {
		t.Error("StartOp context does not carry the child span")
	}
	op.End()
	root.End()

	// Histogram half recorded (same name+labels resolves to the same series).
	hist := reg.Histogram("timing_propagate_seconds", obs.LatencyBuckets, "core", "arena")
	if got := hist.Snapshot().Count; got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}
	// Trace half recorded with labels as attrs.
	got := tr.Recent()[0]
	var found bool
	for _, s := range got.Spans {
		if s.Name == "timing_propagate" {
			found = true
			if len(s.Attrs) != 1 || s.Attrs[0] != (Attr{Key: "core", Value: "arena"}) {
				t.Errorf("span attrs = %+v", s.Attrs)
			}
		}
	}
	if !found {
		t.Fatal("timing_propagate span missing from trace")
	}

	// Metrics-only (untraced ctx): histogram still records.
	_, op2 := StartOp(context.Background(), reg, "timing_propagate", "core", "arena")
	if op2 == nil {
		t.Fatal("StartOp with registry but no trace returned nil")
	}
	op2.End()
	if got := hist.Snapshot().Count; got != 2 {
		t.Errorf("metrics-only op did not record: count = %d", got)
	}
}

// TestTraceHammer exercises concurrent span creation/annotation across many
// goroutines of many traces racing Recent/Get readers — run under -race in CI.
func TestTraceHammer(t *testing.T) {
	tr := New(Options{Capacity: 8, SlowCapacity: 4, SlowThreshold: time.Microsecond, MaxSpans: 256})
	const traces, workers, spansPer = 16, 8, 20
	var wg sync.WaitGroup
	for i := 0; i < traces; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, root := tr.Start(context.Background(), fmt.Sprintf("req%d", i))
			root.SetAttr("i", fmt.Sprint(i))
			var inner sync.WaitGroup
			for w := 0; w < workers; w++ {
				inner.Add(1)
				go func(w int) {
					defer inner.Done()
					for s := 0; s < spansPer; s++ {
						c, sp := StartSpan(ctx, "work")
						sp.SetAttr("w", fmt.Sprint(w))
						sp.Event("tick")
						if s%7 == 0 {
							sp.SetError(errors.New("transient"))
						}
						_, g := StartSpan(c, "inner")
						g.End()
						sp.End()
					}
				}(w)
			}
			inner.Wait()
			root.End()
		}(i)
	}
	// Readers race the writers.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, got := range tr.Recent() {
					_ = got.RootAttr("i")
					tr.Get(got.ID.String())
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	for _, got := range tr.Recent() {
		if got.Dropped == 0 && len(got.Spans) != workers*spansPer*2+1 {
			t.Errorf("trace %s: %d spans, want %d", got.Name, len(got.Spans), workers*spansPer*2+1)
		}
	}
}

// BenchmarkDisabledPath pins the cost of the no-op path: an untraced context
// through StartSpan must not allocate.
func BenchmarkDisabledPath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := StartSpan(ctx, "work")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	}
}
