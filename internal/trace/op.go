package trace

import (
	"context"

	"repro/internal/obs"
)

// Op is one instrumented operation: a duration histogram observation (the
// obs side) and a trace span (the causality side) opened and closed
// together, so a phase can never drift between the two views. Either half
// may be absent — nil registry, untraced context — and a fully disabled Op
// is nil itself; every method is nil-safe.
type Op struct {
	span *Span
	hist *obs.Span
}

// StartOp is the single instrumentation point for engine phases: it opens
// an obs.Span recording into "<name>_seconds{labels...}" on reg AND a trace
// child span named name (labels become attributes) under the context's
// active span. The returned context carries the child span for deeper
// phases. Both reg and an untraced ctx degrade independently; with neither,
// StartOp returns (ctx, nil) and the nil Op's End is a no-op.
func StartOp(ctx context.Context, reg *obs.Registry, name string, labels ...string) (context.Context, *Op) {
	hist := obs.StartSpan(reg, name, labels...)
	ctx, span := StartSpan(ctx, name)
	if hist == nil && span == nil {
		return ctx, nil
	}
	for i := 0; i+1 < len(labels); i += 2 {
		span.SetAttr(labels[i], labels[i+1])
	}
	return ctx, &Op{span: span, hist: hist}
}

// Span exposes the trace half (nil when the request is untraced) for extra
// attributes or events.
func (o *Op) Span() *Span {
	if o == nil {
		return nil
	}
	return o.span
}

// SetError marks the trace span failed (histograms record regardless).
func (o *Op) SetError(err error) {
	if o == nil {
		return
	}
	o.span.SetError(err)
}

// End closes both halves: the histogram observes the elapsed seconds and
// the span completes into its trace.
func (o *Op) End() {
	if o == nil {
		return
	}
	o.hist.End()
	o.span.End()
}
