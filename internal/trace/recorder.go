package trace

import "sync"

// recorder is the flight recorder: two rings of completed traces. The recent
// ring churns with every completion; the slow ring only admits traces that
// crossed the latency threshold or carried an error, so a burst of fast
// healthy traffic can never evict the one trace that explains an incident.
type recorder struct {
	mu     sync.Mutex
	recent ring
	slow   ring
}

// ring is a fixed-capacity circular buffer of traces, newest overwriting
// oldest.
type ring struct {
	buf  []*Trace
	next int // index the next add writes
	full bool
}

func (r *ring) init(capacity int) { r.buf = make([]*Trace, capacity) }

func (r *ring) add(t *Trace) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// list returns the ring's traces newest-first.
func (r *ring) list() []*Trace {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// find scans newest-first, so a client that (wrongly but commonly) reuses
// one trace id across requests still gets its latest trace back.
func (r *ring) find(id TraceID) (*Trace, bool) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	for i := 1; i <= n; i++ {
		if t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; t != nil && t.ID == id {
			return t, true
		}
	}
	return nil, false
}

func (rec *recorder) init(capacity, slowCapacity int) {
	rec.recent.init(capacity)
	rec.slow.init(slowCapacity)
}

func (rec *recorder) add(t *Trace, pin bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.recent.add(t)
	if pin {
		rec.slow.add(t)
	}
}

func (rec *recorder) recentList() []*Trace {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := rec.recent.list()
	seen := make(map[TraceID]bool, len(out))
	for _, t := range out {
		seen[t.ID] = true
	}
	// Pinned traces that already rotated out of the recent ring stay listed.
	for _, t := range rec.slow.list() {
		if !seen[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

func (rec *recorder) slowList() []*Trace {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.slow.list()
}

func (rec *recorder) get(id TraceID) (*Trace, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if t, ok := rec.recent.find(id); ok {
		return t, true
	}
	return rec.slow.find(id)
}
