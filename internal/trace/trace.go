package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across every layer it touches,
// in the W3C trace-context format (16 bytes, rendered as 32 lowercase hex
// digits). The zero value is invalid.
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex digits). The
// zero value means "no span" (a root span's parent).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the all-zero "no span" value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-hex-digit trace id; ok is false for malformed or
// all-zero input.
func ParseTraceID(src string) (TraceID, bool) {
	var t TraceID
	if len(src) != 32 || !isHex(src) {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(src)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID decodes a 16-hex-digit span id; ok is false for malformed or
// all-zero input.
func ParseSpanID(src string) (SpanID, bool) {
	var s SpanID
	if len(src) != 16 || !isHex(src) {
		return s, false
	}
	if _, err := hex.Decode(s[:], []byte(src)); err != nil || s.IsZero() {
		return SpanID{}, false
	}
	return s, true
}

// NewTraceID mints a random trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		if _, err := rand.Read(t[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; telemetry
			// falls back to a timestamp rather than taking the process down.
			binary.BigEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
			binary.BigEndian.PutUint64(t[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
		}
	}
	return t
}

// NewSpanID mints a random span id — clients use it as the parent id in an
// outbound traceparent header so the server's root span links back to them.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		if _, err := rand.Read(s[:]); err != nil {
			binary.BigEndian.PutUint64(s[:], uint64(time.Now().UnixNano()))
		}
	}
	return s
}

// Attr is one key/value annotation on a span. Values are strings — spans
// describe phases, not payloads.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one timestamped point annotation inside a span.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// SpanRecord is one completed span as retained by the flight recorder.
// Parent is the zero SpanID for the trace's root (or, on a joined remote
// trace, the remote caller's span id, which also resolves to no local span).
type SpanRecord struct {
	SpanID   SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Events   []Event
	Err      string // non-empty when the span was marked failed
}

// Trace is one completed trace: the root span's identity plus every span
// recorded under it, in completion order (children before their parents).
type Trace struct {
	ID       TraceID
	Name     string // root span name
	Start    time.Time
	Duration time.Duration
	Err      bool // any span failed
	Spans    []SpanRecord
	// Dropped counts spans discarded beyond the per-trace cap; zero means the
	// span set is complete.
	Dropped int
}

// RootAttr returns the root span's value for key ("" when absent) — the
// idiomatic way to read request-level annotations like the matched route.
func (t *Trace) RootAttr(key string) string {
	for i := range t.Spans {
		if t.Spans[i].SpanID == t.rootSpanID() {
			for _, a := range t.Spans[i].Attrs {
				if a.Key == key {
					return a.Value
				}
			}
			return ""
		}
	}
	return ""
}

// rootSpanID finds the span whose parent is not recorded in the trace — the
// root (spans complete children-first, so the root is normally last).
func (t *Trace) rootSpanID() SpanID {
	present := make(map[SpanID]bool, len(t.Spans))
	for i := range t.Spans {
		present[t.Spans[i].SpanID] = true
	}
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if !present[t.Spans[i].Parent] {
			return t.Spans[i].SpanID
		}
	}
	return SpanID{}
}

// active is the mutable collector behind one in-flight trace. Spans from any
// goroutine of the request append here under mu; the root span's End seals
// it and hands the finished Trace to the tracer's recorder.
type active struct {
	tracer  *Tracer
	id      TraceID
	salt    [4]byte // high half of minted span ids
	nextSID uint32  // atomic; low half of minted span ids

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	err     bool
}

// newSpanID mints a span id unique within the trace: a per-trace random salt
// over an atomic counter (counters start at 1, so the id is never zero).
func (a *active) newSpanID() SpanID {
	var s SpanID
	copy(s[:4], a.salt[:])
	binary.BigEndian.PutUint32(s[4:], atomic.AddUint32(&a.nextSID, 1))
	return s
}

// record appends one completed span, honoring the tracer's per-trace cap.
func (a *active) record(rec SpanRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec.Err != "" {
		a.err = true
	}
	if len(a.spans) >= a.tracer.opt.MaxSpans {
		a.dropped++
		return
	}
	a.spans = append(a.spans, rec)
}

// Span is one live timed operation. Spans are created by Tracer.Start (trace
// roots) and StartSpan (children); every method is safe on a nil *Span, so
// un-traced code paths cost one pointer test and nothing else.
type Span struct {
	a      *active
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool

	mu     sync.Mutex // guards attrs/events: callbacks may annotate cross-goroutine
	attrs  []Attr
	events []Event
	err    string
	ended  atomic.Bool
}

// TraceID reports the id of the trace the span belongs to (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.a.id
}

// SpanID reports the span's own id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Event records a timestamped point annotation.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{Time: time.Now(), Msg: msg})
	s.mu.Unlock()
}

// SetError marks the span (and therefore its trace) failed. A failed trace
// is always pinned by the flight recorder's error/slow ring. Nil errors are
// ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End completes the span, appending its record to the trace. Ending the root
// span seals the trace and offers it to the tracer's flight recorder. End is
// idempotent: second and later calls are no-ops.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	now := time.Now()
	s.mu.Lock()
	rec := SpanRecord{
		SpanID:   s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: now.Sub(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
		Err:      s.err,
	}
	s.mu.Unlock()
	s.a.record(rec)
	if s.root {
		s.a.tracer.finish(s.a, rec)
	}
}

// ctxKey carries the active span through a context chain.
type ctxKey struct{}

// ContextWithSpan returns a context carrying span as the active span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the context's active span, or nil when the request is
// not being traced — the nil is safe to use directly.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns the
// derived context carrying it. When the context carries no span (tracing
// disabled, or an untraced request) it returns (ctx, nil) after a single
// context lookup — the pinned-cheap disabled path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{
		a:      parent.a,
		id:     parent.a.newSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return ContextWithSpan(ctx, child), child
}

// Options configures a Tracer. The zero value keeps the last 64 completed
// traces, pins up to 64 slow/error traces above a 100ms root threshold, and
// caps each trace at 4096 spans.
type Options struct {
	// Capacity is the recent-trace ring size (0 means 64; minimum 1).
	Capacity int
	// SlowCapacity is the pinned slow/error ring size (0 means 64; minimum 1).
	SlowCapacity int
	// SlowThreshold is the root-span duration at or above which a completed
	// trace is pinned into the slow ring regardless of recent-ring churn
	// (0 means 100ms; negative pins nothing on latency, errors still pin).
	SlowThreshold time.Duration
	// MaxSpans caps spans retained per trace; completions beyond it are
	// dropped and counted in Trace.Dropped (0 means 4096).
	MaxSpans int
}

func (o Options) resolve() Options {
	if o.Capacity <= 0 {
		o.Capacity = 64
	}
	if o.SlowCapacity <= 0 {
		o.SlowCapacity = 64
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 4096
	}
	return o
}

// Tracer mints traces and retains completed ones in its flight recorder. All
// methods are goroutine-safe, and all methods on a nil *Tracer are no-ops
// returning nil spans, so a server can thread one pointer everywhere and
// disable tracing by leaving it nil.
type Tracer struct {
	opt Options
	rec recorder
}

// New returns a tracer with its flight recorder sized by opt.
func New(opt Options) *Tracer {
	t := &Tracer{opt: opt.resolve()}
	t.rec.init(t.opt.Capacity, t.opt.SlowCapacity)
	return t
}

// Start opens a new root span (minting a fresh trace id) and returns the
// context carrying it. On a nil tracer it returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartRemote(ctx, name, TraceID{}, SpanID{})
}

// StartRemote opens a root span that joins an inbound trace: traceID names
// the caller's trace (zero mints a fresh one) and parent the caller's span
// (zero for none). This is the server entry point behind W3C traceparent.
func (t *Tracer) StartRemote(ctx context.Context, name string, traceID TraceID, parent SpanID) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID.IsZero() {
		traceID = NewTraceID()
	}
	a := &active{tracer: t, id: traceID}
	copy(a.salt[:], traceID[6:10]) // trace-derived salt keeps ids stable-ish per trace
	if a.salt == [4]byte{} {
		a.salt = [4]byte{0x5a, 0xa5, 0x3c, 0xc3}
	}
	sp := &Span{
		a:      a,
		id:     a.newSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		root:   true,
	}
	return ContextWithSpan(ctx, sp), sp
}

// finish seals an active trace once its root span ended and offers it to
// the recorder.
func (t *Tracer) finish(a *active, root SpanRecord) {
	a.mu.Lock()
	tr := &Trace{
		ID:       a.id,
		Name:     root.Name,
		Start:    root.Start,
		Duration: root.Duration,
		Err:      a.err,
		Spans:    a.spans,
		Dropped:  a.dropped,
	}
	a.spans = nil // the trace owns the slice now; a straggler span would drop
	a.mu.Unlock()
	slow := t.opt.SlowThreshold >= 0 && tr.Duration >= t.opt.SlowThreshold
	t.rec.add(tr, slow || tr.Err)
}

// Recent lists the recorder's completed traces, newest first: the recent
// ring followed by pinned slow/error traces that have already rotated out of
// it (no trace appears twice).
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	return t.rec.recentList()
}

// Slow lists the pinned slow/error traces, newest first.
func (t *Tracer) Slow() []*Trace {
	if t == nil {
		return nil
	}
	return t.rec.slowList()
}

// Get returns the retained trace with the given hex id, searching both
// rings.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	tid, ok := ParseTraceID(id)
	if !ok {
		return nil, false
	}
	return t.rec.get(tid)
}
