package trace

import "strings"

// Traceparent formatting per the W3C Trace Context recommendation:
// version "00", then trace id, parent span id, and flags, dash-separated
// lowercase hex. We always emit flags 01 (sampled) — a trace that reached
// the recorder was by definition recorded.
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01

// FormatTraceparent renders a traceparent header value for the given ids.
func FormatTraceparent(traceID TraceID, spanID SpanID) string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(traceID.String())
	b.WriteByte('-')
	b.WriteString(spanID.String())
	b.WriteString("-01")
	return b.String()
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version except the reserved "ff", requires well-formed non-zero trace and
// parent ids, and tolerates future-version trailing fields after the flags.
func ParseTraceparent(header string) (TraceID, SpanID, bool) {
	parts := strings.Split(header, "-")
	if len(parts) < 4 {
		return TraceID{}, SpanID{}, false
	}
	version := parts[0]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return TraceID{}, SpanID{}, false
	}
	if version == "00" && len(parts) != 4 {
		return TraceID{}, SpanID{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	sid, ok := ParseSpanID(parts[2])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
