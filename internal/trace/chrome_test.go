package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeGolden pins the exact Chrome trace-event JSON for a synthetic
// trace built from fixed timestamps — every field (name, ph, ts, dur, pid,
// tid, args) byte-for-byte.
func TestChromeGolden(t *testing.T) {
	tid, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	base := time.UnixMicro(1_700_000_000_000_000).UTC()
	root := SpanID{1, 0, 0, 0, 0, 0, 0, 1}
	child := SpanID{1, 0, 0, 0, 0, 0, 0, 2}
	grand := SpanID{1, 0, 0, 0, 0, 0, 0, 3}
	tr := &Trace{
		ID:       tid,
		Name:     "request",
		Start:    base,
		Duration: 5 * time.Millisecond,
		Spans: []SpanRecord{
			{
				SpanID: grand, Parent: child, Name: "wal_fsync",
				Start: base.Add(2 * time.Millisecond), Duration: 500 * time.Microsecond,
			},
			{
				SpanID: child, Parent: root, Name: "wal_append",
				Start: base.Add(1 * time.Millisecond), Duration: 2 * time.Millisecond,
				Attrs:  []Attr{{Key: "edits", Value: "3"}},
				Events: []Event{{Time: base.Add(1500 * time.Microsecond), Msg: "synced"}},
			},
			{
				SpanID: root, Name: "request",
				Start: base, Duration: 5 * time.Millisecond,
				Err: "deadline exceeded",
			},
		},
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}

	const want = `{
 "traceEvents": [
  {
   "name": "wal_fsync",
   "ph": "X",
   "ts": 2000,
   "dur": 500,
   "pid": 1,
   "tid": 2,
   "args": {
    "parent_id": "0100000000000002",
    "span_id": "0100000000000003",
    "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"
   }
  },
  {
   "name": "wal_append",
   "ph": "X",
   "ts": 1000,
   "dur": 2000,
   "pid": 1,
   "tid": 1,
   "args": {
    "edits": "3",
    "event:synced": "500µs",
    "parent_id": "0100000000000001",
    "span_id": "0100000000000002",
    "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"
   }
  },
  {
   "name": "request",
   "ph": "X",
   "ts": 0,
   "dur": 5000,
   "pid": 1,
   "tid": 0,
   "args": {
    "error": "deadline exceeded",
    "span_id": "0100000000000001",
    "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeSchema validates a live-recorded trace against the trace-event
// schema: required fields present, complete events, µs units, nesting depth
// in tid.
func TestChromeSchema(t *testing.T) {
	tracer := New(Options{})
	ctx, root := tracer.Start(context.Background(), "request")
	c1, sp := StartSpan(ctx, "closure_run")
	_, sp2 := StartSpan(c1, "timing_propagate")
	sp2.End()
	sp.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tracer.Recent()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(doc.TraceEvents))
	}
	depths := map[string]float64{"request": 0, "closure_run": 1, "timing_propagate": 2}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event missing %q: %v", field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("ph = %v, want X", ev["ph"])
		}
		name := ev["name"].(string)
		if ev["tid"].(float64) != depths[name] {
			t.Errorf("%s tid = %v, want %v", name, ev["tid"], depths[name])
		}
	}
}

func TestChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Errorf("empty export should render traceEvents as [], got %v", doc.TraceEvents)
	}
}
