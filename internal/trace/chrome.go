package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-event
// JSON format, loadable in Perfetto or chrome://tracing. Timestamps and
// durations are microseconds; tid carries the span's position in the tree
// (spans of one trace share a pid).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the traces as Chrome trace-event JSON. Each trace
// becomes one pid (1-based, in slice order); within a trace each span gets a
// tid equal to its depth in the span tree so lanes nest visually, and the
// span's attributes, events, and error land in args. Timestamps are offset
// from the earliest span start across all traces, so the export is stable
// for fixed inputs.
func WriteChrome(w io.Writer, traces []*Trace) error {
	var events []chromeEvent
	var epoch int64
	first := true
	for _, t := range traces {
		for i := range t.Spans {
			us := t.Spans[i].Start.UnixMicro()
			if first || us < epoch {
				epoch, first = us, false
			}
		}
	}
	for pid, t := range traces {
		depth := spanDepths(t)
		for i := range t.Spans {
			sp := &t.Spans[i]
			args := map[string]string{"trace_id": t.ID.String(), "span_id": sp.SpanID.String()}
			if !sp.Parent.IsZero() {
				args["parent_id"] = sp.Parent.String()
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			for _, ev := range sp.Events {
				args["event:"+ev.Msg] = ev.Time.Sub(sp.Start).String()
			}
			if sp.Err != "" {
				args["error"] = sp.Err
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   sp.Start.UnixMicro() - epoch,
				Dur:  sp.Duration.Microseconds(),
				Pid:  pid + 1,
				Tid:  depth[sp.SpanID],
				Args: args,
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanDepths computes each span's depth under the trace root (root = 0); a
// span whose parent is unrecorded (the root, or post-cap drops) sits at 0.
func spanDepths(t *Trace) map[SpanID]int {
	parent := make(map[SpanID]SpanID, len(t.Spans))
	for i := range t.Spans {
		parent[t.Spans[i].SpanID] = t.Spans[i].Parent
	}
	depth := make(map[SpanID]int, len(t.Spans))
	for id := range parent {
		d, cur := 0, id
		for d <= len(t.Spans) { // cycle guard; well-formed trees never trip it
			p, ok := parent[cur]
			if !ok {
				break
			}
			if _, local := parent[p]; !local {
				break
			}
			d++
			cur = p
		}
		depth[id] = d
	}
	return depth
}
