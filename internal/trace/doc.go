// Package trace is the repo's zero-dependency hierarchical tracer: per-request
// span trees with W3C trace-context interop and an in-process flight recorder.
//
// Where package obs answers "how long do closure runs take on average?", this
// package answers "where did THAT 3-second /design/{id}/close go?" — the two
// views come from one instrumentation point, StartOp, which opens an
// obs duration histogram and a trace child span together.
//
// # Model
//
// A Tracer mints traces (Tracer.Start, or Tracer.StartRemote to join an
// inbound traceparent). The root *Span travels by context; engine phases open
// children with StartSpan / StartOp, annotate them with SetAttr/Event/
// SetError, and End them. Ending the root seals the trace and hands it to the
// flight recorder. All of it is nil-safe: a nil Tracer, a nil *Span from an
// untraced context, and a nil *Op all make every call a no-op, so the
// disabled path costs one context lookup and one pointer test.
//
// Spans of one trace may complete from many goroutines (closure trials run
// concurrently on session forks); the per-trace collector is mutex-protected
// and span ids come from an atomic counter, so concurrent child spans are
// safe. Each trace retains at most Options.MaxSpans spans; excess completions
// are counted in Trace.Dropped rather than growing without bound.
//
// # Flight recorder
//
// The recorder keeps two rings: the last Capacity completed traces, and a
// separate pinned ring of SlowCapacity traces whose root exceeded
// SlowThreshold or which carried an error — a burst of fast healthy traffic
// can never evict the trace that explains an incident. Tracer.Recent lists
// both (deduplicated, newest first), Tracer.Get retrieves one by hex id.
// rcserve exposes them at GET /debug/traces and /debug/traces/{id}.
//
// # Interop
//
// ParseTraceparent / FormatTraceparent implement the W3C `traceparent`
// header (version 00), and WriteChrome renders retained traces as Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing — also available
// as /debug/traces/{id}?format=chrome and `statime -trace out.json`.
package trace
