package wire

import (
	"math"
	"testing"
)

// TestSectionVNumbers verifies that the §V process parameters reproduce the
// paper's element values: "a capacitance of 0.01 pF and resistance 180 ohms
// between gates, and a resistance of 30 ohms and capacitance of 0.013 pF for
// each gate" (E9 in DESIGN.md).
func TestSectionVNumbers(t *testing.T) {
	tech := PaperTech()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}

	// Inter-gate segment: 24 µm of 4 µm-wide poly over field oxide.
	seg := Segment{Layer: "poly", Length: 24 * Micron, Width: 4 * Micron}
	r, c, err := tech.LineRC(seg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-180) > 1e-9 {
		t.Errorf("inter-gate resistance = %g, paper says 180", r)
	}
	// Parallel-plate field capacitance: ~0.011 pF vs the paper's rounded
	// 0.01 pF; accept 15%.
	if math.Abs(c-0.01e-12) > 0.15*0.01e-12 {
		t.Errorf("inter-gate capacitance = %g pF, paper says ~0.01 pF", c/1e-12)
	}

	// Gate: 4 µm square of thin oxide crossed by the poly line.
	gr, gc, err := tech.GateRC(4 * Micron)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr-30) > 1e-9 {
		t.Errorf("gate resistance = %g, paper says 30", gr)
	}
	if math.Abs(gc-0.013e-12) > 0.1*0.013e-12 {
		t.Errorf("gate capacitance = %g pF, paper says ~0.013 pF", gc/1e-12)
	}
}

func TestCapPerArea(t *testing.T) {
	tech := PaperTech()
	// Thin/thick oxide ratio is exactly the thickness ratio.
	ratio := tech.GateCapPerArea() / tech.FieldCapPerArea()
	if math.Abs(ratio-3000.0/400) > 1e-12 {
		t.Errorf("cap-per-area ratio = %g, want 7.5", ratio)
	}
}

func TestSquares(t *testing.T) {
	s := Segment{Layer: "poly", Length: 24, Width: 4}
	if got := s.Squares(); got != 6 {
		t.Errorf("Squares = %g, want 6", got)
	}
	if got := (Segment{Width: 0}).Squares(); !math.IsInf(got, 1) {
		t.Errorf("zero-width Squares = %g, want +Inf", got)
	}
}

func TestMetalLayer(t *testing.T) {
	tech := PaperTech() // MetalSheetRes = 0 — the paper neglects it
	r, err := tech.Resistance(Segment{Layer: "metal", Length: 100 * Micron, Width: 4 * Micron})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("metal resistance = %g, want 0 (neglected)", r)
	}
	// Metal still has field capacitance.
	c, err := tech.Capacitance(Segment{Layer: "metal", Length: 100 * Micron, Width: 4 * Micron})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("metal capacitance = %g, want > 0", c)
	}
}

func TestErrors(t *testing.T) {
	tech := PaperTech()
	if _, err := tech.Resistance(Segment{Layer: "copper", Length: 1, Width: 1}); err == nil {
		t.Error("unknown layer accepted")
	}
	if _, err := tech.Resistance(Segment{Layer: "poly", Length: -1, Width: 1}); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := tech.Capacitance(Segment{Layer: "poly", Length: 1, Width: 0}); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := tech.LineRC(Segment{Layer: "nope", Length: 1, Width: 1}); err == nil {
		t.Error("LineRC accepted unknown layer")
	}
	if _, _, err := tech.GateRC(0); err == nil {
		t.Error("zero gate side accepted")
	}
	bad := Tech{PolySheetRes: -1, GateOxide: 1, FieldOxide: 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative sheet resistance validated")
	}
	bad2 := Tech{GateOxide: 0, FieldOxide: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("zero oxide validated")
	}
}
