// Package wire converts interconnect geometry and MOS process parameters
// into the lumped R and C values the RC-tree model consumes, reproducing the
// §V technology numbers of the paper: 4-micron features, polysilicon at
// 30 Ω/square, 400 Å gate oxide and 3000 Å field oxide, which yield 180 Ω
// and ~0.01 pF per 24 µm inter-gate poly segment and 30 Ω and ~0.013 pF per
// 4 µm × 4 µm gate.
package wire

import (
	"fmt"
	"math"
)

// Physical constants (SI).
const (
	// Epsilon0 is the vacuum permittivity in F/m.
	Epsilon0 = 8.854187817e-12
	// EpsilonSiO2 is the relative permittivity of silicon dioxide.
	EpsilonSiO2 = 3.9
)

// Unit helpers: the package works in SI internally; these constants convert
// from the datasheet-friendly units used in call sites.
const (
	Micron   = 1e-6  // m
	Angstrom = 1e-10 // m
)

// Tech bundles the process parameters of §V. All lengths are SI meters and
// sheet resistances Ω/square.
type Tech struct {
	// PolySheetRes is the polysilicon sheet resistance, Ω/square.
	PolySheetRes float64
	// MetalSheetRes is the metal sheet resistance, Ω/square; the paper
	// neglects metal resistance, so the default is 0.
	MetalSheetRes float64
	// GateOxide is the gate (thin) oxide thickness in meters.
	GateOxide float64
	// FieldOxide is the field (thick) oxide thickness in meters.
	FieldOxide float64
}

// PaperTech returns the §V parameters: 30 Ω/sq poly, 400 Å gate oxide,
// 3000 Å field oxide.
func PaperTech() Tech {
	return Tech{
		PolySheetRes: 30,
		GateOxide:    400 * Angstrom,
		FieldOxide:   3000 * Angstrom,
	}
}

// Validate rejects non-physical parameter sets.
func (t Tech) Validate() error {
	if t.PolySheetRes < 0 || t.MetalSheetRes < 0 {
		return fmt.Errorf("wire: negative sheet resistance")
	}
	if t.GateOxide <= 0 || t.FieldOxide <= 0 {
		return fmt.Errorf("wire: oxide thickness must be positive")
	}
	return nil
}

// GateCapPerArea returns the thin-oxide capacitance per area, F/m².
func (t Tech) GateCapPerArea() float64 {
	return Epsilon0 * EpsilonSiO2 / t.GateOxide
}

// FieldCapPerArea returns the field-oxide (routing) capacitance per area,
// F/m².
func (t Tech) FieldCapPerArea() float64 {
	return Epsilon0 * EpsilonSiO2 / t.FieldOxide
}

// Segment is a rectangular interconnect segment.
type Segment struct {
	// Layer selects the sheet resistance: "poly" or "metal".
	Layer string
	// Length is along the current direction; Width across it. Meters.
	Length, Width float64
}

// Squares returns the segment's aspect ratio Length/Width, the "number of
// squares" whose product with sheet resistance gives resistance.
func (s Segment) Squares() float64 {
	if s.Width <= 0 {
		return math.Inf(1)
	}
	return s.Length / s.Width
}

// Resistance returns the segment's end-to-end resistance in ohms.
func (t Tech) Resistance(s Segment) (float64, error) {
	if s.Length < 0 || s.Width <= 0 {
		return 0, fmt.Errorf("wire: segment needs Length >= 0 and Width > 0, got %gx%g", s.Length, s.Width)
	}
	switch s.Layer {
	case "poly":
		return t.PolySheetRes * s.Squares(), nil
	case "metal":
		return t.MetalSheetRes * s.Squares(), nil
	}
	return 0, fmt.Errorf("wire: unknown layer %q", s.Layer)
}

// Capacitance returns the segment's capacitance to substrate in farads,
// using the field-oxide parallel-plate value (fringing neglected, as in the
// paper).
func (t Tech) Capacitance(s Segment) (float64, error) {
	if s.Length < 0 || s.Width <= 0 {
		return 0, fmt.Errorf("wire: segment needs Length >= 0 and Width > 0, got %gx%g", s.Length, s.Width)
	}
	return t.FieldCapPerArea() * s.Length * s.Width, nil
}

// LineRC returns both values for a segment, the (R, C) pair of a URC
// element.
func (t Tech) LineRC(s Segment) (r, c float64, err error) {
	if r, err = t.Resistance(s); err != nil {
		return 0, 0, err
	}
	if c, err = t.Capacitance(s); err != nil {
		return 0, 0, err
	}
	return r, c, nil
}

// GateRC models a transistor gate crossed by a poly line of the given
// square dimensions: its resistance is the poly squares across the gate and
// its capacitance the thin-oxide plate.
func (t Tech) GateRC(side float64) (r, c float64, err error) {
	if side <= 0 {
		return 0, 0, fmt.Errorf("wire: gate side must be positive, got %g", side)
	}
	return t.PolySheetRes, t.GateCapPerArea() * side * side, nil
}
