package stats

import (
	"math"
	"math/rand"
	"testing"
)

// naiveVariance is the formula internal/mc used before Welford:
// E[x²] − E[x]², clamped at zero. Kept here as the regression reference —
// the cancellation test below demonstrates exactly how it fails.
func naiveVariance(values []float64) float64 {
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	n := float64(len(values))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance
}

// twoPassVariance is the numerically safe reference: subtract the mean
// first, then sum squares (population form).
func twoPassVariance(values []float64) float64 {
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var m2 float64
	for _, v := range values {
		d := v - mean
		m2 += d * d
	}
	return m2 / float64(len(values))
}

// TestWelfordCancellationRegression is the headline bugfix regression:
// samples whose nominal value is ~1e9× their spread. The old
// sumSq/n − mean² formula loses every significant digit of the variance
// (the two squared terms are ≈1e18, their true difference ≈1, and float64
// rounding noise at that magnitude is ≈2e2); Welford matches the two-pass
// reference to high relative accuracy.
func TestWelfordCancellationRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nominal = 1e9
	values := make([]float64, 2000)
	var w Welford
	for i := range values {
		values[i] = nominal + rng.NormFloat64() // spread σ = 1, mean = 1e9
		w.Add(values[i])
	}
	want := twoPassVariance(values)
	if want < 0.5 || want > 2 {
		t.Fatalf("reference variance %g implausible for unit-sigma noise", want)
	}
	// A single-pass pass at offset 1e9 keeps ~8 digits of the variance (the
	// centered updates still subtract 1e9-magnitude floats once); the naive
	// formula keeps none.
	if got := w.Var(); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("Welford variance = %.17g, reference = %.17g", got, want)
	}
	// And the old formula really does fail on exactly these samples — here it
	// goes negative and clamps to zero, reporting a spread-free distribution.
	// If this ever starts passing, the regression test lost its teeth.
	naive := naiveVariance(values)
	if rel := math.Abs(naive-want) / want; rel < 0.5 {
		t.Errorf("naive formula unexpectedly accurate: %g vs %g (rel err %g)", naive, want, rel)
	}
}

func TestWelfordMoments(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Var() != 0 || !math.IsInf(w.Min(), 1) || !math.IsInf(w.Max(), -1) {
		t.Errorf("empty accumulator: %+v", w)
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 { // the classic population-variance example
		t.Errorf("variance = %g, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("std = %g, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
	var single Welford
	single.Add(7)
	if single.Mean() != 7 || single.Var() != 0 || single.Min() != 7 || single.Max() != 7 {
		t.Errorf("singleton accumulator: %+v", single)
	}
}

// TestQuantileConvention pins the R-7 convention's small-n edge cases: the
// table is the contract every surface (mc, mcd, rcload) shares.
func TestQuantileConvention(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"n1 q0", []float64{7}, 0, 7},
		{"n1 q0.5", []float64{7}, 0.5, 7},
		{"n1 q1", []float64{7}, 1, 7},
		{"n2 min", []float64{1, 3}, 0, 1},
		{"n2 median midpoint", []float64{1, 3}, 0.5, 2},
		{"n2 max", []float64{1, 3}, 1, 3},
		{"n2 interior", []float64{1, 3}, 0.25, 1.5},
		{"n4 median", []float64{1, 2, 3, 4}, 0.5, 2.5},
		{"n5 exact rank q0.25", []float64{1, 2, 3, 4, 5}, 0.25, 2},
		{"n5 exact rank q0.5", []float64{1, 2, 3, 4, 5}, 0.5, 3},
		{"n5 exact rank q0.75", []float64{1, 2, 3, 4, 5}, 0.75, 4},
		{"n5 interpolated", []float64{1, 2, 3, 4, 5}, 0.9, 4.6},
		{"min is q0", []float64{-3, 0, 10}, 0, -3},
		{"max is q1", []float64{-3, 0, 10}, 1, 10},
		{"clamp below", []float64{1, 2}, -0.5, 1},
		{"clamp above", []float64{1, 2}, 1.5, 2},
	}
	for _, c := range cases {
		if got := Quantile(c.sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v, %g) = %g, want %g", c.name, c.sorted, c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty sample quantile = %g, want NaN", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("Percentile p50 = %g, want 5.5", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 99); math.Abs(got-9.91) > 1e-12 {
		t.Errorf("Percentile p99 = %g, want 9.91", got)
	}
}
