// Package stats holds the small, shared statistical kernels the repository's
// Monte Carlo and measurement layers agree on, so every surface reports the
// same numbers for the same samples.
//
// # Moments
//
// Welford is a single-pass mean/variance accumulator. The naive textbook
// formula Var = E[x²] − E[x]² cancels catastrophically when the mean is large
// relative to the spread: with values near 1e9 and a spread near 1, both
// terms are ≈1e18 and their float64 difference is pure rounding noise
// (≈2e2), so the reported standard deviation is garbage — or clamped to
// zero. Welford's recurrence tracks the centered second moment directly and
// stays accurate at any offset; TestWelfordCancellationRegression pins the
// failure mode. Variance is the population form (divide by n), matching the
// historical behavior of internal/mc.
//
// # Quantiles
//
// Quantile implements the one ordered-sample convention every caller shares:
// linear interpolation between order statistics with the q-th quantile at
// position q·(n−1) — the "R-7" rule of Hyndman & Fan (numpy and Excel's
// default). Concretely, for sorted x[0..n-1]:
//
//	pos  = q · (n−1)
//	Q(q) = x[⌊pos⌋] + (pos − ⌊pos⌋) · (x[⌈pos⌉] − x[⌊pos⌋])
//
// so Q(0) = min, Q(1) = max, exact ranks hit sample values exactly, n = 1
// returns the sole sample for every q, and the n = 2 median is the midpoint.
//
// Users of the convention:
//
//   - internal/mc and internal/mcd compute Monte Carlo delay/slack quantiles
//     with Quantile directly;
//   - cmd/rcload computes its latency p50/p99 with Percentile (the same rule
//     with q in percent);
//   - internal/obs histograms cannot see individual samples, so their
//     Quantile estimates this convention by linear interpolation inside the
//     containing fixed bucket (the Prometheus histogram_quantile estimate) —
//     same rule, bucket-resolution accuracy.
package stats

import "math"

// Welford is a single-pass accumulator of count, mean, centered second
// moment, and extrema. The zero value is an empty accumulator.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N reports the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance m2/n (0 when empty). Rounding can
// leave m2 a hair negative on degenerate inputs; it is clamped to 0.
func (w *Welford) Var() float64 {
	if w.n == 0 || w.m2 < 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (+Inf when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.Inf(1)
	}
	return w.min
}

// Max returns the largest observation (-Inf when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.Inf(-1)
	}
	return w.max
}

// Quantile returns the q-th quantile (q in [0, 1]) of an ascending-sorted
// sample by the package convention (see the package comment): linear
// interpolation between order statistics, position q·(n−1). Out-of-range q
// clamps to [0, 1]; an empty sample returns NaN.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile is Quantile with p in percent: Percentile(x, 99) == Quantile(x,
// 0.99). cmd/rcload's latency summaries are the main caller.
func Percentile(sorted []float64, p float64) float64 {
	return Quantile(sorted, p/100)
}
