// Package closure is the automated timing-closure engine: given a design
// session with negative slack, it searches for an ECO edit list — in the
// same setR/setC/setLine/scaleDriver/grow/prune grammar statime -eco
// replays — that drives WNS (and with it TNS) toward zero, and reports the
// closure trajectory plus the Pareto frontier of (cost, WNS) points visited.
//
// # The loop
//
// Each iteration ranks the failing endpoints of the session's slack report
// (worst first), generates candidate moves on the nets of each failing
// endpoint's critical upstream cone, evaluates every affordable candidate as
// a what-if trial — a Session.Fork absorbs the candidate's edits and answers
// the resulting WNS/TNS without touching the live session — and accepts the
// best move by slack gain per unit cost. The loop stops when WNS ≥ 0, the
// move budget or cost ceiling is exhausted, or no candidate improves timing.
//
// Trials are independent, so they evaluate concurrently across a worker
// pool by default; Options.Sequential forces one-at-a-time evaluation.
// Either way the accepted move sequence is identical: every trial computes
// the same numbers regardless of scheduling, and the argmax tie-breaks on
// candidate index. BenchmarkClosure measures the concurrency win.
//
// # Move generators
//
// Four generators mine a failing endpoint, all guided by the session's
// current state (never by a full re-analysis):
//
//   - upsizeDriver: scaleDriver by a fixed factor (0.7, 0.5) on each net of
//     the endpoint's critical cone — a stronger driver lowers every root
//     path's common resistance.
//   - tunedDriver: on the endpoint's own net, an opt.MaxParamStats bisection
//     over the driver scale finds the *largest* (cheapest) factor whose
//     certified TMax still meets the endpoint's local budget (required time
//     minus input arrival). Probes run against a CloneNetTree overlay, one
//     EditTree edit per driver edge per probe; the report's GuidedProbes/
//     GuidedEdits account them via opt.EditsPerProbe.
//   - rebufferWire: the highest-resistance distributed line on the failing
//     output's root path is cut to half length (setLine R/2 C/2) and the
//     repeater's input capacitance lands at the cut (addC) — the classical
//     long-wire repair, approximated within one net: the far half of the
//     wire is assumed re-driven by the inserted repeater, which the single-
//     tree model cannot represent, so the move is heuristic-optimistic and
//     the trial evaluates what the bounds actually certify.
//   - trimLoad / pruneStub: setC shrinks the endpoint's lumped load (a
//     smaller receiver), and prune removes the largest parasitic stub — a
//     subtree containing no designated or protected output — from a cone
//     net. Structural guards (stage-tapped and require-pinned outputs) are
//     respected by construction and enforced again by the trial Apply.
//
// # Cost model and the accept heuristic
//
// Costs are abstract area units; only their relative magnitudes matter, and
// they steer the frontier rather than model a process: upsizing a driver by
// 1/f costs 8·(1/f−1) (driver area grows with drive strength), a repeater
// costs 6, a load trim costs 2 plus the capacitance removed, and a stub
// prune costs 1.5 (an ECO's disruption is never free). A candidate is
// accepted only if it does not regress WNS and improves the combined
// objective ΔWNS + 0.05·ΔTNS; among improving candidates the engine
// maximizes gain per unit cost. The TNS term matters when several endpoints
// tie at the worst slack: fixing one leaves WNS unchanged, and TNS progress
// keeps the loop moving instead of stalling.
//
// Every trial visited — accepted or not — contributes a (cumulative cost,
// WNS) point; the report's Pareto field keeps the non-dominated frontier,
// exposing the full cost/benefit trade-off instead of only the greedy path.
package closure
