package closure

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/timing"
)

// fmtG renders a float compactly, with infinities as "-" (no constrained
// endpoint), following the chip report's conventions.
func fmtG(v float64) string {
	if math.IsInf(v, 0) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Summary renders the fixed-width closure report: the headline movement,
// the accepted trajectory, the Pareto frontier, and the replayable edit
// list.
func (r *Report) Summary() string {
	var b strings.Builder
	name := r.Design
	if name == "" {
		name = "(unnamed)"
	}
	status := "stopped: " + r.Reason
	if r.Closed {
		status = "closed: " + r.Reason
	}
	fmt.Fprintf(&b, "closure %s: WNS %s -> %s   TNS %s -> %s   (%s)\n",
		name, fmtG(r.InitialWNS), fmtG(r.FinalWNS), fmtG(r.InitialTNS), fmtG(r.FinalTNS), status)
	fmt.Fprintf(&b, "%d moves, cost %s, %d trials, %d guided probes (%d EditTree edits)\n",
		len(r.Moves), fmtG(r.Cost), r.Trials, r.GuidedProbes, r.GuidedEdits)
	if len(r.Corners) > 0 {
		for _, c := range r.Corners {
			fmt.Fprintf(&b, "corner %s (R x%g, C x%g): WNS %s -> %s\n",
				c.Name, c.RScale, c.CScale, fmtG(c.InitialWNS), fmtG(c.FinalWNS))
		}
		fmt.Fprintf(&b, "%d corner vetoes\n", r.CornerVetoes)
	}
	b.WriteByte('\n')
	if len(r.Moves) > 0 {
		fmt.Fprintf(&b, "%3s %-14s %-10s %10s %10s %12s %12s %6s %s\n",
			"#", "kind", "net", "cost", "cum.cost", "wns", "tns", "cand", "move")
		for i, m := range r.Moves {
			fmt.Fprintf(&b, "%3d %-14s %-10s %10s %10s %12s %12s %6d %s\n",
				i+1, m.Move.Kind, m.Move.Net, fmtG(m.Move.Cost), fmtG(m.CumCost),
				fmtG(m.WNS), fmtG(m.TNS), m.Candidates, m.Move.Desc)
		}
		b.WriteByte('\n')
	}
	if len(r.Pareto) > 0 {
		fmt.Fprintf(&b, "pareto frontier (cost, wns):\n")
		for _, p := range r.Pareto {
			fmt.Fprintf(&b, "%12s %12s\n", fmtG(p.Cost), fmtG(p.WNS))
		}
	}
	if len(r.Edits) > 0 {
		fmt.Fprintf(&b, "\naccepted ECO edits:\n%s", timing.FormatEdits(r.Edits))
	}
	return b.String()
}

// WriteCSV emits the trajectory as CSV: a move-0 row for the initial state,
// then one row per accepted move. Infinities (no constrained endpoint)
// render empty, as in the chip report.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"move", "kind", "net", "desc", "cost", "cum_cost", "wns", "tns", "gain", "candidates", "trials",
	}); err != nil {
		return fmt.Errorf("closure: csv: %w", err)
	}
	g := func(v float64) string {
		if math.IsInf(v, 0) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	if err := cw.Write([]string{
		"0", "initial", "", "", "0", "0", g(r.InitialWNS), g(r.InitialTNS), "", "", "",
	}); err != nil {
		return fmt.Errorf("closure: csv: %w", err)
	}
	for i, m := range r.Moves {
		rec := []string{
			strconv.Itoa(i + 1), m.Move.Kind, m.Move.Net, m.Move.Desc,
			g(m.Move.Cost), g(m.CumCost), g(m.WNS), g(m.TNS), g(m.Gain),
			strconv.Itoa(m.Candidates), strconv.Itoa(m.Trials),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("closure: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Wire shapes: infinities ride as omitted pointers, as everywhere else on
// the JSON surface.
type jsonTrajectoryPoint struct {
	Kind       string   `json:"kind"`
	Net        string   `json:"net"`
	Desc       string   `json:"desc"`
	Cost       float64  `json:"cost"`
	CumCost    float64  `json:"cumCost"`
	WNS        *float64 `json:"wns,omitempty"`
	TNS        float64  `json:"tns"`
	Gain       float64  `json:"gain"`
	Candidates int      `json:"candidates"`
	Trials     int      `json:"trials"`
}

type jsonReport struct {
	Design       string                `json:"design,omitempty"`
	Threshold    float64               `json:"threshold"`
	InitialWNS   *float64              `json:"initialWns,omitempty"`
	InitialTNS   float64               `json:"initialTns"`
	FinalWNS     *float64              `json:"finalWns,omitempty"`
	FinalTNS     float64               `json:"finalTns"`
	Closed       bool                  `json:"closed"`
	Reason       string                `json:"reason"`
	Cost         float64               `json:"cost"`
	Trials       int                   `json:"trials"`
	GuidedProbes int                   `json:"guidedProbes"`
	GuidedEdits  int                   `json:"guidedEdits"`
	Trajectory   []jsonTrajectoryPoint `json:"trajectory,omitempty"`
	Pareto       []ParetoPoint         `json:"pareto,omitempty"`
	Corners      []CornerStatus        `json:"corners,omitempty"`
	CornerVetoes int                   `json:"cornerVetoes,omitempty"`
	Edits        []timing.Edit         `json:"edits,omitempty"`
	// EditScript is the accepted edit list in the statime -eco line grammar,
	// ready to replay.
	EditScript string `json:"editScript,omitempty"`
}

func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func (r *Report) wire() jsonReport {
	out := jsonReport{
		Design: r.Design, Threshold: r.Threshold,
		InitialWNS: finitePtr(r.InitialWNS), InitialTNS: r.InitialTNS,
		FinalWNS: finitePtr(r.FinalWNS), FinalTNS: r.FinalTNS,
		Closed: r.Closed, Reason: r.Reason, Cost: r.Cost,
		Trials: r.Trials, GuidedProbes: r.GuidedProbes, GuidedEdits: r.GuidedEdits,
		Pareto: r.Pareto, Corners: r.Corners, CornerVetoes: r.CornerVetoes,
		Edits: r.Edits,
	}
	for _, m := range r.Moves {
		out.Trajectory = append(out.Trajectory, jsonTrajectoryPoint{
			Kind: m.Move.Kind, Net: m.Move.Net, Desc: m.Move.Desc,
			Cost: m.Move.Cost, CumCost: m.CumCost,
			WNS: finitePtr(m.WNS), TNS: m.TNS, Gain: m.Gain,
			Candidates: m.Candidates, Trials: m.Trials,
		})
	}
	if len(r.Edits) > 0 {
		out.EditScript = timing.FormatEdits(r.Edits)
	}
	return out
}

// WriteJSON emits the closure report as indented JSON with a stable schema.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.wire()); err != nil {
		return fmt.Errorf("closure: json: %w", err)
	}
	return nil
}

// MarshalJSON makes the report embeddable in JSON envelopes (rcserve's
// close endpoint returns it inline).
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.wire())
}
