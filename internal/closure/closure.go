package closure

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/mcd"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rctree"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Cost-model constants (abstract area units; see the package documentation).
const (
	driverAreaCost = 8.0  // upsizing by 1/f costs driverAreaCost·(1/f−1)
	repeaterCost   = 6.0  // one inserted repeater
	trimCostBase   = 2.0  // load trim: base plus the capacitance removed
	pruneCost      = 1.5  // ECO disruption of deleting a stub
	tnsWeight      = 0.05 // TNS share of the combined objective
)

// Options configures a closure run. The zero value closes with a 32-move
// budget, no cost ceiling, the 4 worst endpoints mined per iteration, and
// concurrent trial evaluation across GOMAXPROCS workers.
type Options struct {
	// Timing mounts the session when closing a Design directly
	// (CloseDesign); Close on an existing session ignores it.
	Timing timing.Options
	// MaxMoves caps accepted moves (0 means 32; negative means unlimited).
	MaxMoves int
	// MaxCost caps the cumulative cost of accepted moves (<= 0: unlimited).
	MaxCost float64
	// TopEndpoints is how many failing endpoints are mined for candidates
	// per iteration (0 means 4).
	TopEndpoints int
	// ConeDepth caps how many nets of each endpoint's critical upstream
	// cone generate candidates (0 means 4).
	ConeDepth int
	// Concurrency bounds the trial-evaluation workers (0 means GOMAXPROCS).
	Concurrency int
	// Sequential forces one-at-a-time trial evaluation. The accepted move
	// sequence is identical either way; the knob exists for benchmarking
	// and debugging.
	Sequential bool
	// Obs receives run telemetry: moves generated/trialed/accepted, fork
	// counts, run spans, and the live WNS/TNS/cost gauges. Nil disables it.
	Obs *obs.Registry
	// Progress, when non-nil, is called synchronously on the engine
	// goroutine after every accepted move — the hook rcserve's SSE stream
	// and statime's -progress flag hang off. A slow callback slows the run;
	// it must not call back into the session.
	Progress func(ProgressEvent)
	// Corners, when non-empty, makes the run corner-aware: each corner
	// mounts a shadow session on the elementwise-scaled design, every
	// candidate move is trialed at every corner (with its R/C edit values
	// scaled by the corner factors, preserving the scaled-design invariant),
	// moves that regress any corner's WNS are vetoed even when they improve
	// the typical corner, gains are scored at the currently-worst corner,
	// and the run only closes once every corner meets timing. A corner with
	// scales (1, 1) is the main session itself and is skipped.
	Corners []mcd.Corner
}

// CornerStatus is one swept corner's before/after in a corner-aware run.
type CornerStatus struct {
	Name       string  `json:"name"`
	RScale     float64 `json:"rScale"`
	CScale     float64 `json:"cScale"`
	InitialWNS float64 `json:"-"`
	FinalWNS   float64 `json:"-"`
}

// MarshalJSON renders the WNS fields with +Inf omitted (wire convention).
func (c CornerStatus) MarshalJSON() ([]byte, error) {
	type plain CornerStatus
	return json.Marshal(struct {
		plain
		InitialWNS *float64 `json:"initialWns,omitempty"`
		FinalWNS   *float64 `json:"finalWns,omitempty"`
	}{plain(c), finitePtr(c.InitialWNS), finitePtr(c.FinalWNS)})
}

// ProgressEvent is one accepted move as seen by Options.Progress: the move,
// the design state after it, and the (cost, WNS) frontier point it visited.
type ProgressEvent struct {
	// Seq counts accepted moves from 1.
	Seq int `json:"seq"`
	// Move is the accepted repair.
	Move Move `json:"move"`
	// WNS/TNS are the design's slack numbers after the move; CumCost the
	// cumulative accepted cost; Gain the combined objective improvement.
	WNS     float64 `json:"wns"`
	TNS     float64 `json:"tns"`
	CumCost float64 `json:"cumCost"`
	Gain    float64 `json:"gain"`
	// Candidates and Trials are the iteration's generation/evaluation sizes.
	Candidates int `json:"candidates"`
	Trials     int `json:"trials"`
}

func (o Options) resolve() Options {
	if o.MaxMoves == 0 {
		o.MaxMoves = 32
	}
	if o.MaxCost <= 0 {
		o.MaxCost = math.Inf(1)
	}
	if o.TopEndpoints <= 0 {
		o.TopEndpoints = 4
	}
	if o.ConeDepth <= 0 {
		o.ConeDepth = 4
	}
	if o.Concurrency <= 0 {
		o.Concurrency = runtime.GOMAXPROCS(0)
	}
	if o.Sequential {
		o.Concurrency = 1
	}
	return o
}

// Move is one candidate (or accepted) repair: a short ECO edit list on a
// single net, priced in abstract area units.
type Move struct {
	// Kind names the generator: upsizeDriver, tunedDriver, rebufferWire,
	// trimLoad or pruneStub.
	Kind string `json:"kind"`
	// Net is the net the move edits.
	Net string `json:"net"`
	// Desc is a human-readable one-liner ("scale driver to 0.5x").
	Desc string `json:"desc"`
	// Cost is the move's price in the package cost model.
	Cost float64 `json:"cost"`
	// Edits is the move's ECO edit list, replayable through
	// timing.ParseEdits/FormatEdits.
	Edits []timing.Edit `json:"edits"`
}

// TrajectoryPoint records one accepted move and the design state after it.
type TrajectoryPoint struct {
	Move Move
	// CumCost is the cumulative accepted cost including this move.
	CumCost float64
	// WNS and TNS are the design's slack numbers after the move.
	WNS, TNS float64
	// Gain is the combined objective improvement (ΔWNS + 0.05·ΔTNS) the
	// move bought.
	Gain float64
	// Candidates counts the moves generated this iteration; Trials the
	// what-if evaluations that completed without a structural-guard
	// rejection (so Trials < Candidates flags moves the session refused).
	Candidates, Trials int
}

// ParetoPoint is one non-dominated (cumulative cost, WNS) state visited
// during the search — including trial states the greedy path rejected.
type ParetoPoint struct {
	Cost float64 `json:"cost"`
	WNS  float64 `json:"wns"`
}

// Report is the outcome of one closure run.
type Report struct {
	Design     string
	Threshold  float64
	InitialWNS float64
	InitialTNS float64
	FinalWNS   float64
	FinalTNS   float64
	// Closed reports whether the engine reached WNS >= 0; Reason says why
	// the loop stopped ("met", "move budget exhausted", "cost ceiling
	// reached", "no improving candidate", "no candidates", "no failing
	// endpoints", or "cancelled" when the context expired mid-run).
	Closed bool
	Reason string
	// Cost is the cumulative cost of the accepted moves.
	Cost float64
	// Trials counts what-if session evaluations across all iterations;
	// GuidedProbes/GuidedEdits count the opt bisection probes spent by the
	// tunedDriver generator and the EditTree edits they performed.
	Trials       int
	GuidedProbes int
	GuidedEdits  int
	// Moves is the accepted trajectory, in acceptance order.
	Moves []TrajectoryPoint
	// Pareto is the non-dominated frontier of visited (cost, WNS) states,
	// cost ascending.
	Pareto []ParetoPoint
	// Edits is the accepted edit list, flattened in application order —
	// FormatEdits of this list replayed against the original design
	// reproduces FinalWNS/FinalTNS.
	Edits []timing.Edit
	// Corners records each swept corner's WNS before and after the run
	// (empty unless Options.Corners was set). CornerVetoes counts candidate
	// moves rejected solely because they regressed a corner's WNS while not
	// regressing the typical one.
	Corners      []CornerStatus
	CornerVetoes int
}

// Close runs the repair loop against an existing session. The session is
// mutated: accepted moves stay applied, so on return it sits at the
// report's final state (callers wanting a what-if run pass sess.Fork()).
//
// If ctx expires mid-run the loop stops, and Close returns the context
// error together with the partial report — the moves accepted before the
// cancellation are applied to the session, and the report (reason
// "cancelled") is the only record of what they were, so callers should
// surface it rather than discard it.
func Close(ctx context.Context, sess *timing.Session, o Options) (*Report, error) {
	o = o.resolve()
	e := &engine{sess: sess, opt: o}
	return e.run(ctx)
}

// CloseDesign mounts a session on the design (with o.Timing) and closes it.
// The design itself is never mutated; the returned report's Edits replay
// the repair onto it.
func CloseDesign(ctx context.Context, d *netlist.Design, o Options) (*Report, error) {
	sess, err := timing.NewSession(ctx, d, o.Timing)
	if err != nil {
		return nil, err
	}
	return Close(ctx, sess, o)
}

// engine is the per-run state of the accept loop.
type engine struct {
	sess    *timing.Session
	opt     Options
	rep     *Report
	visited []ParetoPoint // every trial state, raw (pre-frontier)
	corners []*cornerState
}

// cornerState is one swept corner's shadow session and its running WNS/TNS.
type cornerState struct {
	c        mcd.Corner
	sess     *timing.Session
	wns, tns float64
}

// mountCorners builds a shadow session per non-typical corner on the
// elementwise-scaled materialization of the current design. Scaling every R
// by RScale and every C by CScale commutes with the session's edit algebra
// as long as edit R/C values are scaled the same way (scaleEdits), so each
// shadow stays exactly the corner view of the main session.
func (e *engine) mountCorners(ctx context.Context) error {
	if len(e.opt.Corners) == 0 {
		return nil
	}
	var d *netlist.Design
	for _, c := range e.opt.Corners {
		if c.RScale <= 0 || c.CScale <= 0 {
			return fmt.Errorf("closure: corner %q has non-positive scale", c.Name)
		}
		if c.RScale == 1 && c.CScale == 1 {
			continue // the typical corner is the main session
		}
		if d == nil {
			var err error
			if d, err = e.sess.Design(); err != nil {
				return fmt.Errorf("closure: materializing design for corners: %w", err)
			}
		}
		rf := make([]float64, len(d.Nets))
		cf := make([]float64, len(d.Nets))
		for i := range rf {
			rf[i], cf[i] = c.RScale, c.CScale
		}
		sd, err := mcd.ScaleDesign(d, rf, cf)
		if err != nil {
			return fmt.Errorf("closure: corner %q: %w", c.Name, err)
		}
		cs, err := timing.NewSession(ctx, sd, timing.Options{
			Threshold: e.sess.Threshold(),
			Required:  e.sess.Required(),
			K:         -1,
		})
		if err != nil {
			return fmt.Errorf("closure: corner %q: %w", c.Name, err)
		}
		rep := cs.EndpointTable()
		e.corners = append(e.corners, &cornerState{c: c, sess: cs, wns: rep.WNS, tns: rep.TNS})
		e.rep.Corners = append(e.rep.Corners, CornerStatus{
			Name: c.Name, RScale: c.RScale, CScale: c.CScale,
			InitialWNS: rep.WNS, FinalWNS: rep.WNS,
		})
	}
	return nil
}

// scaleEdits maps a typical-corner edit list to a corner's value space:
// absolute R values scale by RScale, absolute C values by CScale; relative
// factors and structural edits carry over unchanged. This is exactly the
// transformation that keeps the corner design an elementwise-scaled copy of
// the typical one after the edits land on both.
func scaleEdits(edits []timing.Edit, c mcd.Corner) []timing.Edit {
	out := make([]timing.Edit, len(edits))
	for i, ed := range edits {
		if ed.R != nil {
			ed.R = ptr(*ed.R * c.RScale)
		}
		if ed.C != nil {
			ed.C = ptr(*ed.C * c.CScale)
		}
		out[i] = ed
	}
	return out
}

// worstWNS is the minimum WNS over the typical session and every corner.
func (e *engine) worstWNS(typWNS float64) float64 {
	w := typWNS
	for _, cs := range e.corners {
		if cs.wns < w {
			w = cs.wns
		}
	}
	return w
}

func (e *engine) run(ctx context.Context) (*Report, error) {
	ctx, op := trace.StartOp(ctx, e.opt.Obs, "closure_run")
	defer op.End()
	base := e.sess.EndpointTable()
	e.rep = &Report{
		Design:     base.Design,
		Threshold:  base.Threshold,
		InitialWNS: base.WNS,
		InitialTNS: base.TNS,
		FinalWNS:   base.WNS,
		FinalTNS:   base.TNS,
	}
	e.visited = append(e.visited, ParetoPoint{0, base.WNS})
	wns, tns := base.WNS, base.TNS
	if err := e.mountCorners(ctx); err != nil {
		return nil, err
	}
	if e.worstWNS(wns) >= 0 {
		e.rep.Closed = true
		e.rep.Reason = "no failing endpoints"
		e.rep.Pareto = frontier(e.visited)
		return e.rep, nil
	}
	var runErr error
	for {
		if err := ctx.Err(); err != nil {
			// The moves accepted so far are applied to the session; the
			// partial report is the only record of them, so it rides along
			// with the error.
			e.rep.Reason = "cancelled"
			runErr = err
			op.SetError(err)
			break
		}
		if e.opt.MaxMoves >= 0 && len(e.rep.Moves) >= e.opt.MaxMoves {
			e.rep.Reason = "move budget exhausted"
			break
		}
		// Mine the typical corner's failing endpoints; when only a swept
		// corner fails, mine that corner's table instead (net/output names are
		// shared, so the main session's geometry generates the moves).
		mine := base
		if base.WNS >= 0 {
			for _, cs := range e.corners {
				if cs.wns < 0 {
					mine = cs.sess.EndpointTable()
					break
				}
			}
		}
		cands, costFiltered := e.generate(mine)
		e.opt.Obs.Counter("closure_moves_generated_total").Add(int64(len(cands)))
		if len(cands) == 0 {
			if costFiltered {
				e.rep.Reason = "cost ceiling reached"
			} else {
				e.rep.Reason = "no candidates"
			}
			break
		}
		results := e.evaluate(ctx, cands)
		// Score gains at the currently-worst corner (the typical session
		// counts as a corner here): closing the worst corner is what moves
		// the design's certified figure.
		worstIdx := -1 // -1: the typical session
		curW, curT := wns, tns
		for j, cs := range e.corners {
			if cs.wns < curW {
				worstIdx, curW, curT = j, cs.wns, cs.tns
			}
		}
		best, bestScore := -1, 0.0
		for i, tr := range results {
			if tr.err != nil {
				continue
			}
			e.visited = append(e.visited, ParetoPoint{e.rep.Cost + cands[i].Cost, tr.res.WNS})
			if tr.res.WNS < wns { // never regress the typical worst slack
				continue
			}
			// Corner veto: a move that helps typ but regresses any swept
			// corner's WNS trades certified margin for nominal margin — reject.
			vetoed := false
			for j, cs := range e.corners {
				if tr.corner[j].WNS < cs.wns-1e-9 {
					vetoed = true
					break
				}
			}
			if vetoed {
				e.rep.CornerVetoes++
				continue
			}
			newW, newT := tr.res.WNS, tr.res.TNS
			if worstIdx >= 0 {
				newW, newT = tr.corner[worstIdx].WNS, tr.corner[worstIdx].TNS
			}
			gain := (newW - curW) + tnsWeight*(newT-curT)
			if gain <= 0 {
				continue
			}
			if score := gain / cands[i].Cost; best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			e.rep.Reason = "no improving candidate"
			break
		}
		winner := cands[best]
		actx, aop := trace.StartOp(ctx, e.opt.Obs, "closure_accept", "kind", winner.Kind)
		aop.Span().SetAttr("net", winner.Net)
		res, err := e.sess.ApplyCtx(actx, winner.Edits)
		if err != nil {
			// The trial on an identical fork succeeded, so this is a bug,
			// not a user input problem — surface it loudly.
			aop.SetError(err)
			aop.End()
			return nil, fmt.Errorf("closure: accepted move failed on commit: %w", err)
		}
		prevW, prevT := curW, curT
		for _, cs := range e.corners {
			cres, err := cs.sess.ApplyCtx(actx, scaleEdits(winner.Edits, cs.c))
			if err != nil {
				aop.SetError(err)
				aop.End()
				return nil, fmt.Errorf("closure: accepted move failed on corner %q: %w", cs.c.Name, err)
			}
			cs.wns, cs.tns = cres.WNS, cres.TNS
		}
		aop.End()
		wns, tns = res.WNS, res.TNS
		// Gain as scored: at the corner that was worst before the move.
		newW, newT := wns, tns
		if worstIdx >= 0 {
			newW, newT = e.corners[worstIdx].wns, e.corners[worstIdx].tns
		}
		gain := (newW - prevW) + tnsWeight*(newT-prevT)
		ok := 0
		for _, tr := range results {
			if tr.err == nil {
				ok++
			}
		}
		e.rep.Cost += winner.Cost
		e.rep.Edits = append(e.rep.Edits, winner.Edits...)
		e.rep.Moves = append(e.rep.Moves, TrajectoryPoint{
			Move: winner, CumCost: e.rep.Cost, WNS: wns, TNS: tns,
			Gain: gain, Candidates: len(cands), Trials: ok,
		})
		if reg := e.opt.Obs; reg != nil {
			reg.Counter("closure_moves_accepted_total").Add(1)
			reg.Gauge("closure_wns").Set(wns)
			reg.Gauge("closure_tns").Set(tns)
			reg.Gauge("closure_cost").Set(e.rep.Cost)
		}
		if e.opt.Progress != nil {
			e.opt.Progress(ProgressEvent{
				Seq: len(e.rep.Moves), Move: winner,
				WNS: wns, TNS: tns, CumCost: e.rep.Cost, Gain: gain,
				Candidates: len(cands), Trials: ok,
			})
		}
		base = e.sess.EndpointTable()
		if e.worstWNS(wns) >= 0 {
			e.rep.Closed = true
			e.rep.Reason = "met"
			break
		}
	}
	e.rep.FinalWNS, e.rep.FinalTNS = wns, tns
	e.rep.Closed = e.worstWNS(wns) >= 0
	for i, cs := range e.corners {
		e.rep.Corners[i].FinalWNS = cs.wns
	}
	e.rep.Pareto = frontier(e.visited)
	return e.rep, runErr
}

// trial is one candidate's what-if outcome: the typical-corner result plus,
// in a corner-aware run, one result per swept corner (indexed like
// engine.corners).
type trial struct {
	res    timing.ApplyResult
	corner []timing.ApplyResult
	err    error
}

// evaluate runs every candidate as an independent what-if trial on its own
// session fork — plus one fork per swept corner, applying the corner-scaled
// edit list. Forks are taken sequentially (Fork mutates the parent's
// copy-on-write bookkeeping); the Applies fan across the worker pool. The
// result slice is indexed like cands, so scheduling cannot reorder anything.
// Each trial attaches a closure_trial span under ctx's closure_run span —
// safe from the pool workers, the per-trace collector is mutex-protected.
func (e *engine) evaluate(ctx context.Context, cands []Move) []trial {
	forks := make([]*timing.Session, len(cands))
	cforks := make([][]*timing.Session, len(cands))
	for i := range cands {
		forks[i] = e.sess.Fork()
		if len(e.corners) > 0 {
			cforks[i] = make([]*timing.Session, len(e.corners))
			for j, cs := range e.corners {
				cforks[i][j] = cs.sess.Fork()
			}
		}
	}
	results := make([]trial, len(cands))
	e.rep.Trials += len(cands)
	nForks := len(cands) * (1 + len(e.corners))
	e.opt.Obs.Counter("closure_forks_total").Add(int64(nForks))
	e.opt.Obs.Counter("closure_trials_total").Add(int64(len(cands)))
	runTrial := func(i int) {
		tctx, top := trace.StartOp(ctx, e.opt.Obs, "closure_trial", "kind", cands[i].Kind)
		top.Span().SetAttr("net", cands[i].Net)
		res, err := forks[i].ApplyCtx(tctx, cands[i].Edits)
		tr := trial{res: res, err: err}
		if err == nil && len(e.corners) > 0 {
			tr.corner = make([]timing.ApplyResult, len(e.corners))
			for j, cs := range e.corners {
				cres, cerr := cforks[i][j].ApplyCtx(tctx, scaleEdits(cands[i].Edits, cs.c))
				if cerr != nil {
					tr.err = cerr
					break
				}
				tr.corner[j] = cres
			}
		}
		// Structural-guard rejections are expected trial outcomes, not trace
		// errors; the span just records them.
		if tr.err != nil {
			top.Span().SetAttr("rejected", tr.err.Error())
		}
		top.End()
		results[i] = tr
	}
	if e.opt.Concurrency <= 1 || len(cands) == 1 {
		for i := range cands {
			runTrial(i)
		}
		return results
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < e.opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				runTrial(i)
			}
		}()
	}
	for i := range cands {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// generate mines the report's worst failing endpoints for candidate moves.
// Everything iterates deterministically (sorted endpoints, cone order,
// ascending node IDs), so two runs over the same state produce the same
// candidate list in the same order. costFiltered reports whether the cost
// ceiling rejected at least one otherwise-viable candidate — it phrases the
// stop reason when the list comes back empty.
func (e *engine) generate(rep *timing.Report) (cands []Move, costFiltered bool) {
	seen := map[string]bool{}
	add := func(m Move) {
		key := m.Kind + "|" + m.Net + "|" + m.Desc
		if seen[key] {
			return
		}
		if e.rep.Cost+m.Cost > e.opt.MaxCost {
			costFiltered = true
			return
		}
		seen[key] = true
		cands = append(cands, m)
	}
	mined := 0
	for _, ep := range rep.Endpoints {
		if !(ep.Slack < 0) {
			break // sorted worst-first: the rest pass or are unconstrained
		}
		if mined >= e.opt.TopEndpoints {
			break
		}
		mined++
		cone := e.sess.CriticalUpstream(ep.Net)
		if len(cone) > e.opt.ConeDepth {
			cone = cone[:e.opt.ConeDepth]
		}
		for _, net := range cone {
			for _, f := range []float64{0.7, 0.5} {
				add(Move{
					Kind: "upsizeDriver", Net: net,
					Desc: fmt.Sprintf("scale driver to %gx", f),
					Cost: driverAreaCost * (1/f - 1),
					Edits: []timing.Edit{{
						Op: "scaleDriver", Net: net, Factor: ptr(f),
					}},
				})
			}
			if m, ok := e.pruneStub(net); ok {
				add(m)
			}
		}
		if m, ok := e.tunedDriver(ep); ok {
			add(m)
		}
		if m, ok := e.rebufferWire(ep); ok {
			add(m)
		}
		if m, ok := e.trimLoad(ep); ok {
			add(m)
		}
	}
	return cands, costFiltered
}

// tunedDriver bisects the endpoint net's driver scale for the largest
// (cheapest) factor whose certified TMax still meets the endpoint's local
// budget — opt.MaxParamStats probing a cloned EditTree, one SetResistance
// per driver edge per probe.
func (e *engine) tunedDriver(ep timing.EndpointSlack) (Move, bool) {
	in, ok := e.sess.InputArrival(ep.Net)
	if !ok || math.IsInf(ep.Required, 0) {
		return Move{}, false
	}
	budget := ep.Required - in.Max
	if budget <= 0 {
		return Move{}, false // the input is already too late; upstream moves must act
	}
	et, ok := e.sess.CloneNetTree(ep.Net)
	if !ok {
		return Move{}, false
	}
	out, ok := et.Lookup(ep.Output)
	if !ok {
		return Move{}, false
	}
	// Probe by absolute assignment (SetResistance from a recorded base), not
	// repeated ScaleDriver, so bisection steps do not compound.
	kids := et.Children(incr.Root)
	baseR := make([]float64, len(kids))
	for i, v := range kids {
		_, r, _ := et.Edge(v)
		baseR[i] = r
	}
	th := e.sess.Threshold()
	factor, stats, err := opt.MaxParamStats(0.02, 1, 1e-4, func(f float64) (bool, error) {
		for i, v := range kids {
			if err := et.SetResistance(v, baseR[i]*f); err != nil {
				return false, err
			}
		}
		tm, err := et.Times(out)
		if err != nil {
			return false, err
		}
		b, err := core.New(tm)
		if err != nil {
			return false, err
		}
		return b.TMax(th) <= budget, nil
	})
	e.rep.GuidedProbes += stats.Probes
	e.rep.GuidedEdits += stats.Probes * opt.EditsPerProbe * len(kids)
	if err != nil || factor >= 0.999 {
		return Move{}, false // unsatisfiable by sizing alone, or already met
	}
	return Move{
		Kind: "tunedDriver", Net: ep.Net,
		Desc: fmt.Sprintf("bisected driver scale to %.4gx for %s", factor, ep.Output),
		Cost: driverAreaCost * (1/factor - 1),
		Edits: []timing.Edit{{
			Op: "scaleDriver", Net: ep.Net, Factor: ptr(factor),
		}},
	}, true
}

// rebufferWire cuts the highest-resistance distributed line on the failing
// output's root path to half length and lands the repeater's input
// capacitance at the cut.
func (e *engine) rebufferWire(ep timing.EndpointSlack) (Move, bool) {
	et, ok := e.sess.ViewNetTree(ep.Net)
	if !ok {
		return Move{}, false
	}
	out, ok := et.Lookup(ep.Output)
	if !ok {
		return Move{}, false
	}
	bestID := incr.NodeID(-1)
	var bestR, bestC float64
	for v := out; v != incr.Root; v = et.Parent(v) {
		kind, r, c := et.Edge(v)
		if kind == rctree.EdgeLine && r > bestR {
			bestID, bestR, bestC = v, r, c
		}
	}
	if bestID < 0 {
		return Move{}, false // no distributed line on the path
	}
	node := et.Name(bestID)
	parent := et.Name(et.Parent(bestID))
	repIn := 0.1 * bestC // the repeater loads the cut with ~10% of the wire's C
	return Move{
		Kind: "rebufferWire", Net: ep.Net,
		Desc: fmt.Sprintf("halve line %s and repeat at %s", node, parent),
		Cost: repeaterCost,
		Edits: []timing.Edit{
			{Op: "setLine", Net: ep.Net, Node: node, R: ptr(bestR / 2), C: ptr(bestC / 2)},
			{Op: "addC", Net: ep.Net, Node: parent, C: ptr(repIn)},
		},
	}, true
}

// trimLoad shrinks the endpoint's lumped load capacitance to 70% — a
// smaller receiving gate.
func (e *engine) trimLoad(ep timing.EndpointSlack) (Move, bool) {
	et, ok := e.sess.ViewNetTree(ep.Net)
	if !ok {
		return Move{}, false
	}
	out, ok := et.Lookup(ep.Output)
	if !ok {
		return Move{}, false
	}
	c := et.NodeCap(out)
	if c <= 0 {
		return Move{}, false
	}
	trimmed := 0.7 * c
	return Move{
		Kind: "trimLoad", Net: ep.Net,
		Desc: fmt.Sprintf("trim load at %s to %.4g", ep.Output, trimmed),
		Cost: trimCostBase + (c - trimmed),
		Edits: []timing.Edit{
			{Op: "setC", Net: ep.Net, Node: ep.Output, C: ptr(trimmed)},
		},
	}, true
}

// pruneStub finds the heaviest parasitic stub of the net — a subtree
// containing no designated output and no protected name — and proposes
// deleting it.
func (e *engine) pruneStub(net string) (Move, bool) {
	et, ok := e.sess.ViewNetTree(net)
	if !ok {
		return Move{}, false
	}
	// needed: every node on the root path of a designated output or a
	// protected name. Anything outside that set is parasitic.
	needed := map[incr.NodeID]bool{incr.Root: true}
	mark := func(id incr.NodeID) {
		for v := id; ; v = et.Parent(v) {
			if needed[v] {
				return
			}
			needed[v] = true
			if v == incr.Root {
				return
			}
		}
	}
	for _, o := range et.Outputs() {
		mark(o)
	}
	for _, name := range e.sess.ProtectedOutputs(net) {
		if id, ok := et.Lookup(name); ok {
			mark(id)
		}
	}
	best := incr.NodeID(-1)
	var bestCap float64
	for i := 1; i < et.Slots(); i++ {
		id := incr.NodeID(i)
		if et.Name(id) == "" || needed[id] { // dead slot or load-bearing
			continue
		}
		if !needed[et.Parent(id)] {
			continue // interior of a stub; its root is the candidate
		}
		if sc := et.SubtreeCap(id); sc > bestCap {
			best, bestCap = id, sc
		}
	}
	if best < 0 || bestCap <= 0 || et.TotalCap()-bestCap <= 0 {
		return Move{}, false
	}
	node := et.Name(best)
	return Move{
		Kind: "pruneStub", Net: net,
		Desc: fmt.Sprintf("prune stub %s (%.4g cap)", node, bestCap),
		Cost: pruneCost,
		Edits: []timing.Edit{
			{Op: "prune", Net: net, Node: node},
		},
	}, true
}

// frontier reduces the visited states to the non-dominated (cost, WNS) set:
// cost strictly ascending, WNS strictly ascending — every kept point buys
// slack no cheaper point reached.
func frontier(pts []ParetoPoint) []ParetoPoint {
	sorted := append([]ParetoPoint(nil), pts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Cost != sorted[b].Cost {
			return sorted[a].Cost < sorted[b].Cost
		}
		return sorted[a].WNS > sorted[b].WNS
	})
	var out []ParetoPoint
	bestWNS := math.Inf(-1)
	for _, p := range sorted {
		if p.WNS > bestWNS {
			out = append(out, p)
			bestWNS = p.WNS
		}
	}
	return out
}

func ptr(v float64) *float64 { return &v }
