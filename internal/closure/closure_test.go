package closure

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/mcd"
	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/timing"
)

// chipDeck is the familiar demo pipeline: the sink endpoint misses its
// required time, bus_b carries a prunable stub, and the driver is weak —
// every generator has something to find.
const chipDeck = `
.design demo
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus_a
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.net bus_b
.input in
R1 in n1 120
C1 n1 0 0.05
R2 n1 far 300
C2 far 0 0.08
R3 n1 stub 90
C3 stub 0 0.02
.output far
.endnet
.net sink
.input in
R1 in o 220
C1 o 0 0.06
.output o
.endnet
.stage drv o bus_a 25
.stage drv o bus_b 25
.stage bus_b far sink 40
.require bus_a far 700
.require sink o 150
.end
`

func parseChip(t *testing.T) *netlist.Design {
	t.Helper()
	d, err := netlist.ParseDesign(chipDeck)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// replayCheck formats the accepted edits, reparses them, replays them on a
// fresh session over the original design, materializes, and runs a full
// from-scratch AnalyzeDesign — the claimed final WNS/TNS must reproduce to
// 1e-9 and no structural guard may fire.
func replayCheck(t *testing.T, d *netlist.Design, rep *Report, topt timing.Options) {
	t.Helper()
	script := timing.FormatEdits(rep.Edits)
	edits, err := timing.ParseEdits(script)
	if err != nil {
		t.Fatalf("reparse of accepted edits failed: %v\n%s", err, script)
	}
	sess, err := timing.NewSession(context.Background(), d, topt)
	if err != nil {
		t.Fatal(err)
	}
	if len(edits) > 0 {
		if _, err := sess.Apply(edits); err != nil {
			t.Fatalf("replay violated a structural guard: %v\n%s", err, script)
		}
	}
	repaired, err := sess.Design()
	if err != nil {
		t.Fatal(err)
	}
	full, err := timing.Analyze(context.Background(), repaired, topt)
	if err != nil {
		t.Fatalf("full re-analysis of the repaired design: %v", err)
	}
	if !closeEnough(full.WNS, rep.FinalWNS) || !closeEnough(full.TNS, rep.FinalTNS) {
		t.Fatalf("replayed WNS/TNS %g/%g, engine claimed %g/%g\n%s",
			full.WNS, full.TNS, rep.FinalWNS, rep.FinalTNS, script)
	}
}

// TestCloseChip: the demo chip starts failing and the engine drives it to
// WNS >= 0; the accepted edit list replays to the same numbers.
func TestCloseChip(t *testing.T) {
	d := parseChip(t)
	topt := timing.Options{Threshold: 0.7, K: 2, Sequential: true}
	rep, err := CloseDesign(context.Background(), d, Options{Timing: topt})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialWNS >= 0 {
		t.Fatalf("chip starts passing (WNS %g); the fixture is broken", rep.InitialWNS)
	}
	if !rep.Closed || rep.FinalWNS < 0 {
		t.Fatalf("engine did not close: %+v", rep)
	}
	if rep.Reason != "met" {
		t.Errorf("reason = %q, want met", rep.Reason)
	}
	if len(rep.Moves) == 0 || len(rep.Edits) == 0 {
		t.Fatalf("closed with no moves? %+v", rep)
	}
	if rep.Cost <= 0 || rep.Trials < len(rep.Moves) {
		t.Errorf("accounting looks wrong: cost %g, trials %d", rep.Cost, rep.Trials)
	}
	if rep.FinalTNS != 0 {
		t.Errorf("closed but TNS = %g", rep.FinalTNS)
	}
	replayCheck(t, d, rep, topt)
	// The frontier must start at the initial state and end at a closed one,
	// cost and WNS both ascending.
	if len(rep.Pareto) < 2 {
		t.Fatalf("pareto = %+v", rep.Pareto)
	}
	if rep.Pareto[0].Cost != 0 || rep.Pareto[0].WNS != rep.InitialWNS {
		t.Errorf("pareto[0] = %+v, want the initial state", rep.Pareto[0])
	}
	for i := 1; i < len(rep.Pareto); i++ {
		if rep.Pareto[i].Cost <= rep.Pareto[i-1].Cost || rep.Pareto[i].WNS <= rep.Pareto[i-1].WNS {
			t.Errorf("pareto not strictly ascending at %d: %+v", i, rep.Pareto)
		}
	}
	if last := rep.Pareto[len(rep.Pareto)-1]; last.WNS < rep.FinalWNS {
		t.Errorf("frontier tip %+v below the final state WNS %g", last, rep.FinalWNS)
	}
}

// failingRandomDesign draws a random layered design and picks a default
// required time that makes its worst endpoints fail by a healthy margin.
func failingRandomDesign(t *testing.T, seed int64) (*netlist.Design, float64) {
	t.Helper()
	cfg := randnet.DesignConfig{
		Levels:   3,
		Width:    3,
		Net:      randnet.DefaultConfig(8 + int(seed%7)),
		FaninMax: 2,
		DelayMax: 10,
	}
	d := randnet.DesignSeed(seed, cfg)
	probe, err := timing.Analyze(context.Background(), d, timing.Options{Threshold: 0.7, Required: 1e12, Sequential: true})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	maxArr := 0.0
	for _, ep := range probe.Endpoints {
		if ep.Arrival.Max > maxArr {
			maxArr = ep.Arrival.Max
		}
	}
	if maxArr <= 0 {
		t.Fatalf("seed %d: degenerate design", seed)
	}
	return d, 0.8 * maxArr
}

// TestClosurePropertyRandomDesigns is the acceptance property: across 50+
// randomized failing designs, (1) the accepted edit list replays through
// ParseEdits + a fresh full AnalyzeDesign to the claimed WNS/TNS within
// 1e-9 without tripping a structural guard, and (2) concurrent trial
// evaluation accepts exactly the same move sequence as sequential.
func TestClosurePropertyRandomDesigns(t *testing.T) {
	designs := 50
	if testing.Short() {
		designs = 10
	}
	for seed := int64(0); seed < int64(designs); seed++ {
		d, required := failingRandomDesign(t, seed)
		topt := timing.Options{Threshold: 0.7, Required: required, Sequential: true}
		base := Options{Timing: topt, MaxMoves: 5, TopEndpoints: 3, ConeDepth: 3}

		seqOpt := base
		seqOpt.Sequential = true
		seq, err := CloseDesign(context.Background(), d, seqOpt)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		// Force a real worker pool even on a single-CPU machine, so the
		// determinism claim covers genuine goroutine interleaving.
		concOpt := base
		concOpt.Concurrency = 4
		conc, err := CloseDesign(context.Background(), d, concOpt)
		if err != nil {
			t.Fatalf("seed %d concurrent: %v", seed, err)
		}

		// Determinism: identical accepted-move sequences, bit for bit.
		if timing.FormatEdits(seq.Edits) != timing.FormatEdits(conc.Edits) {
			t.Fatalf("seed %d: concurrent and sequential accepted different edits:\n%s\nvs\n%s",
				seed, timing.FormatEdits(seq.Edits), timing.FormatEdits(conc.Edits))
		}
		if len(seq.Moves) != len(conc.Moves) {
			t.Fatalf("seed %d: move counts differ: %d vs %d", seed, len(seq.Moves), len(conc.Moves))
		}
		for i := range seq.Moves {
			a, b := seq.Moves[i], conc.Moves[i]
			if a.Move.Kind != b.Move.Kind || a.Move.Net != b.Move.Net || a.Move.Cost != b.Move.Cost ||
				a.WNS != b.WNS || a.TNS != b.TNS {
				t.Fatalf("seed %d move %d differs: %+v vs %+v", seed, i, a, b)
			}
		}
		if seq.FinalWNS != conc.FinalWNS || seq.FinalTNS != conc.FinalTNS {
			t.Fatalf("seed %d: final WNS/TNS differ: %g/%g vs %g/%g",
				seed, seq.FinalWNS, seq.FinalTNS, conc.FinalWNS, conc.FinalTNS)
		}

		// Replay: the formatted edit list reproduces the claimed numbers on
		// a from-scratch analysis.
		replayCheck(t, d, conc, topt)

		// The engine must never leave the design worse than it found it.
		if conc.FinalWNS < conc.InitialWNS {
			t.Fatalf("seed %d: WNS regressed %g -> %g", seed, conc.InitialWNS, conc.FinalWNS)
		}
	}
}

// TestClosureStopsOnBudget: the stop conditions phrase themselves.
func TestClosureStopsOnBudget(t *testing.T) {
	d := parseChip(t)
	topt := timing.Options{Threshold: 0.7, Sequential: true}
	rep, err := CloseDesign(context.Background(), d, Options{Timing: topt, MaxMoves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Closed && len(rep.Moves) > 1 {
		t.Fatalf("budget 1 accepted %d moves", len(rep.Moves))
	}
	if !rep.Closed && rep.Reason != "move budget exhausted" {
		t.Errorf("reason = %q", rep.Reason)
	}
	if len(rep.Moves) == 1 && rep.Moves[0].WNS <= rep.InitialWNS {
		t.Errorf("the one budgeted move bought nothing: %+v", rep.Moves[0])
	}

	rep, err = CloseDesign(context.Background(), d, Options{Timing: topt, MaxCost: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Closed || len(rep.Moves) != 0 {
		t.Fatalf("closed under a zero cost ceiling: %+v", rep)
	}
	if rep.Reason != "cost ceiling reached" {
		t.Errorf("reason = %q, want cost ceiling reached", rep.Reason)
	}
}

// TestClosureAlreadyClosed: a passing design is a no-op.
func TestClosureAlreadyClosed(t *testing.T) {
	d := parseChip(t)
	rep, err := CloseDesign(context.Background(), d,
		Options{Timing: timing.Options{Threshold: 0.7, Required: 1e9, Sequential: true}})
	if err != nil {
		t.Fatal(err)
	}
	// The deck's explicit .require cards still fail; raise them out of the
	// way by closing the design's unconstrained form instead.
	d.Requires = nil
	rep, err = CloseDesign(context.Background(), d,
		Options{Timing: timing.Options{Threshold: 0.7, Required: 1e9, Sequential: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Reason != "no failing endpoints" || len(rep.Moves) != 0 {
		t.Fatalf("passing design: %+v", rep)
	}
}

// TestClosureContextCancel: a cancelled context stops the loop with the
// context's error, and the partial report still rides along (it is the only
// record of the moves the session already absorbed).
func TestClosureContextCancel(t *testing.T) {
	d := parseChip(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := timing.NewSession(context.Background(), d, timing.Options{Threshold: 0.7, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Close(ctx, sess, Options{})
	if err == nil {
		t.Fatal("cancelled context did not stop the loop")
	}
	if rep == nil || rep.Reason != "cancelled" {
		t.Fatalf("partial report = %+v", rep)
	}
}

// TestFrontier: dominated points vanish, the rest sort by cost with WNS
// strictly improving.
func TestFrontier(t *testing.T) {
	pts := []ParetoPoint{
		{0, -30}, {5, -10}, {5, -12}, {3, -25}, {8, -10}, {10, -2}, {7, -40},
	}
	got := frontier(pts)
	want := []ParetoPoint{{0, -30}, {3, -25}, {5, -10}, {10, -2}}
	if len(got) != len(want) {
		t.Fatalf("frontier = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReportFormats: the three renderers agree on the same run and survive
// round trips through their own consumers.
func TestReportFormats(t *testing.T) {
	d := parseChip(t)
	topt := timing.Options{Threshold: 0.7, Sequential: true}
	rep, err := CloseDesign(context.Background(), d, Options{Timing: topt})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Summary()
	for _, want := range []string{"closure demo", "closed: met", "pareto frontier", "accepted ECO edits"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary lacks %q:\n%s", want, text)
		}
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rep.Moves)+2 { // header + initial + moves
		t.Errorf("csv rows = %d, want %d", len(rows), len(rep.Moves)+2)
	}
	if rows[1][1] != "initial" {
		t.Errorf("csv row 1 = %v", rows[1])
	}
	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Closed     bool    `json:"closed"`
		FinalWNS   float64 `json:"finalWns"`
		EditScript string  `json:"editScript"`
		Trajectory []struct {
			Kind string `json:"kind"`
		} `json:"trajectory"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Closed || decoded.FinalWNS != rep.FinalWNS || len(decoded.Trajectory) != len(rep.Moves) {
		t.Errorf("json round trip = %+v", decoded)
	}
	if _, err := timing.ParseEdits(decoded.EditScript); err != nil {
		t.Errorf("editScript does not reparse: %v", err)
	}
}

// TestClosureCorners: a corner-aware run on the demo chip must (1) only
// report closed when every swept corner meets timing, (2) keep each shadow
// corner an exact elementwise-scaled view of the repaired design — verified
// by replaying the corner-scaled edit list on an explicitly-scaled original
// and re-analyzing from scratch — and (3) accept the same move sequence
// concurrently as sequentially.
func TestClosureCorners(t *testing.T) {
	d := parseChip(t)
	topt := timing.Options{Threshold: 0.7, Sequential: true}
	base := Options{Timing: topt, MaxMoves: 64, Corners: mcd.DefaultCorners()}

	seqOpt := base
	seqOpt.Sequential = true
	rep, err := CloseDesign(context.Background(), d, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	// typ has scales (1,1) and rides on the main session, so only slow and
	// fast mount shadows.
	if len(rep.Corners) != 2 {
		t.Fatalf("corners = %+v, want slow and fast", rep.Corners)
	}
	if rep.Corners[0].Name != "slow" || rep.Corners[1].Name != "fast" {
		t.Fatalf("corner order = %+v", rep.Corners)
	}
	// The slow corner starts strictly worse than typ.
	if !(rep.Corners[0].InitialWNS < rep.InitialWNS) {
		t.Errorf("slow corner initial WNS %g not worse than typ %g",
			rep.Corners[0].InitialWNS, rep.InitialWNS)
	}
	if rep.Closed {
		if rep.FinalWNS < 0 {
			t.Errorf("closed with typ WNS %g", rep.FinalWNS)
		}
		for _, c := range rep.Corners {
			if c.FinalWNS < 0 {
				t.Errorf("closed with corner %s WNS %g", c.Name, c.FinalWNS)
			}
		}
	} else if rep.FinalWNS >= 0 && rep.Corners[0].FinalWNS >= 0 && rep.Corners[1].FinalWNS >= 0 {
		t.Error("all corners meet timing but the run is not closed")
	}
	// Scaled-edits invariant: replaying the corner-scaled edit list on an
	// explicitly-scaled original design reproduces each corner's final WNS.
	for i, c := range base.Corners {
		if c.RScale == 1 && c.CScale == 1 {
			continue
		}
		rf := make([]float64, len(d.Nets))
		cf := make([]float64, len(d.Nets))
		for j := range rf {
			rf[j], cf[j] = c.RScale, c.CScale
		}
		sd, err := mcd.ScaleDesign(d, rf, cf)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := timing.NewSession(context.Background(), sd, topt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Edits) > 0 {
			if _, err := sess.Apply(scaleEdits(rep.Edits, c)); err != nil {
				t.Fatalf("corner %s: scaled replay tripped a guard: %v", c.Name, err)
			}
		}
		got := sess.EndpointTable().WNS
		var want float64
		switch c.Name {
		case "slow":
			want = rep.Corners[0].FinalWNS
		case "fast":
			want = rep.Corners[1].FinalWNS
		}
		if !closeEnough(got, want) {
			t.Errorf("corner %s (idx %d): scaled replay WNS %g, engine claimed %g", c.Name, i, got, want)
		}
	}
	// Determinism with corners: concurrent trials accept the same sequence.
	concOpt := base
	concOpt.Concurrency = 4
	conc, err := CloseDesign(context.Background(), d, concOpt)
	if err != nil {
		t.Fatal(err)
	}
	if timing.FormatEdits(rep.Edits) != timing.FormatEdits(conc.Edits) {
		t.Fatalf("concurrent corner run accepted different edits:\n%s\nvs\n%s",
			timing.FormatEdits(rep.Edits), timing.FormatEdits(conc.Edits))
	}
	if rep.FinalWNS != conc.FinalWNS || rep.CornerVetoes != conc.CornerVetoes {
		t.Errorf("concurrent corner run diverged: WNS %g/%g vetoes %d/%d",
			rep.FinalWNS, conc.FinalWNS, rep.CornerVetoes, conc.CornerVetoes)
	}
	for i := range rep.Corners {
		if rep.Corners[i].FinalWNS != conc.Corners[i].FinalWNS {
			t.Errorf("corner %s final WNS differs across concurrency", rep.Corners[i].Name)
		}
	}
}

// TestClosureCornersMineFromCorner: when the typical corner passes but the
// slow corner fails, candidates must be mined from the failing corner's
// endpoint table rather than stopping at "no candidates".
func TestClosureCornersMineFromCorner(t *testing.T) {
	// Relax the requires so typ passes but the +15% slow corner still fails.
	d := parseChip(t)
	probe, err := timing.Analyze(context.Background(), d, timing.Options{Threshold: 0.7, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Set each require between the typ arrival and the slow-corner arrival
	// (global scaling of R and C by 1.15 each scales arrivals by ~1.32).
	byKey := map[[2]string]float64{}
	for _, ep := range probe.Endpoints {
		byKey[[2]string{ep.Net, ep.Output}] = ep.Arrival.Max
	}
	for i := range d.Requires {
		arr := byKey[[2]string{d.Requires[i].Net, d.Requires[i].Output}]
		d.Requires[i].Time = arr * 1.1 // typ meets with 10%; slow (+32%) fails
	}
	topt := timing.Options{Threshold: 0.7, Sequential: true}
	rep, err := CloseDesign(context.Background(), d, Options{
		Timing: topt, Sequential: true, MaxMoves: 64, Corners: mcd.DefaultCorners(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialWNS < 0 {
		t.Fatalf("typ should start passing, WNS %g", rep.InitialWNS)
	}
	if rep.Corners[0].InitialWNS >= 0 {
		t.Fatalf("slow corner should start failing, WNS %g", rep.Corners[0].InitialWNS)
	}
	if len(rep.Moves) == 0 {
		t.Fatalf("no moves accepted mining the slow corner: %+v", rep)
	}
	if rep.Corners[0].FinalWNS <= rep.Corners[0].InitialWNS {
		t.Errorf("slow corner did not improve: %g -> %g",
			rep.Corners[0].InitialWNS, rep.Corners[0].FinalWNS)
	}
	// The typical corner must never regress below zero while repairing slow.
	if rep.FinalWNS < 0 {
		t.Errorf("repairing the slow corner broke typ: WNS %g", rep.FinalWNS)
	}
}
