package closure

import (
	"context"
	"testing"

	"repro/internal/batch"
	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/timing"
)

// benchDesign draws the benchmark chip once: a 5x8 pipeline of 40-node nets
// with the default required time set so roughly the worst fifth of the
// endpoints fail — enough failing cones that every iteration generates a
// realistic candidate fan-out.
func benchDesign(b *testing.B) (*netlist.Design, float64) {
	b.Helper()
	cfg := randnet.DefaultDesignConfig(5, 8)
	cfg.Net = randnet.DefaultConfig(40)
	d := randnet.DesignSeed(7, cfg)
	probe, err := timing.Analyze(context.Background(), d,
		timing.Options{Threshold: 0.7, Required: 1e12, Sequential: true})
	if err != nil {
		b.Fatal(err)
	}
	maxArr := 0.0
	for _, ep := range probe.Endpoints {
		if ep.Arrival.Max > maxArr {
			maxArr = ep.Arrival.Max
		}
	}
	return d, 0.8 * maxArr
}

// BenchmarkClosure times the repair loop end to end — candidate generation,
// what-if trials, accept, re-report — with trial evaluation sequential vs
// fanned across the worker pool. The session mount is paid outside the
// timer (a shared warm batch engine serves the per-net bounds), so the
// ratio isolates the trial-evaluation concurrency win.
// scripts/bench_trajectory.sh records it in BENCH_timing.json as
// closure_concurrent_vs_sequential.
func BenchmarkClosure(b *testing.B) {
	d, required := benchDesign(b)
	engine := batch.New(batch.Options{})
	// K < 0 skips critical-path backtracking in the per-iteration reports —
	// the repair loop only consumes the endpoint table.
	topt := timing.Options{Threshold: 0.7, Required: required, Engine: engine, K: -1}
	run := func(b *testing.B, o Options) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess, err := timing.NewSession(ctx, d, topt)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			rep, err := Close(ctx, sess, o)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Moves) == 0 {
				b.Fatal("benchmark design accepted no moves")
			}
		}
	}
	base := Options{MaxMoves: 6, TopEndpoints: 4, ConeDepth: 4}
	b.Run("sequential", func(b *testing.B) {
		o := base
		o.Sequential = true
		run(b, o)
	})
	b.Run("concurrent", func(b *testing.B) {
		run(b, base)
	})
}
