package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rctree"
)

// fig7Times are the characteristic times of the paper's Figure 7 example
// network at its output: TP=419, TD=363, TR=6033/18, Ree=18 (verified
// against the algebra package and every legible Figure 10 entry).
var fig7Times = rctree.Times{TP: 419, TD: 363, TR: 6033.0 / 18, Ree: 18}

func fig7Bounds(t *testing.T) *Bounds {
	t.Helper()
	b, err := New(fig7Times)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFigure10DelayTable reproduces the first table of Figure 10 — the
// paper's own printed TMIN/TMAX values for thresholds 0.1..0.9 — to the
// paper's printed precision.
func TestFigure10DelayTable(t *testing.T) {
	b := fig7Bounds(t)
	rows := []struct{ v, tmin, tmax float64 }{
		{0.1, 0, 68.167},
		{0.2, 27.8, 117.22},
		{0.3, 71.46, 173.17},
		{0.4, 123.13, 237.76},
		{0.5, 184.23, 314.15}, // TMIN partially illegible in the scan; 184.23 is our reading
		{0.6, 259.02, 407.65},
		{0.7, 355.45, 528.18},
		{0.8, 491.34, 698.07},
		{0.9, 723.66, 988.5},
	}
	for _, row := range rows {
		gotMin, gotMax := b.TMin(row.v), b.TMax(row.v)
		tolMin := math.Max(0.06, 1e-4*row.tmin)
		tolMax := math.Max(0.06, 1e-4*row.tmax)
		if math.Abs(gotMin-row.tmin) > tolMin {
			t.Errorf("TMin(%.1f) = %.4f, paper prints %.4f", row.v, gotMin, row.tmin)
		}
		if math.Abs(gotMax-row.tmax) > tolMax {
			t.Errorf("TMax(%.1f) = %.4f, paper prints %.4f", row.v, gotMax, row.tmax)
		}
	}
}

// TestFigure10VoltageTable reproduces the second table of Figure 10 — the
// paper's VMIN/VMAX values for times 20..2000.
func TestFigure10VoltageTable(t *testing.T) {
	b := fig7Bounds(t)
	rows := []struct{ tt, vmin, vmax float64 }{
		{20, 0, 0.18138},
		{40, 0.03243, 0.22912},
		{60, 0.0814, 0.27565},
		{80, 0.12565, 0.31761},
		{100, 0.16644, 0.35714},
		{200, 0.34342, 0.52297},
		{300, 0.48283, 0.64603},
		{400, 0.59263, 0.73734},
		{500, 0.67913, 0.8051},
		{1000, 0.90271, 0.95615},
		{2000, 0.99105, 0.99778},
	}
	for _, row := range rows {
		gotMin, gotMax := b.VMin(row.tt), b.VMax(row.tt)
		if math.Abs(gotMin-row.vmin) > 6e-5 {
			t.Errorf("VMin(%g) = %.6f, paper prints %.5f", row.tt, gotMin, row.vmin)
		}
		if math.Abs(gotMax-row.vmax) > 6e-5 {
			t.Errorf("VMax(%g) = %.6f, paper prints %.5f", row.tt, gotMax, row.vmax)
		}
	}
}

// randTimes draws a random valid characteristic-time triple with the eq. 7
// ordering TR <= TD <= TP.
func randTimes(rng *rand.Rand) rctree.Times {
	tp := rng.Float64()*1000 + 1e-3
	td := tp * rng.Float64()
	tr := td * rng.Float64()
	return rctree.Times{TP: tp, TD: td, TR: tr, Ree: rng.Float64()*100 + 1e-3}
}

// TestEnvelopeInvariants property-tests DESIGN invariant 3: at every time,
// 0 <= VMinElmore(t) <= ... and VMin <= VMax, both within [0,1], both -> 1.
func TestEnvelopeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		tm := randTimes(rng)
		b := MustNew(tm)
		for i := 0; i < 60; i++ {
			tt := rng.Float64() * tm.TP * 10
			lo, hi := b.VMin(tt), b.VMax(tt)
			if lo < 0 || hi > 1 || lo > hi+1e-12 {
				t.Fatalf("trial %d: envelope violated at t=%g: vmin=%g vmax=%g (times %+v)",
					trial, tt, lo, hi, tm)
			}
			if el := b.VMinElmore(tt); el > lo+1e-12 {
				t.Fatalf("trial %d: eq. 4 bound %g exceeds full lower bound %g at t=%g",
					trial, el, lo, tt)
			}
		}
		// Late-time convergence to 1.
		late := tm.TP*20 + 100
		if b.VMin(late) < 0.9 {
			t.Errorf("trial %d: VMin(%g) = %g has not approached 1 (times %+v)",
				trial, late, b.VMin(late), tm)
		}
	}
}

// TestDelayBoundInvariants property-tests DESIGN invariant 4: TMin <= TMax,
// both nondecreasing in v.
func TestDelayBoundInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		tm := randTimes(rng)
		b := MustNew(tm)
		prevMin, prevMax := 0.0, 0.0
		for i := 1; i <= 99; i++ {
			v := float64(i) / 100
			lo, hi := b.TMin(v), b.TMax(v)
			if lo > hi+1e-9 {
				t.Fatalf("trial %d: TMin(%g)=%g > TMax(%g)=%g (times %+v)",
					trial, v, lo, v, hi, tm)
			}
			if lo < prevMin-1e-9 || hi < prevMax-1e-9 {
				t.Fatalf("trial %d: bounds not monotone at v=%g (times %+v)", trial, v, tm)
			}
			prevMin, prevMax = lo, hi
		}
	}
}

// TestVoltageDelayConsistency: the delay bounds are the inversions of the
// voltage bounds, so VMax(TMin(v)) ~= v on the rising region and
// VMin(TMax(v)) ~= v. (The paper derives 14-17 by inverting 8-12.)
func TestVoltageDelayConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		tm := randTimes(rng)
		if tm.TD < 1e-6 {
			continue
		}
		b := MustNew(tm)
		for _, v := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			if tmin := b.TMin(v); tmin > 0 {
				got := b.VMax(tmin)
				if math.Abs(got-v) > 1e-6 {
					t.Fatalf("trial %d: VMax(TMin(%g)) = %g, want %g (times %+v)",
						trial, v, got, v, tm)
				}
			}
			tmax := b.TMax(v)
			got := b.VMin(tmax)
			if math.Abs(got-v) > 1e-6 {
				t.Fatalf("trial %d: VMin(TMax(%g)) = %g, want %g (times %+v)",
					trial, v, got, v, tm)
			}
		}
	}
}

// TestLowerBoundContinuity checks DESIGN invariant 6: the lower-bound pieces
// meet continuously at t = TD−TR (value 0) and t = TP−TR (value 1−TD/TP).
func TestLowerBoundContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		tm := randTimes(rng)
		b := MustNew(tm)
		t1 := tm.TD - tm.TR
		if t1 > 0 {
			if got := b.VMin(t1); math.Abs(got-0) > 1e-9 && tm.TD > 1e-9 {
				// At t1 the rational piece 1 − TD/(t1+TR) = 1 − TD/TD = 0
				// unless the exponential piece already applies (t1 >= TP−TR
				// requires TD >= TP, i.e. TD == TP).
				if t1 < tm.TP-tm.TR-1e-12 {
					t.Fatalf("trial %d: VMin(TD-TR)=%g, want 0 (times %+v)", trial, got, tm)
				}
			}
		}
		t2 := tm.TP - tm.TR
		if t2 > 0 && tm.TP > 0 {
			rational := 1 - tm.TD/(t2+tm.TR)
			expPiece := 1 - tm.TD/tm.TP
			if math.Abs(rational-expPiece) > 1e-9 {
				t.Fatalf("trial %d: pieces disagree at TP-TR: %g vs %g", trial, rational, expPiece)
			}
		}
	}
}

// TestOKVerdicts exercises the Figure 9 predicate on the Figure 7 network.
func TestOKVerdicts(t *testing.T) {
	b := fig7Bounds(t)
	// TMin(0.5) ~ 184.23, TMax(0.5) ~ 314.15.
	cases := []struct {
		v, tt float64
		want  Verdict
	}{
		{0.5, 100, Fails},
		{0.5, 200, Unknown},
		{0.5, 350, Passes},
		{0.9, 700, Fails},
		{0.9, 800, Unknown},
		{0.9, 990, Passes},
	}
	for _, tc := range cases {
		if got := b.OK(tc.v, tc.tt); got != tc.want {
			t.Errorf("OK(%g, %g) = %v, want %v", tc.v, tc.tt, got, tc.want)
		}
	}
}

// TestOKConsistentWithBounds: quick-checks that OK never contradicts the
// bound functions it is defined from.
func TestOKConsistentWithBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm := randTimes(r)
		b := MustNew(tm)
		v := 0.05 + 0.9*r.Float64()
		tt := r.Float64() * tm.TP * 3
		switch b.OK(v, tt) {
		case Passes:
			return tt >= b.TMax(v)
		case Fails:
			return tt < b.TMin(v)
		default:
			return tt >= b.TMin(v) && tt < b.TMax(v)
		}
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Passes: "passes", Fails: "fails", Unknown: "unknown", Verdict(7): "Verdict(7)"} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

// TestDegenerateInputs covers the edge values the paper's APL excludes.
func TestDegenerateInputs(t *testing.T) {
	b := fig7Bounds(t)
	if got := b.VMax(-5); got != 0 {
		t.Errorf("VMax(-5) = %g, want 0", got)
	}
	if got := b.VMin(-5); got != 0 {
		t.Errorf("VMin(-5) = %g, want 0", got)
	}
	if got := b.TMin(0); got != 0 {
		t.Errorf("TMin(0) = %g, want 0", got)
	}
	if got := b.TMax(0); got != 0 {
		t.Errorf("TMax(0) = %g, want 0", got)
	}
	if got := b.TMin(1); !math.IsInf(got, 1) {
		t.Errorf("TMin(1) = %g, want +Inf", got)
	}
	if got := b.TMax(1.5); !math.IsInf(got, 1) {
		t.Errorf("TMax(1.5) = %g, want +Inf", got)
	}
	if got := b.TMaxElmore(0.5); math.Abs(got-726) > 1e-9 {
		t.Errorf("TMaxElmore(0.5) = %g, want 726", got)
	}

	// Zero-TP network: instantaneous response.
	zb := MustNew(rctree.Times{})
	if zb.VMax(1) != 1 || zb.VMin(1) != 1 {
		t.Errorf("zero network response = [%g,%g], want [1,1]", zb.VMin(1), zb.VMax(1))
	}
	if zb.TMin(0.5) != 0 || zb.TMax(0.5) != 0 {
		t.Errorf("zero network delay = [%g,%g], want [0,0]", zb.TMin(0.5), zb.TMax(0.5))
	}
}

func TestNewRejectsInvalidTimes(t *testing.T) {
	if _, err := New(rctree.Times{TP: 1, TD: 2, TR: 0.5}); err == nil {
		t.Error("New accepted TD > TP")
	}
	if _, err := New(rctree.Times{TP: 3, TD: 1, TR: 2}); err == nil {
		t.Error("New accepted TR > TD")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid times")
		}
	}()
	MustNew(rctree.Times{TP: 1, TD: 2})
}

func TestSwitchPoints(t *testing.T) {
	b := fig7Bounds(t)
	if got, want := b.UpperSwitch(), 363-6033.0/18; math.Abs(got-want) > 1e-12 {
		t.Errorf("UpperSwitch = %g, want %g", got, want)
	}
	if got, want := b.LowerSwitch(), 419-6033.0/18; math.Abs(got-want) > 1e-12 {
		t.Errorf("LowerSwitch = %g, want %g", got, want)
	}
	if got, want := b.ThresholdSwitch(), 1-363.0/419; math.Abs(got-want) > 1e-12 {
		t.Errorf("ThresholdSwitch = %g, want %g", got, want)
	}
}

// TestSinglePoleBoundsAreExact: for a one-pole network TP = TD = TR = RC,
// and both delay bounds collapse to the exact crossing RC·ln(1/(1−v)) — the
// bounds are tight exactly when the paper says they are (all resistance
// common to all capacitance).
func TestSinglePoleBoundsAreExact(t *testing.T) {
	const rc = 250.0
	b := MustNew(rctree.Times{TP: rc, TD: rc, TR: rc, Ree: 100})
	for _, v := range []float64{0.01, 0.1, 0.5, 0.63, 0.9, 0.99} {
		exact := rc * math.Log(1/(1-v))
		if got := b.TMin(v); math.Abs(got-exact) > 1e-9*exact {
			t.Errorf("TMin(%g) = %g, want exact %g", v, got, exact)
		}
		if got := b.TMax(v); math.Abs(got-exact) > 1e-9*exact {
			t.Errorf("TMax(%g) = %g, want exact %g", v, got, exact)
		}
	}
	// The voltage envelope likewise pinches onto 1 − e^(−t/RC).
	for _, tt := range []float64{10, 100, 250, 1000} {
		exact := 1 - math.Exp(-tt/rc)
		if got := b.VMax(tt); math.Abs(got-exact) > 1e-12 {
			t.Errorf("VMax(%g) = %g, want exact %g", tt, got, exact)
		}
		if got := b.VMin(tt); math.Abs(got-exact) > 1e-12 {
			t.Errorf("VMin(%g) = %g, want exact %g", tt, got, exact)
		}
	}
}
