package core

import (
	"math"
	"testing"

	"repro/internal/rctree"
)

// buildFanout constructs a two-output fanout net: a shared driver resistor
// feeding a fast near output and a slow far output.
func buildFanout(t *testing.T) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder("in")
	drv := b.Resistor(rctree.Root, "drv", 100)
	b.Capacitor(drv, 0.1)
	near := b.Resistor(drv, "near", 10)
	b.Capacitor(near, 0.2)
	far := b.Line(drv, "far", 500, 1.0)
	b.Capacitor(far, 0.3)
	b.Output(near)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeTree(t *testing.T) {
	tr := buildFanout(t)
	results, err := AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Name != "near" || results[1].Name != "far" {
		t.Errorf("results out of declaration order: %q, %q", results[0].Name, results[1].Name)
	}
	// TP is shared between outputs.
	if math.Abs(results[0].Times.TP-results[1].Times.TP) > 1e-9 {
		t.Errorf("TP differs between outputs: %g vs %g", results[0].Times.TP, results[1].Times.TP)
	}
	// The far output is slower by any measure.
	if results[0].Times.TD >= results[1].Times.TD {
		t.Errorf("near TD %g >= far TD %g", results[0].Times.TD, results[1].Times.TD)
	}
	if results[0].Bounds.TMax(0.5) >= results[1].Bounds.TMax(0.5) {
		t.Error("near output should certify faster than far output")
	}
}

func TestCriticalOutputs(t *testing.T) {
	tr := buildFanout(t)
	results, err := AnalyzeTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	crit := CriticalOutputs(results, 0.7)
	if crit[0].Name != "far" {
		t.Errorf("most critical output = %q, want far", crit[0].Name)
	}
	// The original slice must be untouched.
	if results[0].Name != "near" {
		t.Error("CriticalOutputs mutated its input")
	}
}

func TestDelayAndVoltageTables(t *testing.T) {
	b := MustNew(fig7Times)
	dt := b.DelayTable([]float64{0.1, 0.5, 0.9})
	if len(dt) != 3 {
		t.Fatalf("DelayTable rows = %d, want 3", len(dt))
	}
	for _, row := range dt {
		if row.TMin > row.TMax {
			t.Errorf("row %+v has TMin > TMax", row)
		}
	}
	vt := b.VoltageTable([]float64{20, 200, 2000})
	if len(vt) != 3 {
		t.Fatalf("VoltageTable rows = %d, want 3", len(vt))
	}
	for i := 1; i < len(vt); i++ {
		if vt[i].VMin < vt[i-1].VMin || vt[i].VMax < vt[i-1].VMax {
			t.Errorf("voltage table not monotone: %+v -> %+v", vt[i-1], vt[i])
		}
	}
}

func TestSampleCurves(t *testing.T) {
	b := MustNew(fig7Times)
	pts := b.SampleCurves(600, 60)
	if len(pts) != 61 {
		t.Fatalf("got %d points, want 61", len(pts))
	}
	if pts[0].T != 0 || math.Abs(pts[60].T-600) > 1e-12 {
		t.Errorf("sample range [%g, %g], want [0, 600]", pts[0].T, pts[60].T)
	}
	for _, p := range pts {
		if p.VMin > p.VMax {
			t.Errorf("at t=%g: vmin %g > vmax %g", p.T, p.VMin, p.VMax)
		}
		if p.VMinElmore > p.VMin+1e-12 {
			t.Errorf("at t=%g: Elmore bound above full bound", p.T)
		}
	}
	// Degenerate arguments fall back to sane defaults.
	if got := b.SampleCurves(-1, 0); len(got) != 2 {
		t.Errorf("degenerate sampling produced %d points", len(got))
	}
}

func TestEnvelopeWidth(t *testing.T) {
	b := MustNew(fig7Times)
	w := b.EnvelopeWidth(2000, 400)
	if w <= 0 || w >= 1 {
		t.Fatalf("EnvelopeWidth = %g, want in (0,1)", w)
	}
	// A driver-dominated net (most resistance in the pullup) has a much
	// tighter envelope — the paper's §I tightness remark.
	driver := MustNew(rctree.Times{TP: 101, TD: 100.5, TR: 100.2, Ree: 100})
	if dw := driver.EnvelopeWidth(600, 400); dw >= w {
		t.Errorf("driver-dominated envelope %g not tighter than wire-dominated %g", dw, w)
	}
}

func TestAnalyzeTreePropagatesErrors(t *testing.T) {
	// A tree whose output is corrupted to an invalid index must error.
	tr := buildFanout(t)
	if _, err := tr.CharacteristicTimes(rctree.NodeID(99)); err == nil {
		t.Error("expected characteristic-times error")
	}
}
