// Package core implements the primary contribution of Penfield and
// Rubinstein's "Signal Delay in RC Tree Networks": computationally simple
// upper and lower bounds on the unit-step response of an RC tree, expressed
// through the three characteristic times TP, TDe and TRe.
//
// The package provides, per output:
//
//   - voltage bounds VMin(t) and VMax(t) (eqs. 8–12),
//   - delay bounds TMin(v) and TMax(v) (eqs. 13–17),
//   - the certification predicate OK (Figure 9), and
//   - curve sampling used to regenerate Figures 5, 10 and 11.
//
// All of it follows directly from the paper's APL functions VMIN, VMAX,
// TMIN, TMAX and OK, with explicit handling of the degenerate values the
// paper excludes ("these fail for networks without any resistances or
// capacitances, and for V = 0 or T = 0").
package core

import (
	"fmt"
	"math"

	"repro/internal/rctree"
)

// Bounds evaluates the Penfield–Rubinstein bounds for one output of an RC
// tree, characterized by its Times. Construct it with New, which validates
// the eq. 7 ordering.
type Bounds struct {
	tm rctree.Times
}

// New returns a bound evaluator for the given characteristic times.
func New(tm rctree.Times) (*Bounds, error) {
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	if tm.TP < 0 {
		return nil, fmt.Errorf("core: TP must be nonnegative, got %g", tm.TP)
	}
	return &Bounds{tm: tm}, nil
}

// Eval is the by-value form of New for hot paths that must not allocate:
// the returned Bounds lives on the caller's stack and its methods may be
// called on the addressable local directly. Validation matches New.
func Eval(tm rctree.Times) (Bounds, error) {
	if err := tm.Validate(); err != nil {
		return Bounds{}, err
	}
	return Bounds{tm: tm}, nil
}

// MustNew is New for statically known times; it panics on error.
func MustNew(tm rctree.Times) *Bounds {
	b, err := New(tm)
	if err != nil {
		panic(err)
	}
	return b
}

// Times returns the characteristic times behind the bounds.
func (b *Bounds) Times() rctree.Times { return b.tm }

// expDecay computes e^(-t/tau) with tau=0 treated as the limit: 1 at t<=0
// and 0 for t>0.
func expDecay(t, tau float64) float64 {
	if tau == 0 {
		if t > 0 {
			return 0
		}
		return 1
	}
	return math.Exp(-t / tau)
}

// clamp01 restricts a voltage to the physically meaningful interval [0,1].
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// VMax returns the upper bound on the unit-step response at time t,
// the tighter of eq. 8 (linear, small t) and eq. 9 (exponential, large t):
//
//	v(t) <= min( (t + TP − TD)/TP , 1 − (TD/TP)·e^(−t/TR) )
func (b *Bounds) VMax(t float64) float64 {
	if t < 0 {
		return 0
	}
	tm := b.tm
	if tm.TP == 0 {
		// No resistance-capacitance product anywhere: the response is an
		// immediate step.
		return 1
	}
	linear := (t + tm.TP - tm.TD) / tm.TP
	exp := 1 - (tm.TD/tm.TP)*expDecay(t, tm.TR)
	return clamp01(math.Min(linear, exp))
}

// VMin returns the lower bound on the unit-step response at time t, the
// tightest of eq. 10 (zero, small t), eq. 11 (rational, mid t) and eq. 12
// (exponential, t >= TP − TR):
//
//	v(t) >= max( 0 , 1 − TD/(t + TR) , [t ≥ TP−TR]·(1 − (TD/TP)·e^(−(t−TP+TR)/TP)) )
func (b *Bounds) VMin(t float64) float64 {
	if t < 0 {
		return 0
	}
	tm := b.tm
	if tm.TP == 0 {
		return 1
	}
	v := 0.0
	if t+tm.TR > 0 {
		v = math.Max(v, 1-tm.TD/(t+tm.TR))
	}
	if t >= tm.TP-tm.TR {
		v = math.Max(v, 1-(tm.TD/tm.TP)*expDecay(t-(tm.TP-tm.TR), tm.TP))
	}
	return clamp01(v)
}

// VMinElmore is the paper's introductory single-constant lower bound, eq. 4:
// v(t) >= 1 − TD/t. It is weaker than VMin and exists for comparison
// (EXPERIMENTS E7).
func (b *Bounds) VMinElmore(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return clamp01(1 - b.tm.TD/t)
}

// TMin returns the lower bound on the time at which the response crosses
// threshold v (0 < v < 1), per eqs. 13–15:
//
//	t >= max( 0 , TD − TP(1−v) , TR·ln( TD / (TP(1−v)) ) )
//
// TMin(v<=0) is 0; TMin(v>=1) is +Inf for any network with TD > 0.
func (b *Bounds) TMin(v float64) float64 {
	tm := b.tm
	if v <= 0 || tm.TP == 0 || tm.TD == 0 {
		return 0
	}
	if v >= 1 {
		return math.Inf(1)
	}
	t := math.Max(0, tm.TD-tm.TP*(1-v))
	if arg := tm.TD / (tm.TP * (1 - v)); arg > 0 {
		t = math.Max(t, tm.TR*math.Log(arg))
	}
	return t
}

// TMax returns the upper bound on the threshold-crossing time, per
// eqs. 16–17:
//
//	t <= min( TD/(1−v) − TR , TP − TR + TP·max(0, ln( TD / (TP(1−v)) )) )
//
// TMax(v<=0) is 0; TMax(v>=1) is +Inf.
func (b *Bounds) TMax(v float64) float64 {
	tm := b.tm
	if v <= 0 || tm.TP == 0 || tm.TD == 0 {
		return 0
	}
	if v >= 1 {
		return math.Inf(1)
	}
	rational := tm.TD/(1-v) - tm.TR
	logTerm := math.Max(0, math.Log(tm.TD/(tm.TP*(1-v))))
	exp := tm.TP - tm.TR + tm.TP*logTerm
	return math.Min(rational, exp)
}

// TMaxElmore inverts eq. 4: t <= TD/(1−v), the single-constant upper bound
// implied by the Elmore delay alone (for comparison; looser than TMax by TR).
func (b *Bounds) TMaxElmore(v float64) float64 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return math.Inf(1)
	}
	return b.tm.TD / (1 - v)
}

// Verdict is the result of the certification predicate OK (Figure 9).
type Verdict int

const (
	// Fails means the deadline is sooner than TMin: the output definitely
	// has not reached the threshold by time T.
	Fails Verdict = -1
	// Unknown means TMin <= T < TMax: the bounds are not tight enough to
	// decide.
	Unknown Verdict = 0
	// Passes means TMax <= T: the output is certainly past the threshold.
	Passes Verdict = 1
)

func (v Verdict) String() string {
	switch v {
	case Fails:
		return "fails"
	case Unknown:
		return "unknown"
	case Passes:
		return "passes"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// OK certifies whether the output reaches threshold v by deadline t,
// mirroring the paper's APL: Z <- (T >= TMAX) - (T < TMIN).
func (b *Bounds) OK(v, t float64) Verdict {
	switch {
	case t >= b.TMax(v):
		return Passes
	case t < b.TMin(v):
		return Fails
	}
	return Unknown
}

// UpperSwitch returns the time TD − TR below which the linear upper bound
// (eq. 8) is the applicable tight bound per the paper's region statement.
func (b *Bounds) UpperSwitch() float64 { return b.tm.TD - b.tm.TR }

// LowerSwitch returns the time TP − TR at which the lower bound switches
// from the rational piece (eq. 11) to the exponential piece (eq. 12).
func (b *Bounds) LowerSwitch() float64 { return b.tm.TP - b.tm.TR }

// ThresholdSwitch returns the voltage 1 − TD/TP at which the delay upper
// bound switches from eq. 16 to eq. 17.
func (b *Bounds) ThresholdSwitch() float64 {
	if b.tm.TP == 0 {
		return 0
	}
	return 1 - b.tm.TD/b.tm.TP
}
