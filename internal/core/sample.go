package core

// CurvePoint is one sample of the bound envelope at time T, used to
// regenerate Figures 5 and 11 (bounds vs. exact response).
type CurvePoint struct {
	T          float64
	VMin, VMax float64
	// VMinElmore is the weaker eq. 4 lower bound, for the Figure 5-style
	// comparison of the single-constant bound against the full envelope.
	VMinElmore float64
}

// SampleCurves evaluates the bound envelope on n+1 uniformly spaced times in
// [0, tEnd]. n must be at least 1; tEnd must be positive.
func (b *Bounds) SampleCurves(tEnd float64, n int) []CurvePoint {
	if n < 1 {
		n = 1
	}
	if tEnd <= 0 {
		tEnd = 1
	}
	pts := make([]CurvePoint, n+1)
	for i := 0; i <= n; i++ {
		t := tEnd * float64(i) / float64(n)
		pts[i] = CurvePoint{
			T:          t,
			VMin:       b.VMin(t),
			VMax:       b.VMax(t),
			VMinElmore: b.VMinElmore(t),
		}
	}
	return pts
}

// EnvelopeWidth returns the maximum vertical gap VMax−VMin over the sampled
// interval, a scalar measure of bound tightness (small when most of the
// resistance is in the driver, per the paper's §I remark).
func (b *Bounds) EnvelopeWidth(tEnd float64, n int) float64 {
	var width float64
	for _, p := range b.SampleCurves(tEnd, n) {
		if gap := p.VMax - p.VMin; gap > width {
			width = gap
		}
	}
	return width
}
