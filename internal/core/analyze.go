package core

import (
	"fmt"
	"sort"

	"repro/internal/rctree"
)

// Result pairs an output node with its characteristic times and bounds.
type Result struct {
	Output rctree.NodeID
	Name   string
	Times  rctree.Times
	Bounds *Bounds
}

// Analyzer computes per-output bounds while reusing the characteristic-time
// working arrays between trees. All mutable state is owned by the Analyzer,
// so distinct Analyzers may run concurrently on distinct goroutines (one per
// worker); a single Analyzer must not be shared. The zero value is ready to
// use.
type Analyzer struct {
	scratch rctree.Scratch
}

// NewAnalyzer returns an Analyzer with fresh scratch.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// Analyze computes bounds for every designated output of the tree, returned
// in output-declaration order. Results reference only immutable state and
// may be shared freely once returned.
func (a *Analyzer) Analyze(t *rctree.Tree) ([]Result, error) {
	results := make([]Result, 0, len(t.Outputs()))
	for _, e := range t.Outputs() {
		tm, err := t.CharacteristicTimesInto(e, &a.scratch)
		if err != nil {
			return nil, fmt.Errorf("core: output %q: %w", t.Name(e), err)
		}
		b, err := New(tm)
		if err != nil {
			return nil, fmt.Errorf("core: output %q: %w", t.Name(e), err)
		}
		results = append(results, Result{Output: e, Name: t.Name(e), Times: tm, Bounds: b})
	}
	return results, nil
}

// AnalyzeTree computes bounds for every designated output of the tree with a
// one-shot Analyzer.
func AnalyzeTree(t *rctree.Tree) ([]Result, error) {
	return NewAnalyzer().Analyze(t)
}

// DelayRow is one line of the paper's Figure 10 delay table: a threshold and
// its bracketed crossing time.
type DelayRow struct {
	V          float64
	TMin, TMax float64
}

// DelayTable evaluates TMin/TMax at each threshold, reproducing the first
// Figure 10 table.
func (b *Bounds) DelayTable(thresholds []float64) []DelayRow {
	rows := make([]DelayRow, len(thresholds))
	for i, v := range thresholds {
		rows[i] = DelayRow{V: v, TMin: b.TMin(v), TMax: b.TMax(v)}
	}
	return rows
}

// VoltageRow is one line of the paper's Figure 10 voltage table: a time and
// its bracketed response voltage.
type VoltageRow struct {
	T          float64
	VMin, VMax float64
}

// VoltageTable evaluates VMin/VMax at each time, reproducing the second
// Figure 10 table.
func (b *Bounds) VoltageTable(times []float64) []VoltageRow {
	rows := make([]VoltageRow, len(times))
	for i, t := range times {
		rows[i] = VoltageRow{T: t, VMin: b.VMin(t), VMax: b.VMax(t)}
	}
	return rows
}

// CriticalOutputs sorts analysis results by descending TMax at the given
// threshold, the ordering a designer cares about: the slowest-certifiable
// output first. Ties break by name for determinism.
func CriticalOutputs(results []Result, threshold float64) []Result {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		ti, tj := sorted[i].Bounds.TMax(threshold), sorted[j].Bounds.TMax(threshold)
		if ti != tj {
			return ti > tj
		}
		return sorted[i].Name < sorted[j].Name
	})
	return sorted
}
