// Package mc estimates the effect of process variation on RC-tree timing by
// Monte Carlo: element values are perturbed with independent relative
// Gaussian variations (sheet-resistance and oxide-thickness spread), the
// characteristic times recomputed per sample, and any scalar timing metric
// summarized with moments and quantiles.
//
// Because the Penfield–Rubinstein TMax is itself a guaranteed bound, the
// high quantiles of TMax under variation give a *certified-under-variation*
// delay figure — the corner-analysis workflow of the era, with statistics.
//
// This package works on single trees and rebuilds the tree per sample.
// Design-level callers wanting the same analysis across a whole chip —
// process corners, per-endpoint slack distributions, criticality
// probability — should use internal/mcd, which sweeps the flat timing arena
// in place instead of rebuilding trees and is orders of magnitude cheaper
// per sample on large designs.
package mc

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/rctree"
	"repro/internal/stats"
)

// Variation describes independent relative 1-sigma spreads of every
// resistance and capacitance. Gaussian factors are clipped to stay positive
// (at 1% of nominal); every clipped draw is counted in Result.Clipped, since
// clipping truncates the low tail and biases the mean and quantiles upward.
type Variation struct {
	RSigma, CSigma float64
}

// Metric maps an output's characteristic times to the scalar under study.
type Metric func(tm rctree.Times) (float64, error)

// TMaxAt returns the metric "certified delay at threshold v".
func TMaxAt(v float64) Metric {
	return func(tm rctree.Times) (float64, error) {
		b, err := core.New(tm)
		if err != nil {
			return 0, err
		}
		return b.TMax(v), nil
	}
}

// ElmoreTD is the baseline metric: the Elmore delay itself.
func ElmoreTD() Metric {
	return func(tm rctree.Times) (float64, error) { return tm.TD, nil }
}

// Result summarizes the sampled metric.
//
// Clipped counts the individual Gaussian factor draws (across all samples and
// all elements) that fell below the 0.01 positivity floor and were clipped to
// it. Clipping truncates the low tail of the factor distribution, which
// biases Mean and the quantiles upward relative to an unclipped Gaussian; at
// fabrication-realistic sigmas (a few percent) Clipped is essentially always
// zero, and a nonzero count is the signal that sigma is large enough for the
// reported statistics to carry that bias.
type Result struct {
	Samples       int
	Nominal       float64
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
	Clipped       int
}

// Run draws samples perturbed trees, evaluates the metric at output e of
// each, and summarizes. Sampling is deterministic for a given seed; it is a
// convenience wrapper over RunWithRand with a private rand.New source.
func Run(t *rctree.Tree, e rctree.NodeID, metric Metric, v Variation, samples int, seed int64) (Result, error) {
	return RunWithRand(t, e, metric, v, samples, rand.New(rand.NewSource(seed)))
}

// RunWithRand is Run with an injected random source, the form parallel
// callers should use: math/rand's global and shared sources serialize (or
// race) under concurrency, so give each goroutine its own seeded *rand.Rand
// and the sampling is both reproducible and contention-free. rng must not be
// nil and must not be shared with another concurrent caller.
func RunWithRand(t *rctree.Tree, e rctree.NodeID, metric Metric, v Variation, samples int, rng *rand.Rand) (Result, error) {
	if rng == nil {
		return Result{}, fmt.Errorf("mc: nil random source; inject a seeded *rand.Rand")
	}
	if samples < 1 {
		return Result{}, fmt.Errorf("mc: samples must be >= 1, got %d", samples)
	}
	if v.RSigma < 0 || v.CSigma < 0 {
		return Result{}, fmt.Errorf("mc: negative sigma in %+v", v)
	}
	nomTimes, err := t.CharacteristicTimes(e)
	if err != nil {
		return Result{}, err
	}
	nominal, err := metric(nomTimes)
	if err != nil {
		return Result{}, err
	}
	values := make([]float64, 0, samples)
	var w stats.Welford
	clipped := 0
	for s := 0; s < samples; s++ {
		pt, outID, clips, err := perturb(t, e, v, rng)
		if err != nil {
			return Result{}, err
		}
		clipped += clips
		tm, err := pt.CharacteristicTimes(outID)
		if err != nil {
			return Result{}, err
		}
		val, err := metric(tm)
		if err != nil {
			return Result{}, err
		}
		values = append(values, val)
		w.Add(val)
	}
	sort.Float64s(values)
	return Result{
		Samples: samples,
		Nominal: nominal,
		Mean:    w.Mean(),
		Std:     w.Std(),
		Min:     w.Min(),
		Max:     w.Max(),
		P50:     stats.Quantile(values, 0.50),
		P95:     stats.Quantile(values, 0.95),
		P99:     stats.Quantile(values, 0.99),
		Clipped: clipped,
	}, nil
}

// perturb rebuilds the tree with every element value multiplied by an
// independent Gaussian factor, and maps the output node through. The third
// result counts factor draws that hit the 0.01 positivity floor (see
// Result.Clipped).
func perturb(t *rctree.Tree, e rctree.NodeID, v Variation, rng *rand.Rand) (*rctree.Tree, rctree.NodeID, int, error) {
	clipped := 0
	draw := func(nominal, sigma float64) float64 {
		if nominal == 0 || sigma == 0 {
			return nominal
		}
		f := 1 + sigma*rng.NormFloat64()
		if f < 0.01 {
			f = 0.01
			clipped++
		}
		return nominal * f
	}
	b := rctree.NewBuilder(t.Name(rctree.Root))
	ids := map[rctree.NodeID]rctree.NodeID{rctree.Root: rctree.Root}
	var buildErr error
	t.Walk(func(id rctree.NodeID) {
		if buildErr != nil {
			return
		}
		if id == rctree.Root {
			if c := t.NodeCap(id); c > 0 {
				b.Capacitor(rctree.Root, draw(c, v.CSigma))
			}
			return
		}
		kind, r, c := t.Edge(id)
		var nid rctree.NodeID
		switch kind {
		case rctree.EdgeResistor:
			nid = b.Resistor(ids[t.Parent(id)], t.Name(id), draw(r, v.RSigma))
		case rctree.EdgeLine:
			nid = b.Line(ids[t.Parent(id)], t.Name(id), draw(r, v.RSigma), draw(c, v.CSigma))
		default:
			buildErr = fmt.Errorf("mc: unexpected edge kind at node %q", t.Name(id))
			return
		}
		ids[id] = nid
		if nc := t.NodeCap(id); nc > 0 {
			b.Capacitor(nid, draw(nc, v.CSigma))
		}
	})
	if buildErr != nil {
		return nil, 0, 0, buildErr
	}
	b.Output(ids[e])
	pt, err := b.Build()
	if err != nil {
		return nil, 0, 0, err
	}
	return pt, ids[e], clipped, nil
}
