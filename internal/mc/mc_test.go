package mc

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rctree"
)

func fig7(t *testing.T) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 15)
	b.Capacitor(n1, 2)
	br := b.Resistor(n1, "b", 8)
	b.Capacitor(br, 7)
	n2 := b.Line(n1, "n2", 3, 4)
	b.Capacitor(n2, 9)
	b.Output(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n2
}

func TestZeroVariationIsNominal(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, ElmoreTD(), Variation{}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Std != 0 {
		t.Errorf("zero variation has Std = %g", res.Std)
	}
	if math.Abs(res.Mean-363) > 1e-9 || math.Abs(res.Nominal-363) > 1e-9 {
		t.Errorf("mean/nominal = %g/%g, want 363", res.Mean, res.Nominal)
	}
	if res.Min != res.Max || res.P50 != res.Mean {
		t.Errorf("degenerate distribution expected: %+v", res)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	tr, out := fig7(t)
	v := Variation{RSigma: 0.1, CSigma: 0.1}
	a, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different results:\n%+v\n%+v", a, b)
	}
	c, err := Run(tr, out, TMaxAt(0.5), v, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds gave identical results")
	}
}

// TestRunWithRandInjection: an injected source reproduces Run's answer for
// the same seed, rejects nil, and distinct sources run race-free in
// parallel (the -race build is the real assertion there).
func TestRunWithRandInjection(t *testing.T) {
	tr, out := fig7(t)
	v := Variation{RSigma: 0.1, CSigma: 0.1}
	want, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWithRand(tr, out, TMaxAt(0.5), v, 200, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunWithRand(seeded 42) = %+v, Run(seed 42) = %+v", got, want)
	}
	if _, err := RunWithRand(tr, out, TMaxAt(0.5), v, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	results := make([]Result, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := RunWithRand(tr, out, TMaxAt(0.5), v, 100, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("parallel run %d diverged: %+v != %+v", i, results[i], results[0])
		}
	}
}

func TestSpreadGrowsWithSigma(t *testing.T) {
	tr, out := fig7(t)
	narrow, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.02, CSigma: 0.02}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.15, CSigma: 0.15}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Std >= wide.Std {
		t.Errorf("std did not grow with sigma: %g vs %g", narrow.Std, wide.Std)
	}
	// Small variation keeps the mean near nominal (TD is linear in the
	// elements, so the metric mean shifts only through TMax curvature).
	if math.Abs(narrow.Mean-narrow.Nominal) > 0.02*narrow.Nominal {
		t.Errorf("narrow mean %g drifted from nominal %g", narrow.Mean, narrow.Nominal)
	}
}

func TestQuantileOrdering(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, TMaxAt(0.9), Variation{RSigma: 0.1, CSigma: 0.1}, 500, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Min <= res.P50 && res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.Max) {
		t.Errorf("quantiles out of order: %+v", res)
	}
	if res.Samples != 500 {
		t.Errorf("Samples = %d", res.Samples)
	}
}

// TestCertifiedUnderVariation: the P99 of TMax exceeds the nominal TMax —
// the margin a corner-aware design must budget.
func TestCertifiedUnderVariation(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.1, CSigma: 0.1}, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99 <= res.Nominal {
		t.Errorf("P99 %g should exceed nominal %g under symmetric variation", res.P99, res.Nominal)
	}
	// And the margin is commensurate with the sigma (not orders off).
	margin := (res.P99 - res.Nominal) / res.Nominal
	if margin < 0.05 || margin > 1.0 {
		t.Errorf("P99 margin = %.1f%%, implausible for 10%% element sigma", margin*100)
	}
}

func TestRunValidation(t *testing.T) {
	tr, out := fig7(t)
	if _, err := Run(tr, out, ElmoreTD(), Variation{}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(tr, out, ElmoreTD(), Variation{RSigma: -1}, 10, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Run(tr, rctree.NodeID(99), ElmoreTD(), Variation{}, 10, 1); err == nil {
		t.Error("bad output accepted")
	}
	if _, err := Run(tr, out, TMaxAt(2), Variation{}, 10, 1); err != nil {
		// TMaxAt(2) is +Inf but not an error; ensure Run copes.
		t.Errorf("TMaxAt(2): %v", err)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := quantile(vals, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if got := quantile(vals, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := quantile(vals, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile = %g", got)
	}
}
