package mc

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rctree"
)

func fig7(t *testing.T) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 15)
	b.Capacitor(n1, 2)
	br := b.Resistor(n1, "b", 8)
	b.Capacitor(br, 7)
	n2 := b.Line(n1, "n2", 3, 4)
	b.Capacitor(n2, 9)
	b.Output(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n2
}

func TestZeroVariationIsNominal(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, ElmoreTD(), Variation{}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Std != 0 {
		t.Errorf("zero variation has Std = %g", res.Std)
	}
	if math.Abs(res.Mean-363) > 1e-9 || math.Abs(res.Nominal-363) > 1e-9 {
		t.Errorf("mean/nominal = %g/%g, want 363", res.Mean, res.Nominal)
	}
	if res.Min != res.Max || res.P50 != res.Mean {
		t.Errorf("degenerate distribution expected: %+v", res)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	tr, out := fig7(t)
	v := Variation{RSigma: 0.1, CSigma: 0.1}
	a, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different results:\n%+v\n%+v", a, b)
	}
	c, err := Run(tr, out, TMaxAt(0.5), v, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds gave identical results")
	}
}

// TestRunWithRandInjection: an injected source reproduces Run's answer for
// the same seed, rejects nil, and distinct sources run race-free in
// parallel (the -race build is the real assertion there).
func TestRunWithRandInjection(t *testing.T) {
	tr, out := fig7(t)
	v := Variation{RSigma: 0.1, CSigma: 0.1}
	want, err := Run(tr, out, TMaxAt(0.5), v, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWithRand(tr, out, TMaxAt(0.5), v, 200, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunWithRand(seeded 42) = %+v, Run(seed 42) = %+v", got, want)
	}
	if _, err := RunWithRand(tr, out, TMaxAt(0.5), v, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	results := make([]Result, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := RunWithRand(tr, out, TMaxAt(0.5), v, 100, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("parallel run %d diverged: %+v != %+v", i, results[i], results[0])
		}
	}
}

func TestSpreadGrowsWithSigma(t *testing.T) {
	tr, out := fig7(t)
	narrow, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.02, CSigma: 0.02}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.15, CSigma: 0.15}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Std >= wide.Std {
		t.Errorf("std did not grow with sigma: %g vs %g", narrow.Std, wide.Std)
	}
	// Small variation keeps the mean near nominal (TD is linear in the
	// elements, so the metric mean shifts only through TMax curvature).
	if math.Abs(narrow.Mean-narrow.Nominal) > 0.02*narrow.Nominal {
		t.Errorf("narrow mean %g drifted from nominal %g", narrow.Mean, narrow.Nominal)
	}
}

func TestQuantileOrdering(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, TMaxAt(0.9), Variation{RSigma: 0.1, CSigma: 0.1}, 500, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Min <= res.P50 && res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.Max) {
		t.Errorf("quantiles out of order: %+v", res)
	}
	if res.Samples != 500 {
		t.Errorf("Samples = %d", res.Samples)
	}
}

// TestCertifiedUnderVariation: the P99 of TMax exceeds the nominal TMax —
// the margin a corner-aware design must budget.
func TestCertifiedUnderVariation(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, TMaxAt(0.7), Variation{RSigma: 0.1, CSigma: 0.1}, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99 <= res.Nominal {
		t.Errorf("P99 %g should exceed nominal %g under symmetric variation", res.P99, res.Nominal)
	}
	// And the margin is commensurate with the sigma (not orders off).
	margin := (res.P99 - res.Nominal) / res.Nominal
	if margin < 0.05 || margin > 1.0 {
		t.Errorf("P99 margin = %.1f%%, implausible for 10%% element sigma", margin*100)
	}
}

func TestRunValidation(t *testing.T) {
	tr, out := fig7(t)
	if _, err := Run(tr, out, ElmoreTD(), Variation{}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Run(tr, out, ElmoreTD(), Variation{RSigma: -1}, 10, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Run(tr, rctree.NodeID(99), ElmoreTD(), Variation{}, 10, 1); err == nil {
		t.Error("bad output accepted")
	}
	if _, err := Run(tr, out, TMaxAt(2), Variation{}, 10, 1); err != nil {
		// TMaxAt(2) is +Inf but not an error; ensure Run copes.
		t.Errorf("TMaxAt(2): %v", err)
	}
}

// TestQuantileConvention: Result quantiles follow the shared stats.Quantile
// convention (R-7, interpolated). Pinned through the public API with a
// two-sample run whose sorted values make the interpolation visible.
func TestQuantileConvention(t *testing.T) {
	tr, out := fig7(t)
	res, err := Run(tr, out, ElmoreTD(), Variation{RSigma: 0.1, CSigma: 0.1}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With n=2 the R-7 median is the midpoint of the two samples and P95/P99
	// interpolate between them — none of the three may equal an endpoint
	// unless the samples coincide.
	if res.Min == res.Max {
		t.Fatalf("degenerate two-sample draw: %+v", res)
	}
	wantP50 := (res.Min + res.Max) / 2
	if math.Abs(res.P50-wantP50) > 1e-12 {
		t.Errorf("n=2 P50 = %g, want midpoint %g", res.P50, wantP50)
	}
	if got, want := res.P95, res.Min+0.95*(res.Max-res.Min); math.Abs(got-want) > 1e-9 {
		t.Errorf("n=2 P95 = %g, want %g", got, want)
	}
}

// bigNominalTree builds a fig7-shaped tree scaled so the Elmore delay is
// ~1e9 while relative sigma stays tiny — the regime where the old
// sumSq/n − mean² variance formula cancels catastrophically.
func bigNominalTree(t *testing.T) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 1.5e5)
	b.Capacitor(n1, 2e3)
	br := b.Resistor(n1, "b", 8e4)
	b.Capacitor(br, 7e3)
	n2 := b.Line(n1, "n2", 3e4, 4e3)
	b.Capacitor(n2, 9e3)
	b.Output(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n2
}

// TestVarianceCancellationRegression is the headline bugfix regression at
// the mc level: with nominal delay ≈ 3.6e9 and element sigma 1e-9, the
// metric spread is ~1e-9 of the mean. The old naive-variance formula
// subtracted two ≈1e19 squares and clamped the rounding noise to zero,
// reporting Std = 0; Welford keeps the digits. TD is linear in the element
// values, so doubling sigma must double Std — which also fails when Std is
// rounding noise rather than signal.
func TestVarianceCancellationRegression(t *testing.T) {
	tr, out := bigNominalTree(t)
	small, err := Run(tr, out, ElmoreTD(), Variation{RSigma: 1e-9, CSigma: 1e-9}, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if small.Nominal < 1e9 {
		t.Fatalf("nominal %g too small to exercise cancellation", small.Nominal)
	}
	if small.Std <= 0 {
		t.Fatalf("Std = %g at sigma 1e-9; variance cancellation has regressed", small.Std)
	}
	// Spread must be commensurate with sigma: ~1e-9 relative, not clamped to
	// zero and not rounding noise orders of magnitude off.
	rel := small.Std / small.Nominal
	if rel < 1e-10 || rel > 1e-8 {
		t.Errorf("relative Std = %g, want ~1e-9", rel)
	}
	big, err := Run(tr, out, ElmoreTD(), Variation{RSigma: 4e-9, CSigma: 4e-9}, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → same unit Gaussians → exactly 4× the perturbations, and TD
	// linearity makes Std scale with them. Allow slack for float rounding.
	ratio := big.Std / small.Std
	if ratio < 3 || ratio > 5 {
		t.Errorf("Std(4σ)/Std(σ) = %g, want ≈4 (linear-metric scaling)", ratio)
	}
}

// TestClippedCountReported: at fabrication-realistic sigma no factor draw
// hits the positivity floor; at absurd sigma many do, and the count is
// surfaced so callers can see the truncation bias (the clipped low tail
// drags the reported mean upward).
func TestClippedCountReported(t *testing.T) {
	tr, out := fig7(t)
	low, err := Run(tr, out, ElmoreTD(), Variation{RSigma: 0.05, CSigma: 0.05}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if low.Clipped != 0 {
		t.Errorf("5%% sigma clipped %d draws; expected none", low.Clipped)
	}
	high, err := Run(tr, out, ElmoreTD(), Variation{RSigma: 0.8, CSigma: 0.8}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At sigma 0.8 the floor 0.01 sits at z ≈ −1.24, so ~10.8% of draws clip.
	// 300 samples × 6 draws each = 1800 draws; expect roughly 195, and
	// certainly a lot more than zero.
	if high.Clipped < 50 {
		t.Errorf("80%% sigma clipped only %d of 1800 draws; count not reported?", high.Clipped)
	}
	// The truncation bias is real and upward: clipping removes the most
	// negative factors, so the sampled mean exceeds what symmetric variation
	// around nominal would give. (TD is linear, so without clipping the mean
	// stays near nominal; see TestSpreadGrowsWithSigma.)
	if high.Mean <= high.Nominal {
		t.Errorf("high-sigma mean %g not above nominal %g despite %d clips",
			high.Mean, high.Nominal, high.Clipped)
	}
}
