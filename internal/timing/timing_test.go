package timing

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// simpleNet is a one-pole RC net: R ohms into C farads, output "o".
func simpleNet(t *testing.T, name string, r, c float64) netlist.DesignNet {
	t.Helper()
	b := rctree.NewBuilder("in")
	o := b.Resistor(rctree.Root, "o", r)
	b.Capacitor(o, c)
	b.Output(o)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return netlist.DesignNet{Name: name, Tree: tree}
}

func boundsAt(t *testing.T, tree *rctree.Tree, output string, th float64) (tmin, tmax float64) {
	t.Helper()
	id, ok := tree.Lookup(output)
	if !ok {
		t.Fatalf("no node %q", output)
	}
	tm, err := tree.CharacteristicTimes(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(tm)
	if err != nil {
		t.Fatal(err)
	}
	return b.TMin(th), b.TMax(th)
}

func TestChainArrivalComposition(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Name: "chain",
		Nets: []netlist.DesignNet{a, b},
		Stages: []netlist.Stage{
			{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7},
		},
		Requires: []netlist.Require{{Net: "b", Output: "o", Time: 500}},
	}
	const th = 0.5
	rep, err := Analyze(context.Background(), d, Options{Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nets != 2 || rep.Levels != 2 || rep.Stages != 1 {
		t.Errorf("shape: %d nets %d levels %d stages", rep.Nets, rep.Levels, rep.Stages)
	}
	if len(rep.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v", rep.Endpoints)
	}
	aMin, aMax := boundsAt(t, a.Tree, "o", th)
	bMin, bMax := boundsAt(t, b.Tree, "o", th)
	ep := rep.Endpoints[0]
	wantMin, wantMax := aMin+7+bMin, aMax+7+bMax
	if math.Abs(ep.Arrival.Min-wantMin) > 1e-12 || math.Abs(ep.Arrival.Max-wantMax) > 1e-12 {
		t.Errorf("arrival = %+v, want [%g, %g]", ep.Arrival, wantMin, wantMax)
	}
	if math.Abs(ep.Slack-(500-wantMax)) > 1e-12 {
		t.Errorf("slack = %g, want %g", ep.Slack, 500-wantMax)
	}
	if ep.Verdict != core.Passes {
		t.Errorf("verdict = %v", ep.Verdict)
	}
	if math.Abs(rep.WNS-ep.Slack) > 1e-12 || rep.TNS != 0 {
		t.Errorf("WNS %g TNS %g", rep.WNS, rep.TNS)
	}
	// Critical path: a then b, root hop driven at [0,0].
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d", len(rep.Paths))
	}
	hops := rep.Paths[0].Hops
	if len(hops) != 2 || hops[0].Net != "a" || hops[1].Net != "b" {
		t.Fatalf("hops = %+v", hops)
	}
	if hops[0].InputArrival != (Interval{0, 0}) {
		t.Errorf("primary input arrival = %+v", hops[0].InputArrival)
	}
	if hops[0].StageDelay != 7 || hops[1].StageDelay != 0 {
		t.Errorf("stage delays = %g, %g", hops[0].StageDelay, hops[1].StageDelay)
	}
	if hops[1].OutputArrival != ep.Arrival {
		t.Errorf("endpoint hop arrival %+v vs %+v", hops[1].OutputArrival, ep.Arrival)
	}
}

func TestMultiFaninHull(t *testing.T) {
	fast := simpleNet(t, "fast", 1, 1)
	slow := simpleNet(t, "slow", 100, 10)
	sink := simpleNet(t, "sink", 5, 2)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{fast, slow, sink},
		Stages: []netlist.Stage{
			{FromNet: "fast", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "slow", FromOutput: "o", ToNet: "sink", Delay: 2},
		},
	}
	const th = 0.5
	rep, err := Analyze(context.Background(), d, Options{Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	fMin, _ := boundsAt(t, fast.Tree, "o", th)
	_, sMax := boundsAt(t, slow.Tree, "o", th)
	kMin, kMax := boundsAt(t, sink.Tree, "o", th)
	var ep *EndpointSlack
	for i := range rep.Endpoints {
		if rep.Endpoints[i].Net == "sink" {
			ep = &rep.Endpoints[i]
		}
	}
	if ep == nil {
		t.Fatalf("no sink endpoint in %+v", rep.Endpoints)
	}
	wantMin := fMin + 1 + kMin // earliest: fast driver, early edge
	wantMax := sMax + 2 + kMax // latest: slow driver, late edge
	if math.Abs(ep.Arrival.Min-wantMin) > 1e-12 || math.Abs(ep.Arrival.Max-wantMax) > 1e-12 {
		t.Errorf("arrival = %+v, want [%g, %g]", ep.Arrival, wantMin, wantMax)
	}
	// The critical path must run through the slow driver.
	if len(rep.Paths) == 0 {
		t.Fatal("no paths")
	}
	var sinkPath *Path
	for i := range rep.Paths {
		if rep.Paths[i].Endpoint == "sink/o" {
			sinkPath = &rep.Paths[i]
		}
	}
	if sinkPath == nil || len(sinkPath.Hops) != 2 || sinkPath.Hops[0].Net != "slow" {
		t.Errorf("critical path = %+v", sinkPath)
	}
}

func TestCycleRejected(t *testing.T) {
	a := simpleNet(t, "a", 1, 1)
	b := simpleNet(t, "b", 1, 1)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{a, b},
		Stages: []netlist.Stage{
			{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 1},
			{FromNet: "b", FromOutput: "o", ToNet: "a", Delay: 1},
		},
	}
	if _, err := NewGraph(d); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not rejected: %v", err)
	}
	// Self-loop is the smallest cycle.
	d.Stages = []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "a", Delay: 1}}
	if _, err := NewGraph(d); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("self-loop not rejected: %v", err)
	}
}

func TestVerdicts(t *testing.T) {
	// A single-pole net has coincident bounds; a branched tree keeps
	// TMin < TMax so the Unknown window is non-empty.
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 10)
	b.Capacitor(n1, 5)
	o := b.Resistor(n1, "o", 20)
	b.Capacitor(o, 3)
	side := b.Resistor(n1, "side", 15)
	b.Capacitor(side, 8)
	b.Output(o)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := netlist.DesignNet{Name: "n", Tree: tree}
	const th = 0.5
	tmin, tmax := boundsAt(t, net.Tree, "o", th)
	if tmin >= tmax {
		t.Fatalf("test net has tight bounds [%g, %g]", tmin, tmax)
	}
	cases := []struct {
		required float64
		want     core.Verdict
	}{
		{tmax + 1, core.Passes},
		{tmin - 1, core.Fails},
		{(tmin + tmax) / 2, core.Unknown},
	}
	for _, tc := range cases {
		d := &netlist.Design{
			Nets:     []netlist.DesignNet{net},
			Requires: []netlist.Require{{Net: "n", Output: "o", Time: tc.required}},
		}
		rep, err := Analyze(context.Background(), d, Options{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Endpoints[0].Verdict != tc.want {
			t.Errorf("required %g: verdict = %v, want %v", tc.required, rep.Endpoints[0].Verdict, tc.want)
		}
	}
	// Failing endpoint drives WNS/TNS negative.
	d := &netlist.Design{
		Nets:     []netlist.DesignNet{net},
		Requires: []netlist.Require{{Net: "n", Output: "o", Time: tmin - 1}},
	}
	rep, err := Analyze(context.Background(), d, Options{Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS >= 0 || rep.TNS >= 0 {
		t.Errorf("WNS %g TNS %g for failing design", rep.WNS, rep.TNS)
	}
}

func TestUnconstrainedEndpoint(t *testing.T) {
	net := simpleNet(t, "n", 10, 5)
	d := &netlist.Design{Nets: []netlist.DesignNet{net}}
	rep, err := Analyze(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep := rep.Endpoints[0]
	if ep.Constrained() {
		t.Errorf("endpoint constrained: %+v", ep)
	}
	if !math.IsInf(rep.WNS, 1) || rep.TNS != 0 {
		t.Errorf("WNS %g TNS %g", rep.WNS, rep.TNS)
	}
	// The default requirement constrains it.
	rep, err = Analyze(context.Background(), d, Options{Required: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Endpoints[0].Constrained() || rep.Endpoints[0].Verdict != core.Passes {
		t.Errorf("default requirement not applied: %+v", rep.Endpoints[0])
	}
}

func TestInteriorOutputWithRequireIsEndpoint(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Nets:   []netlist.DesignNet{a, b},
		Stages: []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 1}},
		Requires: []netlist.Require{
			{Net: "a", Output: "o", Time: 100}, // interior but explicitly required
		},
	}
	rep, err := Analyze(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Endpoints) != 2 {
		t.Fatalf("endpoints = %+v", rep.Endpoints)
	}
	seen := map[string]bool{}
	for _, e := range rep.Endpoints {
		seen[e.Net+"/"+e.Output] = true
	}
	if !seen["a/o"] || !seen["b/o"] {
		t.Errorf("endpoints = %+v", rep.Endpoints)
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	d := randnet.DesignSeed(42, randnet.DefaultDesignConfig(4, 6))
	opt := Options{Threshold: 0.7, Required: 1e4, K: 8}
	par, err := Analyze(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sequential = true
	seq, err := Analyze(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel and sequential reports differ:\n%s\nvs\n%s", par.Summary(), seq.Summary())
	}
}

func TestSharedEngineAndContext(t *testing.T) {
	d := randnet.DesignSeed(3, randnet.DefaultDesignConfig(3, 4))
	eng := batch.New(batch.Options{Workers: 2})
	if _, err := Analyze(context.Background(), d, Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Misses == 0 {
		t.Error("shared engine cache untouched")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, d, Options{Engine: eng}); err == nil {
		t.Error("canceled context not surfaced")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(context.Background(), nil, Options{}); err == nil {
		t.Error("nil design accepted")
	}
	if _, err := Analyze(context.Background(), &netlist.Design{}, Options{}); err == nil {
		t.Error("empty design accepted")
	}
	net := simpleNet(t, "n", 1, 1)
	d := &netlist.Design{Nets: []netlist.DesignNet{net}}
	for _, th := range []float64{-0.5, 1, 2} {
		if _, err := Analyze(context.Background(), d, Options{Threshold: th}); err == nil {
			t.Errorf("threshold %g accepted", th)
		}
	}
	// Stages referencing unknown nets are caught at graph build (designs
	// hand-assembled in code bypass ParseDesign's validation).
	bad := &netlist.Design{
		Nets:   []netlist.DesignNet{net},
		Stages: []netlist.Stage{{FromNet: "ghost", FromOutput: "o", ToNet: "n", Delay: 1}},
	}
	if _, err := NewGraph(bad); err == nil {
		t.Error("unknown stage net accepted")
	}
	bad.Stages[0] = netlist.Stage{FromNet: "n", FromOutput: "o", ToNet: "ghost", Delay: 1}
	if _, err := NewGraph(bad); err == nil {
		t.Error("unknown stage target accepted")
	}
	// A stage tapping a node that is not a designated output would read as
	// a silent {0,0} arrival; it must be rejected at graph build.
	two := &netlist.Design{Nets: []netlist.DesignNet{net, simpleNet(t, "m", 2, 2)}}
	two.Stages = []netlist.Stage{{FromNet: "n", FromOutput: "in", ToNet: "m", Delay: 1}}
	if _, err := NewGraph(two); err == nil || !strings.Contains(err.Error(), "not a designated output") {
		t.Errorf("non-output stage tap accepted: %v", err)
	}
	two.Stages[0].FromOutput = "ghost"
	if _, err := NewGraph(two); err == nil {
		t.Error("unknown stage output accepted")
	}
}

func TestKLimitsPaths(t *testing.T) {
	d := randnet.DesignSeed(11, randnet.DefaultDesignConfig(3, 5))
	rep, err := Analyze(context.Background(), d, Options{K: 2, Required: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 2 {
		t.Errorf("paths = %d, want 2", len(rep.Paths))
	}
	rep, err = Analyze(context.Background(), d, Options{K: -1, Required: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 0 {
		t.Errorf("paths = %d, want 0 for K<0", len(rep.Paths))
	}
}

func TestReportRendering(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Name:     "demo",
		Nets:     []netlist.DesignNet{a, b},
		Stages:   []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7}},
		Requires: []netlist.Require{{Net: "b", Output: "o", Time: 500}},
	}
	rep, err := Analyze(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Summary()
	for _, want := range []string{"design demo", "critical path 1", "verdict", "b", "passes"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != 2 {
		t.Errorf("csv lines = %d:\n%s", lines, csvBuf.String())
	}
	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("json invalid: %v\n%s", err, jsonBuf.String())
	}
	if decoded["design"] != "demo" || decoded["nets"].(float64) != 2 {
		t.Errorf("json = %v", decoded)
	}
	// Unconstrained reports must still be valid JSON (WNS is +Inf).
	rep, err = Analyze(context.Background(), &netlist.Design{Nets: []netlist.DesignNet{a}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("unconstrained report not JSON-safe: %v", err)
	}
	if !strings.Contains(rep.Summary(), "-") {
		t.Error("unconstrained summary missing '-' placeholder")
	}
}

func TestParsedDesignEndToEnd(t *testing.T) {
	d, err := netlist.ParseDesign(`
.design pipeline
.net drv
.input in
R1 in o 380
C1 o 0 0.04
.output o
.endnet
.net bus
.input in
U1 in far 1800 0.11
C1 far 0 0.013
.output far
.endnet
.stage drv o bus 25
.require bus far 700
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), d, Options{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Levels != 2 || len(rep.Endpoints) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	ep := rep.Endpoints[0]
	if ep.Net != "bus" || ep.Output != "far" || !ep.Constrained() {
		t.Errorf("endpoint = %+v", ep)
	}
	if ep.Arrival.Min <= 25 || ep.Arrival.Max <= ep.Arrival.Min {
		t.Errorf("arrival = %+v", ep.Arrival)
	}
}
