package timing

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/incr"
	"repro/internal/netlist"
	"repro/internal/randnet"
)

// closeEnough compares to 1e-9 relative tolerance, treating equal
// infinities as close.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func intervalsClose(a, b Interval) bool {
	return closeEnough(a.Min, b.Min) && closeEnough(a.Max, b.Max)
}

// assertMatchesFull materializes the session's current design, re-analyzes
// it from scratch, and checks every net bound, arrival interval and endpoint
// slack against the session's incremental state to 1e-9.
func assertMatchesFull(t *testing.T, s *Session, required float64) {
	t.Helper()
	d, err := s.Design()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	full, err := Analyze(context.Background(), d, Options{
		Threshold: s.th, Required: required, K: s.k, Sequential: true,
	})
	if err != nil {
		t.Fatalf("full analysis: %v", err)
	}
	// Per-net bounds: every designated output's [TMin, TMax].
	for _, n := range d.Nets {
		for _, o := range n.Tree.Outputs() {
			name := n.Tree.Name(o)
			wantMin, wantMax := boundsAt(t, n.Tree, name, s.th)
			got, ok := s.NetDelay(n.Name, name)
			if !ok {
				t.Fatalf("net %s/%s: no incremental delay", n.Name, name)
			}
			if !closeEnough(got.Min, wantMin) || !closeEnough(got.Max, wantMax) {
				t.Fatalf("net %s/%s delay = %+v, full = [%g, %g]", n.Name, name, got, wantMin, wantMax)
			}
		}
	}
	// Endpoint arrivals and slacks, keyed (sorting may permute ties).
	sessRep := s.Report()
	if len(sessRep.Endpoints) != len(full.Endpoints) {
		t.Fatalf("endpoint count %d vs full %d", len(sessRep.Endpoints), len(full.Endpoints))
	}
	type key struct{ net, output string }
	sessEp := map[key]EndpointSlack{}
	for _, e := range sessRep.Endpoints {
		sessEp[key{e.Net, e.Output}] = e
	}
	for _, want := range full.Endpoints {
		got, ok := sessEp[key{want.Net, want.Output}]
		if !ok {
			t.Fatalf("endpoint %s/%s missing from session report", want.Net, want.Output)
		}
		if !intervalsClose(got.Arrival, want.Arrival) {
			t.Fatalf("endpoint %s/%s arrival %+v vs full %+v", want.Net, want.Output, got.Arrival, want.Arrival)
		}
		if !closeEnough(got.Slack, want.Slack) {
			t.Fatalf("endpoint %s/%s slack %g vs full %g", want.Net, want.Output, got.Slack, want.Slack)
		}
	}
	if !closeEnough(sessRep.WNS, full.WNS) || !closeEnough(sessRep.TNS, full.TNS) {
		t.Fatalf("WNS/TNS %g/%g vs full %g/%g", sessRep.WNS, sessRep.TNS, full.WNS, full.TNS)
	}
}

func f64(v float64) *float64 { return &v }

func newTestSession(t *testing.T, d *netlist.Design, opt Options) *Session {
	t.Helper()
	opt.Sequential = true
	s, err := NewSession(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionSingleEditMatchesFull(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Name:     "chain",
		Nets:     []netlist.DesignNet{a, b},
		Stages:   []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7}},
		Requires: []netlist.Require{{Net: "b", Output: "o", Time: 500}},
	}
	s := newTestSession(t, d, Options{Threshold: 0.5})
	assertMatchesFull(t, s, 0)
	base := s.Report()
	res, err := s.Apply([]Edit{{Op: "setR", Net: "a", Node: "o", R: f64(40)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Gen != 1 {
		t.Errorf("res = %+v", res)
	}
	if res.DirtyNets != 2 || res.VisitedNets != 2 {
		t.Errorf("dirty/visited = %d/%d, want 2/2", res.DirtyNets, res.VisitedNets)
	}
	assertMatchesFull(t, s, 0)
	after := s.Report()
	if after.Endpoints[0].Arrival.Max <= base.Endpoints[0].Arrival.Max {
		t.Errorf("quadrupled driver R did not slow the endpoint: %+v vs %+v",
			after.Endpoints[0].Arrival, base.Endpoints[0].Arrival)
	}
	if !closeEnough(res.WNS, after.WNS) || !closeEnough(res.TNS, after.TNS) {
		t.Errorf("apply WNS/TNS %g/%g vs report %g/%g", res.WNS, res.TNS, after.WNS, after.TNS)
	}
}

func TestSessionFaninFlipAtMerge(t *testing.T) {
	fast := simpleNet(t, "fast", 1, 1)
	slow := simpleNet(t, "slow", 100, 10)
	sink := simpleNet(t, "sink", 5, 2)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{fast, slow, sink},
		Stages: []netlist.Stage{
			{FromNet: "fast", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "slow", FromOutput: "o", ToNet: "sink", Delay: 2},
		},
		Requires: []netlist.Require{{Net: "sink", Output: "o", Time: 1e4}},
	}
	s := newTestSession(t, d, Options{Threshold: 0.5, K: 1})
	if hops := s.Report().Paths[0].Hops; hops[0].Net != "slow" {
		t.Fatalf("baseline critical path starts at %q, want slow", hops[0].Net)
	}
	// Make the former fast driver the dominant one: the merge's worst fanin
	// must flip, and everything must still agree with a full re-analysis.
	if _, err := s.Apply([]Edit{{Op: "setR", Net: "fast", Node: "o", R: f64(5000)}}); err != nil {
		t.Fatal(err)
	}
	assertMatchesFull(t, s, 0)
	if hops := s.Report().Paths[0].Hops; hops[0].Net != "fast" {
		t.Errorf("critical path starts at %q after flip, want fast", hops[0].Net)
	}
	// Flip back via the other knob (scaleDriver on the slow net).
	if _, err := s.Apply([]Edit{{Op: "scaleDriver", Net: "slow", Factor: f64(200)}}); err != nil {
		t.Fatal(err)
	}
	assertMatchesFull(t, s, 0)
	if hops := s.Report().Paths[0].Hops; hops[0].Net != "slow" {
		t.Errorf("critical path starts at %q after flip back, want slow", hops[0].Net)
	}
}

func TestSessionEarlyExit(t *testing.T) {
	// sink's input hull is set by fast (min) and slow (max); mid sits strictly
	// inside. Editing mid within the hull moves mid's arrival but not sink's
	// input, so the sweep must visit sink and stop there.
	fast := simpleNet(t, "fast", 1, 1)
	mid := simpleNet(t, "mid", 10, 2)
	slow := simpleNet(t, "slow", 100, 10)
	sink := simpleNet(t, "sink", 5, 2)
	leaf := simpleNet(t, "leaf", 2, 2)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{fast, mid, slow, sink, leaf},
		Stages: []netlist.Stage{
			{FromNet: "fast", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "mid", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "slow", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "sink", FromOutput: "o", ToNet: "leaf", Delay: 1},
		},
	}
	s := newTestSession(t, d, Options{Threshold: 0.5})
	res, err := s.Apply([]Edit{{Op: "setR", Net: "mid", Node: "o", R: f64(12)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyNets != 1 {
		t.Errorf("dirty = %d, want 1 (mid only)", res.DirtyNets)
	}
	if res.VisitedNets != 2 {
		t.Errorf("visited = %d, want 2 (mid + sink early exit)", res.VisitedNets)
	}
	assertMatchesFull(t, s, 0)

	// Editing slow moves the hull max: the wave must reach the leaf.
	res, err = s.Apply([]Edit{{Op: "setR", Net: "slow", Node: "o", R: f64(150)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyNets != 3 || res.VisitedNets != 3 {
		t.Errorf("dirty/visited = %d/%d, want 3/3 (slow, sink, leaf)", res.DirtyNets, res.VisitedNets)
	}
	assertMatchesFull(t, s, 0)
}

func TestSessionStructuralGuards(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Nets:     []netlist.DesignNet{a, b},
		Stages:   []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7}},
		Requires: []netlist.Require{{Net: "b", Output: "o", Time: 500}},
	}
	s := newTestSession(t, d, Options{})
	cases := []struct {
		name string
		edit Edit
		want string
	}{
		{"prune stage-tapped", Edit{Op: "prune", Net: "a", Node: "o"}, "tapped by a stage"},
		{"removeOutput stage-tapped", Edit{Op: "removeOutput", Net: "a", Node: "o"}, "tapped by a stage"},
		{"prune require-pinned", Edit{Op: "prune", Net: "b", Node: "o"}, "tapped by a stage"},
		{"unknown net", Edit{Op: "setR", Net: "ghost", Node: "o", R: f64(1)}, "unknown net"},
		{"unknown node", Edit{Op: "setR", Net: "a", Node: "ghost", R: f64(1)}, "unknown node"},
		{"unknown op", Edit{Op: "warp", Net: "a"}, "unknown op"},
		{"missing value", Edit{Op: "setR", Net: "a", Node: "o"}, "missing"},
		{"no net", Edit{Op: "setR", Node: "o", R: f64(1)}, "names no net"},
	}
	for _, tc := range cases {
		res, err := s.Apply([]Edit{tc.edit})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		if res.Applied != 0 {
			t.Errorf("%s: applied = %d", tc.name, res.Applied)
		}
	}
	// Partial application: the first edit lands, the failing second leaves a
	// consistent propagated state.
	res, err := s.Apply([]Edit{
		{Op: "setR", Net: "a", Node: "o", R: f64(15)},
		{Op: "prune", Net: "a", Node: "o"},
	})
	if err == nil || res.Applied != 1 {
		t.Fatalf("partial apply: res = %+v, err = %v", res, err)
	}
	assertMatchesFull(t, s, 0)
}

func TestSessionGrowPruneEndpoints(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Nets:   []netlist.DesignNet{a, b},
		Stages: []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7}},
	}
	s := newTestSession(t, d, Options{Required: 1e4})
	if n := len(s.Report().Endpoints); n != 1 {
		t.Fatalf("baseline endpoints = %d", n)
	}
	// Grow a tap on b and designate it: a new endpoint must appear and agree
	// with the full analysis of the materialized design.
	res, err := s.Apply([]Edit{
		{Op: "grow", Net: "b", Parent: "o", Name: "tap", Kind: "line", R: f64(5), C: f64(2)},
		{Op: "addOutput", Net: "b", Node: "tap"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 {
		t.Fatalf("applied = %d", res.Applied)
	}
	if n := len(s.Report().Endpoints); n != 2 {
		t.Fatalf("endpoints after grow = %d, want 2", n)
	}
	assertMatchesFull(t, s, 1e4)
	// Prune it again: the endpoint disappears.
	if _, err := s.Apply([]Edit{{Op: "prune", Net: "b", Node: "tap"}}); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Report().Endpoints); n != 1 {
		t.Fatalf("endpoints after prune = %d, want 1", n)
	}
	assertMatchesFull(t, s, 1e4)
}

func TestSessionInvalidatedPaths(t *testing.T) {
	fast := simpleNet(t, "fast", 1, 1)
	slow := simpleNet(t, "slow", 100, 10)
	sink := simpleNet(t, "sink", 5, 2)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{fast, slow, sink},
		Stages: []netlist.Stage{
			{FromNet: "fast", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "slow", FromOutput: "o", ToNet: "sink", Delay: 2},
		},
		Requires: []netlist.Require{{Net: "sink", Output: "o", Time: 1e4}},
	}
	s := newTestSession(t, d, Options{K: 1})
	_ = s.Report() // memoize paths so the next Apply can invalidate them
	res, err := s.Apply([]Edit{{Op: "setC", Net: "slow", Node: "o", C: f64(20)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvalidatedPaths) != 1 || res.InvalidatedPaths[0] != "sink/o" {
		t.Errorf("invalidated = %v, want [sink/o]", res.InvalidatedPaths)
	}
	// Without a memoized report there is nothing to invalidate.
	res, err = s.Apply([]Edit{{Op: "setC", Net: "slow", Node: "o", C: f64(25)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvalidatedPaths) != 0 {
		t.Errorf("invalidated = %v, want none", res.InvalidatedPaths)
	}
}

// TestApplyResultJSON: WNS rides the wire as an omitted-when-Inf field, like
// the report's.
func TestApplyResultJSON(t *testing.T) {
	res := ApplyResult{Gen: 3, Applied: 1, WNS: -2.5, TNS: -2.5}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["wns"].(float64) != -2.5 || decoded["gen"].(float64) != 3 {
		t.Errorf("wire form = %s", data)
	}
	res.WNS = math.Inf(1)
	data, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "wns") || strings.Contains(string(data), "Inf") {
		t.Errorf("unconstrained WNS leaked: %s", data)
	}
}

func TestSessionParallelInitMatchesSequential(t *testing.T) {
	d := randnet.DesignSeed(7, randnet.DefaultDesignConfig(3, 4))
	par, err := NewSession(context.Background(), d, Options{Required: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	seq := newTestSession(t, d, Options{Required: 1e4})
	pr, sr := par.Report(), seq.Report()
	if len(pr.Endpoints) != len(sr.Endpoints) {
		t.Fatalf("endpoint counts differ: %d vs %d", len(pr.Endpoints), len(sr.Endpoints))
	}
	if pr.WNS != sr.WNS || pr.TNS != sr.TNS {
		t.Errorf("parallel init WNS/TNS %g/%g vs sequential %g/%g", pr.WNS, pr.TNS, sr.WNS, sr.TNS)
	}
}

// randomEdit draws one structurally plausible edit against the session's
// current state. It may still be rejected (e.g. pruning a protected output);
// the caller skips those.
func randomEdit(rng *rand.Rand, s *Session, seq *int) Edit {
	i := rng.Intn(len(s.trees))
	et := s.trees[i]
	net := s.g.nodes[i].name
	// Collect live non-root node names through the public surface: slot IDs
	// only grow by one per Grow, so a fixed scan bound covers them all.
	var nodes []string
	for id := 1; id < 64; id++ {
		if name := et.Name(incr.NodeID(id)); name != "" {
			nodes = append(nodes, name)
		}
	}
	pick := func() string { return nodes[rng.Intn(len(nodes))] }
	switch rng.Intn(7) {
	case 0:
		return Edit{Op: "setR", Net: net, Node: pick(), R: f64(1 + rng.Float64()*199)}
	case 1:
		return Edit{Op: "setC", Net: net, Node: pick(), C: f64(rng.Float64() * 20)}
	case 2:
		return Edit{Op: "addC", Net: net, Node: pick(), C: f64(rng.Float64() * 5)}
	case 3:
		return Edit{Op: "setLine", Net: net, Node: pick(), R: f64(1 + rng.Float64()*99), C: f64(rng.Float64() * 10)}
	case 4:
		return Edit{Op: "scaleDriver", Net: net, Factor: f64(0.2 + rng.Float64()*3)}
	case 5:
		*seq++
		kind := "resistor"
		var c *float64
		if rng.Intn(2) == 0 {
			kind = "line"
			c = f64(0.5 + rng.Float64()*5)
		}
		return Edit{Op: "grow", Net: net, Parent: pick(), Name: fmt.Sprintf("g%d", *seq), Kind: kind, R: f64(1 + rng.Float64()*50), C: c}
	default:
		return Edit{Op: "prune", Net: net, Node: pick()}
	}
}

// TestSessionPropertyRandomEdits is the headline equivalence property: over
// 200+ randomized edit sequences on random layered designs, the incremental
// session must agree with a from-scratch analysis of the materialized design
// to 1e-9 on every net bound, arrival interval and endpoint slack — the
// comparison runs after every edit, so mid-sequence drift cannot hide.
func TestSessionPropertyRandomEdits(t *testing.T) {
	seqs := 200
	editsPerSeq := 6
	if testing.Short() {
		seqs = 25
	}
	cfg := randnet.DesignConfig{
		Levels:   3,
		Width:    3,
		Net:      randnet.DefaultConfig(10),
		FaninMax: 3,
		DelayMax: 10,
	}
	for seed := 0; seed < seqs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		d := randnet.Design(rng, cfg)
		s, err := NewSession(context.Background(), d, Options{Threshold: 0.7, Required: 1e4, Sequential: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		growSeq := 0
		applied := 0
		for applied < editsPerSeq {
			e := randomEdit(rng, s, &growSeq)
			if _, err := s.Apply([]Edit{e}); err != nil {
				if e.Op == "prune" {
					continue // protected output; draw another edit
				}
				t.Fatalf("seed %d: apply %+v: %v", seed, e, err)
			}
			applied++
			assertMatchesFullProperty(t, s, seed, applied)
		}
	}
}

// assertMatchesFullProperty is assertMatchesFull with a seed-stamped failure
// message so a property counterexample is reproducible.
func assertMatchesFullProperty(t *testing.T, s *Session, seed, step int) {
	t.Helper()
	if t.Failed() {
		t.Fatalf("seed %d step %d: see failure above", seed, step)
	}
	assertMatchesFull(t, s, 1e4)
	if t.Failed() {
		t.Fatalf("counterexample: seed %d, step %d", seed, step)
	}
}

// TestSessionForkIndependence: a fork answers exactly what the parent
// answered at the fork point, edits to either side never leak to the other,
// and both sides keep agreeing with full re-analyses of their own
// materialized designs — the copy-on-write contract Fork promises.
func TestSessionForkIndependence(t *testing.T) {
	d := randnet.DesignSeed(21, randnet.DefaultDesignConfig(3, 3))
	s := newTestSession(t, d, Options{Threshold: 0.7, Required: 1e4})
	base := s.Report()
	f := s.Fork()
	if got := f.Report(); got.WNS != base.WNS || got.TNS != base.TNS {
		t.Fatalf("fork WNS/TNS %g/%g, parent %g/%g", got.WNS, got.TNS, base.WNS, base.TNS)
	}
	// Edit the fork only: the parent must not move.
	if _, err := f.Apply([]Edit{{Op: "scaleDriver", Net: "l0n0", Factor: f64(3)}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Report(); got.WNS != base.WNS || got.TNS != base.TNS {
		t.Fatalf("parent moved after fork edit: WNS %g -> %g", base.WNS, got.WNS)
	}
	assertMatchesFull(t, f, 1e4)
	// Edit the parent on the same net (it must clone its shared tree first)
	// and on another net; the fork must not see either.
	forkRep := f.Report()
	if _, err := s.Apply([]Edit{
		{Op: "scaleDriver", Net: "l0n0", Factor: f64(0.5)},
		{Op: "setC", Net: "l1n1", Node: d.Nets[4].Tree.Name(d.Nets[4].Tree.Outputs()[0]), C: f64(9)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := f.Report(); got.WNS != forkRep.WNS || got.TNS != forkRep.TNS {
		t.Fatalf("fork moved after parent edit: WNS %g -> %g", forkRep.WNS, got.WNS)
	}
	assertMatchesFull(t, s, 1e4)
	assertMatchesFull(t, f, 1e4)
}

// TestSessionForkTrialMatchesCommit: applying a candidate to a fork predicts
// exactly what committing it to the parent produces — the what-if contract a
// closure engine relies on.
func TestSessionForkTrialMatchesCommit(t *testing.T) {
	d := randnet.DesignSeed(5, randnet.DefaultDesignConfig(3, 4))
	s := newTestSession(t, d, Options{Threshold: 0.7, Required: 1e3})
	edits := []Edit{{Op: "scaleDriver", Net: "l1n2", Factor: f64(0.4)}}
	trial := s.Fork()
	tres, err := trial.Apply(edits)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := s.Apply(edits)
	if err != nil {
		t.Fatal(err)
	}
	if tres.WNS != cres.WNS || tres.TNS != cres.TNS {
		t.Fatalf("trial WNS/TNS %g/%g vs commit %g/%g", tres.WNS, tres.TNS, cres.WNS, cres.TNS)
	}
}

// TestSessionForkConcurrentTrials: many forks of one parent Apply at the
// same time (the closure engine's evaluation pattern). Under -race this
// checks that forks only read what they share; functionally each trial must
// equal the same edit applied alone.
func TestSessionForkConcurrentTrials(t *testing.T) {
	d := randnet.DesignSeed(11, randnet.DefaultDesignConfig(4, 4))
	s := newTestSession(t, d, Options{Threshold: 0.7, Required: 1e3})
	const trials = 16
	factors := make([]float64, trials)
	want := make([]float64, trials)
	for i := range factors {
		factors[i] = 0.3 + 0.1*float64(i)
		f := s.Fork()
		res, err := f.Apply([]Edit{{Op: "scaleDriver", Net: "l2n1", Factor: f64(factors[i])}})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.WNS
	}
	forks := make([]*Session, trials)
	for i := range forks {
		forks[i] = s.Fork()
	}
	var wg sync.WaitGroup
	got := make([]float64, trials)
	errs := make([]error, trials)
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := forks[i].Apply([]Edit{{Op: "scaleDriver", Net: "l2n1", Factor: f64(factors[i])}})
			got[i], errs[i] = res.WNS, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			t.Fatalf("trial %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("trial %d: concurrent WNS %g, isolated %g", i, got[i], want[i])
		}
	}
}

// TestSessionClosureAccessors covers the read surface the closure engine
// mines: input arrivals, the critical upstream cone, protected outputs, and
// per-net tree clones.
func TestSessionClosureAccessors(t *testing.T) {
	fast := simpleNet(t, "fast", 1, 1)
	slow := simpleNet(t, "slow", 100, 10)
	sink := simpleNet(t, "sink", 5, 2)
	d := &netlist.Design{
		Nets: []netlist.DesignNet{fast, slow, sink},
		Stages: []netlist.Stage{
			{FromNet: "fast", FromOutput: "o", ToNet: "sink", Delay: 1},
			{FromNet: "slow", FromOutput: "o", ToNet: "sink", Delay: 2},
		},
		Requires: []netlist.Require{{Net: "sink", Output: "o", Time: 10}},
	}
	s := newTestSession(t, d, Options{})
	if in, ok := s.InputArrival("fast"); !ok || in != (Interval{}) {
		t.Errorf("primary input arrival = %+v, %v", in, ok)
	}
	if in, ok := s.InputArrival("sink"); !ok || in.Max <= 0 {
		t.Errorf("sink input arrival = %+v, %v", in, ok)
	}
	if _, ok := s.InputArrival("ghost"); ok {
		t.Error("InputArrival on an unknown net should fail")
	}
	if cone := s.CriticalUpstream("sink"); len(cone) != 2 || cone[0] != "sink" || cone[1] != "slow" {
		t.Errorf("CriticalUpstream(sink) = %v, want [sink slow]", cone)
	}
	if cone := s.CriticalUpstream("ghost"); cone != nil {
		t.Errorf("CriticalUpstream(ghost) = %v", cone)
	}
	if got := s.ProtectedOutputs("slow"); len(got) != 1 || got[0] != "o" {
		t.Errorf("ProtectedOutputs(slow) = %v, want [o]", got)
	}
	cl, ok := s.CloneNetTree("slow")
	if !ok {
		t.Fatal("CloneNetTree(slow) failed")
	}
	// Editing the clone must not disturb the session.
	id, _ := cl.Lookup("o")
	if err := cl.SetResistance(id, 1e4); err != nil {
		t.Fatal(err)
	}
	before, _ := s.NetDelay("slow", "o")
	if _, err := s.Apply([]Edit{{Op: "setC", Net: "fast", Node: "o", C: f64(2)}}); err != nil {
		t.Fatal(err)
	}
	after, _ := s.NetDelay("slow", "o")
	if before != after {
		t.Errorf("slow delay moved after clone edit: %+v -> %+v", before, after)
	}
	if _, ok := s.CloneNetTree("ghost"); ok {
		t.Error("CloneNetTree on an unknown net should fail")
	}
}
