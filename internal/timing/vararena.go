package timing

import (
	"context"
	"fmt"
	"math"

	"repro/internal/rctree"
)

// VarArena is a variation view over a graph's flat arena: the shared
// immutable topology plus a private copy of the R/C value columns that can be
// rescaled in place — global corner factors times per-net derating factors —
// and re-propagated without rebuilding a single tree. It is the compute core
// of design-level Monte Carlo (internal/mcd): one sample is one SetFactors
// call (a linear sweep over three float64 columns) plus one Propagate.
//
// A VarArena is single-goroutine; parallel sweeps give each worker its own
// Clone, which shares the topology and base values and allocates only the
// working columns and propagation state.
type VarArena struct {
	base *designArena // the graph's immutable arena (base R/C columns)
	work designArena  // shallow copy with private edgeR/edgeC/nodeC
	// nodeNet maps a global node index to its net index, so SetFactors can
	// apply per-net factors in one flat pass.
	nodeNet []int32
	th      float64
	st      *arenaState
	scratch rctree.Scratch
	eps     []VarEndpoint
}

// VarEndpoint is one timing endpoint of the design as the arena sees it:
// the output slot to read arrivals from and the required time governing its
// slack (+Inf when unconstrained). Endpoints appear in net order, then
// designation order — the deterministic order mcd's criticality tie-break
// relies on.
type VarEndpoint struct {
	Net      string
	Output   string
	Required float64
	Slot     int
}

// VarArena builds a variation view for the graph at the given threshold (0
// means 0.5) and default required time (<= 0 leaves endpoints without an
// explicit .require card unconstrained). Per-net factor slices passed to
// SetFactors are indexed by the design's net order (d.Nets), which is also
// the graph's node order.
func (g *Graph) VarArena(threshold, defRequired float64) (*VarArena, error) {
	if threshold == 0 {
		threshold = 0.5
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("timing: threshold %g outside (0,1)", threshold)
	}
	a, err := g.arena()
	if err != nil {
		return nil, err
	}
	va := &VarArena{base: a, work: *a, th: threshold, st: a.newState()}
	va.work.edgeR = append([]float64(nil), a.edgeR...)
	va.work.edgeC = append([]float64(nil), a.edgeC...)
	va.work.nodeC = append([]float64(nil), a.nodeC...)
	va.nodeNet = make([]int32, len(a.parent))
	for i := 0; i < a.nets; i++ {
		for n := a.nodeOff[i]; n < a.nodeOff[i+1]; n++ {
			va.nodeNet[n] = int32(i)
		}
	}
	// Endpoint classification mirrors Graph.report: an output is an endpoint
	// when it has an explicit requirement or drives no stage edge.
	required := map[[2]string]float64{}
	for _, r := range g.design.Requires {
		required[[2]string{r.Net, r.Output}] = r.Time
	}
	for i := 0; i < a.nets; i++ {
		node := &g.nodes[i]
		for sl := a.outOff[i]; sl < a.outOff[i+1]; sl++ {
			name := a.outName[sl]
			req, explicit := required[[2]string{node.name, name}]
			if !explicit && node.drives[name] {
				continue
			}
			if !explicit && defRequired > 0 {
				req, explicit = defRequired, true
			}
			if !explicit {
				req = math.Inf(1)
			}
			va.eps = append(va.eps, VarEndpoint{
				Net:      node.name,
				Output:   name,
				Required: req,
				Slot:     int(sl),
			})
		}
	}
	return va, nil
}

// Nets reports the number of nets (the required length of per-net factor
// slices).
func (va *VarArena) Nets() int { return va.base.nets }

// Threshold returns the switching threshold the view propagates at.
func (va *VarArena) Threshold() float64 { return va.th }

// Endpoints returns the design's timing endpoints. The slice is shared; do
// not mutate.
func (va *VarArena) Endpoints() []VarEndpoint { return va.eps }

// SetFactors rewrites the working value columns as base value × global scale
// × per-net factor: resistances get rScale·rNet[net], capacitances (edge and
// node) get cScale·cNet[net]. Nil per-net slices mean factor 1 everywhere;
// non-nil slices must have one entry per net, indexed by design net order.
func (va *VarArena) SetFactors(rScale, cScale float64, rNet, cNet []float64) error {
	if rNet != nil && len(rNet) != va.base.nets {
		return fmt.Errorf("timing: rNet has %d factors for %d nets", len(rNet), va.base.nets)
	}
	if cNet != nil && len(cNet) != va.base.nets {
		return fmt.Errorf("timing: cNet has %d factors for %d nets", len(cNet), va.base.nets)
	}
	for n := range va.nodeNet {
		rf, cf := rScale, cScale
		if rNet != nil {
			rf *= rNet[va.nodeNet[n]]
		}
		if cNet != nil {
			cf *= cNet[va.nodeNet[n]]
		}
		va.work.edgeR[n] = va.base.edgeR[n] * rf
		va.work.edgeC[n] = va.base.edgeC[n] * cf
		va.work.nodeC[n] = va.base.nodeC[n] * cf
	}
	return nil
}

// Propagate runs the full levelized sweep over the current working values on
// the caller's goroutine. Arrivals and slacks read afterwards reflect this
// propagation.
func (va *VarArena) Propagate(ctx context.Context) error {
	return va.work.propagateSeq(ctx, va.st, va.th, &va.scratch)
}

// Arrival returns the [min, max] arrival interval at an output slot after
// the last Propagate.
func (va *VarArena) Arrival(slot int) Interval {
	return Interval{va.st.arrMin[slot], va.st.arrMax[slot]}
}

// Slack returns the endpoint's slack after the last Propagate: required
// minus latest arrival (+Inf for unconstrained endpoints).
func (va *VarArena) Slack(ep VarEndpoint) float64 {
	return ep.Required - va.st.arrMax[ep.Slot]
}

// Clone returns an independent view sharing the immutable topology, base
// values, and endpoint table, with its own working columns (copied from the
// receiver's current factors) and propagation state. Use one clone per
// worker goroutine.
func (va *VarArena) Clone() *VarArena {
	c := &VarArena{
		base:    va.base,
		work:    va.work,
		nodeNet: va.nodeNet,
		th:      va.th,
		st:      va.base.newState(),
		eps:     va.eps,
	}
	c.work.edgeR = append([]float64(nil), va.work.edgeR...)
	c.work.edgeC = append([]float64(nil), va.work.edgeC...)
	c.work.nodeC = append([]float64(nil), va.work.nodeC...)
	return c
}
