package timing

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/trace"
)

// Edit is one ECO operation on a design session, addressed by net name plus
// (for node-level ops) a node name within that net. The op vocabulary is the
// EditTree's: setR, setC, addC, setLine, scaleDriver, grow, prune, addOutput,
// removeOutput. Numeric values ride in R/C/Factor pointers so "absent" and
// "zero" stay distinguishable on the JSON wire.
type Edit struct {
	Op     string   `json:"op"`
	Net    string   `json:"net"`
	Node   string   `json:"node,omitempty"`
	Parent string   `json:"parent,omitempty"`
	Name   string   `json:"name,omitempty"`
	Kind   string   `json:"kind,omitempty"` // "resistor" (default) or "line"
	R      *float64 `json:"r,omitempty"`
	C      *float64 `json:"c,omitempty"`
	Factor *float64 `json:"factor,omitempty"`
}

// ApplyResult summarizes one Session.Apply: how much of the design the
// dirty-cone sweep actually touched, and the headline numbers afterwards.
type ApplyResult struct {
	// Gen is the session generation after the edits (bumped once per Apply
	// that changed anything).
	Gen uint64 `json:"gen"`
	// Applied counts the edits applied (all of them unless an error stopped
	// the batch early; the applied prefix stays in effect).
	Applied int `json:"applied"`
	// DirtyNets counts nets whose timing state changed (edited nets plus the
	// downstream cone that actually moved).
	DirtyNets int `json:"dirtyNets"`
	// VisitedNets counts nets the sweep examined; VisitedNets - DirtyNets is
	// how many fanout nets early-exited with unchanged arrivals.
	VisitedNets int `json:"visitedNets"`
	// WNS and TNS are the updated worst/total negative slack (WNS is +Inf
	// with no constrained endpoint; the JSON form omits it then).
	WNS float64 `json:"-"`
	TNS float64 `json:"tns"`
	// InvalidatedPaths lists the endpoints of previously reported critical
	// paths that traverse a dirty net — their hop-by-hop story is stale and
	// the next Report backtracks them afresh.
	InvalidatedPaths []string `json:"invalidatedPaths,omitempty"`
}

// MarshalJSON renders WNS as an omitted field when +Inf (no constrained
// endpoint), following the report wire conventions.
func (r ApplyResult) MarshalJSON() ([]byte, error) {
	type plain ApplyResult // shed the method, keep the tags
	return json.Marshal(struct {
		plain
		WNS *float64 `json:"wns,omitempty"`
	}{plain(r), finitePtr(r.WNS)})
}

// Session is the incremental re-timing engine over one design: a Graph plus
// one mutable EditTree per net. Apply absorbs ECO edits in O(depth) per
// edited net and re-propagates interval arrivals only through the downstream
// fanout cone, with early exit where arrivals settle — against the full
// levelized sweep AnalyzeDesign pays (BenchmarkDesignECO measures the gap).
//
// A Session is not safe for concurrent use; wrap it in a mutex (as
// cmd/rcserve does) to share one across request handlers.
type Session struct {
	g        *Graph
	th       float64
	k        int
	required float64
	trees    []*incr.EditTree
	// protected[i] names net i's outputs that stage edges tap or .require
	// cards pin; pruning or undesignating them would orphan the graph
	// structure, so those edits are rejected.
	protected  []map[string]bool
	requiredAt map[[2]string]float64
	state      []netTiming
	// netMin/netNeg are per-net endpoint-slack aggregates (worst slack and
	// summed negative slack), refreshed only for dirty nets so WNS/TNS after
	// an Apply cost one O(nets) fold instead of an endpoint rescan.
	netMin []float64
	netNeg []float64
	// owned is the per-net dirty-range/ownership byte: ownTreeBit marks
	// trees[i] as exclusively this session's, ownStateBit the same for
	// state[i]'s arrival map. Fork zeroes the byte on both sides; applyOne
	// clones a shared tree and refreshOut a shared map before their first
	// mutation — copy-on-write, so a fork costs O(nets) flag-and-struct
	// copies instead of O(design) data.
	owned  []uint8
	gen    uint64
	report *Report // memoized; nil after any state change
	// scratch for the dirty-cone sweep, allocated lazily on the first Apply
	// so read-only forks (closure trials that get discarded early) stay
	// cheaper to create.
	queued  []bool
	buckets [][]int
	// obs receives per-Apply telemetry (dirty/visited cone sizes, apply
	// spans); nil disables it. Forks inherit it.
	obs *obs.Registry
}

// Ownership bits of Session.owned.
const (
	ownTreeBit uint8 = 1 << iota
	ownStateBit
)

// NewSession builds the graph, mounts one EditTree per net, and runs the
// initial full analysis (through opt.Engine's pool unless opt.Sequential).
// Options are fixed for the session's lifetime.
func NewSession(ctx context.Context, d *netlist.Design, opt Options) (*Session, error) {
	_, op := trace.StartOp(ctx, opt.Obs, "timing_levelize")
	g, err := NewGraph(d)
	op.SetError(err)
	op.End()
	if err != nil {
		return nil, err
	}
	return g.Session(ctx, opt)
}

// Session mounts an incremental re-timing session on an existing graph. The
// initial full analysis rides the resolved core (the flat arena by default);
// the session's own ECO machinery then re-times dirty cones incrementally.
func (g *Graph) Session(ctx context.Context, opt Options) (*Session, error) {
	r, err := opt.resolve()
	if err != nil {
		return nil, err
	}
	state, err := g.computeState(ctx, r)
	if err != nil {
		return nil, err
	}
	s := &Session{
		g:          g,
		th:         r.th,
		k:          r.k,
		required:   opt.Required,
		trees:      make([]*incr.EditTree, len(g.nodes)),
		protected:  make([]map[string]bool, len(g.nodes)),
		requiredAt: map[[2]string]float64{},
		state:      state,
		netMin:     make([]float64, len(g.nodes)),
		netNeg:     make([]float64, len(g.nodes)),
		owned:      make([]uint8, len(g.nodes)),
		obs:        r.obs,
	}
	for i := range g.nodes {
		s.trees[i] = incr.New(g.nodes[i].tree)
		s.owned[i] = ownTreeBit | ownStateBit
		s.protected[i] = make(map[string]bool, len(g.nodes[i].drives))
		for name := range g.nodes[i].drives {
			s.protected[i][name] = true
		}
	}
	for _, r := range g.design.Requires {
		s.requiredAt[[2]string{r.Net, r.Output}] = r.Time
		if i, ok := g.index[r.Net]; ok {
			s.protected[i][r.Output] = true
		}
	}
	for i := range g.nodes {
		s.refreshSummary(i)
	}
	return s, nil
}

// Fork returns an independent what-if copy of the session in O(nets): the
// per-net timing state is deep-copied, while the EditTrees — the bulk of a
// session's memory — are shared copy-on-write, cloned only when one side
// first edits that net. Edits to a fork never show through to the parent and
// vice versa, so a fork is the natural trial vehicle: fork, Apply a candidate
// ECO, read the resulting WNS/TNS, discard.
//
// Forks of the same parent may Apply concurrently with each other (each on
// its own goroutine): an Apply mutates only the fork's own state and its
// privately cloned trees, and merely reads trees still shared. Each
// individual Session, parent included, remains single-writer as always, and
// Fork itself must not race an Apply on the same session.
func (s *Session) Fork() *Session {
	f := &Session{
		g:          s.g,
		th:         s.th,
		k:          s.k,
		required:   s.required,
		trees:      append([]*incr.EditTree(nil), s.trees...),
		protected:  s.protected,  // immutable after NewSession
		requiredAt: s.requiredAt, // immutable after NewSession
		state:      append([]netTiming(nil), s.state...),
		netMin:     append([]float64(nil), s.netMin...),
		netNeg:     append([]float64(nil), s.netNeg...),
		owned:      make([]uint8, len(s.trees)),
		gen:        s.gen,
		report:     s.report, // reports are immutable once built
		obs:        s.obs,    // registries are goroutine-safe; forks share one
	}
	// The copied netTiming structs still point at the parent's arrival and
	// delay maps. Delay maps are only ever replaced wholesale, so sharing
	// them is safe forever; arrival maps are cloned by refreshOut before
	// their first in-place write. The parent's trees and maps are shared
	// now too: its next mutation must also clone first, or it would touch
	// data a live fork reads. Zeroing the ownership bytes on both sides is
	// the whole dirty-range reset — the underlying arrays stay put.
	for i := range s.owned {
		s.owned[i] = 0
	}
	return f
}

// ownOut returns net i's arrival map for in-place mutation, cloning it
// first if it is still shared with a fork (or a fork's parent).
func (s *Session) ownOut(i int) map[string]Interval {
	st := &s.state[i]
	if s.owned[i]&ownStateBit == 0 {
		m := make(map[string]Interval, len(st.out))
		for k, v := range st.out {
			m[k] = v
		}
		st.out = m
		s.owned[i] |= ownStateBit
	}
	return st.out
}

// ownTree returns net i's EditTree for mutation, cloning it first if it is
// still shared with a fork (or a fork's parent).
func (s *Session) ownTree(i int) *incr.EditTree {
	if s.owned[i]&ownTreeBit == 0 {
		s.trees[i] = s.trees[i].Clone()
		s.owned[i] |= ownTreeBit
	}
	return s.trees[i]
}

// Gen returns the session generation; it bumps once per Apply that changed
// any timing state, so equal generations imply identical reports.
func (s *Session) Gen() uint64 { return s.gen }

// Threshold returns the session's switching threshold.
func (s *Session) Threshold() float64 { return s.th }

// Required returns the session's default required arrival time (<= 0 means
// endpoints without an explicit .require card are unconstrained). Corner
// analyses mounting scaled shadow sessions use it to reproduce the session's
// constraint defaults.
func (s *Session) Required() float64 { return s.required }

// Nets reports the number of nets in the session's design.
func (s *Session) Nets() int { return len(s.g.nodes) }

// netIndex resolves a net name.
func (s *Session) netIndex(net string) (int, error) {
	if net == "" {
		return 0, fmt.Errorf("timing: edit names no net")
	}
	i, ok := s.g.index[net]
	if !ok {
		return 0, fmt.Errorf("timing: unknown net %q", net)
	}
	return i, nil
}

// NetDelay returns the current [TMin, TMax] delay interval of one net output.
func (s *Session) NetDelay(net, output string) (Interval, bool) {
	i, err := s.netIndex(net)
	if err != nil {
		return Interval{}, false
	}
	d, ok := s.state[i].delay[output]
	return d, ok
}

// Arrival returns the current arrival interval at one net output.
func (s *Session) Arrival(net, output string) (Interval, bool) {
	i, err := s.netIndex(net)
	if err != nil {
		return Interval{}, false
	}
	a, ok := s.state[i].out[output]
	return a, ok
}

// InputArrival returns the current arrival interval at the net's driven
// input ([0, 0] for a primary-input net).
func (s *Session) InputArrival(net string) (Interval, bool) {
	i, err := s.netIndex(net)
	if err != nil {
		return Interval{}, false
	}
	return s.state[i].input, true
}

// CriticalUpstream returns the names of the nets along the worst-arrival
// fanin chain ending at net — net itself first, walking each net's critical
// fanin edge back to a primary input. This is the cone a repair engine mines
// for candidate moves: any net on it contributes to the endpoint's latest
// arrival.
func (s *Session) CriticalUpstream(net string) []string {
	i, err := s.netIndex(net)
	if err != nil {
		return nil
	}
	var cone []string
	for {
		cone = append(cone, s.g.nodes[i].name)
		w := s.state[i].worst
		if w < 0 {
			return cone
		}
		i = s.g.nodes[i].fanin[w].driver
	}
}

// CloneNetTree returns an independent clone of one net's current EditTree —
// a safe probe vehicle for move generators that want to bisect a parameter
// without touching the session (opt.MaxParam over a cloned tree is the
// intended pairing).
func (s *Session) CloneNetTree(net string) (*incr.EditTree, bool) {
	i, err := s.netIndex(net)
	if err != nil {
		return nil, false
	}
	return s.trees[i].Clone(), true
}

// ViewNetTree returns one net's live EditTree for topology inspection
// (Lookup, Parent, Children, Edge, NodeCap, SubtreeCap, Outputs) without
// the O(n) clone CloneNetTree pays. The view is strictly read-only: callers
// must not invoke mutating methods — nor Times, which fills a memo — and
// must not hold the view across an Apply, which may swap the tree out under
// copy-on-write. Probing edits belongs on a CloneNetTree copy.
func (s *Session) ViewNetTree(net string) (*incr.EditTree, bool) {
	i, err := s.netIndex(net)
	if err != nil {
		return nil, false
	}
	return s.trees[i], true
}

// ProtectedOutputs lists net's outputs that stage edges tap or .require
// cards pin — the ones structural guards will refuse to prune or
// undesignate — in sorted order.
func (s *Session) ProtectedOutputs(net string) []string {
	i, err := s.netIndex(net)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(s.protected[i]))
	for name := range s.protected[i] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Apply performs the edits in order and re-times the affected cone. On the
// first failing edit it stops and returns the error; the already-applied
// prefix stays in effect and the propagated state remains consistent, so a
// caller can inspect the partial result and keep going.
func (s *Session) Apply(edits []Edit) (ApplyResult, error) {
	return s.ApplyCtx(context.Background(), edits)
}

// ApplyCtx is Apply with trace propagation: when ctx carries an active trace
// span, the apply (and its dirty-cone re-propagation) attach child spans
// under it alongside the duration histograms both forms always record.
func (s *Session) ApplyCtx(ctx context.Context, edits []Edit) (ApplyResult, error) {
	ctx, op := trace.StartOp(ctx, s.obs, "timing_eco_apply")
	var res ApplyResult
	edited := map[int]bool{}
	var firstErr error
	for idx, e := range edits {
		i, err := s.applyOne(e)
		if err != nil {
			firstErr = fmt.Errorf("timing: edit %d (%s): %w", idx, e.Op, err)
			break
		}
		edited[i] = true
		res.Applied++
	}
	if len(edited) > 0 {
		// The dirty-cone sweep's duration is part of the eco-apply histogram;
		// the trace view gets its own child span so a request tree shows the
		// propagate phase distinctly.
		_, psp := trace.StartSpan(ctx, "timing_propagate")
		if err := s.propagate(edited, &res); err != nil && firstErr == nil {
			firstErr = err
		}
		psp.SetAttr("dirty_nets", fmt.Sprint(res.DirtyNets))
		psp.End()
		s.gen++
	}
	res.Gen = s.gen
	res.WNS, res.TNS = s.summary()
	op.SetError(firstErr)
	op.End()
	if s.obs != nil {
		s.obs.Counter("timing_eco_edits_applied_total").Add(int64(res.Applied))
		s.obs.Histogram("timing_eco_dirty_nets", obs.SizeBuckets).Observe(float64(res.DirtyNets))
		s.obs.Histogram("timing_eco_visited_nets", obs.SizeBuckets).Observe(float64(res.VisitedNets))
	}
	return res, firstErr
}

// applyOne dispatches one edit onto its net's EditTree and returns the net
// index. Structural guards keep the graph sound: outputs that stage edges
// tap or requires pin cannot be pruned away or undesignated.
func (s *Session) applyOne(e Edit) (int, error) {
	i, err := s.netIndex(e.Net)
	if err != nil {
		return 0, err
	}
	et := s.ownTree(i)
	resolve := func(name string) (incr.NodeID, error) {
		if name == "" {
			return 0, fmt.Errorf("missing node name")
		}
		id, ok := et.Lookup(name)
		if !ok {
			return 0, fmt.Errorf("unknown node %q in net %q", name, e.Net)
		}
		return id, nil
	}
	num := func(what string, p *float64) (float64, error) {
		if p == nil {
			return 0, fmt.Errorf("missing %q", what)
		}
		return *p, nil
	}
	// A net whose total capacitance hits zero has undefined characteristic
	// times (the full analyzer rejects such a tree outright), so edits that
	// would drain the last capacitance are refused up front.
	drained := func(newTotal float64) error {
		if newTotal <= 0 {
			return fmt.Errorf("edit would leave net %q with no capacitance", e.Net)
		}
		return nil
	}
	switch e.Op {
	case "setR":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		r, err := num("r", e.R)
		if err != nil {
			return 0, err
		}
		return i, et.SetResistance(id, r)
	case "setC":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		c, err := num("c", e.C)
		if err != nil {
			return 0, err
		}
		if err := drained(et.TotalCap() - et.NodeCap(id) + c); err != nil {
			return 0, err
		}
		return i, et.SetCapacitance(id, c)
	case "addC":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		c, err := num("c", e.C)
		if err != nil {
			return 0, err
		}
		if err := drained(et.TotalCap() + c); err != nil {
			return 0, err
		}
		return i, et.AddCapacitance(id, c)
	case "setLine":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		r, err := num("r", e.R)
		if err != nil {
			return 0, err
		}
		c, err := num("c", e.C)
		if err != nil {
			return 0, err
		}
		_, _, oldC := et.Edge(id)
		if err := drained(et.TotalCap() - oldC + c); err != nil {
			return 0, err
		}
		return i, et.SetLine(id, r, c)
	case "scaleDriver":
		f, err := num("factor", e.Factor)
		if err != nil {
			return 0, err
		}
		return i, et.ScaleDriver(f)
	case "grow":
		parent, err := resolve(e.Parent)
		if err != nil {
			return 0, fmt.Errorf("parent: %w", err)
		}
		r, err := num("r", e.R)
		if err != nil {
			return 0, err
		}
		var c float64
		if e.C != nil {
			c = *e.C
		}
		kind, err := edgeKindOf(e.Kind, c)
		if err != nil {
			return 0, err
		}
		_, err = et.Grow(parent, e.Name, kind, r, c)
		return i, err
	case "prune":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		if name, bad := s.pruneWouldOrphan(i, id); bad {
			return 0, fmt.Errorf("cannot prune %q: output %q is tapped by a stage or pinned by a require", e.Node, name)
		}
		if s.outputsUnder(i, id) == len(et.Outputs()) {
			return 0, fmt.Errorf("cannot prune %q: net %q would be left without designated outputs", e.Node, e.Net)
		}
		if err := drained(et.TotalCap() - et.SubtreeCap(id)); err != nil {
			return 0, err
		}
		return i, et.Prune(id)
	case "addOutput":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		return i, et.AddOutput(id)
	case "removeOutput":
		id, err := resolve(e.Node)
		if err != nil {
			return 0, err
		}
		if s.protected[i][e.Node] {
			return 0, fmt.Errorf("output %q is tapped by a stage or pinned by a require", e.Node)
		}
		if len(et.Outputs()) == 1 {
			return 0, fmt.Errorf("cannot remove %q: net %q would be left without designated outputs", e.Node, e.Net)
		}
		if !et.RemoveOutput(id) {
			return 0, fmt.Errorf("node %q is not an output", e.Node)
		}
		return i, nil
	}
	return 0, fmt.Errorf("unknown op %q", e.Op)
}

// edgeKindOf maps the wire-form kind string onto rctree's enum, defaulting
// to "a line when C > 0, a resistor otherwise" as the session endpoints do.
func edgeKindOf(kind string, c float64) (rctree.EdgeKind, error) {
	switch kind {
	case "", "resistor":
		if kind == "" && c > 0 {
			return rctree.EdgeLine, nil
		}
		return rctree.EdgeResistor, nil
	case "line":
		return rctree.EdgeLine, nil
	}
	return 0, fmt.Errorf("unknown edge kind %q (want resistor or line)", kind)
}

// pruneWouldOrphan reports whether pruning node q of net i would drop a
// protected output (q itself or any output in its subtree), by walking each
// protected output's root path — O(protected · depth), no child lists needed.
func (s *Session) pruneWouldOrphan(i int, q incr.NodeID) (string, bool) {
	et := s.trees[i]
	for name := range s.protected[i] {
		id, ok := et.Lookup(name)
		if !ok {
			continue
		}
		for x := id; ; {
			if x == q {
				return name, true
			}
			if x == incr.Root {
				break
			}
			x = et.Parent(x)
		}
	}
	return "", false
}

// outputsUnder counts net i's designated outputs lying at or below node q.
// A prune that would sweep away every designated output is rejected, because
// an output-less tree re-promotes all leaves on Materialize and the session
// would silently diverge from a full re-analysis.
func (s *Session) outputsUnder(i int, q incr.NodeID) int {
	et := s.trees[i]
	count := 0
	for _, o := range et.Outputs() {
		for x := o; ; {
			if x == q {
				count++
				break
			}
			if x == incr.Root {
				break
			}
			x = et.Parent(x)
		}
	}
	return count
}

// recomputeDelay rebuilds net i's delay map from its EditTree: one O(depth)
// characteristic-times query plus a bound evaluation per designated output.
func (s *Session) recomputeDelay(i int) error {
	et := s.trees[i]
	outs := et.Outputs()
	delay := make(map[string]Interval, len(outs))
	for _, o := range outs {
		tm, err := et.Times(o)
		if err != nil {
			return fmt.Errorf("timing: net %q output %q: %w", s.g.nodes[i].name, et.Name(o), err)
		}
		b, err := core.New(tm)
		if err != nil {
			return fmt.Errorf("timing: net %q output %q: %w", s.g.nodes[i].name, et.Name(o), err)
		}
		delay[et.Name(o)] = Interval{b.TMin(s.th), b.TMax(s.th)}
	}
	s.state[i].delay = delay
	return nil
}

// propagate re-times the dirty cone: the edited nets re-derive their delay
// maps from their EditTrees, then arrivals sweep level by level through the
// downstream fanout, early-exiting any net whose input interval (and delay)
// came back unchanged. Only fanouts tapping an output whose arrival actually
// moved are enqueued, so a mid-cone settle stops the wave.
func (s *Session) propagate(edited map[int]bool, res *ApplyResult) error {
	var firstErr error
	if s.queued == nil {
		s.queued = make([]bool, len(s.g.nodes))
		s.buckets = make([][]int, len(s.g.levels))
	}
	dirty := make(map[int]bool, len(edited))
	push := func(i int) {
		if !s.queued[i] {
			s.queued[i] = true
			l := s.g.nodes[i].level
			s.buckets[l] = append(s.buckets[l], i)
		}
	}
	for i := range edited {
		push(i)
	}
	for l := range s.buckets {
		// Deterministic sweep order (pushes land only in deeper levels).
		sort.Ints(s.buckets[l])
		for _, i := range s.buckets[l] {
			s.queued[i] = false
			res.VisitedNets++
			st := &s.state[i]
			in, worst := s.g.gatherInput(s.state, i)
			delayDirty := edited[i]
			if !delayDirty && in == st.input {
				st.worst = worst // the critical fanin may flip without moving the hull
				continue
			}
			st.input, st.worst = in, worst
			if delayDirty {
				if err := s.recomputeDelay(i); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
			changed := s.refreshOut(i, delayDirty)
			if len(changed) > 0 || delayDirty {
				dirty[i] = true
				s.refreshSummary(i)
			}
			for _, fe := range s.g.nodes[i].fanout {
				if changed[fe.output] {
					push(fe.to)
				}
			}
		}
		s.buckets[l] = s.buckets[l][:0]
	}
	res.DirtyNets = len(dirty)
	if s.report != nil {
		for _, p := range s.report.Paths {
			for _, h := range p.Hops {
				if i, ok := s.g.index[h.Net]; ok && dirty[i] {
					res.InvalidatedPaths = append(res.InvalidatedPaths, p.Endpoint)
					break
				}
			}
		}
	}
	s.report = nil
	return firstErr
}

// refreshOut recomputes net i's output arrivals from the current input and
// delay map, returning the set of output names whose interval moved. With
// rebuild set (an edited net) the map is rebuilt so grown or pruned outputs
// appear and vanish; otherwise it is updated in place.
func (s *Session) refreshOut(i int, rebuild bool) map[string]bool {
	st := &s.state[i]
	changed := map[string]bool{}
	if rebuild {
		newOut := make(map[string]Interval, len(st.delay))
		for name, d := range st.delay {
			nv := st.input.plus(d)
			newOut[name] = nv
			if ov, ok := st.out[name]; !ok || ov != nv {
				changed[name] = true
			}
		}
		for name := range st.out {
			if _, ok := newOut[name]; !ok {
				changed[name] = true // output pruned (never stage-tapped: protected)
			}
		}
		st.out = newOut
		s.owned[i] |= ownStateBit // freshly built, private by construction
		return changed
	}
	for name, d := range st.delay {
		nv := st.input.plus(d)
		if st.out[name] != nv {
			s.ownOut(i)[name] = nv
			changed[name] = true
		}
	}
	return changed
}

// refreshSummary recomputes net i's endpoint-slack aggregates from its
// current outputs (the same endpoint classification report uses).
func (s *Session) refreshSummary(i int) {
	minS, neg := math.Inf(1), 0.0
	et := s.trees[i]
	node := &s.g.nodes[i]
	for _, o := range et.Outputs() {
		name := et.Name(o)
		req, explicit := s.requiredAt[[2]string{node.name, name}]
		if !explicit && node.drives[name] {
			continue
		}
		if !explicit {
			if s.required <= 0 {
				continue
			}
			req = s.required
		}
		slack := req - s.state[i].out[name].Max
		if slack < minS {
			minS = slack
		}
		if slack < 0 {
			neg += slack
		}
	}
	s.netMin[i], s.netNeg[i] = minS, neg
}

// summary folds the per-net aggregates into WNS/TNS — O(nets), independent
// of endpoint count.
func (s *Session) summary() (wns, tns float64) {
	wns = math.Inf(1)
	for i := range s.netMin {
		if s.netMin[i] < wns {
			wns = s.netMin[i]
		}
		tns += s.netNeg[i]
	}
	return wns, tns
}

// Report returns the full chip report for the current state — endpoint table
// sorted worst-first, WNS/TNS, and freshly backtracked critical paths. The
// report is memoized until the next state-changing Apply; treat it as
// immutable.
func (s *Session) Report() *Report {
	if s.report == nil {
		s.report = s.g.report(s.state, s.th, s.k, s.required, s.outputNames)
	}
	return s.report
}

// EndpointTable returns the chip report without critical-path backtracking:
// the endpoint slack table sorted worst-first, WNS/TNS, and an empty Paths.
// Iterative consumers like the closure engine, which re-read slacks after
// every edit but never walk paths, use it to skip Report's O(K·depth)
// backtracks. A memoized full Report is returned as-is (it is a superset);
// the endpoint-only form itself is not memoized.
func (s *Session) EndpointTable() *Report {
	if s.report != nil {
		return s.report
	}
	return s.g.report(s.state, s.th, 0, s.required, s.outputNames)
}

// outputNames lists net i's current designated output names, off the
// session's EditTrees (Analyze-time reports read the immutable trees
// instead).
func (s *Session) outputNames(i int) []string {
	et := s.trees[i]
	outs := et.Outputs()
	names := make([]string, len(outs))
	for j, o := range outs {
		names[j] = et.Name(o)
	}
	return names
}

// Design materializes the current session state back into a standalone
// design: every net's EditTree compacts to an immutable tree, and the stage
// and require cards carry over unchanged (structural guards keep them valid).
// AnalyzeDesign of the result agrees with the session's Report to numerical
// tolerance — the property tests pin this down.
func (s *Session) Design() (*netlist.Design, error) {
	d := &netlist.Design{
		Name:     s.g.design.Name,
		Stages:   append([]netlist.Stage(nil), s.g.design.Stages...),
		Requires: append([]netlist.Require(nil), s.g.design.Requires...),
	}
	for i, et := range s.trees {
		t, _, err := et.Materialize()
		if err != nil {
			return nil, fmt.Errorf("timing: materialize net %q: %w", s.g.nodes[i].name, err)
		}
		d.Nets = append(d.Nets, netlist.DesignNet{Name: s.g.nodes[i].name, Tree: t})
	}
	return d, nil
}

// SplitAddr splits an ECO address "net.node" at its first dot. Node is empty
// when the address carries no dot (net-level ops like scaleDriver).
func SplitAddr(addr string) (net, node string) {
	if i := strings.IndexByte(addr, '.'); i >= 0 {
		return addr[:i], addr[i+1:]
	}
	return addr, ""
}
