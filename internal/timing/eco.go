package timing

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// ECO edit-list grammar (statime -eco replays files of this form): one edit
// per line, '*' or '#' comment lines, ';' trailing comments, blank lines
// ignored. Ops are case-insensitive; values accept SPICE suffixes (2n, 5k).
// Node-level ops address "net.node" (split at the first dot); net-level ops
// take the bare net name.
//
//	setR net.node R
//	setC net.node C
//	addC net.node C
//	setLine net.node R C
//	scaleDriver net FACTOR
//	grow net.parent name resistor R
//	grow net.parent name line R C
//	prune net.node
//	addOutput net.node
//	removeOutput net.node

// ParseEdits reads an ECO edit list. Structural validity (do the nets and
// nodes exist, are the values legal) is the session's concern at Apply time;
// the parser only enforces the line grammar.
func ParseEdits(src string) ([]Edit, error) {
	var edits []Edit
	for lineNo, raw := range strings.Split(src, "\n") {
		no := lineNo + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		e, err := parseEditLine(fields)
		if err != nil {
			return nil, fmt.Errorf("timing: eco line %d: %w", no, err)
		}
		edits = append(edits, e)
	}
	return edits, nil
}

// canonicalOps maps the lower-cased op word to the Edit.Op spelling.
var canonicalOps = map[string]string{
	"setr": "setR", "setc": "setC", "addc": "addC", "setline": "setLine",
	"scaledriver": "scaleDriver", "grow": "grow", "prune": "prune",
	"addoutput": "addOutput", "removeoutput": "removeOutput",
}

func parseEditLine(fields []string) (Edit, error) {
	op, ok := canonicalOps[strings.ToLower(fields[0])]
	if !ok {
		return Edit{}, fmt.Errorf("unknown op %q", fields[0])
	}
	e := Edit{Op: op}
	val := func(s string) (*float64, error) {
		v, err := netlist.ParseValue(s)
		if err != nil {
			return nil, err
		}
		return &v, nil
	}
	nodeAddr := func(addr string) error {
		e.Net, e.Node = SplitAddr(addr)
		if e.Net == "" || e.Node == "" {
			return fmt.Errorf("address %q is not of the form net.node", addr)
		}
		return nil
	}
	argc := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("%s takes %d arguments, got %d", op, n-1, len(fields)-1)
		}
		return nil
	}
	var err error
	switch op {
	case "setR", "setC", "addC":
		if err = argc(3); err != nil {
			return Edit{}, err
		}
		if err = nodeAddr(fields[1]); err != nil {
			return Edit{}, err
		}
		p, err := val(fields[2])
		if err != nil {
			return Edit{}, err
		}
		if op == "setR" {
			e.R = p
		} else {
			e.C = p
		}
	case "setLine":
		if err = argc(4); err != nil {
			return Edit{}, err
		}
		if err = nodeAddr(fields[1]); err != nil {
			return Edit{}, err
		}
		if e.R, err = val(fields[2]); err != nil {
			return Edit{}, err
		}
		if e.C, err = val(fields[3]); err != nil {
			return Edit{}, err
		}
	case "scaleDriver":
		if err = argc(3); err != nil {
			return Edit{}, err
		}
		e.Net = fields[1]
		if e.Factor, err = val(fields[2]); err != nil {
			return Edit{}, err
		}
	case "grow":
		// grow net.parent name kind R [C]
		if len(fields) != 5 && len(fields) != 6 {
			return Edit{}, fmt.Errorf("grow takes 'net.parent name kind R [C]', got %d arguments", len(fields)-1)
		}
		e.Net, e.Parent = SplitAddr(fields[1])
		if e.Net == "" || e.Parent == "" {
			return Edit{}, fmt.Errorf("address %q is not of the form net.parent", fields[1])
		}
		e.Name = fields[2]
		switch strings.ToLower(fields[3]) {
		case "resistor":
			e.Kind = "resistor"
			if len(fields) != 5 {
				return Edit{}, fmt.Errorf("grow resistor takes R only")
			}
		case "line":
			e.Kind = "line"
			if len(fields) != 6 {
				return Edit{}, fmt.Errorf("grow line takes R and C")
			}
		default:
			return Edit{}, fmt.Errorf("unknown edge kind %q (want resistor or line)", fields[3])
		}
		if e.R, err = val(fields[4]); err != nil {
			return Edit{}, err
		}
		if len(fields) == 6 {
			if e.C, err = val(fields[5]); err != nil {
				return Edit{}, err
			}
		}
	case "prune", "addOutput", "removeOutput":
		if err = argc(2); err != nil {
			return Edit{}, err
		}
		if err = nodeAddr(fields[1]); err != nil {
			return Edit{}, err
		}
	}
	return e, nil
}

// FormatEdits renders edits back into the line grammar. Any edit ParseEdits
// produced round-trips exactly (FuzzEditOps pins this down). Hand-assembled
// edits must carry their op's required values: a missing value renders as
// "?" and an unknown op as its raw word, both of which a reparse rejects —
// a malformed edit list fails loudly instead of losing edits silently.
func FormatEdits(edits []Edit) string {
	var sb strings.Builder
	g := func(p *float64) string {
		if p == nil {
			return "?"
		}
		return strconv.FormatFloat(*p, 'g', -1, 64)
	}
	for _, e := range edits {
		switch e.Op {
		case "setR":
			fmt.Fprintf(&sb, "setR %s.%s %s\n", e.Net, e.Node, g(e.R))
		case "setC":
			fmt.Fprintf(&sb, "setC %s.%s %s\n", e.Net, e.Node, g(e.C))
		case "addC":
			fmt.Fprintf(&sb, "addC %s.%s %s\n", e.Net, e.Node, g(e.C))
		case "setLine":
			fmt.Fprintf(&sb, "setLine %s.%s %s %s\n", e.Net, e.Node, g(e.R), g(e.C))
		case "scaleDriver":
			fmt.Fprintf(&sb, "scaleDriver %s %s\n", e.Net, g(e.Factor))
		case "grow":
			// Mirror edgeKindOf's default: an empty kind with C > 0 is a line
			// at Apply time, so it must format as one (dropping C here would
			// silently change the circuit on replay).
			if e.Kind == "line" || (e.Kind == "" && e.C != nil && *e.C > 0) {
				fmt.Fprintf(&sb, "grow %s.%s %s line %s %s\n", e.Net, e.Parent, e.Name, g(e.R), g(e.C))
			} else {
				fmt.Fprintf(&sb, "grow %s.%s %s resistor %s\n", e.Net, e.Parent, e.Name, g(e.R))
			}
		case "prune", "addOutput", "removeOutput":
			fmt.Fprintf(&sb, "%s %s.%s\n", e.Op, e.Net, e.Node)
		default:
			fmt.Fprintf(&sb, "%s %s.%s\n", e.Op, e.Net, e.Node)
		}
	}
	return sb.String()
}

// EcoRow is one endpoint's before/after record in an ECO delta report.
type EcoRow struct {
	Net    string
	Output string
	// Before and After are the endpoint's latest-arrival bounds; Slack
	// fields are +Inf for unconstrained endpoints. A "new" endpoint (grown
	// during the ECO) has no Before; a "removed" one no After.
	ArrivalBefore Interval
	ArrivalAfter  Interval
	SlackBefore   float64
	SlackAfter    float64
	// Delta is ArrivalBefore.Max - ArrivalAfter.Max: positive means the
	// endpoint got faster. With requirements fixed across an ECO this equals
	// the slack gain. Zero for new/removed endpoints.
	Delta         float64
	VerdictBefore string
	VerdictAfter  string
	// Status is "" for an endpoint present on both sides, "new" or
	// "removed" otherwise.
	Status string
}

// EcoReport is the slack-delta view of one ECO: every endpoint before vs
// after the edit list, plus the sweep's dirty-cone statistics.
type EcoReport struct {
	Design      string
	Threshold   float64
	Applied     int
	DirtyNets   int
	VisitedNets int
	Nets        int
	WNSBefore   float64
	WNSAfter    float64
	TNSBefore   float64
	TNSAfter    float64
	// Rows follow the after-report's endpoint order (worst slack first);
	// removed endpoints trail in before-report order.
	Rows []EcoRow
}

// NewEcoReport joins the endpoint tables of two reports of the same design
// into a delta report. res carries the Apply statistics.
func NewEcoReport(before, after *Report, res ApplyResult) *EcoReport {
	rep := &EcoReport{
		Design:      after.Design,
		Threshold:   after.Threshold,
		Applied:     res.Applied,
		DirtyNets:   res.DirtyNets,
		VisitedNets: res.VisitedNets,
		Nets:        after.Nets,
		WNSBefore:   before.WNS,
		WNSAfter:    after.WNS,
		TNSBefore:   before.TNS,
		TNSAfter:    after.TNS,
	}
	type key struct{ net, output string }
	prev := make(map[key]*EndpointSlack, len(before.Endpoints))
	for i := range before.Endpoints {
		e := &before.Endpoints[i]
		prev[key{e.Net, e.Output}] = e
	}
	seen := make(map[key]bool, len(after.Endpoints))
	for i := range after.Endpoints {
		e := &after.Endpoints[i]
		k := key{e.Net, e.Output}
		seen[k] = true
		row := EcoRow{
			Net: e.Net, Output: e.Output,
			ArrivalAfter: e.Arrival, SlackAfter: e.Slack,
			SlackBefore:  math.Inf(1),
			VerdictAfter: e.Verdict.String(),
		}
		if b, ok := prev[k]; ok {
			row.ArrivalBefore = b.Arrival
			row.SlackBefore = b.Slack
			row.VerdictBefore = b.Verdict.String()
			row.Delta = b.Arrival.Max - e.Arrival.Max
		} else {
			row.Status = "new"
		}
		rep.Rows = append(rep.Rows, row)
	}
	for i := range before.Endpoints {
		e := &before.Endpoints[i]
		if seen[key{e.Net, e.Output}] {
			continue
		}
		rep.Rows = append(rep.Rows, EcoRow{
			Net: e.Net, Output: e.Output,
			ArrivalBefore: e.Arrival, SlackBefore: e.Slack,
			SlackAfter:    math.Inf(1),
			VerdictBefore: e.Verdict.String(),
			Status:        "removed",
		})
	}
	return rep
}

// Summary renders the fixed-width ECO delta report.
func (r *EcoReport) Summary() string {
	var b strings.Builder
	name := r.Design
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "eco %s: %d edits applied, threshold %g\n", name, r.Applied, r.Threshold)
	fmt.Fprintf(&b, "dirty cone: %d/%d nets re-timed (%d visited)\n", r.DirtyNets, r.Nets, r.VisitedNets)
	fmt.Fprintf(&b, "WNS %s -> %s   TNS %s -> %s\n\n",
		fmtG(r.WNSBefore), fmtG(r.WNSAfter), fmtG(r.TNSBefore), fmtG(r.TNSAfter))
	fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %12s %-8s %-8s %s\n",
		"net", "output", "arr.before", "arr.after", "slk.before", "slk.after", "delta",
		"verdict", "was", "status")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %12s %-8s %-8s %s\n",
			row.Net, row.Output,
			ecoArr(row.ArrivalBefore, row.Status == "new"),
			ecoArr(row.ArrivalAfter, row.Status == "removed"),
			fmtG(row.SlackBefore), fmtG(row.SlackAfter), ecoDelta(row),
			row.VerdictAfter, row.VerdictBefore, row.Status)
	}
	return b.String()
}

// ecoArr renders an arrival max, with "-" for the missing side of a
// new/removed endpoint.
func ecoArr(iv Interval, absent bool) string {
	if absent {
		return "-"
	}
	return fmtG(iv.Max)
}

func ecoDelta(row EcoRow) string {
	if row.Status != "" {
		return "-"
	}
	return fmtG(row.Delta)
}

// WriteCSV emits the delta table as CSV, one row per endpoint. Absent
// fields (unconstrained slacks, the missing side of new/removed endpoints)
// are left empty.
func (r *EcoReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"net", "output", "arrival_max_before", "arrival_max_after",
		"slack_before", "slack_after", "delta", "verdict_before", "verdict_after", "status",
	}); err != nil {
		return fmt.Errorf("timing: eco csv: %w", err)
	}
	g := func(v float64) string {
		if math.IsInf(v, 0) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, row := range r.Rows {
		before, after, delta := g(row.ArrivalBefore.Max), g(row.ArrivalAfter.Max), g(row.Delta)
		if row.Status == "new" {
			before, delta = "", ""
		}
		if row.Status == "removed" {
			after, delta = "", ""
		}
		rec := []string{
			row.Net, row.Output, before, after,
			g(row.SlackBefore), g(row.SlackAfter), delta,
			row.VerdictBefore, row.VerdictAfter, row.Status,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("timing: eco csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Wire shapes: infinities ride as omitted pointers, as in the chip report.
type jsonEcoRow struct {
	Net           string    `json:"net"`
	Output        string    `json:"output"`
	ArrivalBefore *Interval `json:"arrivalBefore,omitempty"`
	ArrivalAfter  *Interval `json:"arrivalAfter,omitempty"`
	SlackBefore   *float64  `json:"slackBefore,omitempty"`
	SlackAfter    *float64  `json:"slackAfter,omitempty"`
	Delta         *float64  `json:"delta,omitempty"`
	VerdictBefore string    `json:"verdictBefore,omitempty"`
	VerdictAfter  string    `json:"verdictAfter,omitempty"`
	Status        string    `json:"status,omitempty"`
}

type jsonEcoReport struct {
	Design      string       `json:"design,omitempty"`
	Threshold   float64      `json:"threshold"`
	Applied     int          `json:"applied"`
	DirtyNets   int          `json:"dirtyNets"`
	VisitedNets int          `json:"visitedNets"`
	Nets        int          `json:"nets"`
	WNSBefore   *float64     `json:"wnsBefore,omitempty"`
	WNSAfter    *float64     `json:"wnsAfter,omitempty"`
	TNSBefore   float64      `json:"tnsBefore"`
	TNSAfter    float64      `json:"tnsAfter"`
	Rows        []jsonEcoRow `json:"rows"`
}

func (r *EcoReport) wire() jsonEcoReport {
	out := jsonEcoReport{
		Design: r.Design, Threshold: r.Threshold,
		Applied: r.Applied, DirtyNets: r.DirtyNets, VisitedNets: r.VisitedNets,
		Nets:      r.Nets,
		WNSBefore: finitePtr(r.WNSBefore), WNSAfter: finitePtr(r.WNSAfter),
		TNSBefore: r.TNSBefore, TNSAfter: r.TNSAfter,
	}
	for _, row := range r.Rows {
		jr := jsonEcoRow{
			Net: row.Net, Output: row.Output,
			SlackBefore: finitePtr(row.SlackBefore), SlackAfter: finitePtr(row.SlackAfter),
			VerdictBefore: row.VerdictBefore, VerdictAfter: row.VerdictAfter,
			Status: row.Status,
		}
		if row.Status != "new" {
			iv := row.ArrivalBefore
			jr.ArrivalBefore = &iv
		}
		if row.Status != "removed" {
			iv := row.ArrivalAfter
			jr.ArrivalAfter = &iv
		}
		if row.Status == "" {
			d := row.Delta
			jr.Delta = &d
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// WriteJSON emits the delta report as indented JSON with a stable schema.
func (r *EcoReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.wire()); err != nil {
		return fmt.Errorf("timing: eco json: %w", err)
	}
	return nil
}

// MarshalJSON makes the delta report embeddable in JSON envelopes.
func (r *EcoReport) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.wire())
}
