package timing

import (
	"fmt"
	"strings"
	"testing"
)

// growChainEdits builds an edit list that grows one deep chain hanging off a
// net — each grow's parent is the previous grow's node.
func growChainEdits(n int) string {
	var b strings.Builder
	parent := "o"
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("g%d", i)
		fmt.Fprintf(&b, "grow net.%s %s resistor 2\n", parent, name)
		parent = name
	}
	return b.String()
}

// growFanoutEdits builds an edit list that grows a wide star off one node.
func growFanoutEdits(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "grow net.o w%d line 3 0.5\n", i)
	}
	return b.String()
}

// FuzzEditOps asserts the ECO edit-list parser never panics and that any
// list it accepts survives a FormatEdits→ParseEdits round trip with every
// edit intact — the same contract FuzzParseDesign pins on the deck parser.
func FuzzEditOps(f *testing.F) {
	seeds := []string{
		"",
		"* comment\n# comment\n",
		"setR drv.o 5k\nsetC bus.far 0.1 ; load tweak\n",
		"addC a.b 2p\nsetLine a.b 10 2\nscaleDriver a 0.5\n",
		"grow bus.far tap resistor 5\ngrow bus.far t2 line 5 2\n",
		"prune a.b\naddOutput a.b\nremoveOutput a.b\n",
		"SETR a.b 1\nScaleDriver x 2\n",
		"setR a.b.c 1\n", // node names may themselves contain dots
		"setR a 1\n",     // missing node
		"grow a.b n resistor 1 2\n",
		"setR a.b 1e999\n",
		"scaleDriver a.b 1\n",
		"setR a.\x00b 1\n",
		growChainEdits(40),
		growFanoutEdits(40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		edits, err := ParseEdits(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := FormatEdits(edits)
		back, err := ParseEdits(text)
		if err != nil {
			t.Fatalf("accepted edits failed round trip: %v\noriginal:\n%s\nformatted:\n%s", err, src, text)
		}
		if len(back) != len(edits) {
			t.Fatalf("round trip changed count %d -> %d\n%s", len(edits), len(back), text)
		}
		for i := range edits {
			if !editsEqual(edits[i], back[i]) {
				t.Fatalf("edit %d changed:\n%s\nvs\n%s", i,
					strings.TrimSpace(FormatEdits(edits[i:i+1])),
					strings.TrimSpace(FormatEdits(back[i:i+1])))
			}
		}
	})
}
