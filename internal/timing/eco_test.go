package timing

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestParseEdits(t *testing.T) {
	src := `
* comment line
# another comment
setR drv.o 5k        ; trailing comment
setC bus.far 0.1
addC bus.far 2p
setLine bus.far 10 2
scaleDriver drv 0.5
grow bus.far tap resistor 5
grow bus.far tap2 line 5 2
prune bus.tap
addOutput bus.tap2
removeOutput bus.tap2
`
	edits, err := ParseEdits(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edit{
		{Op: "setR", Net: "drv", Node: "o", R: f64(5000)},
		{Op: "setC", Net: "bus", Node: "far", C: f64(0.1)},
		{Op: "addC", Net: "bus", Node: "far", C: f64(2e-12)},
		{Op: "setLine", Net: "bus", Node: "far", R: f64(10), C: f64(2)},
		{Op: "scaleDriver", Net: "drv", Factor: f64(0.5)},
		{Op: "grow", Net: "bus", Parent: "far", Name: "tap", Kind: "resistor", R: f64(5)},
		{Op: "grow", Net: "bus", Parent: "far", Name: "tap2", Kind: "line", R: f64(5), C: f64(2)},
		{Op: "prune", Net: "bus", Node: "tap"},
		{Op: "addOutput", Net: "bus", Node: "tap2"},
		{Op: "removeOutput", Net: "bus", Node: "tap2"},
	}
	if len(edits) != len(want) {
		t.Fatalf("parsed %d edits, want %d", len(edits), len(want))
	}
	for i := range want {
		if !editsEqual(edits[i], want[i]) {
			t.Errorf("edit %d = %s, want %s", i, FormatEdits(edits[i:i+1]), FormatEdits(want[i:i+1]))
		}
	}
	// Round trip through the formatter.
	back, err := ParseEdits(FormatEdits(edits))
	if err != nil {
		t.Fatalf("formatted edits failed to reparse: %v", err)
	}
	if !reflect.DeepEqual(edits, back) {
		t.Errorf("round trip changed edits:\n%s\nvs\n%s", FormatEdits(edits), FormatEdits(back))
	}
}

func TestParseEditsErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"warp a.b 1", "unknown op"},
		{"setR ab 1", "net.node"},
		{"setR .b 1", "net.node"},
		{"setR a. 1", "net.node"},
		{"setR a.b", "arguments"},
		{"setR a.b 1 2", "arguments"},
		{"setR a.b x", "bad value"},
		{"setLine a.b 1", "arguments"},
		{"scaleDriver a", "arguments"},
		{"grow a.b name resistor 1 2", "resistor takes R only"},
		{"grow a.b name line 1", "line takes R and C"},
		{"grow a.b name coil 1", "unknown edge kind"},
		{"grow a.b", "grow takes"},
		{"prune a.b extra", "arguments"},
		{"setR a.b 1e999", "bad value"},
	}
	for _, tc := range cases {
		if _, err := ParseEdits(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseEdits(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
	// Empty input is an empty edit list, not an error.
	if edits, err := ParseEdits("\n* nothing\n"); err != nil || len(edits) != 0 {
		t.Errorf("empty list: %v, %v", edits, err)
	}
}

// TestFormatEditsMalformed: hand-assembled edits with missing values or
// unknown ops must render as lines a reparse rejects — loud, not lossy.
func TestFormatEditsMalformed(t *testing.T) {
	missing := FormatEdits([]Edit{{Op: "setR", Net: "a", Node: "b"}}) // R nil
	if !strings.Contains(missing, "?") {
		t.Errorf("missing value rendered as %q", missing)
	}
	if _, err := ParseEdits(missing); err == nil {
		t.Error("reparse of a value-less edit did not fail")
	}
	unknown := FormatEdits([]Edit{{Op: "warp", Net: "a", Node: "b"}})
	if unknown == "" {
		t.Fatal("unknown op vanished from the formatted list")
	}
	if _, err := ParseEdits(unknown); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("reparse of an unknown op: %v", err)
	}
	// A default-kind grow with C > 0 is a line at Apply time (edgeKindOf),
	// so it must format as one — dropping C would silently change the
	// replayed circuit.
	implicitLine := FormatEdits([]Edit{{Op: "grow", Net: "a", Parent: "b", Name: "t", R: f64(5), C: f64(2)}})
	back, err := ParseEdits(implicitLine)
	if err != nil {
		t.Fatalf("implicit-line grow failed reparse: %v\n%s", err, implicitLine)
	}
	if len(back) != 1 || back[0].Kind != "line" || back[0].C == nil || *back[0].C != 2 {
		t.Errorf("implicit-line grow round-tripped as %s", implicitLine)
	}
}

func editsEqual(a, b Edit) bool {
	eq := func(x, y *float64) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || *x == *y
	}
	return a.Op == b.Op && a.Net == b.Net && a.Node == b.Node && a.Parent == b.Parent &&
		a.Name == b.Name && a.Kind == b.Kind && eq(a.R, b.R) && eq(a.C, b.C) && eq(a.Factor, b.Factor)
}

func ecoFixture(t *testing.T) (*Session, *Report, *Report, ApplyResult) {
	t.Helper()
	a := simpleNet(t, "a", 10, 5)
	b := simpleNet(t, "b", 20, 3)
	d := &netlist.Design{
		Name:     "demo",
		Nets:     []netlist.DesignNet{a, b},
		Stages:   []netlist.Stage{{FromNet: "a", FromOutput: "o", ToNet: "b", Delay: 7}},
		Requires: []netlist.Require{{Net: "b", Output: "o", Time: 500}},
	}
	s := newTestSession(t, d, Options{})
	before := s.Report()
	res, err := s.Apply([]Edit{
		{Op: "setR", Net: "a", Node: "o", R: f64(40)},
		{Op: "grow", Net: "b", Parent: "o", Name: "tap", Kind: "line", R: f64(5), C: f64(2)},
		{Op: "addOutput", Net: "b", Node: "tap"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, before, s.Report(), res
}

func TestEcoReport(t *testing.T) {
	_, before, after, res := ecoFixture(t)
	eco := NewEcoReport(before, after, res)
	if eco.Design != "demo" || eco.Applied != 3 {
		t.Errorf("header = %+v", eco)
	}
	if len(eco.Rows) != 2 {
		t.Fatalf("rows = %+v", eco.Rows)
	}
	var grown, kept *EcoRow
	for i := range eco.Rows {
		switch eco.Rows[i].Output {
		case "tap":
			grown = &eco.Rows[i]
		case "o":
			kept = &eco.Rows[i]
		}
	}
	if grown == nil || grown.Status != "new" {
		t.Errorf("grown endpoint row = %+v", grown)
	}
	if kept == nil || kept.Status != "" {
		t.Fatalf("kept endpoint row = %+v", kept)
	}
	// The driver slowdown must show as a negative delta (arrival grew), and
	// delta must equal the slack loss since the requirement is unchanged.
	if kept.Delta >= 0 {
		t.Errorf("delta = %g, want negative after slowdown", kept.Delta)
	}
	if !closeEnough(kept.Delta, kept.SlackAfter-kept.SlackBefore) {
		t.Errorf("delta %g vs slack change %g", kept.Delta, kept.SlackAfter-kept.SlackBefore)
	}
	if !closeEnough(eco.WNSBefore, before.WNS) || !closeEnough(eco.WNSAfter, after.WNS) {
		t.Errorf("WNS before/after = %g/%g", eco.WNSBefore, eco.WNSAfter)
	}

	text := eco.Summary()
	for _, want := range []string{"eco demo", "3 edits applied", "dirty cone", "WNS", "new"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	var csvBuf bytes.Buffer
	if err := eco.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != 3 {
		t.Errorf("csv lines = %d:\n%s", lines, csvBuf.String())
	}
	var jsonBuf bytes.Buffer
	if err := eco.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("json invalid: %v\n%s", err, jsonBuf.String())
	}
	if decoded["design"] != "demo" || decoded["applied"].(float64) != 3 {
		t.Errorf("json = %v", decoded)
	}
	if _, err := json.Marshal(eco); err != nil {
		t.Errorf("MarshalJSON: %v", err)
	}
}

func TestEcoReportRemovedEndpoint(t *testing.T) {
	s, _, _, _ := ecoFixture(t)
	mid := s.Report()
	res, err := s.Apply([]Edit{{Op: "prune", Net: "b", Node: "tap"}})
	if err != nil {
		t.Fatal(err)
	}
	eco := NewEcoReport(mid, s.Report(), res)
	var removed *EcoRow
	for i := range eco.Rows {
		if eco.Rows[i].Status == "removed" {
			removed = &eco.Rows[i]
		}
	}
	if removed == nil || removed.Output != "tap" {
		t.Fatalf("rows = %+v", eco.Rows)
	}
	if !math.IsInf(removed.SlackAfter, 1) {
		t.Errorf("removed slackAfter = %g", removed.SlackAfter)
	}
	// Renderers must survive the one-sided row.
	if !strings.Contains(eco.Summary(), "removed") {
		t.Error("summary missing removed status")
	}
	var buf bytes.Buffer
	if err := eco.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := eco.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestEcoUnconstrainedDelta checks the delta stays finite and meaningful on
// endpoints with no requirement (slack is +Inf on both sides).
func TestEcoUnconstrainedDelta(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	d := &netlist.Design{Nets: []netlist.DesignNet{a}}
	s := newTestSession(t, d, Options{})
	before := s.Report()
	res, err := s.Apply([]Edit{{Op: "setR", Net: "a", Node: "o", R: f64(5)}})
	if err != nil {
		t.Fatal(err)
	}
	eco := NewEcoReport(before, s.Report(), res)
	row := eco.Rows[0]
	if row.Delta <= 0 {
		t.Errorf("halved R should speed the endpoint: delta = %g", row.Delta)
	}
	if !math.IsInf(row.SlackBefore, 1) || !math.IsInf(row.SlackAfter, 1) {
		t.Errorf("unconstrained slacks = %g/%g", row.SlackBefore, row.SlackAfter)
	}
	var buf bytes.Buffer
	if err := eco.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Inf") {
		t.Errorf("json leaked an infinity:\n%s", buf.String())
	}
}

func TestSessionThresholdValidation(t *testing.T) {
	a := simpleNet(t, "a", 10, 5)
	d := &netlist.Design{Nets: []netlist.DesignNet{a}}
	if _, err := NewSession(context.Background(), d, Options{Threshold: 2}); err == nil {
		t.Error("threshold 2 accepted")
	}
	if _, err := NewSession(context.Background(), nil, Options{}); err == nil {
		t.Error("nil design accepted")
	}
}
