// Package timing turns per-net Penfield–Rubinstein bounds into chip-level
// slack: a static timing engine over multi-net designs.
//
// A netlist.Design is a set of named RC-tree nets glued by stage edges
// ("output X of net A drives the input of net B through a gate with
// intrinsic delay d"). The engine builds the DAG of nets, levelizes it, and
// computes every net's output delay interval [TMin, TMax] at the switching
// threshold — the paper's bounds, evaluated through the shared batch worker
// pool so all nets of a level run concurrently. Interval arrival times then
// propagate along the stage edges:
//
//   - a primary-input net (no fanin) is driven by the ideal step at t = 0,
//     so its input arrival is the degenerate interval [0, 0];
//   - a net's output arrival is its input arrival plus the output's delay
//     interval — the lower edges add (earliest possible crossing), and the
//     upper edges add (latest certifiable crossing);
//   - a stage edge shifts the driver's output arrival by the gate's
//     intrinsic delay; a multi-fanin net takes the interval hull (min of
//     mins, max of maxes) over its drivers, the standard early/late STA
//     convention.
//
// Because every per-net interval provably contains the true crossing time
// (the paper's Theorems), every propagated arrival interval provably
// contains the true cascade arrival under the staged step model — the
// cross-check tests verify this against the exact eigendecomposition
// simulator stage by stage.
//
// The report answers the designer's chip-level questions: per-endpoint
// arrival intervals and slack against required times, worst negative slack
// (WNS), total negative slack (TNS), and the K most critical paths,
// backtracked through the worst-arrival fanin edge of each net.
//
// Analyze is the one-call form; NewGraph + Graph.Analyze amortizes graph
// construction across repeated analyses. Options.Sequential disables the
// level-parallel fan-out (BenchmarkDesignSlack measures the gap).
//
// # The flat-arena core
//
// Analysis runs on one of two interchangeable compute cores, selected by
// Options.Core. The default (CoreArena, unless an explicit shared Engine is
// set) is a flat SoA/CSR arena built once per Graph: every net's RC tree
// flattened into one concatenated node arena with one contiguous slice per
// field, and every variable-length relation as a CSR index range:
//
//	nodes   net 0 nodes | net 1 nodes | ...     nodeOff CSR per net
//	        parent/kind/edgeR/edgeC/nodeC       one flat slice per field
//	slots   net 0 outputs | net 1 outputs | ... outOff CSR per net
//	fanin   finOff CSR; driver net, driver's global output slot, delay
//	fanout  foutOff CSR; successor net per stage edge
//	order   levelized net order with levelOff per level — computed once
//
// Output-name lookups are resolved to integer slots at build, so propagation
// touches nothing but flat float64/int32 slices; the steady-state sequential
// sweep allocates nothing per pass (an AllocsPerRun test pins this). The
// original pointer-tree core (CorePointer) stays intact behind the batch
// engine — an explicit Options.Engine selects it so repeated nets hit the
// engine's cross-design memoization cache — and the differential harness
// pins the two cores to each other to 1e-9 on every quantity the report
// carries, fresh and across randomized ECO edit sequences.
//
// Parallel arena propagation is scheduled by Options.Scheduler.
// SchedLevelBarrier shards each topological level across workers and
// barriers between levels — simple, but a deep design with narrow levels
// serializes on the barriers. SchedWorkSteal (the default) drops them: each
// net carries an atomic remaining-fanin counter, a finished net pushes the
// successors that just became ready onto its own deque (popped LIFO, chasing
// the fanout cone depth-first for locality), and idle workers steal FIFO.
// Results are bit-identical across cores, schedulers and worker counts —
// each net's computation is a pure function of its drivers' final state.
//
// # Incremental re-timing (ECO sessions)
//
// A Session keeps the design hot across edits: every net mounts an incr
// EditTree, and Apply absorbs ECO operations (setR, setC, addC, setLine,
// scaleDriver, grow, prune, addOutput, removeOutput — addressed "net.node")
// in O(depth) per edited net. Re-timing is a dirty-cone sweep: only the
// edited nets re-derive their bound intervals, and arrivals re-propagate
// level by level through their downstream fanout, early-exiting wherever an
// input interval comes back unchanged — a mid-cone settle stops the wave.
// Apply answers with the updated WNS/TNS (folded from per-net aggregates in
// O(nets)), the dirty-cone statistics, and which previously reported
// critical paths the edit invalidated; Report rebuilds the full endpoint
// table and paths lazily. The property tests pin Session equivalence to a
// from-scratch Analyze of the materialized design to 1e-9 over randomized
// edit sequences, and BenchmarkDesignECO measures the dirty-cone speedup
// against a full re-analysis.
//
// ParseEdits/FormatEdits define the textual ECO edit-list grammar
// (statime -eco replays such files), and NewEcoReport joins a before/after
// report pair into the slack-delta view.
package timing
