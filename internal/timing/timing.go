package timing

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/trace"
)

// Interval is a closed time interval [Min, Max] bracketing an arrival.
type Interval struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Contains reports whether t lies in the interval (inclusive).
func (iv Interval) Contains(t float64) bool { return iv.Min <= t && t <= iv.Max }

// add shifts the interval by a scalar delay.
func (iv Interval) add(d float64) Interval { return Interval{iv.Min + d, iv.Max + d} }

// plus adds two intervals end to end.
func (iv Interval) plus(o Interval) Interval { return Interval{iv.Min + o.Min, iv.Max + o.Max} }

// hull widens the interval to cover o (min of mins, max of maxes).
func (iv Interval) hull(o Interval) Interval {
	return Interval{math.Min(iv.Min, o.Min), math.Max(iv.Max, o.Max)}
}

// CoreKind selects the compute core an analysis runs on.
type CoreKind int

const (
	// CoreAuto uses the flat arena core, unless a shared Engine is supplied
	// (an explicit engine means the caller wants its memoization cache, which
	// only the pointer core consults).
	CoreAuto CoreKind = iota
	// CoreArena forces the flat SoA/CSR arena core: index-based node storage,
	// allocation-free levelized propagation, and (when parallel) the chosen
	// Scheduler. Engine is ignored.
	CoreArena
	// CorePointer forces the original pointer-tree core: per-net
	// rctree.Tree walks fanned across a batch engine (or computed inline
	// when Sequential). Kept as the independent reference implementation the
	// differential harness compares the arena against.
	CorePointer
)

// Options configures an analysis. The zero value uses threshold 0.5, no
// default required time, 5 critical paths, the flat arena core, and
// work-stealing parallel execution across GOMAXPROCS workers.
type Options struct {
	// Threshold is the receiving gates' switching threshold as a fraction of
	// the step (0 means 0.5).
	Threshold float64
	// Required is the default required arrival time applied to endpoints
	// without an explicit .require card; <= 0 leaves them unconstrained.
	Required float64
	// K is how many critical paths to backtrack (0 means 5; negative means
	// none).
	K int
	// Engine is the batch engine the pointer core fans per-net bound
	// computations across. Setting it selects the pointer core under
	// CoreAuto, so repeated nets hit the engine's memoization cache; the
	// arena core computes bounds in place and never consults it.
	Engine *batch.Engine
	// Sequential computes each net one at a time on the caller's goroutine,
	// whichever core is selected.
	Sequential bool
	// Core picks the compute core; see CoreKind.
	Core CoreKind
	// Scheduler picks the parallel arena schedule (SchedAuto means
	// work-stealing). Ignored by the pointer core and in sequential mode.
	Scheduler Scheduler
	// Workers caps arena propagation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Obs receives engine-phase telemetry (graph/arena build spans,
	// per-scheduler propagation timings, dirty-cone sweep sizes). Nil — the
	// default — disables it at the cost of one pointer test per phase.
	Obs *obs.Registry
}

// faninEdge is one resolved stage edge entering a net.
type faninEdge struct {
	driver int     // index of the driving net
	output string  // designated output of the driver the gate taps
	delay  float64 // gate intrinsic delay
}

// fanoutEdge is one resolved stage edge leaving a net; output names the
// designated output the downstream gate taps, so incremental propagation can
// skip fanouts whose tapped output did not move.
type fanoutEdge struct {
	to     int
	output string
}

// gnode is one net in the timing graph.
type gnode struct {
	name   string
	tree   *rctree.Tree
	fanin  []faninEdge
	fanout []fanoutEdge // driven nets (one entry per stage edge)
	level  int
	// drives marks which outputs feed at least one stage edge; outputs not
	// in the set are timing endpoints.
	drives map[string]bool
}

// Graph is a levelized timing DAG built from a design. Build once, analyze
// many times (e.g. under different thresholds); Graphs are immutable after
// NewGraph and safe for concurrent Analyze calls.
type Graph struct {
	design *netlist.Design
	nodes  []gnode
	index  map[string]int // net name -> node index
	levels [][]int        // net indices per level, each level sorted ascending
	// The flat arena core is built lazily on first use and shared by every
	// analysis and session mounted on this graph (it is immutable).
	arenaOnce sync.Once
	arenaVal  *designArena
	arenaErr  error
}

// arena returns the graph's flat compute core, building it on first use.
func (g *Graph) arena() (*designArena, error) {
	return g.arenaWith(context.Background(), nil)
}

// arenaWith is arena with telemetry: the build (which happens at most once
// per graph) records a timing_arena_build_seconds histogram on reg and a
// timing_arena_build trace span under ctx when it is the call that actually
// constructs the core.
func (g *Graph) arenaWith(ctx context.Context, reg *obs.Registry) (*designArena, error) {
	g.arenaOnce.Do(func() {
		_, op := trace.StartOp(ctx, reg, "timing_arena_build")
		g.arenaVal, g.arenaErr = newDesignArena(g)
		op.SetError(g.arenaErr)
		op.End()
	})
	return g.arenaVal, g.arenaErr
}

// NewGraph resolves a design into a levelized DAG. Stage edges must form no
// cycle: every net's level is one past its deepest driver.
func NewGraph(d *netlist.Design) (*Graph, error) {
	if d == nil || len(d.Nets) == 0 {
		return nil, fmt.Errorf("timing: design has no nets")
	}
	index := make(map[string]int, len(d.Nets))
	g := &Graph{design: d, nodes: make([]gnode, len(d.Nets)), index: index}
	for i, n := range d.Nets {
		index[n.Name] = i
		g.nodes[i] = gnode{name: n.Name, tree: n.Tree, drives: map[string]bool{}}
	}
	for _, s := range d.Stages {
		from, ok := index[s.FromNet]
		if !ok {
			return nil, fmt.Errorf("timing: stage references unknown net %q", s.FromNet)
		}
		to, ok := index[s.ToNet]
		if !ok {
			return nil, fmt.Errorf("timing: stage references unknown net %q", s.ToNet)
		}
		// ParseDesign validates this too, but designs assembled in code reach
		// here directly, and a dangling output name would otherwise read as a
		// silent {0,0} arrival — an unsound report rather than an error.
		if !isDesignatedOutput(g.nodes[from].tree, s.FromOutput) {
			return nil, fmt.Errorf("timing: stage taps %q, which is not a designated output of net %q", s.FromOutput, s.FromNet)
		}
		g.nodes[to].fanin = append(g.nodes[to].fanin, faninEdge{driver: from, output: s.FromOutput, delay: s.Delay})
		g.nodes[from].fanout = append(g.nodes[from].fanout, fanoutEdge{to: to, output: s.FromOutput})
		g.nodes[from].drives[s.FromOutput] = true
	}
	// Kahn levelization: a net is placeable once every fanin edge has been
	// consumed; its level is one past the deepest driver.
	remaining := make([]int, len(g.nodes))
	var queue []int
	for i := range g.nodes {
		remaining[i] = len(g.nodes[i].fanin)
		if remaining[i] == 0 {
			queue = append(queue, i)
		}
	}
	placed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		placed++
		for g.nodes[i].level >= len(g.levels) {
			g.levels = append(g.levels, nil)
		}
		g.levels[g.nodes[i].level] = append(g.levels[g.nodes[i].level], i)
		for _, e := range g.nodes[i].fanout {
			j := e.to
			if l := g.nodes[i].level + 1; l > g.nodes[j].level {
				g.nodes[j].level = l
			}
			remaining[j]--
			if remaining[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if placed < len(g.nodes) {
		for i := range g.nodes {
			if remaining[i] > 0 {
				return nil, fmt.Errorf("timing: stage edges form a cycle through net %q", g.nodes[i].name)
			}
		}
	}
	for _, level := range g.levels {
		sort.Ints(level)
	}
	return g, nil
}

func isDesignatedOutput(t *rctree.Tree, name string) bool {
	id, ok := t.Lookup(name)
	if !ok {
		return false
	}
	for _, o := range t.Outputs() {
		if o == id {
			return true
		}
	}
	return false
}

// Nets reports the number of nets in the graph.
func (g *Graph) Nets() int { return len(g.nodes) }

// Levels reports the number of pipeline levels (longest net chain).
func (g *Graph) Levels() int { return len(g.levels) }

// netTiming is the per-net working state of one analysis.
type netTiming struct {
	input Interval            // arrival interval at the net's driven input
	out   map[string]Interval // arrival interval at each designated output
	delay map[string]Interval // [TMin, TMax] of each output at the threshold
	// worst is the fanin edge realizing input.Max, the critical-path
	// predecessor (-1 for primary inputs).
	worst int
}

// resolved is the fully-defaulted execution plan of one analysis.
type resolved struct {
	th      float64
	k       int
	core    CoreKind
	sched   Scheduler
	workers int
	// Pointer-core machinery: the analyzer is non-nil exactly in sequential
	// mode, the engine otherwise.
	engine   *batch.Engine
	analyzer *core.Analyzer
	obs      *obs.Registry
}

// resolve applies the Options defaults: threshold 0.5, 5 critical paths, and
// the arena core with work-stealing parallelism — unless a shared Engine (or
// an explicit Core) selects the pointer core, which keeps its original
// engine/analyzer split.
func (opt Options) resolve() (resolved, error) {
	r := resolved{th: opt.Threshold, k: opt.K, obs: opt.Obs}
	if r.th == 0 {
		r.th = 0.5
	}
	if r.th <= 0 || r.th >= 1 {
		return resolved{}, fmt.Errorf("timing: threshold %g outside (0,1)", r.th)
	}
	if r.k == 0 {
		r.k = 5
	}
	r.core = opt.Core
	if r.core == CoreAuto {
		if opt.Engine != nil {
			r.core = CorePointer
		} else {
			r.core = CoreArena
		}
	}
	switch r.core {
	case CorePointer:
		if opt.Sequential {
			r.analyzer = core.NewAnalyzer()
		} else if r.engine = opt.Engine; r.engine == nil {
			r.engine = batch.New(batch.Options{})
		}
	case CoreArena:
		r.sched = opt.Scheduler
		if r.sched == SchedAuto {
			r.sched = SchedWorkSteal
		}
		r.workers = opt.Workers
		if r.workers <= 0 {
			r.workers = runtime.GOMAXPROCS(0)
		}
		if opt.Sequential {
			r.workers = 1
		}
	default:
		return resolved{}, fmt.Errorf("timing: unknown core %d", r.core)
	}
	return r, nil
}

// gatherInput recomputes net i's input arrival interval and worst fanin edge
// from its drivers' (already final) output arrivals. Primary-input nets get
// the degenerate [0, 0] interval and worst -1.
func (g *Graph) gatherInput(state []netTiming, i int) (Interval, int) {
	var in Interval
	worst := -1
	for ei, e := range g.nodes[i].fanin {
		cand := state[e.driver].out[e.output].add(e.delay)
		if ei == 0 {
			in, worst = cand, 0
			continue
		}
		if cand.Max > in.Max {
			worst = ei
		}
		in = in.hull(cand)
	}
	return in, worst
}

// Analyze propagates interval arrivals over the selected core — the flat
// arena by default, or the pointer-tree core behind a batch engine — and
// assembles the chip report; see the package comment for the model.
func (g *Graph) Analyze(ctx context.Context, opt Options) (*Report, error) {
	r, err := opt.resolve()
	if err != nil {
		return nil, err
	}
	state, err := g.computeState(ctx, r)
	if err != nil {
		return nil, err
	}
	return g.report(state, r.th, r.k, opt.Required, g.treeOutputNames), nil
}

// computeState runs the full sweep on the resolved core and returns the
// complete per-net working state a Session continues from. On the arena core
// the propagation happens entirely in flat arrays; the map-form state is
// materialized once at the end.
func (g *Graph) computeState(ctx context.Context, r resolved) ([]netTiming, error) {
	if r.core == CoreArena {
		da, err := g.arenaWith(ctx, r.obs)
		if err != nil {
			return nil, err
		}
		st := da.newState()
		sched := r.sched.String()
		if r.workers <= 1 {
			sched = "sequential"
		}
		pctx, op := trace.StartOp(ctx, r.obs, "timing_propagate", "core", "arena", "sched", sched)
		if err := da.propagate(pctx, st, r.th, r.sched, r.workers, nil); err != nil {
			op.SetError(err)
			op.End()
			return nil, err
		}
		op.End()
		return da.netTimings(st), nil
	}
	sched := "batch"
	if r.analyzer != nil {
		sched = "sequential"
	}
	ctx, op := trace.StartOp(ctx, r.obs, "timing_propagate", "core", "pointer", "sched", sched)
	defer op.End()
	state := make([]netTiming, len(g.nodes))
	for _, level := range g.levels {
		// Arrivals first: every driver sits in a shallower level, so its
		// output arrivals are already final.
		for _, i := range level {
			state[i].input, state[i].worst = g.gatherInput(state, i)
		}
		if err := g.computeDelays(ctx, level, state, r.th, r.engine, r.analyzer); err != nil {
			return nil, err
		}
		for _, i := range level {
			st := &state[i]
			st.out = make(map[string]Interval, len(st.delay))
			for name, d := range st.delay {
				st.out[name] = st.input.plus(d)
			}
		}
	}
	return state, nil
}

// treeOutputNames lists net i's designated output names in designation
// order — the Analyze-time source; Sessions substitute their EditTrees'.
func (g *Graph) treeOutputNames(i int) []string {
	t := g.nodes[i].tree
	outs := t.Outputs()
	names := make([]string, len(outs))
	for j, o := range outs {
		names[j] = t.Name(o)
	}
	return names
}

// computeDelays fills state[i].delay for every net of the level: the
// threshold-crossing interval [TMin, TMax] of each designated output.
func (g *Graph) computeDelays(ctx context.Context, level []int, state []netTiming, th float64, engine *batch.Engine, analyzer *core.Analyzer) error {
	fill := func(i int, results []core.Result) {
		st := &state[i]
		st.delay = make(map[string]Interval, len(results))
		for _, r := range results {
			st.delay[r.Name] = Interval{r.Bounds.TMin(th), r.Bounds.TMax(th)}
		}
	}
	if analyzer != nil {
		for _, i := range level {
			results, err := analyzer.Analyze(g.nodes[i].tree)
			if err != nil {
				return fmt.Errorf("timing: net %q: %w", g.nodes[i].name, err)
			}
			fill(i, results)
		}
		return nil
	}
	jobs := make([]batch.Job, len(level))
	for j, i := range level {
		jobs[j] = batch.Job{Tree: g.nodes[i].tree, Tag: g.nodes[i].name, Thresholds: []float64{th}}
	}
	for j, res := range engine.Run(ctx, jobs) {
		i := level[j]
		if res.Err != nil {
			return fmt.Errorf("timing: net %q: %w", g.nodes[i].name, res.Err)
		}
		st := &state[i]
		st.delay = make(map[string]Interval, len(res.Outputs))
		for _, rep := range res.Outputs {
			st.delay[rep.Name] = Interval{rep.Delay[0].TMin, rep.Delay[0].TMax}
		}
	}
	return nil
}

// report assembles endpoint slacks, WNS/TNS and the K critical paths.
// outputNames supplies net i's designated output names (treeOutputNames at
// Analyze time; a Session's current EditTree outputs after edits).
func (g *Graph) report(state []netTiming, th float64, k int, defRequired float64, outputNames func(i int) []string) *Report {
	required := map[[2]string]float64{}
	for _, r := range g.design.Requires {
		required[[2]string{r.Net, r.Output}] = r.Time
	}
	rep := &Report{
		Design:    g.design.Name,
		Threshold: th,
		Nets:      len(g.nodes),
		Stages:    len(g.design.Stages),
		Levels:    len(g.levels),
		WNS:       math.Inf(1),
	}
	for i := range g.nodes {
		node := &g.nodes[i]
		for _, name := range outputNames(i) {
			req, explicit := required[[2]string{node.name, name}]
			if !explicit && node.drives[name] {
				continue // interior output: drives a stage, no requirement
			}
			ep := EndpointSlack{
				Net:      node.name,
				Output:   name,
				Arrival:  state[i].out[name],
				Required: math.Inf(1),
				Slack:    math.Inf(1),
				Verdict:  core.Passes,
				net:      i,
			}
			if !explicit && defRequired > 0 {
				req, explicit = defRequired, true
			}
			if explicit {
				ep.Required = req
				ep.Slack = req - ep.Arrival.Max
				switch {
				case ep.Arrival.Max <= req:
					ep.Verdict = core.Passes
				case ep.Arrival.Min > req:
					ep.Verdict = core.Fails
				default:
					ep.Verdict = core.Unknown
				}
				if ep.Slack < rep.WNS {
					rep.WNS = ep.Slack
				}
				if ep.Slack < 0 {
					rep.TNS += ep.Slack
				}
			}
			rep.Endpoints = append(rep.Endpoints, ep)
		}
	}
	// Sort an index permutation rather than the (large) endpoint structs:
	// designs have nets×outputs endpoints and the struct moves dominate a
	// direct sort.SliceStable on profiles.
	perm := make([]int, len(rep.Endpoints))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ea, eb := &rep.Endpoints[perm[a]], &rep.Endpoints[perm[b]]
		// Constrained endpoints by ascending slack, then unconstrained by
		// descending latest arrival; names break ties.
		if ea.Slack != eb.Slack {
			return ea.Slack < eb.Slack
		}
		if ea.Arrival.Max != eb.Arrival.Max {
			return ea.Arrival.Max > eb.Arrival.Max
		}
		if ea.Net != eb.Net {
			return ea.Net < eb.Net
		}
		return ea.Output < eb.Output
	})
	sorted := make([]EndpointSlack, len(rep.Endpoints))
	for i, j := range perm {
		sorted[i] = rep.Endpoints[j]
	}
	rep.Endpoints = sorted
	for i := 0; i < len(rep.Endpoints) && i < k; i++ {
		rep.Paths = append(rep.Paths, g.backtrack(state, rep.Endpoints[i]))
	}
	return rep
}

// backtrack reconstructs the critical path ending at ep: from the endpoint
// net, follow each net's worst-arrival fanin edge back to a primary input,
// then emit hops root-first.
func (g *Graph) backtrack(state []netTiming, ep EndpointSlack) Path {
	type rev struct {
		net    int
		output string  // output the path leaves the net through
		delay  float64 // gate delay to the successor net
	}
	var chain []rev
	cur, out, delay := ep.net, ep.Output, 0.0
	for {
		chain = append(chain, rev{cur, out, delay})
		st := state[cur]
		if st.worst < 0 {
			break
		}
		e := g.nodes[cur].fanin[st.worst]
		cur, out, delay = e.driver, e.output, e.delay
	}
	p := Path{Endpoint: ep.Net + "/" + ep.Output, Slack: ep.Slack}
	for i := len(chain) - 1; i >= 0; i-- {
		h := chain[i]
		st := state[h.net]
		p.Hops = append(p.Hops, PathHop{
			Net:           g.nodes[h.net].name,
			Output:        h.output,
			InputArrival:  st.input,
			NetDelay:      st.delay[h.output],
			OutputArrival: st.out[h.output],
			StageDelay:    h.delay,
		})
	}
	return p
}

// Analyze is the one-call form: build the graph and analyze it. The graph
// build (stage resolution plus Kahn levelization) gets its own span on
// opt.Obs, separate from the propagation spans Analyze records.
func Analyze(ctx context.Context, d *netlist.Design, opt Options) (*Report, error) {
	_, op := trace.StartOp(ctx, opt.Obs, "timing_levelize")
	g, err := NewGraph(d)
	op.SetError(err)
	op.End()
	if err != nil {
		return nil, err
	}
	return g.Analyze(ctx, opt)
}
