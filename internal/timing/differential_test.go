package timing

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/randnet"
)

// diffDesignConfig draws a small random design shape so 300 of them stay
// fast while still covering chains, diamonds and multi-fanin merges.
func diffDesignConfig(rng *rand.Rand) randnet.DesignConfig {
	cfg := randnet.DefaultDesignConfig(1+rng.Intn(4), 1+rng.Intn(3))
	cfg.Net = randnet.DefaultConfig(4 + rng.Intn(10))
	cfg.FaninMax = 1 + rng.Intn(3)
	return cfg
}

// stateFor computes the full per-net working state of d under one core.
func stateFor(t *testing.T, d *netlist.Design, opt Options) (*Graph, []netTiming) {
	t.Helper()
	g, err := NewGraph(d)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	r, err := opt.resolve()
	if err != nil {
		t.Fatal(err)
	}
	state, err := g.computeState(context.Background(), r)
	if err != nil {
		t.Fatalf("computeState: %v", err)
	}
	return g, state
}

// assertStatesClose compares two full working states net by net — input
// interval, every output's delay and arrival interval, and the worst-fanin
// choice — to 1e-9.
func assertStatesClose(t *testing.T, g *Graph, got, want []netTiming, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: state length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		name := g.nodes[i].name
		if !intervalsClose(got[i].input, want[i].input) {
			t.Fatalf("%s: net %s input %+v vs %+v", label, name, got[i].input, want[i].input)
		}
		if got[i].worst != want[i].worst {
			t.Fatalf("%s: net %s worst fanin %d vs %d", label, name, got[i].worst, want[i].worst)
		}
		if len(got[i].delay) != len(want[i].delay) || len(got[i].out) != len(want[i].out) {
			t.Fatalf("%s: net %s output sets differ", label, name)
		}
		for out, w := range want[i].delay {
			gv, ok := got[i].delay[out]
			if !ok || !intervalsClose(gv, w) {
				t.Fatalf("%s: net %s/%s delay %+v vs %+v", label, name, out, gv, w)
			}
		}
		for out, w := range want[i].out {
			gv, ok := got[i].out[out]
			if !ok || !intervalsClose(gv, w) {
				t.Fatalf("%s: net %s/%s arrival %+v vs %+v", label, name, out, gv, w)
			}
		}
	}
}

// assertReportsClose compares endpoint slacks, WNS and TNS between two full
// reports of the same design, keyed by endpoint (sorting may permute ties).
func assertReportsClose(t *testing.T, got, want *Report, label string) {
	t.Helper()
	if len(got.Endpoints) != len(want.Endpoints) {
		t.Fatalf("%s: endpoint count %d vs %d", label, len(got.Endpoints), len(want.Endpoints))
	}
	type key struct{ net, output string }
	byKey := map[key]EndpointSlack{}
	for _, e := range got.Endpoints {
		byKey[key{e.Net, e.Output}] = e
	}
	for _, w := range want.Endpoints {
		g, ok := byKey[key{w.Net, w.Output}]
		if !ok {
			t.Fatalf("%s: endpoint %s/%s missing", label, w.Net, w.Output)
		}
		if !intervalsClose(g.Arrival, w.Arrival) || !closeEnough(g.Slack, w.Slack) {
			t.Fatalf("%s: endpoint %s/%s arrival %+v slack %g vs %+v / %g",
				label, w.Net, w.Output, g.Arrival, g.Slack, w.Arrival, w.Slack)
		}
	}
	if !closeEnough(got.WNS, want.WNS) || !closeEnough(got.TNS, want.TNS) {
		t.Fatalf("%s: WNS/TNS %g/%g vs %g/%g", label, got.WNS, got.TNS, want.WNS, want.TNS)
	}
}

// TestDifferentialArenaVsPointer is the cross-core property test: 300
// randomized designs analyzed by the flat arena core (sequential,
// level-barrier and work-stealing schedules) and by the original
// pointer-tree core must agree on every net bound, arrival interval,
// endpoint slack, WNS and TNS to 1e-9.
func TestDifferentialArenaVsPointer(t *testing.T) {
	designs := 300
	if testing.Short() {
		designs = 60
	}
	rng := rand.New(rand.NewSource(20260807))
	ctx := context.Background()
	for n := 0; n < designs; n++ {
		d := randnet.Design(rng, diffDesignConfig(rng))
		th := 0.3 + rng.Float64()*0.5
		required := 0.0
		if rng.Intn(2) == 0 {
			required = 50 + rng.Float64()*1e3
		}
		base := Options{Threshold: th, Required: required, K: 3}
		_, want := stateFor(t, d, Options{Threshold: th, Core: CorePointer, Sequential: true})
		variants := []Options{
			{Threshold: th, Core: CoreArena, Sequential: true},
			{Threshold: th, Core: CoreArena, Scheduler: SchedLevelBarrier, Workers: 3},
			{Threshold: th, Core: CoreArena, Scheduler: SchedWorkSteal, Workers: 4},
		}
		for vi, opt := range variants {
			g, got := stateFor(t, d, opt)
			assertStatesClose(t, g, got, want, fmt.Sprintf("design %d variant %d", n, vi))
		}
		// Reports, through the public entry point.
		pointerOpt := base
		pointerOpt.Core = CorePointer
		pointerOpt.Sequential = true
		wantRep, err := Analyze(ctx, d, pointerOpt)
		if err != nil {
			t.Fatal(err)
		}
		arenaOpt := base
		arenaOpt.Core = CoreArena
		gotRep, err := Analyze(ctx, d, arenaOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertReportsClose(t, gotRep, wantRep, fmt.Sprintf("design %d report", n))
	}
}

// assertSessionMatchesCore materializes the session's current design and
// checks the session's incremental state against a from-scratch analysis
// under the given core.
func assertSessionMatchesCore(t *testing.T, s *Session, core CoreKind, label string) {
	t.Helper()
	d, err := s.Design()
	if err != nil {
		t.Fatalf("%s: materialize: %v", label, err)
	}
	_, want := stateFor(t, d, Options{Threshold: s.th, Core: core, Sequential: true})
	assertStatesClose(t, s.g, s.state, want, label)
	full, err := Analyze(context.Background(), d, Options{
		Threshold: s.th, Required: s.required, K: s.k, Core: core, Sequential: true,
	})
	if err != nil {
		t.Fatalf("%s: full analysis: %v", label, err)
	}
	assertReportsClose(t, s.Report(), full, label)
}

// TestDifferentialECO extends the cross-core check through ECO editing: per
// design, 50 random edits are absorbed incrementally and after every edit
// the session state must agree with from-scratch analyses under BOTH cores.
// Forked sessions are spliced in along the way: the fork absorbs its own
// edit, must match full analyses of its own materialized design, and the
// parent must stay bit-identical.
func TestDifferentialECO(t *testing.T) {
	designs := 300
	edits := 50
	if testing.Short() {
		designs = 30
	}
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < designs; n++ {
		d := randnet.Design(rng, diffDesignConfig(rng))
		s := newTestSession(t, d, Options{Threshold: 0.6, Required: 200})
		seq := 0
		for e := 0; e < edits; e++ {
			ed := randomEdit(rng, s, &seq)
			if _, err := s.Apply([]Edit{ed}); err != nil {
				continue // guarded edit (drain, orphan...) — rejection is fine
			}
			core := CorePointer
			if e%2 == 1 {
				core = CoreArena
			}
			assertSessionMatchesCore(t, s, core, fmt.Sprintf("design %d edit %d", n, e))
			if e == edits/2 {
				// Fork differential: edit the fork, check it against both
				// cores, and pin the parent unchanged.
				parentWNS, parentTNS := s.summary()
				parentGen := s.Gen()
				f := s.Fork()
				fe := randomEdit(rng, f, &seq)
				if _, err := f.Apply([]Edit{fe}); err == nil {
					assertSessionMatchesCore(t, f, CorePointer, fmt.Sprintf("design %d fork", n))
					assertSessionMatchesCore(t, f, CoreArena, fmt.Sprintf("design %d fork arena", n))
				}
				wns, tns := s.summary()
				if wns != parentWNS || tns != parentTNS || s.Gen() != parentGen {
					t.Fatalf("design %d: fork edit leaked into parent", n)
				}
			}
		}
	}
}
