package timing

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/rctree"
	"repro/internal/randnet"
)

func hammerDesign(t *testing.T, seed int64, levels, width, nodes int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := randnet.DefaultDesignConfig(levels, width)
	cfg.Net = randnet.DefaultConfig(nodes)
	cfg.FaninMax = 3
	g, err := NewGraph(randnet.Design(rng, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkStealAnalyzeRaceHammer slams one shared Graph with concurrent
// work-stealing analyses (plus level-barrier and sequential interlopers).
// Every goroutine must reproduce the baseline report bit for bit; run under
// -race this doubles as the scheduler's memory-visibility proof.
func TestWorkStealAnalyzeRaceHammer(t *testing.T) {
	g := hammerDesign(t, 99, 5, 3, 20)
	ctx := context.Background()
	base, err := g.Analyze(ctx, Options{Threshold: 0.6, Required: 500, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	goroutines := 8
	iters := 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opt := Options{Threshold: 0.6, Required: 500, Scheduler: SchedWorkSteal, Workers: 1 + w%5}
			if w%3 == 1 {
				opt.Scheduler = SchedLevelBarrier
			}
			for it := 0; it < iters; it++ {
				rep, err := g.Analyze(ctx, opt)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(rep, base) {
					t.Errorf("worker %d iter %d: report diverged from baseline", w, it)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionForkRaceHammer exercises the documented fork concurrency
// contract under load: many forks of one parent Apply their own random edits
// and read their own reports concurrently, while the parent's state stays
// frozen throughout.
func TestSessionForkRaceHammer(t *testing.T) {
	g := hammerDesign(t, 7, 4, 3, 14)
	s, err := g.Session(context.Background(), Options{Threshold: 0.6, Required: 300})
	if err != nil {
		t.Fatal(err)
	}
	parentRep := s.Report() // memoize before the forks fan out
	parentGen := s.Gen()
	forks := 8
	editsPerFork := 12
	var wg sync.WaitGroup
	for w := 0; w < forks; w++ {
		f := s.Fork() // forked serially; Apply runs concurrently per contract
		wg.Add(1)
		go func(w int, f *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			seq := 0
			for e := 0; e < editsPerFork; e++ {
				ed := randomEdit(rng, f, &seq)
				if _, err := f.Apply([]Edit{ed}); err != nil {
					continue
				}
				rep := f.Report()
				if len(rep.Endpoints) == 0 {
					t.Errorf("fork %d: empty endpoint table", w)
					return
				}
			}
			assertMatchesFull(t, f, f.required)
		}(w, f)
	}
	wg.Wait()
	if s.Gen() != parentGen || !reflect.DeepEqual(s.Report(), parentRep) {
		t.Fatal("fork edits leaked into the parent session")
	}
}

// TestArenaPropagateSeqZeroAlloc pins the steady-state hot path: once the
// arena state and scratch exist, a full sequential propagation performs zero
// heap allocations per run.
func TestArenaPropagateSeqZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	g := hammerDesign(t, 5, 4, 3, 24)
	da, err := g.arena()
	if err != nil {
		t.Fatal(err)
	}
	st := da.newState()
	var s rctree.Scratch
	ctx := context.Background()
	if err := da.propagateSeq(ctx, st, 0.6, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := da.propagateSeq(ctx, st, 0.6, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state propagation allocates %v times per run, want 0", allocs)
	}
}

// TestArenaPropScratchReuse checks that a propagation scratch recycled across
// runs (the benchmark/server steady state) keeps producing results identical
// to a fresh sequential pass, for both parallel schedulers.
func TestArenaPropScratchReuse(t *testing.T) {
	g := hammerDesign(t, 31, 4, 2, 16)
	da, err := g.arena()
	if err != nil {
		t.Fatal(err)
	}
	want := da.newState()
	if err := da.propagateSeq(context.Background(), want, 0.55, &rctree.Scratch{}); err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{SchedLevelBarrier, SchedWorkSteal} {
		ps := da.newPropScratch(4)
		st := da.newState()
		for run := 0; run < 3; run++ {
			if err := da.propagate(context.Background(), st, 0.55, sched, 4, ps); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st, want) {
				t.Fatalf("scheduler %d run %d: reused-scratch state diverged", sched, run)
			}
		}
	}
}

// TestArenaAnalyzeCanceled verifies the arena paths honor context
// cancellation for every scheduler.
func TestArenaAnalyzeCanceled(t *testing.T) {
	g := hammerDesign(t, 13, 4, 2, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := []Options{
		{Threshold: 0.5, Sequential: true},
		{Threshold: 0.5, Scheduler: SchedLevelBarrier, Workers: 2},
		{Threshold: 0.5, Scheduler: SchedWorkSteal, Workers: 2},
	}
	for i, opt := range opts {
		if _, err := g.Analyze(ctx, opt); err == nil {
			t.Errorf("option set %d: canceled analysis succeeded", i)
		}
	}
}
