package timing

import (
	"context"
	"testing"

	"repro/internal/batch"
	"repro/internal/incr"
	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// BenchmarkDesignSlack measures chip-level slack computation on a generated
// 6-level × 40-net design (240 nets), three ways:
//
//   - sequential: one net at a time on the caller's goroutine, no engine —
//     the naive baseline;
//   - parallel: the production default (Options.Engine == nil), i.e. the
//     levelized fan-out across the batch pool with content-hash memoization
//     warm after the first iteration — the steady-state cost a server pays
//     re-timing a design;
//   - parallel-nocache: the same fan-out with memoization disabled, so every
//     iteration pays the full per-net analysis and the gap to sequential is
//     purely the level sharding (this one only wins wall-clock when
//     GOMAXPROCS > 1).
func BenchmarkDesignSlack(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	if g.Nets() < 200 || g.Levels() < 5 {
		b.Fatalf("generated design too small: %d nets, %d levels", g.Nets(), g.Levels())
	}
	opt := Options{Threshold: 0.7, Required: 1e5, K: 5}
	run := func(b *testing.B, o Options) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Analyze(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		o := opt
		o.Sequential = true
		run(b, o)
	})
	b.Run("parallel", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{})
		run(b, o)
	})
	b.Run("parallel-nocache", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{CacheSize: -1})
		run(b, o)
	})
}

// BenchmarkDesignECO measures the cost of absorbing a single-net ECO edit on
// the same 240-net design, two ways:
//
//   - full-reanalyze: the pre-session workflow — re-run the whole levelized
//     analysis after the edit. The benchmark alternates between two prebuilt
//     graphs differing in one net so a shared engine's memoization stays as
//     warm as a production server's would (239 of 240 nets hit the cache);
//     the residual cost is hashing every net, the full arrival sweep, and
//     the report build.
//   - dirty-cone: a Session absorbing the same alternating edit — one
//     O(depth) EditTree update, per-output bound refresh, and arrival
//     propagation only through the edited net's downstream cone.
//
// scripts/bench_trajectory.sh records the ratio in BENCH_timing.json.
func BenchmarkDesignECO(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	const editNet = "l3n0"
	tree := design.Net(editNet).Tree
	node := tree.Name(rctree.NodeID(1))
	_, r0, _ := tree.Edge(rctree.NodeID(1))
	rA, rB := r0*1.25, r0*0.8

	// The edited-variant design for the full-reanalysis baseline: same tree
	// pointers everywhere except the edited net, so the shared cache keeps
	// serving the other 239 nets.
	variant := func(r float64) *netlist.Design {
		et := incr.New(tree)
		id, ok := et.Lookup(node)
		if !ok {
			b.Fatalf("no node %q", node)
		}
		if err := et.SetResistance(id, r); err != nil {
			b.Fatal(err)
		}
		mat, _, err := et.Materialize()
		if err != nil {
			b.Fatal(err)
		}
		d := &netlist.Design{Name: design.Name, Stages: design.Stages, Requires: design.Requires}
		for _, n := range design.Nets {
			if n.Name == editNet {
				n.Tree = mat
			}
			d.Nets = append(d.Nets, n)
		}
		return d
	}
	ctx := context.Background()
	opt := Options{Threshold: 0.7, Required: 1e5, K: 5}

	b.Run("full-reanalyze", func(b *testing.B) {
		gA, err := NewGraph(variant(rA))
		if err != nil {
			b.Fatal(err)
		}
		gB, err := NewGraph(variant(rB))
		if err != nil {
			b.Fatal(err)
		}
		o := opt
		o.Engine = batch.New(batch.Options{})
		graphs := [2]*Graph{gA, gB}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graphs[i%2].Analyze(ctx, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty-cone", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{})
		s, err := NewSession(ctx, design, o)
		if err != nil {
			b.Fatal(err)
		}
		rs := [2]float64{rA, rB}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Apply([]Edit{{Op: "setR", Net: editNet, Node: node, R: &rs[i%2]}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
