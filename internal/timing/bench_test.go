package timing

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/batch"
	"repro/internal/incr"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/randnet"
	"repro/internal/rctree"
	"repro/internal/trace"
)

// BenchmarkDesignSlack measures chip-level slack computation on a generated
// 6-level × 40-net design (240 nets), across both compute cores:
//
//   - arena-sequential: the flat SoA/CSR arena on one goroutine — the
//     production default when GOMAXPROCS is 1;
//   - arena-worksteal / arena-levelbarrier: the arena's two parallel
//     schedules (work-stealing is the production default on multicore);
//   - pointer-sequential: the original pointer-tree core, one net at a time —
//     the baseline the arena_vs_pointer_sequential speedup in
//     BENCH_timing.json is computed against;
//   - pointer-parallel: the pointer core fanned across the batch pool with
//     content-hash memoization warm after the first iteration;
//   - pointer-parallel-nocache: the same fan-out paying the full per-net
//     analysis every iteration, so the gap to pointer-sequential is purely
//     the level sharding (only wins wall-clock when GOMAXPROCS > 1).
func BenchmarkDesignSlack(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	if g.Nets() < 200 || g.Levels() < 5 {
		b.Fatalf("generated design too small: %d nets, %d levels", g.Nets(), g.Levels())
	}
	opt := Options{Threshold: 0.7, Required: 1e5, K: 5}
	run := func(b *testing.B, o Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Analyze(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("arena-sequential", func(b *testing.B) {
		o := opt
		o.Core = CoreArena
		o.Sequential = true
		run(b, o)
	})
	b.Run("arena-worksteal", func(b *testing.B) {
		o := opt
		o.Core = CoreArena
		o.Scheduler = SchedWorkSteal
		run(b, o)
	})
	b.Run("arena-levelbarrier", func(b *testing.B) {
		o := opt
		o.Core = CoreArena
		o.Scheduler = SchedLevelBarrier
		run(b, o)
	})
	b.Run("pointer-sequential", func(b *testing.B) {
		o := opt
		o.Core = CorePointer
		o.Sequential = true
		run(b, o)
	})
	b.Run("pointer-parallel", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{})
		run(b, o)
	})
	b.Run("pointer-parallel-nocache", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{CacheSize: -1})
		run(b, o)
	})
}

// BenchmarkArenaPropagation isolates the arena propagation kernel from graph
// build and report assembly: one prebuilt arena, one reusable state, one
// recycled propagation scratch. The sequential pass is the zero-alloc hot
// path (the allocs/op column must read 0); the parallel passes pay only
// goroutine startup and scheduler traffic on top, so comparing the three at
// GOMAXPROCS=1 vs all cores shows exactly what the work-stealing schedule
// buys (and costs) on a given machine.
func BenchmarkArenaPropagation(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	da, err := g.arena()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const th = 0.7
	b.Run("sequential", func(b *testing.B) {
		st := da.newState()
		var s rctree.Scratch
		if err := da.propagateSeq(ctx, st, th, &s); err != nil {
			b.Fatal(err) // warm the scratch before measuring
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := da.propagateSeq(ctx, st, th, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, bench := range []struct {
		name  string
		sched Scheduler
	}{
		{"levelbarrier", SchedLevelBarrier},
		{"worksteal", SchedWorkSteal},
	} {
		b.Run(bench.name, func(b *testing.B) {
			st := da.newState()
			ps := da.newPropScratch(runtime.GOMAXPROCS(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := da.propagate(ctx, st, th, bench.sched, 0, ps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArenaPropagationObs measures what the telemetry layer costs the
// full arena analysis path (computeState: propagation plus state
// materialization), obs disabled (nil registry: the no-op path every
// un-instrumented caller pays, one pointer test per phase) vs enabled (a
// live registry absorbing the spans). scripts/bench_trajectory.sh records
// the ratio as metrics_overhead in BENCH_timing.json; the no-op path must
// stay within 2% of a live registry (both are expected to be noise next to
// the propagation itself).
func BenchmarkArenaPropagationObs(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.arena(); err != nil {
		b.Fatal(err) // build the arena outside the measured region
	}
	ctx := context.Background()
	run := func(b *testing.B, reg *obs.Registry) {
		opt := Options{Threshold: 0.7, Core: CoreArena, Sequential: true, Obs: reg}
		r, err := opt.resolve()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.computeState(ctx, r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, obs.NewRegistry()) })
}

// BenchmarkArenaPropagationTrace is the tracing twin of
// BenchmarkArenaPropagationObs: the same arena analysis path with no trace
// in the context (the one-context-lookup no-op every untraced request pays)
// vs wrapped in a live trace, one root span per iteration as a request
// middleware would do, with the engine's StartOp child spans recording into
// it. scripts/bench_trajectory.sh records the ratio as trace_overhead in
// BENCH_timing.json; the contract is trace_overhead <= 1.05.
func BenchmarkArenaPropagationTrace(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.arena(); err != nil {
		b.Fatal(err) // build the arena outside the measured region
	}
	opt := Options{Threshold: 0.7, Core: CoreArena, Sequential: true}
	r, err := opt.resolve()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.computeState(ctx, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tracer := trace.New(trace.Options{Capacity: 4, SlowThreshold: -1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, root := tracer.Start(context.Background(), "bench")
			if _, err := g.computeState(ctx, r); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}

// BenchmarkDesignECO measures the cost of absorbing a single-net ECO edit on
// the same 240-net design, two ways:
//
//   - full-reanalyze: the pre-session workflow — re-run the whole levelized
//     analysis after the edit. The benchmark alternates between two prebuilt
//     graphs differing in one net so a shared engine's memoization stays as
//     warm as a production server's would (239 of 240 nets hit the cache);
//     the residual cost is hashing every net, the full arrival sweep, and
//     the report build.
//   - dirty-cone: a Session absorbing the same alternating edit — one
//     O(depth) EditTree update, per-output bound refresh, and arrival
//     propagation only through the edited net's downstream cone.
//
// Both sides set Options.Engine, which under CoreAuto deliberately selects
// the pointer core: the memoization cache is the whole point of the
// full-reanalysis baseline. scripts/bench_trajectory.sh records the ratio in
// BENCH_timing.json.
func BenchmarkDesignECO(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	const editNet = "l3n0"
	tree := design.Net(editNet).Tree
	node := tree.Name(rctree.NodeID(1))
	_, r0, _ := tree.Edge(rctree.NodeID(1))
	rA, rB := r0*1.25, r0*0.8

	// The edited-variant design for the full-reanalysis baseline: same tree
	// pointers everywhere except the edited net, so the shared cache keeps
	// serving the other 239 nets.
	variant := func(r float64) *netlist.Design {
		et := incr.New(tree)
		id, ok := et.Lookup(node)
		if !ok {
			b.Fatalf("no node %q", node)
		}
		if err := et.SetResistance(id, r); err != nil {
			b.Fatal(err)
		}
		mat, _, err := et.Materialize()
		if err != nil {
			b.Fatal(err)
		}
		d := &netlist.Design{Name: design.Name, Stages: design.Stages, Requires: design.Requires}
		for _, n := range design.Nets {
			if n.Name == editNet {
				n.Tree = mat
			}
			d.Nets = append(d.Nets, n)
		}
		return d
	}
	ctx := context.Background()
	opt := Options{Threshold: 0.7, Required: 1e5, K: 5}

	b.Run("full-reanalyze", func(b *testing.B) {
		gA, err := NewGraph(variant(rA))
		if err != nil {
			b.Fatal(err)
		}
		gB, err := NewGraph(variant(rB))
		if err != nil {
			b.Fatal(err)
		}
		o := opt
		o.Engine = batch.New(batch.Options{})
		graphs := [2]*Graph{gA, gB}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graphs[i%2].Analyze(ctx, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty-cone", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{})
		s, err := NewSession(ctx, design, o)
		if err != nil {
			b.Fatal(err)
		}
		rs := [2]float64{rA, rB}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Apply([]Edit{{Op: "setR", Net: editNet, Node: node, R: &rs[i%2]}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
