package timing

import (
	"context"
	"testing"

	"repro/internal/batch"
	"repro/internal/randnet"
)

// BenchmarkDesignSlack measures chip-level slack computation on a generated
// 6-level × 40-net design (240 nets), three ways:
//
//   - sequential: one net at a time on the caller's goroutine, no engine —
//     the naive baseline;
//   - parallel: the production default (Options.Engine == nil), i.e. the
//     levelized fan-out across the batch pool with content-hash memoization
//     warm after the first iteration — the steady-state cost a server pays
//     re-timing a design;
//   - parallel-nocache: the same fan-out with memoization disabled, so every
//     iteration pays the full per-net analysis and the gap to sequential is
//     purely the level sharding (this one only wins wall-clock when
//     GOMAXPROCS > 1).
func BenchmarkDesignSlack(b *testing.B) {
	cfg := randnet.DefaultDesignConfig(6, 40)
	cfg.Net = randnet.DefaultConfig(60)
	design := randnet.DesignSeed(123, cfg)
	g, err := NewGraph(design)
	if err != nil {
		b.Fatal(err)
	}
	if g.Nets() < 200 || g.Levels() < 5 {
		b.Fatalf("generated design too small: %d nets, %d levels", g.Nets(), g.Levels())
	}
	opt := Options{Threshold: 0.7, Required: 1e5, K: 5}
	run := func(b *testing.B, o Options) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Analyze(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		o := opt
		o.Sequential = true
		run(b, o)
	})
	b.Run("parallel", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{})
		run(b, o)
	})
	b.Run("parallel-nocache", func(b *testing.B) {
		o := opt
		o.Engine = batch.New(batch.Options{CacheSize: -1})
		run(b, o)
	})
}
