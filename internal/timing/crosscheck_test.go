package timing

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/rctree"
	"repro/internal/sim"
)

// simCrossing measures the exact threshold-crossing time of one output via
// the eigendecomposition simulator (distributed lines pi-discretized), the
// same independent evaluation path waveform/crosscheck_test.go leans on.
func simCrossing(t *testing.T, tree *rctree.Tree, output string, th float64) float64 {
	t.Helper()
	lumped, mapping, err := sim.Discretize(tree, 24)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	id, ok := tree.Lookup(output)
	if !ok {
		t.Fatalf("no node %q", output)
	}
	i, err := ckt.Index(mapping[id])
	if err != nil {
		t.Fatal(err)
	}
	return resp.CrossingTime(i, th, 1e-12)
}

// TestArrivalIntervalsBracketSimulation cross-validates the chip-level
// engine against the exact simulator on linear 2- and 3-stage chains: under
// the staged step model, the measured cascade arrival is the sum of each
// stage's exact crossing plus the gate delays, and the reported endpoint
// interval must contain it. Random trees cover branchy and line-heavy nets.
func TestArrivalIntervalsBracketSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const th = 0.5
	for trial := 0; trial < 12; trial++ {
		stages := 2 + trial%2 // alternate 2- and 3-stage chains
		d := &netlist.Design{Name: fmt.Sprintf("chain%d", trial)}
		simTotal := 0.0
		for s := 0; s < stages; s++ {
			cfg := randnet.DefaultConfig(1 + rng.Intn(8))
			tree := randnet.Tree(rng, cfg)
			// Chain through the first designated output; extra outputs stay
			// as extra endpoints and must bracket too (checked for the last
			// stage below).
			name := fmt.Sprintf("s%d", s)
			d.Nets = append(d.Nets, netlist.DesignNet{Name: name, Tree: tree})
			out := tree.Name(tree.Outputs()[0])
			if s > 0 {
				gate := rng.Float64() * 20
				d.Stages = append(d.Stages, netlist.Stage{
					FromNet:    fmt.Sprintf("s%d", s-1),
					FromOutput: d.Nets[s-1].Tree.Name(d.Nets[s-1].Tree.Outputs()[0]),
					ToNet:      name,
					Delay:      gate,
				})
				simTotal += gate
			}
			if s < stages-1 {
				simTotal += simCrossing(t, tree, out, th)
			}
		}
		rep, err := Analyze(context.Background(), d, Options{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		// Every endpoint of the final stage: cascade arrival = arrivals of
		// the chain prefix + that output's own exact crossing.
		last := d.Nets[stages-1].Tree
		checked := 0
		for _, e := range last.Outputs() {
			name := last.Name(e)
			cross := simTotal + simCrossing(t, last, name, th)
			for _, ep := range rep.Endpoints {
				if ep.Net != d.Nets[stages-1].Name || ep.Output != name {
					continue
				}
				checked++
				// Discretization leaves ~1/segments² relative error on nets
				// with distributed lines; widen the interval accordingly.
				tol := 1e-9 + 2e-3*cross
				if cross < ep.Arrival.Min-tol || cross > ep.Arrival.Max+tol {
					t.Errorf("trial %d endpoint %s/%s: sim crossing %g outside [%g, %g]",
						trial, ep.Net, ep.Output, cross, ep.Arrival.Min, ep.Arrival.Max)
				}
			}
		}
		if checked == 0 {
			t.Fatalf("trial %d: no endpoint checked", trial)
		}
	}
}

// TestSingleNetIntervalMatchesBounds sanity-checks the degenerate one-stage
// design: the endpoint interval is exactly the paper's [TMin, TMax].
func TestSingleNetIntervalMatchesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		tree := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(10)))
		d := &netlist.Design{Nets: []netlist.DesignNet{{Name: "n", Tree: tree}}}
		const th = 0.7
		rep, err := Analyze(context.Background(), d, Options{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range rep.Endpoints {
			cross := simCrossing(t, tree, ep.Output, th)
			tol := 1e-9 + 2e-3*cross
			if cross < ep.Arrival.Min-tol || cross > ep.Arrival.Max+tol {
				t.Errorf("trial %d output %q: crossing %g outside [%g, %g]",
					trial, ep.Output, cross, ep.Arrival.Min, ep.Arrival.Max)
			}
		}
	}
}
